#!/usr/bin/env python3
"""ecas-lint: project-convention linter for the ecas tree.

Complements clang-tidy and the Clang thread-safety build with rules that
are about *this* project's conventions (DESIGN.md §9), so they stay
enforced even under toolchains that cannot run the Clang analyses:

  naked-mutex            No std::mutex / std::lock_guard / std::unique_lock
                         (or friends) outside src/ecas/support/. Shared
                         state uses AnnotatedMutex + LockGuard/UniqueLock so
                         the thread-safety analysis and the lock-order
                         validator both see every acquisition.
  unchecked-value        No .value() on an ErrorOr variable without a prior
                         ok() / truthiness check of that variable.
  wait-under-lock-guard  No blocking call (condition wait, sleep, join,
                         queue finish) inside a LockGuard/std::lock_guard
                         scope. Blocking scopes must use UniqueLock, which
                         is the reviewable marker that a wait happens with
                         a lock held.
  include-hygiene        A .cpp includes its own header first; no <bits/...>
                         internals; headers carry an ECAS_ include guard or
                         #pragma once; no duplicate includes in one file.
  no-std-rand            No std::rand/srand/random_shuffle; randomness goes
                         through support/Random.h so runs stay reproducible.
  no-raw-output          No std::cout/std::cerr/printf/fprintf/puts/fputs
                         (or <iostream>) inside src/ecas/: library code
                         reports through Status/ErrorOr and the obs layer,
                         never by writing to the process's streams.
                         snprintf-into-a-buffer (support/Format) is fine.
  unbounded-queue        No std::deque / std::queue / std::priority_queue /
                         std::list inside src/ecas/service/: every service
                         queue must have a capacity fixed at construction
                         (service/Bounded.h) so overload becomes typed
                         backpressure instead of unbounded memory growth.
  atomic-write           No raw std::rename/::rename or bare fsync inside
                         src/ecas outside the blessed durability modules
                         (support/AtomicFile.cpp, core/HistoryJournal.cpp):
                         a rename without the parent-directory fsync is the
                         crash-consistency hole DESIGN.md §13 closed, so
                         every durable write goes through
                         support/AtomicFile.h.
  metric-name            Metric names are lowercase snake_case with the
                         eas_ prefix and live in src/ecas/obs/MetricNames.h:
                         the literals there must match ^eas_[a-z][a-z0-9_]*$,
                         and no other file under src/ecas may register an
                         instrument (.counter/.gauge/.histogram) with an
                         inline string literal — add a names:: constant
                         instead so DESIGN.md §11 stays the complete
                         taxonomy. Tests/tools/bench register freely.
  signal-unsafe-in-handler
                         Functions marked ECAS_SIGNAL_SAFE (the crash
                         handlers of obs/LastGasp.cpp) may only call the
                         async-signal-safe syscall set on pre-serialized
                         data: no malloc/free/new/delete, no std::string
                         or container construction, no stdio, no locks.
                         DESIGN.md §16's crash write depends on it.
  stale-suppression      An // ecas-lint: allow(...) whose rule can no
                         longer fire on that line (or allow-file whose
                         rule fires nowhere in the file, or either form
                         naming an unknown rule) is dead documentation
                         that licenses a future regression; delete it.

Suppressions (use sparingly, justify in a comment on the same line):
  // ecas-lint: allow(rule-name)         on the offending line
  // ecas-lint: allow-file(rule-name)    anywhere in the first 15 lines

Exit status: 0 when clean, 1 when any finding is reported, 2 on usage
errors. Run from anywhere: paths are resolved against --root (defaults
to the repository root containing this script's parent directory).
"""

import argparse
import json
import os
import re
import sys

DEFAULT_DIRS = ["src", "tools", "tests", "bench", "examples"]
CXX_EXTENSIONS = (".h", ".cpp")

ALLOW_LINE = re.compile(r"//\s*ecas-lint:\s*allow\(([\w-]+)\)")
ALLOW_FILE = re.compile(r"//\s*ecas-lint:\s*allow-file\(([\w-]+)\)")

NAKED_MUTEX = re.compile(
    r"\bstd::(mutex|recursive_mutex|recursive_timed_mutex|shared_mutex|"
    r"shared_timed_mutex|timed_mutex|lock_guard|unique_lock|scoped_lock|"
    r"shared_lock)\b"
)
ERROROR_DECL = re.compile(r"\bErrorOr<[^;=]*?>\s+(\w+)\s*[=({]")
VALUE_CALL = re.compile(r"\b(\w+)\.value\(\)")
CHECKED_OK = re.compile(r"\b(\w+)\.ok\(\)")
CHECKED_TRUTHY = re.compile(r"(?:if\s*\(|while\s*\(|&&\s*|\|\|\s*|!\s*)\(?(\w+)\)")
LOCK_GUARD_DECL = re.compile(r"\b(?:LockGuard|std::lock_guard(?:<[^>]*>)?)\s+\w+\s*[({]")
BLOCKING_CALL = re.compile(
    r"(\.|->)(wait|wait_for|wait_until|join|finish)\s*\(|"
    r"\bsleep_for\s*\(|\bsleep_until\s*\(|\bstd::this_thread::yield\s*\(\)"
)
STD_RAND = re.compile(r"\b(?:std::)?(?:rand|srand)\s*\(|\bstd::random_shuffle\b")
UNBOUNDED_QUEUE = re.compile(r"\bstd::(deque|queue|priority_queue|list)\s*<")
# \bprintf cannot match inside snprintf/vsnprintf (preceded by a word
# character), so buffer-formatting helpers stay legal.
RAW_OUTPUT = re.compile(
    r"\bstd::(cout|cerr|clog)\b|"
    r"\b(?:std::)?(printf|fprintf|puts|fputs|putchar|fputc)\s*\("
)
# <cstdio> stays legal: snprintf/vsnprintf formatting needs it.
IOSTREAM_INCLUDE = re.compile(r"^\s*#\s*include\s*<(iostream|syncstream)>")
METRIC_NAME_VALID = re.compile(r"^eas_[a-z][a-z0-9_]*$")
STRING_LITERAL = re.compile(r'"([^"\\]*)"')
METRIC_INLINE_REG = re.compile(r"(?:\.|->)\s*(counter|gauge|histogram)\s*\(\s*\"")
INCLUDE = re.compile(r'^\s*#\s*include\s*([<"])([^">]+)[">]')
PRAGMA_ONCE = re.compile(r"^\s*#\s*pragma\s+once\b")
GUARD = re.compile(r"^\s*#\s*ifndef\s+ECAS_\w+")


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def render(self, root):
        rel = os.path.relpath(self.path, root)
        return f"{rel}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(line, in_block_comment):
    """Replaces comment and string-literal contents with spaces so the
    rule regexes cannot match inside them. Returns (code, in_block)."""
    out = []
    i = 0
    n = len(line)
    in_string = None
    while i < n:
        c = line[i]
        nxt = line[i + 1] if i + 1 < n else ""
        if in_block_comment:
            if c == "*" and nxt == "/":
                in_block_comment = False
                out.append("  ")
                i += 2
                continue
            out.append(" ")
            i += 1
            continue
        if in_string:
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == in_string:
                in_string = None
                out.append(c)
                i += 1
                continue
            out.append(" ")
            i += 1
            continue
        if c == "/" and nxt == "/":
            out.append(" " * (n - i))
            break
        if c == "/" and nxt == "*":
            in_block_comment = True
            out.append("  ")
            i += 2
            continue
        if c in "\"'":
            in_string = c
            out.append(c)
            i += 1
            continue
        out.append(c)
        i += 1
    return "".join(out), in_block_comment


def line_allows(raw_line, rule):
    m = ALLOW_LINE.search(raw_line)
    return bool(m) and m.group(1) == rule


def file_allows(raw_lines, rule):
    for raw in raw_lines[:15]:
        m = ALLOW_FILE.search(raw)
        if m and m.group(1) == rule:
            return True
    return False


def check_naked_mutex(path, raw_lines, code_lines, findings):
    if os.sep + os.path.join("src", "ecas", "support") + os.sep in path:
        return  # The wrappers themselves live here.
    rule = "naked-mutex"
    if file_allows(raw_lines, rule):
        return
    for ln, code in enumerate(code_lines, 1):
        m = NAKED_MUTEX.search(code)
        if m and not line_allows(raw_lines[ln - 1], rule):
            findings.append(Finding(
                path, ln, rule,
                f"std::{m.group(1)} outside src/ecas/support/; use "
                "AnnotatedMutex/LockGuard/UniqueLock from "
                "ecas/support/ThreadAnnotations.h"))


def check_unchecked_value(path, raw_lines, code_lines, findings):
    rule = "unchecked-value"
    if file_allows(raw_lines, rule):
        return
    # Variables declared as ErrorOr<...> in this file, mapped to the set
    # of line numbers where they were declared; a variable is "checked"
    # once an ok()/truthiness test of it appears after the declaration.
    declared = {}
    checked = set()
    for ln, code in enumerate(code_lines, 1):
        for m in ERROROR_DECL.finditer(code):
            declared[m.group(1)] = ln
            checked.discard(m.group(1))
        for m in CHECKED_OK.finditer(code):
            checked.add(m.group(1))
        for m in CHECKED_TRUTHY.finditer(code):
            if m.group(1) in declared:
                checked.add(m.group(1))
        if "ECAS_CHECK" in code or "ECAS_ASSERT" in code or "ASSERT_TRUE" in code or "EXPECT_TRUE" in code:
            for name in declared:
                if re.search(rf"\b{re.escape(name)}\b", code):
                    checked.add(name)
        for m in VALUE_CALL.finditer(code):
            name = m.group(1)
            if name in declared and name not in checked:
                if not line_allows(raw_lines[ln - 1], rule):
                    findings.append(Finding(
                        path, ln, rule,
                        f"'{name}.value()' without a prior '{name}.ok()' "
                        f"(declared ErrorOr at line {declared[name]})"))


def check_wait_under_lock_guard(path, raw_lines, code_lines, findings):
    rule = "wait-under-lock-guard"
    if file_allows(raw_lines, rule):
        return
    depth = 0
    guard_depths = []  # brace depth at each active LockGuard declaration
    for ln, code in enumerate(code_lines, 1):
        if guard_depths and not line_allows(raw_lines[ln - 1], rule):
            m = BLOCKING_CALL.search(code)
            if m and not LOCK_GUARD_DECL.search(code):
                findings.append(Finding(
                    path, ln, rule,
                    "blocking call inside a LockGuard scope; scopes that "
                    "wait use UniqueLock (see DESIGN.md §9)"))
        if LOCK_GUARD_DECL.search(code):
            guard_depths.append(depth)
        for c in code:
            if c == "{":
                depth += 1
            elif c == "}":
                depth -= 1
                while guard_depths and depth <= guard_depths[-1]:
                    guard_depths.pop()
    # Unbalanced braces (macro tricks) simply end analysis at EOF.


def check_include_hygiene(path, raw_lines, code_lines, findings):
    rule = "include-hygiene"
    if file_allows(raw_lines, rule):
        return
    seen = {}
    first_include = None
    for ln, raw in enumerate(raw_lines, 1):
        # Match the raw line: the string stripper blanks quoted include
        # paths. A commented-out include is skipped via the code line.
        if not INCLUDE.match(code_lines[ln - 1]):
            continue
        m = INCLUDE.match(raw)
        if not m:
            continue
        style, target = m.groups()
        if first_include is None:
            first_include = (ln, style, target)
        if target.startswith("bits/"):
            if not line_allows(raw_lines[ln - 1], rule):
                findings.append(Finding(
                    path, ln, rule,
                    f"libstdc++ internal header <{target}>; include the "
                    "standard header instead"))
        if target in seen:
            if not line_allows(raw_lines[ln - 1], rule):
                findings.append(Finding(
                    path, ln, rule,
                    f"duplicate include of '{target}' "
                    f"(first at line {seen[target]})"))
        else:
            seen[target] = ln

    norm = path.replace(os.sep, "/")
    if path.endswith(".cpp") and "/src/ecas/" in norm:
        own = os.path.basename(path)[:-4] + ".h"
        sibling = os.path.join(os.path.dirname(path), own)
        if os.path.exists(sibling):
            subpath = norm.split("/src/", 1)[1]  # ecas/<dir>/<Name>.cpp
            expected = subpath[:-4] + ".h"
            if first_include is None or first_include[2] != expected:
                where = first_include[0] if first_include else 1
                findings.append(Finding(
                    path, where, rule,
                    f'first include must be the unit\'s own header '
                    f'"{expected}"'))

    if path.endswith(".h"):
        has_guard = any(GUARD.match(c) or PRAGMA_ONCE.match(c)
                        for c in code_lines[:60])
        if not has_guard:
            findings.append(Finding(
                path, 1, rule,
                "header lacks an ECAS_ include guard or #pragma once"))


def check_no_std_rand(path, raw_lines, code_lines, findings):
    rule = "no-std-rand"
    if file_allows(raw_lines, rule):
        return
    for ln, code in enumerate(code_lines, 1):
        if STD_RAND.search(code) and not line_allows(raw_lines[ln - 1], rule):
            findings.append(Finding(
                path, ln, rule,
                "std::rand/srand/random_shuffle; use the seeded generators "
                "in ecas/support/Random.h"))


def check_unbounded_queue(path, raw_lines, code_lines, findings):
    rule = "unbounded-queue"
    norm = path.replace(os.sep, "/")
    if "/src/ecas/service/" not in norm:
        return  # Only the service layer promises bounded queues.
    if file_allows(raw_lines, rule):
        return
    for ln, code in enumerate(code_lines, 1):
        m = UNBOUNDED_QUEUE.search(code)
        if m and not line_allows(raw_lines[ln - 1], rule):
            findings.append(Finding(
                path, ln, rule,
                f"std::{m.group(1)} in the service layer grows without "
                "bound under overload; use BoundedRing "
                "(ecas/service/Bounded.h) so a full queue becomes typed "
                "backpressure"))


def check_no_raw_output(path, raw_lines, code_lines, findings):
    rule = "no-raw-output"
    norm = path.replace(os.sep, "/")
    if "/src/ecas/" not in norm:
        return  # Tools, tests, benches, and examples print freely.
    if file_allows(raw_lines, rule):
        return
    for ln, code in enumerate(code_lines, 1):
        if line_allows(raw_lines[ln - 1], rule):
            continue
        m = IOSTREAM_INCLUDE.match(code)
        if m:
            findings.append(Finding(
                path, ln, rule,
                f"<{m.group(1)}> in library code; report through Status/"
                "ErrorOr or the obs layer instead of a stream"))
            continue
        m = RAW_OUTPUT.search(code)
        if m:
            what = m.group(1) or m.group(2)
            findings.append(Finding(
                path, ln, rule,
                f"raw '{what}' output in library code; report through "
                "Status/ErrorOr or the obs layer (snprintf into a buffer "
                "via support/Format is fine)"))


ATOMIC_WRITE = re.compile(r"\b(?:std::)?rename\s*\(|(?<![\w.>])fsync\s*\(")
ATOMIC_WRITE_BLESSED = (
    "/src/ecas/support/AtomicFile.cpp",
    "/src/ecas/core/HistoryJournal.cpp",
)


def check_atomic_write(path, raw_lines, code_lines, findings):
    rule = "atomic-write"
    norm = path.replace(os.sep, "/")
    if "/src/ecas/" not in norm:
        return  # Tools, tests, and benches manage their own files.
    if any(norm.endswith(b) for b in ATOMIC_WRITE_BLESSED):
        return
    if file_allows(raw_lines, rule):
        return
    for ln, code in enumerate(code_lines, 1):
        m = ATOMIC_WRITE.search(code)
        if m and not line_allows(raw_lines[ln - 1], rule):
            what = m.group(0).rstrip("(").strip()
            findings.append(Finding(
                path, ln, rule,
                f"raw '{what}(' outside the blessed durability modules; "
                "use writeFileAtomic/syncParentDir from "
                "ecas/support/AtomicFile.h so the rename survives a crash "
                "(DESIGN.md §13)"))


SIGNAL_SAFE_MARK = re.compile(r"\bECAS_SIGNAL_SAFE\b")
SIGNAL_UNSAFE = re.compile(
    r"\b(?:std::)?(?:malloc|calloc|realloc|free|aligned_alloc)\s*\(|"
    r"\bnew\b|\bdelete\b|"
    r"\bstd::(?:string|vector|deque|map|unordered_map|set|function)\b|"
    r"\b(?:std::)?(?:printf|fprintf|snprintf|sprintf|puts|fputs|fopen|"
    r"fclose|fwrite|fflush|fputc|putchar)\s*\(|"
    r"\bstd::(?:cout|cerr|clog)\b|"
    r"\b(?:LockGuard|UniqueLock|AnnotatedMutex)\b|"
    r"\bstd::(?:lock_guard|unique_lock|scoped_lock|mutex)\b|"
    r"(?:\.|->)lock\s*\("
)


def check_signal_unsafe_in_handler(path, raw_lines, code_lines, findings):
    rule = "signal-unsafe-in-handler"
    if file_allows(raw_lines, rule):
        return
    pending = False      # marker seen, body brace not yet opened
    region_depth = None  # brace depth of the marked function's body
    depth = 0
    for ln, code in enumerate(code_lines, 1):
        if SIGNAL_SAFE_MARK.search(code) and \
                not re.match(r"\s*#\s*(?:define|undef|ifn?def)\b", code):
            pending = True
        if region_depth is not None and \
                not line_allows(raw_lines[ln - 1], rule):
            m = SIGNAL_UNSAFE.search(code)
            if m:
                findings.append(Finding(
                    path, ln, rule,
                    f"'{m.group(0).strip()}' inside an ECAS_SIGNAL_SAFE "
                    "function; a crash handler may only issue "
                    "async-signal-safe syscalls (write/open/close/raise/"
                    "_exit) over pre-serialized bytes (DESIGN.md §16)"))
        for c in code:
            if c == "{":
                depth += 1
                if pending:
                    region_depth = depth
                    pending = False
            elif c == "}":
                depth -= 1
                if region_depth is not None and depth < region_depth:
                    region_depth = None
    # Unbalanced braces (macro tricks) simply end analysis at EOF.


CHOOSE_ALPHA = re.compile(r"\bchooseAlpha\s*\(")
CHOOSE_ALPHA_BLESSED = (
    # The frozen wrapper itself, and the test pinning it bit-identical
    # to a single-view chooseOperatingPoint.
    "/src/ecas/core/AlphaSearch.h",
    "/src/ecas/core/AlphaSearch.cpp",
    "/tests/CoreTest.cpp",
)


def check_choose_alpha_deprecated(path, raw_lines, code_lines, findings):
    rule = "choose-alpha-deprecated"
    norm = path.replace(os.sep, "/")
    if any(norm.endswith(b) for b in CHOOSE_ALPHA_BLESSED):
        return
    if file_allows(raw_lines, rule):
        return
    for ln, code in enumerate(code_lines, 1):
        if CHOOSE_ALPHA.search(code) and \
                not line_allows(raw_lines[ln - 1], rule):
            findings.append(Finding(
                path, ln, rule,
                "chooseAlpha is the frozen legacy wrapper; new callers "
                "use chooseOperatingPoint (ecas/core/OperatingPoint.h) so "
                "the joint (alpha, frequency) search applies"))


def check_metric_name(path, raw_lines, code_lines, findings):
    rule = "metric-name"
    if file_allows(raw_lines, rule):
        return
    norm = path.replace(os.sep, "/")
    if norm.endswith("/src/ecas/obs/MetricNames.h"):
        # Every string literal in the canonical-names header is a metric
        # name; quotes survive comment stripping, so a quote in the code
        # line marks a real literal on the raw line.
        for ln, code in enumerate(code_lines, 1):
            if '"' not in code or line_allows(raw_lines[ln - 1], rule):
                continue
            for m in STRING_LITERAL.finditer(raw_lines[ln - 1]):
                name = m.group(1)
                if not METRIC_NAME_VALID.match(name):
                    findings.append(Finding(
                        path, ln, rule,
                        f'metric name "{name}" must match '
                        "^eas_[a-z][a-z0-9_]*$ (lowercase snake_case, "
                        "eas_ prefix)"))
        return
    if "/src/ecas/" not in norm:
        return  # Tests, tools, and benches may register ad-hoc metrics.
    for ln, code in enumerate(code_lines, 1):
        if METRIC_INLINE_REG.search(code) and \
                not line_allows(raw_lines[ln - 1], rule):
            findings.append(Finding(
                path, ln, rule,
                "instrument registered with an inline string literal; add "
                "the name to ecas/obs/MetricNames.h and pass the names:: "
                "constant"))


# --- stale-suppression -----------------------------------------------------
# A suppression is a claim: "this rule fires here, and here is why that
# is fine". When the code changes and the rule no longer fires, the
# comment becomes dead documentation that licenses a future regression.
# Each rule maps to the line trigger its check uses (would it even look
# at this line?) and, where the rule is path-scoped, a scope predicate.

def _in_ecas(norm):
    return "/src/ecas/" in norm


STALE_TRIGGERS = {
    "naked-mutex": lambda code: NAKED_MUTEX.search(code),
    "unchecked-value": lambda code: VALUE_CALL.search(code),
    "wait-under-lock-guard": lambda code: BLOCKING_CALL.search(code),
    "include-hygiene": lambda code: INCLUDE.match(code),
    "no-std-rand": lambda code: STD_RAND.search(code),
    "unbounded-queue": lambda code: UNBOUNDED_QUEUE.search(code),
    "no-raw-output": lambda code: (RAW_OUTPUT.search(code) or
                                   IOSTREAM_INCLUDE.match(code)),
    "atomic-write": lambda code: ATOMIC_WRITE.search(code),
    "signal-unsafe-in-handler": lambda code: SIGNAL_UNSAFE.search(code),
    "choose-alpha-deprecated": lambda code: CHOOSE_ALPHA.search(code),
    "metric-name": lambda code: (METRIC_INLINE_REG.search(code) or
                                 '"' in code),
}

STALE_SCOPE = {
    "naked-mutex": lambda norm: "/src/ecas/support/" not in norm,
    "unbounded-queue": lambda norm: "/src/ecas/service/" in norm,
    "no-raw-output": _in_ecas,
    "atomic-write": lambda norm: (_in_ecas(norm) and
                                  not any(norm.endswith(b)
                                          for b in ATOMIC_WRITE_BLESSED)),
    "choose-alpha-deprecated": lambda norm: not any(
        norm.endswith(b) for b in CHOOSE_ALPHA_BLESSED),
    "metric-name": _in_ecas,
}


def check_stale_suppression(path, raw_lines, code_lines, findings):
    rule = "stale-suppression"
    if file_allows(raw_lines, rule):
        return
    norm = path.replace(os.sep, "/")
    known = {c.__name__.replace("check_", "").replace("_", "-")
             for c in CHECKS}

    def target_live(target, codes):
        scope = STALE_SCOPE.get(target)
        if scope and not scope(norm):
            return False
        trigger = STALE_TRIGGERS.get(target)
        if trigger is None:
            return True  # no trigger model: assume live
        return any(trigger(c) for c in codes)

    for ln, raw in enumerate(raw_lines, 1):
        m = ALLOW_LINE.search(raw)
        if m and m.group(1) != rule:
            target = m.group(1)
            if target not in known:
                findings.append(Finding(
                    path, ln, rule,
                    f"'allow({target})' names no known rule "
                    "(see --list-rules)"))
            elif not target_live(target, [code_lines[ln - 1]]):
                findings.append(Finding(
                    path, ln, rule,
                    f"'allow({target})' no longer suppresses anything on "
                    "this line; delete the comment"))
        m = ALLOW_FILE.search(raw)
        if m and m.group(1) != rule:
            target = m.group(1)
            if target not in known:
                findings.append(Finding(
                    path, ln, rule,
                    f"'allow-file({target})' names no known rule "
                    "(see --list-rules)"))
            elif not target_live(target, code_lines):
                findings.append(Finding(
                    path, ln, rule,
                    f"'allow-file({target})' suppresses nothing anywhere "
                    "in this file; delete the comment"))


CHECKS = [
    check_naked_mutex,
    check_unchecked_value,
    check_wait_under_lock_guard,
    check_include_hygiene,
    check_no_std_rand,
    check_unbounded_queue,
    check_no_raw_output,
    check_atomic_write,
    check_signal_unsafe_in_handler,
    check_choose_alpha_deprecated,
    check_metric_name,
    check_stale_suppression,
]


def lint_file(path, findings):
    try:
        with open(path, encoding="utf-8", errors="replace") as f:
            raw_lines = f.read().splitlines()
    except OSError as e:
        findings.append(Finding(path, 0, "io", str(e)))
        return
    code_lines = []
    in_block = False
    for raw in raw_lines:
        code, in_block = strip_comments_and_strings(raw, in_block)
        code_lines.append(code)
    for check in CHECKS:
        check(path, raw_lines, code_lines, findings)


def collect_files(root, paths):
    files = []
    for p in paths:
        full = p if os.path.isabs(p) else os.path.join(root, p)
        if os.path.isfile(full):
            files.append(full)
            continue
        for dirpath, dirnames, filenames in os.walk(full):
            # Fixture corpora under tools/ are deliberately rule-breaking
            # analyzer test inputs; the self-tests lint them explicitly.
            dirnames[:] = [d for d in dirnames
                           if not d.startswith("build")
                           and not d.endswith("_fixtures")]
            for name in sorted(filenames):
                if name.endswith(CXX_EXTENSIONS):
                    files.append(os.path.join(dirpath, name))
    return files


def run_self_test(root):
    """Lints the fixture corpus (a miniature src/ecas tree full of
    deliberate violations plus honoured suppressions) and compares the
    multiset of (file, rule) findings against expected_findings.json.
    Any file named clean_* must produce nothing at all."""
    fixtures = os.path.join(root, "tools", "lint_fixtures")
    if not os.path.isdir(fixtures):
        print(f"ecas-lint: self-test fixtures missing at {fixtures}",
              file=sys.stderr)
        return 2
    findings = []
    for path in collect_files(fixtures, ["src"]):
        lint_file(path, findings)
    got = sorted((os.path.basename(f.path), f.rule) for f in findings)
    with open(os.path.join(fixtures, "expected_findings.json"),
              encoding="utf-8") as f:
        expected = sorted(tuple(e) for e in json.load(f))
    failures = []
    if got != expected:
        remaining = list(got)
        for e in expected:
            if e in remaining:
                remaining.remove(e)
            else:
                failures.append(f"missing expected finding: {e}")
        for g in remaining:
            failures.append(f"unexpected finding: {g}")
    clean = [f for f in findings
             if os.path.basename(f.path).startswith("clean_")]
    if clean:
        failures.append(f"clean fixture produced {len(clean)} finding(s)")
    if failures:
        for msg in failures:
            print(f"ecas-lint: SELF-TEST FAIL: {msg}", file=sys.stderr)
        for f in findings:
            print("  " + f.render(fixtures), file=sys.stderr)
        return 1
    print(f"ecas-lint: self-test OK ({len(expected)} expected findings "
          "matched, clean fixture clean, suppressions honoured)")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*", default=[],
                        help="files or directories (default: the ecas tree)")
    parser.add_argument("--root", default=None,
                        help="repository root (default: parent of tools/)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print rule names and exit")
    parser.add_argument("--self-test", action="store_true",
                        help="run the fixture corpus and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for check in CHECKS:
            print(check.__name__.replace("check_", "").replace("_", "-"))
        return 0

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))

    if args.self_test:
        return run_self_test(root)

    paths = args.paths or [d for d in DEFAULT_DIRS
                           if os.path.isdir(os.path.join(root, d))]
    findings = []
    files = collect_files(root, paths)
    if not files:
        print("ecas-lint: no input files", file=sys.stderr)
        return 2
    for path in files:
        lint_file(path, findings)

    for f in findings:
        print(f.render(root))
    print(f"ecas-lint: {len(files)} files, {len(findings)} finding(s)")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
