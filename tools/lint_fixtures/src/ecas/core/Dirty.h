//===-- lint_fixtures .../Dirty.h - self-test corpus -----------------------===//
#ifndef ECAS_LINT_FIXTURE_DIRTY_H
#define ECAS_LINT_FIXTURE_DIRTY_H
// Header exists so Dirty.cpp exercises the own-header-first rule's
// positive path (its first include IS this header, so no finding).
#endif
