//===-- lint_fixtures .../Unit.cpp - self-test corpus ----------------------===//
// First include is not the unit's own header: expected include-hygiene.

#include <vector>
#include "ecas/core/Unit.h"

namespace fixture {
int unitValue() { return 1; }
} // namespace fixture
