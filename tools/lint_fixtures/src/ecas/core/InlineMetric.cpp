//===-- lint_fixtures .../InlineMetric.cpp - self-test corpus --------------===//
// Instrument registered with an inline literal instead of a names::
// constant: expected metric-name.

namespace fixture {
void registerAdhoc(Registry &Reg) {
  Reg.counter("eas_adhoc_total"); // expected: metric-name
}
} // namespace fixture
