//===-- lint_fixtures .../NoGuard.h - self-test corpus ---------------------===//
// No include guard and no pragma once: expected include-hygiene.

namespace fixture {
inline int noGuard() { return 2; }
} // namespace fixture
