//===-- lint_fixtures .../clean_allowed.cpp - self-test corpus -------------===//
//
// Honoured suppressions: the self-test asserts this file produces NO
// findings — the allow() lines genuinely cover a firing rule, so the
// stale-suppression check must stay quiet about them too.
//
// ecas-lint: allow-file(no-raw-output) -- fixture: prints by design
//
//===----------------------------------------------------------------------===//

#include <mutex>

namespace fixture {

std::mutex CleanM; // ecas-lint: allow(naked-mutex) -- fixture exception

void note(const char *Msg) {
  std::fprintf(stderr, "%s\n", Msg);
}

} // namespace fixture
