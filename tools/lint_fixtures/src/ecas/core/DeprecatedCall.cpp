//===-- lint_fixtures .../DeprecatedCall.cpp - self-test corpus ------------===//
// New caller of the frozen chooseAlpha wrapper: expected
// choose-alpha-deprecated. The second call carries an honoured
// suppression and must stay silent.

namespace fixture {
void decide(const TimeModel &Model, const PowerCurve &Curve,
            const Metric &Objective) {
  (void)chooseAlpha(Model, Curve, Objective, 1e6); // expected finding
  (void)chooseAlpha(Model, Curve, Objective, 1e6); // ecas-lint: allow(choose-alpha-deprecated)
}
} // namespace fixture
