//===-- lint_fixtures .../Unit.h - self-test corpus ------------------------===//
#ifndef ECAS_LINT_FIXTURE_UNIT_H
#define ECAS_LINT_FIXTURE_UNIT_H
#endif
