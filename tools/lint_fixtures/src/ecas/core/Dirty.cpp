//===-- lint_fixtures .../Dirty.cpp - self-test corpus ---------------------===//
//
// Deliberately rule-breaking input for ecas_lint.py --self-test: each
// marked line must produce exactly the finding expected_findings.json
// lists. Never compiled; it only has to look like C++ to the linter.
//
//===----------------------------------------------------------------------===//

#include "ecas/core/Dirty.h"
#include <mutex>
#include <vector>
#include <vector>            // expected: include-hygiene (duplicate)
#include <bits/stl_vector.h> // expected: include-hygiene (internal header)

namespace fixture {

std::mutex M; // expected: naked-mutex

void lockAndWait(Cv &Waiter) {
  std::lock_guard<std::mutex> Lock(M); // expected: naked-mutex
  Waiter.wait(Lock); // expected: wait-under-lock-guard
}

int uncheckedParse() {
  ErrorOr<int> Parsed = parseInt("7");
  return Parsed.value(); // expected: unchecked-value
}

double randomJitter() {
  return std::rand() * 0.5; // expected: no-std-rand
}

void publish(const char *Tmp, const char *Final) {
  std::fprintf(stderr, "publishing\n"); // expected: no-raw-output
  std::rename(Tmp, Final); // expected: atomic-write
}

double staleComment(double X) {
  // The mutex this once excused is long gone: expected stale-suppression.
  return X * 2.0; // ecas-lint: allow(naked-mutex)
}

double unknownRule(double X) {
  // Typo'd rule names must not silently suppress nothing: expected
  // stale-suppression.
  return X; // ecas-lint: allow(no-such-rule)
}

} // namespace fixture
