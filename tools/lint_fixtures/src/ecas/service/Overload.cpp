//===-- lint_fixtures .../Overload.cpp - self-test corpus ------------------===//
// Unbounded container in the service layer: expected unbounded-queue.

#include <deque>

namespace fixture {
std::deque<int> Backlog; // expected: unbounded-queue
} // namespace fixture
