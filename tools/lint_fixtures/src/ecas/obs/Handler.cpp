// Fixture: deliberate async-signal-safety violations inside functions
// marked ECAS_SIGNAL_SAFE, plus one honoured suppression and an
// unmarked function that may do what it likes.

#include <cstdlib>

#define ECAS_SIGNAL_SAFE

namespace {

struct AnnotatedMutexLike {
  void lockIt() {}
};

ECAS_SIGNAL_SAFE void crashWrite() {
  void *Block = malloc(64); // finding: heap call in a crash handler
  (void)Block;
  LockGuard Lock(SomeMutex); // finding: lock in a crash handler
  int Fd = 2;
  (void)Fd;
  char *Legal =
      static_cast<char *>(malloc(1)); // ecas-lint: allow(signal-unsafe-in-handler)
  (void)Legal;
}

void ordinaryFunction() {
  // Not marked: heap and locks are fine here and must not be flagged.
  void *Block = malloc(64);
  (void)Block;
}

} // namespace
