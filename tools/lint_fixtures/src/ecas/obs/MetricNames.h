//===-- lint_fixtures .../MetricNames.h - self-test corpus -----------------===//
#pragma once

namespace fixture::names {
inline constexpr char Good[] = "eas_good_total";
inline constexpr char Bad[] = "BadMetric"; // expected: metric-name
} // namespace fixture::names
