//===-- tools/ecas_cli.cpp - Command-line front end ------------------------===//
//
// Part of the ecas project, under the MIT License.
//
// The operational entry point a downstream user drives:
//
//   ecas-cli platforms
//   ecas-cli characterize --platform=haswell-desktop --out=curves.txt
//   ecas-cli run --platform=haswell-desktop --workload=CC --scheme=eas
//            --metric=edp [--curves=curves.txt] [--scale=0.3]
//   ecas-cli sweep --platform=baytrail-tablet --workload=MM
//   ecas-cli suite --platform=haswell-desktop --metric=edp
//   ecas-cli serve --platform=haswell-desktop --threads=8
//            --invocations=200 --history-file=tableg.bin
//
// Exit codes: 0 success, 1 runtime failure (I/O, snapshot corruption,
// drain failure), 2 usage error (unknown command/platform/workload/
// scenario or malformed flag value).
//
//===----------------------------------------------------------------------===//

#include "ecas/core/ExecutionSession.h"
#include "ecas/fault/FaultPlan.h"
#include "ecas/hw/Presets.h"
#include "ecas/obs/Anomaly.h"
#include "ecas/obs/ChromeTrace.h"
#include "ecas/obs/DecisionLog.h"
#include "ecas/obs/FlightRecorder.h"
#include "ecas/obs/Incident.h"
#include "ecas/obs/LastGasp.h"
#include "ecas/obs/Metrics.h"
#include "ecas/obs/MetricsExport.h"
#include "ecas/obs/Sinks.h"
#include "ecas/power/Characterizer.h"
#include "ecas/service/Service.h"
#include "ecas/support/AtomicFile.h"
#include "ecas/support/Cancellation.h"
#include "ecas/support/Flags.h"
#include "ecas/support/Format.h"
#include "ecas/support/Random.h"
#include "ecas/support/ThreadAnnotations.h"
#include "ecas/workloads/Registry.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

using namespace ecas;

namespace {

/// Distinct exit codes so scripts can tell operator mistakes from
/// failures of the run itself.
constexpr int ExitOk = 0;
constexpr int ExitRuntime = 1;
constexpr int ExitUsage = 2;

int usage() {
  std::fprintf(
      stderr,
      "usage: ecas-cli <command> [--flags]\n"
      "commands:\n"
      "  platforms                         list platform presets\n"
      "  characterize --platform=NAME      run the one-time power\n"
      "               [--out=FILE]         characterization\n"
      "               [--pstates=N]        sweep an N-entry frequency\n"
      "                                    ladder (family output)\n"
      "  run  --platform=NAME --workload=ABBR [--scheme=eas|cpu|gpu|perf|\n"
      "       oracle|fixed] [--alpha=A] [--metric=energy|edp|ed2p]\n"
      "       [--curves=FILE] [--scale=S] [--fault-plan=PLAN]\n"
      "       [--history-file=FILE] [--deadline-ms=N]\n"
      "       [--pstates=N]                joint (alpha, frequency) search\n"
      "                                    over an N-entry DVFS ladder\n"
      "       [--policy=minimize|race-to-idle|pace-to-deadline]\n"
      "       [--idle-watts=W]             race-to-idle's idle floor\n"
      "       [--trace-out=FILE]           write a Chrome trace-event\n"
      "                                    JSON (Perfetto-loadable)\n"
      "       [--metrics]                  print span/counter summary\n"
      "       [--metrics-out=FILE]         write a Prometheus-text snapshot\n"
      "       [--metrics-json=FILE]        write a JSON metrics snapshot\n"
      "       [--decision-log=FILE]        dump the per-decision audit ring\n"
      "                                    (.csv renders CSV, else JSONL)\n"
      "  sweep --platform=NAME --workload=ABBR [--metric=M] [--scale=S]\n"
      "        [--fault-plan=PLAN]\n"
      "  suite --platform=NAME [--metric=M] [--scale=S]\n"
      "        [--fault-plan=PLAN]\n"
      "  faults --platform=NAME [--scenario=NAME] [--workload=ABBR]\n"
      "         [--metric=M] [--scale=S]   replay fault scenarios and\n"
      "                                    report the degradation policy\n"
      "  serve --platform=NAME [--tenants=N] [--requests=M]\n"
      "        [--workers=W] [--queue-cap=C] [--sla-mix=A:B:C]\n"
      "        [--qps=Q]                   multi-tenant service: N synthetic\n"
      "        [--sla0-deadline-ms=N]      tenants submit M requests each\n"
      "        [--sla1-deadline-ms=N]      through the SLA-class queue and\n"
      "        [--shed-threshold=F]        admission controller, retrying\n"
      "        [--metric=M] [--scale=S]    rejections with capped backoff\n"
      "        [--fault-plan=PLAN] [--history-file=FILE]\n"
      "        [--pstates=N] [--policy=NAME] [--idle-watts=W]\n"
      "        [--no-journal] [--journal=FILE]\n"
      "                                    with --history-file, table-G\n"
      "                                    merges journal to FILE (default\n"
      "                                    <history>.wal) and restarts\n"
      "                                    recover snapshot + journal;\n"
      "                                    --no-journal opts out\n"
      "        [--drain-grace-ms=N] [--trace-out=FILE] [--metrics]\n"
      "        [--metrics-out=FILE] [--metrics-interval-ms=N]\n"
      "        [--metrics-json=FILE] [--decision-log=FILE]\n"
      "        [--control-socket=PATH]      UNIX-socket introspection\n"
      "                                     endpoint (statusz/metricz/dump)\n"
      "        [--incident-dir=DIR]         arm the anomaly detectors and\n"
      "        [--incident-keep=K]          write triggered forensic\n"
      "        [--detector-interval-ms=N]   bundles (newest K kept) plus a\n"
      "                                     crash-time last-gasp document\n"
      "        [--no-flight-recorder]       disarm the always-on black box\n"
      "        (--threads/--invocations keep working as legacy aliases;\n"
      "        exit 1 when any SLA0 deadline missed or shed fraction\n"
      "        exceeds --shed-threshold)\n"
      "  inspect SOCKET [COMMAND]          query a live serve's control\n"
      "                                    endpoint (default statusz)\n"
      "  inspect --validate=DIR            validate one incident bundle\n"
      "  inspect --validate-lastgasp=FILE  validate a last-gasp document\n"
      "  bench-service --platform=NAME [--requests=N] [--workers=W]\n"
      "        [--out=FILE]                steady-state admission+decision\n"
      "                                    latency and service throughput,\n"
      "                                    written as JSON (default\n"
      "                                    BENCH_service.json)\n"
      "  stats FILE                        pretty-print a Prometheus-text\n"
      "                                    snapshot (from --metrics-out)\n"
      "exit codes: 0 success, 1 runtime failure, 2 usage error\n");
  return ExitUsage;
}

std::optional<PlatformSpec> platformByName(const std::string &Name) {
  for (PlatformSpec &Spec : allPresets())
    if (Spec.Name == Name)
      return Spec;
  // Also accept a path to a serialized spec.
  std::ifstream File(Name);
  if (File) {
    std::ostringstream Buffer;
    Buffer << File.rdbuf();
    return PlatformSpec::deserialize(Buffer.str());
  }
  return std::nullopt;
}

/// Attaches --fault-plan=FILE|SCENARIO to \p Spec when present: a path
/// to a serialized plan, or (when no such file exists) a built-in
/// scenario name from `ecas-cli faults`. Returns false on an unreadable
/// or malformed plan (already reported to stderr).
bool applyFaultPlan(PlatformSpec &Spec, const Flags &Args) {
  std::string Path = Args.getString("fault-plan", "");
  if (Path.empty())
    return true;
  ErrorOr<FaultPlan> Plan = FaultPlan::scenario(Path);
  std::ifstream File(Path);
  if (File) {
    std::ostringstream Buffer;
    Buffer << File.rdbuf();
    Plan = FaultPlan::load(Buffer.str());
    if (!Plan) {
      std::fprintf(stderr, "error: %s: %s\n", Path.c_str(),
                   Plan.status().message().c_str());
      return false;
    }
  } else if (!Plan) {
    std::fprintf(stderr,
                 "error: fault plan %s is neither a readable file nor a "
                 "built-in scenario (have:",
                 Path.c_str());
    for (const std::string &Known : FaultPlan::scenarioNames())
      std::fprintf(stderr, " %s", Known.c_str());
    std::fprintf(stderr, ")\n");
    return false;
  }
  Spec.Faults = *Plan;
  std::printf("fault plan '%s': %zu events, seed %llu\n",
              Plan->name().c_str(), Plan->events().size(),
              static_cast<unsigned long long>(Plan->seed()));
  return true;
}

/// Cause (injected faults) and effect (degradation policy) side by side.
void printDegradation(const SessionReport &R) {
  if (R.FaultsEnabled) {
    const FaultStats &F = R.Injected;
    std::printf("  injected: %llu launch-fail, %llu hang-query, "
                "%llu throttle-query, %llu rapl-drop, %llu rapl-jump, "
                "%llu counter-noise\n",
                static_cast<unsigned long long>(F.LaunchFailures),
                static_cast<unsigned long long>(F.HangQueries),
                static_cast<unsigned long long>(F.ThrottleQueries),
                static_cast<unsigned long long>(F.RaplSamplesDropped),
                static_cast<unsigned long long>(F.RaplCounterJumps),
                static_cast<unsigned long long>(F.NoisyCounterReads));
  }
  const ResilienceSummary &S = R.Resilience;
  std::printf("  reaction: %u retries, %u abandoned, %u hangs, "
              "%u quarantines, %u cpu-only invocations, %u recoveries%s\n",
              S.LaunchRetries, S.LaunchesAbandoned, S.HangsDetected,
              S.Quarantines, S.QuarantinedInvocations, S.Recoveries,
              S.degraded() ? "  [degraded]" : "");
}

std::optional<SchemeKind> schemeByName(const std::string &Name) {
  if (Name == "eas")
    return SchemeKind::Eas;
  if (Name == "cpu")
    return SchemeKind::CpuOnly;
  if (Name == "gpu")
    return SchemeKind::GpuOnly;
  if (Name == "perf")
    return SchemeKind::Perf;
  if (Name == "oracle")
    return SchemeKind::Oracle;
  if (Name == "fixed")
    return SchemeKind::FixedAlpha;
  return std::nullopt;
}

/// True when either observability flag asks for a recorder.
bool wantsObservability(const Flags &Args) {
  return !Args.getString("trace-out", "").empty() ||
         Args.getBool("metrics", false);
}

/// Drains \p Recorder into whatever the --trace-out / --metrics flags
/// requested. Returns false on an I/O failure (already reported).
bool drainObservability(const obs::TraceRecorder &Recorder,
                        const Flags &Args) {
  std::string TraceOut = Args.getString("trace-out", "");
  if (!TraceOut.empty()) {
    obs::ChromeTraceSink Sink(TraceOut);
    if (Status S = Recorder.drainTo(Sink); !S) {
      std::fprintf(stderr, "error: %s\n", S.message().c_str());
      return false;
    }
    std::printf("wrote %s (%llu events; load in Perfetto or "
                "chrome://tracing)\n",
                TraceOut.c_str(),
                static_cast<unsigned long long>(Recorder.eventsRecorded()));
  }
  if (Args.getBool("metrics", false)) {
    obs::SummarySink Summary;
    if (Status S = Recorder.drainTo(Summary); !S) {
      std::fprintf(stderr, "error: %s\n", S.message().c_str());
      return false;
    }
    std::fputs(Summary.text().c_str(), stdout);
  }
  return true;
}

/// True when any flag asks for a metrics registry.
bool wantsMetricsRegistry(const Flags &Args) {
  return !Args.getString("metrics-out", "").empty() ||
         !Args.getString("metrics-json", "").empty();
}

/// Writes the registry snapshot and the audit ring wherever
/// --metrics-out, --metrics-json, and --decision-log point (each write
/// atomic: tmp + rename). Returns false on an I/O failure (reported).
bool writeMetricsOutputs(const obs::MetricsRegistry &Registry,
                         const obs::DecisionLog *Decisions,
                         const Flags &Args) {
  std::string Out = Args.getString("metrics-out", "");
  std::string Json = Args.getString("metrics-json", "");
  if (!Out.empty() || !Json.empty()) {
    obs::MetricsSnapshot Snap = Registry.snapshot();
    if (!Out.empty()) {
      if (Status S = obs::writeFileAtomic(Out, obs::renderPrometheus(Snap));
          !S) {
        std::fprintf(stderr, "error: %s: %s\n", Out.c_str(),
                     S.message().c_str());
        return false;
      }
      std::printf("wrote %s (%zu series; render with `ecas-cli stats %s`)\n",
                  Out.c_str(), Snap.Samples.size(), Out.c_str());
    }
    if (!Json.empty()) {
      if (Status S =
              obs::writeFileAtomic(Json, obs::renderMetricsJson(Snap));
          !S) {
        std::fprintf(stderr, "error: %s: %s\n", Json.c_str(),
                     S.message().c_str());
        return false;
      }
      std::printf("wrote %s (%zu series, JSON)\n", Json.c_str(),
                  Snap.Samples.size());
    }
  }
  std::string LogPath = Args.getString("decision-log", "");
  if (!LogPath.empty() && Decisions) {
    if (Status S = obs::DecisionLogSink::write(*Decisions, LogPath); !S) {
      std::fprintf(stderr, "error: %s: %s\n", LogPath.c_str(),
                   S.message().c_str());
      return false;
    }
    std::printf("wrote %s (%llu decisions, newest %zu resident)\n",
                LogPath.c_str(),
                static_cast<unsigned long long>(Decisions->appended()),
                Decisions->snapshot().size());
  }
  return true;
}

Metric metricByName(const std::string &Name) {
  if (Name == "energy")
    return Metric::energy();
  if (Name == "ed2p")
    return Metric::ed2p();
  return Metric::edp();
}

/// Applies the DVFS flags shared by run/serve: --pstates=N synthesizes
/// an N-entry frequency ladder on \p Spec and turns the joint
/// (alpha, frequency) search on; --policy=NAME picks the scheduling
/// policy (pace-to-deadline reuses --deadline-ms as its target);
/// --idle-watts=W shapes race-to-idle. Returns false (after reporting)
/// on a malformed flag.
bool applyDvfsFlags(PlatformSpec &Spec, EasConfig &Config,
                    const Flags &Args) {
  double PStatesFlag = Args.getDouble("pstates", 0.0);
  if (PStatesFlag < 0.0 || PStatesFlag > PlatformSpec::MaxPStates) {
    std::fprintf(stderr, "error: --pstates wants 1..%u\n",
                 PlatformSpec::MaxPStates);
    return false;
  }
  if (unsigned PStates = static_cast<unsigned>(PStatesFlag)) {
    Spec.synthesizePStates(PStates);
    Config.PStates = true;
  }
  if (std::string Name = Args.getString("policy", ""); !Name.empty()) {
    std::optional<SchedulingPolicy> Policy = schedulingPolicyByName(Name);
    if (!Policy) {
      std::fprintf(stderr, "error: unknown policy (have: minimize "
                           "race-to-idle pace-to-deadline)\n");
      return false;
    }
    Config.Policy = *Policy;
  }
  Config.IdleWatts = Args.getDouble("idle-watts", 0.0);
  if (Config.Policy == SchedulingPolicy::PaceToDeadline) {
    Config.DeadlineSeconds = Args.getDouble("deadline-ms", 0.0) / 1e3;
    if (Config.DeadlineSeconds <= 0.0) {
      std::fprintf(stderr, "error: --policy=pace-to-deadline needs a "
                           "positive --deadline-ms\n");
      return false;
    }
  }
  return true;
}

PowerCurveSet curvesFor(const PlatformSpec &Spec, const Flags &Args) {
  std::string Path = Args.getString("curves", "");
  if (!Path.empty()) {
    std::ifstream File(Path);
    if (File) {
      std::ostringstream Buffer;
      Buffer << File.rdbuf();
      auto Loaded = PowerCurveSet::deserialize(Buffer.str());
      if (Loaded && Loaded->complete()) {
        std::printf("loaded curves from %s (platform %s)\n", Path.c_str(),
                    Loaded->platformName().c_str());
        return *Loaded;
      }
    }
    std::fprintf(stderr,
                 "warning: cannot load %s; characterizing instead\n",
                 Path.c_str());
  }
  return Characterizer(Spec).characterize();
}

/// Family analogue of curvesFor, used when the joint (alpha, frequency)
/// search is on: --curves=FILE loads a serialized family (a legacy
/// single-set file loads as state 0), anything else characterizes every
/// P-state the spec advertises.
PowerCurveFamily familyFor(const PlatformSpec &Spec, const Flags &Args) {
  std::string Path = Args.getString("curves", "");
  if (!Path.empty()) {
    std::ifstream File(Path);
    if (File) {
      std::ostringstream Buffer;
      Buffer << File.rdbuf();
      auto Loaded =
          PowerCurveFamily::load(Buffer.str(), /*RequireComplete=*/true);
      if (Loaded) {
        std::printf("loaded %u-state curve family from %s (platform %s)\n",
                    Loaded->numPStates(), Path.c_str(),
                    Loaded->platformName().c_str());
        return *Loaded;
      }
    }
    std::fprintf(stderr, "warning: cannot load %s; characterizing instead\n",
                 Path.c_str());
  }
  return characterizeFamily(Spec);
}

std::vector<Workload> suiteFor(const PlatformSpec &Spec,
                               const Flags &Args) {
  WorkloadConfig Config;
  Config.Scale = Args.getDouble("scale", 0.3);
  return Spec.Name == "baytrail-tablet" ? tabletSuite(Config)
                                        : desktopSuite(Config);
}

void printReport(const SessionReport &R) {
  std::printf("%-7s time %-10s energy %-10s avg %8.3f W  %s %.6g  "
              "alpha %.2f\n",
              R.Scheme.c_str(), formatDuration(R.Seconds).c_str(),
              formatEnergy(R.Joules).c_str(), R.averageWatts(), "metric",
              R.MetricValue, R.MeanAlpha);
}

int cmdPlatforms() {
  for (const PlatformSpec &Spec : allPresets())
    std::printf("%-18s %u cores @ %.2f-%.2f GHz, %u EUs @ %.3f-%.3f GHz, "
                "%.1f GB/s, TDP %.1f W\n",
                Spec.Name.c_str(), Spec.Cpu.Cores, Spec.Cpu.MinFreqGHz,
                Spec.Cpu.MaxTurboGHz, Spec.Gpu.ExecutionUnits,
                Spec.Gpu.MinFreqGHz, Spec.Gpu.MaxFreqGHz,
                Spec.Memory.BandwidthGBs, Spec.Pcu.TdpWatts);
  return ExitOk;
}

int cmdCharacterize(const Flags &Args) {
  auto Spec = platformByName(Args.getString("platform", "haswell-desktop"));
  if (!Spec) {
    std::fprintf(stderr, "error: unknown platform\n");
    return ExitUsage;
  }
  // --pstates=N characterizes every rung of an N-entry synthesized
  // ladder and writes the delimited family format; without it the
  // output stays the legacy single-state set, byte for byte.
  std::string Text;
  double PStatesFlag = Args.getDouble("pstates", 0.0);
  if (PStatesFlag < 0.0 || PStatesFlag > PlatformSpec::MaxPStates) {
    std::fprintf(stderr, "error: --pstates wants 1..%u\n",
                 PlatformSpec::MaxPStates);
    return ExitUsage;
  }
  if (unsigned PStates = static_cast<unsigned>(PStatesFlag)) {
    Spec->synthesizePStates(PStates);
    Text = characterizeFamily(*Spec).serialize();
  } else {
    Text = Characterizer(*Spec).characterize().serialize();
  }
  std::string Out = Args.getString("out", "");
  if (Out.empty()) {
    std::fputs(Text.c_str(), stdout);
    return ExitOk;
  }
  std::ofstream File(Out);
  if (!File) {
    std::fprintf(stderr, "error: cannot write %s\n", Out.c_str());
    return ExitRuntime;
  }
  File << Text;
  std::printf("wrote %s\n", Out.c_str());
  return ExitOk;
}

int cmdRun(const Flags &Args) {
  auto Spec = platformByName(Args.getString("platform", "haswell-desktop"));
  if (!Spec) {
    std::fprintf(stderr, "error: unknown platform\n");
    return ExitUsage;
  }
  if (!applyFaultPlan(*Spec, Args))
    return ExitRuntime;
  std::vector<Workload> Suite = suiteFor(*Spec, Args);
  const Workload *W = findWorkload(Suite, Args.getString("workload", "CC"));
  if (!W) {
    std::fprintf(stderr, "error: unknown workload (have:");
    for (const Workload &Each : Suite)
      std::fprintf(stderr, " %s", Each.Abbrev.c_str());
    std::fprintf(stderr, ")\n");
    return ExitUsage;
  }
  Metric Objective = metricByName(Args.getString("metric", "edp"));
  std::optional<SchemeKind> Kind = schemeByName(Args.getString("scheme", "eas"));
  if (!Kind) {
    std::fprintf(stderr,
                 "error: unknown scheme (have: eas cpu gpu perf oracle "
                 "fixed)\n");
    return ExitUsage;
  }
  // DVFS flags mutate the spec (P-state ladder), so they must land
  // before the session snapshots it.
  EasConfig EasCfg;
  if (!applyDvfsFlags(*Spec, EasCfg, Args))
    return ExitUsage;
  ExecutionSession Session(*Spec);
  std::printf("%s on %s, optimizing %s (%u invocations)\n",
              W->Name.c_str(), Spec->Name.c_str(),
              Objective.name().c_str(), W->numInvocations());

  obs::TraceRecorder Recorder;
  obs::MetricsRegistry Registry;
  obs::DecisionLog Decisions;
  RunOptions Options;
  Options.Trace = &W->Trace;
  Options.Objective = Objective;
  Options.Alpha = Args.getDouble("alpha", 0.5);
  if (wantsObservability(Args))
    Options.Recorder = &Recorder;
  if (wantsMetricsRegistry(Args))
    Options.Metrics = &Registry;
  bool WantDecisions = !Args.getString("decision-log", "").empty();
  if (WantDecisions)
    Options.Decisions = &Decisions;

  // EAS alone needs curves, a table-G file, and a deadline; the sweep
  // and fixed-ratio schemes ignore those options.
  std::optional<PowerCurveSet> Curves;
  std::optional<PowerCurveFamily> Family;
  CancellationToken Deadline;
  if (*Kind == SchemeKind::Eas) {
    Options.Eas = EasCfg;
    Options.Eas.HistoryFile = Args.getString("history-file", "");
    // The deadline bounds the run in the workload's virtual time (each
    // run starts its clock at zero).
    double DeadlineMs = Args.getDouble("deadline-ms", 0.0);
    if (DeadlineMs > 0.0) {
      Deadline.setDeadline(DeadlineMs / 1000.0);
      Options.Cancel = &Deadline;
    }
    if (Options.Eas.PStates) {
      Family.emplace(familyFor(*Spec, Args));
      Options.CurveFamily = &*Family;
    } else {
      Curves.emplace(curvesFor(*Spec, Args));
      Options.Curves = &*Curves;
    }
  }

  SessionReport Report = Session.run(*Kind, Options);
  if (Report.Cancelled)
    std::printf("deadline hit: %u of %zu invocations completed\n",
                Report.Invocations, W->Trace.size());
  printReport(Report);
  if (Report.FaultsEnabled || Report.Resilience.degraded())
    printDegradation(Report);
  if (Report.ModelSamples)
    std::printf("  model: %u samples, mean rel-err time %.2f%% "
                "energy %.2f%%\n",
                Report.ModelSamples, 100.0 * Report.ModelTimeRelError,
                100.0 * Report.ModelEnergyRelError);
  if (Options.Recorder) {
    if (Report.Kind == SchemeKind::Eas)
      std::printf("  observed: %u profile reps, %u alpha searches, "
                  "%u cpu-only fast paths, %llu trace events\n",
                  Report.ProfileRepetitions, Report.AlphaSearches,
                  Report.CpuOnlyFastPaths,
                  static_cast<unsigned long long>(Report.TraceEventCount));
    if (!drainObservability(Recorder, Args))
      return ExitRuntime;
  }
  if (!writeMetricsOutputs(Registry, WantDecisions ? &Decisions : nullptr,
                           Args))
    return ExitRuntime;
  return ExitOk;
}

/// Parses --sla-mix=A:B:C into assignment weights (any nonnegative
/// doubles, at least one positive).
bool parseSlaMix(const std::string &Text, double (&Mix)[NumSlaClasses]) {
  std::vector<std::string> Parts = splitString(Text, ':');
  if (Parts.size() != NumSlaClasses)
    return false;
  double Sum = 0.0;
  for (unsigned I = 0; I != NumSlaClasses; ++I) {
    if (!parseDouble(Parts[I], Mix[I]) || Mix[I] < 0.0)
      return false;
    Sum += Mix[I];
  }
  return Sum > 0.0;
}

int cmdServe(const Flags &Args) {
  auto Spec = platformByName(Args.getString("platform", "haswell-desktop"));
  if (!Spec) {
    std::fprintf(stderr, "error: unknown platform\n");
    return ExitUsage;
  }
  if (!applyFaultPlan(*Spec, Args))
    return ExitRuntime;
  // --threads/--invocations remain as legacy aliases of
  // --tenants/--requests so pre-service scripts keep working.
  long long Tenants =
      Args.getInt("tenants", Args.getInt("threads", 8));
  long long PerTenant =
      Args.getInt("requests", Args.getInt("invocations", 100));
  long long Workers = Args.getInt("workers", 4);
  long long QueueCap = Args.getInt("queue-cap", 64);
  if (Tenants < 1 || PerTenant < 1 || Workers < 1 || QueueCap < 0) {
    std::fprintf(stderr,
                 "error: --tenants/--requests/--workers must be positive "
                 "and --queue-cap nonnegative\n");
    return ExitUsage;
  }
  double Mix[NumSlaClasses] = {2.0, 5.0, 3.0};
  if (std::string MixText = Args.getString("sla-mix", "");
      !MixText.empty() && !parseSlaMix(MixText, Mix)) {
    std::fprintf(stderr, "error: --sla-mix wants A:B:C nonnegative "
                         "weights with a positive sum\n");
    return ExitUsage;
  }
  double Qps = Args.getDouble("qps", 0.0);
  double Sla0DeadlineSec = Args.getDouble("sla0-deadline-ms", 200.0) / 1e3;
  double Sla1DeadlineSec = Args.getDouble("sla1-deadline-ms", 1000.0) / 1e3;
  double ShedThreshold = Args.getDouble("shed-threshold", 0.5);
  Metric Objective = metricByName(Args.getString("metric", "edp"));
  double DrainGraceSec = Args.getDouble("drain-grace-ms", 5000.0) / 1000.0;

  // Forensics flags (DESIGN.md §16).
  std::string ControlSocket = Args.getString("control-socket", "");
  std::string IncidentDir = Args.getString("incident-dir", "");
  long long IncidentKeep = Args.getInt("incident-keep", 8);
  double DetectorIntervalMs = Args.getDouble("detector-interval-ms", 50.0);
  bool FlightArmed = !Args.getBool("no-flight-recorder", false);
  if (IncidentKeep < 1 || DetectorIntervalMs <= 0.0) {
    std::fprintf(stderr, "error: --incident-keep must be >= 1 and "
                         "--detector-interval-ms positive\n");
    return ExitUsage;
  }

  // Mixed kernels: every workload of the platform's suite contributes
  // its invocations to one flat work list the tenants cycle over.
  InvocationTrace Work;
  for (const Workload &W : suiteFor(*Spec, Args))
    Work.insert(Work.end(), W.Trace.begin(), W.Trace.end());
  if (Work.empty()) {
    std::fprintf(stderr, "error: empty workload suite\n");
    return ExitRuntime;
  }

  obs::TraceRecorder Recorder;
  obs::MetricsRegistry Registry;
  obs::DecisionLog Decisions;
  obs::FlightRecorder Flight;
  // The detectors and the control endpoint both read the registry, so
  // forensics implies metrics even without an export flag.
  bool Forensics = !IncidentDir.empty() || !ControlSocket.empty();
  EasConfig Config;
  Config.HistoryFile = Args.getString("history-file", "");
  // Journaling is the default whenever history persists: a kill -9 then
  // costs at most one group-commit window, not everything since the
  // last snapshot. --no-journal opts back into snapshot-only mode.
  Config.Journal.Enabled =
      !Config.HistoryFile.empty() && !Args.getBool("no-journal", false);
  Config.Journal.File = Args.getString("journal", "");
  if (wantsObservability(Args))
    Config.Trace = &Recorder;
  if (wantsMetricsRegistry(Args) || Forensics)
    Config.Metrics = &Registry;
  bool WantDecisions = !Args.getString("decision-log", "").empty();
  if (WantDecisions)
    Config.Decisions = &Decisions;
  if (FlightArmed)
    Config.Flight = &Flight;
  // DVFS flags mutate the spec's P-state ladder; apply before the
  // service front end snapshots the spec for its processors.
  if (!applyDvfsFlags(*Spec, Config, Args))
    return ExitUsage;
  PowerCurveFamily Curves =
      Config.PStates ? familyFor(*Spec, Args)
                     : PowerCurveFamily::fromSingle(curvesFor(*Spec, Args));
  EasScheduler Scheduler(std::move(Curves), Objective, Config);
  if (!Scheduler.restoreStatus())
    std::fprintf(stderr, "warning: %s (starting cold)\n",
                 Scheduler.restoreStatus().message().c_str());
  else if (Scheduler.restoredRecords() > 0)
    std::printf("restored %zu table-G records from %s\n",
                Scheduler.restoredRecords(), Config.HistoryFile.c_str());
  if (Config.Journal.Enabled) {
    const RecoveryReport &Recovery = Scheduler.recoveryReport();
    std::printf("recovery: outcome=%s snapshot=%zu replayed=%zu "
                "truncated=%zu epoch=%llu %.3f ms (journal %s)\n",
                recoveryOutcomeName(Recovery.Outcome),
                Recovery.SnapshotRecords, Recovery.ReplayedRecords,
                Recovery.TruncatedRecords,
                static_cast<unsigned long long>(Recovery.Epoch),
                1e3 * Recovery.Seconds, Scheduler.journalPath().c_str());
    if (!Scheduler.journalStatus())
      std::fprintf(stderr,
                   "warning: journal unavailable, snapshot-only "
                   "durability: %s\n",
                   Scheduler.journalStatus().message().c_str());
  }

  ServiceConfig FrontConfig;
  FrontConfig.Workers = static_cast<unsigned>(Workers);
  FrontConfig.QueueCapPerClass = static_cast<size_t>(QueueCap);
  FrontConfig.DrainGraceSec = DrainGraceSec;
  if (wantsMetricsRegistry(Args) || Forensics)
    FrontConfig.Metrics = &Registry;
  if (FlightArmed)
    FrontConfig.Flight = &Flight;
  ServiceFrontEnd Service(Scheduler, *Spec, FrontConfig);

  // Forensics plumbing: the incident writer captures bundles when a
  // detector fires (or an operator sends `dump`), the control endpoint
  // answers statusz/metricz live, and the last-gasp machinery keeps a
  // crash document pre-serialized and mirrored to disk.
  std::optional<obs::IncidentWriter> Incidents;
  if (!IncidentDir.empty()) {
    ::mkdir(IncidentDir.c_str(), 0755); // EEXIST is fine
    obs::IncidentConfig IncidentCfg;
    IncidentCfg.Dir = IncidentDir;
    IncidentCfg.MaxBundles = static_cast<unsigned>(IncidentKeep);
    Incidents.emplace(IncidentCfg);
  }
  auto ForensicInputs = [&] {
    obs::IncidentInputs Inputs;
    Inputs.Flight = Config.Flight;
    Inputs.Metrics = Config.Metrics;
    Inputs.TableDigest = renderTableGDigest(Scheduler);
    Inputs.ServiceStatus = Service.renderStatusz();
    return Inputs;
  };
  if (!ControlSocket.empty()) {
    Service.setDumpHook([&] {
      if (!Incidents)
        return std::string("err dump needs --incident-dir\n");
      ErrorOr<std::string> Bundle =
          Incidents->write(ForensicInputs(), {},
                           obs::TraceRecorder::hostSeconds(),
                           /*Force=*/true);
      if (!Bundle)
        return "err " + Bundle.status().toString() + "\n";
      return "ok " + *Bundle + "\n";
    });
    if (Status S = Service.startControl(ControlSocket); !S) {
      std::fprintf(stderr, "error: control socket: %s\n",
                   S.message().c_str());
      return ExitRuntime;
    }
    std::printf("control socket %s\n", ControlSocket.c_str());
  }

  double ServeStartSec = obs::TraceRecorder::hostSeconds();
  obs::AnomalyDetector Detector;
  AnnotatedMutex ForensicMutex{"Cli.Forensics"};
  std::condition_variable ForensicCv;
  bool ForensicDone = false;
  std::thread ForensicThread;
  if (Incidents) {
    std::string GaspPath = IncidentDir + "/lastgasp.txt";
    if (Status S = obs::LastGasp::instance().arm(GaspPath); !S)
      std::fprintf(stderr, "warning: last-gasp handlers not armed: %s\n",
                   S.message().c_str());
    // Prime the delta-based rules against the pre-traffic snapshot so
    // the first real quarantine or deadline miss is a transition the
    // detector observes, not part of a cold baseline it re-bases over.
    (void)Detector.evaluate(Registry.snapshot(), ServeStartSec);
    ForensicThread = std::thread([&, GaspPath] {
      UniqueLock Lock(ForensicMutex);
      // Rules that fired last tick. An anomaly that persists across
      // ticks (a p99 regression that never clears) keeps returning its
      // trigger; capturing a bundle per tick would just churn the
      // retention window with near-identical snapshots. Capture on the
      // none->some edge per rule, with the writer's rate limit as the
      // backstop for rules that flap.
      std::set<std::string> ActiveRules;
      while (!ForensicCv.wait_for(
          Lock.native(),
          std::chrono::duration<double, std::milli>(DetectorIntervalMs),
          [&] { return ForensicDone; })) {
        double NowSec = obs::TraceRecorder::hostSeconds();
        std::vector<obs::AnomalyTrigger> Triggers =
            Detector.evaluate(Registry.snapshot(), NowSec);
        std::set<std::string> NowRules;
        bool NewRule = false;
        for (const obs::AnomalyTrigger &Trigger : Triggers) {
          if (!ActiveRules.count(Trigger.Rule))
            NewRule = true;
          NowRules.insert(Trigger.Rule);
        }
        ActiveRules.swap(NowRules);
        if (NewRule) {
          ErrorOr<std::string> Bundle =
              Incidents->write(ForensicInputs(), Triggers, NowSec);
          // Rate-limited is business as usual under a trigger storm;
          // anything else deserves a warning.
          if (!Bundle && Bundle.status().code() != ErrCode::Overloaded)
            std::fprintf(stderr, "warning: incident bundle: %s\n",
                         Bundle.status().message().c_str());
        }
        // Refresh the crash document and mirror it to disk every tick:
        // catchable fatal signals write the freshest copy themselves,
        // and a SIGKILL still leaves the last tick's mirror behind.
        obs::LastGaspContext Gasp;
        Gasp.UptimeSec = NowSec - ServeStartSec;
        Gasp.ServiceStatus = Service.renderStatusz();
        Gasp.Flight = Config.Flight;
        std::string Doc = obs::renderLastGasp(Gasp);
        obs::LastGasp::instance().refresh(Doc);
        (void)obs::writeFileAtomic(GaspPath, Doc);
      }
    });
  }

  // Periodic exporter: while the tenants hammer the service, rewrite
  // the Prometheus snapshot atomically every interval — what a scrape
  // target looks like for a service without an HTTP listener.
  std::string MetricsOut = Args.getString("metrics-out", "");
  double IntervalMs = Args.getDouble("metrics-interval-ms", 0.0);
  AnnotatedMutex ExportMutex{"Cli.MetricsExport"};
  std::condition_variable ExportCv;
  bool ExportDone = false;
  std::thread Exporter;
  if (!MetricsOut.empty() && IntervalMs > 0.0)
    Exporter = std::thread([&] {
      UniqueLock Lock(ExportMutex);
      unsigned Rewrites = 0;
      while (!ExportCv.wait_for(
          Lock.native(), std::chrono::duration<double, std::milli>(IntervalMs),
          [&] { return ExportDone; })) {
        if (Status S = obs::writeFileAtomic(
                MetricsOut, obs::renderPrometheus(Registry.snapshot()));
            !S)
          std::fprintf(stderr, "warning: %s: %s\n", MetricsOut.c_str(),
                       S.message().c_str());
        else
          ++Rewrites;
      }
      if (Rewrites)
        std::printf("  metrics: %u periodic rewrites of %s\n", Rewrites,
                    MetricsOut.c_str());
    });

  // Synthetic tenants: each offers PerTenant requests at its SLA mix,
  // re-offering rejected work under capped exponential backoff with
  // jitter so backpressure sheds load in time, not in requests.
  std::atomic<uint64_t> Offered{0}, Retries{0}, GiveUps{0};
  constexpr unsigned MaxRetries = 6;
  std::vector<std::thread> Clients;
  Clients.reserve(static_cast<size_t>(Tenants));
  for (long long T = 0; T != Tenants; ++T)
    Clients.emplace_back([&, T] {
      uint64_t TenantId = static_cast<uint64_t>(T) + 1;
      Xoshiro256 Rng(0x7e4a5eed2026ULL + TenantId * 7919);
      double MixSum = Mix[0] + Mix[1] + Mix[2];
      for (long long K = 0; K != PerTenant; ++K) {
        const KernelInvocation &Inv =
            Work[static_cast<size_t>(T + K * Tenants) % Work.size()];
        RequestContext Ctx;
        Ctx.TenantId = TenantId;
        double Draw = Rng.nextDouble() * MixSum;
        if (Draw < Mix[0]) {
          Ctx.Sla = SlaClass::Sla0;
          Ctx.DeadlineSec = Sla0DeadlineSec;
        } else if (Draw < Mix[0] + Mix[1]) {
          Ctx.Sla = SlaClass::Sla1;
          Ctx.DeadlineSec = Sla1DeadlineSec;
        } else {
          Ctx.Sla = SlaClass::Sla2;
        }
        ++Offered;
        for (unsigned Attempt = 0;; ++Attempt) {
          SubmitResult Result = Service.submit(Inv.Kernel, Inv.Iterations,
                                               Ctx);
          if (Result.admitted())
            break;
          // A zero hint means "replan, not retry" (infeasible deadline
          // at submit, or the service is closing).
          if (Result.RetryAfterSec <= 0.0 || Attempt >= MaxRetries) {
            ++GiveUps;
            break;
          }
          ++Retries;
          double Base = std::max(Result.RetryAfterSec, 1e-3);
          double Delay =
              std::min(Base * static_cast<double>(1u << std::min(Attempt, 6u)),
                       0.25);
          Delay *= 0.5 + Rng.nextDouble(); // jitter in [0.5x, 1.5x)
          std::this_thread::sleep_for(std::chrono::duration<double>(Delay));
        }
        if (Qps > 0.0) {
          // Bursty arrivals: every 24th request opens a burst of 6
          // back-to-back submissions; the rest pace to the target rate.
          bool InBurst = (K % 24) < 6;
          if (!InBurst)
            std::this_thread::sleep_for(std::chrono::duration<double>(
                (0.5 + Rng.nextDouble()) / Qps));
        }
      }
    });
  for (std::thread &Client : Clients)
    Client.join();

  ServiceStats Stats = Service.shutdown();
  Status Shutdown = Scheduler.shutdown(DrainGraceSec);

  if (Exporter.joinable()) {
    {
      LockGuard Lock(ExportMutex);
      ExportDone = true;
    }
    ExportCv.notify_all();
    Exporter.join();
  }
  if (ForensicThread.joinable()) {
    {
      LockGuard Lock(ForensicMutex);
      ForensicDone = true;
    }
    ForensicCv.notify_all();
    ForensicThread.join();
  }

  // No lost updates: every completed invocation must be counted in
  // table G (cancelled ones are deliberately not).
  uint64_t Recorded = 0;
  for (const auto &[Key, Rec] : Scheduler.history().entries())
    Recorded += Rec.Invocations;

  std::printf("serve: %lld tenants x %lld requests, %lld workers, "
              "queue cap %lld/class, %zu tenant-kernels in table G\n",
              Tenants, PerTenant, Workers, QueueCap,
              Scheduler.history().size());
  std::printf("  offered %llu first-time, %llu retries, %llu give-ups\n",
              static_cast<unsigned long long>(Offered.load()),
              static_cast<unsigned long long>(Retries.load()),
              static_cast<unsigned long long>(GiveUps.load()));
  for (unsigned I = 0; I != NumSlaClasses; ++I)
    std::printf("  %s: submitted %llu, rejected %llu, shed %llu, "
                "completed %llu, cancelled %llu, deadline misses %llu, "
                "max wait %.1f ms\n",
                slaClassName(slaFromIndex(I)),
                static_cast<unsigned long long>(Stats.SubmittedBySla[I]),
                static_cast<unsigned long long>(Stats.RejectedBySla[I]),
                static_cast<unsigned long long>(Stats.ShedBySla[I]),
                static_cast<unsigned long long>(Stats.CompletedBySla[I]),
                static_cast<unsigned long long>(Stats.CancelledBySla[I]),
                static_cast<unsigned long long>(Stats.DeadlineMissesBySla[I]),
                1e3 * Stats.MaxQueueWaitSec[I]);
  std::printf("  accounting: %llu submitted == %llu rejected + %llu shed "
              "+ %llu completed + %llu cancelled%s\n",
              static_cast<unsigned long long>(Stats.Submitted),
              static_cast<unsigned long long>(Stats.Rejected),
              static_cast<unsigned long long>(Stats.Shed),
              static_cast<unsigned long long>(Stats.Completed),
              static_cast<unsigned long long>(Stats.Cancelled),
              Stats.consistent() ? "" : "  [BROKEN]");
  std::printf("  sla0 deadline misses %llu, shed fraction %.1f%% "
              "(threshold %.1f%%)\n",
              static_cast<unsigned long long>(Stats.Sla0DeadlineMisses),
              100.0 * Stats.shedFraction(), 100.0 * ShedThreshold);
  std::printf("  table G records %llu invocations%s\n",
              static_cast<unsigned long long>(Recorded),
              Config.HistoryFile.empty()
                  ? ""
                  : (", snapshot " + Config.HistoryFile).c_str());
  if (Scheduler.journaling()) {
    HistoryJournal::Stats JournalStats = Scheduler.journalStats();
    const RecoveryReport &Recovery = Scheduler.recoveryReport();
    std::printf("  journal: %llu appends (%llu bytes, %llu flushes), "
                "recovery outcome %s\n",
                static_cast<unsigned long long>(JournalStats.Appends),
                static_cast<unsigned long long>(JournalStats.AppendedBytes),
                static_cast<unsigned long long>(JournalStats.Flushes),
                recoveryOutcomeName(Recovery.Outcome));
    if (!Scheduler.journalStatus())
      std::fprintf(stderr, "warning: journal degraded: %s\n",
                   Scheduler.journalStatus().message().c_str());
  }
  if (const GpuHealthMonitor::Stats Health = Scheduler.health().stats();
      Health.Quarantines || Health.Recoveries)
    std::printf("  health: %u quarantines, %u recoveries, state %s\n",
                Health.Quarantines, Health.Recoveries,
                gpuHealthStateName(Scheduler.health().state()));
  if (Incidents)
    std::printf("  forensics: %llu incident bundle%s under %s, "
                "flight ring %s\n",
                static_cast<unsigned long long>(Incidents->bundlesWritten()),
                Incidents->bundlesWritten() == 1 ? "" : "s",
                IncidentDir.c_str(), FlightArmed ? "armed" : "disabled");
  if (!Shutdown) {
    std::fprintf(stderr, "error: shutdown: %s\n",
                 Shutdown.message().c_str());
    return ExitRuntime;
  }
  if (!Stats.consistent()) {
    std::fprintf(stderr, "error: request accounting does not balance\n");
    return ExitRuntime;
  }
  if (Config.Trace && !drainObservability(Recorder, Args))
    return ExitRuntime;
  // Final authoritative write — covers the no-interval case and leaves
  // the post-shutdown totals (drain gauge included) on disk.
  if (!writeMetricsOutputs(Registry, WantDecisions ? &Decisions : nullptr,
                           Args))
    return ExitRuntime;
  // Overload is an outcome, not a detail: an SLA0 miss or a shed storm
  // exits 1 so scripts can tell a degraded run from a clean one.
  return serveExitCode(Stats, ShedThreshold) == 0 ? ExitOk : ExitRuntime;
}

/// `inspect`: line-protocol client for a serve instance's control
/// socket, plus offline validators for the forensic artifacts (incident
/// bundles, last-gasp documents) so CI can assert on them without a
/// live process.
int cmdInspect(const Flags &Args) {
  std::string Bundle = Args.getString("validate", "");
  if (!Bundle.empty()) {
    if (Status S = obs::validateBundle(Bundle); !S) {
      std::fprintf(stderr, "error: %s: %s\n", Bundle.c_str(),
                   S.message().c_str());
      return ExitRuntime;
    }
    std::printf("ok %s\n", Bundle.c_str());
    return ExitOk;
  }
  std::string Gasp = Args.getString("validate-lastgasp", "");
  if (!Gasp.empty()) {
    std::string Content;
    bool Existed = false;
    if (Status S = readFileBytes(Gasp, Content, Existed); !S || !Existed) {
      std::fprintf(stderr, "error: %s: %s\n", Gasp.c_str(),
                   Existed ? S.message().c_str() : "no such file");
      return ExitRuntime;
    }
    if (Status S = obs::validateLastGasp(Content); !S) {
      std::fprintf(stderr, "error: %s: %s\n", Gasp.c_str(),
                   S.message().c_str());
      return ExitRuntime;
    }
    std::printf("ok %s\n", Gasp.c_str());
    return ExitOk;
  }

  const std::vector<std::string> &Positional = Args.positional();
  if (Positional.size() < 2) {
    std::fprintf(stderr, "error: inspect needs a socket path (or "
                         "--validate=DIR / --validate-lastgasp=FILE)\n");
    return ExitUsage;
  }
  const std::string &SocketPath = Positional[1];
  std::string Command =
      Positional.size() > 2 ? Positional[2] : std::string("statusz");

  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (SocketPath.size() >= sizeof(Addr.sun_path)) {
    std::fprintf(stderr, "error: socket path too long: %s\n",
                 SocketPath.c_str());
    return ExitUsage;
  }
  std::memcpy(Addr.sun_path, SocketPath.c_str(), SocketPath.size() + 1);

  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    std::fprintf(stderr, "error: socket: %s\n", std::strerror(errno));
    return ExitRuntime;
  }
  if (::connect(Fd, reinterpret_cast<const sockaddr *>(&Addr),
                sizeof(Addr)) != 0) {
    std::fprintf(stderr, "error: connect %s: %s\n", SocketPath.c_str(),
                 std::strerror(errno));
    ::close(Fd);
    return ExitRuntime;
  }
  std::string Line = Command + "\n";
  size_t Sent = 0;
  while (Sent < Line.size()) {
    ssize_t N = ::send(Fd, Line.data() + Sent, Line.size() - Sent, 0);
    if (N <= 0) {
      std::fprintf(stderr, "error: send: %s\n", std::strerror(errno));
      ::close(Fd);
      return ExitRuntime;
    }
    Sent += static_cast<size_t>(N);
  }
  char Buffer[4096];
  for (;;) {
    ssize_t N = ::recv(Fd, Buffer, sizeof(Buffer), 0);
    if (N < 0) {
      std::fprintf(stderr, "error: recv: %s\n", std::strerror(errno));
      ::close(Fd);
      return ExitRuntime;
    }
    if (N == 0)
      break;
    std::fwrite(Buffer, 1, static_cast<size_t>(N), stdout);
  }
  ::close(Fd);
  return ExitOk;
}

/// Sorted-sample quantile in nanoseconds (\p Samples already sorted).
double quantileNs(const std::vector<double> &Samples, double Q) {
  if (Samples.empty())
    return 0.0;
  double Pos = Q * static_cast<double>(Samples.size() - 1);
  size_t Lo = static_cast<size_t>(Pos);
  size_t Hi = std::min(Lo + 1, Samples.size() - 1);
  double Frac = Pos - static_cast<double>(Lo);
  return Samples[Lo] + (Samples[Hi] - Samples[Lo]) * Frac;
}

int cmdBenchService(const Flags &Args) {
  auto Spec = platformByName(Args.getString("platform", "haswell-desktop"));
  if (!Spec) {
    std::fprintf(stderr, "error: unknown platform\n");
    return ExitUsage;
  }
  long long Requests = Args.getInt("requests", 1000);
  long long Workers = Args.getInt("workers", 4);
  if (Requests < 1 || Workers < 1) {
    std::fprintf(stderr, "error: --requests and --workers must be positive\n");
    return ExitUsage;
  }
  std::string Out = Args.getString("out", "BENCH_service.json");
  Metric Objective = metricByName(Args.getString("metric", "edp"));

  InvocationTrace Work;
  for (const Workload &W : suiteFor(*Spec, Args))
    Work.insert(Work.end(), W.Trace.begin(), W.Trace.end());
  if (Work.empty()) {
    std::fprintf(stderr, "error: empty workload suite\n");
    return ExitRuntime;
  }

  PowerCurveSet Curves = Characterizer(*Spec).characterize();
  EasScheduler Scheduler(Curves, Objective, {});

  // Warm table G so the measured decisions are steady-state hits, not
  // first-seen profiling runs.
  {
    SimProcessor Warm(*Spec);
    for (const KernelInvocation &Inv : Work)
      Scheduler.execute(Warm, Inv.Kernel, Inv.Iterations);
  }

  using HostClock = std::chrono::steady_clock;
  auto ElapsedNs = [](HostClock::time_point T0) {
    return std::chrono::duration<double, std::nano>(HostClock::now() - T0)
        .count();
  };

  // Decision latency: host cost of one steady-state scheduler decision
  // plus its simulated execution, against a warmed table G.
  std::vector<double> DecisionNs;
  DecisionNs.reserve(static_cast<size_t>(Requests));
  {
    SimProcessor Proc(*Spec);
    for (long long I = 0; I != Requests; ++I) {
      const KernelInvocation &Inv =
          Work[static_cast<size_t>(I) % Work.size()];
      HostClock::time_point T0 = HostClock::now();
      Scheduler.execute(Proc, Inv.Kernel, Inv.Iterations);
      DecisionNs.push_back(ElapsedNs(T0));
    }
  }

  // Admission + throughput: submit every request through the service
  // front end (lane capacity sized so admission itself is what we
  // measure), then drain and derive completed-per-second.
  ServiceConfig FrontConfig;
  FrontConfig.Workers = static_cast<unsigned>(Workers);
  FrontConfig.QueueCapPerClass = static_cast<size_t>(Requests);
  ServiceFrontEnd Service(Scheduler, *Spec, FrontConfig);
  std::vector<double> AdmissionNs;
  AdmissionNs.reserve(static_cast<size_t>(Requests));
  HostClock::time_point RunStart = HostClock::now();
  for (long long I = 0; I != Requests; ++I) {
    const KernelInvocation &Inv = Work[static_cast<size_t>(I) % Work.size()];
    RequestContext Ctx;
    Ctx.TenantId = 1 + static_cast<uint64_t>(I % 4);
    Ctx.Sla = static_cast<SlaClass>(I % NumSlaClasses);
    HostClock::time_point T0 = HostClock::now();
    Service.submit(Inv.Kernel, Inv.Iterations, Ctx);
    AdmissionNs.push_back(ElapsedNs(T0));
  }
  ServiceStats Stats = Service.shutdown();
  double RunSec = std::chrono::duration<double>(HostClock::now() - RunStart)
                      .count();
  double ThroughputRps =
      RunSec > 0.0 ? static_cast<double>(Stats.Completed) / RunSec : 0.0;

  std::sort(AdmissionNs.begin(), AdmissionNs.end());
  std::sort(DecisionNs.begin(), DecisionNs.end());
  auto MeanOf = [](const std::vector<double> &Samples) {
    double Sum = 0.0;
    for (double S : Samples)
      Sum += S;
    return Samples.empty() ? 0.0
                           : Sum / static_cast<double>(Samples.size());
  };

  std::string Json = formatString(
      "{\n"
      "  \"bench\": \"service\",\n"
      "  \"platform\": \"%s\",\n"
      "  \"requests\": %lld,\n"
      "  \"workers\": %lld,\n"
      "  \"admission_latency_ns\": "
      "{\"p50\": %.0f, \"p90\": %.0f, \"p99\": %.0f, \"mean\": %.0f},\n"
      "  \"decision_latency_ns\": "
      "{\"p50\": %.0f, \"p90\": %.0f, \"p99\": %.0f, \"mean\": %.0f},\n"
      "  \"throughput_rps\": %.1f,\n"
      "  \"completed\": %llu,\n"
      "  \"rejected\": %llu,\n"
      "  \"shed\": %llu,\n"
      "  \"cancelled\": %llu\n"
      "}\n",
      Spec->Name.c_str(), Requests, Workers, quantileNs(AdmissionNs, 0.5),
      quantileNs(AdmissionNs, 0.9), quantileNs(AdmissionNs, 0.99),
      MeanOf(AdmissionNs), quantileNs(DecisionNs, 0.5),
      quantileNs(DecisionNs, 0.9), quantileNs(DecisionNs, 0.99),
      MeanOf(DecisionNs), ThroughputRps,
      static_cast<unsigned long long>(Stats.Completed),
      static_cast<unsigned long long>(Stats.Rejected),
      static_cast<unsigned long long>(Stats.Shed),
      static_cast<unsigned long long>(Stats.Cancelled));
  if (Status S = obs::writeFileAtomic(Out, Json); !S) {
    std::fprintf(stderr, "error: %s: %s\n", Out.c_str(),
                 S.message().c_str());
    return ExitRuntime;
  }
  std::printf("bench-service: admission p99 %.0f ns, decision p99 %.0f ns, "
              "%.1f completed/s -> %s\n",
              quantileNs(AdmissionNs, 0.99), quantileNs(DecisionNs, 0.99),
              ThroughputRps, Out.c_str());
  return ExitOk;
}

int cmdStats(const Flags &Args) {
  if (Args.positional().size() < 2) {
    std::fprintf(stderr, "usage: ecas-cli stats FILE\n");
    return ExitUsage;
  }
  const std::string &Path = Args.positional()[1];
  std::ifstream File(Path);
  if (!File) {
    std::fprintf(stderr, "error: cannot read %s\n", Path.c_str());
    return ExitRuntime;
  }
  std::ostringstream Buffer;
  Buffer << File.rdbuf();
  std::string Text = Buffer.str();
  size_t First = Text.find_first_not_of(" \t\r\n");
  if (First != std::string::npos && Text[First] == '{') {
    std::fprintf(stderr,
                 "error: %s looks like a JSON snapshot; stats renders the "
                 "Prometheus text form (--metrics-out)\n",
                 Path.c_str());
    return ExitUsage;
  }
  ErrorOr<obs::MetricsSnapshot> Snap = obs::parsePrometheusText(Text);
  if (!Snap) {
    std::fprintf(stderr, "error: %s: %s\n", Path.c_str(),
                 Snap.status().message().c_str());
    return ExitRuntime;
  }
  std::fputs(obs::renderMetricsReport(*Snap).c_str(), stdout);
  return ExitOk;
}

int cmdSweep(const Flags &Args) {
  auto Spec = platformByName(Args.getString("platform", "haswell-desktop"));
  if (!Spec) {
    std::fprintf(stderr, "error: unknown platform\n");
    return ExitUsage;
  }
  if (!applyFaultPlan(*Spec, Args))
    return ExitRuntime;
  std::vector<Workload> Suite = suiteFor(*Spec, Args);
  const Workload *W = findWorkload(Suite, Args.getString("workload", "CC"));
  if (!W) {
    std::fprintf(stderr, "error: unknown workload\n");
    return ExitUsage;
  }
  Metric Objective = metricByName(Args.getString("metric", "edp"));
  ExecutionSession Session(*Spec);
  std::printf("%6s %12s %12s %12s\n", "gpu%", "time", "energy",
              Objective.name().c_str());
  for (double Alpha = 0.0; Alpha <= 1.0 + 1e-9; Alpha += 0.1) {
    SessionReport R = Session.runFixedAlpha(
        W->Trace, std::min(Alpha, 1.0), Objective);
    std::printf("%5.0f%% %12s %12s %12.5g\n", 100 * std::min(Alpha, 1.0),
                formatDuration(R.Seconds).c_str(),
                formatEnergy(R.Joules).c_str(), R.MetricValue);
  }
  return ExitOk;
}

int cmdSuite(const Flags &Args) {
  auto Spec = platformByName(Args.getString("platform", "haswell-desktop"));
  if (!Spec) {
    std::fprintf(stderr, "error: unknown platform\n");
    return ExitUsage;
  }
  if (!applyFaultPlan(*Spec, Args))
    return ExitRuntime;
  Metric Objective = metricByName(Args.getString("metric", "edp"));
  PowerCurveSet Curves = curvesFor(*Spec, Args);
  ExecutionSession Session(*Spec);
  std::printf("%-5s %10s %10s %10s %10s %10s\n", "bench", "cpu", "gpu",
              "perf", "eas", "oracle-a");
  for (const Workload &W : suiteFor(*Spec, Args)) {
    SessionReport Oracle = Session.runOracle(W.Trace, Objective);
    auto Eff = [&Oracle](const SessionReport &R) {
      return 100.0 * Oracle.MetricValue / R.MetricValue;
    };
    std::printf("%-5s %9.1f%% %9.1f%% %9.1f%% %9.1f%% %10.1f\n",
                W.Abbrev.c_str(),
                Eff(Session.runCpuOnly(W.Trace, Objective)),
                Eff(Session.runGpuOnly(W.Trace, Objective)),
                Eff(Session.runPerf(W.Trace, Objective)),
                Eff(Session.runEas(W.Trace, Curves, Objective)),
                Oracle.MeanAlpha);
  }
  return ExitOk;
}

int cmdFaults(const Flags &Args) {
  auto Spec = platformByName(Args.getString("platform", "haswell-desktop"));
  if (!Spec) {
    std::fprintf(stderr, "error: unknown platform\n");
    return ExitUsage;
  }
  std::vector<Workload> Suite = suiteFor(*Spec, Args);
  const Workload *W = findWorkload(Suite, Args.getString("workload", "CC"));
  if (!W) {
    std::fprintf(stderr, "error: unknown workload\n");
    return ExitUsage;
  }
  Metric Objective = metricByName(Args.getString("metric", "edp"));

  std::vector<std::string> Names;
  std::string Requested = Args.getString("scenario", "");
  if (Requested.empty())
    Names = FaultPlan::scenarioNames();
  else
    Names.push_back(Requested);

  // Resolve every scenario up front so a typo fails before the (slow)
  // characterization and baseline run.
  std::vector<FaultPlan> Plans;
  for (const std::string &Name : Names) {
    ErrorOr<FaultPlan> Plan = FaultPlan::scenario(Name);
    if (!Plan) {
      std::fprintf(stderr, "error: %s (have:", Plan.status().message().c_str());
      for (const std::string &Known : FaultPlan::scenarioNames())
        std::fprintf(stderr, " %s", Known.c_str());
      std::fprintf(stderr, ")\n");
      return ExitUsage;
    }
    Plans.push_back(*Plan);
  }

  // Curves come from the healthy platform: characterization happens
  // before deployment, the faults afterwards.
  PowerCurveSet Curves = Characterizer(*Spec).characterize();

  // Healthy baseline to compare each scenario against.
  {
    ExecutionSession Session(*Spec);
    SessionReport R = Session.runEas(W->Trace, Curves, Objective);
    std::printf("baseline (no faults): %s on %s\n", W->Name.c_str(),
                Spec->Name.c_str());
    printReport(R);
  }

  for (size_t I = 0; I != Plans.size(); ++I) {
    const FaultPlan &Plan = Plans[I];
    PlatformSpec Faulty = *Spec;
    Faulty.Faults = Plan;
    ExecutionSession Session(Faulty);
    std::printf("\nscenario '%s' (%zu events, seed %llu)\n", Names[I].c_str(),
                Plan.events().size(),
                static_cast<unsigned long long>(Plan.seed()));
    SessionReport R = Session.runEas(W->Trace, Curves, Objective);
    printReport(R);
    printDegradation(R);
  }
  return ExitOk;
}

} // namespace

int main(int Argc, char **Argv) {
  Flags Args(Argc, Argv);
  if (Args.positional().empty())
    return usage();
  const std::string &Command = Args.positional().front();
  if (Command == "platforms")
    return cmdPlatforms();
  if (Command == "characterize")
    return cmdCharacterize(Args);
  if (Command == "run")
    return cmdRun(Args);
  if (Command == "sweep")
    return cmdSweep(Args);
  if (Command == "suite")
    return cmdSuite(Args);
  if (Command == "faults")
    return cmdFaults(Args);
  if (Command == "serve")
    return cmdServe(Args);
  if (Command == "bench-service")
    return cmdBenchService(Args);
  if (Command == "stats")
    return cmdStats(Args);
  if (Command == "inspect")
    return cmdInspect(Args);
  std::fprintf(stderr, "error: unknown command '%s'\n", Command.c_str());
  return usage();
}
