//===-- tools/ecas_cli.cpp - Command-line front end ------------------------===//
//
// Part of the ecas project, under the MIT License.
//
// The operational entry point a downstream user drives:
//
//   ecas-cli platforms
//   ecas-cli characterize --platform=haswell-desktop --out=curves.txt
//   ecas-cli run --platform=haswell-desktop --workload=CC --scheme=eas
//            --metric=edp [--curves=curves.txt] [--scale=0.3]
//   ecas-cli sweep --platform=baytrail-tablet --workload=MM
//   ecas-cli suite --platform=haswell-desktop --metric=edp
//   ecas-cli serve --platform=haswell-desktop --threads=8
//            --invocations=200 --history-file=tableg.bin
//
// Exit codes: 0 success, 1 runtime failure (I/O, snapshot corruption,
// drain failure), 2 usage error (unknown command/platform/workload/
// scenario or malformed flag value).
//
//===----------------------------------------------------------------------===//

#include "ecas/core/ExecutionSession.h"
#include "ecas/fault/FaultPlan.h"
#include "ecas/hw/Presets.h"
#include "ecas/obs/ChromeTrace.h"
#include "ecas/obs/DecisionLog.h"
#include "ecas/obs/Metrics.h"
#include "ecas/obs/MetricsExport.h"
#include "ecas/obs/Sinks.h"
#include "ecas/power/Characterizer.h"
#include "ecas/support/Cancellation.h"
#include "ecas/support/Flags.h"
#include "ecas/support/Format.h"
#include "ecas/support/ThreadAnnotations.h"
#include "ecas/workloads/Registry.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>
#include <thread>
#include <vector>

using namespace ecas;

namespace {

/// Distinct exit codes so scripts can tell operator mistakes from
/// failures of the run itself.
constexpr int ExitOk = 0;
constexpr int ExitRuntime = 1;
constexpr int ExitUsage = 2;

int usage() {
  std::fprintf(
      stderr,
      "usage: ecas-cli <command> [--flags]\n"
      "commands:\n"
      "  platforms                         list platform presets\n"
      "  characterize --platform=NAME      run the one-time power\n"
      "               [--out=FILE]         characterization\n"
      "  run  --platform=NAME --workload=ABBR [--scheme=eas|cpu|gpu|perf|\n"
      "       oracle|fixed] [--alpha=A] [--metric=energy|edp|ed2p]\n"
      "       [--curves=FILE] [--scale=S] [--fault-plan=PLAN]\n"
      "       [--history-file=FILE] [--deadline-ms=N]\n"
      "       [--trace-out=FILE]           write a Chrome trace-event\n"
      "                                    JSON (Perfetto-loadable)\n"
      "       [--metrics]                  print span/counter summary\n"
      "       [--metrics-out=FILE]         write a Prometheus-text snapshot\n"
      "       [--metrics-json=FILE]        write a JSON metrics snapshot\n"
      "       [--decision-log=FILE]        dump the per-decision audit ring\n"
      "                                    (.csv renders CSV, else JSONL)\n"
      "  sweep --platform=NAME --workload=ABBR [--metric=M] [--scale=S]\n"
      "        [--fault-plan=PLAN]\n"
      "  suite --platform=NAME [--metric=M] [--scale=S]\n"
      "        [--fault-plan=PLAN]\n"
      "  faults --platform=NAME [--scenario=NAME] [--workload=ABBR]\n"
      "         [--metric=M] [--scale=S]   replay fault scenarios and\n"
      "                                    report the degradation policy\n"
      "  serve --platform=NAME [--threads=N] [--invocations=M]\n"
      "        [--metric=M] [--scale=S] [--fault-plan=PLAN]\n"
      "        [--history-file=FILE] [--deadline-ms=N]\n"
      "        [--drain-grace-ms=N]        concurrent stress: N client\n"
      "        [--trace-out=FILE]          threads share one scheduler,\n"
      "        [--metrics]                 then shut it down gracefully\n"
      "        [--metrics-out=FILE]        Prometheus snapshot at exit, or\n"
      "        [--metrics-interval-ms=N]   rewritten atomically every N ms\n"
      "        [--metrics-json=FILE] [--decision-log=FILE]\n"
      "  stats FILE                        pretty-print a Prometheus-text\n"
      "                                    snapshot (from --metrics-out)\n"
      "exit codes: 0 success, 1 runtime failure, 2 usage error\n");
  return ExitUsage;
}

std::optional<PlatformSpec> platformByName(const std::string &Name) {
  for (PlatformSpec &Spec : allPresets())
    if (Spec.Name == Name)
      return Spec;
  // Also accept a path to a serialized spec.
  std::ifstream File(Name);
  if (File) {
    std::ostringstream Buffer;
    Buffer << File.rdbuf();
    return PlatformSpec::deserialize(Buffer.str());
  }
  return std::nullopt;
}

/// Attaches --fault-plan=FILE|SCENARIO to \p Spec when present: a path
/// to a serialized plan, or (when no such file exists) a built-in
/// scenario name from `ecas-cli faults`. Returns false on an unreadable
/// or malformed plan (already reported to stderr).
bool applyFaultPlan(PlatformSpec &Spec, const Flags &Args) {
  std::string Path = Args.getString("fault-plan", "");
  if (Path.empty())
    return true;
  ErrorOr<FaultPlan> Plan = FaultPlan::scenario(Path);
  std::ifstream File(Path);
  if (File) {
    std::ostringstream Buffer;
    Buffer << File.rdbuf();
    Plan = FaultPlan::load(Buffer.str());
    if (!Plan) {
      std::fprintf(stderr, "error: %s: %s\n", Path.c_str(),
                   Plan.status().message().c_str());
      return false;
    }
  } else if (!Plan) {
    std::fprintf(stderr,
                 "error: fault plan %s is neither a readable file nor a "
                 "built-in scenario (have:",
                 Path.c_str());
    for (const std::string &Known : FaultPlan::scenarioNames())
      std::fprintf(stderr, " %s", Known.c_str());
    std::fprintf(stderr, ")\n");
    return false;
  }
  Spec.Faults = *Plan;
  std::printf("fault plan '%s': %zu events, seed %llu\n",
              Plan->name().c_str(), Plan->events().size(),
              static_cast<unsigned long long>(Plan->seed()));
  return true;
}

/// Cause (injected faults) and effect (degradation policy) side by side.
void printDegradation(const SessionReport &R) {
  if (R.FaultsEnabled) {
    const FaultStats &F = R.Injected;
    std::printf("  injected: %llu launch-fail, %llu hang-query, "
                "%llu throttle-query, %llu rapl-drop, %llu rapl-jump, "
                "%llu counter-noise\n",
                static_cast<unsigned long long>(F.LaunchFailures),
                static_cast<unsigned long long>(F.HangQueries),
                static_cast<unsigned long long>(F.ThrottleQueries),
                static_cast<unsigned long long>(F.RaplSamplesDropped),
                static_cast<unsigned long long>(F.RaplCounterJumps),
                static_cast<unsigned long long>(F.NoisyCounterReads));
  }
  const ResilienceSummary &S = R.Resilience;
  std::printf("  reaction: %u retries, %u abandoned, %u hangs, "
              "%u quarantines, %u cpu-only invocations, %u recoveries%s\n",
              S.LaunchRetries, S.LaunchesAbandoned, S.HangsDetected,
              S.Quarantines, S.QuarantinedInvocations, S.Recoveries,
              S.degraded() ? "  [degraded]" : "");
}

std::optional<SchemeKind> schemeByName(const std::string &Name) {
  if (Name == "eas")
    return SchemeKind::Eas;
  if (Name == "cpu")
    return SchemeKind::CpuOnly;
  if (Name == "gpu")
    return SchemeKind::GpuOnly;
  if (Name == "perf")
    return SchemeKind::Perf;
  if (Name == "oracle")
    return SchemeKind::Oracle;
  if (Name == "fixed")
    return SchemeKind::FixedAlpha;
  return std::nullopt;
}

/// True when either observability flag asks for a recorder.
bool wantsObservability(const Flags &Args) {
  return !Args.getString("trace-out", "").empty() ||
         Args.getBool("metrics", false);
}

/// Drains \p Recorder into whatever the --trace-out / --metrics flags
/// requested. Returns false on an I/O failure (already reported).
bool drainObservability(const obs::TraceRecorder &Recorder,
                        const Flags &Args) {
  std::string TraceOut = Args.getString("trace-out", "");
  if (!TraceOut.empty()) {
    obs::ChromeTraceSink Sink(TraceOut);
    if (Status S = Recorder.drainTo(Sink); !S) {
      std::fprintf(stderr, "error: %s\n", S.message().c_str());
      return false;
    }
    std::printf("wrote %s (%llu events; load in Perfetto or "
                "chrome://tracing)\n",
                TraceOut.c_str(),
                static_cast<unsigned long long>(Recorder.eventsRecorded()));
  }
  if (Args.getBool("metrics", false)) {
    obs::SummarySink Summary;
    if (Status S = Recorder.drainTo(Summary); !S) {
      std::fprintf(stderr, "error: %s\n", S.message().c_str());
      return false;
    }
    std::fputs(Summary.text().c_str(), stdout);
  }
  return true;
}

/// True when any flag asks for a metrics registry.
bool wantsMetricsRegistry(const Flags &Args) {
  return !Args.getString("metrics-out", "").empty() ||
         !Args.getString("metrics-json", "").empty();
}

/// Writes the registry snapshot and the audit ring wherever
/// --metrics-out, --metrics-json, and --decision-log point (each write
/// atomic: tmp + rename). Returns false on an I/O failure (reported).
bool writeMetricsOutputs(const obs::MetricsRegistry &Registry,
                         const obs::DecisionLog *Decisions,
                         const Flags &Args) {
  std::string Out = Args.getString("metrics-out", "");
  std::string Json = Args.getString("metrics-json", "");
  if (!Out.empty() || !Json.empty()) {
    obs::MetricsSnapshot Snap = Registry.snapshot();
    if (!Out.empty()) {
      if (Status S = obs::writeFileAtomic(Out, obs::renderPrometheus(Snap));
          !S) {
        std::fprintf(stderr, "error: %s: %s\n", Out.c_str(),
                     S.message().c_str());
        return false;
      }
      std::printf("wrote %s (%zu series; render with `ecas-cli stats %s`)\n",
                  Out.c_str(), Snap.Samples.size(), Out.c_str());
    }
    if (!Json.empty()) {
      if (Status S =
              obs::writeFileAtomic(Json, obs::renderMetricsJson(Snap));
          !S) {
        std::fprintf(stderr, "error: %s: %s\n", Json.c_str(),
                     S.message().c_str());
        return false;
      }
      std::printf("wrote %s (%zu series, JSON)\n", Json.c_str(),
                  Snap.Samples.size());
    }
  }
  std::string LogPath = Args.getString("decision-log", "");
  if (!LogPath.empty() && Decisions) {
    if (Status S = obs::DecisionLogSink::write(*Decisions, LogPath); !S) {
      std::fprintf(stderr, "error: %s: %s\n", LogPath.c_str(),
                   S.message().c_str());
      return false;
    }
    std::printf("wrote %s (%llu decisions, newest %zu resident)\n",
                LogPath.c_str(),
                static_cast<unsigned long long>(Decisions->appended()),
                Decisions->snapshot().size());
  }
  return true;
}

Metric metricByName(const std::string &Name) {
  if (Name == "energy")
    return Metric::energy();
  if (Name == "ed2p")
    return Metric::ed2p();
  return Metric::edp();
}

PowerCurveSet curvesFor(const PlatformSpec &Spec, const Flags &Args) {
  std::string Path = Args.getString("curves", "");
  if (!Path.empty()) {
    std::ifstream File(Path);
    if (File) {
      std::ostringstream Buffer;
      Buffer << File.rdbuf();
      auto Loaded = PowerCurveSet::deserialize(Buffer.str());
      if (Loaded && Loaded->complete()) {
        std::printf("loaded curves from %s (platform %s)\n", Path.c_str(),
                    Loaded->platformName().c_str());
        return *Loaded;
      }
    }
    std::fprintf(stderr,
                 "warning: cannot load %s; characterizing instead\n",
                 Path.c_str());
  }
  return Characterizer(Spec).characterize();
}

std::vector<Workload> suiteFor(const PlatformSpec &Spec,
                               const Flags &Args) {
  WorkloadConfig Config;
  Config.Scale = Args.getDouble("scale", 0.3);
  return Spec.Name == "baytrail-tablet" ? tabletSuite(Config)
                                        : desktopSuite(Config);
}

void printReport(const SessionReport &R) {
  std::printf("%-7s time %-10s energy %-10s avg %8.3f W  %s %.6g  "
              "alpha %.2f\n",
              R.Scheme.c_str(), formatDuration(R.Seconds).c_str(),
              formatEnergy(R.Joules).c_str(), R.averageWatts(), "metric",
              R.MetricValue, R.MeanAlpha);
}

int cmdPlatforms() {
  for (const PlatformSpec &Spec : allPresets())
    std::printf("%-18s %u cores @ %.2f-%.2f GHz, %u EUs @ %.3f-%.3f GHz, "
                "%.1f GB/s, TDP %.1f W\n",
                Spec.Name.c_str(), Spec.Cpu.Cores, Spec.Cpu.MinFreqGHz,
                Spec.Cpu.MaxTurboGHz, Spec.Gpu.ExecutionUnits,
                Spec.Gpu.MinFreqGHz, Spec.Gpu.MaxFreqGHz,
                Spec.Memory.BandwidthGBs, Spec.Pcu.TdpWatts);
  return ExitOk;
}

int cmdCharacterize(const Flags &Args) {
  auto Spec = platformByName(Args.getString("platform", "haswell-desktop"));
  if (!Spec) {
    std::fprintf(stderr, "error: unknown platform\n");
    return ExitUsage;
  }
  PowerCurveSet Curves = Characterizer(*Spec).characterize();
  std::string Out = Args.getString("out", "");
  if (Out.empty()) {
    std::fputs(Curves.serialize().c_str(), stdout);
    return ExitOk;
  }
  std::ofstream File(Out);
  if (!File) {
    std::fprintf(stderr, "error: cannot write %s\n", Out.c_str());
    return ExitRuntime;
  }
  File << Curves.serialize();
  std::printf("wrote %s\n", Out.c_str());
  return ExitOk;
}

int cmdRun(const Flags &Args) {
  auto Spec = platformByName(Args.getString("platform", "haswell-desktop"));
  if (!Spec) {
    std::fprintf(stderr, "error: unknown platform\n");
    return ExitUsage;
  }
  if (!applyFaultPlan(*Spec, Args))
    return ExitRuntime;
  std::vector<Workload> Suite = suiteFor(*Spec, Args);
  const Workload *W = findWorkload(Suite, Args.getString("workload", "CC"));
  if (!W) {
    std::fprintf(stderr, "error: unknown workload (have:");
    for (const Workload &Each : Suite)
      std::fprintf(stderr, " %s", Each.Abbrev.c_str());
    std::fprintf(stderr, ")\n");
    return ExitUsage;
  }
  Metric Objective = metricByName(Args.getString("metric", "edp"));
  std::optional<SchemeKind> Kind = schemeByName(Args.getString("scheme", "eas"));
  if (!Kind) {
    std::fprintf(stderr,
                 "error: unknown scheme (have: eas cpu gpu perf oracle "
                 "fixed)\n");
    return ExitUsage;
  }
  ExecutionSession Session(*Spec);
  std::printf("%s on %s, optimizing %s (%u invocations)\n",
              W->Name.c_str(), Spec->Name.c_str(),
              Objective.name().c_str(), W->numInvocations());

  obs::TraceRecorder Recorder;
  obs::MetricsRegistry Registry;
  obs::DecisionLog Decisions;
  RunOptions Options;
  Options.Trace = &W->Trace;
  Options.Objective = Objective;
  Options.Alpha = Args.getDouble("alpha", 0.5);
  if (wantsObservability(Args))
    Options.Recorder = &Recorder;
  if (wantsMetricsRegistry(Args))
    Options.Metrics = &Registry;
  bool WantDecisions = !Args.getString("decision-log", "").empty();
  if (WantDecisions)
    Options.Decisions = &Decisions;

  // EAS alone needs curves, a table-G file, and a deadline; the sweep
  // and fixed-ratio schemes ignore those options.
  std::optional<PowerCurveSet> Curves;
  CancellationToken Deadline;
  if (*Kind == SchemeKind::Eas) {
    Options.Eas.HistoryFile = Args.getString("history-file", "");
    // The deadline bounds the run in the workload's virtual time (each
    // run starts its clock at zero).
    double DeadlineMs = Args.getDouble("deadline-ms", 0.0);
    if (DeadlineMs > 0.0) {
      Deadline.setDeadline(DeadlineMs / 1000.0);
      Options.Cancel = &Deadline;
    }
    Curves.emplace(curvesFor(*Spec, Args));
    Options.Curves = &*Curves;
  }

  SessionReport Report = Session.run(*Kind, Options);
  if (Report.Cancelled)
    std::printf("deadline hit: %u of %zu invocations completed\n",
                Report.Invocations, W->Trace.size());
  printReport(Report);
  if (Report.FaultsEnabled || Report.Resilience.degraded())
    printDegradation(Report);
  if (Report.ModelSamples)
    std::printf("  model: %u samples, mean rel-err time %.2f%% "
                "energy %.2f%%\n",
                Report.ModelSamples, 100.0 * Report.ModelTimeRelError,
                100.0 * Report.ModelEnergyRelError);
  if (Options.Recorder) {
    if (Report.Kind == SchemeKind::Eas)
      std::printf("  observed: %u profile reps, %u alpha searches, "
                  "%u cpu-only fast paths, %llu trace events\n",
                  Report.ProfileRepetitions, Report.AlphaSearches,
                  Report.CpuOnlyFastPaths,
                  static_cast<unsigned long long>(Report.TraceEventCount));
    if (!drainObservability(Recorder, Args))
      return ExitRuntime;
  }
  if (!writeMetricsOutputs(Registry, WantDecisions ? &Decisions : nullptr,
                           Args))
    return ExitRuntime;
  return ExitOk;
}

int cmdServe(const Flags &Args) {
  auto Spec = platformByName(Args.getString("platform", "haswell-desktop"));
  if (!Spec) {
    std::fprintf(stderr, "error: unknown platform\n");
    return ExitUsage;
  }
  if (!applyFaultPlan(*Spec, Args))
    return ExitRuntime;
  long long Threads = Args.getInt("threads", 8);
  long long PerThread = Args.getInt("invocations", 100);
  if (Threads < 1 || PerThread < 1) {
    std::fprintf(stderr,
                 "error: --threads and --invocations must be positive\n");
    return ExitUsage;
  }
  Metric Objective = metricByName(Args.getString("metric", "edp"));
  double DeadlineMs = Args.getDouble("deadline-ms", 0.0);
  double DrainGraceSec = Args.getDouble("drain-grace-ms", 5000.0) / 1000.0;

  // Mixed kernels: every workload of the platform's suite contributes
  // its invocations to one flat work list the clients cycle over.
  InvocationTrace Work;
  for (const Workload &W : suiteFor(*Spec, Args))
    Work.insert(Work.end(), W.Trace.begin(), W.Trace.end());
  if (Work.empty()) {
    std::fprintf(stderr, "error: empty workload suite\n");
    return ExitRuntime;
  }

  obs::TraceRecorder Recorder;
  obs::MetricsRegistry Registry;
  obs::DecisionLog Decisions;
  EasConfig Config;
  Config.HistoryFile = Args.getString("history-file", "");
  if (wantsObservability(Args))
    Config.Trace = &Recorder;
  if (wantsMetricsRegistry(Args))
    Config.Metrics = &Registry;
  bool WantDecisions = !Args.getString("decision-log", "").empty();
  if (WantDecisions)
    Config.Decisions = &Decisions;
  EasScheduler Scheduler(curvesFor(*Spec, Args), Objective, Config);
  if (!Scheduler.restoreStatus())
    std::fprintf(stderr, "warning: %s (starting cold)\n",
                 Scheduler.restoreStatus().message().c_str());
  else if (Scheduler.restoredRecords() > 0)
    std::printf("restored %zu table-G records from %s\n",
                Scheduler.restoredRecords(), Config.HistoryFile.c_str());

  // Periodic exporter: while the clients hammer the scheduler, rewrite
  // the Prometheus snapshot atomically every interval — what a scrape
  // target looks like for a service without an HTTP listener.
  std::string MetricsOut = Args.getString("metrics-out", "");
  double IntervalMs = Args.getDouble("metrics-interval-ms", 0.0);
  AnnotatedMutex ExportMutex{"Cli.MetricsExport"};
  std::condition_variable ExportCv;
  bool ExportDone = false;
  std::thread Exporter;
  if (!MetricsOut.empty() && IntervalMs > 0.0)
    Exporter = std::thread([&] {
      UniqueLock Lock(ExportMutex);
      unsigned Rewrites = 0;
      while (!ExportCv.wait_for(
          Lock.native(), std::chrono::duration<double, std::milli>(IntervalMs),
          [&] { return ExportDone; })) {
        if (Status S = obs::writeFileAtomic(
                MetricsOut, obs::renderPrometheus(Registry.snapshot()));
            !S)
          std::fprintf(stderr, "warning: %s: %s\n", MetricsOut.c_str(),
                       S.message().c_str());
        else
          ++Rewrites;
      }
      if (Rewrites)
        std::printf("  metrics: %u periodic rewrites of %s\n", Rewrites,
                    MetricsOut.c_str());
    });

  std::atomic<uint64_t> Completed{0}, Cancelled{0}, Rejected{0};
  std::atomic<uint64_t> Profiled{0}, Quarantined{0};
  std::vector<std::thread> Clients;
  Clients.reserve(static_cast<size_t>(Threads));
  for (long long T = 0; T != Threads; ++T)
    Clients.emplace_back([&, T] {
      // Each client brings its own processor (its own virtual clock and
      // energy meter); only the scheduler and its table G are shared.
      SimProcessor Proc(*Spec);
      for (long long K = 0; K != PerThread; ++K) {
        const KernelInvocation &Inv =
            Work[static_cast<size_t>(T + K * Threads) % Work.size()];
        EasScheduler::InvocationOutcome Outcome;
        if (DeadlineMs > 0.0) {
          CancellationToken Deadline;
          Deadline.setDeadline(Proc.now() + DeadlineMs / 1000.0);
          Outcome =
              Scheduler.execute(Proc, Inv.Kernel, Inv.Iterations, Deadline);
        } else {
          Outcome = Scheduler.execute(Proc, Inv.Kernel, Inv.Iterations);
        }
        if (Outcome.Rejected)
          ++Rejected;
        else if (Outcome.Cancelled)
          ++Cancelled;
        else
          ++Completed;
        Profiled += Outcome.Profiled ? 1 : 0;
        Quarantined += Outcome.GpuQuarantined ? 1 : 0;
      }
    });
  for (std::thread &Client : Clients)
    Client.join();

  Status Shutdown = Scheduler.shutdown(DrainGraceSec);

  if (Exporter.joinable()) {
    {
      LockGuard Lock(ExportMutex);
      ExportDone = true;
    }
    ExportCv.notify_all();
    Exporter.join();
  }

  // No lost updates: every completed invocation must be counted in
  // table G (cancelled ones are deliberately not).
  uint64_t Recorded = 0;
  for (const auto &[Key, Rec] : Scheduler.history().entries())
    Recorded += Rec.Invocations;

  std::printf("serve: %lld threads x %lld invocations over %zu kernels\n",
              Threads, PerThread, Scheduler.history().size());
  std::printf("  completed %llu, cancelled %llu, rejected %llu, "
              "profiled %llu, quarantined %llu\n",
              static_cast<unsigned long long>(Completed.load()),
              static_cast<unsigned long long>(Cancelled.load()),
              static_cast<unsigned long long>(Rejected.load()),
              static_cast<unsigned long long>(Profiled.load()),
              static_cast<unsigned long long>(Quarantined.load()));
  std::printf("  table G records %llu invocations%s\n",
              static_cast<unsigned long long>(Recorded),
              Config.HistoryFile.empty()
                  ? ""
                  : (", snapshot " + Config.HistoryFile).c_str());
  if (const GpuHealthMonitor::Stats Stats = Scheduler.health().stats();
      Stats.Quarantines || Stats.Recoveries)
    std::printf("  health: %u quarantines, %u recoveries, state %s\n",
                Stats.Quarantines, Stats.Recoveries,
                gpuHealthStateName(Scheduler.health().state()));
  if (!Shutdown) {
    std::fprintf(stderr, "error: shutdown: %s\n",
                 Shutdown.message().c_str());
    return ExitRuntime;
  }
  if (Config.Trace && !drainObservability(Recorder, Args))
    return ExitRuntime;
  // Final authoritative write — covers the no-interval case and leaves
  // the post-shutdown totals (drain gauge included) on disk.
  if (!writeMetricsOutputs(Registry, WantDecisions ? &Decisions : nullptr,
                           Args))
    return ExitRuntime;
  return ExitOk;
}

int cmdStats(const Flags &Args) {
  if (Args.positional().size() < 2) {
    std::fprintf(stderr, "usage: ecas-cli stats FILE\n");
    return ExitUsage;
  }
  const std::string &Path = Args.positional()[1];
  std::ifstream File(Path);
  if (!File) {
    std::fprintf(stderr, "error: cannot read %s\n", Path.c_str());
    return ExitRuntime;
  }
  std::ostringstream Buffer;
  Buffer << File.rdbuf();
  std::string Text = Buffer.str();
  size_t First = Text.find_first_not_of(" \t\r\n");
  if (First != std::string::npos && Text[First] == '{') {
    std::fprintf(stderr,
                 "error: %s looks like a JSON snapshot; stats renders the "
                 "Prometheus text form (--metrics-out)\n",
                 Path.c_str());
    return ExitUsage;
  }
  ErrorOr<obs::MetricsSnapshot> Snap = obs::parsePrometheusText(Text);
  if (!Snap) {
    std::fprintf(stderr, "error: %s: %s\n", Path.c_str(),
                 Snap.status().message().c_str());
    return ExitRuntime;
  }
  std::fputs(obs::renderMetricsReport(*Snap).c_str(), stdout);
  return ExitOk;
}

int cmdSweep(const Flags &Args) {
  auto Spec = platformByName(Args.getString("platform", "haswell-desktop"));
  if (!Spec) {
    std::fprintf(stderr, "error: unknown platform\n");
    return ExitUsage;
  }
  if (!applyFaultPlan(*Spec, Args))
    return ExitRuntime;
  std::vector<Workload> Suite = suiteFor(*Spec, Args);
  const Workload *W = findWorkload(Suite, Args.getString("workload", "CC"));
  if (!W) {
    std::fprintf(stderr, "error: unknown workload\n");
    return ExitUsage;
  }
  Metric Objective = metricByName(Args.getString("metric", "edp"));
  ExecutionSession Session(*Spec);
  std::printf("%6s %12s %12s %12s\n", "gpu%", "time", "energy",
              Objective.name().c_str());
  for (double Alpha = 0.0; Alpha <= 1.0 + 1e-9; Alpha += 0.1) {
    SessionReport R = Session.runFixedAlpha(
        W->Trace, std::min(Alpha, 1.0), Objective);
    std::printf("%5.0f%% %12s %12s %12.5g\n", 100 * std::min(Alpha, 1.0),
                formatDuration(R.Seconds).c_str(),
                formatEnergy(R.Joules).c_str(), R.MetricValue);
  }
  return ExitOk;
}

int cmdSuite(const Flags &Args) {
  auto Spec = platformByName(Args.getString("platform", "haswell-desktop"));
  if (!Spec) {
    std::fprintf(stderr, "error: unknown platform\n");
    return ExitUsage;
  }
  if (!applyFaultPlan(*Spec, Args))
    return ExitRuntime;
  Metric Objective = metricByName(Args.getString("metric", "edp"));
  PowerCurveSet Curves = curvesFor(*Spec, Args);
  ExecutionSession Session(*Spec);
  std::printf("%-5s %10s %10s %10s %10s %10s\n", "bench", "cpu", "gpu",
              "perf", "eas", "oracle-a");
  for (const Workload &W : suiteFor(*Spec, Args)) {
    SessionReport Oracle = Session.runOracle(W.Trace, Objective);
    auto Eff = [&Oracle](const SessionReport &R) {
      return 100.0 * Oracle.MetricValue / R.MetricValue;
    };
    std::printf("%-5s %9.1f%% %9.1f%% %9.1f%% %9.1f%% %10.1f\n",
                W.Abbrev.c_str(),
                Eff(Session.runCpuOnly(W.Trace, Objective)),
                Eff(Session.runGpuOnly(W.Trace, Objective)),
                Eff(Session.runPerf(W.Trace, Objective)),
                Eff(Session.runEas(W.Trace, Curves, Objective)),
                Oracle.MeanAlpha);
  }
  return ExitOk;
}

int cmdFaults(const Flags &Args) {
  auto Spec = platformByName(Args.getString("platform", "haswell-desktop"));
  if (!Spec) {
    std::fprintf(stderr, "error: unknown platform\n");
    return ExitUsage;
  }
  std::vector<Workload> Suite = suiteFor(*Spec, Args);
  const Workload *W = findWorkload(Suite, Args.getString("workload", "CC"));
  if (!W) {
    std::fprintf(stderr, "error: unknown workload\n");
    return ExitUsage;
  }
  Metric Objective = metricByName(Args.getString("metric", "edp"));

  std::vector<std::string> Names;
  std::string Requested = Args.getString("scenario", "");
  if (Requested.empty())
    Names = FaultPlan::scenarioNames();
  else
    Names.push_back(Requested);

  // Resolve every scenario up front so a typo fails before the (slow)
  // characterization and baseline run.
  std::vector<FaultPlan> Plans;
  for (const std::string &Name : Names) {
    ErrorOr<FaultPlan> Plan = FaultPlan::scenario(Name);
    if (!Plan) {
      std::fprintf(stderr, "error: %s (have:", Plan.status().message().c_str());
      for (const std::string &Known : FaultPlan::scenarioNames())
        std::fprintf(stderr, " %s", Known.c_str());
      std::fprintf(stderr, ")\n");
      return ExitUsage;
    }
    Plans.push_back(*Plan);
  }

  // Curves come from the healthy platform: characterization happens
  // before deployment, the faults afterwards.
  PowerCurveSet Curves = Characterizer(*Spec).characterize();

  // Healthy baseline to compare each scenario against.
  {
    ExecutionSession Session(*Spec);
    SessionReport R = Session.runEas(W->Trace, Curves, Objective);
    std::printf("baseline (no faults): %s on %s\n", W->Name.c_str(),
                Spec->Name.c_str());
    printReport(R);
  }

  for (size_t I = 0; I != Plans.size(); ++I) {
    const FaultPlan &Plan = Plans[I];
    PlatformSpec Faulty = *Spec;
    Faulty.Faults = Plan;
    ExecutionSession Session(Faulty);
    std::printf("\nscenario '%s' (%zu events, seed %llu)\n", Names[I].c_str(),
                Plan.events().size(),
                static_cast<unsigned long long>(Plan.seed()));
    SessionReport R = Session.runEas(W->Trace, Curves, Objective);
    printReport(R);
    printDegradation(R);
  }
  return ExitOk;
}

} // namespace

int main(int Argc, char **Argv) {
  Flags Args(Argc, Argv);
  if (Args.positional().empty())
    return usage();
  const std::string &Command = Args.positional().front();
  if (Command == "platforms")
    return cmdPlatforms();
  if (Command == "characterize")
    return cmdCharacterize(Args);
  if (Command == "run")
    return cmdRun(Args);
  if (Command == "sweep")
    return cmdSweep(Args);
  if (Command == "suite")
    return cmdSuite(Args);
  if (Command == "faults")
    return cmdFaults(Args);
  if (Command == "serve")
    return cmdServe(Args);
  if (Command == "stats")
    return cmdStats(Args);
  std::fprintf(stderr, "error: unknown command '%s'\n", Command.c_str());
  return usage();
}
