//===-- tools/ecas_cli.cpp - Command-line front end ------------------------===//
//
// Part of the ecas project, under the MIT License.
//
// The operational entry point a downstream user drives:
//
//   ecas-cli platforms
//   ecas-cli characterize --platform=haswell-desktop --out=curves.txt
//   ecas-cli run --platform=haswell-desktop --workload=CC --scheme=eas
//            --metric=edp [--curves=curves.txt] [--scale=0.3]
//   ecas-cli sweep --platform=baytrail-tablet --workload=MM
//   ecas-cli suite --platform=haswell-desktop --metric=edp
//
//===----------------------------------------------------------------------===//

#include "ecas/core/ExecutionSession.h"
#include "ecas/fault/FaultPlan.h"
#include "ecas/hw/Presets.h"
#include "ecas/power/Characterizer.h"
#include "ecas/support/Flags.h"
#include "ecas/support/Format.h"
#include "ecas/workloads/Registry.h"

#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>

using namespace ecas;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: ecas-cli <command> [--flags]\n"
      "commands:\n"
      "  platforms                         list platform presets\n"
      "  characterize --platform=NAME      run the one-time power\n"
      "               [--out=FILE]         characterization\n"
      "  run  --platform=NAME --workload=ABBR [--scheme=eas|cpu|gpu|perf|\n"
      "       oracle] [--metric=energy|edp|ed2p] [--curves=FILE]\n"
      "       [--scale=S] [--fault-plan=FILE]\n"
      "  sweep --platform=NAME --workload=ABBR [--metric=M] [--scale=S]\n"
      "        [--fault-plan=FILE]\n"
      "  suite --platform=NAME [--metric=M] [--scale=S]\n"
      "        [--fault-plan=FILE]\n"
      "  faults --platform=NAME [--scenario=NAME] [--workload=ABBR]\n"
      "         [--metric=M] [--scale=S]   replay fault scenarios and\n"
      "                                    report the degradation policy\n");
  return 2;
}

std::optional<PlatformSpec> platformByName(const std::string &Name) {
  for (PlatformSpec &Spec : allPresets())
    if (Spec.Name == Name)
      return Spec;
  // Also accept a path to a serialized spec.
  std::ifstream File(Name);
  if (File) {
    std::ostringstream Buffer;
    Buffer << File.rdbuf();
    return PlatformSpec::deserialize(Buffer.str());
  }
  return std::nullopt;
}

/// Attaches --fault-plan=FILE to \p Spec when present. Returns false on
/// an unreadable or malformed plan (already reported to stderr).
bool applyFaultPlan(PlatformSpec &Spec, const Flags &Args) {
  std::string Path = Args.getString("fault-plan", "");
  if (Path.empty())
    return true;
  std::ifstream File(Path);
  if (!File) {
    std::fprintf(stderr, "error: cannot read fault plan %s\n", Path.c_str());
    return false;
  }
  std::ostringstream Buffer;
  Buffer << File.rdbuf();
  ErrorOr<FaultPlan> Plan = FaultPlan::load(Buffer.str());
  if (!Plan) {
    std::fprintf(stderr, "error: %s: %s\n", Path.c_str(),
                 Plan.status().message().c_str());
    return false;
  }
  Spec.Faults = *Plan;
  std::printf("fault plan '%s': %zu events, seed %llu\n",
              Plan->name().c_str(), Plan->events().size(),
              static_cast<unsigned long long>(Plan->seed()));
  return true;
}

/// Cause (injected faults) and effect (degradation policy) side by side.
void printDegradation(const SessionReport &R) {
  if (R.FaultsEnabled) {
    const FaultStats &F = R.Injected;
    std::printf("  injected: %llu launch-fail, %llu hang-query, "
                "%llu throttle-query, %llu rapl-drop, %llu rapl-jump, "
                "%llu counter-noise\n",
                static_cast<unsigned long long>(F.LaunchFailures),
                static_cast<unsigned long long>(F.HangQueries),
                static_cast<unsigned long long>(F.ThrottleQueries),
                static_cast<unsigned long long>(F.RaplSamplesDropped),
                static_cast<unsigned long long>(F.RaplCounterJumps),
                static_cast<unsigned long long>(F.NoisyCounterReads));
  }
  const ResilienceSummary &S = R.Resilience;
  std::printf("  reaction: %u retries, %u abandoned, %u hangs, "
              "%u quarantines, %u cpu-only invocations, %u recoveries%s\n",
              S.LaunchRetries, S.LaunchesAbandoned, S.HangsDetected,
              S.Quarantines, S.QuarantinedInvocations, S.Recoveries,
              S.degraded() ? "  [degraded]" : "");
}

Metric metricByName(const std::string &Name) {
  if (Name == "energy")
    return Metric::energy();
  if (Name == "ed2p")
    return Metric::ed2p();
  return Metric::edp();
}

PowerCurveSet curvesFor(const PlatformSpec &Spec, const Flags &Args) {
  std::string Path = Args.getString("curves", "");
  if (!Path.empty()) {
    std::ifstream File(Path);
    if (File) {
      std::ostringstream Buffer;
      Buffer << File.rdbuf();
      auto Loaded = PowerCurveSet::deserialize(Buffer.str());
      if (Loaded && Loaded->complete()) {
        std::printf("loaded curves from %s (platform %s)\n", Path.c_str(),
                    Loaded->platformName().c_str());
        return *Loaded;
      }
    }
    std::fprintf(stderr,
                 "warning: cannot load %s; characterizing instead\n",
                 Path.c_str());
  }
  return Characterizer(Spec).characterize();
}

std::vector<Workload> suiteFor(const PlatformSpec &Spec,
                               const Flags &Args) {
  WorkloadConfig Config;
  Config.Scale = Args.getDouble("scale", 0.3);
  return Spec.Name == "baytrail-tablet" ? tabletSuite(Config)
                                        : desktopSuite(Config);
}

void printReport(const SessionReport &R) {
  std::printf("%-7s time %-10s energy %-10s avg %8.3f W  %s %.6g  "
              "alpha %.2f\n",
              R.Scheme.c_str(), formatDuration(R.Seconds).c_str(),
              formatEnergy(R.Joules).c_str(), R.averageWatts(), "metric",
              R.MetricValue, R.MeanAlpha);
}

int cmdPlatforms() {
  for (const PlatformSpec &Spec : allPresets())
    std::printf("%-18s %u cores @ %.2f-%.2f GHz, %u EUs @ %.3f-%.3f GHz, "
                "%.1f GB/s, TDP %.1f W\n",
                Spec.Name.c_str(), Spec.Cpu.Cores, Spec.Cpu.MinFreqGHz,
                Spec.Cpu.MaxTurboGHz, Spec.Gpu.ExecutionUnits,
                Spec.Gpu.MinFreqGHz, Spec.Gpu.MaxFreqGHz,
                Spec.Memory.BandwidthGBs, Spec.Pcu.TdpWatts);
  return 0;
}

int cmdCharacterize(const Flags &Args) {
  auto Spec = platformByName(Args.getString("platform", "haswell-desktop"));
  if (!Spec) {
    std::fprintf(stderr, "error: unknown platform\n");
    return 1;
  }
  PowerCurveSet Curves = Characterizer(*Spec).characterize();
  std::string Out = Args.getString("out", "");
  if (Out.empty()) {
    std::fputs(Curves.serialize().c_str(), stdout);
    return 0;
  }
  std::ofstream File(Out);
  if (!File) {
    std::fprintf(stderr, "error: cannot write %s\n", Out.c_str());
    return 1;
  }
  File << Curves.serialize();
  std::printf("wrote %s\n", Out.c_str());
  return 0;
}

int cmdRun(const Flags &Args) {
  auto Spec = platformByName(Args.getString("platform", "haswell-desktop"));
  if (!Spec) {
    std::fprintf(stderr, "error: unknown platform\n");
    return 1;
  }
  if (!applyFaultPlan(*Spec, Args))
    return 1;
  std::vector<Workload> Suite = suiteFor(*Spec, Args);
  const Workload *W = findWorkload(Suite, Args.getString("workload", "CC"));
  if (!W) {
    std::fprintf(stderr, "error: unknown workload (have:");
    for (const Workload &Each : Suite)
      std::fprintf(stderr, " %s", Each.Abbrev.c_str());
    std::fprintf(stderr, ")\n");
    return 1;
  }
  Metric Objective = metricByName(Args.getString("metric", "edp"));
  ExecutionSession Session(*Spec);
  std::string Scheme = Args.getString("scheme", "eas");
  std::printf("%s on %s, optimizing %s (%u invocations)\n",
              W->Name.c_str(), Spec->Name.c_str(),
              Objective.name().c_str(), W->numInvocations());
  SessionReport Report;
  if (Scheme == "cpu")
    Report = Session.runCpuOnly(W->Trace, Objective);
  else if (Scheme == "gpu")
    Report = Session.runGpuOnly(W->Trace, Objective);
  else if (Scheme == "perf")
    Report = Session.runPerf(W->Trace, Objective);
  else if (Scheme == "oracle")
    Report = Session.runOracle(W->Trace, Objective);
  else
    Report = Session.runEas(W->Trace, curvesFor(*Spec, Args), Objective);
  printReport(Report);
  if (Report.FaultsEnabled || Report.Resilience.degraded())
    printDegradation(Report);
  return 0;
}

int cmdSweep(const Flags &Args) {
  auto Spec = platformByName(Args.getString("platform", "haswell-desktop"));
  if (!Spec) {
    std::fprintf(stderr, "error: unknown platform\n");
    return 1;
  }
  if (!applyFaultPlan(*Spec, Args))
    return 1;
  std::vector<Workload> Suite = suiteFor(*Spec, Args);
  const Workload *W = findWorkload(Suite, Args.getString("workload", "CC"));
  if (!W) {
    std::fprintf(stderr, "error: unknown workload\n");
    return 1;
  }
  Metric Objective = metricByName(Args.getString("metric", "edp"));
  ExecutionSession Session(*Spec);
  std::printf("%6s %12s %12s %12s\n", "gpu%", "time", "energy",
              Objective.name().c_str());
  for (double Alpha = 0.0; Alpha <= 1.0 + 1e-9; Alpha += 0.1) {
    SessionReport R = Session.runFixedAlpha(
        W->Trace, std::min(Alpha, 1.0), Objective);
    std::printf("%5.0f%% %12s %12s %12.5g\n", 100 * std::min(Alpha, 1.0),
                formatDuration(R.Seconds).c_str(),
                formatEnergy(R.Joules).c_str(), R.MetricValue);
  }
  return 0;
}

int cmdSuite(const Flags &Args) {
  auto Spec = platformByName(Args.getString("platform", "haswell-desktop"));
  if (!Spec) {
    std::fprintf(stderr, "error: unknown platform\n");
    return 1;
  }
  if (!applyFaultPlan(*Spec, Args))
    return 1;
  Metric Objective = metricByName(Args.getString("metric", "edp"));
  PowerCurveSet Curves = curvesFor(*Spec, Args);
  ExecutionSession Session(*Spec);
  std::printf("%-5s %10s %10s %10s %10s %10s\n", "bench", "cpu", "gpu",
              "perf", "eas", "oracle-a");
  for (const Workload &W : suiteFor(*Spec, Args)) {
    SessionReport Oracle = Session.runOracle(W.Trace, Objective);
    auto Eff = [&Oracle](const SessionReport &R) {
      return 100.0 * Oracle.MetricValue / R.MetricValue;
    };
    std::printf("%-5s %9.1f%% %9.1f%% %9.1f%% %9.1f%% %10.1f\n",
                W.Abbrev.c_str(),
                Eff(Session.runCpuOnly(W.Trace, Objective)),
                Eff(Session.runGpuOnly(W.Trace, Objective)),
                Eff(Session.runPerf(W.Trace, Objective)),
                Eff(Session.runEas(W.Trace, Curves, Objective)),
                Oracle.MeanAlpha);
  }
  return 0;
}

int cmdFaults(const Flags &Args) {
  auto Spec = platformByName(Args.getString("platform", "haswell-desktop"));
  if (!Spec) {
    std::fprintf(stderr, "error: unknown platform\n");
    return 1;
  }
  std::vector<Workload> Suite = suiteFor(*Spec, Args);
  const Workload *W = findWorkload(Suite, Args.getString("workload", "CC"));
  if (!W) {
    std::fprintf(stderr, "error: unknown workload\n");
    return 1;
  }
  Metric Objective = metricByName(Args.getString("metric", "edp"));

  std::vector<std::string> Names;
  std::string Requested = Args.getString("scenario", "");
  if (Requested.empty())
    Names = FaultPlan::scenarioNames();
  else
    Names.push_back(Requested);

  // Resolve every scenario up front so a typo fails before the (slow)
  // characterization and baseline run.
  std::vector<FaultPlan> Plans;
  for (const std::string &Name : Names) {
    ErrorOr<FaultPlan> Plan = FaultPlan::scenario(Name);
    if (!Plan) {
      std::fprintf(stderr, "error: %s (have:", Plan.status().message().c_str());
      for (const std::string &Known : FaultPlan::scenarioNames())
        std::fprintf(stderr, " %s", Known.c_str());
      std::fprintf(stderr, ")\n");
      return 1;
    }
    Plans.push_back(*Plan);
  }

  // Curves come from the healthy platform: characterization happens
  // before deployment, the faults afterwards.
  PowerCurveSet Curves = Characterizer(*Spec).characterize();

  // Healthy baseline to compare each scenario against.
  {
    ExecutionSession Session(*Spec);
    SessionReport R = Session.runEas(W->Trace, Curves, Objective);
    std::printf("baseline (no faults): %s on %s\n", W->Name.c_str(),
                Spec->Name.c_str());
    printReport(R);
  }

  for (size_t I = 0; I != Plans.size(); ++I) {
    const FaultPlan &Plan = Plans[I];
    PlatformSpec Faulty = *Spec;
    Faulty.Faults = Plan;
    ExecutionSession Session(Faulty);
    std::printf("\nscenario '%s' (%zu events, seed %llu)\n", Names[I].c_str(),
                Plan.events().size(),
                static_cast<unsigned long long>(Plan.seed()));
    SessionReport R = Session.runEas(W->Trace, Curves, Objective);
    printReport(R);
    printDegradation(R);
  }
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  Flags Args(Argc, Argv);
  if (Args.positional().empty())
    return usage();
  const std::string &Command = Args.positional().front();
  if (Command == "platforms")
    return cmdPlatforms();
  if (Command == "characterize")
    return cmdCharacterize(Args);
  if (Command == "run")
    return cmdRun(Args);
  if (Command == "sweep")
    return cmdSweep(Args);
  if (Command == "suite")
    return cmdSuite(Args);
  if (Command == "faults")
    return cmdFaults(Args);
  std::fprintf(stderr, "error: unknown command '%s'\n", Command.c_str());
  return usage();
}
