#!/usr/bin/env python3
"""ecas-hotpath: static analyzer proving the decision hot path stays
allocation-free, exception-free, and lock-disciplined (DESIGN.md §14).

Functions marked ECAS_HOT (ecas/support/HotPath.h) are hot-path roots:
the KernelHistory lock-free lookup and counter bumps, the TimeModel /
Metric / PowerCurve evaluations, the alpha search and its Minimize.h
kernels, the GpuHealth fast-path reads, and EasScheduler::runTableHit —
the steady-state table-hit branch through dispatch. The analyzer walks
the call graph from those roots and reports:

  alloc        Heap allocation: new expressions, malloc and friends,
               make_unique/make_shared, growing container operations
               (push_back, emplace, resize, ...), string/format
               construction, and std::function construction from a
               callable (libstdc++'s 16-byte SBO overflows on multi-
               capture lambdas).
  throw        throw expressions and try/catch regions. The hot path
               must not unwind; errors travel as Status/ErrorOr values.
  lock         Mutex acquisition (LockGuard/UniqueLock/std::lock_guard/
               unique_lock/scoped_lock, .lock()). The single whitelisted
               acquisition is the KernelHistory leaf shard lock on the
               first-use insert slow path (KernelHistory::obtainEntry).
  io           Blocking calls and file IO: fopen/fwrite/fsync/...,
               sleeps, condition waits, joins.
  extern-call  A call that resolves to no function defined in src/ecas
               and no whitelisted standard utility: the analyzer cannot
               see whether it allocates or blocks, so it must be either
               annotated, whitelisted, or suppressed with a reason.

Two engines implement the same rules:

  textual      Regex + brace matching over src/ecas. No dependencies;
               runs everywhere; this is the CI gate and the self-test
               subject. Conservative: it walks every same-name candidate
               definition for a method call.
  clang        libclang (python3-clang) over compile_commands.json; the
               AST resolves calls exactly and reads the annotate
               attribute. Advisory in CI (continue-on-error) because
               runners without libclang must not mask textual findings.

Suppressions match ecas-lint's syntax, one comment per line:
  // ecas-hotpath: allow(rule)          on the offending line, or as a
                                        standalone comment line directly
                                        above it
  // ecas-hotpath: allow(rule1, rule2)  several rules at once
On an operation line the suppression kills that finding; on a call line
it kills findings of those rules discovered anywhere through that call
edge (the callee subtree), which is how gated slow paths — trace
formatting, journal flushes — are documented at their gate. A
suppression on (or directly above) a function's definition line applies
to the whole body and everything it calls: that is how opt-in
amortized subsystems (HistoryJournal::enqueue, maybeFlush) carry their
justification once, at the definition, instead of at every call site.

The textual engine walks definitions in the decision-path modules only
(WALK_MODULES below). cl/, obs/, runtime/, service/ and workloads/ are
architecturally off the steady-state decision path; calls that resolve
only there surface as extern-call findings unless the name is a
whitelisted null-gated obs entry point. This also keeps common method
names (enqueue, open, flush) from dragging the MiniCl emulator or the
service front end into the hot walk.

Exit status: 0 clean, 1 findings, 2 usage/environment errors.
"""

import argparse
import json
import os
import re
import sys

RULES = ("alloc", "throw", "lock", "io", "extern-call")

# Modules the textual engine indexes and walks. Everything the decision
# hot path can touch lives here; cl/ (MiniCl emulator), obs/ (null-gated
# trace layer), runtime/, service/ and workloads/ are not reachable from
# an ECAS_HOT root by design, and excluding them keeps same-name methods
# (enqueue, flush, open, wait) from aliasing into their call graphs.
WALK_MODULES = ("core", "device", "fault", "hw", "math", "power",
                "profile", "sim", "support")

ALLOW_LINE = re.compile(r"//\s*ecas-hotpath:\s*allow\(([\w\s,-]+)\)")

# ---------------------------------------------------------------------------
# Shared rule tables (both engines).
# ---------------------------------------------------------------------------

# Call targets that allocate no matter who resolves them.
ALLOC_CALLS = {
    "malloc", "calloc", "realloc", "strdup", "aligned_alloc",
    "make_unique", "make_shared", "make_pair_heap",
    "push_back", "emplace_back", "emplace", "emplace_front", "push_front",
    "resize", "reserve", "insert", "append", "assign",
    "to_string", "formatString", "substr", "str",
}

# Blocking / IO call targets.
IO_CALLS = {
    "fopen", "fwrite", "fread", "fclose", "fflush", "fsync", "fdatasync",
    "fprintf", "printf", "fscanf", "getline", "system", "popen",
    "sleep_for", "sleep_until", "usleep", "nanosleep", "sleep",
    "wait", "wait_for", "wait_until", "join",
}

# Lock-acquiring constructions / calls.
LOCK_TYPES = {
    "LockGuard", "UniqueLock", "lock_guard", "unique_lock", "scoped_lock",
    "shared_lock",
}

# Functional casts / fundamental-type constructions: never allocate.
PRIMITIVE_NAMES = {
    "bool", "char", "short", "int", "long", "unsigned", "float", "double",
    "void", "auto", "size_t", "ssize_t", "ptrdiff_t", "uintptr_t",
    "intptr_t", "uint8_t", "uint16_t", "uint32_t", "uint64_t",
    "int8_t", "int16_t", "int32_t", "int64_t", "wchar_t",
}

# Value types whose declaration-with-arguments never touches the heap.
VALUE_TYPE_SKIP = {
    "unique_ptr", "shared_ptr", "weak_ptr", "optional", "pair", "tuple",
    "array", "atomic", "string_view", "span", "initializer_list",
    "duration", "time_point", "chrono",
}

# Container/string types whose construction WITH arguments allocates
# (empty construction '()' does not and is skipped at the call site).
CTOR_ALLOC_TYPES = {
    "string", "vector", "deque", "list", "map", "set", "unordered_map",
    "unordered_set", "multimap", "multiset", "ostringstream",
    "istringstream", "stringstream",
}

# The one blessed acquisition (DESIGN.md §14): table G's first-use insert
# takes the leaf shard lock once per kernel lifetime.
LOCK_WHITELIST_FUNCTIONS = {"obtainEntry"}

# External names the analyzer trusts: standard math/utility, atomic
# operations, and trivial container/optional reads that never allocate,
# lock, or block. Checked before index resolution for method-style calls,
# so a common accessor name here also skips walking same-name repo
# methods (the textual engine cannot see receiver types).
ALLOWED_EXTERNALS = {
    # <cmath>/<algorithm>/<utility>
    "min", "max", "floor", "ceil", "round", "abs", "fabs", "sqrt", "pow",
    "exp", "log", "log2", "isfinite", "isnan", "isinf", "fmod", "clamp",
    "move", "swap", "forward", "get", "trunc", "llround", "lround", "cbrt",
    # <cstring>: fixed-size byte ops, no heap
    "memcpy", "memmove", "memcmp", "memset", "strlen",
    # atomics
    "load", "store", "exchange", "fetch_add", "fetch_sub", "fetch_or",
    "compare_exchange_strong", "compare_exchange_weak",
    # condition-variable wakes: non-blocking (waits stay in IO_CALLS)
    "notify_all", "notify_one",
    # <chrono> reads
    "time_since_epoch", "duration_cast",
    # non-growing container / string / optional reads
    "size", "empty", "clear", "begin", "end", "data", "front", "back",
    "pop_back", "pop_front", "erase", "find", "at", "c_str", "length",
    "has_value", "hasValue", "value", "value_or", "reset", "count",
    # obs layer entry points: null-gated on the hot path (TraceRecorder*
    # is null unless tracing is on); ObsTest pins bit-identity with the
    # recorder off and HotPathTest pins zero allocations through them
    "instant", "setEndDetail", "ScopedSpan",
    # project assertion macros: abort on failure, never throw/allocate
    "ECAS_CHECK", "ECAS_ASSERT",
    # template callable parameters (Minimize.h convention): the callable
    # is a stack lambda whose body the analyzer reads inline at the call
    # site that instantiates the template
    "Fn",
}

# Statement-level keywords the call regex must not treat as callees.
KEYWORDS = {
    "if", "for", "while", "switch", "return", "sizeof", "alignof",
    "decltype", "catch", "defined", "noexcept", "new", "delete", "throw",
    "else", "do", "case", "static_assert", "alignas", "typeid", "assert",
    "operator", "co_return", "co_await", "co_yield", "explicit",
    "typename", "template", "using", "friend",
}

# Project struct/class/enum declarations. Constructing one that has no
# user-written constructor anywhere in the walked modules is memberwise
# initialization — no heap unless a member allocates, which the runtime
# AllocGuard regression would catch.
TYPE_DECL_RE = re.compile(
    r"\b(?:struct|class|enum(?:\s+(?:class|struct))?|union)\s+([A-Za-z_]\w*)")

CALL_RE = re.compile(r"([A-Za-z_][\w:]*)\s*\(")
NEW_EXPR_RE = re.compile(r"(?<!operator )\bnew\b(?!\s*\()")
PLACEMENT_NEW_RE = re.compile(r"\bnew\s*\(")
THROW_RE = re.compile(r"\bthrow\b")
TRY_RE = re.compile(r"\btry\s*\{|\bcatch\s*\(")
STD_FUNCTION_CTOR_RE = re.compile(r"\bstd::function<[^;{}]*?>\s*\(\s*[^)\s]")
LOCK_METHOD_RE = re.compile(r"(?:\.|->)lock\s*\(")
LAMBDA_DECL_RE = re.compile(r"\b(?:const\s+)?auto\s+(\w+)\s*=\s*\[")
DECL_BEFORE_CALL_RE = re.compile(r"[\w>]\s+$")
HOT_MARKER = "ECAS_HOT"


class Finding:
    def __init__(self, path, line, rule, message, chain):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message
        self.chain = chain  # list of function names, root first

    def render(self, root):
        rel = os.path.relpath(self.path, root)
        via = " -> ".join(self.chain)
        return f"{rel}:{self.line}: [{self.rule}] {self.message} (via {via})"

    def as_dict(self, root):
        return {
            "file": os.path.relpath(self.path, root),
            "line": self.line,
            "rule": self.rule,
            "message": self.message,
            "chain": self.chain,
        }

    def key(self):
        return (self.path, self.line, self.rule, self.message)


def strip_comments_and_strings(line, in_block_comment):
    """Same contract as ecas_lint.strip_comments_and_strings: comment and
    string contents become spaces so rule regexes cannot match inside."""
    out = []
    i = 0
    n = len(line)
    in_string = None
    while i < n:
        c = line[i]
        nxt = line[i + 1] if i + 1 < n else ""
        if in_block_comment:
            if c == "*" and nxt == "/":
                in_block_comment = False
                out.append("  ")
                i += 2
                continue
            out.append(" ")
            i += 1
            continue
        if in_string:
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == in_string:
                in_string = None
                out.append(c)
                i += 1
                continue
            out.append(" ")
            i += 1
            continue
        if c == "/" and nxt == "/":
            out.append(" " * (n - i))
            break
        if c == "/" and nxt == "*":
            in_block_comment = True
            out.append("  ")
            i += 2
            continue
        if c in "\"'":
            in_string = c
            out.append(c)
            i += 1
            continue
        out.append(c)
        i += 1
    return "".join(out), in_block_comment


def line_allowed_rules(raw_line):
    m = ALLOW_LINE.search(raw_line)
    if not m:
        return frozenset()
    return frozenset(r.strip() for r in m.group(1).split(",") if r.strip())


def allowed_rules_at(raw_lines, ln):
    """Rules suppressed at 1-based line ln: an allow on the line itself,
    or on a standalone comment line directly above it."""
    rules = line_allowed_rules(raw_lines[ln - 1])
    if ln >= 2:
        above = raw_lines[ln - 2].strip()
        if above.startswith("//"):
            rules = rules | line_allowed_rules(above)
    return rules


# ---------------------------------------------------------------------------
# Textual engine.
# ---------------------------------------------------------------------------

class SourceFile:
    def __init__(self, path):
        self.path = path
        with open(path, encoding="utf-8", errors="replace") as f:
            self.raw_lines = f.read().splitlines()
        self.code_lines = []
        in_block = False
        for raw in self.raw_lines:
            code, in_block = strip_comments_and_strings(raw, in_block)
            self.code_lines.append(code)


class FunctionDef:
    """One brace-matched function body in a source file."""

    def __init__(self, name, source, header_line, body_start, body_end,
                 body_start_col=0, body_end_col=None):
        self.name = name  # last identifier of the declarator
        self.source = source
        self.header_line = header_line  # 1-based line of the declarator
        self.body_start = body_start  # 1-based first line of the body
        self.body_end = body_end  # 1-based line of the closing brace
        # Columns of the braces, so single-line definitions do not scan
        # their own declarator or constructor initializer list.
        self.body_start_col = body_start_col
        self.body_end_col = body_end_col

    def body_line_numbers(self):
        return range(self.body_start, self.body_end + 1)


HEADER_NAME_RE = re.compile(r"([A-Za-z_~]\w*)\s*\($")
CONTROL_HEADERS = {
    "if", "for", "while", "switch", "catch", "else", "do", "try",
    "class", "struct", "union", "enum", "namespace", "return",
}


def index_functions(source):
    """Finds function definitions by scanning for '{' tokens whose
    preceding declarator text ends in 'name(...)'. Nested inline class
    methods are found; control-flow blocks and aggregate initialization
    are filtered by keyword and shape."""
    defs = []
    # Flatten with a line map.
    text = []
    line_of = []
    for ln, code in enumerate(source.code_lines, 1):
        text.append(code)
        line_of.extend([ln] * (len(code) + 1))  # +1 for the newline
    flat = "\n".join(text)

    depth_stack = []
    i = 0
    n = len(flat)
    while i < n:
        c = flat[i]
        if c == "{":
            # Declarator: text since the previous ';', '{', or '}'.
            j = i - 1
            while j >= 0 and flat[j] not in ";{}":
                j -= 1
            header = flat[j + 1:i]
            name = _declarator_name(header)
            if name:
                end = _match_brace(flat, i)
                if end != -1:
                    defs.append(FunctionDef(
                        name, source,
                        line_of[min(j + 1 + _leading_ws(header),
                                    len(line_of) - 1)],
                        line_of[i], line_of[end],
                        i - flat.rfind("\n", 0, i) - 1,
                        end - flat.rfind("\n", 0, end) - 1))
                    # Do not skip the body: nested lambdas/classes inside
                    # still get indexed independently (harmless).
            depth_stack.append(i)
        elif c == "}":
            if depth_stack:
                depth_stack.pop()
        i += 1
    return defs


def _leading_ws(s):
    return len(s) - len(s.lstrip())


def _match_brace(flat, open_idx):
    depth = 0
    for k in range(open_idx, len(flat)):
        if flat[k] == "{":
            depth += 1
        elif flat[k] == "}":
            depth -= 1
            if depth == 0:
                return k
    return -1


def _declarator_name(header):
    """Extracts the function name from declarator text preceding '{', or
    None when the brace is not a function body."""
    h = header.strip()
    if not h or h.endswith("="):  # brace initialization
        return None
    # Constructor initializer list: ') : Member(init), ...' — truncate at
    # the parameter list so the ctor is indexed under its own name, not
    # the last initializer's. '::' is excluded so qualified names pass.
    init = re.search(r"\)\s*:(?!:)", h)
    if init:
        h = h[:init.start() + 1]
    # Trim trailing qualifiers after the parameter list ('const override',
    # 'const noexcept', a trailing return type, any combination).
    h = re.sub(r"\)\s*(?:(?:const|noexcept|override|final|mutable)\s*)*"
               r"(?:->\s*[\w:<>,\s*&]+)?\s*$",
               ")", h)
    if not h.endswith(")"):
        return None
    # Walk back over the balanced parameter list.
    depth = 0
    k = len(h) - 1
    while k >= 0:
        if h[k] == ")":
            depth += 1
        elif h[k] == "(":
            depth -= 1
            if depth == 0:
                break
        k -= 1
    if k <= 0:
        return None
    m = HEADER_NAME_RE.search(h[:k + 1].rstrip())
    if not m:
        return None
    name = m.group(1)
    if name in CONTROL_HEADERS or name in KEYWORDS:
        return None
    # Reject macro-style all-caps invocations used as statements.
    if name.isupper() and "_" in name:
        return None
    return name


def find_hot_roots(sources):
    """Names of functions annotated ECAS_HOT anywhere in the tree."""
    roots = set()
    for src in sources:
        if os.path.basename(src.path) == "HotPath.h":
            continue  # the macro definition itself
        flat_lines = src.code_lines
        for ln, code in enumerate(flat_lines, 1):
            if HOT_MARKER not in code or code.lstrip().startswith("#"):
                continue
            # Scan forward from the marker for 'name(' — the declarator
            # may continue on following lines.
            tail = code.split(HOT_MARKER, 1)[1]
            window = tail
            extra = 0
            while "(" not in window and extra < 5 and ln + extra < len(flat_lines):
                window += " " + flat_lines[ln + extra].strip()
                extra += 1
            m = re.search(r"([A-Za-z_]\w*)\s*\(", window)
            if m and m.group(1) not in KEYWORDS:
                roots.add(m.group(1))
    return roots


class TextualEngine:
    def __init__(self, root, src_dirs):
        self.root = root
        self.sources = []
        for d in src_dirs:
            base = os.path.join(root, d)
            for dirpath, dirnames, filenames in os.walk(base):
                dirnames[:] = [x for x in dirnames
                               if not x.startswith("build")]
                for name in sorted(filenames):
                    if name.endswith((".h", ".cpp")):
                        self.sources.append(
                            SourceFile(os.path.join(dirpath, name)))
        self.index = {}
        self.type_names = set()
        for src in self.sources:
            for fd in index_functions(src):
                self.index.setdefault(fd.name, []).append(fd)
            for code in src.code_lines:
                for m in TYPE_DECL_RE.finditer(code):
                    self.type_names.add(m.group(1))
        self.roots = find_hot_roots(self.sources)
        self.findings = []
        self._seen_findings = set()
        self.walked = set()

    def run(self):
        if not self.roots:
            return None  # caller treats as configuration error
        for name in sorted(self.roots):
            for fd in self.index.get(name, []):
                self._walk(fd, frozenset(), [name], set())
        return self.findings

    def _emit(self, path, line, rule, message, chain):
        f = Finding(path, line, rule, message, list(chain))
        if f.key() in self._seen_findings:
            return
        self._seen_findings.add(f.key())
        self.findings.append(f)

    def _walk(self, fd, suppressed, chain, visiting):
        src = fd.source
        # A suppression on (or in the comment block above) the definition
        # line covers the whole body and its callees.
        probe_from = fd.header_line
        while probe_from > 1 and \
                src.raw_lines[probe_from - 2].strip().startswith("//"):
            probe_from -= 1
        for probe in range(probe_from, fd.body_start + 1):
            if 1 <= probe <= len(src.raw_lines):
                suppressed = suppressed | line_allowed_rules(
                    src.raw_lines[probe - 1])
        key = (fd.source.path, fd.body_start, suppressed)
        if key in visiting or key in self.walked:
            return
        visiting = visiting | {key}
        self.walked.add(key)
        local_lambdas = set()
        for ln in fd.body_line_numbers():
            code = src.code_lines[ln - 1]
            # Confine the scan to the brace-bounded body text.
            if ln == fd.body_end and fd.body_end_col is not None:
                code = code[:fd.body_end_col + 1]
            if ln == fd.body_start:
                code = code[fd.body_start_col:]
            raw = src.raw_lines[ln - 1]
            allowed = suppressed | allowed_rules_at(src.raw_lines, ln)
            for m in LAMBDA_DECL_RE.finditer(code):
                local_lambdas.add(m.group(1))
            self._check_ops(src, ln, code, allowed, chain)
            self._check_calls(src, ln, code, raw, allowed, chain,
                              local_lambdas, visiting)

    def _check_ops(self, src, ln, code, allowed, chain):
        if "alloc" not in allowed:
            if NEW_EXPR_RE.search(code) or PLACEMENT_NEW_RE.search(code):
                self._emit(src.path, ln, "alloc",
                           "new expression on the hot path", chain)
            if STD_FUNCTION_CTOR_RE.search(code):
                self._emit(src.path, ln, "alloc",
                           "std::function constructed from a callable "
                           "(SBO overflow heap-allocates)", chain)
        if "throw" not in allowed:
            if THROW_RE.search(code):
                self._emit(src.path, ln, "throw",
                           "throw on the hot path; return Status/ErrorOr",
                           chain)
            elif TRY_RE.search(code):
                self._emit(src.path, ln, "throw",
                           "try/catch region on the hot path", chain)
        if "lock" not in allowed:
            if LOCK_METHOD_RE.search(code):
                self._emit(src.path, ln, "lock",
                           "explicit .lock() on the hot path", chain)
            else:
                for ty in LOCK_TYPES:
                    if re.search(rf"\b(?:std::)?{ty}\b(?:<[^>]*>)?\s+\w+\s*[({{]",
                                 code):
                        fn = chain[-1]
                        if fn not in LOCK_WHITELIST_FUNCTIONS:
                            self._emit(
                                src.path, ln, "lock",
                                f"{ty} acquisition on the hot path (only "
                                "the KernelHistory shard insert is "
                                "whitelisted)", chain)
                        break

    def _check_calls(self, src, ln, code, raw, allowed, chain,
                     local_lambdas, visiting):
        for m in CALL_RE.finditer(code):
            full = m.group(1)
            last = full.rsplit("::", 1)[-1]
            if last in KEYWORDS or full in KEYWORDS:
                continue
            # Declaration with constructor-style initializer: the callee
            # is the declared variable's TYPE, not the variable name.
            prefix = code[:m.start(1)]
            is_decl = bool(DECL_BEFORE_CALL_RE.search(prefix)) and not \
                re.search(r"\b(return|case|throw|new|delete|in|and|or|not)\s+$",
                          prefix)
            if is_decl:
                tm = re.search(r"([A-Za-z_][\w:]*)(?:<[^<>]*>)?\s+$", prefix)
                if not tm:
                    continue
                full = tm.group(1)
                last = full.rsplit("::", 1)[-1]
                if last in KEYWORDS or last in PRIMITIVE_NAMES or \
                        last in VALUE_TYPE_SKIP:
                    continue
            if last in PRIMITIVE_NAMES or last in VALUE_TYPE_SKIP:
                continue  # functional cast / non-allocating construction
            if last in CTOR_ALLOC_TYPES:
                # 'std::string()' is empty (no heap); with arguments the
                # construction copies into fresh storage.
                if re.match(r"\s*\)", code[m.end():]):
                    continue
                if "alloc" not in allowed:
                    self._emit(src.path, ln, "alloc",
                               f"'{last}' constructed with arguments on "
                               "the hot path", chain)
                continue
            if last in local_lambdas:
                continue  # lambda body already scanned inline
            if last in ALLOC_CALLS:
                if "alloc" not in allowed:
                    self._emit(src.path, ln, "alloc",
                               f"allocating call '{last}(' on the hot path",
                               chain)
                continue
            if last in IO_CALLS:
                if "io" not in allowed:
                    self._emit(src.path, ln, "io",
                               f"blocking/IO call '{last}(' on the hot path",
                               chain)
                continue
            if last in LOCK_TYPES:
                continue  # handled as an op above
            if last in ALLOWED_EXTERNALS:
                continue
            defs = self.index.get(last)
            if defs:
                for fd in defs:
                    self._walk(fd, allowed, chain + [last], visiting)
                continue
            if last in self.type_names:
                continue  # memberwise construction of a project type
            if last.isupper() or (last.startswith("ECAS_")):
                continue  # project macros: assertion/annotation helpers
            if "extern-call" not in allowed:
                self._emit(src.path, ln, "extern-call",
                           f"call to '{full}(' which is neither defined in "
                           "src/ecas nor whitelisted; annotate, whitelist, "
                           "or suppress with a reason", chain)


# ---------------------------------------------------------------------------
# Clang engine (advisory where libclang is unavailable).
# ---------------------------------------------------------------------------

CLANG_ALLOC_NAMES = ALLOC_CALLS | {"operator new", "operator new[]"}


class ClangEngine:
    """AST-exact engine over compile_commands.json. Import failures are
    reported by availability(); run() assumes import succeeds."""

    @staticmethod
    def availability():
        try:
            import clang.cindex  # noqa: F401
            return None
        except ImportError as e:
            return str(e)

    def __init__(self, root, build_dir):
        import clang.cindex as ci
        self.ci = ci
        self.root = root
        self.build_dir = build_dir
        self.findings = []
        self._seen = set()
        self._raw_cache = {}

    def _line_rules(self, path, line):
        if path not in self._raw_cache:
            try:
                with open(path, encoding="utf-8", errors="replace") as f:
                    self._raw_cache[path] = f.read().splitlines()
            except OSError:
                self._raw_cache[path] = []
        lines = self._raw_cache[path]
        if 1 <= line <= len(lines):
            return allowed_rules_at(lines, line)
        return frozenset()

    def _emit(self, loc, rule, message, chain):
        key = (loc.file.name if loc.file else "?", loc.line, rule, message)
        if key in self._seen:
            return
        self._seen.add(key)
        self.findings.append(Finding(
            loc.file.name if loc.file else "?", loc.line, rule, message,
            list(chain)))

    def run(self):
        ci = self.ci
        db = ci.CompilationDatabase.fromDirectory(self.build_dir)
        index = ci.Index.create()
        roots = []
        defs_by_usr = {}
        tus = []
        for cmd in db.getAllCompileCommands():
            path = os.path.join(cmd.directory, cmd.filename)
            norm = os.path.normpath(path)
            if os.sep + os.path.join("src", "ecas") + os.sep not in norm:
                continue
            args = [a for a in list(cmd.arguments)[1:]
                    if a != cmd.filename and a != "-c" and a != "-o"]
            # Drop the object-file operand the '-o' used to take.
            args = [a for a in args if not a.endswith(".o")]
            try:
                tu = index.parse(norm, args=args)
            except ci.TranslationUnitLoadError:
                continue
            tus.append(tu)
            for cur in tu.cursor.walk_preorder():
                if cur.kind in (ci.CursorKind.FUNCTION_DECL,
                                ci.CursorKind.CXX_METHOD,
                                ci.CursorKind.FUNCTION_TEMPLATE,
                                ci.CursorKind.CONSTRUCTOR):
                    if cur.is_definition():
                        defs_by_usr[cur.get_usr()] = cur
                        if self._is_hot(cur):
                            roots.append(cur)
                    elif self._is_hot(cur):
                        roots.append(cur)  # resolve the body below
        if not roots:
            return None
        hot_usrs = {c.get_usr() for c in roots}
        for usr in sorted(hot_usrs):
            body = defs_by_usr.get(usr)
            if body is not None:
                self._walk(body, defs_by_usr, frozenset(),
                           [body.spelling], set())
        return self.findings

    def _is_hot(self, cursor):
        for child in cursor.get_children():
            if child.kind == self.ci.CursorKind.ANNOTATE_ATTR and \
                    child.spelling == "ecas_hot":
                return True
        return False

    def _walk(self, cursor, defs_by_usr, suppressed, chain, visiting):
        usr = cursor.get_usr()
        key = (usr, suppressed)
        if key in visiting:
            return
        visiting = visiting | {key}
        ci = self.ci
        for node in cursor.walk_preorder():
            loc = node.location
            if not loc.file:
                continue
            allowed = suppressed | self._line_rules(loc.file.name, loc.line)
            k = node.kind
            if k == ci.CursorKind.CXX_NEW_EXPR:
                if "alloc" not in allowed:
                    self._emit(loc, "alloc",
                               "new expression on the hot path", chain)
            elif k == ci.CursorKind.CXX_THROW_EXPR:
                if "throw" not in allowed:
                    self._emit(loc, "throw",
                               "throw on the hot path", chain)
            elif k == ci.CursorKind.CXX_TRY_STMT:
                if "throw" not in allowed:
                    self._emit(loc, "throw",
                               "try/catch region on the hot path", chain)
            elif k == ci.CursorKind.CALL_EXPR:
                self._check_call(node, defs_by_usr, allowed, chain,
                                 visiting)

    def _check_call(self, node, defs_by_usr, allowed, chain, visiting):
        ref = node.referenced
        name = node.spelling or (ref.spelling if ref else "")
        loc = node.location
        if not name:
            return
        if name in CLANG_ALLOC_NAMES:
            if "alloc" not in allowed:
                self._emit(loc, "alloc",
                           f"allocating call '{name}' on the hot path",
                           chain)
            return
        if name in IO_CALLS:
            if "io" not in allowed:
                self._emit(loc, "io",
                           f"blocking/IO call '{name}' on the hot path",
                           chain)
            return
        if name in LOCK_TYPES or name == "lock":
            fn = chain[-1]
            if fn not in LOCK_WHITELIST_FUNCTIONS and "lock" not in allowed:
                self._emit(loc, "lock",
                           f"lock acquisition '{name}' on the hot path",
                           chain)
            return
        if name in ALLOWED_EXTERNALS:
            return
        if ref is None:
            return
        usr = ref.get_usr()
        body = defs_by_usr.get(usr)
        if body is not None:
            self._walk(body, defs_by_usr, allowed, chain + [name], visiting)
            return
        # Defined outside the project: trusted only when annotated hot
        # (visible via its declaration) or whitelisted above.
        if self._is_hot(ref):
            return
        ref_file = ref.location.file.name if ref.location.file else ""
        norm = os.path.normpath(ref_file)
        if os.sep + os.path.join("src", "ecas") + os.sep in norm:
            return  # declared in-project; body in another TU covers it
        if "extern-call" not in allowed:
            self._emit(loc, "extern-call",
                       f"call to external '{name}' with no visible "
                       "definition or annotation", chain)


# ---------------------------------------------------------------------------
# Self-test over the fixture corpus.
# ---------------------------------------------------------------------------

def run_self_test(root):
    fixtures = os.path.join(root, "tools", "hotpath_fixtures")
    if not os.path.isdir(fixtures):
        print("ecas-hotpath: self-test fixtures missing at "
              f"{fixtures}", file=sys.stderr)
        return 2
    engine = TextualEngine(fixtures, ["."])
    findings = engine.run()
    if findings is None:
        print("ecas-hotpath: SELF-TEST FAIL: no ECAS_HOT roots found in "
              "fixtures", file=sys.stderr)
        return 1
    got = sorted((os.path.basename(f.path), f.rule) for f in findings)
    expect_path = os.path.join(fixtures, "expected_findings.json")
    with open(expect_path, encoding="utf-8") as f:
        expected = sorted(tuple(e) for e in json.load(f))
    failures = []
    for e in expected:
        if e not in got:
            failures.append(f"missing expected finding: {e}")
    for g in got:
        if g not in expected:
            failures.append(f"unexpected finding: {g}")
    clean = [f for f in findings
             if os.path.basename(f.path).startswith("clean_")]
    if clean:
        failures.append(f"clean fixture produced {len(clean)} finding(s)")
    if failures:
        for msg in failures:
            print(f"ecas-hotpath: SELF-TEST FAIL: {msg}", file=sys.stderr)
        for f in findings:
            print("  " + f.render(fixtures), file=sys.stderr)
        return 1
    print(f"ecas-hotpath: self-test OK "
          f"({len(expected)} expected findings matched, clean fixture "
          "clean, suppressions honoured)")
    return 0


# ---------------------------------------------------------------------------
# Driver.
# ---------------------------------------------------------------------------

def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None,
                        help="repository root (default: parent of tools/)")
    parser.add_argument("--engine", choices=["auto", "textual", "clang"],
                        default="auto",
                        help="auto prefers clang, falls back to textual "
                             "with a loud note")
    parser.add_argument("-p", "--build-dir", default=None,
                        help="build dir containing compile_commands.json "
                             "(clang engine; default: <root>/build)")
    parser.add_argument("--json", dest="json_out", default=None,
                        help="also write findings as JSON to this path")
    parser.add_argument("--self-test", action="store_true",
                        help="run the fixture corpus and exit")
    parser.add_argument("--list-rules", action="store_true",
                        help="print rule names and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in RULES:
            print(rule)
        return 0

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))

    if args.self_test:
        return run_self_test(root)

    engine_name = args.engine
    if engine_name in ("auto", "clang"):
        missing = ClangEngine.availability()
        if missing:
            msg = ("ecas-hotpath: libclang python bindings unavailable "
                   f"({missing})")
            if engine_name == "clang":
                print(msg + "; cannot run the clang engine",
                      file=sys.stderr)
                print("ecas-hotpath: SKIPPED clang engine — findings NOT "
                      "checked by AST; run the textual engine or install "
                      "python3-clang", file=sys.stderr)
                return 2
            print(msg + "; falling back to the textual engine",
                  file=sys.stderr)
            engine_name = "textual"
        else:
            engine_name = "clang"

    if engine_name == "clang":
        build_dir = args.build_dir or os.path.join(root, "build")
        cc = os.path.join(build_dir, "compile_commands.json")
        if not os.path.isfile(cc):
            print(f"ecas-hotpath: no compile_commands.json under "
                  f"{build_dir} (configure with "
                  "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON)", file=sys.stderr)
            return 2
        engine = ClangEngine(root, build_dir)
        findings = engine.run()
        walked = "AST"
    else:
        engine = TextualEngine(
            root, [os.path.join("src", "ecas", mod) for mod in WALK_MODULES])
        findings = engine.run()
        walked = f"{len(engine.walked)} functions"

    if findings is None:
        print("ecas-hotpath: no ECAS_HOT roots found — is "
              "ecas/support/HotPath.h in place?", file=sys.stderr)
        return 2

    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    for f in findings:
        print(f.render(root))
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as out:
            json.dump({"engine": engine_name,
                       "findings": [f.as_dict(root) for f in findings]},
                      out, indent=2)
            out.write("\n")
    roots = (sorted(engine.roots) if hasattr(engine, "roots") else [])
    print(f"ecas-hotpath: engine={engine_name}, "
          f"{len(roots)} root name(s), {walked} walked, "
          f"{len(findings)} finding(s)")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
