//===-- tools/hotpath_fixtures/clean_fixture.cpp ---------------------------===//
//
// A hot root written to the DESIGN.md §14 discipline: pure arithmetic,
// value types, whitelisted std utilities, and a walked project callee.
// The self-test fails if the analyzer reports anything here — every
// construct below is one the engine must NOT confuse with a violation.
//
//===----------------------------------------------------------------------===//

#include <algorithm>
#include <atomic>
#include <cmath>

#define ECAS_HOT __attribute__((hot))

namespace fixture_clean {

struct RatePoint {
  double Occupancy = 0.0;
  double Rate = 0.0;
};

class Model {
public:
  Model(double Rc, double Rg) : Rc(Rc), Rg(Rg) {}
  double combined(double Alpha) const {
    return Alpha / Rg + (1.0 - Alpha) / Rc;
  }

private:
  double Rc;
  double Rg;
};

inline double polyEval(double X) {
  double Acc = 0.0;
  for (int I = 0; I != 4; ++I)
    Acc = Acc * X + static_cast<double>(I);
  return Acc;
}

ECAS_HOT double hotClean(double Iterations) {
  std::atomic<unsigned> Hits{0};
  Hits.fetch_add(1, std::memory_order_relaxed);
  // Declaration with a constructor-style initializer: the callee is the
  // TYPE, which resolves to the indexed ctor (initializer list and all).
  Model M(4e8, 7e8);
  RatePoint P{0.5, polyEval(Iterations)};
  double Best = std::min(M.combined(0.5), P.Rate);
  // Functional casts and empty value construction never allocate.
  double Scaled = double(Best) * static_cast<double>(Iterations);
  auto Clamp = [&](double V) { return std::clamp(V, 0.0, 1.0); };
  return Clamp(std::sqrt(std::fabs(Scaled)));
}

} // namespace fixture_clean
