//===-- tools/hotpath_fixtures/dirty_fixture.cpp ---------------------------===//
//
// Self-test corpus for tools/ecas_hotpath.py: every rule fires exactly
// where expected_findings.json says it does, and the honoured
// suppression produces NO finding. This file is never compiled; it only
// has to look like the C++ the textual engine parses.
//
//===----------------------------------------------------------------------===//

#include <mutex>
#include <string>
#include <vector>

#define ECAS_HOT __attribute__((hot))

namespace fixture {

struct Sample {
  double A = 0.0;
  double B = 0.0;
};

// Callee reached from the hot root: findings deep in the walk are
// attributed with the root-first chain.
double slowHelper(double X) {
  std::vector<double> Grid;
  Grid.push_back(X); // expected: alloc (growing container)
  return Grid.back();
}

double lockedHelper(double X) {
  static std::mutex M;
  std::lock_guard<std::mutex> Lock(M); // expected: lock
  return X * 2.0;
}

// The one deliberate-allocation regression the CI job pins: an
// ECAS_HOT function that heap-allocates must be caught.
ECAS_HOT double hotAllocates(double Iterations) {
  double *Leak = new double(Iterations); // expected: alloc (new)
  double Out = slowHelper(*Leak);
  Out += lockedHelper(Out);
  if (Iterations < 0.0)
    throw Iterations; // expected: throw
  std::fprintf(stderr, "x"); // expected: io
  return Out + externalOracle(Iterations); // expected: extern-call
}

// Suppressions are honoured: same-line, line-above, and the def-line
// form that covers a whole amortized subsystem.
double amortizedAppend(std::string &Buf, double X) {
  Buf.append("frame"); // ecas-hotpath: allow(alloc)
  // ecas-hotpath: allow(alloc)
  Buf.append("tail");
  return X;
}

// ecas-hotpath: allow(io, lock)
double gatedCommit(double X) {
  static std::mutex M;
  std::lock_guard<std::mutex> Lock(M); // covered by def-line allow
  std::fflush(nullptr); // covered by def-line allow
  return X;
}

ECAS_HOT double hotSuppressed(double Iterations) {
  std::string Buf;
  double Out = amortizedAppend(Buf, Iterations);
  return Out + gatedCommit(Iterations);
}

// A stale suppression: nothing on this line fires the allowed rule, so
// ecas-lint's stale-suppression satellite flags it — but the hotpath
// analyzer itself must simply not crash on it.
ECAS_HOT double hotWithStaleAllow(double X) {
  return X * 0.5; // ecas-hotpath: allow(alloc)
}

} // namespace fixture
