file(REMOVE_RECURSE
  "CMakeFiles/characterize_platform.dir/characterize_platform.cpp.o"
  "CMakeFiles/characterize_platform.dir/characterize_platform.cpp.o.d"
  "characterize_platform"
  "characterize_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/characterize_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
