file(REMOVE_RECURSE
  "CMakeFiles/host_scheduling.dir/host_scheduling.cpp.o"
  "CMakeFiles/host_scheduling.dir/host_scheduling.cpp.o.d"
  "host_scheduling"
  "host_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/host_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
