# Empty compiler generated dependencies file for host_scheduling.
# This may be replaced when dependencies are built.
