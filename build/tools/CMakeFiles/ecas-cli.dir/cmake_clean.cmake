file(REMOVE_RECURSE
  "CMakeFiles/ecas-cli.dir/ecas_cli.cpp.o"
  "CMakeFiles/ecas-cli.dir/ecas_cli.cpp.o.d"
  "ecas-cli"
  "ecas-cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecas-cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
