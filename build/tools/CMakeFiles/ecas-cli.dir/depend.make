# Empty dependencies file for ecas-cli.
# This may be replaced when dependencies are built.
