# Empty dependencies file for fig02_power_timeline.
# This may be replaced when dependencies are built.
