file(REMOVE_RECURSE
  "../bench/fig02_power_timeline"
  "../bench/fig02_power_timeline.pdb"
  "CMakeFiles/fig02_power_timeline.dir/fig02_power_timeline.cpp.o"
  "CMakeFiles/fig02_power_timeline.dir/fig02_power_timeline.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_power_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
