file(REMOVE_RECURSE
  "../bench/abl_profile_size"
  "../bench/abl_profile_size.pdb"
  "CMakeFiles/abl_profile_size.dir/abl_profile_size.cpp.o"
  "CMakeFiles/abl_profile_size.dir/abl_profile_size.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_profile_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
