# Empty compiler generated dependencies file for abl_profile_size.
# This may be replaced when dependencies are built.
