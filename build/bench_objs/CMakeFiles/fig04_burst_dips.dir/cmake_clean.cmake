file(REMOVE_RECURSE
  "../bench/fig04_burst_dips"
  "../bench/fig04_burst_dips.pdb"
  "CMakeFiles/fig04_burst_dips.dir/fig04_burst_dips.cpp.o"
  "CMakeFiles/fig04_burst_dips.dir/fig04_burst_dips.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_burst_dips.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
