# Empty compiler generated dependencies file for fig04_burst_dips.
# This may be replaced when dependencies are built.
