# Empty dependencies file for abl_sample_weighting.
# This may be replaced when dependencies are built.
