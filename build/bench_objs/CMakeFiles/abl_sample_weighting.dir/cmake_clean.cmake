file(REMOVE_RECURSE
  "../bench/abl_sample_weighting"
  "../bench/abl_sample_weighting.pdb"
  "CMakeFiles/abl_sample_weighting.dir/abl_sample_weighting.cpp.o"
  "CMakeFiles/abl_sample_weighting.dir/abl_sample_weighting.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_sample_weighting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
