file(REMOVE_RECURSE
  "../bench/fig11_tablet_edp"
  "../bench/fig11_tablet_edp.pdb"
  "CMakeFiles/fig11_tablet_edp.dir/fig11_tablet_edp.cpp.o"
  "CMakeFiles/fig11_tablet_edp.dir/fig11_tablet_edp.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_tablet_edp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
