# Empty compiler generated dependencies file for fig11_tablet_edp.
# This may be replaced when dependencies are built.
