# Empty dependencies file for fig12_tablet_energy.
# This may be replaced when dependencies are built.
