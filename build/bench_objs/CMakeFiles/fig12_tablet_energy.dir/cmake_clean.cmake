file(REMOVE_RECURSE
  "../bench/fig12_tablet_energy"
  "../bench/fig12_tablet_energy.pdb"
  "CMakeFiles/fig12_tablet_energy.dir/fig12_tablet_energy.cpp.o"
  "CMakeFiles/fig12_tablet_energy.dir/fig12_tablet_energy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_tablet_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
