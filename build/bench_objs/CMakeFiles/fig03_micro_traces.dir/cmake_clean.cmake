file(REMOVE_RECURSE
  "../bench/fig03_micro_traces"
  "../bench/fig03_micro_traces.pdb"
  "CMakeFiles/fig03_micro_traces.dir/fig03_micro_traces.cpp.o"
  "CMakeFiles/fig03_micro_traces.dir/fig03_micro_traces.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_micro_traces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
