# Empty dependencies file for fig03_micro_traces.
# This may be replaced when dependencies are built.
