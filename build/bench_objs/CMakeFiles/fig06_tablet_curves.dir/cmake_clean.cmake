file(REMOVE_RECURSE
  "../bench/fig06_tablet_curves"
  "../bench/fig06_tablet_curves.pdb"
  "CMakeFiles/fig06_tablet_curves.dir/fig06_tablet_curves.cpp.o"
  "CMakeFiles/fig06_tablet_curves.dir/fig06_tablet_curves.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_tablet_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
