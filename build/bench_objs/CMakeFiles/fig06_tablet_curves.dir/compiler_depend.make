# Empty compiler generated dependencies file for fig06_tablet_curves.
# This may be replaced when dependencies are built.
