file(REMOVE_RECURSE
  "../bench/fig05_desktop_curves"
  "../bench/fig05_desktop_curves.pdb"
  "CMakeFiles/fig05_desktop_curves.dir/fig05_desktop_curves.cpp.o"
  "CMakeFiles/fig05_desktop_curves.dir/fig05_desktop_curves.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_desktop_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
