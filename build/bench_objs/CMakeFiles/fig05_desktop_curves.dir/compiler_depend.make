# Empty compiler generated dependencies file for fig05_desktop_curves.
# This may be replaced when dependencies are built.
