# Empty dependencies file for fig01_cc_sweep.
# This may be replaced when dependencies are built.
