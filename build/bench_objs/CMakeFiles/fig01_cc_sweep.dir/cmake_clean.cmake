file(REMOVE_RECURSE
  "../bench/fig01_cc_sweep"
  "../bench/fig01_cc_sweep.pdb"
  "CMakeFiles/fig01_cc_sweep.dir/fig01_cc_sweep.cpp.o"
  "CMakeFiles/fig01_cc_sweep.dir/fig01_cc_sweep.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_cc_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
