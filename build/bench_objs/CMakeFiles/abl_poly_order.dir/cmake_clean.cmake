file(REMOVE_RECURSE
  "../bench/abl_poly_order"
  "../bench/abl_poly_order.pdb"
  "CMakeFiles/abl_poly_order.dir/abl_poly_order.cpp.o"
  "CMakeFiles/abl_poly_order.dir/abl_poly_order.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_poly_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
