# Empty compiler generated dependencies file for abl_poly_order.
# This may be replaced when dependencies are built.
