# Empty compiler generated dependencies file for ecas_bench_common.
# This may be replaced when dependencies are built.
