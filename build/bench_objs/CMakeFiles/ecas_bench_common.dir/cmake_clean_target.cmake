file(REMOVE_RECURSE
  "libecas_bench_common.a"
)
