file(REMOVE_RECURSE
  "CMakeFiles/ecas_bench_common.dir/BenchCommon.cpp.o"
  "CMakeFiles/ecas_bench_common.dir/BenchCommon.cpp.o.d"
  "libecas_bench_common.a"
  "libecas_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecas_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
