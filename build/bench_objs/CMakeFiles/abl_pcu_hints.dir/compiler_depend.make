# Empty compiler generated dependencies file for abl_pcu_hints.
# This may be replaced when dependencies are built.
