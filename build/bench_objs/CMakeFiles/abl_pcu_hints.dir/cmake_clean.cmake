file(REMOVE_RECURSE
  "../bench/abl_pcu_hints"
  "../bench/abl_pcu_hints.pdb"
  "CMakeFiles/abl_pcu_hints.dir/abl_pcu_hints.cpp.o"
  "CMakeFiles/abl_pcu_hints.dir/abl_pcu_hints.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_pcu_hints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
