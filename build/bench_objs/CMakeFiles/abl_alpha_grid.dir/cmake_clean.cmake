file(REMOVE_RECURSE
  "../bench/abl_alpha_grid"
  "../bench/abl_alpha_grid.pdb"
  "CMakeFiles/abl_alpha_grid.dir/abl_alpha_grid.cpp.o"
  "CMakeFiles/abl_alpha_grid.dir/abl_alpha_grid.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_alpha_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
