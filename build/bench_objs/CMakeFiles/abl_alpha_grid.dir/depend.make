# Empty dependencies file for abl_alpha_grid.
# This may be replaced when dependencies are built.
