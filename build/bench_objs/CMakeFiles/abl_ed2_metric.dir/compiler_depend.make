# Empty compiler generated dependencies file for abl_ed2_metric.
# This may be replaced when dependencies are built.
