file(REMOVE_RECURSE
  "../bench/abl_ed2_metric"
  "../bench/abl_ed2_metric.pdb"
  "CMakeFiles/abl_ed2_metric.dir/abl_ed2_metric.cpp.o"
  "CMakeFiles/abl_ed2_metric.dir/abl_ed2_metric.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_ed2_metric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
