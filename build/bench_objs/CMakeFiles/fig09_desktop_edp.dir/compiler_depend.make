# Empty compiler generated dependencies file for fig09_desktop_edp.
# This may be replaced when dependencies are built.
