file(REMOVE_RECURSE
  "../bench/fig09_desktop_edp"
  "../bench/fig09_desktop_edp.pdb"
  "CMakeFiles/fig09_desktop_edp.dir/fig09_desktop_edp.cpp.o"
  "CMakeFiles/fig09_desktop_edp.dir/fig09_desktop_edp.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_desktop_edp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
