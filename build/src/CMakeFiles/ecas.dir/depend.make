# Empty dependencies file for ecas.
# This may be replaced when dependencies are built.
