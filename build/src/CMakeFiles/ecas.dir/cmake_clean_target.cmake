file(REMOVE_RECURSE
  "libecas.a"
)
