
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ecas/cl/MiniCl.cpp" "src/CMakeFiles/ecas.dir/ecas/cl/MiniCl.cpp.o" "gcc" "src/CMakeFiles/ecas.dir/ecas/cl/MiniCl.cpp.o.d"
  "/root/repo/src/ecas/core/AlphaSearch.cpp" "src/CMakeFiles/ecas.dir/ecas/core/AlphaSearch.cpp.o" "gcc" "src/CMakeFiles/ecas.dir/ecas/core/AlphaSearch.cpp.o.d"
  "/root/repo/src/ecas/core/EasScheduler.cpp" "src/CMakeFiles/ecas.dir/ecas/core/EasScheduler.cpp.o" "gcc" "src/CMakeFiles/ecas.dir/ecas/core/EasScheduler.cpp.o.d"
  "/root/repo/src/ecas/core/ExecutionSession.cpp" "src/CMakeFiles/ecas.dir/ecas/core/ExecutionSession.cpp.o" "gcc" "src/CMakeFiles/ecas.dir/ecas/core/ExecutionSession.cpp.o.d"
  "/root/repo/src/ecas/core/KernelHistory.cpp" "src/CMakeFiles/ecas.dir/ecas/core/KernelHistory.cpp.o" "gcc" "src/CMakeFiles/ecas.dir/ecas/core/KernelHistory.cpp.o.d"
  "/root/repo/src/ecas/core/Metric.cpp" "src/CMakeFiles/ecas.dir/ecas/core/Metric.cpp.o" "gcc" "src/CMakeFiles/ecas.dir/ecas/core/Metric.cpp.o.d"
  "/root/repo/src/ecas/core/Schedulers.cpp" "src/CMakeFiles/ecas.dir/ecas/core/Schedulers.cpp.o" "gcc" "src/CMakeFiles/ecas.dir/ecas/core/Schedulers.cpp.o.d"
  "/root/repo/src/ecas/core/TimeModel.cpp" "src/CMakeFiles/ecas.dir/ecas/core/TimeModel.cpp.o" "gcc" "src/CMakeFiles/ecas.dir/ecas/core/TimeModel.cpp.o.d"
  "/root/repo/src/ecas/device/Device.cpp" "src/CMakeFiles/ecas.dir/ecas/device/Device.cpp.o" "gcc" "src/CMakeFiles/ecas.dir/ecas/device/Device.cpp.o.d"
  "/root/repo/src/ecas/device/KernelDesc.cpp" "src/CMakeFiles/ecas.dir/ecas/device/KernelDesc.cpp.o" "gcc" "src/CMakeFiles/ecas.dir/ecas/device/KernelDesc.cpp.o.d"
  "/root/repo/src/ecas/device/SimCpuDevice.cpp" "src/CMakeFiles/ecas.dir/ecas/device/SimCpuDevice.cpp.o" "gcc" "src/CMakeFiles/ecas.dir/ecas/device/SimCpuDevice.cpp.o.d"
  "/root/repo/src/ecas/device/SimGpuDevice.cpp" "src/CMakeFiles/ecas.dir/ecas/device/SimGpuDevice.cpp.o" "gcc" "src/CMakeFiles/ecas.dir/ecas/device/SimGpuDevice.cpp.o.d"
  "/root/repo/src/ecas/hw/PlatformSpec.cpp" "src/CMakeFiles/ecas.dir/ecas/hw/PlatformSpec.cpp.o" "gcc" "src/CMakeFiles/ecas.dir/ecas/hw/PlatformSpec.cpp.o.d"
  "/root/repo/src/ecas/hw/Presets.cpp" "src/CMakeFiles/ecas.dir/ecas/hw/Presets.cpp.o" "gcc" "src/CMakeFiles/ecas.dir/ecas/hw/Presets.cpp.o.d"
  "/root/repo/src/ecas/math/Matrix.cpp" "src/CMakeFiles/ecas.dir/ecas/math/Matrix.cpp.o" "gcc" "src/CMakeFiles/ecas.dir/ecas/math/Matrix.cpp.o.d"
  "/root/repo/src/ecas/math/Minimize.cpp" "src/CMakeFiles/ecas.dir/ecas/math/Minimize.cpp.o" "gcc" "src/CMakeFiles/ecas.dir/ecas/math/Minimize.cpp.o.d"
  "/root/repo/src/ecas/math/PolyFit.cpp" "src/CMakeFiles/ecas.dir/ecas/math/PolyFit.cpp.o" "gcc" "src/CMakeFiles/ecas.dir/ecas/math/PolyFit.cpp.o.d"
  "/root/repo/src/ecas/math/Polynomial.cpp" "src/CMakeFiles/ecas.dir/ecas/math/Polynomial.cpp.o" "gcc" "src/CMakeFiles/ecas.dir/ecas/math/Polynomial.cpp.o.d"
  "/root/repo/src/ecas/power/Characterizer.cpp" "src/CMakeFiles/ecas.dir/ecas/power/Characterizer.cpp.o" "gcc" "src/CMakeFiles/ecas.dir/ecas/power/Characterizer.cpp.o.d"
  "/root/repo/src/ecas/power/MicroBenchmarks.cpp" "src/CMakeFiles/ecas.dir/ecas/power/MicroBenchmarks.cpp.o" "gcc" "src/CMakeFiles/ecas.dir/ecas/power/MicroBenchmarks.cpp.o.d"
  "/root/repo/src/ecas/power/PowerCurve.cpp" "src/CMakeFiles/ecas.dir/ecas/power/PowerCurve.cpp.o" "gcc" "src/CMakeFiles/ecas.dir/ecas/power/PowerCurve.cpp.o.d"
  "/root/repo/src/ecas/profile/OnlineProfiler.cpp" "src/CMakeFiles/ecas.dir/ecas/profile/OnlineProfiler.cpp.o" "gcc" "src/CMakeFiles/ecas.dir/ecas/profile/OnlineProfiler.cpp.o.d"
  "/root/repo/src/ecas/profile/WorkloadClass.cpp" "src/CMakeFiles/ecas.dir/ecas/profile/WorkloadClass.cpp.o" "gcc" "src/CMakeFiles/ecas.dir/ecas/profile/WorkloadClass.cpp.o.d"
  "/root/repo/src/ecas/runtime/ChaseLevDeque.cpp" "src/CMakeFiles/ecas.dir/ecas/runtime/ChaseLevDeque.cpp.o" "gcc" "src/CMakeFiles/ecas.dir/ecas/runtime/ChaseLevDeque.cpp.o.d"
  "/root/repo/src/ecas/runtime/ParallelFor.cpp" "src/CMakeFiles/ecas.dir/ecas/runtime/ParallelFor.cpp.o" "gcc" "src/CMakeFiles/ecas.dir/ecas/runtime/ParallelFor.cpp.o.d"
  "/root/repo/src/ecas/runtime/ThreadPool.cpp" "src/CMakeFiles/ecas.dir/ecas/runtime/ThreadPool.cpp.o" "gcc" "src/CMakeFiles/ecas.dir/ecas/runtime/ThreadPool.cpp.o.d"
  "/root/repo/src/ecas/sim/EnergyMeter.cpp" "src/CMakeFiles/ecas.dir/ecas/sim/EnergyMeter.cpp.o" "gcc" "src/CMakeFiles/ecas.dir/ecas/sim/EnergyMeter.cpp.o.d"
  "/root/repo/src/ecas/sim/Pcu.cpp" "src/CMakeFiles/ecas.dir/ecas/sim/Pcu.cpp.o" "gcc" "src/CMakeFiles/ecas.dir/ecas/sim/Pcu.cpp.o.d"
  "/root/repo/src/ecas/sim/PowerModel.cpp" "src/CMakeFiles/ecas.dir/ecas/sim/PowerModel.cpp.o" "gcc" "src/CMakeFiles/ecas.dir/ecas/sim/PowerModel.cpp.o.d"
  "/root/repo/src/ecas/sim/PowerTrace.cpp" "src/CMakeFiles/ecas.dir/ecas/sim/PowerTrace.cpp.o" "gcc" "src/CMakeFiles/ecas.dir/ecas/sim/PowerTrace.cpp.o.d"
  "/root/repo/src/ecas/sim/SimProcessor.cpp" "src/CMakeFiles/ecas.dir/ecas/sim/SimProcessor.cpp.o" "gcc" "src/CMakeFiles/ecas.dir/ecas/sim/SimProcessor.cpp.o.d"
  "/root/repo/src/ecas/support/Assert.cpp" "src/CMakeFiles/ecas.dir/ecas/support/Assert.cpp.o" "gcc" "src/CMakeFiles/ecas.dir/ecas/support/Assert.cpp.o.d"
  "/root/repo/src/ecas/support/Csv.cpp" "src/CMakeFiles/ecas.dir/ecas/support/Csv.cpp.o" "gcc" "src/CMakeFiles/ecas.dir/ecas/support/Csv.cpp.o.d"
  "/root/repo/src/ecas/support/Flags.cpp" "src/CMakeFiles/ecas.dir/ecas/support/Flags.cpp.o" "gcc" "src/CMakeFiles/ecas.dir/ecas/support/Flags.cpp.o.d"
  "/root/repo/src/ecas/support/Format.cpp" "src/CMakeFiles/ecas.dir/ecas/support/Format.cpp.o" "gcc" "src/CMakeFiles/ecas.dir/ecas/support/Format.cpp.o.d"
  "/root/repo/src/ecas/support/Stats.cpp" "src/CMakeFiles/ecas.dir/ecas/support/Stats.cpp.o" "gcc" "src/CMakeFiles/ecas.dir/ecas/support/Stats.cpp.o.d"
  "/root/repo/src/ecas/workloads/BarnesHut.cpp" "src/CMakeFiles/ecas.dir/ecas/workloads/BarnesHut.cpp.o" "gcc" "src/CMakeFiles/ecas.dir/ecas/workloads/BarnesHut.cpp.o.d"
  "/root/repo/src/ecas/workloads/BlackScholes.cpp" "src/CMakeFiles/ecas.dir/ecas/workloads/BlackScholes.cpp.o" "gcc" "src/CMakeFiles/ecas.dir/ecas/workloads/BlackScholes.cpp.o.d"
  "/root/repo/src/ecas/workloads/FaceDetect.cpp" "src/CMakeFiles/ecas.dir/ecas/workloads/FaceDetect.cpp.o" "gcc" "src/CMakeFiles/ecas.dir/ecas/workloads/FaceDetect.cpp.o.d"
  "/root/repo/src/ecas/workloads/Generators.cpp" "src/CMakeFiles/ecas.dir/ecas/workloads/Generators.cpp.o" "gcc" "src/CMakeFiles/ecas.dir/ecas/workloads/Generators.cpp.o.d"
  "/root/repo/src/ecas/workloads/GraphWorkloads.cpp" "src/CMakeFiles/ecas.dir/ecas/workloads/GraphWorkloads.cpp.o" "gcc" "src/CMakeFiles/ecas.dir/ecas/workloads/GraphWorkloads.cpp.o.d"
  "/root/repo/src/ecas/workloads/Mandelbrot.cpp" "src/CMakeFiles/ecas.dir/ecas/workloads/Mandelbrot.cpp.o" "gcc" "src/CMakeFiles/ecas.dir/ecas/workloads/Mandelbrot.cpp.o.d"
  "/root/repo/src/ecas/workloads/MatrixMultiply.cpp" "src/CMakeFiles/ecas.dir/ecas/workloads/MatrixMultiply.cpp.o" "gcc" "src/CMakeFiles/ecas.dir/ecas/workloads/MatrixMultiply.cpp.o.d"
  "/root/repo/src/ecas/workloads/NBody.cpp" "src/CMakeFiles/ecas.dir/ecas/workloads/NBody.cpp.o" "gcc" "src/CMakeFiles/ecas.dir/ecas/workloads/NBody.cpp.o.d"
  "/root/repo/src/ecas/workloads/RayTracer.cpp" "src/CMakeFiles/ecas.dir/ecas/workloads/RayTracer.cpp.o" "gcc" "src/CMakeFiles/ecas.dir/ecas/workloads/RayTracer.cpp.o.d"
  "/root/repo/src/ecas/workloads/Registry.cpp" "src/CMakeFiles/ecas.dir/ecas/workloads/Registry.cpp.o" "gcc" "src/CMakeFiles/ecas.dir/ecas/workloads/Registry.cpp.o.d"
  "/root/repo/src/ecas/workloads/Seismic.cpp" "src/CMakeFiles/ecas.dir/ecas/workloads/Seismic.cpp.o" "gcc" "src/CMakeFiles/ecas.dir/ecas/workloads/Seismic.cpp.o.d"
  "/root/repo/src/ecas/workloads/SkipList.cpp" "src/CMakeFiles/ecas.dir/ecas/workloads/SkipList.cpp.o" "gcc" "src/CMakeFiles/ecas.dir/ecas/workloads/SkipList.cpp.o.d"
  "/root/repo/src/ecas/workloads/Workload.cpp" "src/CMakeFiles/ecas.dir/ecas/workloads/Workload.cpp.o" "gcc" "src/CMakeFiles/ecas.dir/ecas/workloads/Workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
