file(REMOVE_RECURSE
  "CMakeFiles/minicl_test.dir/MiniClTest.cpp.o"
  "CMakeFiles/minicl_test.dir/MiniClTest.cpp.o.d"
  "minicl_test"
  "minicl_test.pdb"
  "minicl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minicl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
