# Empty compiler generated dependencies file for minicl_test.
# This may be replaced when dependencies are built.
