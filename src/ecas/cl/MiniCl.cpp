//===-- ecas/cl/MiniCl.cpp - OpenCL-style host execution layer ------------===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ecas/cl/MiniCl.h"

#include "ecas/device/KernelDesc.h"
#include "ecas/support/Assert.h"
#include "ecas/support/Format.h"

#include <chrono>
#include <limits>

using namespace ecas;
using namespace ecas::cl;

const char *ecas::cl::statusName(Status S) {
  switch (S) {
  case Status::Success:
    return "success";
  case Status::InvalidKernel:
    return "invalid kernel";
  case Status::InvalidRange:
    return "invalid range";
  case Status::DeviceUnavailable:
    return "device unavailable";
  case Status::Cancelled:
    return "cancelled";
  }
  ECAS_UNREACHABLE("unknown status");
}

static double hostSeconds() {
  using Clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(Clock::now().time_since_epoch())
      .count();
}

MiniKernel::MiniKernel(std::string NameIn, RangeBody BodyIn)
    : Name(std::move(NameIn)), Body(std::move(BodyIn)),
      Id(hashKernelName(Name)) {}

//===----------------------------------------------------------------------===//
// MiniEvent
//===----------------------------------------------------------------------===//

struct MiniEvent::State {
  /// Leaf lock of the MiniCl hierarchy: no other lock is acquired while
  /// an event's mutex is held.
  mutable AnnotatedMutex Mutex{"MiniCl.Event"};
  mutable std::condition_variable Done;
  CommandState Stage ECAS_GUARDED_BY(Mutex) = CommandState::Queued;
  Status Result ECAS_GUARDED_BY(Mutex) = Status::Success;
  double QueuedAt ECAS_GUARDED_BY(Mutex) = 0.0;
  double SubmitAt ECAS_GUARDED_BY(Mutex) = 0.0;
  double StartAt ECAS_GUARDED_BY(Mutex) = 0.0;
  double EndAt ECAS_GUARDED_BY(Mutex) = 0.0;

  void advance(CommandState Next, double Timestamp) {
    LockGuard Lock(Mutex);
    Stage = Next;
    switch (Next) {
    case CommandState::Queued:
      QueuedAt = Timestamp;
      break;
    case CommandState::Submitted:
      SubmitAt = Timestamp;
      break;
    case CommandState::Running:
      StartAt = Timestamp;
      break;
    case CommandState::Complete:
      EndAt = Timestamp;
      break;
    }
    if (Next == CommandState::Complete)
      Done.notify_all();
  }

  /// Records a failure verdict; kept separate from advance() so no
  /// caller ever touches Result outside the event lock.
  void fail(Status Verdict) {
    LockGuard Lock(Mutex);
    Result = Verdict;
  }
};

void MiniEvent::wait() const {
  ECAS_CHECK(Shared != nullptr, "waiting on a null event");
  // Explicit wait loops keep the guarded reads inside the scope that
  // visibly holds the capability.
  UniqueLock Lock(Shared->Mutex);
  while (Shared->Stage != CommandState::Complete)
    Shared->Done.wait(Lock.native());
}

cl::Status MiniEvent::waitStatus() const {
  ECAS_CHECK(Shared != nullptr, "waiting on a null event");
  UniqueLock Lock(Shared->Mutex);
  while (Shared->Stage != CommandState::Complete)
    Shared->Done.wait(Lock.native());
  return Shared->Result;
}

cl::Status MiniEvent::waitStatus(const CancellationToken &Cancel,
                             double PollSec) const {
  ECAS_CHECK(Shared != nullptr, "waiting on a null event");
  if (PollSec <= 0.0)
    PollSec = 1e-3;
  UniqueLock Lock(Shared->Mutex);
  while (Shared->Stage != CommandState::Complete) {
    if (Cancel.shouldStop(hostSeconds()))
      return Status::Cancelled;
    Shared->Done.wait_for(Lock.native(),
                          std::chrono::duration<double>(PollSec));
  }
  return Shared->Result;
}

CommandState MiniEvent::state() const {
  ECAS_CHECK(Shared != nullptr, "querying a null event");
  LockGuard Lock(Shared->Mutex);
  return Shared->Stage;
}

cl::Status MiniEvent::status() const {
  ECAS_CHECK(Shared != nullptr, "querying a null event");
  LockGuard Lock(Shared->Mutex);
  return Shared->Result;
}

// The timestamp accessors take the event lock: annotating the fields
// surfaced that these reads were bare, which is a data race when a
// profiler polls an event the queue worker is still advancing.
double MiniEvent::queuedSeconds() const {
  LockGuard Lock(Shared->Mutex);
  return Shared->QueuedAt;
}
double MiniEvent::submitSeconds() const {
  LockGuard Lock(Shared->Mutex);
  return Shared->SubmitAt;
}
double MiniEvent::startSeconds() const {
  LockGuard Lock(Shared->Mutex);
  return Shared->StartAt;
}
double MiniEvent::endSeconds() const {
  LockGuard Lock(Shared->Mutex);
  return Shared->EndAt;
}

double MiniEvent::executionSeconds() const {
  LockGuard Lock(Shared->Mutex);
  if (Shared->Stage != CommandState::Complete)
    return 0.0;
  return Shared->EndAt - Shared->StartAt;
}

double MiniEvent::overheadSeconds() const {
  LockGuard Lock(Shared->Mutex);
  if (Shared->Stage != CommandState::Complete)
    return 0.0;
  return Shared->StartAt - Shared->QueuedAt;
}

//===----------------------------------------------------------------------===//
// CommandQueue
//===----------------------------------------------------------------------===//

struct CommandQueue::Command {
  RangeBody Body;
  uint64_t Begin = 0;
  uint64_t End = 0;
  /// QUEUED timestamp, duplicated from the event so the worker can
  /// publish the lifecycle spans without re-taking the event lock.
  double QueuedAt = 0.0;
  std::shared_ptr<MiniEvent::State> Event;
};

CommandQueue::CommandQueue(
    std::string DeviceNameIn,
    std::function<void(const RangeBody &, uint64_t, uint64_t)> DispatchIn,
    double DispatchLatencySecIn)
    : DeviceName(std::move(DeviceNameIn)), Dispatch(std::move(DispatchIn)),
      DispatchLatencySec(DispatchLatencySecIn) {
  ECAS_CHECK(static_cast<bool>(Dispatch), "queue requires a dispatcher");
  Worker = std::thread([this] { workerLoop(); });
}

CommandQueue::~CommandQueue() {
  {
    LockGuard Lock(Mutex);
    ShuttingDown = true;
  }
  WorkAvailable.notify_all();
  if (Worker.joinable())
    Worker.join();
}

MiniEvent CommandQueue::enqueue(const MiniKernel &Kernel, uint64_t Begin,
                                uint64_t End) {
  MiniEvent Event;
  Event.Shared = std::make_shared<MiniEvent::State>();
  double Now = hostSeconds();
  {
    // The event is not yet visible to any other thread, but the guard
    // keeps every access to guarded state uniform.
    LockGuard Lock(Event.Shared->Mutex);
    Event.Shared->QueuedAt = Now;
  }

  // Immediate-error events complete synchronously, like clEnqueue*
  // returning an error code.
  if (!Kernel.valid()) {
    Event.Shared->fail(Status::InvalidKernel);
    Event.Shared->advance(CommandState::Complete, Now);
    return Event;
  }
  if (End <= Begin) {
    Event.Shared->fail(Status::InvalidRange);
    Event.Shared->advance(CommandState::Complete, Now);
    return Event;
  }

  auto Cmd = std::make_unique<Command>();
  Cmd->Body = Kernel.body();
  Cmd->Begin = Begin;
  Cmd->End = End;
  Cmd->QueuedAt = Now;
  Cmd->Event = Event.Shared;
  {
    LockGuard Lock(Mutex);
    if (ShuttingDown) {
      Event.Shared->fail(Status::DeviceUnavailable);
      Event.Shared->advance(CommandState::Complete, hostSeconds());
      return Event;
    }
    Pending.push_back(std::move(Cmd));
  }
  WorkAvailable.notify_one();
  return Event;
}

void CommandQueue::finish() {
  UniqueLock Lock(Mutex);
  while (!(Pending.empty() && InFlight == 0))
    QueueDrained.wait(Lock.native());
}

uint64_t CommandQueue::commandsCompleted() const {
  LockGuard Lock(Mutex);
  return Completed;
}

void CommandQueue::setFaultHook(std::function<Status()> Hook) {
  LockGuard Lock(Mutex);
  FaultHook = std::move(Hook);
}

uint64_t CommandQueue::commandsFailed() const {
  LockGuard Lock(Mutex);
  return Failed;
}

uint64_t CommandQueue::cancelPending() {
  std::deque<std::unique_ptr<Command>> Flushed;
  {
    LockGuard Lock(Mutex);
    Flushed.swap(Pending);
    Failed += Flushed.size();
    if (InFlight == 0)
      QueueDrained.notify_all();
  }
  // Complete the flushed events outside the queue lock: waiters run
  // arbitrary code when released.
  for (auto &Cmd : Flushed) {
    Cmd->Event->fail(Status::Cancelled);
    Cmd->Event->advance(CommandState::Complete, hostSeconds());
  }
  return Flushed.size();
}

void CommandQueue::workerLoop() {
  while (true) {
    std::unique_ptr<Command> Cmd;
    std::function<Status()> Hook;
    {
      UniqueLock Lock(Mutex);
      while (!ShuttingDown && Pending.empty())
        WorkAvailable.wait(Lock.native());
      if (Pending.empty()) {
        // Shutting down with an empty queue.
        QueueDrained.notify_all();
        return;
      }
      Cmd = std::move(Pending.front());
      Pending.pop_front();
      ++InFlight;
      Hook = FaultHook;
    }

    double SubmitAt = hostSeconds();
    Cmd->Event->advance(CommandState::Submitted, SubmitAt);
    Status Verdict = Hook ? Hook() : Status::Success;
    double StartAt = 0.0;
    if (Verdict == Status::Success) {
      if (DispatchLatencySec > 0.0)
        std::this_thread::sleep_for(
            std::chrono::duration<double>(DispatchLatencySec));
      StartAt = hostSeconds();
      Cmd->Event->advance(CommandState::Running, StartAt);
      Dispatch(Cmd->Body, Cmd->Begin, Cmd->End);
    } else {
      // The device refused the command: complete the event with the
      // error so waiters observe the failure instead of deadlocking.
      Cmd->Event->fail(Verdict);
    }
    // Settle the counters before publishing completion: a waiter released
    // by the Complete transition must already see this command counted.
    {
      LockGuard Lock(Mutex);
      if (Verdict == Status::Success)
        ++Completed;
      else
        ++Failed;
    }
    double EndAt = hostSeconds();
    Cmd->Event->advance(CommandState::Complete, EndAt);

    // Publish the settled lifecycle outside every lock (the recorder's
    // registration mutex is a leaf and must stay one).
    if (obs::TraceRecorder *T = Trace.load(std::memory_order_acquire)) {
      std::string Range = formatString(
          "%s [%llu,%llu)", DeviceName.c_str(),
          static_cast<unsigned long long>(Cmd->Begin),
          static_cast<unsigned long long>(Cmd->End));
      if (Verdict == Status::Success) {
        T->completeSpan("minicl", "queue-wait", Cmd->QueuedAt,
                        StartAt - Cmd->QueuedAt,
                        std::numeric_limits<double>::quiet_NaN(), Range);
        T->completeSpan("minicl", "exec", StartAt, EndAt - StartAt,
                        std::numeric_limits<double>::quiet_NaN(),
                        std::move(Range));
        T->count("minicl.commands");
      } else {
        T->instant("minicl", "launch-failed",
                   std::numeric_limits<double>::quiet_NaN(),
                   Range + " " + statusName(Verdict));
        T->count("minicl.launch_failures");
      }
    }

    {
      LockGuard Lock(Mutex);
      --InFlight;
      if (Pending.empty() && InFlight == 0)
        QueueDrained.notify_all();
    }
  }
}

//===----------------------------------------------------------------------===//
// MiniContext
//===----------------------------------------------------------------------===//

MiniContext::MiniContext(unsigned CpuThreads, GpuExecutor GpuHook,
                         double GpuDispatchLatencySec)
    : Pool(CpuThreads) {
  Cpu = std::make_unique<CommandQueue>(
      "cpu",
      [this](const RangeBody &Body, uint64_t Begin, uint64_t End) {
        Pool.parallelFor(Begin, End, /*Grain=*/256, Body);
      },
      /*DispatchLatencySec=*/0.0);
  if (!GpuHook) {
    // Thread-backed stand-in: the queue's worker thread runs the body
    // directly, standing in for a driver dispatch.
    GpuHook = [](uint64_t, uint64_t) {};
    Gpu = std::make_unique<CommandQueue>(
        "gpu",
        [](const RangeBody &Body, uint64_t Begin, uint64_t End) {
          Body(Begin, End);
        },
        GpuDispatchLatencySec);
  } else {
    Gpu = std::make_unique<CommandQueue>(
        "gpu",
        [Hook = std::move(GpuHook)](const RangeBody &Body, uint64_t Begin,
                                    uint64_t End) { Hook(Begin, End); },
        GpuDispatchLatencySec);
  }
}

std::pair<MiniEvent, MiniEvent>
MiniContext::runPartitioned(const MiniKernel &Kernel, uint64_t N,
                            double Alpha, const CancellationToken *Cancel) {
  ECAS_CHECK(Alpha >= 0.0 && Alpha <= 1.0, "alpha must be in [0,1]");
  uint64_t GpuIters = static_cast<uint64_t>(Alpha * static_cast<double>(N));
  uint64_t CpuEnd = N - GpuIters;
  MiniEvent GpuEvent = Gpu->enqueue(Kernel, CpuEnd, N);
  MiniEvent CpuEvent = Cpu->enqueue(Kernel, 0, CpuEnd);
  if (CpuEnd > 0) {
    if (Cancel)
      CpuEvent.waitStatus(*Cancel);
    else
      CpuEvent.wait();
  }
  if (GpuIters > 0) {
    Status GpuStatus =
        Cancel ? GpuEvent.waitStatus(*Cancel) : GpuEvent.waitStatus();
    if (GpuStatus == Status::Cancelled)
      // The waiter gave up; do not pile a CPU fallback onto a run the
      // caller is abandoning.
      return {CpuEvent, GpuEvent};
    if (GpuStatus != Status::Success) {
      // The GPU refused its share; rerun it on the CPU so the partition
      // still covers all of [0, N).
      GpuFallbacks.fetch_add(1, std::memory_order_relaxed);
      MiniEvent Fallback = Cpu->enqueue(Kernel, CpuEnd, N);
      if (Cancel)
        Fallback.waitStatus(*Cancel);
      else
        Fallback.wait();
      return {CpuEvent, Fallback};
    }
  }
  return {CpuEvent, GpuEvent};
}
