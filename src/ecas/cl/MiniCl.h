//===-- ecas/cl/MiniCl.h - OpenCL-style host execution layer ---*- C++ -*-===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A miniature OpenCL-flavoured execution layer — the substrate Concord
/// (and therefore the paper's runtime) builds on: devices, in-order
/// command queues, NDRange kernel enqueues, and events with profiling
/// timestamps (QUEUED / SUBMIT / START / END), which is exactly the
/// channel the online profiler uses to time GPU kernels excluding
/// dispatch overhead.
///
/// Kernels are C++ callables over iteration ranges (Concord's shared-
/// virtual-memory model: no buffers to copy, host pointers are device
/// pointers). The CPU device executes on the work-stealing ThreadPool;
/// the GPU device executes on a dedicated proxy thread through a
/// pluggable executor hook — a thread-backed stand-in here, an actual
/// driver on real hardware.
///
//===----------------------------------------------------------------------===//

#ifndef ECAS_CL_MINICL_H
#define ECAS_CL_MINICL_H

#include "ecas/obs/Trace.h"
#include "ecas/runtime/ParallelFor.h"
#include "ecas/support/Cancellation.h"
#include "ecas/support/ThreadAnnotations.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <thread>

namespace ecas::cl {

/// Subset of OpenCL status codes the layer can report.
enum class Status {
  Success,
  InvalidKernel,
  InvalidRange,
  DeviceUnavailable,
  /// The waiter abandoned the command (cancellation token fired) or the
  /// command was flushed from the queue before running.
  Cancelled,
};

/// Returns a human-readable name for \p S.
const char *statusName(Status S);

/// Command execution states, mirroring CL_QUEUED..CL_COMPLETE.
enum class CommandState { Queued, Submitted, Running, Complete };

/// A kernel: a name (its identity in the runtime's table G) plus a body
/// over half-open iteration ranges.
class MiniKernel {
public:
  MiniKernel() = default;
  MiniKernel(std::string Name, RangeBody Body);

  const std::string &name() const { return Name; }
  uint64_t id() const { return Id; }
  bool valid() const { return static_cast<bool>(Body); }
  const RangeBody &body() const { return Body; }

private:
  std::string Name;
  RangeBody Body;
  uint64_t Id = 0;
};

/// Completion + profiling handle for one enqueued command, shared
/// between the queue worker and any number of waiters.
class MiniEvent {
public:
  /// Blocks until the command completes.
  void wait() const;

  /// Blocks until the command completes and returns its final status —
  /// the recoverable-error variant of wait() callers use when a device
  /// may refuse or abandon work.
  Status waitStatus() const;

  /// Token-aware wait — the GPU proxy's cancellation point. Polls
  /// \p Cancel every \p PollSec while waiting; if the token fires before
  /// the command completes, returns Status::Cancelled and stops waiting.
  /// The command itself still runs to completion on the queue worker
  /// (hardware cannot be preempted mid-kernel), but the caller regains
  /// control immediately.
  Status waitStatus(const CancellationToken &Cancel,
                    double PollSec = 1e-3) const;

  CommandState state() const;
  Status status() const;

  /// Profiling timestamps in seconds on the host steady clock, valid
  /// once complete. startSeconds()..endSeconds() covers kernel execution
  /// only — the window an OpenCL profiling event reports.
  double queuedSeconds() const;
  double submitSeconds() const;
  double startSeconds() const;
  double endSeconds() const;

  /// Kernel execution time (END - START); 0 before completion.
  double executionSeconds() const;
  /// Queue + dispatch overhead (START - QUEUED); 0 before completion.
  double overheadSeconds() const;

private:
  friend class CommandQueue;
  struct State;
  std::shared_ptr<State> Shared;
};

/// In-order command queue bound to one device.
class CommandQueue {
public:
  /// \p Dispatch runs each command's range; \p DispatchLatencySec is the
  /// fixed submit->start cost charged per command (driver overhead).
  CommandQueue(std::string DeviceName,
               std::function<void(const RangeBody &, uint64_t, uint64_t)>
                   Dispatch,
               double DispatchLatencySec = 0.0);
  ~CommandQueue();

  CommandQueue(const CommandQueue &) = delete;
  CommandQueue &operator=(const CommandQueue &) = delete;

  const std::string &deviceName() const { return DeviceName; }

  /// Enqueues \p Kernel over [Begin, End); returns immediately with the
  /// command's event. Invalid kernels or empty ranges produce an
  /// already-complete event carrying the error status.
  MiniEvent enqueue(const MiniKernel &Kernel, uint64_t Begin, uint64_t End);

  /// Blocks until every command enqueued so far has completed
  /// (clFinish).
  void finish();

  /// Commands executed over the queue's lifetime.
  uint64_t commandsCompleted() const;

  /// Installs a pre-dispatch hook consulted before each command runs:
  /// a non-Success return fails the command with that status and the
  /// body never executes — how a fault injector (or a real driver's
  /// error path) surfaces launch failures through this layer. Pass an
  /// empty function to remove.
  void setFaultHook(std::function<Status()> Hook);

  /// Commands failed by the fault hook over the queue's lifetime.
  uint64_t commandsFailed() const;

  /// Fails every queued-but-not-yet-running command with
  /// Status::Cancelled, waking their waiters. The in-flight command (if
  /// any) is unaffected. Used by graceful shutdown to drain the queue
  /// against a deadline. \returns the number of commands flushed.
  uint64_t cancelPending();

  /// Attaches a trace recorder (nullptr detaches). The queue worker then
  /// publishes each settled command's QUEUED/SUBMIT/START/END lifecycle
  /// as two complete spans — "queue-wait" (QUEUED to START) and "exec"
  /// (START to END) — plus a "minicl.commands" counter; commands the
  /// fault hook refused emit a "launch-failed" instant instead. Events
  /// are recorded after the command completes, outside the queue and
  /// event mutexes.
  void setTrace(obs::TraceRecorder *Recorder) {
    Trace.store(Recorder, std::memory_order_release);
  }

private:
  void workerLoop();

  struct Command;
  std::string DeviceName;
  std::function<void(const RangeBody &, uint64_t, uint64_t)> Dispatch;
  double DispatchLatencySec;

  /// Guards the queue state below. Ordered after every scheduler and
  /// pool lock and before MiniCl.Event (DESIGN.md §9); the worker
  /// completes events only after dropping it.
  mutable AnnotatedMutex Mutex{"MiniCl.Queue"};
  std::condition_variable WorkAvailable;
  std::condition_variable QueueDrained;
  std::deque<std::unique_ptr<Command>> Pending ECAS_GUARDED_BY(Mutex);
  uint64_t Completed ECAS_GUARDED_BY(Mutex) = 0;
  uint64_t Failed ECAS_GUARDED_BY(Mutex) = 0;
  uint64_t InFlight ECAS_GUARDED_BY(Mutex) = 0;
  bool ShuttingDown ECAS_GUARDED_BY(Mutex) = false;
  std::function<Status()> FaultHook ECAS_GUARDED_BY(Mutex);
  std::atomic<obs::TraceRecorder *> Trace{nullptr};
  std::thread Worker;
};

/// A context: one CPU queue on the work-stealing pool and one GPU queue
/// behind a pluggable executor — Fig. 8's two execution targets.
class MiniContext {
public:
  /// \p CpuThreads sizes the pool (0 = hardware concurrency). The GPU
  /// executor defaults to a host-thread stand-in that simply runs the
  /// body; pass a real driver hook on real hardware.
  /// \p GpuDispatchLatencySec models the driver's enqueue cost.
  explicit MiniContext(unsigned CpuThreads = 0, GpuExecutor GpuHook = {},
                       double GpuDispatchLatencySec = 20e-6);

  CommandQueue &cpuQueue() { return *Cpu; }
  CommandQueue &gpuQueue() { return *Gpu; }
  ThreadPool &pool() { return Pool; }

  /// Splits [0, N) at \p Alpha like Fig. 7 steps 23-25: the GPU queue
  /// takes the tail Alpha*N, the CPU queue the head; waits for both.
  /// When the GPU command fails (a fault hook or driver error), its
  /// range is transparently re-run on the CPU queue so the partition
  /// always completes; the returned GPU-side event is then the CPU
  /// fallback's event and gpuFallbacks() counts the reroute.
  /// \p Cancel, when non-null, bounds the waits: a fired token abandons
  /// the outstanding events (no CPU fallback is attempted) and the
  /// caller sees whatever statuses the events settled with.
  /// \returns the two events (CPU first).
  std::pair<MiniEvent, MiniEvent>
  runPartitioned(const MiniKernel &Kernel, uint64_t N, double Alpha,
                 const CancellationToken *Cancel = nullptr);

  /// GPU commands rerouted to the CPU by runPartitioned().
  uint64_t gpuFallbacks() const {
    return GpuFallbacks.load(std::memory_order_relaxed);
  }

  /// Attaches \p Recorder to both queues and the thread pool in one
  /// call (nullptr detaches everywhere).
  void setTrace(obs::TraceRecorder *Recorder) {
    Pool.setTrace(Recorder);
    Cpu->setTrace(Recorder);
    Gpu->setTrace(Recorder);
  }

private:
  ThreadPool Pool;
  std::unique_ptr<CommandQueue> Cpu;
  std::unique_ptr<CommandQueue> Gpu;
  std::atomic<uint64_t> GpuFallbacks{0};
};

} // namespace ecas::cl

#endif // ECAS_CL_MINICL_H
