//===-- ecas/fault/GpuHealth.h - GPU quarantine state machine --*- C++ -*-===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The degradation policy's bookkeeping: a three-state machine tracking
/// whether the runtime may hand work to the GPU.
///
///   Healthy ──hang / launch abandoned──▶ Quarantined
///   Quarantined ──backoff expires──▶ Probing (next dispatch re-probes)
///   Probing ──dispatch succeeds──▶ Healthy   (recovery; backoff resets)
///   Probing ──dispatch fails──▶ Quarantined  (backoff doubles)
///
/// The monitor is pure policy over observations the runtime already has
/// (an enqueue failed, a watchdog expired, a dispatch completed); it
/// never inspects the injector, so the same code path would govern a
/// real driver. Corbera et al.'s point that degradation is part of the
/// scheduler, not an afterthought, is realized here: every execution
/// primitive consults this monitor before touching the GPU.
///
//===----------------------------------------------------------------------===//

#ifndef ECAS_FAULT_GPUHEALTH_H
#define ECAS_FAULT_GPUHEALTH_H

#include "ecas/obs/FlightRecorder.h"
#include "ecas/obs/Metrics.h"
#include "ecas/obs/Trace.h"
#include "ecas/support/HotPath.h"
#include "ecas/support/ThreadAnnotations.h"

#include <atomic>

namespace ecas {

/// Tunables of the retry / quarantine / re-probe policy.
struct GpuHealthConfig {
  /// Enqueue retries before a launch is abandoned to the CPU.
  unsigned MaxLaunchRetries = 3;
  /// First retry delay; doubles per attempt up to the cap.
  double InitialRetryBackoffSec = 100e-6;
  double RetryBackoffMultiplier = 2.0;
  double MaxRetryBackoffSec = 10e-3;
  /// First quarantine length; doubles per re-quarantine up to the cap,
  /// and resets on a successful recovery.
  double InitialQuarantineSec = 0.05;
  double QuarantineBackoffMultiplier = 2.0;
  double MaxQuarantineSec = 2.0;
  /// Hang watchdog: the GPU is declared hung when a dispatch shows no
  /// iteration progress across one whole poll interval.
  double WatchdogPollSec = 0.02;
};

enum class GpuHealthState { Healthy, Quarantined, Probing };

/// Returns "healthy", "quarantined", or "probing".
const char *gpuHealthStateName(GpuHealthState State);

/// Tracks GPU availability for one execution context (an
/// ExecutionSession run or an EasScheduler instance). Internally
/// synchronized: concurrent EasScheduler clients observe and feed the
/// state machine under one mutex, so transitions stay atomic (a probe
/// grant and its counter bump cannot interleave with a quarantine).
class GpuHealthMonitor {
public:
  explicit GpuHealthMonitor(GpuHealthConfig Config = {});

  const GpuHealthConfig &config() const { return Config; }
  GpuHealthState state() const {
    LockGuard Lock(Mutex);
    return State;
  }

  /// True while no fault has ever been observed — callers use this to
  /// stay on the exact fault-free fast path. Lock-free: the scheduler
  /// consults it on every dispatch, and taking the leaf mutex per
  /// decision would put a lock on the ECAS_HOT table-hit path. The
  /// mirror is published (release) under the mutex at the first fault;
  /// a stale true is indistinguishable from the dispatch having been
  /// ordered before that fault.
  ECAS_HOT bool pristine() const {
    return PristineFast.load(std::memory_order_acquire);
  }

  /// May the runtime hand work to the GPU at \p NowSec? While
  /// quarantined, returns false until the backoff expires; the first
  /// query after expiry transitions to Probing and returns true, making
  /// the caller's next dispatch the re-probe. Healthy and Probing states
  /// answer from a lock-free mirror; only the Quarantined expiry check
  /// (which may transition to Probing) takes the leaf mutex.
  ECAS_HOT bool gpuUsable(double NowSec);

  /// A single enqueue attempt failed (will be retried).
  void noteLaunchFailure(double NowSec);
  /// Retries exhausted; the launch was rerouted to the CPU. Quarantines.
  void noteLaunchAbandoned(double NowSec);
  /// The watchdog declared a dispatch hung. Quarantines.
  void noteHang(double NowSec);
  /// A GPU dispatch ran to completion. From Probing this is the
  /// recovery that re-admits the device and resets the backoff.
  void noteGpuSuccess(double NowSec);

  /// Reaction-side tallies (what the policy did, not what was injected).
  struct Stats {
    unsigned LaunchFailures = 0;
    unsigned LaunchesAbandoned = 0;
    unsigned HangsDetected = 0;
    unsigned Quarantines = 0;
    unsigned ProbesAttempted = 0;
    unsigned Recoveries = 0;
  };
  /// Consistent copy of the tallies (by value: the live counters mutate
  /// under the monitor's mutex).
  Stats stats() const {
    LockGuard Lock(Mutex);
    return Counters;
  }

  /// Monotone recovery counter; schedulers compare it across
  /// invocations to notice a re-admission and re-optimize alpha.
  /// Lock-free mirror of Counters.Recoveries, read once per decision.
  ECAS_HOT unsigned recoveries() const {
    return RecoveriesFast.load(std::memory_order_acquire);
  }

  double quarantinedUntil() const {
    LockGuard Lock(Mutex);
    return QuarantinedUntil;
  }

  /// Attaches (or detaches, with nullptr) a trace recorder. State
  /// transitions then emit "health" instants — quarantine, probe,
  /// recovery, hang — stamped with the observation's virtual time.
  /// Events are always emitted after the monitor's mutex is released:
  /// this mutex is a documented leaf, so no other lock (the recorder's
  /// registry included) may be acquired under it.
  void setTrace(obs::TraceRecorder *Recorder) {
    Trace.store(Recorder, std::memory_order_release);
  }

  /// Counters for the reaction-side transitions (hang, quarantine,
  /// probe, recovery), bumped after the leaf mutex is released, exactly
  /// like the trace instants. Null members are skipped. Attach before
  /// concurrent use — the EasScheduler constructor does — because the
  /// hook pointers themselves are unsynchronized (the counters they
  /// point at are atomic).
  struct MetricHooks {
    obs::Counter *Hangs = nullptr;
    obs::Counter *Quarantines = nullptr;
    obs::Counter *Probes = nullptr;
    obs::Counter *Recoveries = nullptr;
    /// Flight-recorder sink for the same transitions (DESIGN.md §16);
    /// instants land in the crash ring even without a registry.
    obs::FlightRecorder *Flight = nullptr;
  };
  void setMetrics(const MetricHooks &Hooks) { Metrics = Hooks; }

private:
  void quarantine(double NowSec) ECAS_REQUIRES(Mutex);

  GpuHealthConfig Config;
  /// Leaf lock: nothing else is acquired while this monitor's mutex is
  /// held (DESIGN.md §9 lock hierarchy).
  mutable AnnotatedMutex Mutex{"GpuHealth"};
  GpuHealthState State ECAS_GUARDED_BY(Mutex) = GpuHealthState::Healthy;
  //===--------------------------------------------------------------===//
  // Lock-free fast-path mirrors (DESIGN.md §14). The guarded fields
  // above stay authoritative; every transition republishes the mirrors
  // (release stores under the mutex) so the per-decision reads —
  // pristine(), recoveries(), and gpuUsable()'s Healthy/Probing answer —
  // cost one atomic load instead of a leaf-mutex round trip.
  //===--------------------------------------------------------------===//
  std::atomic<GpuHealthState> StateFast{GpuHealthState::Healthy};
  std::atomic<bool> PristineFast{true};
  std::atomic<unsigned> RecoveriesFast{0};
  Stats Counters ECAS_GUARDED_BY(Mutex);
  bool Pristine ECAS_GUARDED_BY(Mutex) = true;
  double QuarantinedUntil ECAS_GUARDED_BY(Mutex) = 0.0;
  double CurrentQuarantineSec ECAS_GUARDED_BY(Mutex);
  /// Not guarded: read/written with its own acquire/release ordering so
  /// transition events can be emitted outside the leaf mutex.
  std::atomic<obs::TraceRecorder *> Trace{nullptr};
  /// Not guarded: written once by setMetrics() before concurrent use.
  MetricHooks Metrics;
};

} // namespace ecas

#endif // ECAS_FAULT_GPUHEALTH_H
