//===-- ecas/fault/FaultInjector.cpp - Seeded fault realization -----------===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ecas/fault/FaultInjector.h"

#include <algorithm>

using namespace ecas;

FaultInjector::FaultInjector(FaultPlan PlanIn)
    : Plan(std::move(PlanIn)), Rng(Plan.seed()),
      Fired(Plan.events().size(), false) {}

bool FaultInjector::gpuLaunchFails(double NowSec) {
  for (const FaultEvent &Event : Plan.events()) {
    if (Event.Kind != FaultKind::GpuLaunchFail || !Event.activeAt(NowSec))
      continue;
    if (Event.Probability >= 1.0 || Rng.nextDouble() < Event.Probability) {
      ++Stats.LaunchFailures;
      return true;
    }
  }
  return false;
}

double FaultInjector::gpuThroughputScale(double NowSec) {
  double Scale = 1.0;
  for (const FaultEvent &Event : Plan.events()) {
    if (!Event.activeAt(NowSec))
      continue;
    if (Event.Kind == FaultKind::GpuHang) {
      ++Stats.HangQueries;
      return 0.0;
    }
    if (Event.Kind == FaultKind::GpuThrottle)
      Scale = std::min(Scale, Event.Magnitude);
  }
  if (Scale < 1.0)
    ++Stats.ThrottleQueries;
  return Scale;
}

bool FaultInjector::dropRaplSample(double NowSec) {
  for (const FaultEvent &Event : Plan.events()) {
    if (Event.Kind != FaultKind::RaplDropout || !Event.activeAt(NowSec))
      continue;
    if (Event.Probability >= 1.0 || Rng.nextDouble() < Event.Probability) {
      ++Stats.RaplSamplesDropped;
      return true;
    }
  }
  return false;
}

uint64_t FaultInjector::pendingRaplJumpUnits(double NowSec) {
  uint64_t Units = 0;
  for (size_t I = 0; I != Plan.events().size(); ++I) {
    const FaultEvent &Event = Plan.events()[I];
    if (Event.Kind != FaultKind::RaplWrapJump || Fired[I] ||
        NowSec < Event.StartSec)
      continue;
    Fired[I] = true;
    ++Stats.RaplCounterJumps;
    // Magnitude counts 32-bit wraps; fractional magnitudes leave a
    // visible residue in the low 32 bits.
    Units += static_cast<uint64_t>(Event.Magnitude * 4294967296.0);
  }
  return Units;
}

double FaultInjector::counterNoiseScale(double NowSec) {
  double Scale = 1.0;
  for (const FaultEvent &Event : Plan.events()) {
    if (Event.Kind != FaultKind::CounterNoise || !Event.activeAt(NowSec))
      continue;
    double Half = std::max(0.0, Event.Magnitude);
    Scale *= Rng.nextDouble(1.0 - Half, 1.0 + Half);
  }
  if (Scale != 1.0)
    ++Stats.NoisyCounterReads;
  return std::max(Scale, 1e-3);
}
