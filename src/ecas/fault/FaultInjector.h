//===-- ecas/fault/FaultInjector.h - Seeded fault realization --*- C++ -*-===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Realizes a FaultPlan against a clock the caller supplies: every query
/// takes the current (virtual) time and answers "does this fault fire
/// now?". Stochastic kinds draw from a PRNG seeded by the plan, so a
/// (plan, query sequence) pair always reproduces the same faults. The
/// injector also keeps tallies of everything it injected, which the CLI
/// prints alongside the scheduler's degradation report so a scenario's
/// cause and effect can be compared side by side.
///
/// Only the simulator substrate touches the injector. The scheduler
/// stack never does — it observes faults exactly the way it would on
/// real silicon: enqueues that report failure, kernels that never
/// complete, throughput that collapses, energy counters that misbehave.
///
//===----------------------------------------------------------------------===//

#ifndef ECAS_FAULT_FAULTINJECTOR_H
#define ECAS_FAULT_FAULTINJECTOR_H

#include "ecas/fault/FaultPlan.h"
#include "ecas/support/Random.h"

namespace ecas {

/// Tallies of injected faults (causes, not reactions).
struct FaultStats {
  uint64_t LaunchFailures = 0;
  uint64_t HangQueries = 0;
  uint64_t ThrottleQueries = 0;
  uint64_t RaplSamplesDropped = 0;
  uint64_t RaplCounterJumps = 0;
  uint64_t NoisyCounterReads = 0;

  bool anyInjected() const {
    return LaunchFailures || HangQueries || ThrottleQueries ||
           RaplSamplesDropped || RaplCounterJumps || NoisyCounterReads;
  }
};

/// Stateful realization of one FaultPlan.
class FaultInjector {
public:
  explicit FaultInjector(FaultPlan Plan);

  const FaultPlan &plan() const { return Plan; }
  bool enabled() const { return Plan.enabled(); }

  /// True when a GPU enqueue issued at \p NowSec should fail.
  bool gpuLaunchFails(double NowSec);

  /// Multiplier on GPU throughput at \p NowSec: 0 while a hang is
  /// active, the strongest active throttle scale otherwise, 1 when
  /// nothing fires.
  double gpuThroughputScale(double NowSec);

  /// True when a package-energy deposit at \p NowSec should be dropped.
  bool dropRaplSample(double NowSec);

  /// Counter units the RAPL MSR should jump by right now; each
  /// RaplWrapJump event fires exactly once, when the clock first passes
  /// its StartSec. Returns 0 when nothing is pending.
  uint64_t pendingRaplJumpUnits(double NowSec);

  /// Multiplicative scale to apply to one performance-counter reading at
  /// \p NowSec; 1.0 when no noise event is active.
  double counterNoiseScale(double NowSec);

  const FaultStats &stats() const { return Stats; }

private:
  FaultPlan Plan;
  Xoshiro256 Rng;
  FaultStats Stats;
  /// One flag per plan event; marks one-shot events already fired.
  std::vector<bool> Fired;
};

} // namespace ecas

#endif // ECAS_FAULT_FAULTINJECTOR_H
