//===-- ecas/fault/StorageFaults.cpp - Storage fault injection ------------===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ecas/fault/StorageFaults.h"

#include <atomic>

using namespace ecas;

StorageFaultInjector::StorageFaultInjector(StorageFaultPlan PlanIn)
    : Plan(PlanIn), Rng(PlanIn.Seed) {}

StorageFaultInjector::Effect StorageFaultInjector::mangle(std::string &Bytes) {
  Effect E;
  if (Bytes.empty() || !Plan.enabled())
    return E;
  LockGuard Lock(Mutex);
  ++Counts.WritesSeen;
  // Flip before truncating, so a flip can land anywhere in the original
  // buffer and still survive (or not) the truncation — both orders occur
  // on real media; this one exercises more reader states.
  if (Plan.BitFlipProbability > 0.0 &&
      Rng.nextDouble() < Plan.BitFlipProbability) {
    uint64_t Bit = Rng.next() % (Bytes.size() * 8);
    Bytes[Bit / 8] ^= static_cast<char>(1u << (Bit % 8));
    E.BitFlip = true;
    ++Counts.BitFlips;
  }
  if (Plan.ShortWriteProbability > 0.0 &&
      Rng.nextDouble() < Plan.ShortWriteProbability) {
    Bytes.resize(static_cast<size_t>(Rng.nextDouble() *
                                     static_cast<double>(Bytes.size())));
    E.ShortWrite = true;
    ++Counts.ShortWrites;
  }
  return E;
}

StorageFaultInjector::Stats StorageFaultInjector::stats() const {
  LockGuard Lock(Mutex);
  return Counts;
}

namespace {
std::atomic<StorageFaultInjector *> GlobalInjector{nullptr};
} // namespace

void ecas::setStorageFaultInjector(StorageFaultInjector *Injector) {
  GlobalInjector.store(Injector, std::memory_order_release);
}

StorageFaultInjector *ecas::storageFaultInjector() {
  return GlobalInjector.load(std::memory_order_acquire);
}
