//===-- ecas/fault/GpuHealth.cpp - GPU quarantine state machine -----------===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ecas/fault/GpuHealth.h"

#include "ecas/support/Assert.h"

#include <algorithm>

using namespace ecas;

const char *ecas::gpuHealthStateName(GpuHealthState State) {
  switch (State) {
  case GpuHealthState::Healthy:
    return "healthy";
  case GpuHealthState::Quarantined:
    return "quarantined";
  case GpuHealthState::Probing:
    return "probing";
  }
  ECAS_UNREACHABLE("unknown health state");
}

GpuHealthMonitor::GpuHealthMonitor(GpuHealthConfig ConfigIn)
    : Config(ConfigIn), CurrentQuarantineSec(Config.InitialQuarantineSec) {
  ECAS_CHECK(Config.InitialQuarantineSec > 0.0 &&
                 Config.QuarantineBackoffMultiplier >= 1.0,
             "quarantine backoff must be positive and non-shrinking");
  ECAS_CHECK(Config.WatchdogPollSec > 0.0,
             "watchdog poll interval must be positive");
}

bool GpuHealthMonitor::gpuUsable(double NowSec) {
  // Steady-state fast path: a Healthy (or already-Probing) device needs
  // no bookkeeping, so one mirror load answers without the leaf mutex.
  // A stale Healthy read racing a quarantine is benign — equivalent to
  // this dispatch having been ordered just before the fault.
  GpuHealthState Fast = StateFast.load(std::memory_order_acquire);
  if (Fast != GpuHealthState::Quarantined)
    return true;

  bool Probing = false;
  bool Usable = [&] {
    // Quarantine slow path: only reached when the atomic mirror above
    // already said Quarantined, never on the pristine fast path.
    LockGuard Lock(Mutex); // ecas-hotpath: allow(lock)
    switch (State) {
    case GpuHealthState::Healthy:
    case GpuHealthState::Probing:
      return true;
    case GpuHealthState::Quarantined:
      if (NowSec < QuarantinedUntil)
        return false;
      State = GpuHealthState::Probing;
      StateFast.store(GpuHealthState::Probing, std::memory_order_release);
      ++Counters.ProbesAttempted;
      Probing = true;
      return true;
    }
    ECAS_UNREACHABLE("unknown health state");
  }();
  // Leaf-lock discipline: trace events and counter bumps only after the
  // mutex is released.
  if (Probing) {
    if (obs::TraceRecorder *T = Trace.load(std::memory_order_acquire))
      T->instant("health", "probe", NowSec);
    if (Metrics.Probes)
      Metrics.Probes->add();
    if (Metrics.Flight)
      Metrics.Flight->instant("health", "probe", NowSec);
  }
  return Usable;
}

void GpuHealthMonitor::quarantine(double NowSec) {
  ++Counters.Quarantines;
  State = GpuHealthState::Quarantined;
  StateFast.store(GpuHealthState::Quarantined, std::memory_order_release);
  QuarantinedUntil = NowSec + CurrentQuarantineSec;
  CurrentQuarantineSec =
      std::min(CurrentQuarantineSec * Config.QuarantineBackoffMultiplier,
               Config.MaxQuarantineSec);
}

// Fault-mode bookkeeping: runPartitionedResilient only calls the
// note*() mutators when fault injection is live or health has already
// degraded; the pristine steady state takes the lock-free legacy path.
// ecas-hotpath: allow(lock)
void GpuHealthMonitor::noteLaunchFailure(double NowSec) {
  {
    LockGuard Lock(Mutex);
    Pristine = false;
    PristineFast.store(false, std::memory_order_release);
    ++Counters.LaunchFailures;
  }
  if (obs::TraceRecorder *T = Trace.load(std::memory_order_acquire))
    T->instant("health", "launch-retry", NowSec);
}

// ecas-hotpath: allow(lock)
void GpuHealthMonitor::noteLaunchAbandoned(double NowSec) {
  {
    LockGuard Lock(Mutex);
    Pristine = false;
    PristineFast.store(false, std::memory_order_release);
    ++Counters.LaunchesAbandoned;
    quarantine(NowSec);
  }
  if (obs::TraceRecorder *T = Trace.load(std::memory_order_acquire))
    T->instant("health", "quarantine", NowSec, "launch-abandoned");
  if (Metrics.Quarantines)
    Metrics.Quarantines->add();
  if (Metrics.Flight)
    Metrics.Flight->instant("health", "quarantine", NowSec);
}

// ecas-hotpath: allow(lock)
void GpuHealthMonitor::noteHang(double NowSec) {
  {
    LockGuard Lock(Mutex);
    Pristine = false;
    PristineFast.store(false, std::memory_order_release);
    ++Counters.HangsDetected;
    quarantine(NowSec);
  }
  if (obs::TraceRecorder *T = Trace.load(std::memory_order_acquire)) {
    T->instant("health", "hang", NowSec);
    T->instant("health", "quarantine", NowSec, "hang");
  }
  if (Metrics.Hangs)
    Metrics.Hangs->add();
  if (Metrics.Quarantines)
    Metrics.Quarantines->add();
  if (Metrics.Flight) {
    Metrics.Flight->instant("health", "hang", NowSec);
    Metrics.Flight->instant("health", "quarantine", NowSec);
  }
}

// ecas-hotpath: allow(lock)
void GpuHealthMonitor::noteGpuSuccess(double NowSec) {
  bool Recovered = false;
  {
    LockGuard Lock(Mutex);
    if (State == GpuHealthState::Probing) {
      ++Counters.Recoveries;
      RecoveriesFast.store(Counters.Recoveries, std::memory_order_release);
      CurrentQuarantineSec = Config.InitialQuarantineSec;
      Recovered = true;
    }
    State = GpuHealthState::Healthy;
    StateFast.store(GpuHealthState::Healthy, std::memory_order_release);
  }
  if (Recovered) {
    if (obs::TraceRecorder *T = Trace.load(std::memory_order_acquire))
      T->instant("health", "recovery", NowSec);
    if (Metrics.Recoveries)
      Metrics.Recoveries->add();
    if (Metrics.Flight)
      Metrics.Flight->instant("health", "recovery", NowSec);
  }
}
