//===-- ecas/fault/FaultPlan.cpp - Fault-injection scenarios --------------===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ecas/fault/FaultPlan.h"

#include "ecas/support/Format.h"

#include <cmath>

using namespace ecas;

const char *ecas::faultKindName(FaultKind Kind) {
  switch (Kind) {
  case FaultKind::GpuLaunchFail:
    return "gpu-launch-fail";
  case FaultKind::GpuHang:
    return "gpu-hang";
  case FaultKind::GpuThrottle:
    return "gpu-throttle";
  case FaultKind::RaplDropout:
    return "rapl-dropout";
  case FaultKind::RaplWrapJump:
    return "rapl-wrap-jump";
  case FaultKind::CounterNoise:
    return "counter-noise";
  }
  ECAS_UNREACHABLE("unknown fault kind");
}

static bool kindFromName(const std::string &Name, FaultKind &Out) {
  for (FaultKind Kind :
       {FaultKind::GpuLaunchFail, FaultKind::GpuHang, FaultKind::GpuThrottle,
        FaultKind::RaplDropout, FaultKind::RaplWrapJump,
        FaultKind::CounterNoise}) {
    if (Name == faultKindName(Kind)) {
      Out = Kind;
      return true;
    }
  }
  return false;
}

std::string FaultPlan::serialize() const {
  std::string Out = formatString("name = %s\n", Name.c_str());
  Out += formatString("seed = %llu\n",
                      static_cast<unsigned long long>(Seed));
  for (const FaultEvent &Event : Events)
    Out += formatString("fault %s start=%.17g end=%.17g mag=%.17g "
                        "prob=%.17g\n",
                        faultKindName(Event.Kind), Event.StartSec,
                        Event.EndSec, Event.Magnitude, Event.Probability);
  return Out;
}

ErrorOr<FaultPlan> FaultPlan::load(const std::string &Text) {
  FaultPlan Plan;
  unsigned LineNo = 0;
  for (const std::string &Line : splitString(Text, '\n')) {
    ++LineNo;
    if (Line.empty() || Line[0] == '#')
      continue;
    auto Fail = [LineNo](ErrCode Code, const std::string &Msg) {
      return Status::error(Code,
                           formatString("line %u: %s", LineNo, Msg.c_str()));
    };
    if (Line.rfind("fault ", 0) != 0) {
      size_t Eq = Line.find('=');
      if (Eq == std::string::npos)
        return Fail(ErrCode::ParseError, "expected 'key = value'");
      std::string Key = trimString(Line.substr(0, Eq));
      std::string Value = trimString(Line.substr(Eq + 1));
      if (Key == "name") {
        Plan.Name = Value;
      } else if (Key == "seed") {
        long long Seed;
        if (!parseInt64(Value, Seed) || Seed < 0)
          return Fail(ErrCode::ParseError, "bad seed '" + Value + "'");
        Plan.Seed = static_cast<uint64_t>(Seed);
      } else {
        return Fail(ErrCode::ParseError, "unknown key '" + Key + "'");
      }
      continue;
    }
    std::vector<std::string> Tokens;
    for (const std::string &Tok : splitString(Line.substr(6), ' '))
      if (!Tok.empty())
        Tokens.push_back(Tok);
    if (Tokens.empty())
      return Fail(ErrCode::Truncated, "fault line names no kind");
    FaultEvent Event;
    if (!kindFromName(Tokens.front(), Event.Kind))
      return Fail(ErrCode::ParseError,
                  "unknown fault kind '" + Tokens.front() + "'");
    for (size_t I = 1; I < Tokens.size(); ++I) {
      size_t Eq = Tokens[I].find('=');
      if (Eq == std::string::npos)
        return Fail(ErrCode::ParseError,
                    "expected attr=value, got '" + Tokens[I] + "'");
      std::string Attr = Tokens[I].substr(0, Eq);
      double Value;
      if (!parseDouble(Tokens[I].substr(Eq + 1), Value) ||
          !std::isfinite(Value))
        return Fail(ErrCode::ParseError,
                    "non-finite or unparsable value in '" + Tokens[I] + "'");
      if (Attr == "start")
        Event.StartSec = Value;
      else if (Attr == "end")
        Event.EndSec = Value;
      else if (Attr == "mag")
        Event.Magnitude = Value;
      else if (Attr == "prob")
        Event.Probability = Value;
      else
        return Fail(ErrCode::ParseError, "unknown attribute '" + Attr + "'");
    }
    if (Event.StartSec < 0.0 || Event.EndSec < Event.StartSec)
      return Fail(ErrCode::OutOfRange, "event window is inverted or negative");
    if (Event.Probability <= 0.0 || Event.Probability > 1.0)
      return Fail(ErrCode::OutOfRange, "probability must lie in (0, 1]");
    if (Event.Kind == FaultKind::GpuThrottle &&
        (Event.Magnitude < 0.0 || Event.Magnitude > 1.0))
      return Fail(ErrCode::OutOfRange, "throttle scale must lie in [0, 1]");
    Plan.Events.push_back(Event);
  }
  return Plan;
}

ErrorOr<FaultPlan> FaultPlan::scenario(const std::string &Name) {
  FaultPlan Plan;
  Plan.setName(Name);
  auto Add = [&Plan](FaultKind Kind, double Start, double End, double Mag,
                     double Prob) {
    FaultEvent Event;
    Event.Kind = Kind;
    Event.StartSec = Start;
    Event.EndSec = End;
    Event.Magnitude = Mag;
    Event.Probability = Prob;
    Plan.addEvent(Event);
  };
  if (Name == "gpu-hang") {
    // Mid-run hang that clears: exercises watchdog -> quarantine ->
    // re-probe -> re-admission.
    Add(FaultKind::GpuHang, 0.02, 0.2, 0.0, 1.0);
  } else if (Name == "gpu-flaky-launch") {
    // Persistent 40% launch-failure rate: exercises bounded retry with
    // backoff and the eventual CPU fallback.
    Add(FaultKind::GpuLaunchFail, 0.0, 1e30, 0.0, 0.4);
  } else if (Name == "thermal-throttle") {
    // Throughput collapses to 8% for a window, then recovers.
    Add(FaultKind::GpuThrottle, 0.05, 0.4, 0.08, 1.0);
  } else if (Name == "rapl-glitch") {
    // Dropped samples plus a double-wraparound jump.
    Add(FaultKind::RaplDropout, 0.0, 1e30, 0.0, 0.1);
    Add(FaultKind::RaplWrapJump, 0.1, 1e30, 2.25, 1.0);
  } else if (Name == "noisy-counters") {
    Add(FaultKind::CounterNoise, 0.0, 1e30, 0.2, 1.0);
  } else if (Name == "kitchen-sink") {
    Add(FaultKind::GpuLaunchFail, 0.0, 1e30, 0.0, 0.15);
    Add(FaultKind::GpuHang, 0.05, 0.12, 0.0, 1.0);
    Add(FaultKind::GpuThrottle, 0.2, 0.35, 0.1, 1.0);
    Add(FaultKind::RaplDropout, 0.0, 1e30, 0.0, 0.05);
    Add(FaultKind::CounterNoise, 0.0, 1e30, 0.1, 1.0);
  } else if (Name == "overload") {
    // The chaos-soak plan: a persistently degraded platform whose drain
    // rate collapses below the offered load, so admission control and
    // deadline shedding must do the surviving. Throttled throughput,
    // frequent launch failures, and two hang windows (the second long
    // enough to quarantine through several requests).
    Add(FaultKind::GpuThrottle, 0.0, 1e30, 0.3, 1.0);
    Add(FaultKind::GpuLaunchFail, 0.0, 1e30, 0.0, 0.25);
    Add(FaultKind::GpuHang, 0.05, 0.1, 0.0, 1.0);
    Add(FaultKind::GpuHang, 0.3, 0.5, 0.0, 1.0);
  } else if (Name == "bursty-tenant") {
    // One tenant's traffic pattern turned into platform weather: short
    // repeated hang bursts that quarantine and recover over and over,
    // under persistent counter noise so profiling never sees the same
    // numbers twice.
    Add(FaultKind::GpuHang, 0.02, 0.05, 0.0, 1.0);
    Add(FaultKind::GpuHang, 0.15, 0.18, 0.0, 1.0);
    Add(FaultKind::GpuHang, 0.3, 0.33, 0.0, 1.0);
    Add(FaultKind::GpuHang, 0.45, 0.48, 0.0, 1.0);
    Add(FaultKind::CounterNoise, 0.0, 1e30, 0.15, 1.0);
  } else {
    return Status::error(ErrCode::InvalidArgument,
                         "unknown fault scenario '" + Name + "'");
  }
  return Plan;
}

std::vector<std::string> FaultPlan::scenarioNames() {
  return {"gpu-hang",       "gpu-flaky-launch", "thermal-throttle",
          "rapl-glitch",    "noisy-counters",   "kitchen-sink",
          "overload",       "bursty-tenant"};
}
