//===-- ecas/fault/StorageFaults.h - Storage fault injection ---*- C++ -*-===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fault injection for the durability layer (DESIGN.md §13), extending
/// the virtual-clock fault taxonomy of FaultPlan with the failure modes
/// only storage has:
///
///   short writes  — a suffix of the buffer never reaches the medium
///                   (power cut between page writebacks, ENOSPC races).
///                   AtomicFile detects them (the destination stays
///                   untouched, like a real failed write(2)); the
///                   journal models the undetectable variant — a torn
///                   tail the next recovery must truncate at.
///   bit flips     — silent media corruption; the reader's CRC framing
///                   is the only defense, and the corruption-matrix
///                   fuzz asserts it always degrades to cold-table or
///                   truncated-replay, never a crash.
///
/// The injector is consulted through a process-global hook because the
/// write paths it corrupts (AtomicFile, HistoryJournal) sit below every
/// dependency-injection seam; tests install one with ScopedStorageFaults
/// so the hook cannot leak across test boundaries. The default — no
/// injector — costs one relaxed atomic load per write.
///
//===----------------------------------------------------------------------===//

#ifndef ECAS_FAULT_STORAGEFAULTS_H
#define ECAS_FAULT_STORAGEFAULTS_H

#include "ecas/support/Random.h"
#include "ecas/support/ThreadAnnotations.h"

#include <cstdint>
#include <string>

namespace ecas {

/// Probabilities of each storage-fault mode, evaluated independently
/// per write. All default to "healthy storage".
struct StorageFaultPlan {
  /// Seed for the injector's private RNG; runs are reproducible.
  uint64_t Seed = 0x5707a9efaULL;
  /// P(a write persists only a prefix). The surviving fraction is drawn
  /// uniformly from [0, 1) of the buffer.
  double ShortWriteProbability = 0.0;
  /// P(one uniformly chosen bit of the write is inverted).
  double BitFlipProbability = 0.0;

  bool enabled() const {
    return ShortWriteProbability > 0.0 || BitFlipProbability > 0.0;
  }
};

/// Deterministic, thread-safe storage corrupter. Write paths call
/// mangle() on the exact bytes about to hit the disk.
class StorageFaultInjector {
public:
  explicit StorageFaultInjector(StorageFaultPlan Plan);

  /// What mangle() did to one buffer.
  struct Effect {
    bool ShortWrite = false;
    bool BitFlip = false;
    bool any() const { return ShortWrite || BitFlip; }
  };

  /// Possibly truncates and/or corrupts \p Bytes in place per the plan.
  /// Thread-safe; the RNG is serialized under a leaf mutex (this is the
  /// slow fsync-bound path, never the enqueue hot path).
  Effect mangle(std::string &Bytes);

  struct Stats {
    uint64_t WritesSeen = 0;
    uint64_t ShortWrites = 0;
    uint64_t BitFlips = 0;
  };
  Stats stats() const;

private:
  const StorageFaultPlan Plan;
  mutable AnnotatedMutex Mutex{"StorageFaults.Rng"};
  Xoshiro256 Rng ECAS_GUARDED_BY(Mutex);
  Stats Counts ECAS_GUARDED_BY(Mutex);
};

/// Installs \p Injector as the process-global hook (nullptr uninstalls).
/// Borrowed, not owned: the caller keeps it alive while installed.
void setStorageFaultInjector(StorageFaultInjector *Injector);

/// The currently installed hook, or nullptr for healthy storage.
StorageFaultInjector *storageFaultInjector();

/// RAII installer for tests: installs on construction, restores the
/// previous hook on destruction.
class ScopedStorageFaults {
public:
  explicit ScopedStorageFaults(StorageFaultInjector &Injector)
      : Previous(storageFaultInjector()) {
    setStorageFaultInjector(&Injector);
  }
  ~ScopedStorageFaults() { setStorageFaultInjector(Previous); }

  ScopedStorageFaults(const ScopedStorageFaults &) = delete;
  ScopedStorageFaults &operator=(const ScopedStorageFaults &) = delete;

private:
  StorageFaultInjector *Previous;
};

} // namespace ecas

#endif // ECAS_FAULT_STORAGEFAULTS_H
