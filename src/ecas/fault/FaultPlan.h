//===-- ecas/fault/FaultPlan.h - Fault-injection scenarios -----*- C++ -*-===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fault taxonomy and the declarative plan that drives injection.
/// The paper treats the platform as a black box; this module models the
/// ways a real black box misbehaves — driver launch failures, GPU hangs,
/// thermal-throttle throughput collapses, RAPL counter glitches, and
/// noisy performance counters — as timed events on the simulator's
/// virtual clock. A FaultPlan is pure data: seedable, serializable, and
/// replayable, so every degradation scenario is reproducible. An empty
/// plan means injection is disabled and the simulator behaves
/// bit-identically to a build without this subsystem.
///
/// Wiring: PlatformSpec carries a FaultPlan (empty by default);
/// SimProcessor instantiates a FaultInjector from it and threads the
/// injected effects through SimGpuDevice (throughput derating),
/// EnergyMeter (dropped samples, counter jumps), and OnlineProfiler
/// (counter noise). The host-side MiniCl layer exposes a generic
/// pre-dispatch fault hook that an injector can drive the same way.
///
//===----------------------------------------------------------------------===//

#ifndef ECAS_FAULT_FAULTPLAN_H
#define ECAS_FAULT_FAULTPLAN_H

#include "ecas/support/Error.h"

#include <cstdint>
#include <string>
#include <vector>

namespace ecas {

/// The injectable fault classes.
enum class FaultKind {
  /// Enqueue onto the GPU fails (driver returns an error) while active.
  GpuLaunchFail,
  /// The GPU stops making progress entirely while active (TDR-style
  /// hang); queued work sits in the queue until cancelled.
  GpuHang,
  /// Transient throughput collapse: GPU rate scaled by Magnitude
  /// (thermal-throttle style) while active.
  GpuThrottle,
  /// The package energy meter drops deposits while active (RAPL sample
  /// dropout: energy flows that the counter never records).
  RaplDropout,
  /// One-shot at StartSec: the RAPL counter jumps forward by
  /// Magnitude * 2^32 units (fractional magnitudes allowed), modeling a
  /// read interval that spans multiple 32-bit wraparounds.
  RaplWrapJump,
  /// Multiplicative noise on profiled performance-counter readings while
  /// active; Magnitude is the half-width of the uniform scale band.
  CounterNoise,
};

/// Returns the serialization tag for \p Kind ("gpu-hang", ...).
const char *faultKindName(FaultKind Kind);

/// One timed fault: active on [StartSec, EndSec) of the virtual clock.
struct FaultEvent {
  FaultKind Kind = FaultKind::GpuLaunchFail;
  double StartSec = 0.0;
  double EndSec = 1e30;
  /// Kind-specific strength: throttle scale in (0,1], wrap count for
  /// RaplWrapJump, noise half-width for CounterNoise. Unused otherwise.
  double Magnitude = 0.0;
  /// Per-query injection probability in (0,1] for stochastic kinds
  /// (GpuLaunchFail, RaplDropout); deterministic kinds ignore it.
  double Probability = 1.0;

  bool activeAt(double NowSec) const {
    return NowSec >= StartSec && NowSec < EndSec;
  }
};

/// A named, seedable set of fault events.
class FaultPlan {
public:
  const std::string &name() const { return Name; }
  void setName(std::string N) { Name = std::move(N); }

  uint64_t seed() const { return Seed; }
  void setSeed(uint64_t S) { Seed = S; }

  const std::vector<FaultEvent> &events() const { return Events; }
  void addEvent(FaultEvent Event) { Events.push_back(Event); }

  /// An empty plan injects nothing; the simulator takes its exact
  /// fault-free paths.
  bool enabled() const { return !Events.empty(); }

  /// Text round-trip:
  ///   name = <scenario>
  ///   seed = <n>
  ///   fault <kind> start=<s> end=<s> mag=<x> prob=<p>
  /// (mag/prob optional; '#' comments ignored).
  std::string serialize() const;
  static ErrorOr<FaultPlan> load(const std::string &Text);

  /// Built-in reproducible scenarios for the CLI and tests; returns a
  /// failed ErrorOr for unknown names. See scenarioNames().
  static ErrorOr<FaultPlan> scenario(const std::string &Name);
  static std::vector<std::string> scenarioNames();

private:
  std::string Name = "unnamed";
  uint64_t Seed = 0x5eed5eedULL;
  std::vector<FaultEvent> Events;
};

} // namespace ecas

#endif // ECAS_FAULT_FAULTPLAN_H
