//===-- ecas/runtime/ThreadPool.h - Work-stealing thread pool --*- C++ -*-===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Persistent worker threads with per-worker Chase-Lev deques and random
/// stealing — the CPU half of the Concord-style runtime of Fig. 8. One
/// job (a data-parallel iteration space) runs at a time; workers split
/// stolen ranges recursively until they reach the job's grain size.
///
//===----------------------------------------------------------------------===//

#ifndef ECAS_RUNTIME_THREADPOOL_H
#define ECAS_RUNTIME_THREADPOOL_H

#include "ecas/obs/Trace.h"
#include "ecas/runtime/ChaseLevDeque.h"
#include "ecas/support/Cancellation.h"
#include "ecas/support/Random.h"
#include "ecas/support/ThreadAnnotations.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

namespace ecas {

/// Half-open iteration range [Begin, End).
struct IterRange {
  uint64_t Begin = 0;
  uint64_t End = 0;
  uint64_t size() const { return End - Begin; }
};

/// Kernel body: processes the half-open range [Begin, End) on the calling
/// worker. Must be safe to invoke concurrently on disjoint ranges.
using RangeBody = std::function<void(uint64_t Begin, uint64_t End)>;

/// Work-stealing thread pool executing one parallel job at a time.
class ThreadPool {
public:
  /// Spawns \p NumWorkers threads (0 = hardware concurrency).
  explicit ThreadPool(unsigned NumWorkers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  unsigned numWorkers() const { return static_cast<unsigned>(Workers.size()); }

  /// Runs \p Body over [Begin, End) with ranges no smaller than \p Grain
  /// (except tails), blocking until every iteration completed or the job
  /// was cancelled. The calling thread participates in the work.
  ///
  /// \p Cancel, when non-null, is polled (against the host steady clock
  /// for its deadline) at every range boundary — the CPU worker loop's
  /// cooperative cancellation point. On cancellation the remaining
  /// ranges are discarded without running \p Body and the call returns
  /// promptly. \returns the number of iterations actually executed
  /// (End - Begin unless cancelled).
  uint64_t parallelFor(uint64_t Begin, uint64_t End, uint64_t Grain,
                       const RangeBody &Body,
                       const CancellationToken *Cancel = nullptr);

  /// Lifetime total of successful steals — a scheduling-quality statistic
  /// surfaced by the micro-benchmarks.
  uint64_t totalSteals() const {
    return Steals.load(std::memory_order_relaxed);
  }

  /// Attaches a trace recorder (nullptr detaches): each parallelFor then
  /// emits one "parallel-for" span covering the job, with the range,
  /// grain, executed-iteration count, and steal delta in the detail.
  /// Observation only — range splitting, stealing, and cancellation are
  /// unchanged by an attached recorder.
  void setTrace(obs::TraceRecorder *Recorder) {
    Trace.store(Recorder, std::memory_order_release);
  }

private:
  struct Worker {
    ChaseLevDeque<IterRange> Deque;
    std::thread Thread;
  };

  /// State of the in-flight job; reset for each parallelFor. The fields
  /// are atomics because a worker lingering from the previous job may
  /// read them concurrently with the caller installing the next job; the
  /// release publication of the seed ranges orders the reads.
  struct Job {
    std::atomic<const RangeBody *> Body{nullptr};
    std::atomic<uint64_t> Grain{1};
    std::atomic<uint64_t> PendingIters{0};
    std::atomic<const CancellationToken *> Cancel{nullptr};
    /// Latched by the first worker that observes the token fire, so the
    /// rest short-circuit without re-reading the clock.
    std::atomic<bool> Cancelled{false};
    std::atomic<uint64_t> Executed{0};
  };

  /// True once this job should stop executing bodies (token fired).
  bool jobCancelled();
  void workerLoop(unsigned SelfIndex);
  /// Runs ranges from the worker's own deque, then steals. Returns when
  /// the job has no pending iterations.
  void drainJob(unsigned SelfIndex);
  /// Splits \p Range down to grain, keeping halves on SelfIndex's deque.
  void runRange(unsigned SelfIndex, IterRange Range);
  /// Pops a seeded chunk from the injection queue.
  bool takeInjected(IterRange &Out);
  /// Steals from random victims; fails after two full sweeps.
  bool stealFrom(Xoshiro256 &Rng, IterRange &Out);

  std::vector<std::unique_ptr<Worker>> Workers;
  Job CurrentJob;
  /// Seed chunks awaiting a first owner (callers cannot push onto a
  /// worker-owned deque, so parallelFor stages work here).
  std::vector<IterRange> Injected ECAS_GUARDED_BY(Mutex);
  /// Serializes concurrent parallelFor callers; the pool runs one job at
  /// a time. Acquired before ThreadPool.Queue (DESIGN.md §9): the
  /// caller stages seed chunks and bumps the epoch under Mutex while
  /// still holding the caller slot.
  AnnotatedMutex CallerMutex{"ThreadPool.Caller"};

  /// Guards the injection queue and the sleep/wake protocol.
  AnnotatedMutex Mutex{"ThreadPool.Queue"};
  std::condition_variable WorkAvailable;
  std::condition_variable JobDone;
  /// Incremented for each parallelFor; lets sleeping workers detect a
  /// fresh job without racing on pointers.
  std::atomic<uint64_t> JobEpoch{0};
  std::atomic<bool> ShuttingDown{false};
  std::atomic<uint64_t> Steals{0};
  std::atomic<obs::TraceRecorder *> Trace{nullptr};
};

} // namespace ecas

#endif // ECAS_RUNTIME_THREADPOOL_H
