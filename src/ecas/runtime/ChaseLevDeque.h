//===-- ecas/runtime/ChaseLevDeque.h - Work-stealing deque -----*- C++ -*-===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lock-free work-stealing deque (Chase & Lev, SPAA'05, with the C11
/// memory-order corrections of Lê et al., PPoPP'13). The owner pushes and
/// pops at the bottom; thieves steal from the top. This is the per-worker
/// queue of the Concord-style runtime in Section 4 ("our runtime
/// implements work-stealing on the CPU").
///
//===----------------------------------------------------------------------===//

#ifndef ECAS_RUNTIME_CHASELEVDEQUE_H
#define ECAS_RUNTIME_CHASELEVDEQUE_H

#include "ecas/support/Assert.h"

#include <atomic>
#include <cstdint>
#include <optional>

namespace ecas {

/// Work-stealing deque of trivially copyable elements.
///
/// Thread-safety contract: exactly one owner thread may call push() and
/// pop(); any number of threads may call steal() concurrently. The
/// deque is lock-free, so there is no capability to annotate (DESIGN.md
/// §9): the owner restriction is enforced structurally — each
/// ThreadPool worker owns exactly its own deque — and validated
/// dynamically under the TSan preset rather than by Clang's analysis,
/// which has no owner-thread concept.
template <typename T> class ChaseLevDeque {
  static_assert(std::is_trivially_copyable_v<T>,
                "ChaseLevDeque elements must be trivially copyable");

public:
  explicit ChaseLevDeque(uint64_t InitialCapacity = 64)
      : Buffer(new RingBuffer(roundUpPow2(InitialCapacity))) {}

  ChaseLevDeque(const ChaseLevDeque &) = delete;
  ChaseLevDeque &operator=(const ChaseLevDeque &) = delete;

  ~ChaseLevDeque() {
    RingBuffer *Buf = Buffer.load(std::memory_order_relaxed);
    while (Buf) {
      RingBuffer *Prev = Buf->Retired;
      delete Buf;
      Buf = Prev;
    }
  }

  /// Owner-only: appends at the bottom, growing the ring when full.
  void push(T Value) {
    int64_t B = Bottom.load(std::memory_order_relaxed);
    int64_t TIdx = Top.load(std::memory_order_acquire);
    RingBuffer *Buf = Buffer.load(std::memory_order_relaxed);
    if (B - TIdx >= static_cast<int64_t>(Buf->Capacity)) {
      Buf = grow(Buf, TIdx, B);
    }
    Buf->put(B, Value);
    std::atomic_thread_fence(std::memory_order_release);
    Bottom.store(B + 1, std::memory_order_relaxed);
  }

  /// Owner-only: removes from the bottom (LIFO). Empty -> nullopt.
  std::optional<T> pop() {
    int64_t B = Bottom.load(std::memory_order_relaxed) - 1;
    RingBuffer *Buf = Buffer.load(std::memory_order_relaxed);
    Bottom.store(B, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    int64_t TIdx = Top.load(std::memory_order_relaxed);
    if (TIdx > B) {
      // Deque was empty; restore.
      Bottom.store(B + 1, std::memory_order_relaxed);
      return std::nullopt;
    }
    T Value = Buf->get(B);
    if (TIdx != B)
      return Value; // More than one element: no race with thieves.
    // Single element: race the thieves for it.
    bool Won = Top.compare_exchange_strong(TIdx, TIdx + 1,
                                           std::memory_order_seq_cst,
                                           std::memory_order_relaxed);
    Bottom.store(B + 1, std::memory_order_relaxed);
    if (!Won)
      return std::nullopt;
    return Value;
  }

  /// Thief: removes from the top (FIFO). Empty or lost race -> nullopt.
  std::optional<T> steal() {
    int64_t TIdx = Top.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    int64_t B = Bottom.load(std::memory_order_acquire);
    if (TIdx >= B)
      return std::nullopt;
    RingBuffer *Buf = Buffer.load(std::memory_order_consume);
    T Value = Buf->get(TIdx);
    if (!Top.compare_exchange_strong(TIdx, TIdx + 1,
                                     std::memory_order_seq_cst,
                                     std::memory_order_relaxed))
      return std::nullopt;
    return Value;
  }

  /// Racy size estimate; exact only when quiescent.
  int64_t sizeEstimate() const {
    int64_t B = Bottom.load(std::memory_order_relaxed);
    int64_t TIdx = Top.load(std::memory_order_relaxed);
    return B > TIdx ? B - TIdx : 0;
  }

  bool emptyEstimate() const { return sizeEstimate() == 0; }

private:
  struct RingBuffer {
    explicit RingBuffer(uint64_t Cap)
        : Capacity(Cap), Mask(Cap - 1), Slots(new std::atomic<T>[Cap]) {}
    ~RingBuffer() { delete[] Slots; }

    void put(int64_t Index, T Value) {
      Slots[static_cast<uint64_t>(Index) & Mask].store(
          Value, std::memory_order_relaxed);
    }
    T get(int64_t Index) const {
      return Slots[static_cast<uint64_t>(Index) & Mask].load(
          std::memory_order_relaxed);
    }

    uint64_t Capacity;
    uint64_t Mask;
    std::atomic<T> *Slots;
    /// Chain of replaced buffers, freed with the deque. Thieves may still
    /// be reading a retired buffer, so reclamation must be deferred.
    RingBuffer *Retired = nullptr;
  };

  static uint64_t roundUpPow2(uint64_t X) {
    uint64_t P = 1;
    while (P < X)
      P <<= 1;
    return P < 8 ? 8 : P;
  }

  RingBuffer *grow(RingBuffer *Old, int64_t TIdx, int64_t B) {
    auto *Fresh = new RingBuffer(Old->Capacity * 2);
    for (int64_t I = TIdx; I != B; ++I)
      Fresh->put(I, Old->get(I));
    Fresh->Retired = Old;
    Buffer.store(Fresh, std::memory_order_release);
    return Fresh;
  }

  alignas(64) std::atomic<int64_t> Top{0};
  alignas(64) std::atomic<int64_t> Bottom{0};
  alignas(64) std::atomic<RingBuffer *> Buffer;
};

} // namespace ecas

#endif // ECAS_RUNTIME_CHASELEVDEQUE_H
