//===-- ecas/runtime/ChaseLevDeque.cpp - Work-stealing deque --------------===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// The deque is a header-only template; this file pins an explicit
// instantiation for the runtime's task type so template bugs surface when
// the library builds rather than at first client use.
//
//===----------------------------------------------------------------------===//

#include "ecas/runtime/ChaseLevDeque.h"

namespace ecas {

/// Iteration range task unit used by the thread pool's deques.
struct IterationRange {
  uint64_t Begin;
  uint64_t End;
};

template class ChaseLevDeque<IterationRange>;
template class ChaseLevDeque<uint64_t>;

} // namespace ecas
