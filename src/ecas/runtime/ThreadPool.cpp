//===-- ecas/runtime/ThreadPool.cpp - Work-stealing thread pool -----------===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ecas/runtime/ThreadPool.h"

#include "ecas/support/Assert.h"
#include "ecas/support/Random.h"

#include <algorithm>

using namespace ecas;

ThreadPool::ThreadPool(unsigned NumWorkers) {
  if (NumWorkers == 0) {
    NumWorkers = std::thread::hardware_concurrency();
    if (NumWorkers == 0)
      NumWorkers = 4;
  }
  Workers.reserve(NumWorkers);
  for (unsigned I = 0; I != NumWorkers; ++I)
    Workers.push_back(std::make_unique<Worker>());
  for (unsigned I = 0; I != NumWorkers; ++I)
    Workers[I]->Thread = std::thread([this, I] { workerLoop(I); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    ShuttingDown.store(true, std::memory_order_release);
  }
  WorkAvailable.notify_all();
  for (auto &W : Workers)
    if (W->Thread.joinable())
      W->Thread.join();
}

void ThreadPool::parallelFor(uint64_t Begin, uint64_t End, uint64_t Grain,
                             const RangeBody &Body) {
  if (End <= Begin)
    return;
  if (Grain == 0)
    Grain = 1;
  std::lock_guard<std::mutex> CallerLock(CallerMutex);

  const uint64_t Total = End - Begin;
  CurrentJob.Body = &Body;
  CurrentJob.Grain = Grain;
  CurrentJob.PendingIters.store(Total, std::memory_order_release);

  // Seed one contiguous chunk per worker. Workers refine their chunk via
  // recursive splitting, and imbalance evens out through stealing.
  const unsigned N = numWorkers();
  uint64_t Cursor = Begin;
  for (unsigned I = 0; I != N && Cursor < End; ++I) {
    uint64_t Size = (Total + N - 1) / N;
    uint64_t ChunkEnd = std::min(End, Cursor + Size);
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      Injected.push_back({Cursor, ChunkEnd});
    }
    Cursor = ChunkEnd;
  }
  JobEpoch.fetch_add(1, std::memory_order_acq_rel);
  WorkAvailable.notify_all();

  // The caller participates: grab injected or stolen ranges and execute
  // them in grain-sized pieces (the caller has no deque of its own).
  Xoshiro256 Rng(0x9e3779b9 + Total);
  while (CurrentJob.PendingIters.load(std::memory_order_acquire) != 0) {
    IterRange Range;
    if (!takeInjected(Range) && !stealFrom(Rng, Range)) {
      std::this_thread::yield();
      continue;
    }
    const RangeBody &Fn = *CurrentJob.Body;
    for (uint64_t Piece = Range.Begin; Piece < Range.End;) {
      uint64_t PieceEnd = std::min(Range.End, Piece + Grain);
      Fn(Piece, PieceEnd);
      CurrentJob.PendingIters.fetch_sub(PieceEnd - Piece,
                                        std::memory_order_acq_rel);
      Piece = PieceEnd;
    }
  }
}

bool ThreadPool::takeInjected(IterRange &Out) {
  std::lock_guard<std::mutex> Lock(Mutex);
  if (Injected.empty())
    return false;
  Out = Injected.back();
  Injected.pop_back();
  return true;
}

bool ThreadPool::stealFrom(Xoshiro256 &Rng, IterRange &Out) {
  const unsigned N = numWorkers();
  // Two sweeps over random victims before reporting failure.
  for (unsigned Attempt = 0; Attempt != 2 * N; ++Attempt) {
    unsigned Victim = static_cast<unsigned>(Rng.nextBounded(N));
    if (auto Stolen = Workers[Victim]->Deque.steal()) {
      Steals.fetch_add(1, std::memory_order_relaxed);
      Out = *Stolen;
      return true;
    }
  }
  return false;
}

void ThreadPool::runRange(unsigned SelfIndex, IterRange Range) {
  Worker &Self = *Workers[SelfIndex];
  const RangeBody &Fn = *CurrentJob.Body;
  const uint64_t Grain = CurrentJob.Grain;
  // Recursive halving: keep the lower half, expose the upper to thieves.
  while (Range.size() > Grain) {
    uint64_t Mid = Range.Begin + Range.size() / 2;
    Self.Deque.push({Mid, Range.End});
    Range.End = Mid;
  }
  Fn(Range.Begin, Range.End);
  CurrentJob.PendingIters.fetch_sub(Range.size(),
                                    std::memory_order_acq_rel);
}

void ThreadPool::drainJob(unsigned SelfIndex) {
  Worker &Self = *Workers[SelfIndex];
  Xoshiro256 Rng(0xabcdef12u + SelfIndex);
  unsigned IdleSpins = 0;
  while (CurrentJob.PendingIters.load(std::memory_order_acquire) != 0) {
    if (auto Own = Self.Deque.pop()) {
      runRange(SelfIndex, *Own);
      IdleSpins = 0;
      continue;
    }
    IterRange Range;
    if (takeInjected(Range) || stealFrom(Rng, Range)) {
      runRange(SelfIndex, Range);
      IdleSpins = 0;
      continue;
    }
    if (++IdleSpins > 16)
      std::this_thread::yield();
  }
}

void ThreadPool::workerLoop(unsigned SelfIndex) {
  uint64_t SeenEpoch = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      WorkAvailable.wait(Lock, [this, SeenEpoch] {
        return ShuttingDown.load(std::memory_order_acquire) ||
               JobEpoch.load(std::memory_order_acquire) != SeenEpoch;
      });
    }
    if (ShuttingDown.load(std::memory_order_acquire))
      return;
    SeenEpoch = JobEpoch.load(std::memory_order_acquire);
    drainJob(SelfIndex);
  }
}
