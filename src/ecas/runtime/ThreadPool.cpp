//===-- ecas/runtime/ThreadPool.cpp - Work-stealing thread pool -----------===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ecas/runtime/ThreadPool.h"

#include "ecas/support/Assert.h"
#include "ecas/support/Format.h"
#include "ecas/support/Random.h"

#include <algorithm>
#include <chrono>
#include <limits>

using namespace ecas;

static double hostSeconds() {
  using Clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(Clock::now().time_since_epoch())
      .count();
}

ThreadPool::ThreadPool(unsigned NumWorkers) {
  if (NumWorkers == 0) {
    NumWorkers = std::thread::hardware_concurrency();
    if (NumWorkers == 0)
      NumWorkers = 4;
  }
  Workers.reserve(NumWorkers);
  for (unsigned I = 0; I != NumWorkers; ++I)
    Workers.push_back(std::make_unique<Worker>());
  for (unsigned I = 0; I != NumWorkers; ++I)
    Workers[I]->Thread = std::thread([this, I] { workerLoop(I); });
}

ThreadPool::~ThreadPool() {
  {
    LockGuard Lock(Mutex);
    ShuttingDown.store(true, std::memory_order_release);
  }
  WorkAvailable.notify_all();
  for (auto &W : Workers)
    if (W->Thread.joinable())
      W->Thread.join();
}

bool ThreadPool::jobCancelled() {
  if (CurrentJob.Cancelled.load(std::memory_order_acquire))
    return true;
  const CancellationToken *Cancel =
      CurrentJob.Cancel.load(std::memory_order_acquire);
  if (Cancel && Cancel->shouldStop(hostSeconds())) {
    CurrentJob.Cancelled.store(true, std::memory_order_release);
    return true;
  }
  return false;
}

uint64_t ThreadPool::parallelFor(uint64_t Begin, uint64_t End, uint64_t Grain,
                                 const RangeBody &Body,
                                 const CancellationToken *Cancel) {
  if (End <= Begin)
    return 0;
  if (Grain == 0)
    Grain = 1;
  LockGuard CallerLock(CallerMutex);
  obs::TraceRecorder *T = Trace.load(std::memory_order_acquire);
  double TraceStart = T ? obs::TraceRecorder::hostSeconds() : 0.0;
  uint64_t StealsBefore = T ? totalSteals() : 0;

  const uint64_t Total = End - Begin;
  CurrentJob.Body.store(&Body, std::memory_order_relaxed);
  CurrentJob.Grain.store(Grain, std::memory_order_relaxed);
  CurrentJob.Cancel.store(Cancel, std::memory_order_relaxed);
  CurrentJob.Cancelled.store(false, std::memory_order_relaxed);
  CurrentJob.Executed.store(0, std::memory_order_relaxed);
  CurrentJob.PendingIters.store(Total, std::memory_order_release);

  // Seed one contiguous chunk per worker. Workers refine their chunk via
  // recursive splitting, and imbalance evens out through stealing. The
  // mutexed publication of each chunk also publishes the job fields
  // stored above to whoever acquires the range.
  const unsigned N = numWorkers();
  uint64_t Cursor = Begin;
  for (unsigned I = 0; I != N && Cursor < End; ++I) {
    uint64_t Size = (Total + N - 1) / N;
    uint64_t ChunkEnd = std::min(End, Cursor + Size);
    {
      LockGuard Lock(Mutex);
      Injected.push_back({Cursor, ChunkEnd});
    }
    Cursor = ChunkEnd;
  }
  {
    // Bump the epoch under the mutex: a worker evaluating the wait
    // predicate cannot then miss the notification (lost-wakeup race).
    LockGuard Lock(Mutex);
    JobEpoch.fetch_add(1, std::memory_order_acq_rel);
  }
  WorkAvailable.notify_all();

  // The caller participates: grab injected or stolen ranges and execute
  // them in grain-sized pieces (the caller has no deque of its own).
  Xoshiro256 Rng(0x9e3779b9 + Total);
  while (CurrentJob.PendingIters.load(std::memory_order_acquire) != 0) {
    IterRange Range;
    if (!takeInjected(Range) && !stealFrom(Rng, Range)) {
      std::this_thread::yield();
      continue;
    }
    if (jobCancelled()) {
      CurrentJob.PendingIters.fetch_sub(Range.size(),
                                        std::memory_order_acq_rel);
      continue;
    }
    const RangeBody &Fn = Body;
    for (uint64_t Piece = Range.Begin; Piece < Range.End;) {
      uint64_t PieceEnd = std::min(Range.End, Piece + Grain);
      Fn(Piece, PieceEnd);
      CurrentJob.Executed.fetch_add(PieceEnd - Piece,
                                    std::memory_order_relaxed);
      CurrentJob.PendingIters.fetch_sub(PieceEnd - Piece,
                                        std::memory_order_acq_rel);
      Piece = PieceEnd;
      if (jobCancelled()) {
        CurrentJob.PendingIters.fetch_sub(Range.End - Piece,
                                          std::memory_order_acq_rel);
        break;
      }
    }
  }
  // Drop the token before the caller's stack frame (which may own it)
  // unwinds; lingering workers only ever see null or the live pointer.
  CurrentJob.Cancel.store(nullptr, std::memory_order_release);
  uint64_t Executed = CurrentJob.Executed.load(std::memory_order_acquire);
  if (T) {
    T->completeSpan(
        "runtime", "parallel-for", TraceStart,
        obs::TraceRecorder::hostSeconds() - TraceStart,
        std::numeric_limits<double>::quiet_NaN(),
        formatString("range=[%llu,%llu) grain=%llu executed=%llu steals=%llu",
                     static_cast<unsigned long long>(Begin),
                     static_cast<unsigned long long>(End),
                     static_cast<unsigned long long>(Grain),
                     static_cast<unsigned long long>(Executed),
                     static_cast<unsigned long long>(totalSteals() -
                                                     StealsBefore)));
    T->count("pool.parallel_fors");
    T->count("pool.iterations", static_cast<double>(Executed));
  }
  return Executed;
}

bool ThreadPool::takeInjected(IterRange &Out) {
  LockGuard Lock(Mutex);
  if (Injected.empty())
    return false;
  Out = Injected.back();
  Injected.pop_back();
  return true;
}

bool ThreadPool::stealFrom(Xoshiro256 &Rng, IterRange &Out) {
  const unsigned N = numWorkers();
  // Two sweeps over random victims before reporting failure.
  for (unsigned Attempt = 0; Attempt != 2 * N; ++Attempt) {
    unsigned Victim = static_cast<unsigned>(Rng.nextBounded(N));
    if (auto Stolen = Workers[Victim]->Deque.steal()) {
      Steals.fetch_add(1, std::memory_order_relaxed);
      Out = *Stolen;
      return true;
    }
  }
  return false;
}

void ThreadPool::runRange(unsigned SelfIndex, IterRange Range) {
  // Cooperative cancellation point: a cancelled job's ranges are
  // discarded (counted off, never executed) so the job drains promptly.
  if (jobCancelled()) {
    CurrentJob.PendingIters.fetch_sub(Range.size(),
                                      std::memory_order_acq_rel);
    return;
  }
  Worker &Self = *Workers[SelfIndex];
  // The acquire loads pair with the release publication of the range we
  // just acquired, so these reads see the owning job's fields.
  const RangeBody &Fn = *CurrentJob.Body.load(std::memory_order_acquire);
  const uint64_t Grain = CurrentJob.Grain.load(std::memory_order_acquire);
  // Recursive halving: keep the lower half, expose the upper to thieves.
  while (Range.size() > Grain) {
    uint64_t Mid = Range.Begin + Range.size() / 2;
    Self.Deque.push({Mid, Range.End});
    Range.End = Mid;
  }
  Fn(Range.Begin, Range.End);
  CurrentJob.Executed.fetch_add(Range.size(), std::memory_order_relaxed);
  CurrentJob.PendingIters.fetch_sub(Range.size(),
                                    std::memory_order_acq_rel);
}

void ThreadPool::drainJob(unsigned SelfIndex) {
  Worker &Self = *Workers[SelfIndex];
  Xoshiro256 Rng(0xabcdef12u + SelfIndex);
  unsigned IdleSpins = 0;
  while (CurrentJob.PendingIters.load(std::memory_order_acquire) != 0) {
    if (auto Own = Self.Deque.pop()) {
      runRange(SelfIndex, *Own);
      IdleSpins = 0;
      continue;
    }
    IterRange Range;
    if (takeInjected(Range) || stealFrom(Rng, Range)) {
      runRange(SelfIndex, Range);
      IdleSpins = 0;
      continue;
    }
    if (++IdleSpins > 16)
      std::this_thread::yield();
  }
}

void ThreadPool::workerLoop(unsigned SelfIndex) {
  uint64_t SeenEpoch = 0;
  while (true) {
    {
      UniqueLock Lock(Mutex);
      WorkAvailable.wait(Lock.native(), [this, SeenEpoch] {
        return ShuttingDown.load(std::memory_order_acquire) ||
               JobEpoch.load(std::memory_order_acquire) != SeenEpoch;
      });
    }
    if (ShuttingDown.load(std::memory_order_acquire))
      return;
    SeenEpoch = JobEpoch.load(std::memory_order_acquire);
    drainJob(SelfIndex);
  }
}
