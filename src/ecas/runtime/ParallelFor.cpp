//===-- ecas/runtime/ParallelFor.cpp - Concord-style parallel_for ---------===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ecas/runtime/ParallelFor.h"

#include "ecas/support/Assert.h"

#include <algorithm>
#include <chrono>

using namespace ecas;

IterRange WorkPool::grab(uint64_t MaxChunk) {
  if (MaxChunk == 0)
    MaxChunk = 1;
  uint64_t Begin = Next.fetch_add(MaxChunk, std::memory_order_relaxed);
  if (Begin >= End)
    return IterRange{End, End};
  return IterRange{Begin, std::min(End, Begin + MaxChunk)};
}

uint64_t WorkPool::remaining() const {
  uint64_t Cursor = Next.load(std::memory_order_relaxed);
  return Cursor >= End ? 0 : End - Cursor;
}

uint64_t ecas::parallelFor(ThreadPool &Pool, uint64_t N, const RangeBody &Body,
                           uint64_t Grain, const CancellationToken *Cancel) {
  return Pool.parallelFor(0, N, Grain, Body, Cancel);
}

namespace {

/// Monotonic wall-clock seconds.
double hostSeconds() {
  using Clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(Clock::now().time_since_epoch())
      .count();
}

} // namespace

HybridResult ecas::hybridParallelFor(ThreadPool &Pool, uint64_t N,
                                     double Alpha, const RangeBody &CpuBody,
                                     const GpuExecutor &Gpu, uint64_t Grain,
                                     const CancellationToken *Cancel) {
  ECAS_CHECK(Alpha >= 0.0 && Alpha <= 1.0, "alpha must be in [0,1]");
  HybridResult Result;
  if (Cancel && Cancel->shouldStop(hostSeconds())) {
    Result.Cancelled = true;
    return Result;
  }
  uint64_t GpuIters = static_cast<uint64_t>(Alpha * static_cast<double>(N));
  GpuIters = std::min(GpuIters, N);
  uint64_t CpuEnd = N - GpuIters;
  Result.GpuIterations = GpuIters;

  // The GPU proxy is one dedicated thread driving the executor, exactly
  // like the proxy CPU worker of Section 3.1. Once launched the GPU
  // share runs to completion — only the executor itself (e.g. MiniCl's
  // token-aware wait) can cut it short.
  std::thread Proxy;
  double GpuStart = hostSeconds();
  if (GpuIters > 0)
    Proxy = std::thread([&Gpu, CpuEnd, N, &Result, GpuStart] {
      Gpu(CpuEnd, N);
      Result.GpuSeconds = hostSeconds() - GpuStart;
    });

  if (CpuEnd > 0) {
    double CpuStart = hostSeconds();
    Result.CpuIterations = Pool.parallelFor(0, CpuEnd, Grain, CpuBody, Cancel);
    Result.CpuSeconds = hostSeconds() - CpuStart;
  }
  if (Proxy.joinable())
    Proxy.join();
  if (Result.CpuIterations != CpuEnd ||
      (Cancel && Cancel->shouldStop(hostSeconds())))
    Result.Cancelled = true;
  return Result;
}

HybridResult ecas::profileChunkOnHost(WorkPool &Pool, uint64_t GpuChunk,
                                      unsigned Threads,
                                      const RangeBody &CpuBody,
                                      const GpuExecutor &Gpu,
                                      uint64_t CpuGrab,
                                      const CancellationToken *Cancel) {
  HybridResult Result;
  if (Cancel && Cancel->shouldStop(hostSeconds())) {
    Result.Cancelled = true;
    return Result;
  }
  IterRange GpuRange = Pool.grab(GpuChunk);
  Result.GpuIterations = GpuRange.size();

  std::atomic<bool> Stop{false};
  std::atomic<uint64_t> CpuDone{0};
  std::vector<std::thread> CpuWorkers;
  CpuWorkers.reserve(Threads);
  double CpuStart = hostSeconds();
  for (unsigned I = 0; I != Threads; ++I)
    CpuWorkers.emplace_back([&] {
      // The grab loop is the CPU worker's cooperative cancellation
      // point: the token is polled between chunks, so a fired token
      // stops a worker after at most one CpuGrab-sized chunk.
      while (!Stop.load(std::memory_order_acquire)) {
        if (Cancel && Cancel->shouldStop(hostSeconds()))
          return;
        IterRange Range = Pool.grab(CpuGrab);
        if (Range.size() == 0)
          return;
        CpuBody(Range.Begin, Range.End);
        CpuDone.fetch_add(Range.size(), std::memory_order_relaxed);
      }
    });

  double GpuStart = hostSeconds();
  if (GpuRange.size() > 0)
    Gpu(GpuRange.Begin, GpuRange.End);
  Result.GpuSeconds = hostSeconds() - GpuStart;

  // The proxy terminates the CPU workers as soon as the GPU completes
  // (Fig. 7 step 33); the current chunk of each worker finishes first.
  Stop.store(true, std::memory_order_release);
  for (std::thread &Worker : CpuWorkers)
    Worker.join();
  Result.CpuSeconds = hostSeconds() - CpuStart;
  Result.CpuIterations = CpuDone.load(std::memory_order_relaxed);
  if (Cancel && Cancel->shouldStop(hostSeconds()))
    Result.Cancelled = true;
  return Result;
}
