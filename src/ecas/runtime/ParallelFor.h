//===-- ecas/runtime/ParallelFor.h - Concord-style parallel_for *- C++ -*-===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The host-side data-parallel API mirroring Concord's parallel_for and
/// the hybrid CPU+GPU execution structure of Fig. 8: a shared global
/// iteration pool, CPU workers with work-stealing, and one GPU proxy
/// offloading a contiguous chunk to a pluggable GPU executor. On this
/// repository the executor is simulated or thread-backed; a real OpenCL
/// backend would implement the same hook.
///
//===----------------------------------------------------------------------===//

#ifndef ECAS_RUNTIME_PARALLELFOR_H
#define ECAS_RUNTIME_PARALLELFOR_H

#include "ecas/runtime/ThreadPool.h"

namespace ecas {

/// Shared global pool of loop iterations; workers atomically grab chunks
/// (Fig. 7, OnlineProfile step 30: "atomically grabbing work from shared
/// counter").
class WorkPool {
public:
  explicit WorkPool(uint64_t Total) : Next(0), End(Total) {}

  /// Grabs up to \p MaxChunk iterations. An empty range (size() == 0)
  /// signals exhaustion.
  IterRange grab(uint64_t MaxChunk);

  /// Iterations not yet handed out. Racy under concurrency; exact once
  /// quiescent.
  uint64_t remaining() const;

  uint64_t total() const { return End; }

private:
  std::atomic<uint64_t> Next;
  uint64_t End;
};

/// Executes [Begin, End) on the "GPU" and returns when it completes.
using GpuExecutor = std::function<void(uint64_t Begin, uint64_t End)>;

/// Outcome of one hybrid CPU+GPU execution.
struct HybridResult {
  uint64_t CpuIterations = 0;
  uint64_t GpuIterations = 0;
  /// Wall-clock seconds each side spent busy (host steady clock).
  double CpuSeconds = 0.0;
  double GpuSeconds = 0.0;
  /// The run was cut short by a cancellation token; the iteration counts
  /// above cover only what actually executed.
  bool Cancelled = false;
};

/// Convenience wrapper: CPU-only parallel_for over [0, N).
/// \returns iterations executed (N unless \p Cancel fired).
uint64_t parallelFor(ThreadPool &Pool, uint64_t N, const RangeBody &Body,
                     uint64_t Grain = 256,
                     const CancellationToken *Cancel = nullptr);

/// Partitioned execution per Fig. 7 steps 23-25: the GPU proxy offloads
/// the tail Alpha*N iterations to \p Gpu while the CPU side executes the
/// head ((1-Alpha)*N) with work-stealing. Blocks until both finish.
/// \p Cancel bounds the CPU side cooperatively and is checked before the
/// GPU share is launched; a GPU executor that can observe the token
/// should poll it too (the MiniCl layer's waits do).
HybridResult hybridParallelFor(ThreadPool &Pool, uint64_t N, double Alpha,
                               const RangeBody &CpuBody,
                               const GpuExecutor &Gpu, uint64_t Grain = 256,
                               const CancellationToken *Cancel = nullptr);

/// Host-side adaptive profiling chunk (Fig. 7 steps 28-35): offloads
/// \p GpuChunk iterations from \p Pool to the GPU proxy while \p Threads
/// CPU workers drain the shared pool; CPU workers halt when the GPU
/// finishes. Returns iteration counts and busy seconds for throughput
/// estimation. \p Cancel is polled between CPU grabs (the worker loop's
/// cancellation point) and before the GPU chunk launches.
HybridResult profileChunkOnHost(WorkPool &Pool, uint64_t GpuChunk,
                                unsigned Threads, const RangeBody &CpuBody,
                                const GpuExecutor &Gpu,
                                uint64_t CpuGrab = 64,
                                const CancellationToken *Cancel = nullptr);

} // namespace ecas

#endif // ECAS_RUNTIME_PARALLELFOR_H
