//===-- ecas/math/PolyFit.cpp - Least-squares polynomial fitting ----------===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ecas/math/PolyFit.h"

#include "ecas/math/Matrix.h"
#include "ecas/support/Assert.h"
#include "ecas/support/Stats.h"

using namespace ecas;

std::optional<FitResult> ecas::fitPolynomial(const std::vector<double> &Xs,
                                             const std::vector<double> &Ys,
                                             unsigned Degree,
                                             FitMethod Method) {
  ECAS_CHECK(Xs.size() == Ys.size(), "polyfit sample size mismatch");
  const size_t NumSamples = Xs.size();
  const size_t NumCoeffs = static_cast<size_t>(Degree) + 1;
  if (NumSamples < NumCoeffs)
    return std::nullopt;

  Matrix Vandermonde(NumSamples, NumCoeffs);
  for (size_t Row = 0; Row != NumSamples; ++Row) {
    double Power = 1.0;
    for (size_t Col = 0; Col != NumCoeffs; ++Col) {
      Vandermonde.at(Row, Col) = Power;
      Power *= Xs[Row];
    }
  }

  std::vector<double> Coeffs;
  bool Solved = false;
  switch (Method) {
  case FitMethod::QR:
    Solved = Vandermonde.solveLeastSquares(Ys, Coeffs);
    break;
  case FitMethod::NormalEquations: {
    Matrix Vt = Vandermonde.transposed();
    Matrix Gram = Vt.multiply(Vandermonde);
    std::vector<double> Rhs = Vt.multiply(Ys);
    Solved = Gram.solveLinear(Rhs, Coeffs);
    break;
  }
  }
  if (!Solved)
    return std::nullopt;

  FitResult Result;
  Result.Poly = Polynomial(std::move(Coeffs));
  std::vector<double> Fit = Result.Poly.evaluateMany(Xs);
  Result.RSquared = rSquared(Ys, Fit);
  Result.RmsError = rmsError(Ys, Fit);
  return Result;
}
