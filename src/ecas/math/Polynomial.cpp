//===-- ecas/math/Polynomial.cpp - Dense univariate polynomials -----------===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ecas/math/Polynomial.h"

#include "ecas/support/Assert.h"
#include "ecas/support/Format.h"

#include <algorithm>
#include <cmath>

using namespace ecas;

Polynomial::Polynomial(std::vector<double> Coefficients)
    : Coeffs(std::move(Coefficients)) {}

unsigned Polynomial::degree() const {
  return Coeffs.empty() ? 0 : static_cast<unsigned>(Coeffs.size() - 1);
}

double Polynomial::evaluate(double X) const {
  double Acc = 0.0;
  for (size_t IdxPlus1 = Coeffs.size(); IdxPlus1 != 0; --IdxPlus1)
    Acc = Acc * X + Coeffs[IdxPlus1 - 1];
  return Acc;
}

Polynomial Polynomial::derivative() const {
  if (Coeffs.size() <= 1)
    return Polynomial(std::vector<double>{0.0});
  std::vector<double> Out(Coeffs.size() - 1);
  for (size_t K = 1; K != Coeffs.size(); ++K)
    Out[K - 1] = Coeffs[K] * static_cast<double>(K);
  return Polynomial(std::move(Out));
}

std::vector<double>
Polynomial::evaluateMany(const std::vector<double> &Xs) const {
  std::vector<double> Ys;
  Ys.reserve(Xs.size());
  for (double X : Xs)
    Ys.push_back(evaluate(X));
  return Ys;
}

double Polynomial::minimumOn(double Lo, double Hi, double &ArgMin) const {
  ECAS_CHECK(Lo <= Hi, "minimumOn requires Lo <= Hi");
  double BestX = Lo;
  double BestY = evaluate(Lo);
  auto Consider = [&](double X) {
    double Y = evaluate(X);
    if (Y < BestY) {
      BestY = Y;
      BestX = X;
    }
  };
  Consider(Hi);

  // Locate interior critical points: scan the derivative on a fine grid and
  // bisect each sign change. Degree <= 8 polynomials have few roots, so a
  // 512-cell grid comfortably separates them.
  Polynomial Deriv = derivative();
  constexpr int GridCells = 512;
  double PrevX = Lo;
  double PrevD = Deriv.evaluate(Lo);
  for (int Cell = 1; Cell <= GridCells; ++Cell) {
    double X = Lo + (Hi - Lo) * static_cast<double>(Cell) / GridCells;
    double D = Deriv.evaluate(X);
    if ((PrevD < 0.0 && D >= 0.0) || (PrevD > 0.0 && D <= 0.0)) {
      double A = PrevX, B = X, Fa = PrevD;
      for (int Iter = 0; Iter != 60; ++Iter) {
        double Mid = 0.5 * (A + B);
        double Fm = Deriv.evaluate(Mid);
        if ((Fa < 0.0) == (Fm < 0.0)) {
          A = Mid;
          Fa = Fm;
        } else {
          B = Mid;
        }
      }
      Consider(0.5 * (A + B));
    }
    PrevX = X;
    PrevD = D;
  }
  ArgMin = BestX;
  return BestY;
}

std::string Polynomial::toEquationString() const {
  if (Coeffs.empty())
    return "y = 0";
  std::string Out = "y = ";
  bool First = true;
  for (size_t IdxPlus1 = Coeffs.size(); IdxPlus1 != 0; --IdxPlus1) {
    size_t K = IdxPlus1 - 1;
    double C = Coeffs[K];
    if (C == 0.0 && Coeffs.size() > 1)
      continue;
    if (First) {
      Out += formatString("%.4g", C);
      First = false;
    } else {
      Out += C < 0.0 ? " - " : " + ";
      Out += formatString("%.4g", std::fabs(C));
    }
    if (K == 1)
      Out += "*x";
    else if (K > 1)
      Out += formatString("*x^%zu", K);
  }
  if (First)
    Out += "0";
  return Out;
}

Polynomial Polynomial::plus(const Polynomial &Rhs) const {
  std::vector<double> Out(std::max(Coeffs.size(), Rhs.Coeffs.size()), 0.0);
  for (size_t K = 0; K != Coeffs.size(); ++K)
    Out[K] += Coeffs[K];
  for (size_t K = 0; K != Rhs.Coeffs.size(); ++K)
    Out[K] += Rhs.Coeffs[K];
  return Polynomial(std::move(Out));
}

Polynomial Polynomial::minus(const Polynomial &Rhs) const {
  return plus(Rhs.scaled(-1.0));
}

Polynomial Polynomial::scaled(double Factor) const {
  std::vector<double> Out = Coeffs;
  for (double &C : Out)
    C *= Factor;
  return Polynomial(std::move(Out));
}
