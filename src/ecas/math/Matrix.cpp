//===-- ecas/math/Matrix.cpp - Small dense matrices -----------------------===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ecas/math/Matrix.h"

#include "ecas/support/Assert.h"

#include <cmath>

using namespace ecas;

Matrix Matrix::identity(size_t N) {
  Matrix M(N, N);
  for (size_t I = 0; I != N; ++I)
    M.at(I, I) = 1.0;
  return M;
}

double &Matrix::at(size_t Row, size_t Col) {
  assert(Row < RowCount && Col < ColCount && "matrix index out of range");
  return Data[Row * ColCount + Col];
}

double Matrix::at(size_t Row, size_t Col) const {
  assert(Row < RowCount && Col < ColCount && "matrix index out of range");
  return Data[Row * ColCount + Col];
}

Matrix Matrix::transposed() const {
  Matrix T(ColCount, RowCount);
  for (size_t R = 0; R != RowCount; ++R)
    for (size_t C = 0; C != ColCount; ++C)
      T.at(C, R) = at(R, C);
  return T;
}

Matrix Matrix::multiply(const Matrix &Rhs) const {
  ECAS_CHECK(ColCount == Rhs.RowCount, "matrix multiply shape mismatch");
  Matrix Out(RowCount, Rhs.ColCount);
  for (size_t R = 0; R != RowCount; ++R) {
    for (size_t K = 0; K != ColCount; ++K) {
      double Lhs = at(R, K);
      if (Lhs == 0.0)
        continue;
      for (size_t C = 0; C != Rhs.ColCount; ++C)
        Out.at(R, C) += Lhs * Rhs.at(K, C);
    }
  }
  return Out;
}

std::vector<double> Matrix::multiply(const std::vector<double> &Vec) const {
  ECAS_CHECK(Vec.size() == ColCount, "matrix-vector shape mismatch");
  std::vector<double> Out(RowCount, 0.0);
  for (size_t R = 0; R != RowCount; ++R) {
    double Sum = 0.0;
    for (size_t C = 0; C != ColCount; ++C)
      Sum += at(R, C) * Vec[C];
    Out[R] = Sum;
  }
  return Out;
}

bool Matrix::solveLinear(const std::vector<double> &B,
                         std::vector<double> &X) const {
  ECAS_CHECK(RowCount == ColCount, "solveLinear requires a square matrix");
  ECAS_CHECK(B.size() == RowCount, "solveLinear rhs size mismatch");
  const size_t N = RowCount;
  Matrix A = *this; // Working copy for in-place elimination.
  std::vector<double> Rhs = B;

  for (size_t Col = 0; Col != N; ++Col) {
    // Partial pivoting: move the largest-magnitude entry into the pivot row.
    size_t Pivot = Col;
    double Best = std::fabs(A.at(Col, Col));
    for (size_t Row = Col + 1; Row != N; ++Row) {
      double Cand = std::fabs(A.at(Row, Col));
      if (Cand > Best) {
        Best = Cand;
        Pivot = Row;
      }
    }
    if (Best < 1e-300)
      return false;
    if (Pivot != Col) {
      for (size_t C = 0; C != N; ++C)
        std::swap(A.at(Pivot, C), A.at(Col, C));
      std::swap(Rhs[Pivot], Rhs[Col]);
    }
    double Inv = 1.0 / A.at(Col, Col);
    for (size_t Row = Col + 1; Row != N; ++Row) {
      double Factor = A.at(Row, Col) * Inv;
      if (Factor == 0.0)
        continue;
      A.at(Row, Col) = 0.0;
      for (size_t C = Col + 1; C != N; ++C)
        A.at(Row, C) -= Factor * A.at(Col, C);
      Rhs[Row] -= Factor * Rhs[Col];
    }
  }

  X.assign(N, 0.0);
  for (size_t RowPlus1 = N; RowPlus1 != 0; --RowPlus1) {
    size_t Row = RowPlus1 - 1;
    double Sum = Rhs[Row];
    for (size_t C = Row + 1; C != N; ++C)
      Sum -= A.at(Row, C) * X[C];
    X[Row] = Sum / A.at(Row, Row);
  }
  return true;
}

bool Matrix::solveLeastSquares(const std::vector<double> &B,
                               std::vector<double> &X) const {
  ECAS_CHECK(RowCount >= ColCount,
             "least squares requires at least as many rows as columns");
  ECAS_CHECK(B.size() == RowCount, "least squares rhs size mismatch");
  const size_t M = RowCount, N = ColCount;
  Matrix A = *this;
  std::vector<double> Rhs = B;

  // Householder QR: reduce A to upper-triangular R, applying the same
  // reflections to the right-hand side. The triangular solve on the top
  // N rows then yields the least-squares solution.
  for (size_t Col = 0; Col != N; ++Col) {
    double Norm = 0.0;
    for (size_t Row = Col; Row != M; ++Row)
      Norm += A.at(Row, Col) * A.at(Row, Col);
    Norm = std::sqrt(Norm);
    if (Norm < 1e-300)
      return false;
    if (A.at(Col, Col) > 0.0)
      Norm = -Norm;

    // Householder vector V is stored temporarily in column Col.
    double VHead = A.at(Col, Col) - Norm;
    std::vector<double> V(M - Col);
    V[0] = VHead;
    for (size_t Row = Col + 1; Row != M; ++Row)
      V[Row - Col] = A.at(Row, Col);
    double VNormSq = 0.0;
    for (double Entry : V)
      VNormSq += Entry * Entry;
    if (VNormSq < 1e-300)
      return false;
    double Beta = 2.0 / VNormSq;

    // Apply the reflection to the remaining columns and the RHS.
    for (size_t C = Col; C != N; ++C) {
      double Dot = 0.0;
      for (size_t Row = Col; Row != M; ++Row)
        Dot += V[Row - Col] * A.at(Row, C);
      Dot *= Beta;
      for (size_t Row = Col; Row != M; ++Row)
        A.at(Row, C) -= Dot * V[Row - Col];
    }
    double Dot = 0.0;
    for (size_t Row = Col; Row != M; ++Row)
      Dot += V[Row - Col] * Rhs[Row];
    Dot *= Beta;
    for (size_t Row = Col; Row != M; ++Row)
      Rhs[Row] -= Dot * V[Row - Col];
  }

  X.assign(N, 0.0);
  for (size_t ColPlus1 = N; ColPlus1 != 0; --ColPlus1) {
    size_t Col = ColPlus1 - 1;
    double Diag = A.at(Col, Col);
    if (std::fabs(Diag) < 1e-12 * (1.0 + maxAbs()))
      return false;
    double Sum = Rhs[Col];
    for (size_t C = Col + 1; C != N; ++C)
      Sum -= A.at(Col, C) * X[C];
    X[Col] = Sum / Diag;
  }
  return true;
}

double Matrix::maxAbs() const {
  double Best = 0.0;
  for (double V : Data)
    Best = std::max(Best, std::fabs(V));
  return Best;
}
