//===-- ecas/math/Minimize.h - 1-D minimization primitives -----*- C++ -*-===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One-dimensional minimizers used by the alpha search of Section 3.2.
/// The paper evaluates the objective on a fixed grid (0.1 or 0.05 steps);
/// we implement that, plus a golden-section refinement around the best
/// grid cell as an extension ablation.
///
/// The minimizers are templates over the objective callable rather than
/// taking std::function: chooseAlpha() sits on the ECAS_HOT decision
/// path, and wrapping its five-reference-capture lambda in a
/// std::function exceeds libstdc++'s 16-byte small-buffer optimization —
/// one heap allocation per alpha search (caught by the AllocGuard
/// regression and ecas-hotpath's alloc rule; see DESIGN.md §14).
///
//===----------------------------------------------------------------------===//

#ifndef ECAS_MATH_MINIMIZE_H
#define ECAS_MATH_MINIMIZE_H

#include "ecas/support/Assert.h"
#include "ecas/support/HotPath.h"

#include <algorithm>
#include <cmath>

namespace ecas {

/// Outcome of a scalar minimization.
struct MinResult {
  double ArgMin = 0.0;
  double Value = 0.0;
  unsigned Evaluations = 0;
};

/// Evaluates \p Fn at Lo, Lo+Step, ..., Hi (inclusive, with the last point
/// clamped to Hi) and returns the minimizing sample. Ties keep the
/// smallest argument, matching the deterministic behaviour expected by
/// the scheduler's regression tests.
template <typename FnT>
ECAS_HOT MinResult minimizeOnGrid(const FnT &Fn, double Lo, double Hi,
                                  double Step) {
  ECAS_CHECK(Lo <= Hi, "minimizeOnGrid requires Lo <= Hi");
  ECAS_CHECK(Step > 0.0, "minimizeOnGrid requires a positive step");
  MinResult Result;
  Result.ArgMin = Lo;
  Result.Value = Fn(Lo);
  Result.Evaluations = 1;
  bool ReachedHi = (Lo == Hi);
  for (double X = Lo + Step; !ReachedHi; X += Step) {
    if (X >= Hi - 1e-12 * std::max(1.0, std::fabs(Hi))) {
      X = Hi;
      ReachedHi = true;
    }
    double Y = Fn(X);
    ++Result.Evaluations;
    if (Y < Result.Value) {
      Result.Value = Y;
      Result.ArgMin = X;
    }
  }
  return Result;
}

/// Golden-section search on [Lo, Hi]; assumes unimodality on the bracket.
/// Runs until the bracket shrinks below \p Tolerance.
template <typename FnT>
ECAS_HOT MinResult minimizeGoldenSection(const FnT &Fn, double Lo, double Hi,
                                         double Tolerance) {
  ECAS_CHECK(Lo <= Hi, "minimizeGoldenSection requires Lo <= Hi");
  ECAS_CHECK(Tolerance > 0.0, "tolerance must be positive");
  constexpr double InvPhi = 0.6180339887498949;
  MinResult Result;
  double A = Lo, B = Hi;
  double C = B - (B - A) * InvPhi;
  double D = A + (B - A) * InvPhi;
  double Fc = Fn(C), Fd = Fn(D);
  Result.Evaluations = 2;
  while (B - A > Tolerance) {
    if (Fc < Fd) {
      B = D;
      D = C;
      Fd = Fc;
      C = B - (B - A) * InvPhi;
      Fc = Fn(C);
    } else {
      A = C;
      C = D;
      Fc = Fd;
      D = A + (B - A) * InvPhi;
      Fd = Fn(D);
    }
    ++Result.Evaluations;
  }
  if (Fc < Fd) {
    Result.ArgMin = C;
    Result.Value = Fc;
  } else {
    Result.ArgMin = D;
    Result.Value = Fd;
  }
  return Result;
}

/// Grid scan followed by golden-section refinement one grid cell either
/// side of the best sample. Robust to multimodal objectives at grid
/// resolution while sharpening the final answer.
template <typename FnT>
ECAS_HOT MinResult minimizeGridThenRefine(const FnT &Fn, double Lo, double Hi,
                                          double Step, double Tolerance) {
  MinResult Coarse = minimizeOnGrid(Fn, Lo, Hi, Step);
  double RefineLo = std::max(Lo, Coarse.ArgMin - Step);
  double RefineHi = std::min(Hi, Coarse.ArgMin + Step);
  MinResult Fine = minimizeGoldenSection(Fn, RefineLo, RefineHi, Tolerance);
  Fine.Evaluations += Coarse.Evaluations;
  // The refinement bracket may be multimodal; never return something worse
  // than the grid answer.
  if (Coarse.Value < Fine.Value) {
    Fine.ArgMin = Coarse.ArgMin;
    Fine.Value = Coarse.Value;
  }
  return Fine;
}

} // namespace ecas

#endif // ECAS_MATH_MINIMIZE_H
