//===-- ecas/math/Minimize.h - 1-D minimization primitives -----*- C++ -*-===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One-dimensional minimizers used by the alpha search of Section 3.2.
/// The paper evaluates the objective on a fixed grid (0.1 or 0.05 steps);
/// we implement that, plus a golden-section refinement around the best
/// grid cell as an extension ablation.
///
//===----------------------------------------------------------------------===//

#ifndef ECAS_MATH_MINIMIZE_H
#define ECAS_MATH_MINIMIZE_H

#include <functional>

namespace ecas {

/// Outcome of a scalar minimization.
struct MinResult {
  double ArgMin = 0.0;
  double Value = 0.0;
  unsigned Evaluations = 0;
};

/// Evaluates \p Fn at Lo, Lo+Step, ..., Hi (inclusive, with the last point
/// clamped to Hi) and returns the minimizing sample. Ties keep the
/// smallest argument, matching the deterministic behaviour expected by
/// the scheduler's regression tests.
MinResult minimizeOnGrid(const std::function<double(double)> &Fn, double Lo,
                         double Hi, double Step);

/// Golden-section search on [Lo, Hi]; assumes unimodality on the bracket.
/// Runs until the bracket shrinks below \p Tolerance.
MinResult minimizeGoldenSection(const std::function<double(double)> &Fn,
                                double Lo, double Hi, double Tolerance);

/// Grid scan followed by golden-section refinement one grid cell either
/// side of the best sample. Robust to multimodal objectives at grid
/// resolution while sharpening the final answer.
MinResult minimizeGridThenRefine(const std::function<double(double)> &Fn,
                                 double Lo, double Hi, double Step,
                                 double Tolerance);

} // namespace ecas

#endif // ECAS_MATH_MINIMIZE_H
