//===-- ecas/math/Polynomial.h - Dense univariate polynomials --*- C++ -*-===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The power-characterization functions of Section 2 are sixth-order
/// polynomials P(alpha); this class stores arbitrary-degree coefficient
/// vectors, evaluates them with Horner's rule, differentiates them, and
/// prints them in the "y = a6*x^6 + ... + a0" style of Figs. 5 and 6.
///
//===----------------------------------------------------------------------===//

#ifndef ECAS_MATH_POLYNOMIAL_H
#define ECAS_MATH_POLYNOMIAL_H

#include <string>
#include <vector>

namespace ecas {

/// Univariate polynomial with coefficients stored lowest-degree first
/// (Coeffs[k] multiplies x^k).
class Polynomial {
public:
  Polynomial() = default;
  explicit Polynomial(std::vector<double> Coefficients);

  /// Degree of the stored coefficient vector (trailing zeros are not
  /// stripped; an empty polynomial has degree 0 and evaluates to 0).
  unsigned degree() const;

  bool empty() const { return Coeffs.empty(); }
  const std::vector<double> &coefficients() const { return Coeffs; }

  /// Evaluates at \p X with Horner's rule.
  double evaluate(double X) const;

  /// First derivative.
  Polynomial derivative() const;

  /// Evaluates at each element of \p Xs.
  std::vector<double> evaluateMany(const std::vector<double> &Xs) const;

  /// Minimum value of the polynomial over [Lo, Hi], located by comparing
  /// endpoint values against sign changes of the derivative found with
  /// bisection on a fine grid. \p ArgMin receives the minimizing x.
  double minimumOn(double Lo, double Hi, double &ArgMin) const;

  /// Renders "y = a6*x^6 + a5*x^5 + ... + a0" with %.4g coefficients,
  /// matching the equation labels in the paper's Figs. 5-6.
  std::string toEquationString() const;

  /// Sum / difference / scale, used by the fitting tests.
  Polynomial plus(const Polynomial &Rhs) const;
  Polynomial minus(const Polynomial &Rhs) const;
  Polynomial scaled(double Factor) const;

private:
  std::vector<double> Coeffs;
};

} // namespace ecas

#endif // ECAS_MATH_POLYNOMIAL_H
