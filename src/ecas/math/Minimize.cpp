//===-- ecas/math/Minimize.cpp - 1-D minimization primitives --------------===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ecas/math/Minimize.h"

#include "ecas/support/Assert.h"

#include <algorithm>
#include <cmath>

using namespace ecas;

MinResult ecas::minimizeOnGrid(const std::function<double(double)> &Fn,
                               double Lo, double Hi, double Step) {
  ECAS_CHECK(Lo <= Hi, "minimizeOnGrid requires Lo <= Hi");
  ECAS_CHECK(Step > 0.0, "minimizeOnGrid requires a positive step");
  MinResult Result;
  Result.ArgMin = Lo;
  Result.Value = Fn(Lo);
  Result.Evaluations = 1;
  bool ReachedHi = (Lo == Hi);
  for (double X = Lo + Step; !ReachedHi; X += Step) {
    if (X >= Hi - 1e-12 * std::max(1.0, std::fabs(Hi))) {
      X = Hi;
      ReachedHi = true;
    }
    double Y = Fn(X);
    ++Result.Evaluations;
    if (Y < Result.Value) {
      Result.Value = Y;
      Result.ArgMin = X;
    }
  }
  return Result;
}

MinResult ecas::minimizeGoldenSection(const std::function<double(double)> &Fn,
                                      double Lo, double Hi, double Tolerance) {
  ECAS_CHECK(Lo <= Hi, "minimizeGoldenSection requires Lo <= Hi");
  ECAS_CHECK(Tolerance > 0.0, "tolerance must be positive");
  constexpr double InvPhi = 0.6180339887498949;
  MinResult Result;
  double A = Lo, B = Hi;
  double C = B - (B - A) * InvPhi;
  double D = A + (B - A) * InvPhi;
  double Fc = Fn(C), Fd = Fn(D);
  Result.Evaluations = 2;
  while (B - A > Tolerance) {
    if (Fc < Fd) {
      B = D;
      D = C;
      Fd = Fc;
      C = B - (B - A) * InvPhi;
      Fc = Fn(C);
    } else {
      A = C;
      C = D;
      Fc = Fd;
      D = A + (B - A) * InvPhi;
      Fd = Fn(D);
    }
    ++Result.Evaluations;
  }
  if (Fc < Fd) {
    Result.ArgMin = C;
    Result.Value = Fc;
  } else {
    Result.ArgMin = D;
    Result.Value = Fd;
  }
  return Result;
}

MinResult
ecas::minimizeGridThenRefine(const std::function<double(double)> &Fn,
                             double Lo, double Hi, double Step,
                             double Tolerance) {
  MinResult Coarse = minimizeOnGrid(Fn, Lo, Hi, Step);
  double RefineLo = std::max(Lo, Coarse.ArgMin - Step);
  double RefineHi = std::min(Hi, Coarse.ArgMin + Step);
  MinResult Fine = minimizeGoldenSection(Fn, RefineLo, RefineHi, Tolerance);
  Fine.Evaluations += Coarse.Evaluations;
  // The refinement bracket may be multimodal; never return something worse
  // than the grid answer.
  if (Coarse.Value < Fine.Value) {
    Fine.ArgMin = Coarse.ArgMin;
    Fine.Value = Coarse.Value;
  }
  return Fine;
}
