//===-- ecas/math/PolyFit.h - Least-squares polynomial fitting -*- C++ -*-===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fits the sixth-order power characterization polynomials of Section 2
/// ("fit a smooth curve to derive a polynomial approximation"). Two
/// algorithms are provided: Householder QR on the Vandermonde system
/// (the default — numerically robust) and the classical normal equations
/// (kept as an ablation of the fitting method).
///
//===----------------------------------------------------------------------===//

#ifndef ECAS_MATH_POLYFIT_H
#define ECAS_MATH_POLYFIT_H

#include "ecas/math/Polynomial.h"

#include <optional>
#include <vector>

namespace ecas {

/// How the least-squares system is solved.
enum class FitMethod {
  QR,              ///< Householder QR on the Vandermonde matrix.
  NormalEquations, ///< (V^T V) x = V^T y via pivoted LU.
};

/// Result of a fit: the polynomial plus goodness-of-fit measures over the
/// input sample.
struct FitResult {
  Polynomial Poly;
  double RSquared = 0.0;
  double RmsError = 0.0;
};

/// Fits a degree-\p Degree polynomial to samples (Xs[i], Ys[i]).
///
/// Requires at least Degree+1 samples. \returns std::nullopt when the
/// Vandermonde system is rank-deficient (e.g. duplicated abscissae leaving
/// fewer than Degree+1 distinct X values).
std::optional<FitResult> fitPolynomial(const std::vector<double> &Xs,
                                       const std::vector<double> &Ys,
                                       unsigned Degree,
                                       FitMethod Method = FitMethod::QR);

} // namespace ecas

#endif // ECAS_MATH_POLYFIT_H
