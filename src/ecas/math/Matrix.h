//===-- ecas/math/Matrix.h - Small dense matrices ---------------*- C++ -*-===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Row-major dense matrix with the linear-algebra kernels the polynomial
/// fitter needs: multiplication, transpose, linear solves via partially
/// pivoted LU, and a Householder QR least-squares solve. Sizes here are
/// tiny (a 6th-order fit is an 11x7 system), so clarity beats blocking.
///
//===----------------------------------------------------------------------===//

#ifndef ECAS_MATH_MATRIX_H
#define ECAS_MATH_MATRIX_H

#include <cstddef>
#include <vector>

namespace ecas {

/// Dense row-major matrix of doubles.
class Matrix {
public:
  Matrix() = default;
  Matrix(size_t NumRows, size_t NumCols)
      : RowCount(NumRows), ColCount(NumCols), Data(NumRows * NumCols, 0.0) {}

  static Matrix identity(size_t N);

  size_t rows() const { return RowCount; }
  size_t cols() const { return ColCount; }
  bool empty() const { return Data.empty(); }

  double &at(size_t Row, size_t Col);
  double at(size_t Row, size_t Col) const;

  Matrix transposed() const;
  Matrix multiply(const Matrix &Rhs) const;

  /// Multiplies by a vector (Cols-length), producing a Rows-length vector.
  std::vector<double> multiply(const std::vector<double> &Vec) const;

  /// Solves the square system A*x = B in-place via LU with partial
  /// pivoting. \returns false if the matrix is (numerically) singular.
  bool solveLinear(const std::vector<double> &B, std::vector<double> &X) const;

  /// Least-squares solve of the (possibly overdetermined) system
  /// A*x ~= B via Householder QR. Requires rows() >= cols().
  /// \returns false if A is rank-deficient to working precision.
  bool solveLeastSquares(const std::vector<double> &B,
                         std::vector<double> &X) const;

  /// Maximum absolute entry; zero for an empty matrix.
  double maxAbs() const;

private:
  size_t RowCount = 0;
  size_t ColCount = 0;
  std::vector<double> Data;
};

} // namespace ecas

#endif // ECAS_MATH_MATRIX_H
