//===-- ecas/service/Control.h - UNIX-socket introspection -----*- C++ -*-===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Live introspection endpoint for a serving process (DESIGN.md §16).
/// ControlServer listens on a UNIX-domain stream socket and speaks a
/// one-line protocol: the client sends a command name terminated by a
/// newline, the server writes the handler's text response and closes.
/// Commands are registered before start() and immutable afterwards, so
/// the serve thread reads the handler table without a lock.
///
/// The server knows nothing about ServiceFrontEnd or the scheduler —
/// handlers are plain closures — which keeps the dependency arrow
/// pointing the right way (service wires its statusz/metricz/dump
/// renderers in; this file stays at the socket layer).
///
//===----------------------------------------------------------------------===//

#ifndef ECAS_SERVICE_CONTROL_H
#define ECAS_SERVICE_CONTROL_H

#include "ecas/support/Error.h"

#include <atomic>
#include <functional>
#include <string>
#include <thread>
#include <vector>

namespace ecas::service {

/// Line-protocol server over an AF_UNIX stream socket. One connection
/// is served at a time (introspection traffic, not a data plane);
/// unknown commands get an "err unknown command" line.
class ControlServer {
public:
  ControlServer() = default;
  ~ControlServer();

  ControlServer(const ControlServer &) = delete;
  ControlServer &operator=(const ControlServer &) = delete;

  /// Registers \p Fn as the responder for \p Command. Must be called
  /// before start(); later registrations are rejected (the serve thread
  /// reads the table lock-free).
  void setHandler(std::string Command, std::function<std::string()> Fn);

  /// Binds \p SocketPath (unlinking any stale socket first) and starts
  /// the serve thread. Fails InvalidArgument when the path does not fit
  /// sockaddr_un, IoError on socket/bind/listen failure.
  Status start(const std::string &SocketPath);

  /// Stops the serve thread, closes the listener, and unlinks the
  /// socket path. Safe to call twice or without start().
  void stop();

  bool running() const { return Running.load(std::memory_order_acquire); }
  const std::string &socketPath() const { return SocketPath; }

private:
  void serveLoop();
  void serveConnection(int ClientFd);

  struct Handler {
    std::string Command;
    std::function<std::string()> Fn;
  };

  std::vector<Handler> Handlers;
  std::string SocketPath;
  int ListenFd = -1;
  std::thread ServeThread;
  std::atomic<bool> Running{false};
  std::atomic<bool> StopRequested{false};
};

} // namespace ecas::service

#endif // ECAS_SERVICE_CONTROL_H
