//===-- ecas/service/Control.cpp - UNIX-socket introspection --------------===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ecas/service/Control.h"

#include <cerrno>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace ecas;
using namespace ecas::service;

ControlServer::~ControlServer() { stop(); }

void ControlServer::setHandler(std::string Command,
                               std::function<std::string()> Fn) {
  if (Running.load(std::memory_order_acquire))
    return;
  for (Handler &H : Handlers) {
    if (H.Command == Command) {
      H.Fn = std::move(Fn);
      return;
    }
  }
  Handlers.push_back(Handler{std::move(Command), std::move(Fn)});
}

Status ControlServer::start(const std::string &Path) {
  if (Running.load(std::memory_order_acquire))
    return Status::error(ErrCode::InvalidArgument,
                         "control server already running");
  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  if (Path.empty() || Path.size() + 1 > sizeof(Addr.sun_path))
    return Status::error(ErrCode::InvalidArgument,
                         "control socket path must be non-empty and fit "
                         "sockaddr_un (" +
                             Path + ")");
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);

  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return Status::error(ErrCode::IoError,
                         "socket: " + std::string(std::strerror(errno)));
  // A previous process that died without cleanup leaves the node behind;
  // binding over it requires removing it first.
  ::unlink(Path.c_str());
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    Status Err = Status::error(ErrCode::IoError,
                               "bind " + Path + ": " +
                                   std::string(std::strerror(errno)));
    ::close(Fd);
    return Err;
  }
  if (::listen(Fd, 4) != 0) {
    Status Err = Status::error(ErrCode::IoError,
                               "listen " + Path + ": " +
                                   std::string(std::strerror(errno)));
    ::close(Fd);
    ::unlink(Path.c_str());
    return Err;
  }

  SocketPath = Path;
  ListenFd = Fd;
  StopRequested.store(false, std::memory_order_release);
  Running.store(true, std::memory_order_release);
  ServeThread = std::thread([this] { serveLoop(); });
  return Status::success();
}

void ControlServer::stop() {
  if (!Running.exchange(false, std::memory_order_acq_rel)) {
    if (ServeThread.joinable())
      ServeThread.join();
    return;
  }
  StopRequested.store(true, std::memory_order_release);
  if (ServeThread.joinable())
    ServeThread.join();
  if (ListenFd >= 0) {
    ::close(ListenFd);
    ListenFd = -1;
  }
  if (!SocketPath.empty())
    ::unlink(SocketPath.c_str());
}

void ControlServer::serveLoop() {
  while (!StopRequested.load(std::memory_order_acquire)) {
    pollfd Pfd;
    Pfd.fd = ListenFd;
    Pfd.events = POLLIN;
    Pfd.revents = 0;
    int Ready = ::poll(&Pfd, 1, /*timeout=*/100);
    if (Ready <= 0)
      continue;
    int ClientFd = ::accept(ListenFd, nullptr, nullptr);
    if (ClientFd < 0)
      continue;
    serveConnection(ClientFd);
    ::close(ClientFd);
  }
}

void ControlServer::serveConnection(int ClientFd) {
  // A slow or wedged client must not hang the serve loop indefinitely.
  timeval Timeout;
  Timeout.tv_sec = 1;
  Timeout.tv_usec = 0;
  (void)::setsockopt(ClientFd, SOL_SOCKET, SO_RCVTIMEO, &Timeout,
                     sizeof(Timeout));
  (void)::setsockopt(ClientFd, SOL_SOCKET, SO_SNDTIMEO, &Timeout,
                     sizeof(Timeout));

  char Buf[256];
  std::string Line;
  bool SawNewline = false;
  while (!SawNewline && Line.size() < sizeof(Buf)) {
    ssize_t N = ::recv(ClientFd, Buf, sizeof(Buf), 0);
    if (N <= 0)
      break;
    for (ssize_t I = 0; I < N; ++I) {
      if (Buf[I] == '\n') {
        SawNewline = true;
        break;
      }
      Line.push_back(Buf[I]);
    }
  }
  if (!Line.empty() && Line.back() == '\r')
    Line.pop_back();

  std::string Response;
  const Handler *Found = nullptr;
  for (const Handler &H : Handlers) {
    if (H.Command == Line) {
      Found = &H;
      break;
    }
  }
  if (Found && Found->Fn)
    Response = Found->Fn();
  else
    Response = "err unknown command: " + Line + "\n";
  if (Response.empty() || Response.back() != '\n')
    Response.push_back('\n');

  size_t Off = 0;
  while (Off < Response.size()) {
    ssize_t N =
        ::send(ClientFd, Response.data() + Off, Response.size() - Off, 0);
    if (N <= 0)
      break;
    Off += static_cast<size_t>(N);
  }
}
