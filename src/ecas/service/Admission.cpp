//===-- ecas/service/Admission.cpp - Overload admission control -----------===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ecas/service/Admission.h"

#include "ecas/support/Assert.h"
#include "ecas/support/Format.h"

#include <algorithm>

using namespace ecas;

Status AdmissionPolicy::validate() const {
  auto Invalid = [](std::string Message) {
    return Status::error(ErrCode::InvalidArgument, std::move(Message));
  };
  if (Workers == 0)
    return Invalid("admission policy needs at least one worker");
  if (!(DefaultServiceSec > 0.0))
    return Invalid(formatString("non-positive service-time prior %g",
                                DefaultServiceSec));
  if (!(ServiceEwmaAlpha > 0.0 && ServiceEwmaAlpha <= 1.0))
    return Invalid(
        formatString("EWMA alpha %g outside (0, 1]", ServiceEwmaAlpha));
  if (QuarantineInflation < 1.0)
    return Invalid(formatString("quarantine inflation %g below 1",
                                QuarantineInflation));
  if (!(MinRetryAfterSec > 0.0) || MaxRetryAfterSec < MinRetryAfterSec)
    return Invalid(formatString("retry-after bounds [%g, %g] are not a range",
                                MinRetryAfterSec, MaxRetryAfterSec));
  return Status::success();
}

AdmissionController::AdmissionController(AdmissionPolicy PolicyIn,
                                         const GpuHealthMonitor *HealthIn)
    : Policy(PolicyIn), Health(HealthIn),
      EwmaServiceSec(PolicyIn.DefaultServiceSec) {
  if (Status Valid = Policy.validate(); !Valid.ok())
    reportFatalError(Valid.toString().c_str(), __FILE__, __LINE__);
}

double AdmissionController::estimatedServiceSec() const {
  return EwmaServiceSec.load(std::memory_order_relaxed);
}

double AdmissionController::effectiveServiceSec() const {
  double Est = estimatedServiceSec();
  if (Health && Health->state() == GpuHealthState::Quarantined)
    Est *= Policy.QuarantineInflation;
  return Est;
}

double AdmissionController::clampRetry(double Seconds) const {
  return std::clamp(Seconds, Policy.MinRetryAfterSec, Policy.MaxRetryAfterSec);
}

void AdmissionController::noteServiceTime(double Seconds) {
  if (!(Seconds > 0.0))
    return;
  if (!HaveSample.exchange(true, std::memory_order_acq_rel)) {
    // First real measurement replaces the prior outright.
    EwmaServiceSec.store(Seconds, std::memory_order_relaxed);
    return;
  }
  double Prev = EwmaServiceSec.load(std::memory_order_relaxed);
  double Next;
  do {
    Next = Prev + Policy.ServiceEwmaAlpha * (Seconds - Prev);
  } while (!EwmaServiceSec.compare_exchange_weak(Prev, Next,
                                                 std::memory_order_relaxed));
}

AdmissionController::Decision
AdmissionController::admit(const RequestContext &Ctx, size_t LaneDepth,
                           size_t LaneCapacity) const {
  Decision D;
  // A deadline that is non-positive at submit is not a capacity problem;
  // no backoff can revive it, so the hint is 0 ("replan, don't retry").
  if (Ctx.hasDeadline() && Ctx.DeadlineSec <= 0.0) {
    D.Verdict = Status::error(
        ErrCode::DeadlineInfeasible,
        formatString("deadline budget %g s already expired at submit",
                     Ctx.DeadlineSec));
    return D;
  }

  double ServiceSec = effectiveServiceSec();
  double ExpectedWaitSec = static_cast<double>(LaneDepth) * ServiceSec /
                           static_cast<double>(Policy.Workers);

  if (LaneDepth >= LaneCapacity) {
    // Backpressure: the lane is full, so the soonest a slot can open is
    // roughly one service time per queued-ahead request per worker.
    D.Verdict = Status::error(
        ErrCode::Overloaded,
        formatString("%s lane full (%zu/%zu queued)", slaClassName(Ctx.Sla),
                     LaneDepth, LaneCapacity));
    D.RetryAfterSec = clampRetry(ExpectedWaitSec + ServiceSec);
    return D;
  }

  if (Ctx.hasDeadline() && ExpectedWaitSec + ServiceSec > Ctx.DeadlineSec) {
    // Queueing doomed work steals drain capacity from feasible requests;
    // the client should retry once the backlog has shrunk enough that
    // its budget fits.
    D.Verdict = Status::error(
        ErrCode::DeadlineInfeasible,
        formatString("estimated wait %.3g s + service %.3g s exceed "
                     "deadline budget %.3g s",
                     ExpectedWaitSec, ServiceSec, Ctx.DeadlineSec));
    D.RetryAfterSec = clampRetry(ExpectedWaitSec + ServiceSec -
                                 Ctx.DeadlineSec + ServiceSec);
    return D;
  }

  return D;
}
