//===-- ecas/service/Bounded.h - Fixed-capacity containers -----*- C++ -*-===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// BoundedRing: the service layer's only queue storage. Every queue in
/// src/ecas/service must have a capacity fixed at construction so that
/// overload turns into backpressure (a failed push the admission
/// controller converts into a typed rejection) instead of unbounded
/// memory growth; ecas-lint's unbounded-queue rule forbids std::deque /
/// std::queue members here and points at this header.
///
/// Not internally synchronized — the owning structure (SlaQueue) holds
/// its mutex around every call.
///
//===----------------------------------------------------------------------===//

#ifndef ECAS_SERVICE_BOUNDED_H
#define ECAS_SERVICE_BOUNDED_H

#include "ecas/support/Assert.h"

#include <cstddef>
#include <utility>
#include <vector>

namespace ecas {

/// FIFO ring over pre-allocated slots. A capacity of 0 is legal and
/// permanently full — the zero-capacity service queue degenerates into
/// "reject everything", which the edge-case tests exercise.
template <typename T> class BoundedRing {
public:
  explicit BoundedRing(size_t Capacity) : Slots(Capacity) {}

  size_t capacity() const { return Slots.size(); }
  size_t size() const { return Count; }
  bool empty() const { return Count == 0; }
  bool full() const { return Count == Slots.size(); }

  /// False when full; the value is untouched on failure.
  bool tryPush(T &&Value) {
    if (full())
      return false;
    Slots[(Head + Count) % Slots.size()] = std::move(Value);
    ++Count;
    return true;
  }

  /// Requires !empty().
  T pop() {
    ECAS_CHECK(!empty(), "pop() on an empty BoundedRing");
    T Value = std::move(Slots[Head]);
    Head = (Head + 1) % Slots.size();
    --Count;
    return Value;
  }

private:
  std::vector<T> Slots;
  size_t Head = 0;
  size_t Count = 0;
};

} // namespace ecas

#endif // ECAS_SERVICE_BOUNDED_H
