//===-- ecas/service/Admission.h - Overload admission control --*- C++ -*-===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The service front end's gatekeeper. Before a request enters its SLA
/// lane, the AdmissionController judges whether queueing it can possibly
/// end well: a full lane is backpressure (Overloaded), and a deadline
/// the estimated queue wait plus service time already exceeds is doomed
/// work (DeadlineInfeasible) — queueing it would only waste capacity the
/// feasible requests need (Mei et al., arXiv 2104.00486: deadline-class
/// admission precedes any energy/deadline trade-off). Both verdicts
/// carry a retry-after hint the synthetic tenants feed into their
/// capped-exponential backoff.
///
/// Service-time estimation is a lock-free EWMA over completed requests,
/// seeded with a configurable prior; while the GPU is quarantined the
/// estimate is inflated, since every request degrades to CPU-alone and
/// drains the queue correspondingly slower.
///
//===----------------------------------------------------------------------===//

#ifndef ECAS_SERVICE_ADMISSION_H
#define ECAS_SERVICE_ADMISSION_H

#include "ecas/core/RequestContext.h"
#include "ecas/fault/GpuHealth.h"
#include "ecas/support/Error.h"

#include <atomic>
#include <cstddef>

namespace ecas {

/// Tunables of the admission decision.
struct AdmissionPolicy {
  /// Dequeuing workers — the drain parallelism the wait estimate divides
  /// queue depth by.
  unsigned Workers = 4;
  /// Service-time prior (seconds) used until the EWMA has samples.
  double DefaultServiceSec = 0.05;
  /// EWMA smoothing factor in (0, 1]; higher weighs recent requests more.
  double ServiceEwmaAlpha = 0.2;
  /// Multiplier applied to the service-time estimate while the GPU is
  /// quarantined (everything runs CPU-alone, so the queue drains slower).
  double QuarantineInflation = 4.0;
  /// Bounds on the retry-after hint handed to rejected clients.
  double MinRetryAfterSec = 1e-3;
  double MaxRetryAfterSec = 5.0;

  Status validate() const;
};

/// Decides, per request, between admit / Overloaded / DeadlineInfeasible.
/// Thread-safe: decisions read two atomics and the (internally locked)
/// health monitor.
class AdmissionController {
public:
  /// \p Health may be null (no quarantine awareness — tests of the pure
  /// queue math). Borrowed; must outlive the controller.
  AdmissionController(AdmissionPolicy Policy,
                      const GpuHealthMonitor *Health = nullptr);

  /// The verdict for one request. RetryAfterSec is meaningful only when
  /// Verdict is an error; 0 means "do not bother retrying" (the request
  /// was infeasible on arrival, not a capacity problem).
  struct Decision {
    Status Verdict = Status::success();
    double RetryAfterSec = 0.0;

    bool admitted() const { return Verdict.ok(); }
  };

  /// Judges \p Ctx against its lane's occupancy. \p LaneDepth and
  /// \p LaneCapacity describe the request's SLA lane at decision time
  /// (a lost race against concurrent producers is fine — the queue's
  /// tryPush re-checks under its lock).
  Decision admit(const RequestContext &Ctx, size_t LaneDepth,
                 size_t LaneCapacity) const;

  /// Folds one completed request's service time into the EWMA.
  void noteServiceTime(double Seconds);

  /// Current smoothed service-time estimate, without quarantine
  /// inflation.
  double estimatedServiceSec() const;

  const AdmissionPolicy &policy() const { return Policy; }

private:
  /// estimatedServiceSec(), inflated when the GPU is unusable.
  double effectiveServiceSec() const;
  double clampRetry(double Seconds) const;

  AdmissionPolicy Policy;
  const GpuHealthMonitor *Health;
  /// EWMA state; lock-free CAS updates so completion accounting never
  /// serializes behind admission decisions.
  std::atomic<double> EwmaServiceSec;
  std::atomic<bool> HaveSample{false};
};

} // namespace ecas

#endif // ECAS_SERVICE_ADMISSION_H
