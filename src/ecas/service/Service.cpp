//===-- ecas/service/Service.cpp - Multi-tenant service front end ---------===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ecas/service/Service.h"

#include "ecas/obs/MetricNames.h"
#include "ecas/obs/MetricsExport.h"
#include "ecas/service/Control.h"
#include "ecas/support/Assert.h"
#include "ecas/support/Format.h"

#include <algorithm>
#include <chrono>

using namespace ecas;

Status ServiceConfig::validate() const {
  auto Invalid = [](std::string Message) {
    return Status::error(ErrCode::InvalidArgument, std::move(Message));
  };
  if (Workers == 0)
    return Invalid("service needs at least one worker");
  if (!Weights.valid())
    return Invalid("every SLA dequeue weight must be >= 1");
  if (DrainGraceSec < 0.0)
    return Invalid(formatString("negative drain grace %g", DrainGraceSec));
  if (IdleFlushSec < 0.0)
    return Invalid(formatString("negative idle-flush tick %g", IdleFlushSec));
  AdmissionPolicy Effective = Admission;
  Effective.Workers = Workers;
  return Effective.validate();
}

int ecas::serveExitCode(const ServiceStats &Stats,
                        double ShedThresholdFraction) {
  if (Stats.Sla0DeadlineMisses > 0)
    return 1;
  if (Stats.shedFraction() > ShedThresholdFraction)
    return 1;
  return 0;
}

namespace {
AdmissionPolicy effectivePolicy(const ServiceConfig &Config) {
  AdmissionPolicy Policy = Config.Admission;
  Policy.Workers = Config.Workers;
  return Policy;
}

double hostSteadySeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
} // namespace

ServiceFrontEnd::ServiceFrontEnd(EasScheduler &SchedulerIn,
                                 const PlatformSpec &SpecIn,
                                 ServiceConfig ConfigIn)
    : Scheduler(SchedulerIn), Spec(SpecIn), Config(std::move(ConfigIn)),
      Queue(Config.QueueCapPerClass, Config.Weights),
      Admission(effectivePolicy(Config), &Scheduler.health()) {
  if (Status Valid = Config.validate(); !Valid.ok())
    reportFatalError(Valid.toString().c_str(), __FILE__, __LINE__);
  if (!Config.Clock)
    Config.Clock = hostSteadySeconds;
  // Uptime is observability, not scheduling: read the host clock
  // directly so statusz never perturbs an injected Config.Clock's call
  // sequence (deterministic step-clock tests depend on it).
  StartSec = hostSteadySeconds();
  registerInstruments();
  {
    LockGuard Lock(TokenMutex);
    ActiveTokens.resize(Config.Workers);
  }
  WorkerThreads.reserve(Config.Workers);
  for (unsigned I = 0; I != Config.Workers; ++I)
    WorkerThreads.emplace_back([this, I] { workerLoop(I); });
}

ServiceFrontEnd::~ServiceFrontEnd() { shutdown(); }

void ServiceFrontEnd::registerInstruments() {
  obs::MetricsRegistry *M = Config.Metrics;
  if (!M)
    return;
  const std::vector<double> WaitBuckets = obs::logBuckets(1e-4, 2.0, 20);
  for (unsigned I = 0; I != NumSlaClasses; ++I) {
    obs::MetricLabels BySla{{"sla", slaClassName(slaFromIndex(I))}};
    Ins.Submitted[I] = &M->counter(obs::names::ServiceSubmittedTotal, BySla,
                                   "Requests offered to the service");
    Ins.Completed[I] = &M->counter(obs::names::ServiceCompletedTotal, BySla,
                                   "Requests executed to completion");
    Ins.Cancelled[I] =
        &M->counter(obs::names::ServiceCancelledTotal, BySla,
                    "Requests cut short mid-flight (deadline token or "
                    "shutdown hard-stop)");
    Ins.QueueDepth[I] = &M->gauge(obs::names::ServiceQueueDepth, BySla,
                                  "Requests currently queued in this lane");
    Ins.QueueWait[I] =
        &M->histogram(obs::names::ServiceQueueWaitSeconds, WaitBuckets, BySla,
                      "Service-clock seconds between enqueue and dequeue");
    Ins.DeadlineMiss[I] = &M->counter(
        obs::names::ServiceDeadlineMissTotal, BySla,
        "Requests that blew their deadline while the service owned them "
        "(shed in queue, cancelled by their token, or completed late)");
  }
  Ins.Admitted = &M->counter(obs::names::ServiceAdmittedTotal, {},
                             "Requests that entered a queue lane");
  Ins.RejectedOverloaded =
      &M->counter(obs::names::ServiceRejectedTotal,
                  {{"reason", "overloaded"}},
                  "Submissions bounced by backpressure");
  Ins.RejectedInfeasible =
      &M->counter(obs::names::ServiceRejectedTotal,
                  {{"reason", "deadline_infeasible"}},
                  "Submissions whose deadline could not be met");
  Ins.RetryAfter = &M->histogram(obs::names::ServiceRetryAfterSeconds,
                                 obs::logBuckets(1e-3, 2.0, 16), {},
                                 "Backoff hints handed to rejected clients");
}

obs::Counter *ServiceFrontEnd::shedCounter(const QueuedRequest &Request) {
  if (!Config.Metrics)
    return nullptr;
  // Registered on demand: the tenant label space is open-ended, and
  // shedding is off the submit/execute fast paths, so the registry's
  // find-or-create mutex is acceptable here.
  return &Config.Metrics->counter(
      obs::names::ServiceShedTotal,
      {{"tenant", formatString("%llu", static_cast<unsigned long long>(
                                           Request.Ctx.TenantId))},
       {"sla", slaClassName(Request.Ctx.Sla)}},
      "Requests dropped at dequeue because their deadline expired while "
      "queued");
}

void ServiceFrontEnd::updateDepthGauges() {
  if (!Config.Metrics)
    return;
  for (unsigned I = 0; I != NumSlaClasses; ++I)
    Ins.QueueDepth[I]->set(
        static_cast<double>(Queue.depth(slaFromIndex(I))));
}

void ServiceFrontEnd::accountDeadlineMiss(SlaClass Sla) {
  unsigned I = slaIndex(Sla);
  ++Counts.DeadlineMissesBySla[I];
  if (Sla == SlaClass::Sla0)
    ++Counts.Sla0DeadlineMisses;
}

void ServiceFrontEnd::bumpTenant(uint64_t TenantId,
                                 uint64_t ServiceStats::TenantBucket::*Field) {
  for (size_t I = 0; I != Counts.TenantsTracked; ++I) {
    if (Counts.Tenants[I].TenantId == TenantId) {
      ++(Counts.Tenants[I].*Field);
      return;
    }
  }
  if (Counts.TenantsTracked < ServiceStats::MaxTrackedTenants) {
    ServiceStats::TenantBucket &Bucket =
        Counts.Tenants[Counts.TenantsTracked++];
    Bucket.TenantId = TenantId;
    ++(Bucket.*Field);
    return;
  }
  ++Counts.TenantsUntracked;
}

SubmitResult ServiceFrontEnd::submit(const KernelDesc &Kernel,
                                     double Iterations,
                                     const RequestContext &Ctx) {
  SubmitResult Result;
  Result.Sequence = NextSequence.fetch_add(1, std::memory_order_relaxed);
  unsigned Sla = slaIndex(Ctx.Sla);
  {
    LockGuard Lock(StatsMutex);
    ++Counts.Submitted;
    ++Counts.SubmittedBySla[Sla];
    bumpTenant(Ctx.TenantId, &ServiceStats::TenantBucket::Submitted);
  }
  if (Ins.Submitted[Sla])
    Ins.Submitted[Sla]->add();

  auto Reject = [&](Status Verdict, double RetryAfterSec) {
    {
      LockGuard Lock(StatsMutex);
      ++Counts.Rejected;
      ++Counts.RejectedBySla[Sla];
    }
    if (Config.Metrics) {
      obs::Counter *C = Verdict.code() == ErrCode::Overloaded
                            ? Ins.RejectedOverloaded
                            : Ins.RejectedInfeasible;
      C->add();
      if (RetryAfterSec > 0.0)
        Ins.RetryAfter->record(RetryAfterSec);
    }
    Result.Verdict = std::move(Verdict);
    Result.RetryAfterSec = RetryAfterSec;
    return Result;
  };

  if (!Accepting.load(std::memory_order_acquire))
    return Reject(Status::error(ErrCode::Overloaded,
                                "service is shutting down"),
                  0.0);

  AdmissionController::Decision Decision =
      Admission.admit(Ctx, Queue.depth(Ctx.Sla), Queue.capacityPerClass());
  if (!Decision.admitted())
    return Reject(std::move(Decision.Verdict), Decision.RetryAfterSec);

  QueuedRequest Request;
  Request.Kernel = Kernel;
  Request.Iterations = Iterations;
  Request.Ctx = Ctx;
  Request.EnqueueSec = Config.Clock();
  Request.Sequence = Result.Sequence;
  if (!Queue.tryPush(std::move(Request))) {
    // Lost the race against concurrent producers (or the queue closed
    // between the accepting check and the push); same verdict as a full
    // lane seen at admission time.
    double RetryAfter = Admission.policy().MinRetryAfterSec;
    return Reject(
        Status::error(ErrCode::Overloaded,
                      formatString("%s lane filled while admitting",
                                   slaClassName(Ctx.Sla))),
        RetryAfter);
  }

  if (Ins.Admitted)
    Ins.Admitted->add();
  updateDepthGauges();
  return Result;
}

void ServiceFrontEnd::accountShed(const QueuedRequest &Request,
                                  double WaitSec) {
  unsigned Sla = slaIndex(Request.Ctx.Sla);
  {
    LockGuard Lock(StatsMutex);
    ++Counts.Shed;
    ++Counts.ShedBySla[Sla];
    // Shedding only happens to requests whose deadline expired in queue,
    // so every shed is by definition a deadline miss.
    accountDeadlineMiss(Request.Ctx.Sla);
    bumpTenant(Request.Ctx.TenantId, &ServiceStats::TenantBucket::Shed);
    Counts.MaxQueueWaitSec[Sla] =
        std::max(Counts.MaxQueueWaitSec[Sla], WaitSec);
  }
  if (obs::Counter *C = shedCounter(Request))
    C->add();
  if (Ins.DeadlineMiss[Sla])
    Ins.DeadlineMiss[Sla]->add();
  if (Ins.QueueWait[Sla])
    Ins.QueueWait[Sla]->record(WaitSec);
  if (Config.Flight)
    Config.Flight->instant("service", "shed", WaitSec);
}

void ServiceFrontEnd::accountCancelled(const QueuedRequest &Request,
                                       bool DeadlineMiss) {
  unsigned Sla = slaIndex(Request.Ctx.Sla);
  {
    LockGuard Lock(StatsMutex);
    ++Counts.Cancelled;
    ++Counts.CancelledBySla[Sla];
    if (DeadlineMiss)
      accountDeadlineMiss(Request.Ctx.Sla);
    bumpTenant(Request.Ctx.TenantId,
               &ServiceStats::TenantBucket::Cancelled);
  }
  if (Ins.Cancelled[Sla])
    Ins.Cancelled[Sla]->add();
  if (DeadlineMiss) {
    if (Ins.DeadlineMiss[Sla])
      Ins.DeadlineMiss[Sla]->add();
    if (Config.Flight)
      Config.Flight->instant("service", "deadline-miss");
  }
}

void ServiceFrontEnd::accountCompleted(const QueuedRequest &Request,
                                       double WaitSec, double ServiceSec) {
  unsigned Sla = slaIndex(Request.Ctx.Sla);
  bool MissedDeadline =
      Request.Ctx.hasDeadline() &&
      WaitSec + ServiceSec > Request.Ctx.DeadlineSec;
  {
    LockGuard Lock(StatsMutex);
    ++Counts.Completed;
    ++Counts.CompletedBySla[Sla];
    if (MissedDeadline)
      accountDeadlineMiss(Request.Ctx.Sla);
    bumpTenant(Request.Ctx.TenantId,
               &ServiceStats::TenantBucket::Completed);
    Counts.MaxQueueWaitSec[Sla] =
        std::max(Counts.MaxQueueWaitSec[Sla], WaitSec);
  }
  if (Ins.Completed[Sla])
    Ins.Completed[Sla]->add();
  if (MissedDeadline) {
    if (Ins.DeadlineMiss[Sla])
      Ins.DeadlineMiss[Sla]->add();
    if (Config.Flight)
      Config.Flight->instant("service", "deadline-miss");
  }
  if (Ins.QueueWait[Sla])
    Ins.QueueWait[Sla]->record(WaitSec);
}

void ServiceFrontEnd::workerLoop(unsigned WorkerIndex) {
  SimProcessor Proc(Spec);
  const bool IdleTick =
      Config.IdleFlushSec > 0.0 && Scheduler.journaling();
  while (true) {
    std::optional<QueuedRequest> Request =
        IdleTick ? Queue.popFor(Config.IdleFlushSec) : Queue.pop();
    if (!Request) {
      // Once closed, depth only shrinks, so closed-and-empty is a
      // stable exit condition; closed with residue means a push raced
      // our timeout — loop and pop it.
      if (Queue.closed() && Queue.totalDepth() == 0)
        break;
      // Idle: commit the journal's group-commit tail so a lull (or a
      // kill -9 during one) costs nothing that was enqueued before it.
      (void)Scheduler.flushJournal();
      continue;
    }
    InFlight.fetch_add(1, std::memory_order_acq_rel);
    updateDepthGauges();
    double NowSec = Config.Clock();
    double WaitSec = std::max(0.0, NowSec - Request->EnqueueSec);

    // Register this request's token before judging anything, under the
    // same mutex the hard-stop takes: either the hard-stop sees (and
    // cancels) the token, or this worker sees HardStop — no window where
    // a request slips past both.
    CancellationToken Token;
    bool Stopped;
    {
      LockGuard Lock(TokenMutex);
      Stopped = HardStop;
      if (!Stopped)
        ActiveTokens[WorkerIndex] = Token;
    }
    if (Stopped) {
      // Shutdown hard-stop: void residual queued work without running it.
      accountCancelled(*Request, /*DeadlineMiss=*/false);
      InFlight.fetch_sub(1, std::memory_order_acq_rel);
      continue;
    }

    // Deadline-aware shedding happens here — after the queue wait is
    // known, strictly before any profiling or dispatch starts. Once
    // execution begins, a blown deadline is the token's business (a
    // cancellation, not a shed).
    if (Request->Ctx.hasDeadline() &&
        WaitSec >= Request->Ctx.DeadlineSec) {
      {
        LockGuard Lock(TokenMutex);
        ActiveTokens[WorkerIndex].reset();
      }
      accountShed(*Request, WaitSec);
      InFlight.fetch_sub(1, std::memory_order_acq_rel);
      continue;
    }

    // The remaining budget becomes an absolute deadline on this worker's
    // virtual clock; the scheduler's cooperative points honour it.
    if (Request->Ctx.hasDeadline())
      Token.setDeadline(Proc.now() +
                        (Request->Ctx.DeadlineSec - WaitSec));

    double ExecStart = Proc.now();
    EasScheduler::InvocationOutcome Outcome = Scheduler.execute(
        Proc, Request->Kernel, Request->Iterations, Request->Ctx, &Token);
    double ExecSec = Proc.now() - ExecStart;

    bool StoppedDuringRun;
    {
      LockGuard Lock(TokenMutex);
      StoppedDuringRun = HardStop;
      ActiveTokens[WorkerIndex].reset();
    }

    if (Outcome.Rejected || Outcome.Cancelled) {
      // A rejected outcome means the scheduler itself is shutting down;
      // a cancelled one means the deadline token (or the hard-stop)
      // fired mid-flight. Only a genuine deadline expiry counts as an
      // SLA0 miss.
      bool DeadlineMiss = Outcome.Cancelled && !StoppedDuringRun &&
                          Request->Ctx.hasDeadline();
      accountCancelled(*Request, DeadlineMiss);
    } else {
      accountCompleted(*Request, WaitSec, ExecSec);
      Admission.noteServiceTime(ExecSec);
    }
    InFlight.fetch_sub(1, std::memory_order_acq_rel);
  }
}

Status ServiceFrontEnd::startControl(const std::string &SocketPath) {
  if (Control && Control->running())
    return Status::error(ErrCode::InvalidArgument,
                         "control endpoint already started");
  if (!Control)
    Control = std::make_unique<service::ControlServer>();
  Control->setHandler("statusz", [this] { return renderStatusz(); });
  Control->setHandler("metricz", [this] {
    if (!Config.Metrics)
      return std::string("err no metrics registry\n");
    return obs::renderPrometheus(Config.Metrics->snapshot());
  });
  std::function<std::string()> Dump = DumpHook;
  Control->setHandler("dump", [Dump] {
    if (!Dump)
      return std::string("err no dump hook\n");
    return Dump();
  });
  return Control->start(SocketPath);
}

void ServiceFrontEnd::setDumpHook(std::function<std::string()> Hook) {
  DumpHook = std::move(Hook);
}

std::string ecas::renderTableGDigest(const EasScheduler &Scheduler) {
  std::vector<std::pair<uint64_t, KernelRecord>> Entries =
      Scheduler.history().entries();
  uint64_t Confident = 0, CpuOnly = 0, Invocations = 0, Quarantined = 0;
  for (const auto &[Key, Rec] : Entries) {
    Confident += Rec.Confident ? 1 : 0;
    CpuOnly += Rec.CpuOnly ? 1 : 0;
    Invocations += Rec.Invocations;
    Quarantined += Rec.QuarantinedRuns;
  }
  std::string Out = formatString(
      "tableg entries=%zu confident=%llu cpu_only=%llu invocations=%llu "
      "quarantined_runs=%llu\n",
      Entries.size(), static_cast<unsigned long long>(Confident),
      static_cast<unsigned long long>(CpuOnly),
      static_cast<unsigned long long>(Invocations),
      static_cast<unsigned long long>(Quarantined));
  // Bound the per-entry listing so a statusz against a huge table stays
  // a screenful; the summary line above is always complete.
  constexpr size_t MaxListed = 64;
  size_t Listed = std::min(Entries.size(), MaxListed);
  for (size_t I = 0; I != Listed; ++I) {
    const auto &[Key, Rec] = Entries[I];
    // Entries mid-profiling have no alpha samples yet; -1 marks "not
    // yet measured" without tripping the accumulator's own check.
    double Alpha = Rec.Alpha.hasValue() ? Rec.Alpha.value() : -1.0;
    Out += formatString(
        "tableg_entry key=%llu class=%s alpha=%.3f pstate=%u "
        "invocations=%u quarantined=%u confident=%d cpu_only=%d\n",
        static_cast<unsigned long long>(Key), Rec.Class.name().c_str(), Alpha,
        Rec.PState, Rec.Invocations, Rec.QuarantinedRuns,
        Rec.Confident ? 1 : 0, Rec.CpuOnly ? 1 : 0);
  }
  if (Entries.size() > MaxListed)
    Out += formatString("tableg_elided %zu\n", Entries.size() - MaxListed);
  return Out;
}

std::string ServiceFrontEnd::renderStatusz() const {
  ServiceStats Stats = stats();
  std::string Out = "ecas-statusz v1\n";
  Out += formatString("uptime_sec %.3f\n", hostSteadySeconds() - StartSec);
  Out += formatString("accepting %d\n", accepting() ? 1 : 0);
  Out += formatString("workers %u\n", Config.Workers);
  for (unsigned I = 0; I != NumSlaClasses; ++I) {
    SlaClass Sla = slaFromIndex(I);
    Out += formatString(
        "sla %s depth=%zu submitted=%llu rejected=%llu shed=%llu "
        "completed=%llu cancelled=%llu deadline_miss=%llu "
        "max_wait_sec=%.6f\n",
        slaClassName(Sla), Queue.depth(Sla),
        static_cast<unsigned long long>(Stats.SubmittedBySla[I]),
        static_cast<unsigned long long>(Stats.RejectedBySla[I]),
        static_cast<unsigned long long>(Stats.ShedBySla[I]),
        static_cast<unsigned long long>(Stats.CompletedBySla[I]),
        static_cast<unsigned long long>(Stats.CancelledBySla[I]),
        static_cast<unsigned long long>(Stats.DeadlineMissesBySla[I]),
        Stats.MaxQueueWaitSec[I]);
  }
  for (size_t I = 0; I != Stats.TenantsTracked; ++I) {
    const ServiceStats::TenantBucket &Bucket = Stats.Tenants[I];
    Out += formatString(
        "tenant %llu submitted=%llu completed=%llu shed=%llu "
        "cancelled=%llu\n",
        static_cast<unsigned long long>(Bucket.TenantId),
        static_cast<unsigned long long>(Bucket.Submitted),
        static_cast<unsigned long long>(Bucket.Completed),
        static_cast<unsigned long long>(Bucket.Shed),
        static_cast<unsigned long long>(Bucket.Cancelled));
  }
  if (Stats.TenantsUntracked)
    Out += formatString("tenants_untracked %llu\n",
                        static_cast<unsigned long long>(
                            Stats.TenantsUntracked));
  Out += renderTableGDigest(Scheduler);
  if (Config.Metrics) {
    obs::MetricsSnapshot Snap = Config.Metrics->snapshot();
    for (const obs::MetricSample &Sample : Snap.Samples) {
      if (Sample.Name != obs::names::PStateResidencySeconds)
        continue;
      const char *State = "0";
      for (const auto &Label : Sample.Labels)
        if (Label.first == "pstate")
          State = Label.second.c_str();
      Out += formatString("pstate %s residency_sec=%.6f\n", State,
                          Sample.Value);
    }
  }
  const GpuHealthMonitor &Health = Scheduler.health();
  GpuHealthMonitor::Stats HealthStats = Health.stats();
  Out += formatString(
      "gpu state=%s hangs=%u quarantines=%u probes=%u recoveries=%u\n",
      gpuHealthStateName(Health.state()), HealthStats.HangsDetected,
      HealthStats.Quarantines, HealthStats.ProbesAttempted,
      HealthStats.Recoveries);
  Out += "end\n";
  return Out;
}

ServiceStats ServiceFrontEnd::shutdown() {
  bool First = false;
  if (!ShutdownStarted.compare_exchange_strong(First, true,
                                               std::memory_order_acq_rel)) {
    UniqueLock Lock(ShutdownMutex);
    while (!ShutdownComplete)
      ShutdownDone.wait(Lock.native());
    return stats();
  }

  // Phase 1: stop admitting and let the workers drain what is queued.
  Accepting.store(false, std::memory_order_release);
  Queue.close();
  using SteadyClock = std::chrono::steady_clock;
  SteadyClock::time_point GraceEnd =
      SteadyClock::now() + std::chrono::duration_cast<SteadyClock::duration>(
                               std::chrono::duration<double>(
                                   std::max(Config.DrainGraceSec, 0.0)));
  auto drained = [this] {
    return Queue.totalDepth() == 0 &&
           InFlight.load(std::memory_order_acquire) == 0;
  };
  while (!drained() && SteadyClock::now() < GraceEnd)
    std::this_thread::sleep_for(std::chrono::microseconds(200));

  // Phase 2: grace expired — cancel in-flight work and void the rest of
  // the queue. Workers observe HardStop before executing anything new.
  if (!drained()) {
    LockGuard Lock(TokenMutex);
    HardStop = true;
    for (std::optional<CancellationToken> &Token : ActiveTokens)
      if (Token)
        Token->cancel();
  }

  for (std::thread &Worker : WorkerThreads)
    Worker.join();
  updateDepthGauges();
  if (Control)
    Control->stop();

  {
    LockGuard Lock(ShutdownMutex);
    ShutdownComplete = true;
  }
  ShutdownDone.notify_all();
  return stats();
}

ServiceStats ServiceFrontEnd::stats() const {
  LockGuard Lock(StatsMutex);
  return Counts;
}
