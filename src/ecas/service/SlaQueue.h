//===-- ecas/service/SlaQueue.h - SLA-partitioned request queue *- C++ -*-===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The service front end's bounded, SLA-class-partitioned request queue.
/// Each SLA class owns a fixed-capacity lane; producers push into their
/// class's lane (a full lane is backpressure, surfaced by the admission
/// controller as a typed rejection), and consumers pop across lanes
/// under a weighted round-robin credit scheme.
///
/// The credit scheme gives the fairness invariant the chaos-soak test
/// asserts: within one refill cycle of W0+W1+W2 dequeues, SLA0 is served
/// first and up to W0 times (it cannot be starved by lower classes), yet
/// SLA2 still receives its W2 dequeues (SLA0 cannot fully starve it) —
/// the weighted sharing of rrr514/eec_project's SLA tiers, applied to a
/// queue instead of a frequency ladder.
///
//===----------------------------------------------------------------------===//

#ifndef ECAS_SERVICE_SLAQUEUE_H
#define ECAS_SERVICE_SLAQUEUE_H

#include "ecas/core/RequestContext.h"
#include "ecas/device/KernelDesc.h"
#include "ecas/service/Bounded.h"
#include "ecas/support/ThreadAnnotations.h"

#include <condition_variable>
#include <cstdint>
#include <optional>

namespace ecas {

/// One queued kernel invocation, stamped with its submission context.
struct QueuedRequest {
  KernelDesc Kernel;
  double Iterations = 0.0;
  RequestContext Ctx;
  /// Service-clock time at enqueue; the dequeuer's now() minus this is
  /// the queue wait the shedding check judges against the deadline.
  double EnqueueSec = 0.0;
  /// Monotone submission number, unique across classes.
  uint64_t Sequence = 0;
};

/// Dequeue credits granted to each SLA class per refill cycle. Every
/// weight must be at least 1 so no class can be configured out of
/// existence.
struct SlaWeights {
  unsigned Weight[NumSlaClasses] = {6, 3, 1};

  bool valid() const {
    for (unsigned W : Weight)
      if (W == 0)
        return false;
    return true;
  }
};

/// Bounded multi-lane queue with weighted cross-class dequeue.
/// Thread-safe; push never blocks (a full lane fails fast), pop blocks
/// until a request or close() arrives.
class SlaQueue {
public:
  /// Every lane gets \p CapacityPerClass slots. 0 is legal: the queue
  /// is permanently full and every tryPush fails.
  explicit SlaQueue(size_t CapacityPerClass, SlaWeights Weights = {});

  size_t capacityPerClass() const { return CapacityPerClass; }

  /// False when the request's lane is full or the queue is closed; the
  /// caller turns that into an Overloaded rejection.
  bool tryPush(QueuedRequest Request);

  /// Blocks until a request is available or the queue is closed and
  /// drained (nullopt). Concurrent poppers each get distinct requests.
  std::optional<QueuedRequest> pop();

  /// As pop(), but gives up after \p Sec host seconds: nullopt then
  /// means "idle right now", not "closed" — check closed() to tell the
  /// two apart. Workers use the timeout as their idle tick (journal
  /// group-commit flush).
  std::optional<QueuedRequest> popFor(double Sec);

  /// Non-blocking pop for shutdown drains: a request if one is queued,
  /// nullopt otherwise (closed or momentarily empty).
  std::optional<QueuedRequest> tryPop();

  /// Rejects future pushes and wakes every blocked popper; already
  /// queued requests remain poppable until drained. Idempotent.
  void close();

  bool closed() const;
  size_t depth(SlaClass Sla) const;
  size_t totalDepth() const;

private:
  /// Index of the lane the credit scheme serves next, or NumSlaClasses
  /// when every lane is empty.
  unsigned pickLane() ECAS_REQUIRES(Mutex);

  const size_t CapacityPerClass;
  const SlaWeights Weights;

  mutable AnnotatedMutex Mutex{"Service.SlaQueue"};
  std::condition_variable Ready;
  std::vector<BoundedRing<QueuedRequest>> Lanes ECAS_GUARDED_BY(Mutex);
  unsigned Credits[NumSlaClasses] ECAS_GUARDED_BY(Mutex) = {};
  bool Closed ECAS_GUARDED_BY(Mutex) = false;
};

} // namespace ecas

#endif // ECAS_SERVICE_SLAQUEUE_H
