//===-- ecas/service/SlaQueue.cpp - SLA-partitioned request queue ---------===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ecas/service/SlaQueue.h"

#include "ecas/support/Assert.h"

#include <algorithm>
#include <chrono>

using namespace ecas;

SlaQueue::SlaQueue(size_t CapacityPerClassIn, SlaWeights WeightsIn)
    : CapacityPerClass(CapacityPerClassIn), Weights(WeightsIn) {
  ECAS_CHECK(Weights.valid(), "every SLA dequeue weight must be >= 1");
  Lanes.reserve(NumSlaClasses);
  for (unsigned I = 0; I != NumSlaClasses; ++I)
    Lanes.emplace_back(CapacityPerClass);
  for (unsigned I = 0; I != NumSlaClasses; ++I)
    Credits[I] = Weights.Weight[I];
}

bool SlaQueue::tryPush(QueuedRequest Request) {
  {
    LockGuard Lock(Mutex);
    if (Closed)
      return false;
    if (!Lanes[slaIndex(Request.Ctx.Sla)].tryPush(std::move(Request)))
      return false;
  }
  // Notify outside the lock so the woken popper never bounces off a
  // still-held mutex.
  Ready.notify_one();
  return true;
}

unsigned SlaQueue::pickLane() {
  // Highest-priority nonempty lane holding a credit wins; when none
  // holds one, refill every lane's credits from the weights and retry.
  // Scanning strictest-first makes SLA0 unstarvable; the credit cap
  // makes SLA2 progress inevitable while it has queued work.
  for (int Round = 0; Round != 2; ++Round) {
    for (unsigned I = 0; I != NumSlaClasses; ++I)
      if (!Lanes[I].empty() && Credits[I] > 0) {
        --Credits[I];
        return I;
      }
    bool AnyQueued = false;
    for (unsigned I = 0; I != NumSlaClasses; ++I)
      AnyQueued = AnyQueued || !Lanes[I].empty();
    if (!AnyQueued)
      return NumSlaClasses;
    for (unsigned I = 0; I != NumSlaClasses; ++I)
      Credits[I] = Weights.Weight[I];
  }
  ECAS_UNREACHABLE("refilled credits found no nonempty lane");
}

std::optional<QueuedRequest> SlaQueue::pop() {
  UniqueLock Lock(Mutex);
  while (true) {
    unsigned Lane = pickLane();
    if (Lane != NumSlaClasses)
      return Lanes[Lane].pop();
    if (Closed)
      return std::nullopt;
    Ready.wait(Lock.native());
  }
}

std::optional<QueuedRequest> SlaQueue::popFor(double Sec) {
  std::chrono::steady_clock::time_point Deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(std::max(Sec, 0.0)));
  UniqueLock Lock(Mutex);
  while (true) {
    unsigned Lane = pickLane();
    if (Lane != NumSlaClasses)
      return Lanes[Lane].pop();
    if (Closed)
      return std::nullopt;
    if (Ready.wait_until(Lock.native(), Deadline) ==
        std::cv_status::timeout) {
      // One more look: a push may have raced the timeout.
      Lane = pickLane();
      if (Lane != NumSlaClasses)
        return Lanes[Lane].pop();
      return std::nullopt;
    }
  }
}

std::optional<QueuedRequest> SlaQueue::tryPop() {
  LockGuard Lock(Mutex);
  unsigned Lane = pickLane();
  if (Lane == NumSlaClasses)
    return std::nullopt;
  return Lanes[Lane].pop();
}

void SlaQueue::close() {
  {
    LockGuard Lock(Mutex);
    Closed = true;
  }
  Ready.notify_all();
}

bool SlaQueue::closed() const {
  LockGuard Lock(Mutex);
  return Closed;
}

size_t SlaQueue::depth(SlaClass Sla) const {
  LockGuard Lock(Mutex);
  return Lanes[slaIndex(Sla)].size();
}

size_t SlaQueue::totalDepth() const {
  LockGuard Lock(Mutex);
  size_t Total = 0;
  for (const BoundedRing<QueuedRequest> &Lane : Lanes)
    Total += Lane.size();
  return Total;
}
