//===-- ecas/service/Service.h - Multi-tenant service front end *- C++ -*-===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The overload-resilient front door for multi-tenant EAS serving
/// (DESIGN.md §12). A ServiceFrontEnd owns a pool of worker threads —
/// each with its own SimProcessor — draining a bounded SLA-partitioned
/// queue into one shared EasScheduler. Producers call submit(), which
/// either enqueues the request or returns a typed rejection (Overloaded
/// / DeadlineInfeasible) with a retry-after hint; nothing ever blocks a
/// producer and nothing queued is unbounded.
///
/// Request lifecycle and the accounting invariant:
///
///   submitted == rejected + shed + completed + cancelled
///
///   - rejected: bounced by admission (or the closed service); never
///     entered a lane.
///   - shed:     deadline expired *while queued*; dropped at dequeue,
///     strictly before any profiling or dispatch starts.
///   - cancelled: cut short mid-flight — a deadline token fired inside
///     the scheduler (its cooperative points guarantee completed
///     profiling still merges into table G), or the shutdown hard-stop
///     cancelled active work and voided the residual queue.
///   - completed: everything else.
///
/// Deadline budgets cover queue wait plus execution: the queue wait is
/// measured on the service clock (injectable for deterministic tests),
/// and the remaining budget is armed as an absolute deadline on the
/// dequeuing worker's virtual clock.
///
//===----------------------------------------------------------------------===//

#ifndef ECAS_SERVICE_SERVICE_H
#define ECAS_SERVICE_SERVICE_H

#include "ecas/core/EasScheduler.h"
#include "ecas/hw/PlatformSpec.h"
#include "ecas/obs/Metrics.h"
#include "ecas/service/Admission.h"
#include "ecas/service/SlaQueue.h"
#include "ecas/support/Error.h"
#include "ecas/support/ThreadAnnotations.h"

#include <atomic>
#include <functional>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

namespace ecas::service {
class ControlServer;
} // namespace ecas::service

namespace ecas {

/// Tunables of one service front end.
struct ServiceConfig {
  /// Worker threads draining the queue (each owns a SimProcessor).
  unsigned Workers = 4;
  /// Per-SLA-lane queue capacity. 0 is legal: every submission is
  /// rejected Overloaded (the zero-capacity edge case).
  size_t QueueCapPerClass = 64;
  /// Cross-class dequeue credits.
  SlaWeights Weights;
  /// Admission tunables; Workers is overwritten with the field above so
  /// the wait estimate always matches the real drain parallelism.
  AdmissionPolicy Admission;
  /// Host seconds the graceful shutdown drain may take before the
  /// hard-stop cancels in-flight work and voids the residual queue.
  double DrainGraceSec = 5.0;
  /// Idle tick: a worker that finds the queue empty for this long
  /// flushes the scheduler's journal, so a group-commit tail never
  /// outlives a traffic lull by more than this bound. 0 disables the
  /// tick (workers block indefinitely, pre-journal behaviour).
  double IdleFlushSec = 0.25;
  /// Service clock (seconds); queue waits and shed decisions are judged
  /// on it. Defaults to host steady time; deterministic tests inject a
  /// controlled clock.
  std::function<double()> Clock;
  /// Optional metrics registry (borrowed). When set, the front end
  /// pre-registers the eas_service_* taxonomy and every submission /
  /// rejection / shed / completion folds in.
  obs::MetricsRegistry *Metrics = nullptr;
  /// Optional flight recorder (borrowed, DESIGN.md §16). When set, shed
  /// and deadline-miss events land in the crash ring alongside the
  /// scheduler's decision tail. Null no-ops.
  obs::FlightRecorder *Flight = nullptr;

  Status validate() const;
};

/// What submit() decided.
struct SubmitResult {
  /// Success (queued) or Overloaded / DeadlineInfeasible.
  Status Verdict = Status::success();
  /// Backoff hint for rejected submissions; 0 means "do not retry".
  double RetryAfterSec = 0.0;
  /// The request's submission number (assigned even when rejected).
  uint64_t Sequence = 0;

  bool admitted() const { return Verdict.ok(); }
};

/// Request accounting, total and per SLA class.
struct ServiceStats {
  uint64_t Submitted = 0;
  uint64_t Rejected = 0;
  uint64_t Shed = 0;
  uint64_t Completed = 0;
  uint64_t Cancelled = 0;

  uint64_t SubmittedBySla[NumSlaClasses] = {};
  uint64_t RejectedBySla[NumSlaClasses] = {};
  uint64_t ShedBySla[NumSlaClasses] = {};
  uint64_t CompletedBySla[NumSlaClasses] = {};
  uint64_t CancelledBySla[NumSlaClasses] = {};

  /// SLA0 requests that missed their deadline while the service was
  /// responsible for them: shed in queue, cancelled by their deadline
  /// token, or completed past budget. Hard-stop cancellations are
  /// excluded — shutdown is the operator's choice, not a miss.
  uint64_t Sla0DeadlineMisses = 0;

  /// Deadline misses per SLA class, same definition as above applied to
  /// every lane (Sla0DeadlineMisses == DeadlineMissesBySla[0]). The
  /// burn-rate detector's counter and the serve summary both read the
  /// same underlying accounting.
  uint64_t DeadlineMissesBySla[NumSlaClasses] = {};

  /// Longest observed queue wait per class (service-clock seconds).
  double MaxQueueWaitSec[NumSlaClasses] = {};

  /// Bounded per-tenant accounting for statusz and table-G attribution.
  /// A fixed array (no allocation under StatsMutex); tenants past the
  /// cap fold into TenantsUntracked.
  struct TenantBucket {
    uint64_t TenantId = 0;
    uint64_t Submitted = 0;
    uint64_t Completed = 0;
    uint64_t Shed = 0;
    uint64_t Cancelled = 0;
  };
  static constexpr size_t MaxTrackedTenants = 32;
  TenantBucket Tenants[MaxTrackedTenants] = {};
  size_t TenantsTracked = 0;
  uint64_t TenantsUntracked = 0;

  /// The conservation law every soak asserts. Exact at quiescence (every
  /// submit() call returned, shutdown() complete); a snapshot taken while
  /// submissions are still in flight can transiently show Submitted
  /// ahead of the terminal counts (never behind — a request's terminal
  /// state is always accounted after its submission was).
  bool consistent() const {
    return Submitted == Rejected + Shed + Completed + Cancelled;
  }
  double shedFraction() const {
    return Submitted ? static_cast<double>(Shed) /
                           static_cast<double>(Submitted)
                     : 0.0;
  }
};

/// Maps a finished serve run onto the CLI's exit codes: 0 (ExitOk) for a
/// clean run, 1 (ExitRuntime) when any SLA0 deadline was missed or more
/// than \p ShedThresholdFraction of submissions were shed — so an
/// overload-induced rejection storm no longer exits like a clean run.
int serveExitCode(const ServiceStats &Stats, double ShedThresholdFraction);

/// Parse-friendly table-G summary: one aggregate line plus (bounded)
/// per-entry lines. Shared by statusz, the serve summary, and the
/// incident writer's tableg.txt.
std::string renderTableGDigest(const EasScheduler &Scheduler);

/// The multi-tenant service front end. Construction starts the workers;
/// shutdown() (or the destructor) closes the queue, drains gracefully,
/// and hard-stops stragglers after the grace period.
class ServiceFrontEnd {
public:
  /// \p Scheduler and \p Config.Metrics are borrowed and must outlive
  /// the front end. \p Spec is copied (each worker builds its own
  /// SimProcessor from it), so a temporary is fine.
  ServiceFrontEnd(EasScheduler &Scheduler, const PlatformSpec &Spec,
                  ServiceConfig Config = {});
  ~ServiceFrontEnd();

  ServiceFrontEnd(const ServiceFrontEnd &) = delete;
  ServiceFrontEnd &operator=(const ServiceFrontEnd &) = delete;

  /// Admission-checks and enqueues one request. Never blocks; a full
  /// lane, an infeasible deadline, or a closed service returns the
  /// matching typed Status instead.
  SubmitResult submit(const KernelDesc &Kernel, double Iterations,
                      const RequestContext &Ctx);

  /// Graceful shutdown: stop admitting, let the workers drain the queue
  /// for up to DrainGraceSec host seconds, then cancel in-flight work
  /// and void whatever is still queued (counted cancelled). Idempotent;
  /// returns the final stats.
  ServiceStats shutdown();

  /// Point-in-time accounting snapshot (consistent totals).
  ServiceStats stats() const;

  size_t queueDepth(SlaClass Sla) const { return Queue.depth(Sla); }
  const AdmissionController &admission() const { return Admission; }
  bool accepting() const {
    return Accepting.load(std::memory_order_acquire);
  }

  /// Starts the UNIX-domain control endpoint at \p SocketPath serving
  /// `statusz`, `metricz`, and `dump` (DESIGN.md §16). Call once after
  /// construction; shutdown() stops it.
  Status startControl(const std::string &SocketPath);

  /// Responder for the control endpoint's `dump` command (typically a
  /// forced incident-bundle write). Set before startControl().
  void setDumpHook(std::function<std::string()> Hook);

  /// Human-oriented status text: uptime, admission state, per-SLA lane
  /// accounting (depth / submitted / rejected / shed / completed /
  /// cancelled / deadline_miss / max_wait), per-tenant buckets, a
  /// table-G summary, P-state residency, and GPU health.
  std::string renderStatusz() const;

private:
  struct WorkerSlot;

  void workerLoop(unsigned WorkerIndex);
  void accountShed(const QueuedRequest &Request, double WaitSec);
  void accountCancelled(const QueuedRequest &Request, bool DeadlineMiss);
  void accountCompleted(const QueuedRequest &Request, double WaitSec,
                        double ServiceSec);
  void registerInstruments();
  obs::Counter *shedCounter(const QueuedRequest &Request);
  void updateDepthGauges();
  void accountDeadlineMiss(SlaClass Sla) ECAS_REQUIRES(StatsMutex);
  void bumpTenant(uint64_t TenantId,
                  uint64_t ServiceStats::TenantBucket::*Field)
      ECAS_REQUIRES(StatsMutex);

  EasScheduler &Scheduler;
  const PlatformSpec Spec;
  ServiceConfig Config;
  SlaQueue Queue;
  AdmissionController Admission;

  std::atomic<bool> Accepting{true};
  std::atomic<uint64_t> NextSequence{1};
  /// Requests popped but not yet accounted — the graceful drain waits
  /// for queue-empty AND this to reach zero.
  std::atomic<unsigned> InFlight{0};

  /// Per-worker active cancellation token, so the hard-stop can fire
  /// every in-flight request's token. HardStop lives under the same
  /// mutex: a worker that registers its token after the hard-stop began
  /// sees the flag and cancels itself, closing the race.
  mutable AnnotatedMutex TokenMutex{"Service.ActiveTokens"};
  std::vector<std::optional<CancellationToken>> ActiveTokens
      ECAS_GUARDED_BY(TokenMutex);
  bool HardStop ECAS_GUARDED_BY(TokenMutex) = false;

  mutable AnnotatedMutex StatsMutex{"Service.Stats"};
  ServiceStats Counts ECAS_GUARDED_BY(StatsMutex);

  /// Shutdown idempotency latch.
  std::atomic<bool> ShutdownStarted{false};
  mutable AnnotatedMutex ShutdownMutex{"Service.Shutdown"};
  std::condition_variable ShutdownDone;
  bool ShutdownComplete ECAS_GUARDED_BY(ShutdownMutex) = false;

  /// Instruments cached at construction (null without a registry).
  struct MetricInstruments {
    obs::Counter *Submitted[NumSlaClasses] = {};
    obs::Counter *Admitted = nullptr;
    obs::Counter *RejectedOverloaded = nullptr;
    obs::Counter *RejectedInfeasible = nullptr;
    obs::Counter *Completed[NumSlaClasses] = {};
    obs::Counter *Cancelled[NumSlaClasses] = {};
    obs::Counter *DeadlineMiss[NumSlaClasses] = {};
    obs::Gauge *QueueDepth[NumSlaClasses] = {};
    obs::Histogram *QueueWait[NumSlaClasses] = {};
    obs::Histogram *RetryAfter = nullptr;
  };
  MetricInstruments Ins;

  /// Service-clock time at construction, for statusz's uptime line.
  double StartSec = 0.0;

  /// Control endpoint (null until startControl()).
  std::unique_ptr<service::ControlServer> Control;
  std::function<std::string()> DumpHook;

  std::vector<std::thread> WorkerThreads;
};

} // namespace ecas

#endif // ECAS_SERVICE_SERVICE_H
