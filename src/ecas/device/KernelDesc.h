//===-- ecas/device/KernelDesc.h - Data-parallel kernel model --*- C++ -*-===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cost descriptor for one data-parallel kernel: how much compute, memory
/// traffic, and cache behaviour a single iteration exhibits on each
/// device. The simulated devices turn a KernelDesc into throughput and
/// performance-counter readings; the scheduler never sees it (black box).
///
//===----------------------------------------------------------------------===//

#ifndef ECAS_DEVICE_KERNELDESC_H
#define ECAS_DEVICE_KERNELDESC_H

#include <cstdint>
#include <string>

namespace ecas {

/// The numeric per-iteration cost model, split from the descriptive
/// KernelDesc so the simulated devices can copy it into their work
/// queues without touching the std::string name: device enqueue sits on
/// the ECAS_HOT dispatch path, and copying a long kernel name would be
/// one heap allocation per dispatch (DESIGN.md §14).
///
/// "Iteration" is one index of the Concord-style parallel_for. CPU costs
/// are per hardware thread at scalar issue; GPU costs are per EU lane.
struct KernelCost {
  /// Compute cycles per iteration on one CPU thread, before SIMD.
  double CpuCyclesPerIter = 100.0;
  /// Compute cycles per iteration on one GPU EU lane.
  double GpuCyclesPerIter = 100.0;
  /// DRAM traffic per iteration in bytes (reads + writes that miss LLC).
  double BytesPerIter = 16.0;
  /// Load/store instructions retired per iteration.
  double LoadStoresPerIter = 10.0;
  /// LLC misses / load-stores, in [0,1]. The paper classifies a workload
  /// memory-bound when this ratio exceeds 0.33.
  double LlcMissRatio = 0.05;
  /// Total instructions retired per iteration (counter model).
  double InstrsPerIter = 120.0;
  /// GPU derating in (0,1]: branch divergence, irregular access, low
  /// occupancy inside a work-item. 1.0 = perfectly regular.
  double GpuEfficiency = 1.0;
  /// Fraction of CPU compute that vectorizes, in [0,1].
  double CpuVectorizable = 0.5;
  /// Stable identity for the runtime's kernel-to-alpha history table G
  /// (stands in for the CPU function pointer of Fig. 7).
  uint64_t Id = 0;

  /// Misses per load-store — the statistic the paper thresholds at 0.33.
  double memoryIntensity() const {
    return LoadStoresPerIter > 0.0 ? LlcMissRatio : 0.0;
  }

  /// True when all cost fields are positive and ratios lie in range.
  bool valid() const;
};

/// A kernel as the rest of the runtime sees it: the cost model plus its
/// human-readable name. The scheduler and workloads pass KernelDesc
/// around; the device layer slices off the KernelCost base when queueing
/// work so the hot dispatch path never copies the name.
struct KernelDesc : KernelCost {
  std::string Name;

  /// Derives Id from Name when Id == 0 (FNV-1a); returns *this for
  /// fluent construction in tests and workload factories.
  KernelDesc &withAutoId();
};

/// FNV-1a hash of a string, used for kernel identities.
uint64_t hashKernelName(const std::string &Name);

} // namespace ecas

#endif // ECAS_DEVICE_KERNELDESC_H
