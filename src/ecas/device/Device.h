//===-- ecas/device/Device.h - Simulated device interface ------*- C++ -*-===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The device abstraction the simulator steps: a queue of (kernel,
/// iteration-count) work items plus a throughput model. SimCpuDevice and
/// SimGpuDevice specialize rateModel(); everything else — queue
/// management, performance counters, partial-slice accounting — is shared.
///
//===----------------------------------------------------------------------===//

#ifndef ECAS_DEVICE_DEVICE_H
#define ECAS_DEVICE_DEVICE_H

#include "ecas/device/KernelDesc.h"
#include "ecas/hw/PlatformSpec.h"

#include <cstddef>
#include <vector>

namespace ecas {

/// Cumulative hardware-counter state, modeled after what Intel PCM
/// exposes (Section 4 uses PCM to read LLC misses and instructions).
struct PerfCounters {
  double InstructionsRetired = 0.0;
  double LoadStores = 0.0;
  double LlcMisses = 0.0;
  double IterationsDone = 0.0;
  double BytesTransferred = 0.0;
  /// Seconds spent executing kernel iterations (what an OpenCL profiling
  /// event's START..END covers).
  double BusySeconds = 0.0;
  /// Seconds spent in launch/dispatch overhead, excluded from
  /// BusySeconds.
  double SetupSeconds = 0.0;

  PerfCounters operator-(const PerfCounters &Rhs) const;
  /// Misses / load-stores; 0 when no memory ops were counted.
  double missPerLoadStore() const;
};

/// Throughput and power-activity answer for a device at one operating
/// point, before bandwidth arbitration.
struct RatePoint {
  /// Iterations per second, unconstrained by shared DRAM bandwidth.
  double ComputeRate = 0.0;
  /// DRAM demand at ComputeRate, in GB/s.
  double BandwidthDemandGBs = 0.0;
  /// Fraction of cycles stalled on memory at ComputeRate (latency view).
  double LatencyStallFraction = 0.0;
};

/// One simulated compute device with a FIFO of enqueued kernels.
class SimDevice {
public:
  explicit SimDevice(DeviceKind Kind) : Kind(Kind) {}
  virtual ~SimDevice();

  DeviceKind kind() const { return Kind; }

  /// Appends \p Iterations of \p Kernel to the queue. Iterations may be
  /// fractional (the runtime hands devices fractional shares of N).
  /// Takes the cost slice only (a KernelDesc binds here implicitly), so
  /// queueing work never copies the kernel's name; once the ring below
  /// is warmed, enqueue is allocation-free (DESIGN.md §14).
  void enqueue(const KernelCost &Kernel, double Iterations);

  bool busy() const { return Head < Queue.size(); }

  /// Iterations left across all queued work.
  double pendingIterations() const;

  /// Removes all queued work, returning the number of unprocessed
  /// iterations (profiling uses this to drain the CPU's share when the
  /// GPU proxy finishes its chunk).
  double cancelRemaining();

  /// Unconstrained operating point for the kernel at the queue head.
  /// Idle devices report a zero RatePoint.
  RatePoint currentRate(double FreqGHz) const;

  /// Seconds until the head work item (including its setup cost) drains
  /// at a fixed operating point; +inf-like sentinel when idle.
  double timeToHeadDrain(double FreqGHz, double BandwidthShareGBs) const;

  /// Advances the device by up to \p Dt seconds at \p FreqGHz, allowed to
  /// draw at most \p BandwidthShareGBs of DRAM bandwidth.
  /// \returns the seconds actually consumed: less than \p Dt only when
  /// the queue empties first.
  double advance(double Dt, double FreqGHz, double BandwidthShareGBs);

  /// Seconds to drain the whole queue at a fixed operating point.
  double estimateCompletion(double FreqGHz, double BandwidthShareGBs) const;

  const PerfCounters &counters() const { return Counters; }

  /// Activity factor in [0,1] for the power model during the last
  /// advance() call: blends compute and memory activity by the realized
  /// stall fraction, or the idle activity when nothing ran.
  double lastActivity() const { return LastActivity; }

  /// Achieved DRAM traffic during the last advance() call, in GB/s.
  double lastTrafficGBs() const { return LastTrafficGBs; }

  /// Black-box frequency-hint channel (the paper's stated future work:
  /// runtime feedback into power management). The runtime announces the
  /// fastest clock it wants this device to run at; the substrate clamps
  /// the governor's choice to the hint each slice. 0 (the default)
  /// means no hint and leaves behaviour bit-identical. The scheduler
  /// only writes hints — it never reads simulated frequencies back.
  void setFrequencyHintGHz(double GHz) { FrequencyHintGHz = GHz; }
  double frequencyHintGHz() const { return FrequencyHintGHz; }

protected:
  /// Device-specific throughput model for \p Kernel at \p FreqGHz for a
  /// work item that was enqueued with \p ItemIters iterations (GPUs lose
  /// occupancy on small dispatches — a wave model keyed to the dispatch
  /// size, like a single NDRange with all work items resident).
  virtual RatePoint rateModel(const KernelCost &Kernel, double FreqGHz,
                              double ItemIters) const = 0;

  /// Power-model activity factors for this device.
  virtual const DevicePowerSpec &powerSpec() const = 0;

private:
  struct WorkItem {
    /// Numeric cost slice only — no name, so a WorkItem is trivially
    /// copyable and queueing one never allocates.
    KernelCost Kernel;
    double IterationsLeft;
    /// Dispatch size at enqueue; fixes the occupancy for the whole item.
    double InitialIterations;
    /// Pending fixed startup cost (GPU launch latency) in seconds.
    double SetupSecondsLeft;
  };

  /// FIFO access over the vector-backed ring. The live items are
  /// [Head, Queue.size()); draining resets Head and clear()s the vector
  /// while keeping its capacity, so a warmed device's enqueue/advance
  /// cycle is allocation-free — a std::deque here allocated and freed a
  /// node every few dispatches as the cursor crossed node boundaries.
  const WorkItem &head() const { return Queue[Head]; }
  WorkItem &head() { return Queue[Head]; }
  void popHead();

  DeviceKind Kind;
  std::vector<WorkItem> Queue;
  size_t Head = 0;
  PerfCounters Counters;
  double LastActivity = 0.0;
  double LastTrafficGBs = 0.0;
  double FrequencyHintGHz = 0.0;

protected:
  /// Fixed per-enqueue setup cost; GPU overrides with launch latency.
  virtual double setupSeconds() const { return 0.0; }
};

} // namespace ecas

#endif // ECAS_DEVICE_DEVICE_H
