//===-- ecas/device/Device.cpp - Simulated device interface ---------------===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ecas/device/Device.h"

#include "ecas/support/Assert.h"

#include <algorithm>
#include <cmath>

using namespace ecas;

SimDevice::~SimDevice() = default;

PerfCounters PerfCounters::operator-(const PerfCounters &Rhs) const {
  PerfCounters Delta;
  Delta.InstructionsRetired = InstructionsRetired - Rhs.InstructionsRetired;
  Delta.LoadStores = LoadStores - Rhs.LoadStores;
  Delta.LlcMisses = LlcMisses - Rhs.LlcMisses;
  Delta.IterationsDone = IterationsDone - Rhs.IterationsDone;
  Delta.BytesTransferred = BytesTransferred - Rhs.BytesTransferred;
  Delta.BusySeconds = BusySeconds - Rhs.BusySeconds;
  Delta.SetupSeconds = SetupSeconds - Rhs.SetupSeconds;
  return Delta;
}

double PerfCounters::missPerLoadStore() const {
  return LoadStores > 0.0 ? LlcMisses / LoadStores : 0.0;
}

void SimDevice::enqueue(const KernelCost &Kernel, double Iterations) {
  ECAS_CHECK(Kernel.valid(), "enqueue of malformed kernel descriptor");
  if (Iterations <= 0.0)
    return;
  if (Head == Queue.size()) {
    // Drained ring: rewind and reuse the vector's capacity, so a warmed
    // device enqueues without allocating.
    Head = 0;
    Queue.clear();
  }
  // Amortized: the drained-ring rewind above reuses capacity, so a
  // warmed device appends in place (HotPathTest pins zero allocations).
  // ecas-hotpath: allow(alloc)
  Queue.push_back({Kernel, Iterations, Iterations, setupSeconds()});
}

void SimDevice::popHead() {
  ++Head;
  if (Head == Queue.size()) {
    Head = 0;
    Queue.clear();
  } else if (Head >= 64 && Head * 2 >= Queue.size()) {
    // A queue that never fully drains would otherwise grow without
    // bound; compacting the consumed prefix in place keeps memory
    // proportional to the live items and allocates nothing.
    Queue.erase(Queue.begin(), Queue.begin() + static_cast<long>(Head));
    Head = 0;
  }
}

double SimDevice::pendingIterations() const {
  double Total = 0.0;
  for (size_t I = Head; I != Queue.size(); ++I)
    Total += Queue[I].IterationsLeft;
  return Total;
}

double SimDevice::cancelRemaining() {
  double Unprocessed = pendingIterations();
  Head = 0;
  Queue.clear();
  return Unprocessed;
}

/// Applies the bandwidth cap to an unconstrained rate point, returning the
/// achieved iteration rate and overall stall fraction for power blending.
static void applyBandwidthCap(const RatePoint &Rate, double BytesPerIter,
                              double BandwidthShareGBs, double &EffRate,
                              double &StallFraction) {
  EffRate = Rate.ComputeRate;
  if (BytesPerIter > 0.0 && Rate.BandwidthDemandGBs > BandwidthShareGBs) {
    double BwRate = BandwidthShareGBs * 1e9 / BytesPerIter;
    EffRate = std::min(EffRate, BwRate);
  }
  double IssueShare = Rate.ComputeRate > 0.0 ? EffRate / Rate.ComputeRate : 0.0;
  StallFraction = 1.0 - IssueShare * (1.0 - Rate.LatencyStallFraction);
}

RatePoint SimDevice::currentRate(double FreqGHz) const {
  if (!busy())
    return RatePoint();
  const WorkItem &Item = head();
  if (Item.SetupSecondsLeft > 0.0)
    return RatePoint(); // Launch overhead: no issue, no traffic.
  return rateModel(Item.Kernel, FreqGHz, Item.InitialIterations);
}

double SimDevice::timeToHeadDrain(double FreqGHz,
                                  double BandwidthShareGBs) const {
  if (!busy())
    return 1e30;
  const WorkItem &Item = head();
  // While in setup the device advertises no bandwidth demand, so the
  // caller's arbitration gave it none; the next schedulable event is the
  // end of setup, after which shares are recomputed.
  if (Item.SetupSecondsLeft > 0.0)
    return Item.SetupSecondsLeft;
  double Total = 0.0;
  RatePoint Rate = rateModel(Item.Kernel, FreqGHz, Item.InitialIterations);
  double EffRate, StallFraction;
  applyBandwidthCap(Rate, Item.Kernel.BytesPerIter, BandwidthShareGBs,
                    EffRate, StallFraction);
  if (EffRate <= 0.0)
    return 1e30;
  return Total + Item.IterationsLeft / EffRate;
}

double SimDevice::advance(double Dt, double FreqGHz,
                          double BandwidthShareGBs) {
  ECAS_CHECK(Dt >= 0.0, "advance requires non-negative time step");
  const DevicePowerSpec &Power = powerSpec();
  double Remaining = Dt;
  double ActivityTime = 0.0; // integral of activity over busy time
  double Bytes = 0.0;
  double Consumed = 0.0;
  double ExecSeconds = 0.0;

  while (Remaining > 0.0 && busy()) {
    WorkItem &Item = head();
    if (Item.SetupSecondsLeft > 0.0) {
      double Step = std::min(Remaining, Item.SetupSecondsLeft);
      Item.SetupSecondsLeft -= Step;
      Remaining -= Step;
      Consumed += Step;
      Counters.SetupSeconds += Step;
      ActivityTime += Power.IdleActivity * Step;
      continue;
    }
    RatePoint Rate = rateModel(Item.Kernel, FreqGHz, Item.InitialIterations);
    double EffRate, StallFraction;
    applyBandwidthCap(Rate, Item.Kernel.BytesPerIter, BandwidthShareGBs,
                      EffRate, StallFraction);
    if (EffRate <= 0.0)
      break; // Malformed operating point; refuse to spin forever.
    double TimeToDrain = Item.IterationsLeft / EffRate;
    double Step = std::min(Remaining, TimeToDrain);
    double Iterations = EffRate * Step;

    Item.IterationsLeft -= Iterations;
    Counters.IterationsDone += Iterations;
    Counters.InstructionsRetired += Iterations * Item.Kernel.InstrsPerIter;
    Counters.LoadStores += Iterations * Item.Kernel.LoadStoresPerIter;
    Counters.LlcMisses += Iterations * Item.Kernel.LoadStoresPerIter *
                          Item.Kernel.LlcMissRatio;
    Counters.BytesTransferred += Iterations * Item.Kernel.BytesPerIter;
    Bytes += Iterations * Item.Kernel.BytesPerIter;

    double Activity = Power.ComputeActivity * (1.0 - StallFraction) +
                      Power.MemoryActivity * StallFraction;
    ActivityTime += Activity * Step;
    Remaining -= Step;
    Consumed += Step;
    ExecSeconds += Step;
    if (Item.IterationsLeft <= 1e-9 * std::max(1.0, Iterations))
      popHead();
  }

  Counters.BusySeconds += ExecSeconds;
  if (Consumed > 0.0) {
    LastActivity = ActivityTime / Consumed;
    LastTrafficGBs = Bytes / Consumed / 1e9;
  } else {
    LastActivity = Power.IdleActivity;
    LastTrafficGBs = 0.0;
  }
  return Consumed;
}

double SimDevice::estimateCompletion(double FreqGHz,
                                     double BandwidthShareGBs) const {
  double Total = 0.0;
  for (size_t I = Head; I != Queue.size(); ++I) {
    const WorkItem &Item = Queue[I];
    Total += Item.SetupSecondsLeft;
    RatePoint Rate = rateModel(Item.Kernel, FreqGHz, Item.InitialIterations);
    double EffRate, StallFraction;
    applyBandwidthCap(Rate, Item.Kernel.BytesPerIter, BandwidthShareGBs,
                      EffRate, StallFraction);
    if (EffRate <= 0.0)
      return 1e30;
    Total += Item.IterationsLeft / EffRate;
  }
  return Total;
}
