//===-- ecas/device/SimCpuDevice.h - CPU throughput model ------*- C++ -*-===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Multicore CPU model: per-thread cycles with SIMD speedup for
/// vectorizable work, LLC-miss stall cycles amortized over the core's
/// memory-level parallelism, and a modest SMT yield for the second
/// hardware thread per core.
///
//===----------------------------------------------------------------------===//

#ifndef ECAS_DEVICE_SIMCPUDEVICE_H
#define ECAS_DEVICE_SIMCPUDEVICE_H

#include "ecas/device/Device.h"

namespace ecas {

/// Simulated multicore CPU side of the package.
class SimCpuDevice : public SimDevice {
public:
  explicit SimCpuDevice(const PlatformSpec &Spec)
      : SimDevice(DeviceKind::Cpu), Spec(Spec) {}

  /// Hardware threads weighted by SMT yield (second thread on a core
  /// contributes a fraction of a full core's throughput).
  double effectiveThreads() const;

protected:
  RatePoint rateModel(const KernelCost &Kernel, double FreqGHz,
                      double PendingIters) const override;
  const DevicePowerSpec &powerSpec() const override {
    return Spec.CpuPower;
  }

private:
  const PlatformSpec &Spec;
};

} // namespace ecas

#endif // ECAS_DEVICE_SIMCPUDEVICE_H
