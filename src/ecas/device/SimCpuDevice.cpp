//===-- ecas/device/SimCpuDevice.cpp - CPU throughput model ---------------===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ecas/device/SimCpuDevice.h"

#include <algorithm>

using namespace ecas;

/// Throughput contribution of the second SMT thread on a core, relative
/// to a full core. ~25% matches the commonly observed Haswell SMT yield
/// on throughput-oriented loops.
static constexpr double SmtYield = 0.25;

double SimCpuDevice::effectiveThreads() const {
  double Extra = Spec.Cpu.ThreadsPerCore > 1
                     ? SmtYield * (Spec.Cpu.ThreadsPerCore - 1)
                     : 0.0;
  return Spec.Cpu.Cores * (1.0 + Extra);
}

RatePoint SimCpuDevice::rateModel(const KernelCost &Kernel, double FreqGHz,
                                  double PendingIters) const {
  RatePoint Rate;
  double SimdSpeedup =
      1.0 + (Spec.Cpu.SimdWidth - 1.0) * Kernel.CpuVectorizable;
  double ComputeCycles =
      Kernel.CpuCyclesPerIter * Spec.Cpu.CyclesScale / SimdSpeedup;
  double StallCycles = Kernel.LoadStoresPerIter * Kernel.LlcMissRatio *
                       Spec.Cpu.MissPenaltyCycles / Spec.Cpu.MemParallelism;
  double CyclesPerIter = ComputeCycles + StallCycles;

  // A residue smaller than the thread count can't use every thread.
  double Threads = effectiveThreads();
  double Utilization = std::min(1.0, PendingIters / Threads);
  Rate.ComputeRate = Threads * Utilization * FreqGHz * 1e9 / CyclesPerIter;
  Rate.LatencyStallFraction = StallCycles / CyclesPerIter;
  Rate.BandwidthDemandGBs = Rate.ComputeRate * Kernel.BytesPerIter / 1e9;
  return Rate;
}
