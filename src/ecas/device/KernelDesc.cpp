//===-- ecas/device/KernelDesc.cpp - Data-parallel kernel model -----------===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ecas/device/KernelDesc.h"

using namespace ecas;

bool KernelCost::valid() const {
  if (CpuCyclesPerIter <= 0.0 || GpuCyclesPerIter <= 0.0)
    return false;
  if (BytesPerIter < 0.0 || LoadStoresPerIter < 0.0 || InstrsPerIter <= 0.0)
    return false;
  if (LlcMissRatio < 0.0 || LlcMissRatio > 1.0)
    return false;
  if (GpuEfficiency <= 0.0 || GpuEfficiency > 1.0)
    return false;
  if (CpuVectorizable < 0.0 || CpuVectorizable > 1.0)
    return false;
  return true;
}

uint64_t ecas::hashKernelName(const std::string &Name) {
  uint64_t Hash = 1469598103934665603ULL;
  for (char C : Name) {
    Hash ^= static_cast<unsigned char>(C);
    Hash *= 1099511628211ULL;
  }
  return Hash ? Hash : 1;
}

KernelDesc &KernelDesc::withAutoId() {
  if (Id == 0)
    Id = hashKernelName(Name);
  return *this;
}
