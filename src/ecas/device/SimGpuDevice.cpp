//===-- ecas/device/SimGpuDevice.cpp - GPU throughput model ---------------===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ecas/device/SimGpuDevice.h"

#include <algorithm>

using namespace ecas;

RatePoint SimGpuDevice::rateModel(const KernelCost &Kernel, double FreqGHz,
                                  double PendingIters) const {
  RatePoint Rate;
  double Lanes =
      static_cast<double>(Spec.Gpu.ExecutionUnits) * Spec.Gpu.SimdWidth;
  // A dispatch smaller than the lane count still takes one full wave:
  // its K items run in parallel, so duration ~= cycles/(f*eff) no matter
  // how small K is. That makes the small-dispatch rate proportional to
  // the dispatch size with a lane-count ceiling, i.e. a latency floor
  // rather than an occupancy-scaled throughput.
  double FullRate =
      Lanes * Kernel.GpuEfficiency * FreqGHz * 1e9 / Kernel.GpuCyclesPerIter;
  double Occupancy = std::min(1.0, PendingIters / Lanes);
  Rate.ComputeRate = FullRate * Occupancy * Derate;
  // Multithreading hides DRAM latency; stalls appear only when the
  // bandwidth cap binds (handled by the caller).
  Rate.LatencyStallFraction = 0.0;
  Rate.BandwidthDemandGBs = Rate.ComputeRate * Kernel.BytesPerIter / 1e9;
  return Rate;
}
