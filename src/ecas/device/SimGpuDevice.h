//===-- ecas/device/SimGpuDevice.h - GPU throughput model ------*- C++ -*-===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Integrated-GPU model: EU-lane throughput derated by the kernel's
/// divergence efficiency and by occupancy when the pending work can't
/// fill the machine (EUs x threads/EU x SIMD lanes). Latency is assumed
/// hidden by multithreading; memory pressure surfaces only through the
/// shared-bandwidth cap. Each enqueue pays a fixed launch latency,
/// modeling the driver/dispatch path of a real OpenCL stack.
///
//===----------------------------------------------------------------------===//

#ifndef ECAS_DEVICE_SIMGPUDEVICE_H
#define ECAS_DEVICE_SIMGPUDEVICE_H

#include "ecas/device/Device.h"

namespace ecas {

/// Simulated integrated-GPU side of the package.
class SimGpuDevice : public SimDevice {
public:
  explicit SimGpuDevice(const PlatformSpec &Spec)
      : SimDevice(DeviceKind::Gpu), Spec(Spec) {}

  /// Fault-injection hook: multiplies the modeled throughput (and the
  /// bandwidth it demands) by \p Scale. 1 is nominal; 0 models a hung
  /// device that accepts work but retires nothing. Set by SimProcessor
  /// each step from the active fault plan.
  void setThroughputDerate(double Scale) { Derate = Scale; }
  double throughputDerate() const { return Derate; }

protected:
  RatePoint rateModel(const KernelCost &Kernel, double FreqGHz,
                      double PendingIters) const override;
  const DevicePowerSpec &powerSpec() const override {
    return Spec.GpuPower;
  }
  double setupSeconds() const override { return Spec.Gpu.LaunchLatencySec; }

private:
  const PlatformSpec &Spec;
  double Derate = 1.0;
};

} // namespace ecas

#endif // ECAS_DEVICE_SIMGPUDEVICE_H
