//===-- ecas/workloads/RayTracer.h - RT rendering workload ------*- C++ -*-===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Sphere-scene ray tracer (Table 1 row RT): per-pixel primary ray with
/// Lambertian shading and hard shadows over a procedurally placed scene
/// (256 spheres, 3 materials, 5 lights on the desktop input).
///
//===----------------------------------------------------------------------===//

#ifndef ECAS_WORKLOADS_RAYTRACER_H
#define ECAS_WORKLOADS_RAYTRACER_H

#include "ecas/workloads/Workload.h"

#include <cstdint>
#include <vector>

namespace ecas {

/// Procedural scene description.
struct SphereScene {
  std::vector<float> Cx, Cy, Cz, Radius;
  std::vector<uint8_t> Material;
  std::vector<float> Lx, Ly, Lz; // Point lights.
  size_t numSpheres() const { return Cx.size(); }
};

/// Builds a deterministic scene with \p Spheres spheres and \p Lights
/// lights.
SphereScene makeSphereScene(unsigned Spheres, unsigned Lights,
                            uint64_t Seed);

/// Renders a WidthxHeight image; returns the checksum (sum of 8-bit
/// luminance values).
uint64_t renderScene(const SphereScene &Scene, uint32_t Width,
                     uint32_t Height);

/// Table 1 row RT: 256 spheres / 3 materials / 5 lights (desktop);
/// 225 spheres on the tablet.
Workload makeRayTracerWorkload(const WorkloadConfig &Config);

} // namespace ecas

#endif // ECAS_WORKLOADS_RAYTRACER_H
