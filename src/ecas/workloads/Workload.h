//===-- ecas/workloads/Workload.h - Benchmark workloads ---------*- C++ -*-===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The twelve evaluation workloads of Table 1, each in two forms: a real
/// host implementation (actual algorithm on generated data, runnable on
/// the work-stealing runtime) and a simulator trace (per-invocation
/// iteration counts plus a calibrated kernel cost descriptor). Graph
/// workloads derive their invocation sequence from running the real
/// algorithm, so the irregularity the paper discusses is genuine.
///
//===----------------------------------------------------------------------===//

#ifndef ECAS_WORKLOADS_WORKLOAD_H
#define ECAS_WORKLOADS_WORKLOAD_H

#include "ecas/core/Schedulers.h"
#include "ecas/profile/WorkloadClass.h"

#include <string>

namespace ecas {

/// Input sizing for workload construction. Scale 1.0 approximates the
/// paper's desktop inputs; the tablet inputs of Table 1 are smaller
/// (shared-memory limit of the 32-bit driver).
struct WorkloadConfig {
  /// Shrinks the *graph* workloads' host-side construction (node count
  /// scales linearly; invocation-trace totals scale with sqrt so the
  /// per-invocation frontier magnitude stays at the W-USA level). The
  /// other workloads' traces cost nothing to build and always use the
  /// Table 1 sizes.
  double Scale = 1.0;
  /// Seed for input generators.
  uint64_t Seed = 0x5eed;
  /// Use the tablet column of Table 1 for input sizes.
  bool TabletInputs = false;
};

/// One benchmark: identity, Table 1 metadata, and the simulator trace.
struct Workload {
  std::string Name;
  std::string Abbrev;
  bool Regular = true;
  InvocationTrace Trace;
  /// Table 1's desktop classification, used by validation tests and the
  /// Table 1 reproduction bench.
  Boundedness ExpectedBound = Boundedness::Compute;
  DurationClass ExpectedCpu = DurationClass::Long;
  DurationClass ExpectedGpu = DurationClass::Long;
  /// Present in the tablet suite (7 of 12 build on the 32-bit target).
  bool OnTablet = false;

  unsigned numInvocations() const {
    return static_cast<unsigned>(Trace.size());
  }
  double totalIterations() const { return traceIterations(Trace); }
};

} // namespace ecas

#endif // ECAS_WORKLOADS_WORKLOAD_H
