//===-- ecas/workloads/Workload.cpp - Benchmark workloads -----------------===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// Workload is a plain aggregate; its behaviour lives in the per-benchmark
// translation units. This file exists so the header has a home TU and to
// keep the build graph uniform.
//
//===----------------------------------------------------------------------===//

#include "ecas/workloads/Workload.h"

// No out-of-line definitions required.
