//===-- ecas/workloads/MatrixMultiply.h - MM workload -----------*- C++ -*-===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dense single-precision matrix multiply (Table 1 row MM): regular,
/// compute-bound, one kernel invocation over all output elements.
///
//===----------------------------------------------------------------------===//

#ifndef ECAS_WORKLOADS_MATRIXMULTIPLY_H
#define ECAS_WORKLOADS_MATRIXMULTIPLY_H

#include "ecas/workloads/Workload.h"

#include <cstdint>
#include <vector>

namespace ecas {

/// C = A * B for row-major NxN matrices (ikj loop order for locality).
void multiplyMatrices(const std::vector<float> &A,
                      const std::vector<float> &B, std::vector<float> &C,
                      uint32_t N);

/// Deterministic validation value: C's elements quantized and summed for
/// seeded pseudo-random A, B of size NxN.
uint64_t matrixMultiplyChecksum(uint32_t N, uint64_t Seed);

/// Table 1 row MM: 2048x2048 (desktop), 1024x1024 (tablet), one launch.
Workload makeMatrixMultiplyWorkload(const WorkloadConfig &Config);

} // namespace ecas

#endif // ECAS_WORKLOADS_MATRIXMULTIPLY_H
