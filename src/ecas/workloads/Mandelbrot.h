//===-- ecas/workloads/Mandelbrot.h - MB fractal workload -------*- C++ -*-===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Mandelbrot set rasterization (Table 1 row MB): per-pixel escape-time
/// iteration with input-dependent trip counts — the canonical "irregular
/// but embarrassingly parallel" workload.
///
//===----------------------------------------------------------------------===//

#ifndef ECAS_WORKLOADS_MANDELBROT_H
#define ECAS_WORKLOADS_MANDELBROT_H

#include "ecas/workloads/Workload.h"

#include <cstdint>
#include <vector>

namespace ecas {

/// Renders escape-time counts for a WidthxHeight raster of the region
/// [-2.2, 1.0] x [-1.28, 1.28] with at most \p MaxIter iterations.
/// \p Out is resized to Width*Height.
void renderMandelbrot(uint32_t Width, uint32_t Height, uint32_t MaxIter,
                      std::vector<uint16_t> &Out);

/// Sum of all escape counts — the validation checksum.
uint64_t mandelbrotChecksum(uint32_t Width, uint32_t Height,
                            uint32_t MaxIter);

/// Table 1 row MB: 7680x6144 image, one kernel invocation.
Workload makeMandelbrotWorkload(const WorkloadConfig &Config);

} // namespace ecas

#endif // ECAS_WORKLOADS_MANDELBROT_H
