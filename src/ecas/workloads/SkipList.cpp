//===-- ecas/workloads/SkipList.cpp - SL index workload -------------------===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ecas/workloads/SkipList.h"

#include "ecas/support/Random.h"

#include <algorithm>

using namespace ecas;

struct SkipList::Node {
  uint64_t Key;
  unsigned Height;
  Node *Next[1]; // Over-allocated to Height entries.
};

static SkipList::Node *allocateNode(uint64_t Key, unsigned Height) {
  size_t Bytes = sizeof(SkipList::Node) +
                 (Height - 1) * sizeof(SkipList::Node *);
  auto *Raw = static_cast<SkipList::Node *>(::operator new(Bytes));
  Raw->Key = Key;
  Raw->Height = Height;
  for (unsigned L = 0; L != Height; ++L)
    Raw->Next[L] = nullptr;
  return Raw;
}

SkipList::SkipList() { Head = allocateNode(0, MaxLevels); }

SkipList::~SkipList() {
  Node *Cursor = Head;
  while (Cursor) {
    Node *Next = Cursor->Next[0];
    ::operator delete(Cursor);
    Cursor = Next;
  }
}

/// Tower height derived from the key: geometric(1/2), capped. Using the
/// key keeps the structure independent of insertion order.
static unsigned towerHeight(uint64_t Key) {
  SplitMix64 Mix(Key);
  uint64_t Bits = Mix.next();
  unsigned Height = 1;
  while ((Bits & 1) && Height < 32) {
    ++Height;
    Bits >>= 1;
  }
  return Height;
}

bool SkipList::insert(uint64_t Key) {
  Node *Update[MaxLevels];
  Node *Cursor = Head;
  for (unsigned LevelPlus1 = Levels; LevelPlus1 != 0; --LevelPlus1) {
    unsigned L = LevelPlus1 - 1;
    while (Cursor->Next[L] && Cursor->Next[L]->Key < Key)
      Cursor = Cursor->Next[L];
    Update[L] = Cursor;
  }
  Node *Candidate = Cursor->Next[0];
  if (Candidate && Candidate->Key == Key)
    return false;

  unsigned Height = towerHeight(Key);
  if (Height > Levels) {
    for (unsigned L = Levels; L != Height; ++L)
      Update[L] = Head;
    Levels = Height;
  }
  Node *Fresh = allocateNode(Key, Height);
  for (unsigned L = 0; L != Height; ++L) {
    Fresh->Next[L] = Update[L]->Next[L];
    Update[L]->Next[L] = Fresh;
  }
  ++Count;
  return true;
}

bool SkipList::contains(uint64_t Key) const {
  const Node *Cursor = Head;
  for (unsigned LevelPlus1 = Levels; LevelPlus1 != 0; --LevelPlus1) {
    unsigned L = LevelPlus1 - 1;
    while (Cursor->Next[L] && Cursor->Next[L]->Key < Key)
      Cursor = Cursor->Next[L];
  }
  const Node *Candidate = Cursor->Next[0];
  return Candidate && Candidate->Key == Key;
}

uint64_t ecas::buildAndProbeSkipList(const std::vector<uint64_t> &Keys) {
  SkipList List;
  for (uint64_t Key : Keys)
    List.insert(Key);
  uint64_t Hits = 0;
  for (uint64_t Key : Keys) {
    if (List.contains(Key))
      ++Hits;
    if (List.contains(Key + 1)) // Near-certain miss stream.
      ++Hits;
  }
  return Hits;
}

Workload ecas::makeSkipListWorkload(const WorkloadConfig &Config) {
  KernelDesc Kernel;
  Kernel.Name = "sl.probe";
  Kernel.CpuCyclesPerIter = 180.0;
  Kernel.GpuCyclesPerIter = 400.0; // Pointer chasing wrecks the GPU.
  Kernel.BytesPerIter = 64.0;
  Kernel.LoadStoresPerIter = 12.0;
  Kernel.LlcMissRatio = 0.50;
  Kernel.InstrsPerIter = 200.0;
  Kernel.GpuEfficiency = 0.08;
  Kernel.CpuVectorizable = 0.0;
  Kernel.withAutoId();

  Workload W;
  W.Name = "SkipList";
  W.Abbrev = "SL";
  W.Regular = false;
  W.ExpectedBound = Boundedness::Memory;
  W.ExpectedCpu = DurationClass::Long;
  W.ExpectedGpu = DurationClass::Long;
  W.OnTablet = true;
  W.Trace = {{Kernel, Config.TabletInputs ? 45e6 : 500e6}};
  return W;
}
