//===-- ecas/workloads/BlackScholes.cpp - BS pricing workload -------------===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ecas/workloads/BlackScholes.h"

#include <cmath>

using namespace ecas;

/// Cumulative standard normal via erf.
static float cumulativeNormal(float X) {
  return 0.5f * (1.0f + std::erf(X * 0.70710678f));
}

float ecas::blackScholesCall(float Spot, float Strike, float Years,
                             float Volatility, float Rate) {
  float SqrtT = std::sqrt(Years);
  float D1 = (std::log(Spot / Strike) +
              (Rate + 0.5f * Volatility * Volatility) * Years) /
             (Volatility * SqrtT);
  float D2 = D1 - Volatility * SqrtT;
  return Spot * cumulativeNormal(D1) -
         Strike * std::exp(-Rate * Years) * cumulativeNormal(D2);
}

void ecas::priceBatch(const OptionBatch &Batch, std::vector<float> &CallOut) {
  CallOut.resize(Batch.size());
  for (size_t I = 0; I != Batch.size(); ++I)
    CallOut[I] = blackScholesCall(Batch.Spot[I], Batch.Strike[I],
                                  Batch.Years[I], Batch.Volatility[I],
                                  Batch.Rate[I]);
}

uint64_t ecas::blackScholesChecksum(const OptionBatch &Batch) {
  std::vector<float> Prices;
  priceBatch(Batch, Prices);
  uint64_t Sum = 0;
  for (float Price : Prices)
    Sum += static_cast<uint64_t>(Price * 100.0f);
  return Sum;
}

Workload ecas::makeBlackScholesWorkload(const WorkloadConfig &Config) {
  KernelDesc Kernel;
  Kernel.Name = "bs.price";
  // log/exp/erf dominate: hundreds of cycles per option on both sides.
  Kernel.CpuCyclesPerIter = 1300.0;
  Kernel.GpuCyclesPerIter = 1400.0;
  Kernel.BytesPerIter = 28.0;
  Kernel.LoadStoresPerIter = 8.0;
  Kernel.LlcMissRatio = 0.08;
  Kernel.InstrsPerIter = 950.0;
  Kernel.GpuEfficiency = 0.9;
  Kernel.CpuVectorizable = 0.85;
  Kernel.withAutoId();

  Workload W;
  W.Name = "Blackscholes";
  W.Abbrev = "BS";
  W.Regular = true;
  W.ExpectedBound = Boundedness::Compute;
  W.ExpectedCpu = DurationClass::Short;
  W.ExpectedGpu = DurationClass::Short;
  W.OnTablet = true;
  // Desktop: 64K options x 2000 invocations; tablet: one 2.62M batch
  // repriced the same number of times.
  double PerInvocation = Config.TabletInputs ? 2621440.0 : 65536.0;
  unsigned Invocations = 2000;
  W.Trace.reserve(Invocations);
  for (unsigned I = 0; I != Invocations; ++I)
    W.Trace.push_back({Kernel, PerInvocation});
  return W;
}
