//===-- ecas/workloads/SkipList.h - SL index workload -----------*- C++ -*-===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Skip-list construction and search (Table 1 row SL): pointer-chasing,
/// memory-bound, irregular — a real probabilistic skip list over random
/// 64-bit keys.
///
//===----------------------------------------------------------------------===//

#ifndef ECAS_WORKLOADS_SKIPLIST_H
#define ECAS_WORKLOADS_SKIPLIST_H

#include "ecas/workloads/Workload.h"

#include <cstdint>
#include <memory>
#include <vector>

namespace ecas {

/// Deterministic probabilistic skip list (tower heights drawn from the
/// key itself, so structure is reproducible).
class SkipList {
public:
  /// Opaque tower node; defined in the implementation file.
  struct Node;

  SkipList();
  ~SkipList();
  SkipList(const SkipList &) = delete;
  SkipList &operator=(const SkipList &) = delete;

  /// Inserts \p Key (duplicates ignored). \returns true when inserted.
  bool insert(uint64_t Key);
  bool contains(uint64_t Key) const;
  size_t size() const { return Count; }
  /// Height of the tallest tower.
  unsigned height() const { return Levels; }

private:
  static constexpr unsigned MaxLevels = 32;
  Node *Head;
  unsigned Levels = 1;
  size_t Count = 0;
};

/// Builds a skip list from \p Keys and probes it with every key plus a
/// shifted miss-stream. \returns hit count (the validation checksum).
uint64_t buildAndProbeSkipList(const std::vector<uint64_t> &Keys);

/// Table 1 row SL: 500M keys (desktop) / 45M (tablet), one invocation.
Workload makeSkipListWorkload(const WorkloadConfig &Config);

} // namespace ecas

#endif // ECAS_WORKLOADS_SKIPLIST_H
