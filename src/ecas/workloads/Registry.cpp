//===-- ecas/workloads/Registry.cpp - Benchmark suites --------------------===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ecas/workloads/Registry.h"

#include "ecas/workloads/BarnesHut.h"
#include "ecas/workloads/BlackScholes.h"
#include "ecas/workloads/FaceDetect.h"
#include "ecas/workloads/GraphWorkloads.h"
#include "ecas/workloads/Mandelbrot.h"
#include "ecas/workloads/MatrixMultiply.h"
#include "ecas/workloads/NBody.h"
#include "ecas/workloads/RayTracer.h"
#include "ecas/workloads/Seismic.h"
#include "ecas/workloads/SkipList.h"

#include <algorithm>
#include <cctype>

using namespace ecas;

std::vector<Workload> ecas::desktopSuite(const WorkloadConfig &Config) {
  std::vector<Workload> Suite;
  Suite.push_back(makeBarnesHutWorkload(Config));
  Suite.push_back(makeBfsWorkload(Config));
  Suite.push_back(makeCcWorkload(Config));
  Suite.push_back(makeFaceDetectWorkload(Config));
  Suite.push_back(makeMandelbrotWorkload(Config));
  Suite.push_back(makeSkipListWorkload(Config));
  Suite.push_back(makeSsspWorkload(Config));
  Suite.push_back(makeBlackScholesWorkload(Config));
  Suite.push_back(makeMatrixMultiplyWorkload(Config));
  Suite.push_back(makeNBodyWorkload(Config));
  Suite.push_back(makeRayTracerWorkload(Config));
  Suite.push_back(makeSeismicWorkload(Config));
  return Suite;
}

std::vector<Workload> ecas::tabletSuite(WorkloadConfig Config) {
  Config.TabletInputs = true;
  std::vector<Workload> Suite;
  Suite.push_back(makeMandelbrotWorkload(Config));
  Suite.push_back(makeSkipListWorkload(Config));
  Suite.push_back(makeBlackScholesWorkload(Config));
  Suite.push_back(makeMatrixMultiplyWorkload(Config));
  Suite.push_back(makeNBodyWorkload(Config));
  Suite.push_back(makeRayTracerWorkload(Config));
  Suite.push_back(makeSeismicWorkload(Config));
  return Suite;
}

const Workload *ecas::findWorkload(const std::vector<Workload> &Suite,
                                   const std::string &Abbrev) {
  auto Lower = [](std::string Text) {
    std::transform(Text.begin(), Text.end(), Text.begin(),
                   [](unsigned char C) { return std::tolower(C); });
    return Text;
  };
  std::string Wanted = Lower(Abbrev);
  for (const Workload &W : Suite)
    if (Lower(W.Abbrev) == Wanted)
      return &W;
  return nullptr;
}
