//===-- ecas/workloads/MatrixMultiply.cpp - MM workload -------------------===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ecas/workloads/MatrixMultiply.h"

#include "ecas/support/Assert.h"
#include "ecas/support/Random.h"

#include <cmath>

using namespace ecas;

void ecas::multiplyMatrices(const std::vector<float> &A,
                            const std::vector<float> &B,
                            std::vector<float> &C, uint32_t N) {
  ECAS_CHECK(A.size() == static_cast<size_t>(N) * N &&
                 B.size() == static_cast<size_t>(N) * N,
             "matrix operands must be NxN");
  C.assign(static_cast<size_t>(N) * N, 0.0f);
  for (uint32_t I = 0; I != N; ++I) {
    for (uint32_t K = 0; K != N; ++K) {
      float Aik = A[static_cast<size_t>(I) * N + K];
      const float *Brow = &B[static_cast<size_t>(K) * N];
      float *Crow = &C[static_cast<size_t>(I) * N];
      for (uint32_t J = 0; J != N; ++J)
        Crow[J] += Aik * Brow[J];
    }
  }
}

uint64_t ecas::matrixMultiplyChecksum(uint32_t N, uint64_t Seed) {
  Xoshiro256 Rng(Seed);
  std::vector<float> A(static_cast<size_t>(N) * N),
      B(static_cast<size_t>(N) * N), C;
  for (float &V : A)
    V = static_cast<float>(Rng.nextDouble(-1.0, 1.0));
  for (float &V : B)
    V = static_cast<float>(Rng.nextDouble(-1.0, 1.0));
  multiplyMatrices(A, B, C, N);
  uint64_t Sum = 0;
  for (float V : C)
    Sum += static_cast<uint64_t>(std::llabs(static_cast<long long>(V * 16)));
  return Sum;
}

Workload ecas::makeMatrixMultiplyWorkload(const WorkloadConfig &Config) {
  KernelDesc Kernel;
  Kernel.Name = "mm.tile";
  Kernel.CpuCyclesPerIter = 18000.0; // One output element: 2048 MACs.
  Kernel.GpuCyclesPerIter = 5600.0;
  Kernel.BytesPerIter = 48.0; // Blocked reuse keeps traffic low.
  Kernel.LoadStoresPerIter = 600.0;
  Kernel.LlcMissRatio = 0.02;
  Kernel.InstrsPerIter = 4500.0;
  Kernel.GpuEfficiency = 0.30;
  Kernel.CpuVectorizable = 0.95;
  Kernel.withAutoId();

  Workload W;
  W.Name = "Matrix Multiply";
  W.Abbrev = "MM";
  W.Regular = true;
  W.ExpectedBound = Boundedness::Compute;
  W.ExpectedCpu = DurationClass::Long;
  W.ExpectedGpu = DurationClass::Long;
  W.OnTablet = true;
  double Side = Config.TabletInputs ? 1024.0 : 2048.0;
  W.Trace = {{Kernel, Side * Side}};
  return W;
}
