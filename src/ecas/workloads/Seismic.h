//===-- ecas/workloads/Seismic.h - SM wave simulation -----------*- C++ -*-===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Seismic wave propagation (Table 1 row SM, from TBB's seismic demo):
/// a 2-D stress/velocity stencil advanced one frame per kernel
/// invocation — regular but memory-bound streaming.
///
//===----------------------------------------------------------------------===//

#ifndef ECAS_WORKLOADS_SEISMIC_H
#define ECAS_WORKLOADS_SEISMIC_H

#include "ecas/workloads/Workload.h"

#include <cstdint>
#include <vector>

namespace ecas {

/// Seismic simulation state over a WidthxHeight grid.
struct SeismicState {
  uint32_t Width = 0, Height = 0;
  std::vector<float> Velocity;
  std::vector<float> Stress;
  std::vector<float> Damping;
};

/// Initializes the grid with a point impulse and absorbing borders.
SeismicState makeSeismicState(uint32_t Width, uint32_t Height);

/// Advances one frame (velocity update then stress update).
void stepSeismic(SeismicState &State);

/// Runs \p Frames frames and returns the checksum: sum of |stress|
/// quantized to 1e-4.
uint64_t runSeismic(SeismicState &State, unsigned Frames);

/// Table 1 row SM: 1950x1326 grid, 100 frames (both platforms).
Workload makeSeismicWorkload(const WorkloadConfig &Config);

} // namespace ecas

#endif // ECAS_WORKLOADS_SEISMIC_H
