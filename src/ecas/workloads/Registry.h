//===-- ecas/workloads/Registry.h - Benchmark suites ------------*- C++ -*-===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Assembles the Table 1 benchmark suites: the twelve desktop workloads
/// and the seven that run on the tablet (the rest fail to build on the
/// paper's 32-bit toolchain).
///
//===----------------------------------------------------------------------===//

#ifndef ECAS_WORKLOADS_REGISTRY_H
#define ECAS_WORKLOADS_REGISTRY_H

#include "ecas/workloads/Workload.h"

#include <vector>

namespace ecas {

/// All twelve workloads with the desktop inputs of Table 1.
std::vector<Workload> desktopSuite(const WorkloadConfig &Config = {});

/// The seven tablet workloads (MB, SL, BS, MM, NB, RT, SM) with the
/// tablet inputs of Table 1.
std::vector<Workload> tabletSuite(WorkloadConfig Config = {});

/// Finds a workload by abbreviation ("CC", "bs", ...); returns nullptr
/// when absent.
const Workload *findWorkload(const std::vector<Workload> &Suite,
                             const std::string &Abbrev);

} // namespace ecas

#endif // ECAS_WORKLOADS_REGISTRY_H
