//===-- ecas/workloads/BarnesHut.h - BH n-body workload ---------*- C++ -*-===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Barnes-Hut hierarchical n-body (Table 1 row BH): a real octree build
/// plus theta-criterion force traversal over generated bodies, and the
/// matching simulator workload (irregular, memory-bound, long on both
/// devices).
///
//===----------------------------------------------------------------------===//

#ifndef ECAS_WORKLOADS_BARNESHUT_H
#define ECAS_WORKLOADS_BARNESHUT_H

#include "ecas/workloads/Generators.h"
#include "ecas/workloads/Workload.h"

namespace ecas {

/// One Barnes-Hut force-computation step over \p Bodies with opening
/// angle \p Theta. \returns a checksum: sum of per-body force magnitudes
/// quantized to 1e-3 (deterministic across platforms at double
/// precision).
uint64_t runBarnesHutStep(const BodySet &Bodies, float Theta = 0.5f);

/// Table 1 row BH: 1M bodies, 1 step, 1 kernel invocation (desktop).
Workload makeBarnesHutWorkload(const WorkloadConfig &Config);

} // namespace ecas

#endif // ECAS_WORKLOADS_BARNESHUT_H
