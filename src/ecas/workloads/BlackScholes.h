//===-- ecas/workloads/BlackScholes.h - BS pricing workload -----*- C++ -*-===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Black-Scholes European option pricing (Table 1 row BS, from PARSEC):
/// a regular compute-bound kernel invoked 2000 times over the same
/// batch.
///
//===----------------------------------------------------------------------===//

#ifndef ECAS_WORKLOADS_BLACKSCHOLES_H
#define ECAS_WORKLOADS_BLACKSCHOLES_H

#include "ecas/workloads/Generators.h"
#include "ecas/workloads/Workload.h"

namespace ecas {

/// Prices one European call: the closed-form Black-Scholes formula with
/// an erf-based cumulative normal.
float blackScholesCall(float Spot, float Strike, float Years,
                       float Volatility, float Rate);

/// Prices the whole batch into \p CallOut (resized).
void priceBatch(const OptionBatch &Batch, std::vector<float> &CallOut);

/// Sum of prices quantized to cents — the validation checksum.
uint64_t blackScholesChecksum(const OptionBatch &Batch);

/// Table 1 row BS: 64K options x 2000 invocations (desktop) or 2.62M
/// options (tablet input).
Workload makeBlackScholesWorkload(const WorkloadConfig &Config);

} // namespace ecas

#endif // ECAS_WORKLOADS_BLACKSCHOLES_H
