//===-- ecas/workloads/FaceDetect.h - FD cascade workload -------*- C++ -*-===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Viola-Jones-style face detection (Table 1 row FD): integral image
/// plus a synthetic Haar-feature rejection cascade over sliding windows.
/// The paper used OpenCV's detector on the 3000x2171 Solvay-1927
/// photograph; we substitute a seeded synthetic image and cascade with
/// the same computational structure (documented in DESIGN.md). The
/// workload is compute-bound, CPU-biased (early-exit divergence ruins
/// GPU efficiency), with one invocation per cascade stage and scale.
///
//===----------------------------------------------------------------------===//

#ifndef ECAS_WORKLOADS_FACEDETECT_H
#define ECAS_WORKLOADS_FACEDETECT_H

#include "ecas/workloads/Workload.h"

#include <cstdint>
#include <vector>

namespace ecas {

/// 8-bit grayscale image.
struct GrayImage {
  uint32_t Width = 0, Height = 0;
  std::vector<uint8_t> Pixels;
};

/// Procedural test image: smooth gradients plus blob "faces".
GrayImage makeTestImage(uint32_t Width, uint32_t Height, uint64_t Seed);

/// Summed-area table; Out[(y+1)*(W+1) + (x+1)] = sum of pixels in
/// [0..x] x [0..y]. Out is resized to (W+1)*(H+1).
void integralImage(const GrayImage &Image, std::vector<uint64_t> &Out);

/// One Haar-like rectangle feature on the integral image.
struct HaarFeature {
  uint8_t Dx0, Dy0, Dx1, Dy1; // Positive rect within the window.
  int32_t Threshold;
  bool Invert;
};

/// A rejection cascade of feature stages.
struct Cascade {
  unsigned WindowSize = 24;
  std::vector<std::vector<HaarFeature>> Stages;
};

/// Deterministic synthetic cascade with \p NumStages stages of
/// escalating length.
Cascade makeSyntheticCascade(unsigned NumStages, uint64_t Seed);

/// Runs the cascade over all windows at stride 2; \returns the number of
/// windows surviving all stages (the validation checksum).
uint64_t detectFaces(const GrayImage &Image, const Cascade &Cascade);

/// Table 1 row FD: 132 invocations (stages x scales), compute-bound,
/// CPU-biased.
Workload makeFaceDetectWorkload(const WorkloadConfig &Config);

} // namespace ecas

#endif // ECAS_WORKLOADS_FACEDETECT_H
