//===-- ecas/workloads/Mandelbrot.cpp - MB fractal workload ---------------===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ecas/workloads/Mandelbrot.h"

#include "ecas/support/Assert.h"

#include <cmath>

using namespace ecas;

void ecas::renderMandelbrot(uint32_t Width, uint32_t Height,
                            uint32_t MaxIter, std::vector<uint16_t> &Out) {
  ECAS_CHECK(Width > 0 && Height > 0, "raster must be non-empty");
  ECAS_CHECK(MaxIter <= 65535, "escape counts stored as uint16");
  Out.assign(static_cast<size_t>(Width) * Height, 0);
  const double X0 = -2.2, X1 = 1.0, Y0 = -1.28, Y1 = 1.28;
  for (uint32_t Py = 0; Py != Height; ++Py) {
    double Ci = Y0 + (Y1 - Y0) * Py / Height;
    for (uint32_t Px = 0; Px != Width; ++Px) {
      double Cr = X0 + (X1 - X0) * Px / Width;
      double Zr = 0.0, Zi = 0.0;
      uint32_t Iter = 0;
      while (Iter < MaxIter && Zr * Zr + Zi * Zi <= 4.0) {
        double NewZr = Zr * Zr - Zi * Zi + Cr;
        Zi = 2.0 * Zr * Zi + Ci;
        Zr = NewZr;
        ++Iter;
      }
      Out[static_cast<size_t>(Py) * Width + Px] =
          static_cast<uint16_t>(Iter);
    }
  }
}

uint64_t ecas::mandelbrotChecksum(uint32_t Width, uint32_t Height,
                                  uint32_t MaxIter) {
  std::vector<uint16_t> Raster;
  renderMandelbrot(Width, Height, MaxIter, Raster);
  uint64_t Sum = 0;
  for (uint16_t Count : Raster)
    Sum += Count;
  return Sum;
}

Workload ecas::makeMandelbrotWorkload(const WorkloadConfig &Config) {
  KernelDesc Kernel;
  Kernel.Name = "mb.escape";
  // The escape loop averages ~160 trips of ~10 cycles per pixel.
  Kernel.CpuCyclesPerIter = 2300.0;
  Kernel.GpuCyclesPerIter = 2000.0;
  Kernel.BytesPerIter = 24.0;
  Kernel.LoadStoresPerIter = 6.0;
  Kernel.LlcMissRatio = 0.35;
  Kernel.InstrsPerIter = 1700.0;
  Kernel.GpuEfficiency = 0.50; // Divergent escape-time trip counts.
  Kernel.CpuVectorizable = 0.50;
  Kernel.withAutoId();

  Workload W;
  W.Name = "Mandelbrot";
  W.Abbrev = "MB";
  W.Regular = false;
  W.ExpectedBound = Boundedness::Memory;
  W.ExpectedCpu = DurationClass::Long;
  W.ExpectedGpu = DurationClass::Long;
  W.OnTablet = true; // Same 7680x6144 input on both platforms (Table 1).
  W.Trace = {{Kernel, 7680.0 * 6144.0}};
  return W;
}
