//===-- ecas/workloads/Generators.h - Synthetic input builders -*- C++ -*-===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic input generators standing in for the paper's external
/// datasets: a synthetic road network in the spirit of the W-USA graph
/// (planar, low degree, huge diameter), particle/body sets, option
/// batches, and key streams. All are seeded, so traces and checksums are
/// reproducible across runs and platforms.
///
//===----------------------------------------------------------------------===//

#ifndef ECAS_WORKLOADS_GENERATORS_H
#define ECAS_WORKLOADS_GENERATORS_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ecas {

/// CSR adjacency of an undirected graph with float edge weights.
struct RoadGraph {
  uint32_t Width = 0;
  uint32_t Height = 0;
  /// CSR: node v's edges are Targets[Offsets[v] .. Offsets[v+1]).
  std::vector<uint32_t> Offsets;
  std::vector<uint32_t> Targets;
  std::vector<float> Weights;

  uint32_t numNodes() const { return Width * Height; }
  size_t numEdges() const { return Targets.size(); }
};

/// Builds a Width x Height grid road network: 4-neighbour streets with
/// ~8% of edges removed (dead ends / rivers) and weights in [1, 10).
/// Planar and low-degree like a real road graph, so BFS/SSSP traverse
/// thousands of levels — the irregularity profile the paper's graph
/// workloads exhibit.
RoadGraph makeRoadGraph(uint32_t Width, uint32_t Height, uint64_t Seed);

/// 3-D body set with positions in the unit cube and masses in [0.5, 2).
struct BodySet {
  std::vector<float> X, Y, Z, Mass;
  size_t size() const { return X.size(); }
};
BodySet makeBodies(size_t Count, uint64_t Seed);

/// Black-Scholes option batch.
struct OptionBatch {
  std::vector<float> Spot, Strike, Years, Volatility, Rate;
  size_t size() const { return Spot.size(); }
};
OptionBatch makeOptions(size_t Count, uint64_t Seed);

/// Uniformly random 64-bit keys (skip-list inserts).
std::vector<uint64_t> makeKeys(size_t Count, uint64_t Seed);

} // namespace ecas

#endif // ECAS_WORKLOADS_GENERATORS_H
