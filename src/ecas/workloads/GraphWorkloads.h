//===-- ecas/workloads/GraphWorkloads.h - BFS, CC, SSSP ---------*- C++ -*-===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The three irregular graph workloads (BFS, Connected Components,
/// Shortest Path) of Table 1. The real algorithms run on a synthetic
/// road network; their per-round active-set sizes become the simulator
/// invocation trace, so frontier dynamics — the source of the paper's CC
/// mis-prediction anecdote — are genuine, not modeled.
///
//===----------------------------------------------------------------------===//

#ifndef ECAS_WORKLOADS_GRAPHWORKLOADS_H
#define ECAS_WORKLOADS_GRAPHWORKLOADS_H

#include "ecas/workloads/Generators.h"
#include "ecas/workloads/Workload.h"

namespace ecas {

/// Result of one host graph-algorithm run.
struct GraphAlgoResult {
  /// Active-set (frontier/worklist) size per round.
  std::vector<double> RoundSizes;
  /// Order-independent validation value (see each algorithm's doc).
  uint64_t Checksum = 0;
};

/// Level-synchronous BFS from \p Source. Checksum: sum of finite hop
/// depths. Unreached nodes contribute nothing.
GraphAlgoResult runBfsLevels(const RoadGraph &Graph, uint32_t Source);

/// Connected components by min-label propagation with a worklist.
/// Checksum: number of components * 2^32 + (sum of final labels mod
/// 2^32).
GraphAlgoResult runConnectedComponents(const RoadGraph &Graph);

/// Single-source shortest paths: Bellman-Ford with a worklist.
/// Checksum: sum of floor(distance) over reached nodes.
GraphAlgoResult runShortestPaths(const RoadGraph &Graph, uint32_t Source);

/// Workload factories (Table 1 rows BFS, CC, SP).
Workload makeBfsWorkload(const WorkloadConfig &Config);
Workload makeCcWorkload(const WorkloadConfig &Config);
Workload makeSsspWorkload(const WorkloadConfig &Config);

/// Road-network dimensions used by the graph workloads under \p Config
/// (875x875 at scale 1.0, giving BFS ~1.7k levels like W-USA).
void graphDimensions(const WorkloadConfig &Config, uint32_t &Width,
                     uint32_t &Height);

} // namespace ecas

#endif // ECAS_WORKLOADS_GRAPHWORKLOADS_H
