//===-- ecas/workloads/GraphWorkloads.cpp - BFS, CC, SSSP -----------------===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ecas/workloads/GraphWorkloads.h"

#include "ecas/support/Assert.h"

#include <algorithm>
#include <cmath>
#include <limits>

using namespace ecas;

GraphAlgoResult ecas::runBfsLevels(const RoadGraph &Graph, uint32_t Source) {
  ECAS_CHECK(Source < Graph.numNodes(), "BFS source out of range");
  GraphAlgoResult Result;
  const uint32_t Unvisited = std::numeric_limits<uint32_t>::max();
  std::vector<uint32_t> Depth(Graph.numNodes(), Unvisited);
  std::vector<uint32_t> Frontier{Source};
  Depth[Source] = 0;
  uint64_t DepthSum = 0;
  uint32_t Level = 0;
  while (!Frontier.empty()) {
    Result.RoundSizes.push_back(static_cast<double>(Frontier.size()));
    std::vector<uint32_t> Next;
    Next.reserve(Frontier.size() * 2);
    for (uint32_t V : Frontier) {
      for (uint32_t E = Graph.Offsets[V]; E != Graph.Offsets[V + 1]; ++E) {
        uint32_t U = Graph.Targets[E];
        if (Depth[U] != Unvisited)
          continue;
        Depth[U] = Level + 1;
        DepthSum += Level + 1;
        Next.push_back(U);
      }
    }
    Frontier = std::move(Next);
    ++Level;
  }
  Result.Checksum = DepthSum;
  return Result;
}

GraphAlgoResult ecas::runConnectedComponents(const RoadGraph &Graph) {
  GraphAlgoResult Result;
  const uint32_t Nodes = Graph.numNodes();
  std::vector<uint32_t> Label(Nodes);
  for (uint32_t V = 0; V != Nodes; ++V)
    Label[V] = V;
  std::vector<uint8_t> InNext(Nodes, 0);
  std::vector<uint32_t> Worklist(Nodes);
  for (uint32_t V = 0; V != Nodes; ++V)
    Worklist[V] = V;

  // Rounds are synchronous (labels read from the previous round's
  // snapshot), matching a GPU-style bulk-parallel kernel: asynchronous
  // in-place propagation would collapse the round count and with it the
  // invocation trace.
  std::vector<uint32_t> NextLabel = Label;
  while (!Worklist.empty()) {
    Result.RoundSizes.push_back(static_cast<double>(Worklist.size()));
    std::vector<uint32_t> Next;
    for (uint32_t V : Worklist) {
      uint32_t Mine = Label[V];
      for (uint32_t E = Graph.Offsets[V]; E != Graph.Offsets[V + 1]; ++E) {
        uint32_t U = Graph.Targets[E];
        if (Mine < NextLabel[U]) {
          NextLabel[U] = Mine;
          if (!InNext[U]) {
            InNext[U] = 1;
            Next.push_back(U);
          }
        }
      }
    }
    // Incremental sync: only entries in Next changed in NextLabel.
    for (uint32_t U : Next) {
      InNext[U] = 0;
      Label[U] = NextLabel[U];
    }
    Worklist = std::move(Next);
  }

  uint64_t LabelSum = 0;
  uint64_t Components = 0;
  for (uint32_t V = 0; V != Nodes; ++V) {
    LabelSum += Label[V];
    if (Label[V] == V)
      ++Components;
  }
  Result.Checksum = (Components << 32) + (LabelSum & 0xffffffffULL);
  return Result;
}

GraphAlgoResult ecas::runShortestPaths(const RoadGraph &Graph,
                                       uint32_t Source) {
  ECAS_CHECK(Source < Graph.numNodes(), "SSSP source out of range");
  GraphAlgoResult Result;
  const uint32_t Nodes = Graph.numNodes();
  const float Inf = std::numeric_limits<float>::infinity();
  std::vector<float> Dist(Nodes, Inf);
  std::vector<uint8_t> InNext(Nodes, 0);
  Dist[Source] = 0.0f;
  std::vector<uint32_t> Worklist{Source};

  // Synchronous relaxation rounds (see runConnectedComponents).
  std::vector<float> NextDist = Dist;
  while (!Worklist.empty()) {
    Result.RoundSizes.push_back(static_cast<double>(Worklist.size()));
    std::vector<uint32_t> Next;
    for (uint32_t V : Worklist) {
      float Base = Dist[V];
      for (uint32_t E = Graph.Offsets[V]; E != Graph.Offsets[V + 1]; ++E) {
        uint32_t U = Graph.Targets[E];
        float Cand = Base + Graph.Weights[E];
        if (Cand < NextDist[U]) {
          NextDist[U] = Cand;
          if (!InNext[U]) {
            InNext[U] = 1;
            Next.push_back(U);
          }
        }
      }
    }
    for (uint32_t U : Next) {
      InNext[U] = 0;
      Dist[U] = NextDist[U];
    }
    Worklist = std::move(Next);
  }

  uint64_t DistSum = 0;
  for (uint32_t V = 0; V != Nodes; ++V)
    if (Dist[V] < Inf)
      DistSum += static_cast<uint64_t>(Dist[V]);
  Result.Checksum = DistSum;
  return Result;
}

void ecas::graphDimensions(const WorkloadConfig &Config, uint32_t &Width,
                           uint32_t &Height) {
  // 875x875 at scale 1.0: corner-sourced BFS then has ~1.7k levels,
  // matching the W-USA invocation counts of Table 1.
  double Side = 875.0 * std::sqrt(std::max(Config.Scale, 1e-4));
  Width = Height = std::max<uint32_t>(8, static_cast<uint32_t>(Side));
}

namespace {

/// Converts per-round sizes into an invocation trace for \p Kernel,
/// scaling iteration counts so the totals match the W-USA magnitudes
/// (frontier *shape* is measured; magnitude is rescaled — documented in
/// DESIGN.md as trace scaling).
InvocationTrace buildTrace(const std::vector<double> &RoundSizes,
                           const KernelDesc &Kernel, double TargetTotal) {
  double Total = 0.0;
  for (double Size : RoundSizes)
    Total += Size;
  double Factor = Total > 0.0 ? TargetTotal / Total : 1.0;
  InvocationTrace Trace;
  Trace.reserve(RoundSizes.size());
  for (double Size : RoundSizes)
    Trace.push_back({Kernel, std::max(1.0, std::floor(Size * Factor))});
  return Trace;
}

} // namespace

Workload ecas::makeBfsWorkload(const WorkloadConfig &Config) {
  uint32_t Width, Height;
  graphDimensions(Config, Width, Height);
  RoadGraph Graph = makeRoadGraph(Width, Height, Config.Seed);
  GraphAlgoResult Algo = runBfsLevels(Graph, /*Source=*/0);

  KernelDesc Kernel;
  Kernel.Name = "bfs.expand";
  Kernel.CpuCyclesPerIter = 400.0;
  Kernel.GpuCyclesPerIter = 400.0;
  Kernel.BytesPerIter = 80.0;
  Kernel.LoadStoresPerIter = 8.0;
  Kernel.LlcMissRatio = 0.40;
  Kernel.InstrsPerIter = 220.0;
  Kernel.GpuEfficiency = 0.05;
  Kernel.CpuVectorizable = 0.0;
  Kernel.withAutoId();

  Workload W;
  W.Name = "Breadth first search";
  W.Abbrev = "BFS";
  W.Regular = false;
  W.ExpectedBound = Boundedness::Memory;
  W.ExpectedCpu = DurationClass::Short;
  W.ExpectedGpu = DurationClass::Short;
  W.OnTablet = false;
  W.Trace = buildTrace(Algo.RoundSizes, Kernel,
                       6.2e6 * std::sqrt(Config.Scale));
  return W;
}

Workload ecas::makeCcWorkload(const WorkloadConfig &Config) {
  uint32_t Width, Height;
  graphDimensions(Config, Width, Height);
  RoadGraph Graph = makeRoadGraph(Width, Height, Config.Seed + 1);
  GraphAlgoResult Algo = runConnectedComponents(Graph);

  KernelDesc Kernel;
  Kernel.Name = "cc.propagate";
  Kernel.CpuCyclesPerIter = 450.0;
  Kernel.GpuCyclesPerIter = 450.0;
  Kernel.BytesPerIter = 88.0;
  Kernel.LoadStoresPerIter = 9.0;
  Kernel.LlcMissRatio = 0.42;
  Kernel.InstrsPerIter = 240.0;
  Kernel.GpuEfficiency = 0.05;
  Kernel.CpuVectorizable = 0.0;
  Kernel.withAutoId();

  Workload W;
  W.Name = "Connected Component";
  W.Abbrev = "CC";
  W.Regular = false;
  W.ExpectedBound = Boundedness::Memory;
  W.ExpectedCpu = DurationClass::Short;
  W.ExpectedGpu = DurationClass::Short;
  W.OnTablet = false;
  W.Trace = buildTrace(Algo.RoundSizes, Kernel,
                       9.0e6 * std::sqrt(Config.Scale));
  return W;
}

Workload ecas::makeSsspWorkload(const WorkloadConfig &Config) {
  uint32_t Width, Height;
  graphDimensions(Config, Width, Height);
  RoadGraph Graph = makeRoadGraph(Width, Height, Config.Seed + 2);
  GraphAlgoResult Algo = runShortestPaths(Graph, /*Source=*/0);

  KernelDesc Kernel;
  Kernel.Name = "sssp.relax";
  Kernel.CpuCyclesPerIter = 500.0;
  Kernel.GpuCyclesPerIter = 500.0;
  Kernel.BytesPerIter = 96.0;
  Kernel.LoadStoresPerIter = 10.0;
  Kernel.LlcMissRatio = 0.45;
  Kernel.InstrsPerIter = 260.0;
  Kernel.GpuEfficiency = 0.05;
  Kernel.CpuVectorizable = 0.0;
  Kernel.withAutoId();

  Workload W;
  W.Name = "Shortest Path";
  W.Abbrev = "SP";
  W.Regular = false;
  W.ExpectedBound = Boundedness::Memory;
  W.ExpectedCpu = DurationClass::Short;
  W.ExpectedGpu = DurationClass::Short;
  W.OnTablet = false;
  W.Trace = buildTrace(Algo.RoundSizes, Kernel,
                       8.0e6 * std::sqrt(Config.Scale));
  return W;
}
