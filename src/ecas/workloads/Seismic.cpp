//===-- ecas/workloads/Seismic.cpp - SM wave simulation -------------------===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ecas/workloads/Seismic.h"

#include "ecas/support/Assert.h"

#include <cmath>

using namespace ecas;

SeismicState ecas::makeSeismicState(uint32_t Width, uint32_t Height) {
  ECAS_CHECK(Width >= 8 && Height >= 8, "seismic grid too small");
  SeismicState State;
  State.Width = Width;
  State.Height = Height;
  size_t Cells = static_cast<size_t>(Width) * Height;
  State.Velocity.assign(Cells, 0.0f);
  State.Stress.assign(Cells, 0.0f);
  State.Damping.assign(Cells, 1.0f);
  // Absorbing boundary: damping ramps to 0.9 over a 16-cell border.
  for (uint32_t Y = 0; Y != Height; ++Y) {
    for (uint32_t X = 0; X != Width; ++X) {
      uint32_t Border = std::min(std::min(X, Width - 1 - X),
                                 std::min(Y, Height - 1 - Y));
      if (Border < 16)
        State.Damping[static_cast<size_t>(Y) * Width + X] =
            0.9f + 0.00625f * Border;
    }
  }
  // Point impulse off-center.
  State.Stress[static_cast<size_t>(Height / 3) * Width + Width / 4] = 8.0f;
  return State;
}

void ecas::stepSeismic(SeismicState &State) {
  const uint32_t W = State.Width, H = State.Height;
  auto At = [W](uint32_t X, uint32_t Y) {
    return static_cast<size_t>(Y) * W + X;
  };
  // Velocity update from the stress Laplacian.
  for (uint32_t Y = 1; Y + 1 < H; ++Y) {
    for (uint32_t X = 1; X + 1 < W; ++X) {
      size_t Idx = At(X, Y);
      float Lap = State.Stress[At(X - 1, Y)] + State.Stress[At(X + 1, Y)] +
                  State.Stress[At(X, Y - 1)] + State.Stress[At(X, Y + 1)] -
                  4.0f * State.Stress[Idx];
      State.Velocity[Idx] =
          (State.Velocity[Idx] + 0.25f * Lap) * State.Damping[Idx];
    }
  }
  // Stress follows velocity.
  for (uint32_t Y = 1; Y + 1 < H; ++Y)
    for (uint32_t X = 1; X + 1 < W; ++X) {
      size_t Idx = At(X, Y);
      State.Stress[Idx] =
          (State.Stress[Idx] + State.Velocity[Idx]) * State.Damping[Idx];
    }
}

uint64_t ecas::runSeismic(SeismicState &State, unsigned Frames) {
  for (unsigned Frame = 0; Frame != Frames; ++Frame)
    stepSeismic(State);
  uint64_t Checksum = 0;
  for (float S : State.Stress)
    Checksum += static_cast<uint64_t>(std::fabs(S) * 1e4);
  return Checksum;
}

Workload ecas::makeSeismicWorkload(const WorkloadConfig &Config) {
  KernelDesc Kernel;
  Kernel.Name = "sm.frame";
  Kernel.CpuCyclesPerIter = 45.0;
  Kernel.GpuCyclesPerIter = 200.0;
  Kernel.BytesPerIter = 24.0;
  Kernel.LoadStoresPerIter = 6.0;
  Kernel.LlcMissRatio = 0.40;
  Kernel.InstrsPerIter = 50.0;
  Kernel.GpuEfficiency = 0.50;
  Kernel.CpuVectorizable = 0.80;
  Kernel.withAutoId();

  Workload W;
  W.Name = "Seismic";
  W.Abbrev = "SM";
  W.Regular = true;
  W.ExpectedBound = Boundedness::Memory;
  W.ExpectedCpu = DurationClass::Short;
  W.ExpectedGpu = DurationClass::Short;
  W.OnTablet = true;
  double Cells = 1950.0 * 1326.0;
  W.Trace.reserve(100);
  for (unsigned Frame = 0; Frame != 100; ++Frame)
    W.Trace.push_back({Kernel, Cells});
  return W;
}
