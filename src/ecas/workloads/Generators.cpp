//===-- ecas/workloads/Generators.cpp - Synthetic input builders ----------===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ecas/workloads/Generators.h"

#include "ecas/support/Assert.h"
#include "ecas/support/Random.h"

using namespace ecas;

RoadGraph ecas::makeRoadGraph(uint32_t Width, uint32_t Height,
                              uint64_t Seed) {
  ECAS_CHECK(Width >= 2 && Height >= 2, "road graph needs a 2x2 grid");
  RoadGraph Graph;
  Graph.Width = Width;
  Graph.Height = Height;
  const uint32_t Nodes = Width * Height;
  Xoshiro256 Rng(Seed);

  // Build the undirected edge set first: right and down street segments,
  // each kept with 92% probability.
  std::vector<std::pair<uint32_t, uint32_t>> Edges;
  Edges.reserve(static_cast<size_t>(Nodes) * 2);
  auto NodeAt = [Width](uint32_t X, uint32_t Y) { return Y * Width + X; };
  for (uint32_t Y = 0; Y != Height; ++Y) {
    for (uint32_t X = 0; X != Width; ++X) {
      uint32_t V = NodeAt(X, Y);
      if (X + 1 != Width && Rng.nextDouble() < 0.92)
        Edges.push_back({V, NodeAt(X + 1, Y)});
      if (Y + 1 != Height && Rng.nextDouble() < 0.92)
        Edges.push_back({V, NodeAt(X, Y + 1)});
    }
  }

  // Degree counting, then CSR fill with per-edge weights (symmetric).
  std::vector<uint32_t> Degree(Nodes, 0);
  for (const auto &[A, B] : Edges) {
    ++Degree[A];
    ++Degree[B];
  }
  Graph.Offsets.assign(Nodes + 1, 0);
  for (uint32_t V = 0; V != Nodes; ++V)
    Graph.Offsets[V + 1] = Graph.Offsets[V] + Degree[V];
  Graph.Targets.assign(Graph.Offsets.back(), 0);
  Graph.Weights.assign(Graph.Offsets.back(), 0.0f);
  std::vector<uint32_t> Cursor(Graph.Offsets.begin(),
                               Graph.Offsets.end() - 1);
  // Re-seed so weights don't depend on the edge-removal draw order.
  Xoshiro256 WeightRng(Seed ^ 0x77eeddcc);
  for (const auto &[A, B] : Edges) {
    float W = static_cast<float>(WeightRng.nextDouble(1.0, 10.0));
    Graph.Targets[Cursor[A]] = B;
    Graph.Weights[Cursor[A]++] = W;
    Graph.Targets[Cursor[B]] = A;
    Graph.Weights[Cursor[B]++] = W;
  }
  return Graph;
}

BodySet ecas::makeBodies(size_t Count, uint64_t Seed) {
  BodySet Bodies;
  Bodies.X.reserve(Count);
  Bodies.Y.reserve(Count);
  Bodies.Z.reserve(Count);
  Bodies.Mass.reserve(Count);
  Xoshiro256 Rng(Seed);
  for (size_t I = 0; I != Count; ++I) {
    Bodies.X.push_back(static_cast<float>(Rng.nextDouble()));
    Bodies.Y.push_back(static_cast<float>(Rng.nextDouble()));
    Bodies.Z.push_back(static_cast<float>(Rng.nextDouble()));
    Bodies.Mass.push_back(static_cast<float>(Rng.nextDouble(0.5, 2.0)));
  }
  return Bodies;
}

OptionBatch ecas::makeOptions(size_t Count, uint64_t Seed) {
  OptionBatch Batch;
  Batch.Spot.reserve(Count);
  Batch.Strike.reserve(Count);
  Batch.Years.reserve(Count);
  Batch.Volatility.reserve(Count);
  Batch.Rate.reserve(Count);
  Xoshiro256 Rng(Seed);
  for (size_t I = 0; I != Count; ++I) {
    Batch.Spot.push_back(static_cast<float>(Rng.nextDouble(10.0, 200.0)));
    Batch.Strike.push_back(static_cast<float>(Rng.nextDouble(10.0, 200.0)));
    Batch.Years.push_back(static_cast<float>(Rng.nextDouble(0.1, 5.0)));
    Batch.Volatility.push_back(
        static_cast<float>(Rng.nextDouble(0.05, 0.9)));
    Batch.Rate.push_back(static_cast<float>(Rng.nextDouble(0.0, 0.08)));
  }
  return Batch;
}

std::vector<uint64_t> ecas::makeKeys(size_t Count, uint64_t Seed) {
  std::vector<uint64_t> Keys;
  Keys.reserve(Count);
  Xoshiro256 Rng(Seed);
  for (size_t I = 0; I != Count; ++I)
    Keys.push_back(Rng.next());
  return Keys;
}
