//===-- ecas/workloads/BarnesHut.cpp - BH n-body workload -----------------===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ecas/workloads/BarnesHut.h"

#include "ecas/support/Assert.h"

#include <cmath>
#include <vector>

using namespace ecas;

namespace {

/// Octree node over the unit cube. Children are indices into the node
/// pool; 0 is "absent" (node 0 is the root, never a child).
struct OctNode {
  float CenterX, CenterY, CenterZ;
  float HalfSize;
  float MassX = 0.0f, MassY = 0.0f, MassZ = 0.0f;
  float Mass = 0.0f;
  int32_t Body = -1; // Leaf payload; -1 when internal or empty.
  uint32_t Children[8] = {};
  bool IsLeaf = true;
};

class Octree {
public:
  explicit Octree(const BodySet &Bodies) : Bodies(Bodies) {
    Nodes.reserve(Bodies.size() * 2);
    Nodes.push_back(makeNode(0.5f, 0.5f, 0.5f, 0.5f));
    for (size_t I = 0; I != Bodies.size(); ++I)
      insert(0, static_cast<int32_t>(I));
    summarize(0);
  }

  const std::vector<OctNode> &nodes() const { return Nodes; }
  const BodySet &bodies() const { return Bodies; }

private:
  static OctNode makeNode(float X, float Y, float Z, float Half) {
    OctNode Node;
    Node.CenterX = X;
    Node.CenterY = Y;
    Node.CenterZ = Z;
    Node.HalfSize = Half;
    return Node;
  }

  unsigned childIndexFor(const OctNode &Node, int32_t Body) const {
    unsigned Index = 0;
    if (Bodies.X[Body] >= Node.CenterX)
      Index |= 1;
    if (Bodies.Y[Body] >= Node.CenterY)
      Index |= 2;
    if (Bodies.Z[Body] >= Node.CenterZ)
      Index |= 4;
    return Index;
  }

  uint32_t ensureChild(uint32_t NodeIdx, unsigned Slot) {
    OctNode &Node = Nodes[NodeIdx];
    if (Node.Children[Slot])
      return Node.Children[Slot];
    float Quarter = Node.HalfSize * 0.5f;
    float X = Node.CenterX + ((Slot & 1) ? Quarter : -Quarter);
    float Y = Node.CenterY + ((Slot & 2) ? Quarter : -Quarter);
    float Z = Node.CenterZ + ((Slot & 4) ? Quarter : -Quarter);
    Nodes.push_back(makeNode(X, Y, Z, Quarter));
    uint32_t Fresh = static_cast<uint32_t>(Nodes.size() - 1);
    Nodes[NodeIdx].Children[Slot] = Fresh;
    return Fresh;
  }

  void insert(uint32_t NodeIdx, int32_t Body) {
    // Iterative descent with index-only access: ensureChild() may grow
    // the node pool, so references across it would dangle.
    unsigned Depth = 0;
    while (true) {
      if (!Nodes[NodeIdx].IsLeaf) {
        unsigned Slot = childIndexFor(Nodes[NodeIdx], Body);
        NodeIdx = ensureChild(NodeIdx, Slot);
        ++Depth;
        continue;
      }
      if (Nodes[NodeIdx].Body < 0) {
        Nodes[NodeIdx].Body = Body;
        return;
      }
      // Degenerate coincident points would split forever; random float
      // inputs never reach this depth, so dropping the body is safe.
      if (Depth >= 60)
        return;
      // Occupied leaf: push the resident body one level down, then let
      // the loop retry placing Body from this (now internal) node.
      int32_t Resident = Nodes[NodeIdx].Body;
      Nodes[NodeIdx].Body = -1;
      Nodes[NodeIdx].IsLeaf = false;
      unsigned Slot = childIndexFor(Nodes[NodeIdx], Resident);
      uint32_t Child = ensureChild(NodeIdx, Slot);
      Nodes[Child].Body = Resident; // Fresh leaves are always empty.
    }
  }

  /// Bottom-up center-of-mass aggregation.
  void summarize(uint32_t NodeIdx) {
    OctNode &Node = Nodes[NodeIdx];
    if (Node.IsLeaf) {
      if (Node.Body >= 0) {
        float M = Bodies.Mass[Node.Body];
        Node.Mass = M;
        Node.MassX = Bodies.X[Node.Body];
        Node.MassY = Bodies.Y[Node.Body];
        Node.MassZ = Bodies.Z[Node.Body];
      }
      return;
    }
    float M = 0.0f, X = 0.0f, Y = 0.0f, Z = 0.0f;
    for (uint32_t Child : Node.Children) {
      if (!Child)
        continue;
      summarize(Child);
      const OctNode &C = Nodes[Child];
      M += C.Mass;
      X += C.MassX * C.Mass;
      Y += C.MassY * C.Mass;
      Z += C.MassZ * C.Mass;
    }
    Node.Mass = M;
    if (M > 0.0f) {
      Node.MassX = X / M;
      Node.MassY = Y / M;
      Node.MassZ = Z / M;
    }
  }

  const BodySet &Bodies;
  std::vector<OctNode> Nodes;
};

/// Force on one body via theta-criterion traversal.
double forceMagnitude(const Octree &Tree, size_t Body, float Theta) {
  const BodySet &Bodies = Tree.bodies();
  const std::vector<OctNode> &Nodes = Tree.nodes();
  double Fx = 0.0, Fy = 0.0, Fz = 0.0;
  const float Px = Bodies.X[Body], Py = Bodies.Y[Body], Pz = Bodies.Z[Body];
  const float ThetaSq = Theta * Theta;

  // Explicit stack: recursion depth is bounded but the iteration is hot.
  std::vector<uint32_t> Stack{0};
  while (!Stack.empty()) {
    uint32_t NodeIdx = Stack.back();
    Stack.pop_back();
    const OctNode &Node = Nodes[NodeIdx];
    if (Node.Mass <= 0.0f)
      continue;
    float Dx = Node.MassX - Px, Dy = Node.MassY - Py, Dz = Node.MassZ - Pz;
    float DistSq = Dx * Dx + Dy * Dy + Dz * Dz + 1e-6f;
    float Width = Node.HalfSize * 2.0f;
    bool FarEnough = Width * Width < ThetaSq * DistSq;
    if (Node.IsLeaf || FarEnough) {
      if (Node.IsLeaf && Node.Body == static_cast<int32_t>(Body))
        continue;
      float InvDist = 1.0f / std::sqrt(DistSq);
      float Scale = Node.Mass * InvDist * InvDist * InvDist;
      Fx += Dx * Scale;
      Fy += Dy * Scale;
      Fz += Dz * Scale;
      continue;
    }
    for (uint32_t Child : Node.Children)
      if (Child)
        Stack.push_back(Child);
  }
  return std::sqrt(Fx * Fx + Fy * Fy + Fz * Fz);
}

} // namespace

uint64_t ecas::runBarnesHutStep(const BodySet &Bodies, float Theta) {
  ECAS_CHECK(!Bodies.X.empty(), "Barnes-Hut needs at least one body");
  Octree Tree(Bodies);
  uint64_t Checksum = 0;
  for (size_t Body = 0; Body != Bodies.size(); ++Body)
    Checksum += static_cast<uint64_t>(forceMagnitude(Tree, Body, Theta) *
                                      1e3);
  return Checksum;
}

Workload ecas::makeBarnesHutWorkload(const WorkloadConfig &Config) {
  KernelDesc Kernel;
  Kernel.Name = "bh.force";
  // Theta-criterion traversal visits hundreds of nodes per body.
  Kernel.CpuCyclesPerIter = 12000.0;
  Kernel.GpuCyclesPerIter = 12000.0;
  Kernel.BytesPerIter = 400.0;
  Kernel.LoadStoresPerIter = 250.0;
  Kernel.LlcMissRatio = 0.35;
  Kernel.InstrsPerIter = 2500.0;
  Kernel.GpuEfficiency = 0.07;
  Kernel.CpuVectorizable = 0.15;
  Kernel.withAutoId();

  Workload W;
  W.Name = "BarnesHut";
  W.Abbrev = "BH";
  W.Regular = false;
  W.ExpectedBound = Boundedness::Memory;
  W.ExpectedCpu = DurationClass::Long;
  W.ExpectedGpu = DurationClass::Long;
  W.OnTablet = false;
  // 1M bodies, one force step, one kernel invocation.
  W.Trace = {{Kernel, 1e6}};
  return W;
}
