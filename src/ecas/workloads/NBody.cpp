//===-- ecas/workloads/NBody.cpp - NB all-pairs workload ------------------===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ecas/workloads/NBody.h"

#include "ecas/support/Assert.h"

#include <cmath>

using namespace ecas;

uint64_t ecas::stepNBody(BodySet &Bodies, std::vector<float> &Vx,
                         std::vector<float> &Vy, std::vector<float> &Vz,
                         float Dt) {
  const size_t N = Bodies.size();
  ECAS_CHECK(Vx.size() == N && Vy.size() == N && Vz.size() == N,
             "velocity arrays must match body count");
  const float Soft = 1e-4f;
  for (size_t I = 0; I != N; ++I) {
    float Ax = 0.0f, Ay = 0.0f, Az = 0.0f;
    const float Px = Bodies.X[I], Py = Bodies.Y[I], Pz = Bodies.Z[I];
    for (size_t J = 0; J != N; ++J) {
      float Dx = Bodies.X[J] - Px;
      float Dy = Bodies.Y[J] - Py;
      float Dz = Bodies.Z[J] - Pz;
      float DistSq = Dx * Dx + Dy * Dy + Dz * Dz + Soft;
      float InvDist = 1.0f / std::sqrt(DistSq);
      float Scale = Bodies.Mass[J] * InvDist * InvDist * InvDist;
      Ax += Dx * Scale;
      Ay += Dy * Scale;
      Az += Dz * Scale;
    }
    Vx[I] += Ax * Dt;
    Vy[I] += Ay * Dt;
    Vz[I] += Az * Dt;
  }
  uint64_t Checksum = 0;
  for (size_t I = 0; I != N; ++I) {
    Bodies.X[I] += Vx[I] * Dt;
    Bodies.Y[I] += Vy[I] * Dt;
    Bodies.Z[I] += Vz[I] * Dt;
    Checksum += static_cast<uint64_t>(std::fabs(Bodies.X[I]) * 1e3) +
                static_cast<uint64_t>(std::fabs(Bodies.Y[I]) * 1e3);
  }
  return Checksum;
}

Workload ecas::makeNBodyWorkload(const WorkloadConfig &Config) {
  double Bodies = Config.TabletInputs ? 1024.0 : 4096.0;

  KernelDesc Kernel;
  Kernel.Name = "nb.step";
  // One iteration = one body's interactions with all N others. Scalar
  // rsqrt-heavy inner loop on the CPU; wide and regular on the GPU.
  Kernel.CpuCyclesPerIter = Bodies * 200.0;
  Kernel.GpuCyclesPerIter = Bodies * 68.0;
  Kernel.BytesPerIter = 64.0; // Positions stream through the LLC.
  Kernel.LoadStoresPerIter = Bodies * 4.0;
  Kernel.LlcMissRatio = 0.005;
  Kernel.InstrsPerIter = Bodies * 220.0;
  Kernel.GpuEfficiency = 0.30;
  Kernel.CpuVectorizable = 0.0;
  Kernel.withAutoId();

  Workload W;
  W.Name = "N-Body";
  W.Abbrev = "NB";
  W.Regular = true;
  W.ExpectedBound = Boundedness::Compute;
  W.ExpectedCpu = DurationClass::Long;
  W.ExpectedGpu = DurationClass::Short;
  W.OnTablet = true;
  W.Trace.reserve(101);
  for (unsigned Step = 0; Step != 101; ++Step)
    W.Trace.push_back({Kernel, Bodies});
  return W;
}
