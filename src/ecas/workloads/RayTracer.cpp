//===-- ecas/workloads/RayTracer.cpp - RT rendering workload --------------===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ecas/workloads/RayTracer.h"

#include "ecas/support/Random.h"

#include <algorithm>
#include <cmath>

using namespace ecas;

SphereScene ecas::makeSphereScene(unsigned Spheres, unsigned Lights,
                                  uint64_t Seed) {
  SphereScene Scene;
  Xoshiro256 Rng(Seed);
  for (unsigned I = 0; I != Spheres; ++I) {
    Scene.Cx.push_back(static_cast<float>(Rng.nextDouble(-8.0, 8.0)));
    Scene.Cy.push_back(static_cast<float>(Rng.nextDouble(-4.0, 4.0)));
    Scene.Cz.push_back(static_cast<float>(Rng.nextDouble(4.0, 24.0)));
    Scene.Radius.push_back(static_cast<float>(Rng.nextDouble(0.2, 1.2)));
    Scene.Material.push_back(static_cast<uint8_t>(Rng.nextBounded(3)));
  }
  for (unsigned I = 0; I != Lights; ++I) {
    Scene.Lx.push_back(static_cast<float>(Rng.nextDouble(-10.0, 10.0)));
    Scene.Ly.push_back(static_cast<float>(Rng.nextDouble(5.0, 12.0)));
    Scene.Lz.push_back(static_cast<float>(Rng.nextDouble(0.0, 20.0)));
  }
  return Scene;
}

namespace {

/// Nearest sphere hit along ray O + t*D, t > 0.01. Returns index or -1.
int nearestHit(const SphereScene &Scene, float Ox, float Oy, float Oz,
               float Dx, float Dy, float Dz, float &THit) {
  int Best = -1;
  float BestT = 1e30f;
  for (size_t I = 0; I != Scene.numSpheres(); ++I) {
    float Lx = Scene.Cx[I] - Ox, Ly = Scene.Cy[I] - Oy,
          Lz = Scene.Cz[I] - Oz;
    float B = Lx * Dx + Ly * Dy + Lz * Dz;
    float C = Lx * Lx + Ly * Ly + Lz * Lz -
              Scene.Radius[I] * Scene.Radius[I];
    float Disc = B * B - C;
    if (Disc < 0.0f)
      continue;
    float Sq = std::sqrt(Disc);
    float T = B - Sq > 0.01f ? B - Sq : B + Sq;
    if (T > 0.01f && T < BestT) {
      BestT = T;
      Best = static_cast<int>(I);
    }
  }
  THit = BestT;
  return Best;
}

} // namespace

uint64_t ecas::renderScene(const SphereScene &Scene, uint32_t Width,
                           uint32_t Height) {
  uint64_t Checksum = 0;
  const float MaterialAlbedo[3] = {0.9f, 0.6f, 0.3f};
  for (uint32_t Py = 0; Py != Height; ++Py) {
    for (uint32_t Px = 0; Px != Width; ++Px) {
      // Pinhole camera at origin looking down +z.
      float Dx = (2.0f * Px / Width - 1.0f) * 1.2f;
      float Dy = (1.0f - 2.0f * Py / Height) * 0.9f;
      float Dz = 1.0f;
      float Inv = 1.0f / std::sqrt(Dx * Dx + Dy * Dy + Dz * Dz);
      Dx *= Inv;
      Dy *= Inv;
      Dz *= Inv;

      float THit;
      int Hit = nearestHit(Scene, 0, 0, 0, Dx, Dy, Dz, THit);
      float Lum = 0.05f; // Sky.
      if (Hit >= 0) {
        float Hx = Dx * THit, Hy = Dy * THit, Hz = Dz * THit;
        float Nx = (Hx - Scene.Cx[Hit]) / Scene.Radius[Hit];
        float Ny = (Hy - Scene.Cy[Hit]) / Scene.Radius[Hit];
        float Nz = (Hz - Scene.Cz[Hit]) / Scene.Radius[Hit];
        float Albedo = MaterialAlbedo[Scene.Material[Hit] % 3];
        Lum = 0.08f; // Ambient.
        for (size_t L = 0; L != Scene.Lx.size(); ++L) {
          float Sx = Scene.Lx[L] - Hx, Sy = Scene.Ly[L] - Hy,
                Sz = Scene.Lz[L] - Hz;
          float SInv = 1.0f / std::sqrt(Sx * Sx + Sy * Sy + Sz * Sz);
          Sx *= SInv;
          Sy *= SInv;
          Sz *= SInv;
          float Diffuse = Nx * Sx + Ny * Sy + Nz * Sz;
          if (Diffuse <= 0.0f)
            continue;
          // Hard shadow test.
          float TShadow;
          int Blocker = nearestHit(Scene, Hx + Nx * 0.02f,
                                   Hy + Ny * 0.02f, Hz + Nz * 0.02f, Sx,
                                   Sy, Sz, TShadow);
          if (Blocker < 0)
            Lum += Albedo * Diffuse / Scene.Lx.size();
        }
      }
      Checksum += static_cast<uint64_t>(std::clamp(Lum, 0.0f, 1.0f) * 255);
    }
  }
  return Checksum;
}

Workload ecas::makeRayTracerWorkload(const WorkloadConfig &Config) {
  KernelDesc Kernel;
  Kernel.Name = "rt.trace";
  Kernel.CpuCyclesPerIter = 5400.0;
  Kernel.GpuCyclesPerIter = 5000.0;
  Kernel.BytesPerIter = 20.0;
  Kernel.LoadStoresPerIter = 250.0;
  Kernel.LlcMissRatio = 0.03;
  Kernel.InstrsPerIter = 3200.0;
  Kernel.GpuEfficiency = 0.13; // Shadow-ray divergence.
  Kernel.CpuVectorizable = 0.30;
  Kernel.withAutoId();

  Workload W;
  W.Name = "Ray Tracer";
  W.Abbrev = "RT";
  W.Regular = true;
  W.ExpectedBound = Boundedness::Compute;
  W.ExpectedCpu = DurationClass::Long;
  W.ExpectedGpu = DurationClass::Long;
  W.OnTablet = true;
  W.Trace = {{Kernel, 1920.0 * 1080.0}};
  return W;
}
