//===-- ecas/workloads/FaceDetect.cpp - FD cascade workload ---------------===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ecas/workloads/FaceDetect.h"

#include "ecas/support/Assert.h"
#include "ecas/support/Random.h"

#include <algorithm>
#include <cmath>

using namespace ecas;

GrayImage ecas::makeTestImage(uint32_t Width, uint32_t Height,
                              uint64_t Seed) {
  GrayImage Image;
  Image.Width = Width;
  Image.Height = Height;
  Image.Pixels.assign(static_cast<size_t>(Width) * Height, 0);
  Xoshiro256 Rng(Seed);

  // Background gradient with noise.
  for (uint32_t Y = 0; Y != Height; ++Y)
    for (uint32_t X = 0; X != Width; ++X) {
      double Base = 80.0 + 60.0 * X / Width + 40.0 * Y / Height;
      double Noise = Rng.nextDouble(-12.0, 12.0);
      Image.Pixels[static_cast<size_t>(Y) * Width + X] =
          static_cast<uint8_t>(std::clamp(Base + Noise, 0.0, 255.0));
    }
  // Bright elliptical blobs ("faces").
  unsigned Blobs = 24;
  for (unsigned B = 0; B != Blobs; ++B) {
    uint32_t Cx = static_cast<uint32_t>(Rng.nextBounded(Width));
    uint32_t Cy = static_cast<uint32_t>(Rng.nextBounded(Height));
    uint32_t R = 8 + static_cast<uint32_t>(Rng.nextBounded(24));
    for (uint32_t Y = Cy > R ? Cy - R : 0;
         Y < std::min(Height, Cy + R); ++Y)
      for (uint32_t X = Cx > R ? Cx - R : 0;
           X < std::min(Width, Cx + R); ++X) {
        double Dist = std::hypot(double(X) - Cx, double(Y) - Cy);
        if (Dist < R) {
          auto &Pixel = Image.Pixels[static_cast<size_t>(Y) * Width + X];
          Pixel = static_cast<uint8_t>(
              std::min(255.0, Pixel + 90.0 * (1.0 - Dist / R)));
        }
      }
  }
  return Image;
}

void ecas::integralImage(const GrayImage &Image, std::vector<uint64_t> &Out) {
  const uint32_t W = Image.Width, H = Image.Height;
  Out.assign(static_cast<size_t>(W + 1) * (H + 1), 0);
  for (uint32_t Y = 0; Y != H; ++Y) {
    uint64_t RowSum = 0;
    for (uint32_t X = 0; X != W; ++X) {
      RowSum += Image.Pixels[static_cast<size_t>(Y) * W + X];
      Out[static_cast<size_t>(Y + 1) * (W + 1) + X + 1] =
          Out[static_cast<size_t>(Y) * (W + 1) + X + 1] + RowSum;
    }
  }
}

Cascade ecas::makeSyntheticCascade(unsigned NumStages, uint64_t Seed) {
  ECAS_CHECK(NumStages > 0, "cascade needs at least one stage");
  Cascade Result;
  Xoshiro256 Rng(Seed);
  for (unsigned Stage = 0; Stage != NumStages; ++Stage) {
    // Real cascades grow: early stages are cheap, late stages long.
    unsigned Features = 3 + Stage * 2;
    std::vector<HaarFeature> StageFeatures;
    for (unsigned F = 0; F != Features; ++F) {
      HaarFeature Feature;
      unsigned Size = Result.WindowSize;
      Feature.Dx0 = static_cast<uint8_t>(Rng.nextBounded(Size - 4));
      Feature.Dy0 = static_cast<uint8_t>(Rng.nextBounded(Size - 4));
      Feature.Dx1 = static_cast<uint8_t>(
          Feature.Dx0 + 2 + Rng.nextBounded(Size - Feature.Dx0 - 2));
      Feature.Dy1 = static_cast<uint8_t>(
          Feature.Dy0 + 2 + Rng.nextBounded(Size - Feature.Dy0 - 2));
      unsigned Area = (Feature.Dx1 - Feature.Dx0) *
                      (Feature.Dy1 - Feature.Dy0);
      // Threshold near the mean so each feature rejects roughly half.
      Feature.Threshold =
          static_cast<int32_t>(Area * (115 + Rng.nextBounded(40)));
      Feature.Invert = Rng.nextBounded(2) == 0;
      StageFeatures.push_back(Feature);
    }
    Result.Stages.push_back(std::move(StageFeatures));
  }
  return Result;
}

/// Rectangle sum on the integral image.
static uint64_t rectSum(const std::vector<uint64_t> &Integral, uint32_t W,
                        uint32_t X0, uint32_t Y0, uint32_t X1, uint32_t Y1) {
  const uint32_t Stride = W + 1;
  return Integral[static_cast<size_t>(Y1) * Stride + X1] -
         Integral[static_cast<size_t>(Y0) * Stride + X1] -
         Integral[static_cast<size_t>(Y1) * Stride + X0] +
         Integral[static_cast<size_t>(Y0) * Stride + X0];
}

uint64_t ecas::detectFaces(const GrayImage &Image, const Cascade &Casc) {
  std::vector<uint64_t> Integral;
  integralImage(Image, Integral);
  const uint32_t Window = Casc.WindowSize;
  if (Image.Width < Window || Image.Height < Window)
    return 0;

  uint64_t Survivors = 0;
  for (uint32_t Y = 0; Y + Window <= Image.Height; Y += 2) {
    for (uint32_t X = 0; X + Window <= Image.Width; X += 2) {
      bool Alive = true;
      for (const auto &Stage : Casc.Stages) {
        int Votes = 0;
        for (const HaarFeature &Feature : Stage) {
          uint64_t Sum = rectSum(Integral, Image.Width, X + Feature.Dx0,
                                 Y + Feature.Dy0, X + Feature.Dx1,
                                 Y + Feature.Dy1);
          bool Fired = static_cast<int64_t>(Sum) > Feature.Threshold;
          if (Fired != Feature.Invert)
            ++Votes;
        }
        // Majority vote per stage; failing any stage rejects the window.
        if (Votes * 2 < static_cast<int>(Stage.size())) {
          Alive = false;
          break;
        }
      }
      if (Alive)
        ++Survivors;
    }
  }
  return Survivors;
}

Workload ecas::makeFaceDetectWorkload(const WorkloadConfig &Config) {
  KernelDesc Kernel;
  Kernel.Name = "fd.stage";
  Kernel.CpuCyclesPerIter = 300.0;
  Kernel.GpuCyclesPerIter = 500.0;
  Kernel.BytesPerIter = 8.0;
  Kernel.LoadStoresPerIter = 20.0;
  Kernel.LlcMissRatio = 0.05;
  Kernel.InstrsPerIter = 320.0;
  Kernel.GpuEfficiency = 0.04; // Early-exit divergence.
  Kernel.CpuVectorizable = 0.40;
  Kernel.withAutoId();

  Workload W;
  W.Name = "Face Detect";
  W.Abbrev = "FD";
  W.Regular = false;
  W.ExpectedBound = Boundedness::Compute;
  W.ExpectedCpu = DurationClass::Short;
  W.ExpectedGpu = DurationClass::Short;
  W.OnTablet = false;
  // 132 invocations: cascade stages over pyramid scales; the surviving
  // window count decays geometrically like a real cascade.
  double Windows = 3000.0 * 2171.0 / 4.0 * Config.Scale;
  W.Trace.reserve(132);
  double N = Windows;
  for (unsigned I = 0; I != 132; ++I) {
    W.Trace.push_back({Kernel, std::max(1.0, N)});
    N *= 0.94;
  }
  return W;
}
