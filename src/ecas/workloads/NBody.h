//===-- ecas/workloads/NBody.h - NB all-pairs workload ----------*- C++ -*-===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Direct all-pairs n-body (Table 1 row NB): regular compute-bound
/// kernel, 101 invocations (time steps), GPU-biased on the desktop
/// (CPU long / GPU short).
///
//===----------------------------------------------------------------------===//

#ifndef ECAS_WORKLOADS_NBODY_H
#define ECAS_WORKLOADS_NBODY_H

#include "ecas/workloads/Generators.h"
#include "ecas/workloads/Workload.h"

namespace ecas {

/// Advances \p Bodies one leapfrog step with softened all-pairs gravity;
/// \p Vx/Vy/Vz are updated in place. \returns the checksum: sum of
/// quantized positions after the step.
uint64_t stepNBody(BodySet &Bodies, std::vector<float> &Vx,
                   std::vector<float> &Vy, std::vector<float> &Vz,
                   float Dt = 1e-3f);

/// Table 1 row NB: 4096 bodies (desktop) / 1024 (tablet), 101 steps.
Workload makeNBodyWorkload(const WorkloadConfig &Config);

} // namespace ecas

#endif // ECAS_WORKLOADS_NBODY_H
