//===-- ecas/core/HistorySnapshot.cpp - Durable table-G snapshots ---------===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ecas/core/HistorySnapshot.h"

#include "ecas/core/HistoryCodec.h"
#include "ecas/support/AtomicFile.h"
#include "ecas/support/Crc32.h"

#include <cstring>
#include <vector>

using namespace ecas;
using namespace ecas::history_codec;

namespace {

constexpr char Magic[8] = {'E', 'C', 'A', 'S', 'T', 'B', 'L', 'G'};
constexpr size_t HeaderBytes = 24;
constexpr size_t EpochBytes = 8;

/// v3 appended a trailing u32 P-state to every record; older snapshots
/// carry 112-byte records and decode to P-state 0 (full speed).
size_t recordBytes(uint32_t Version) { return Version >= 3 ? 116 : 112; }

void encodeRecord(std::string &Out, uint64_t Key, const KernelRecord &Rec) {
  putU64(Out, Key);
  putF64(Out, Rec.Alpha.weightedSum());
  putF64(Out, Rec.Alpha.totalWeight());
  putU32(Out, Rec.Class.index());
  Out.push_back(static_cast<char>(Rec.CpuOnly ? 1 : 0));
  Out.push_back(static_cast<char>(Rec.Confident ? 1 : 0));
  Out.push_back(static_cast<char>(Rec.Sample.GpuLaunchFailed ? 1 : 0));
  Out.push_back(static_cast<char>(Rec.Sample.GpuHung ? 1 : 0));
  putU32(Out, Rec.Invocations);
  putU32(Out, Rec.QuarantinedRuns);
  putF64(Out, Rec.Sample.CpuThroughput);
  putF64(Out, Rec.Sample.GpuThroughput);
  putF64(Out, Rec.Sample.CpuIterations);
  putF64(Out, Rec.Sample.GpuIterations);
  putF64(Out, Rec.Sample.ElapsedSeconds);
  putF64(Out, Rec.Sample.CpuBusySeconds);
  putF64(Out, Rec.Sample.GpuBusySeconds);
  putF64(Out, Rec.Sample.MissPerLoadStore);
  putF64(Out, Rec.Sample.InstructionsRetired);
  putU32(Out, Rec.PState);
}

std::pair<uint64_t, KernelRecord> decodeRecord(const unsigned char *P,
                                               uint32_t Version) {
  KernelRecord Rec;
  uint64_t Key = getU64(P);
  Rec.Alpha = SampleWeightedAlpha::fromParts(getF64(P + 8), getF64(P + 16));
  Rec.Class = WorkloadClass::fromIndex(getU32(P + 24) %
                                       WorkloadClass::NumClasses);
  Rec.CpuOnly = P[28] != 0;
  Rec.Confident = P[29] != 0;
  Rec.Sample.GpuLaunchFailed = P[30] != 0;
  Rec.Sample.GpuHung = P[31] != 0;
  Rec.Invocations = getU32(P + 32);
  Rec.QuarantinedRuns = getU32(P + 36);
  Rec.Sample.CpuThroughput = getF64(P + 40);
  Rec.Sample.GpuThroughput = getF64(P + 48);
  Rec.Sample.CpuIterations = getF64(P + 56);
  Rec.Sample.GpuIterations = getF64(P + 64);
  Rec.Sample.ElapsedSeconds = getF64(P + 72);
  Rec.Sample.CpuBusySeconds = getF64(P + 80);
  Rec.Sample.GpuBusySeconds = getF64(P + 88);
  Rec.Sample.MissPerLoadStore = getF64(P + 96);
  Rec.Sample.InstructionsRetired = getF64(P + 104);
  if (Version >= 3)
    Rec.PState = getU32(P + 112);
  return {Key, Rec};
}

} // namespace

std::string ecas::serializeKernelHistory(const KernelHistory &History,
                                         uint64_t Epoch) {
  std::vector<std::pair<uint64_t, KernelRecord>> Entries = History.entries();
  std::string Payload;
  Payload.reserve(EpochBytes +
                  Entries.size() * recordBytes(HistorySnapshotVersion));
  putU64(Payload, Epoch);
  for (const auto &[Key, Rec] : Entries)
    encodeRecord(Payload, Key, Rec);

  std::string Out;
  Out.reserve(HeaderBytes + Payload.size());
  Out.append(Magic, sizeof(Magic));
  putU32(Out, HistorySnapshotVersion);
  putU64(Out, Entries.size());
  putU32(Out, crc32(Payload.data(), Payload.size()));
  Out += Payload;
  return Out;
}

ErrorOr<size_t> ecas::deserializeKernelHistory(KernelHistory &History,
                                               std::string_view Bytes,
                                               uint64_t *EpochOut) {
  History.clear();
  if (EpochOut)
    *EpochOut = 0;
  if (Bytes.size() < HeaderBytes)
    return Status::error(ErrCode::Truncated,
                         "snapshot smaller than its 24-byte header (" +
                             std::to_string(Bytes.size()) + " bytes)");
  const auto *P = reinterpret_cast<const unsigned char *>(Bytes.data());
  if (std::memcmp(P, Magic, sizeof(Magic)) != 0)
    return Status::error(ErrCode::CorruptData,
                         "snapshot magic mismatch (not a table-G file)");
  uint32_t Version = getU32(P + 8);
  if (Version < 1 || Version > HistorySnapshotVersion)
    return Status::error(ErrCode::VersionMismatch,
                         "snapshot format v" + std::to_string(Version) +
                             ", this build reads v1-v" +
                             std::to_string(HistorySnapshotVersion));
  size_t PayloadPrefix = Version >= 2 ? EpochBytes : 0;
  size_t RecBytes = recordBytes(Version);
  uint64_t CountField = getU64(P + 12);
  uint32_t ExpectedCrc = getU32(P + 20);
  size_t PayloadSize = Bytes.size() - HeaderBytes;
  // The count field is not CRC-covered (the CRC spans the payload), so
  // bound it before the multiplication: a flipped high bit would wrap
  // CountField * RecBytes past 2^64, slip through the equality, and
  // turn the reserve() below into an unhandled length_error.
  if (CountField > PayloadSize / RecBytes ||
      PayloadSize != PayloadPrefix + CountField * RecBytes)
    return Status::error(
        ErrCode::Truncated,
        "snapshot declares " + std::to_string(CountField) + " records (" +
            std::to_string(PayloadPrefix + CountField * RecBytes) +
            " payload bytes) but " +
            std::to_string(Bytes.size() - HeaderBytes) + " are present");
  uint32_t ActualCrc =
      crc32(P + HeaderBytes, Bytes.size() - HeaderBytes);
  if (ActualCrc != ExpectedCrc)
    return Status::error(ErrCode::CorruptData,
                         "snapshot payload CRC mismatch (stored " +
                             std::to_string(ExpectedCrc) + ", computed " +
                             std::to_string(ActualCrc) + ")");
  if (EpochOut && Version >= 2)
    *EpochOut = getU64(P + HeaderBytes);

  const unsigned char *Records = P + HeaderBytes + PayloadPrefix;
  std::vector<std::pair<uint64_t, KernelRecord>> Entries;
  Entries.reserve(CountField);
  for (uint64_t I = 0; I != CountField; ++I)
    Entries.push_back(decodeRecord(Records + I * RecBytes, Version));
  History.restore(Entries);
  return Entries.size();
}

Status ecas::saveKernelHistory(const KernelHistory &History,
                               const std::string &Path, uint64_t Epoch) {
  return writeFileAtomic(Path, serializeKernelHistory(History, Epoch));
}

ErrorOr<size_t> ecas::loadKernelHistory(KernelHistory &History,
                                        const std::string &Path,
                                        uint64_t *EpochOut) {
  if (EpochOut)
    *EpochOut = 0;
  std::string Bytes;
  bool Existed = false;
  if (Status S = readFileBytes(Path, Bytes, Existed); !S) {
    History.clear();
    return S;
  }
  if (!Existed) {
    // No snapshot yet: a cold start, not a failure.
    History.clear();
    return size_t{0};
  }
  ErrorOr<size_t> Result = deserializeKernelHistory(History, Bytes, EpochOut);
  if (!Result)
    return Status::error(Result.status().code(),
                         Path + ": " + Result.status().message());
  return Result;
}
