//===-- ecas/core/HistorySnapshot.cpp - Durable table-G snapshots ---------===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ecas/core/HistorySnapshot.h"

#include "ecas/support/Crc32.h"
#include "ecas/support/Format.h"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#ifndef _WIN32
#include <fcntl.h>
#include <unistd.h>
#endif

using namespace ecas;

namespace {

constexpr char Magic[8] = {'E', 'C', 'A', 'S', 'T', 'B', 'L', 'G'};
constexpr size_t HeaderBytes = 24;
constexpr size_t RecordBytes = 112;

//===----------------------------------------------------------------------===//
// Little-endian primitive encoding
//===----------------------------------------------------------------------===//

void putU32(std::string &Out, uint32_t V) {
  for (int I = 0; I != 4; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xffu));
}

void putU64(std::string &Out, uint64_t V) {
  for (int I = 0; I != 8; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xffu));
}

void putF64(std::string &Out, double V) {
  uint64_t Bits;
  static_assert(sizeof(Bits) == sizeof(V));
  std::memcpy(&Bits, &V, sizeof(Bits));
  putU64(Out, Bits);
}

uint32_t getU32(const unsigned char *P) {
  uint32_t V = 0;
  for (int I = 0; I != 4; ++I)
    V |= static_cast<uint32_t>(P[I]) << (8 * I);
  return V;
}

uint64_t getU64(const unsigned char *P) {
  uint64_t V = 0;
  for (int I = 0; I != 8; ++I)
    V |= static_cast<uint64_t>(P[I]) << (8 * I);
  return V;
}

double getF64(const unsigned char *P) {
  uint64_t Bits = getU64(P);
  double V;
  std::memcpy(&V, &Bits, sizeof(V));
  return V;
}

void encodeRecord(std::string &Out, uint64_t Key, const KernelRecord &Rec) {
  putU64(Out, Key);
  putF64(Out, Rec.Alpha.weightedSum());
  putF64(Out, Rec.Alpha.totalWeight());
  putU32(Out, Rec.Class.index());
  Out.push_back(static_cast<char>(Rec.CpuOnly ? 1 : 0));
  Out.push_back(static_cast<char>(Rec.Confident ? 1 : 0));
  Out.push_back(static_cast<char>(Rec.Sample.GpuLaunchFailed ? 1 : 0));
  Out.push_back(static_cast<char>(Rec.Sample.GpuHung ? 1 : 0));
  putU32(Out, Rec.Invocations);
  putU32(Out, Rec.QuarantinedRuns);
  putF64(Out, Rec.Sample.CpuThroughput);
  putF64(Out, Rec.Sample.GpuThroughput);
  putF64(Out, Rec.Sample.CpuIterations);
  putF64(Out, Rec.Sample.GpuIterations);
  putF64(Out, Rec.Sample.ElapsedSeconds);
  putF64(Out, Rec.Sample.CpuBusySeconds);
  putF64(Out, Rec.Sample.GpuBusySeconds);
  putF64(Out, Rec.Sample.MissPerLoadStore);
  putF64(Out, Rec.Sample.InstructionsRetired);
}

std::pair<uint64_t, KernelRecord> decodeRecord(const unsigned char *P) {
  KernelRecord Rec;
  uint64_t Key = getU64(P);
  Rec.Alpha = SampleWeightedAlpha::fromParts(getF64(P + 8), getF64(P + 16));
  Rec.Class = WorkloadClass::fromIndex(getU32(P + 24) %
                                       WorkloadClass::NumClasses);
  Rec.CpuOnly = P[28] != 0;
  Rec.Confident = P[29] != 0;
  Rec.Sample.GpuLaunchFailed = P[30] != 0;
  Rec.Sample.GpuHung = P[31] != 0;
  Rec.Invocations = getU32(P + 32);
  Rec.QuarantinedRuns = getU32(P + 36);
  Rec.Sample.CpuThroughput = getF64(P + 40);
  Rec.Sample.GpuThroughput = getF64(P + 48);
  Rec.Sample.CpuIterations = getF64(P + 56);
  Rec.Sample.GpuIterations = getF64(P + 64);
  Rec.Sample.ElapsedSeconds = getF64(P + 72);
  Rec.Sample.CpuBusySeconds = getF64(P + 80);
  Rec.Sample.GpuBusySeconds = getF64(P + 88);
  Rec.Sample.MissPerLoadStore = getF64(P + 96);
  Rec.Sample.InstructionsRetired = getF64(P + 104);
  return {Key, Rec};
}

} // namespace

std::string ecas::serializeKernelHistory(const KernelHistory &History) {
  std::vector<std::pair<uint64_t, KernelRecord>> Entries = History.entries();
  std::string Payload;
  Payload.reserve(Entries.size() * RecordBytes);
  for (const auto &[Key, Rec] : Entries)
    encodeRecord(Payload, Key, Rec);

  std::string Out;
  Out.reserve(HeaderBytes + Payload.size());
  Out.append(Magic, sizeof(Magic));
  putU32(Out, HistorySnapshotVersion);
  putU64(Out, Entries.size());
  putU32(Out, crc32(Payload.data(), Payload.size()));
  Out += Payload;
  return Out;
}

ErrorOr<size_t> ecas::deserializeKernelHistory(KernelHistory &History,
                                               std::string_view Bytes) {
  History.clear();
  if (Bytes.size() < HeaderBytes)
    return Status::error(ErrCode::Truncated,
                         "snapshot smaller than its 24-byte header (" +
                             std::to_string(Bytes.size()) + " bytes)");
  const auto *P = reinterpret_cast<const unsigned char *>(Bytes.data());
  if (std::memcmp(P, Magic, sizeof(Magic)) != 0)
    return Status::error(ErrCode::CorruptData,
                         "snapshot magic mismatch (not a table-G file)");
  uint32_t Version = getU32(P + 8);
  if (Version != HistorySnapshotVersion)
    return Status::error(ErrCode::VersionMismatch,
                         "snapshot format v" + std::to_string(Version) +
                             ", this build reads v" +
                             std::to_string(HistorySnapshotVersion));
  uint64_t CountField = getU64(P + 12);
  uint32_t ExpectedCrc = getU32(P + 20);
  if (Bytes.size() - HeaderBytes != CountField * RecordBytes)
    return Status::error(
        ErrCode::Truncated,
        "snapshot declares " + std::to_string(CountField) + " records (" +
            std::to_string(CountField * RecordBytes) + " payload bytes) but " +
            std::to_string(Bytes.size() - HeaderBytes) + " are present");
  uint32_t ActualCrc =
      crc32(P + HeaderBytes, Bytes.size() - HeaderBytes);
  if (ActualCrc != ExpectedCrc)
    return Status::error(ErrCode::CorruptData,
                         "snapshot payload CRC mismatch (stored " +
                             std::to_string(ExpectedCrc) + ", computed " +
                             std::to_string(ActualCrc) + ")");

  std::vector<std::pair<uint64_t, KernelRecord>> Entries;
  Entries.reserve(CountField);
  for (uint64_t I = 0; I != CountField; ++I)
    Entries.push_back(decodeRecord(P + HeaderBytes + I * RecordBytes));
  History.restore(Entries);
  return Entries.size();
}

namespace {

/// Flushes \p Path's data to stable storage. Best-effort on platforms
/// without fsync.
Status syncFile(const std::string &Path) {
#ifndef _WIN32
  int Fd = ::open(Path.c_str(), O_RDONLY);
  if (Fd < 0)
    return Status::error(ErrCode::IoError,
                         "cannot reopen " + Path + " for fsync: " +
                             std::strerror(errno));
  int Rc = ::fsync(Fd);
  ::close(Fd);
  if (Rc != 0)
    return Status::error(ErrCode::IoError,
                         "fsync " + Path + ": " + std::strerror(errno));
#endif
  return Status::success();
}

} // namespace

Status ecas::saveKernelHistory(const KernelHistory &History,
                               const std::string &Path) {
  std::string Bytes = serializeKernelHistory(History);
  std::string TempPath = Path + ".tmp";
  {
    std::ofstream File(TempPath, std::ios::binary | std::ios::trunc);
    if (!File)
      return Status::error(ErrCode::IoError, "cannot write " + TempPath);
    File.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
    File.flush();
    if (!File)
      return Status::error(ErrCode::IoError, "short write to " + TempPath);
  }
  if (Status S = syncFile(TempPath); !S)
    return S;
  if (std::rename(TempPath.c_str(), Path.c_str()) != 0)
    return Status::error(ErrCode::IoError, "rename " + TempPath + " -> " +
                                               Path + ": " +
                                               std::strerror(errno));
  return Status::success();
}

ErrorOr<size_t> ecas::loadKernelHistory(KernelHistory &History,
                                        const std::string &Path) {
  std::ifstream File(Path, std::ios::binary);
  if (!File) {
    // No snapshot yet: a cold start, not a failure.
    History.clear();
    return size_t{0};
  }
  std::ostringstream Buffer;
  Buffer << File.rdbuf();
  if (File.bad()) {
    History.clear();
    return Status::error(ErrCode::IoError, "read error on " + Path);
  }
  std::string Bytes = Buffer.str();
  ErrorOr<size_t> Result = deserializeKernelHistory(History, Bytes);
  if (!Result)
    return Status::error(Result.status().code(),
                         Path + ": " + Result.status().message());
  return Result;
}
