//===-- ecas/core/Metric.h - Energy-related objectives ---------*- C++ -*-===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// User-selectable energy objectives. The paper's scheduler optimizes
/// "any user-defined energy-related metric that can be expressed as a
/// function of power consumption and program execution time": total
/// energy P*T, the energy-delay product P*T^2, the energy-delay-squared
/// product P*T^3, or an arbitrary custom function.
///
//===----------------------------------------------------------------------===//

#ifndef ECAS_CORE_METRIC_H
#define ECAS_CORE_METRIC_H

#include "ecas/support/HotPath.h"

#include <functional>
#include <string>

namespace ecas {

/// An objective f(P, T) to minimize, with P in watts and T in seconds.
class Metric {
public:
  using Fn = std::function<double(double Watts, double Seconds)>;

  /// Builtin objectives evaluate by direct switch dispatch; only
  /// custom() pays the type-erased std::function indirection. Same
  /// de-erasure PR 8 applied to math/Minimize: the builtins dominate
  /// the hot path and their bodies are two multiplies.
  enum class Builtin { Energy, Edp, Ed2p, Custom };

  /// Total energy: E = P * T.
  static Metric energy();
  /// Energy-delay product: EDP = E * T = P * T^2.
  static Metric edp();
  /// Energy-delay-squared product: ED^2 = E * T^2 = P * T^3.
  static Metric ed2p();
  /// Arbitrary objective; \p Name labels reports. Erased slow path.
  static Metric custom(std::string Name, Fn Body);

  /// Objective value at average power \p Watts over \p Seconds.
  /// Hot-path root: called once per grid point of every alpha search and
  /// on every table-hit model re-evaluation.
  ECAS_HOT double evaluate(double Watts, double Seconds) const;

  /// Objective value from measured totals (uses P = Joules/Seconds).
  double fromMeasurement(double Joules, double Seconds) const;

  const std::string &name() const { return Name; }
  Builtin kind() const { return Kind; }

private:
  Metric(std::string Name, Fn Body);
  Metric(std::string Name, Builtin Kind);

  std::string Name;
  Builtin Kind = Builtin::Custom;
  Fn Body;
};

} // namespace ecas

#endif // ECAS_CORE_METRIC_H
