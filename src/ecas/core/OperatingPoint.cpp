//===-- ecas/core/OperatingPoint.cpp - Joint (alpha, f) decisions ---------===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ecas/core/OperatingPoint.h"

#include "ecas/math/Minimize.h"
#include "ecas/support/Assert.h"

#include <cmath>

using namespace ecas;

const char *ecas::schedulingPolicyName(SchedulingPolicy Policy) {
  switch (Policy) {
  case SchedulingPolicy::MinimizeMetric:
    return "minimize";
  case SchedulingPolicy::RaceToIdle:
    return "race-to-idle";
  case SchedulingPolicy::PaceToDeadline:
    return "pace-to-deadline";
  }
  return "minimize";
}

std::optional<SchedulingPolicy>
ecas::schedulingPolicyByName(const std::string &Name) {
  if (Name == "minimize")
    return SchedulingPolicy::MinimizeMetric;
  if (Name == "race-to-idle")
    return SchedulingPolicy::RaceToIdle;
  if (Name == "pace-to-deadline")
    return SchedulingPolicy::PaceToDeadline;
  return std::nullopt;
}

namespace {

/// Shapes (Watts, Seconds) into the value the search minimizes.
ECAS_HOT double policyValue(const Metric &Objective, double Watts,
                            double Seconds,
                            const OperatingPointSearchConfig &Config) {
  switch (Config.Policy) {
  case SchedulingPolicy::MinimizeMetric:
    return Objective.evaluate(Watts, Seconds);
  case SchedulingPolicy::RaceToIdle:
    // Active energy above the idle floor: the idle draw is paid either
    // way, so only the increment matters. The floor keeps a
    // mischaracterized IdleWatts > P(alpha) from inverting the order.
    return std::max(Watts - Config.IdleWatts, 1e-3) * Seconds;
  case SchedulingPolicy::PaceToDeadline:
    if (Config.DeadlineSeconds > 0.0 && Seconds > Config.DeadlineSeconds)
      // Infeasible: dominate every feasible value yet stay monotonic in
      // Seconds so the least-late point wins when nothing fits.
      return 1e200 * std::max(Seconds, 1e-30);
    return Watts * Seconds;
  }
  return Objective.evaluate(Watts, Seconds);
}

} // namespace

Decision ecas::chooseOperatingPoint(const TimeModel &Model,
                                    const PStateView *Views,
                                    unsigned NumStates,
                                    const Metric &Objective, double Iterations,
                                    const OperatingPointSearchConfig &Config) {
  ECAS_CHECK(Views != nullptr && NumStates >= 1,
             "at least one P-state view is required");
  ECAS_CHECK(NumStates <= kMaxPStates, "too many P-state views");
  ECAS_CHECK(Iterations >= 0.0, "iteration count cannot be negative");
  ECAS_CHECK(Config.Step > 0.0 && Config.Step <= 1.0,
             "alpha step must lie in (0, 1]");

  if (Config.GridOut)
    Config.GridOut->clear();

  Decision Best;
  bool HaveBest = false;
  for (unsigned State = 0; State != NumStates; ++State) {
    const PStateView &View = Views[State];
    ECAS_CHECK(View.Curve != nullptr, "P-state view is missing a power curve");
    // Identity scales reuse the caller's model bit-for-bit so the
    // single-view call stays arithmetically identical to the legacy
    // chooseAlpha search (the wrapper's bit-identity guarantee).
    bool Scale = View.CpuFreqScale != 1.0 || View.GpuFreqScale != 1.0;
    TimeModel Scaled =
        Scale ? Model.scaledTo(View.CpuFreqScale, View.GpuFreqScale,
                               Config.MemBoundFraction)
              : Model;
    const TimeModel &StateModel = Scale ? Scaled : Model;

    auto ObjectiveAt = [&](double Alpha) {
      double Seconds = StateModel.totalTime(Iterations, Alpha);
      double Watts = View.Curve->powerAt(Alpha);
      double Value = policyValue(Objective, Watts, Seconds, Config);
      // A degenerate model point (dead device, overflowed product) must
      // lose to every well-defined grid cell, and a NaN would poison the
      // min-comparison chain below; map both to a huge finite penalty.
      Value = std::isfinite(Value) ? Value : 1e300;
      if (Config.GridOut) // observability only: null on the decision path
        Config.GridOut->emplace_back(Alpha, Value); // ecas-hotpath: allow(alloc)
      return Value;
    };

    MinResult Min =
        Config.Refine
            ? minimizeGridThenRefine(ObjectiveAt, 0.0, 1.0, Config.Step,
                                     Config.RefineTolerance)
            : minimizeOnGrid(ObjectiveAt, 0.0, 1.0, Config.Step);

    Best.Evaluations += Min.Evaluations;
    // Strict '<' keeps the lowest-index (fastest) state on ties.
    if (!HaveBest || Min.Value < Best.PredictedMetric) {
      HaveBest = true;
      Best.Point.Alpha = Min.ArgMin;
      Best.Point.PState = State;
      Best.PredictedMetric = Min.Value;
      Best.PredictedSeconds = StateModel.totalTime(Iterations, Min.ArgMin);
      Best.PredictedWatts = View.Curve->powerAt(Min.ArgMin);
    }
  }
  return Best;
}
