//===-- ecas/core/TimeModel.h - Analytical T(alpha) model -------*- C++ -*-===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The execution-time model of Section 3.2, Equations 1-4: given the
/// combined-mode throughputs R_C and R_G from online profiling, predicts
/// the time to process N iterations at GPU offload ratio alpha — a
/// combined phase where both devices run, followed by a single-device
/// tail on whichever side has leftover work.
///
//===----------------------------------------------------------------------===//

#ifndef ECAS_CORE_TIMEMODEL_H
#define ECAS_CORE_TIMEMODEL_H

#include "ecas/support/HotPath.h"

namespace ecas {

/// Analytical time model parameterized by profiled device throughputs.
class TimeModel {
public:
  /// \p CpuRate and \p GpuRate are R_C and R_G in iterations/second,
  /// measured while both devices execute (combined mode). At least one
  /// must be positive.
  TimeModel(double CpuRate, double GpuRate);

  double cpuRate() const { return Rc; }
  double gpuRate() const { return Rg; }

  /// Eq. 2: the offload ratio at which both devices finish together —
  /// the performance-oriented choice alpha_PERF = R_G / (R_C + R_G).
  ECAS_HOT double alphaPerf() const;

  /// Eq. 1: time both devices spend executing together,
  /// min((1-a)N/R_C, aN/R_G).
  ECAS_HOT double combinedTime(double N, double Alpha) const;

  /// Eq. 3: iterations left for the single-device tail,
  /// N - T_CG * (R_C + R_G).
  ECAS_HOT double remainingIters(double N, double Alpha) const;

  /// Eq. 4: total predicted time for N iterations at ratio \p Alpha.
  ECAS_HOT double totalTime(double N, double Alpha) const;

  /// Black-box frequency scaling for the joint (alpha, P-state) search:
  /// returns a model whose throughputs are rescaled for clocks at
  /// \p CpuScale / \p GpuScale times the profiled frequency. Only the
  /// compute-bound share speeds up with the clock; the memory-bound
  /// share \p MemBoundFraction (beta in [0, 1]) is pinned to DRAM, so
  /// R' = R * s / ((1 - beta) + beta * s) — Amdahl over the cycle
  /// budget. beta = 0 gives linear scaling, beta = 1 leaves R unchanged.
  ECAS_HOT TimeModel scaledTo(double CpuScale, double GpuScale,
                              double MemBoundFraction) const;

private:
  double Rc;
  double Rg;
};

} // namespace ecas

#endif // ECAS_CORE_TIMEMODEL_H
