//===-- ecas/core/Schedulers.cpp - Baseline scheduling strategies ---------===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ecas/core/Schedulers.h"

#include "ecas/support/Assert.h"

#include <cmath>

using namespace ecas;

double ecas::traceIterations(const InvocationTrace &Trace) {
  double Total = 0.0;
  for (const KernelInvocation &Invocation : Trace)
    Total += Invocation.Iterations;
  return Total;
}

double ecas::runPartitioned(SimProcessor &Proc, const KernelDesc &Kernel,
                            double Iterations, double Alpha) {
  ECAS_CHECK(Alpha >= 0.0 && Alpha <= 1.0, "alpha must be in [0,1]");
  ECAS_CHECK(Iterations >= 0.0, "iteration count cannot be negative");
  double GpuIters = std::floor(Alpha * Iterations + 0.5);
  double CpuIters = Iterations - GpuIters;
  double Start = Proc.now();
  if (GpuIters > 0.0)
    Proc.gpu().enqueue(Kernel, GpuIters);
  if (CpuIters > 0.0)
    Proc.cpu().enqueue(Kernel, CpuIters);
  Proc.runUntilIdle();
  return Proc.now() - Start;
}
