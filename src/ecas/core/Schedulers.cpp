//===-- ecas/core/Schedulers.cpp - Baseline scheduling strategies ---------===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ecas/core/Schedulers.h"

#include "ecas/support/Assert.h"

#include <algorithm>
#include <cmath>

using namespace ecas;

double ecas::traceIterations(const InvocationTrace &Trace) {
  double Total = 0.0;
  for (const KernelInvocation &Invocation : Trace)
    Total += Invocation.Iterations;
  return Total;
}

double ecas::runPartitioned(SimProcessor &Proc, const KernelDesc &Kernel,
                            double Iterations, double Alpha) {
  ECAS_CHECK(Alpha >= 0.0 && Alpha <= 1.0, "alpha must be in [0,1]");
  ECAS_CHECK(Iterations >= 0.0, "iteration count cannot be negative");
  double GpuIters = std::floor(Alpha * Iterations + 0.5);
  double CpuIters = Iterations - GpuIters;
  double Start = Proc.now();
  if (GpuIters > 0.0)
    Proc.gpu().enqueue(Kernel, GpuIters);
  if (CpuIters > 0.0)
    Proc.cpu().enqueue(Kernel, CpuIters);
  Proc.runUntilIdle();
  return Proc.now() - Start;
}

PartitionOutcome ecas::runPartitionedResilient(SimProcessor &Proc,
                                               GpuHealthMonitor &Health,
                                               const KernelDesc &Kernel,
                                               double Iterations,
                                               double Alpha) {
  ECAS_CHECK(Alpha >= 0.0 && Alpha <= 1.0, "alpha must be in [0,1]");
  ECAS_CHECK(Iterations >= 0.0, "iteration count cannot be negative");
  PartitionOutcome Outcome;
  Outcome.AlphaRequested = Alpha;

  // No injector and never a fault observed: take the exact legacy path,
  // guaranteeing bit-identical behaviour when injection is disabled.
  if (!Proc.faults() && Health.pristine()) {
    Outcome.Seconds = runPartitioned(Proc, Kernel, Iterations, Alpha);
    Outcome.AlphaEffective = Alpha;
    return Outcome;
  }

  const GpuHealthConfig &Config = Health.config();
  double GpuIters = std::floor(Alpha * Iterations + 0.5);
  double CpuIters = Iterations - GpuIters;
  double Start = Proc.now();

  bool GpuLaunched = false;
  if (GpuIters > 0.0) {
    if (!Health.gpuUsable(Proc.now())) {
      // Quarantined: degrade this invocation to CPU-alone up front.
      Outcome.QuarantineSkipped = true;
      CpuIters += GpuIters;
      GpuIters = 0.0;
    } else {
      // Bounded retry with exponential backoff around the enqueue. The
      // probability of failure is the injector's business; the runtime
      // only sees the driver saying no.
      double Backoff = Config.InitialRetryBackoffSec;
      for (unsigned Attempt = 0; Attempt <= Config.MaxLaunchRetries;
           ++Attempt) {
        if (Attempt > 0) {
          Proc.runFor(Backoff);
          Backoff = std::min(Backoff * Config.RetryBackoffMultiplier,
                             Config.MaxRetryBackoffSec);
        }
        if (Proc.faults() && Proc.faults()->gpuLaunchFails(Proc.now())) {
          Health.noteLaunchFailure(Proc.now());
          ++Outcome.LaunchRetries;
          continue;
        }
        Proc.gpu().enqueue(Kernel, GpuIters);
        GpuLaunched = true;
        break;
      }
      if (!GpuLaunched) {
        Health.noteLaunchAbandoned(Proc.now());
        Outcome.LaunchAbandoned = true;
        CpuIters += GpuIters;
        GpuIters = 0.0;
      }
    }
  }

  if (CpuIters > 0.0)
    Proc.cpu().enqueue(Kernel, CpuIters);

  // Progress-based watchdog: poll the run and declare a hang when the
  // GPU stays busy without retiring a single iteration across a whole
  // poll interval. Watching progress (not predicted completion time)
  // keeps throttled-but-moving devices off the hang path.
  double GpuStranded = 0.0;
  while (Proc.cpu().busy() || Proc.gpu().busy()) {
    bool GpuBusyBefore = Proc.gpu().busy();
    double GpuPendingBefore = Proc.gpu().pendingIterations();
    Proc.runUntilIdle(Config.WatchdogPollSec);
    if (GpuBusyBefore && Proc.gpu().busy() &&
        Proc.gpu().pendingIterations() >= GpuPendingBefore - 1e-9) {
      Health.noteHang(Proc.now());
      Outcome.HangDetected = true;
      GpuStranded = Proc.gpu().cancelRemaining();
      if (GpuStranded > 0.0)
        Proc.cpu().enqueue(Kernel, GpuStranded);
    }
  }

  if (GpuLaunched && !Outcome.HangDetected)
    Health.noteGpuSuccess(Proc.now());

  Outcome.Seconds = Proc.now() - Start;
  Outcome.AlphaEffective =
      Iterations > 0.0 ? (GpuIters - GpuStranded) / Iterations : 0.0;
  return Outcome;
}
