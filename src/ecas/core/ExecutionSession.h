//===-- ecas/core/ExecutionSession.h - Top-level public API ----*- C++ -*-===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The library's front door. An ExecutionSession binds a platform and
/// executes invocation traces under every comparison scheme of Section 5
/// — CPU-alone, GPU-alone, a fixed ratio, the exhaustive Oracle,
/// best-performance PERF, and EAS — reporting time, energy, and the
/// chosen metric for each.
///
/// The primary entry point is the unified run() API: pick a SchemeKind
/// and bundle everything else — the invocation trace, the power curves,
/// the objective metric, the fixed alpha or sweep step, the EasConfig,
/// a cancellation token, and an observability recorder — into one
/// RunOptions:
///
/// \code
///   ecas::PlatformSpec Spec = ecas::haswellDesktop();
///   ecas::PowerCurveSet Curves = ecas::Characterizer(Spec).characterize();
///   ecas::ExecutionSession Session(Spec);
///
///   ecas::RunOptions Options;
///   Options.Trace = &Trace;                  // the invocation sequence
///   Options.Curves = &Curves;                // required for Eas/alpha search
///   Options.Objective = ecas::Metric::edp();
///   ecas::obs::TraceRecorder Recorder;       // optional observability
///   Options.Recorder = &Recorder;
///   ecas::SessionReport Report = Session.run(ecas::SchemeKind::Eas, Options);
///
///   ecas::obs::ChromeTraceSink Sink("run.trace.json");
///   Recorder.drainTo(Sink);                  // open in Perfetto
/// \endcode
///
/// The legacy per-scheme methods (runEas, runFixedAlpha, ...) remain as
/// one-line wrappers over run() and behave exactly as before. Attaching
/// a Recorder never changes scheduling decisions: with
/// Options.Recorder == nullptr the run is bit-identical to the
/// pre-observability library (enforced by ObsTest).
///
//===----------------------------------------------------------------------===//

#ifndef ECAS_CORE_EXECUTIONSESSION_H
#define ECAS_CORE_EXECUTIONSESSION_H

#include "ecas/core/EasScheduler.h"
#include "ecas/core/Schedulers.h"
#include "ecas/hw/PlatformSpec.h"
#include "ecas/obs/Trace.h"

namespace ecas {

/// The comparison schemes of Section 5.
enum class SchemeKind {
  /// One fixed offload ratio (RunOptions::Alpha) for the whole trace.
  FixedAlpha,
  /// CPU-alone (TBB-style multicore baseline); alpha pinned to 0.
  CpuOnly,
  /// GPU-alone (vendor-OpenCL-style baseline); alpha pinned to 1.
  GpuOnly,
  /// Exhaustive sweep over fixed ratios, best by the objective metric.
  Oracle,
  /// Exhaustive sweep, best by execution time, reported under the
  /// objective metric.
  Perf,
  /// The energy-aware scheduler of Fig. 7.
  Eas,
};

/// Stable lowercase name ("fixed", "cpu", "gpu", "oracle", "perf",
/// "eas") — the value SessionReport::Scheme carries for CSV and bench
/// compatibility.
const char *schemeKindName(SchemeKind Kind);

/// Everything one run() needs besides the scheme. Pointer members are
/// borrowed, never owned, and must outlive the call.
struct RunOptions {
  /// The invocation sequence to execute (required).
  const InvocationTrace *Trace = nullptr;
  /// Power characterization; required for SchemeKind::Eas (unless
  /// CurveFamily is set), ignored by the fixed-ratio schemes.
  const PowerCurveSet *Curves = nullptr;
  /// Per-P-state characterization family. When set it supersedes Curves
  /// and the EAS scheme runs the joint (alpha, frequency) search;
  /// typically paired with Eas.PStates = true.
  const PowerCurveFamily *CurveFamily = nullptr;
  /// The metric every scheme optimizes and reports.
  Metric Objective = Metric::edp();
  /// Fixed offload ratio for SchemeKind::FixedAlpha.
  double Alpha = 0.0;
  /// Sweep increment for Oracle/Perf.
  double Step = 0.1;
  /// Tunables for SchemeKind::Eas.
  EasConfig Eas;
  /// Optional deadline/cancellation token (Eas only): checked between
  /// invocations and at the scheduler's cooperative points; a fired
  /// token ends the run early with Report.Cancelled set.
  const CancellationToken *Cancel = nullptr;
  /// Optional observability recorder. When set, the run emits a
  /// "session" span, wires the recorder through the EAS scheduler
  /// (unless Eas.Trace is already set), and fills the report's
  /// TraceEventCount. Never changes scheduling.
  obs::TraceRecorder *Recorder = nullptr;
  /// Optional metrics registry, wired through the EAS scheduler like the
  /// recorder (unless Eas.Metrics is already set). An EAS run also
  /// attaches eas_msr_reads_total to the processor's energy meter. Null
  /// keeps the run bit-identical — the same contract as Recorder.
  obs::MetricsRegistry *Metrics = nullptr;
  /// Optional per-decision audit ring (unless Eas.Decisions is set).
  obs::DecisionLog *Decisions = nullptr;
  /// Who this run belongs to (Eas only). The default — anonymous tenant,
  /// SLA1, no deadline — schedules bit-identically to the pre-service
  /// library; a nonzero TenantId namespaces every table-G key so the
  /// run's learned alphas stay private to the tenant.
  RequestContext Request;
};

/// What the degradation machinery did during one run (all zeros on a
/// healthy platform).
struct ResilienceSummary {
  unsigned LaunchRetries = 0;
  unsigned LaunchesAbandoned = 0;
  unsigned HangsDetected = 0;
  unsigned Quarantines = 0;
  /// Invocations that ran CPU-alone because the GPU was quarantined.
  unsigned QuarantinedInvocations = 0;
  unsigned Recoveries = 0;

  /// True when any fault forced the run off its nominal schedule.
  bool degraded() const {
    return LaunchesAbandoned || HangsDetected || Quarantines ||
           QuarantinedInvocations;
  }
};

/// Outcome of running one trace under one scheme.
struct SessionReport {
  /// Which scheme produced this report.
  SchemeKind Kind = SchemeKind::FixedAlpha;
  /// schemeKindName(Kind), kept as a field so CSV emitters and the
  /// bench harness keep working unchanged.
  std::string Scheme;
  double Seconds = 0.0;
  double Joules = 0.0;
  /// The session metric computed from the measured totals.
  double MetricValue = 0.0;
  /// Iteration-weighted mean offload ratio actually used.
  double MeanAlpha = 0.0;
  unsigned Invocations = 0;
  /// EAS only: classification of the (last profiled) kernel.
  WorkloadClass ClassifiedAs;
  bool WasClassified = false;
  /// Reaction side: what the degradation policy did.
  ResilienceSummary Resilience;
  /// Cause side: what the injector introduced (zeros when no fault plan
  /// was attached to the platform spec).
  FaultStats Injected;
  bool FaultsEnabled = false;
  /// A cancellation token cut the run short; the totals cover only the
  /// invocations that ran (Invocations counts completed ones).
  bool Cancelled = false;

  //===--------------------------------------------------------------===//
  // Aggregate observability counters (EAS runs; zero elsewhere). Each
  // mirrors a trace counter so a drained TraceLog can be cross-checked
  // against the report: eas.profile_reps, eas.alpha_searches,
  // eas.cpu_only.
  //===--------------------------------------------------------------===//
  /// Total online-profiling repetitions across the run.
  unsigned ProfileRepetitions = 0;
  /// Total alpha-grid optimizations performed.
  unsigned AlphaSearches = 0;
  /// Invocations that took a CPU-only fast path (small N, external GPU
  /// owner, or quarantine).
  unsigned CpuOnlyFastPaths = 0;
  /// Events the attached recorder had captured when the run finished
  /// (0 without a recorder).
  uint64_t TraceEventCount = 0;

  //===--------------------------------------------------------------===//
  // Model-fidelity aggregates (EAS runs with model samples; zero
  // elsewhere). Means over every invocation that produced a prediction
  // and a completed measured window, folded in invocation order — for a
  // single-class run they equal the mean of the matching
  // eas_model_*_rel_error histogram exactly (MetricsTest asserts it).
  //===--------------------------------------------------------------===//
  /// Mean |T_pred - T_meas| / T_meas across model samples.
  double ModelTimeRelError = 0.0;
  /// Mean |E_pred - E_meas| / E_meas across model samples.
  double ModelEnergyRelError = 0.0;
  /// Invocations contributing to the two means.
  unsigned ModelSamples = 0;

  double averageWatts() const { return Seconds > 0.0 ? Joules / Seconds : 0.0; }
};

/// Executes invocation traces on simulated processors of one platform.
/// Every run uses a fresh processor, so schemes never contaminate each
/// other's PCU or energy state.
class ExecutionSession {
public:
  explicit ExecutionSession(const PlatformSpec &Spec);

  const PlatformSpec &spec() const { return Spec; }

  /// Runs \p Options.Trace under \p Kind. See the file comment for the
  /// full contract; the per-scheme methods below are wrappers over this.
  SessionReport run(SchemeKind Kind, const RunOptions &Options) const;

  /// Runs the whole trace at one fixed offload ratio.
  SessionReport runFixedAlpha(const InvocationTrace &Trace, double Alpha,
                              const Metric &Objective) const;

  /// CPU-alone (TBB-style multicore baseline).
  SessionReport runCpuOnly(const InvocationTrace &Trace,
                           const Metric &Objective) const;

  /// GPU-alone (vendor-OpenCL-style baseline).
  SessionReport runGpuOnly(const InvocationTrace &Trace,
                           const Metric &Objective) const;

  /// Exhaustive search over fixed ratios, best by \p Objective — the
  /// paper's Oracle baseline (alpha in [0,1] with \p Step increments).
  SessionReport runOracle(const InvocationTrace &Trace,
                          const Metric &Objective, double Step = 0.1) const;

  /// Exhaustive search for the best *execution time*, reported under
  /// \p Objective — the paper's PERF comparison scheme.
  SessionReport runPerf(const InvocationTrace &Trace,
                        const Metric &Objective, double Step = 0.1) const;

  /// The energy-aware scheduler (Fig. 7) with fresh table-G state —
  /// unless \p Config.HistoryFile names a snapshot, in which case the
  /// run resumes from (and persists back to) that table G. \p Cancel,
  /// when non-null, bounds the run: it is checked between invocations
  /// and passed into the scheduler's cooperative cancellation points;
  /// a fired token ends the run early with Report.Cancelled set.
  SessionReport runEas(const InvocationTrace &Trace,
                       const PowerCurveSet &Curves, const Metric &Objective,
                       const EasConfig &Config = {},
                       const CancellationToken *Cancel = nullptr) const;

private:
  SessionReport runFixedAlphaScheme(SchemeKind Kind,
                                    const RunOptions &Options) const;
  SessionReport runSweepScheme(SchemeKind Kind,
                               const RunOptions &Options) const;
  SessionReport runEasScheme(const RunOptions &Options) const;
  SessionReport finishReport(SchemeKind Kind, const Metric &Objective,
                             double Seconds, double Joules,
                             double AlphaIterSum, double TotalIters,
                             unsigned Invocations) const;

  PlatformSpec Spec;
};

} // namespace ecas

#endif // ECAS_CORE_EXECUTIONSESSION_H
