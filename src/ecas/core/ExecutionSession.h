//===-- ecas/core/ExecutionSession.h - Top-level public API ----*- C++ -*-===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The library's front door. An ExecutionSession binds a platform,
/// executes invocation traces under every comparison scheme of Section 5
/// — CPU-alone, GPU-alone, the exhaustive Oracle, best-performance PERF,
/// and EAS — and reports time, energy, and the chosen metric for each.
///
/// \code
///   ecas::PlatformSpec Spec = ecas::haswellDesktop();
///   ecas::Characterizer Probe(Spec);
///   ecas::PowerCurveSet Curves = Probe.characterize(); // once per SKU
///   ecas::ExecutionSession Session(Spec);
///   auto Report = Session.runEas(Trace, Curves, ecas::Metric::edp());
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef ECAS_CORE_EXECUTIONSESSION_H
#define ECAS_CORE_EXECUTIONSESSION_H

#include "ecas/core/EasScheduler.h"
#include "ecas/core/Schedulers.h"
#include "ecas/hw/PlatformSpec.h"

namespace ecas {

/// What the degradation machinery did during one run (all zeros on a
/// healthy platform).
struct ResilienceSummary {
  unsigned LaunchRetries = 0;
  unsigned LaunchesAbandoned = 0;
  unsigned HangsDetected = 0;
  unsigned Quarantines = 0;
  /// Invocations that ran CPU-alone because the GPU was quarantined.
  unsigned QuarantinedInvocations = 0;
  unsigned Recoveries = 0;

  /// True when any fault forced the run off its nominal schedule.
  bool degraded() const {
    return LaunchesAbandoned || HangsDetected || Quarantines ||
           QuarantinedInvocations;
  }
};

/// Outcome of running one trace under one scheme.
struct SessionReport {
  std::string Scheme;
  double Seconds = 0.0;
  double Joules = 0.0;
  /// The session metric computed from the measured totals.
  double MetricValue = 0.0;
  /// Iteration-weighted mean offload ratio actually used.
  double MeanAlpha = 0.0;
  unsigned Invocations = 0;
  /// EAS only: classification of the (last profiled) kernel.
  WorkloadClass ClassifiedAs;
  bool WasClassified = false;
  /// Reaction side: what the degradation policy did.
  ResilienceSummary Resilience;
  /// Cause side: what the injector introduced (zeros when no fault plan
  /// was attached to the platform spec).
  FaultStats Injected;
  bool FaultsEnabled = false;
  /// A cancellation token cut the run short; the totals cover only the
  /// invocations that ran (Invocations counts completed ones).
  bool Cancelled = false;

  double averageWatts() const { return Seconds > 0.0 ? Joules / Seconds : 0.0; }
};

/// Executes invocation traces on simulated processors of one platform.
/// Every run uses a fresh processor, so schemes never contaminate each
/// other's PCU or energy state.
class ExecutionSession {
public:
  explicit ExecutionSession(const PlatformSpec &Spec);

  const PlatformSpec &spec() const { return Spec; }

  /// Runs the whole trace at one fixed offload ratio.
  SessionReport runFixedAlpha(const InvocationTrace &Trace, double Alpha,
                              const Metric &Objective) const;

  /// CPU-alone (TBB-style multicore baseline).
  SessionReport runCpuOnly(const InvocationTrace &Trace,
                           const Metric &Objective) const;

  /// GPU-alone (vendor-OpenCL-style baseline).
  SessionReport runGpuOnly(const InvocationTrace &Trace,
                           const Metric &Objective) const;

  /// Exhaustive search over fixed ratios, best by \p Objective — the
  /// paper's Oracle baseline (alpha in [0,1] with \p Step increments).
  SessionReport runOracle(const InvocationTrace &Trace,
                          const Metric &Objective, double Step = 0.1) const;

  /// Exhaustive search for the best *execution time*, reported under
  /// \p Objective — the paper's PERF comparison scheme.
  SessionReport runPerf(const InvocationTrace &Trace,
                        const Metric &Objective, double Step = 0.1) const;

  /// The energy-aware scheduler (Fig. 7) with fresh table-G state —
  /// unless \p Config.HistoryFile names a snapshot, in which case the
  /// run resumes from (and persists back to) that table G. \p Cancel,
  /// when non-null, bounds the run: it is checked between invocations
  /// and passed into the scheduler's cooperative cancellation points;
  /// a fired token ends the run early with Report.Cancelled set.
  SessionReport runEas(const InvocationTrace &Trace,
                       const PowerCurveSet &Curves, const Metric &Objective,
                       const EasConfig &Config = {},
                       const CancellationToken *Cancel = nullptr) const;

private:
  SessionReport finishReport(std::string Scheme, const Metric &Objective,
                             double Seconds, double Joules,
                             double AlphaIterSum, double TotalIters,
                             unsigned Invocations) const;

  PlatformSpec Spec;
};

} // namespace ecas

#endif // ECAS_CORE_EXECUTIONSESSION_H
