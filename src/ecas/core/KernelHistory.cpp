//===-- ecas/core/KernelHistory.cpp - The global table G ------------------===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ecas/core/KernelHistory.h"

using namespace ecas;

const KernelRecord *KernelHistory::lookup(uint64_t KernelId) const {
  auto It = Records.find(KernelId);
  return It == Records.end() ? nullptr : &It->second;
}

KernelRecord &KernelHistory::obtain(uint64_t KernelId) {
  return Records[KernelId];
}
