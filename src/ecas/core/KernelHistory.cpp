//===-- ecas/core/KernelHistory.cpp - The global table G ------------------===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ecas/core/KernelHistory.h"

#include <algorithm>

using namespace ecas;

KernelHistory::~KernelHistory() {
  for (Shard &S : Shards)
    destroyChain(S.Head.load(std::memory_order_relaxed));
  // The table is quiescent in its destructor, but the guard keeps the
  // annotation contract (and the analysis) simple.
  LockGuard Lock(RetiredMutex);
  for (Entry *Chain : RetiredChains)
    destroyChain(Chain);
  RetiredChains.clear();
}

void KernelHistory::destroyChain(Entry *Head) {
  while (Head) {
    Entry *Next = Head->Next.load(std::memory_order_relaxed);
    Version *V = Head->Current.load(std::memory_order_relaxed);
    while (V) {
      Version *Older = V->Older;
      delete V;
      V = Older;
    }
    delete Head;
    Head = Next;
  }
}

unsigned KernelHistory::shardIndex(uint64_t KernelId) {
  // Fibonacci hashing spreads sequential ids across shards.
  return static_cast<unsigned>((KernelId * 0x9e3779b97f4a7c15ull) >> 60) &
         (NumShards - 1);
}

KernelHistory::Entry *KernelHistory::findEntry(const Shard &S,
                                               uint64_t KernelId) {
  for (Entry *E = S.Head.load(std::memory_order_acquire); E;
       E = E->Next.load(std::memory_order_acquire))
    if (E->Key == KernelId)
      return E;
  return nullptr;
}

KernelHistory::Entry &KernelHistory::obtainEntry(uint64_t KernelId) {
  Shard &S = Shards[shardIndex(KernelId)];
  if (Entry *E = findEntry(S, KernelId))
    return *E;
  LockGuard Lock(S.Mutex);
  // Re-check: another writer may have inserted while we waited.
  if (Entry *E = findEntry(S, KernelId))
    return *E;
  // First sighting of this kernel: one entry + one empty version, once
  // per kernel lifetime — the warmed hit path re-reads these forever.
  auto *Fresh = new Entry(KernelId); // ecas-hotpath: allow(alloc)
  Fresh->Current.store(new Version(), // ecas-hotpath: allow(alloc)
                       std::memory_order_relaxed);
  Fresh->Next.store(S.Head.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
  // Publish: the release store makes the entry (and its empty first
  // version) visible to lock-free readers walking the list.
  S.Head.store(Fresh, std::memory_order_release);
  Count.fetch_add(1, std::memory_order_relaxed);
  return *Fresh;
}

void KernelHistory::composeRecord(const Entry &E, const Version *V,
                                  KernelRecord &Out) {
  Out = V->Rec;
  Out.Invocations = E.Invocations.load(std::memory_order_relaxed);
  Out.QuarantinedRuns = E.QuarantinedRuns.load(std::memory_order_relaxed);
}

bool KernelHistory::lookup(uint64_t KernelId, KernelRecord &Out) const {
  const Shard &S = Shards[shardIndex(KernelId)];
  const Entry *E = findEntry(S, KernelId);
  if (!E)
    return false;
  composeRecord(*E, E->Current.load(std::memory_order_acquire), Out);
  return true;
}

std::optional<KernelRecord> KernelHistory::find(uint64_t KernelId) const {
  KernelRecord Rec;
  if (!lookup(KernelId, Rec))
    return std::nullopt;
  return Rec;
}

void KernelHistory::update(uint64_t KernelId,
                           const std::function<void(KernelRecord &)> &Fn) {
  Entry &E = obtainEntry(KernelId);
  Shard &S = Shards[shardIndex(KernelId)];
  LockGuard Lock(S.Mutex);
  Version *Cur = E.Current.load(std::memory_order_relaxed);
  auto *Fresh = new Version();
  composeRecord(E, Cur, Fresh->Rec);
  unsigned InvocationsBefore = Fresh->Rec.Invocations;
  unsigned QuarantinedBefore = Fresh->Rec.QuarantinedRuns;
  Fn(Fresh->Rec);
  // Counters are owned by the bump*() atomics; a stale copy must not be
  // resurrected into the published version.
  Fresh->Rec.Invocations = InvocationsBefore;
  Fresh->Rec.QuarantinedRuns = QuarantinedBefore;
  Fresh->Older = Cur;
  E.Current.store(Fresh, std::memory_order_release);
}

unsigned KernelHistory::bumpInvocations(uint64_t KernelId) {
  return obtainEntry(KernelId).Invocations.fetch_add(
             1, std::memory_order_relaxed) +
         1;
}

unsigned KernelHistory::bumpQuarantinedRuns(uint64_t KernelId) {
  return obtainEntry(KernelId).QuarantinedRuns.fetch_add(
             1, std::memory_order_relaxed) +
         1;
}

std::vector<std::pair<uint64_t, KernelRecord>> KernelHistory::entries() const {
  std::vector<std::pair<uint64_t, KernelRecord>> Out;
  Out.reserve(Count.load(std::memory_order_relaxed));
  for (const Shard &S : Shards) {
    LockGuard Lock(S.Mutex);
    for (const Entry *E = S.Head.load(std::memory_order_acquire); E;
         E = E->Next.load(std::memory_order_acquire)) {
      KernelRecord Rec;
      composeRecord(*E, E->Current.load(std::memory_order_acquire), Rec);
      Out.emplace_back(E->Key, Rec);
    }
  }
  std::sort(Out.begin(), Out.end(),
            [](const auto &A, const auto &B) { return A.first < B.first; });
  return Out;
}

void KernelHistory::restore(
    const std::vector<std::pair<uint64_t, KernelRecord>> &Entries) {
  clear();
  for (const auto &[Key, Rec] : Entries) {
    Entry &E = obtainEntry(Key);
    E.Invocations.store(Rec.Invocations, std::memory_order_relaxed);
    E.QuarantinedRuns.store(Rec.QuarantinedRuns, std::memory_order_relaxed);
    update(Key, [&Rec](KernelRecord &Target) {
      Target.Alpha = Rec.Alpha;
      Target.Class = Rec.Class;
      Target.Sample = Rec.Sample;
      Target.CpuOnly = Rec.CpuOnly;
      Target.Confident = Rec.Confident;
      Target.PState = Rec.PState;
    });
  }
}

void KernelHistory::clear() {
  // Unlink each shard's chain but keep the entries alive: a concurrent
  // lookup may still be walking them. They are freed with the table.
  // Chains are collected first and retired after the shard locks are
  // released — the shard lock and RetiredMutex are never held together,
  // keeping both leaves of the lock hierarchy (DESIGN.md §9).
  std::vector<Entry *> Unlinked;
  for (Shard &S : Shards) {
    Entry *Old;
    {
      LockGuard Lock(S.Mutex);
      Old = S.Head.exchange(nullptr, std::memory_order_acq_rel);
    }
    if (!Old)
      continue;
    size_t Chained = 0;
    for (Entry *E = Old; E; E = E->Next.load(std::memory_order_relaxed))
      ++Chained;
    Count.fetch_sub(Chained, std::memory_order_relaxed);
    Unlinked.push_back(Old);
  }
  if (Unlinked.empty())
    return;
  LockGuard RetireLock(RetiredMutex);
  RetiredChains.insert(RetiredChains.end(), Unlinked.begin(), Unlinked.end());
}

size_t KernelHistory::size() const {
  return Count.load(std::memory_order_relaxed);
}
