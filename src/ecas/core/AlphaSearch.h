//===-- ecas/core/AlphaSearch.h - Offload-ratio optimization ---*- C++ -*-===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fig. 7 step 20: find the GPU offload ratio minimizing the target
/// objective OBJ(alpha) = Metric(P(alpha), T(alpha)) by evaluating it on
/// a grid over [0, 1] (the paper uses 0.1 or 0.05 increments), with an
/// optional golden-section refinement extension.
///
/// DEPRECATED: chooseAlpha is the fixed-frequency special case of
/// core/OperatingPoint.h's chooseOperatingPoint and survives only as a
/// bit-identical delegating wrapper for existing callers. New code must
/// call chooseOperatingPoint (ecas-lint rule choose-alpha-deprecated
/// rejects new callers outside this wrapper's own unit tests).
///
//===----------------------------------------------------------------------===//

#ifndef ECAS_CORE_ALPHASEARCH_H
#define ECAS_CORE_ALPHASEARCH_H

#include "ecas/core/Metric.h"
#include "ecas/core/TimeModel.h"
#include "ecas/power/PowerCurve.h"
#include "ecas/support/HotPath.h"

#include <utility>
#include <vector>

namespace ecas {

/// Search configuration.
struct AlphaSearchConfig {
  /// Grid increment over [0, 1].
  double Step = 0.1;
  /// When set, refine around the best grid cell with golden-section
  /// search (an extension over the paper's plain grid).
  bool Refine = false;
  double RefineTolerance = 1e-3;
  /// When non-null, receives every (alpha, objective) point the search
  /// evaluated, in evaluation order. The observability layer attaches
  /// this grid to the alpha-search trace event; the search itself never
  /// reads it back.
  std::vector<std::pair<double, double>> *GridOut = nullptr;
};

/// The chosen ratio and its predicted consequences.
struct AlphaChoice {
  double Alpha = 0.0;
  double PredictedMetric = 0.0;
  double PredictedSeconds = 0.0;
  double PredictedWatts = 0.0;
  unsigned Evaluations = 0;
};

/// Minimizes Metric(P(alpha), T(alpha; N)) over alpha in [0, 1]. Runs
/// every profiling repetition, so it is a hot-path root: the objective
/// closure stays a stack lambda fed to the Minimize.h templates (a
/// std::function here heap-allocated once per search — DESIGN.md §14).
ECAS_HOT AlphaChoice chooseAlpha(const TimeModel &Model,
                                 const PowerCurve &Curve,
                                 const Metric &Objective, double Iterations,
                                 const AlphaSearchConfig &Config = {});

} // namespace ecas

#endif // ECAS_CORE_ALPHASEARCH_H
