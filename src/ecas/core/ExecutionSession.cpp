//===-- ecas/core/ExecutionSession.cpp - Top-level public API -------------===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ecas/core/ExecutionSession.h"

#include "ecas/support/Assert.h"

#include <algorithm>

using namespace ecas;

ExecutionSession::ExecutionSession(const PlatformSpec &SpecIn)
    : Spec(SpecIn) {
  std::string Error;
  ECAS_CHECK(Spec.validate(Error), "ExecutionSession given an invalid spec");
}

SessionReport ExecutionSession::finishReport(std::string Scheme,
                                             const Metric &Objective,
                                             double Seconds, double Joules,
                                             double AlphaIterSum,
                                             double TotalIters,
                                             unsigned Invocations) const {
  SessionReport Report;
  Report.Scheme = std::move(Scheme);
  Report.Seconds = Seconds;
  Report.Joules = Joules;
  Report.MetricValue =
      Seconds > 0.0 ? Objective.fromMeasurement(Joules, Seconds) : 0.0;
  Report.MeanAlpha = TotalIters > 0.0 ? AlphaIterSum / TotalIters : 0.0;
  Report.Invocations = Invocations;
  return Report;
}

/// Folds one GPU health monitor's tallies plus the injector's (if any)
/// into a finished report.
static void attachResilience(SessionReport &Report,
                             const GpuHealthMonitor &Health,
                             const SimProcessor &Proc,
                             unsigned QuarantinedInvocations) {
  const GpuHealthMonitor::Stats Stats = Health.stats();
  Report.Resilience.LaunchRetries = Stats.LaunchFailures;
  Report.Resilience.LaunchesAbandoned = Stats.LaunchesAbandoned;
  Report.Resilience.HangsDetected = Stats.HangsDetected;
  Report.Resilience.Quarantines = Stats.Quarantines;
  Report.Resilience.QuarantinedInvocations = QuarantinedInvocations;
  Report.Resilience.Recoveries = Stats.Recoveries;
  if (const FaultInjector *Faults = Proc.faults()) {
    Report.Injected = Faults->stats();
    Report.FaultsEnabled = true;
  }
}

SessionReport
ExecutionSession::runFixedAlpha(const InvocationTrace &Trace, double Alpha,
                                const Metric &Objective) const {
  SimProcessor Proc(Spec);
  GpuHealthMonitor Health;
  uint32_t MsrBefore = Proc.meter().readMsr();
  double Start = Proc.now();
  double AlphaIterSum = 0.0;
  unsigned Quarantined = 0;
  for (const KernelInvocation &Invocation : Trace) {
    PartitionOutcome Outcome = runPartitionedResilient(
        Proc, Health, Invocation.Kernel, Invocation.Iterations, Alpha);
    AlphaIterSum += Outcome.AlphaEffective * Invocation.Iterations;
    Quarantined += Outcome.QuarantineSkipped ? 1 : 0;
  }
  double Seconds = Proc.now() - Start;
  double Joules = Proc.meter().joulesSince(MsrBefore);
  double TotalIters = traceIterations(Trace);
  SessionReport Report = finishReport("fixed", Objective, Seconds, Joules,
                                      AlphaIterSum, TotalIters,
                                      static_cast<unsigned>(Trace.size()));
  attachResilience(Report, Health, Proc, Quarantined);
  return Report;
}

SessionReport ExecutionSession::runCpuOnly(const InvocationTrace &Trace,
                                           const Metric &Objective) const {
  SessionReport Report = runFixedAlpha(Trace, 0.0, Objective);
  Report.Scheme = "cpu";
  return Report;
}

SessionReport ExecutionSession::runGpuOnly(const InvocationTrace &Trace,
                                           const Metric &Objective) const {
  SessionReport Report = runFixedAlpha(Trace, 1.0, Objective);
  Report.Scheme = "gpu";
  return Report;
}

SessionReport ExecutionSession::runOracle(const InvocationTrace &Trace,
                                          const Metric &Objective,
                                          double Step) const {
  ECAS_CHECK(Step > 0.0 && Step <= 1.0, "oracle step must lie in (0, 1]");
  SessionReport Best;
  bool HaveBest = false;
  for (double Alpha = 0.0; Alpha <= 1.0 + 1e-9; Alpha += Step) {
    SessionReport Candidate =
        runFixedAlpha(Trace, std::min(Alpha, 1.0), Objective);
    if (!HaveBest || Candidate.MetricValue < Best.MetricValue) {
      Best = Candidate;
      HaveBest = true;
    }
  }
  Best.Scheme = "oracle";
  return Best;
}

SessionReport ExecutionSession::runPerf(const InvocationTrace &Trace,
                                        const Metric &Objective,
                                        double Step) const {
  ECAS_CHECK(Step > 0.0 && Step <= 1.0, "perf step must lie in (0, 1]");
  SessionReport Best;
  bool HaveBest = false;
  for (double Alpha = 0.0; Alpha <= 1.0 + 1e-9; Alpha += Step) {
    SessionReport Candidate =
        runFixedAlpha(Trace, std::min(Alpha, 1.0), Objective);
    if (!HaveBest || Candidate.Seconds < Best.Seconds) {
      Best = Candidate;
      HaveBest = true;
    }
  }
  Best.Scheme = "perf";
  return Best;
}

SessionReport ExecutionSession::runEas(const InvocationTrace &Trace,
                                       const PowerCurveSet &Curves,
                                       const Metric &Objective,
                                       const EasConfig &Config,
                                       const CancellationToken *Cancel) const {
  SimProcessor Proc(Spec);
  EasScheduler Scheduler(Curves, Objective, Config);
  uint32_t MsrBefore = Proc.meter().readMsr();
  double Start = Proc.now();
  double AlphaIterSum = 0.0;
  WorkloadClass LastClass;
  bool Classified = false;
  unsigned Quarantined = 0;
  unsigned Completed = 0;
  bool Cancelled = false;
  for (const KernelInvocation &Invocation : Trace) {
    // Deadlines are judged against the virtual clock the run advances.
    if (Cancel && Cancel->shouldStop(Proc.now())) {
      Cancelled = true;
      break;
    }
    EasScheduler::InvocationOutcome Outcome =
        Cancel ? Scheduler.execute(Proc, Invocation.Kernel,
                                   Invocation.Iterations, *Cancel)
               : Scheduler.execute(Proc, Invocation.Kernel,
                                   Invocation.Iterations);
    if (Outcome.Cancelled || Outcome.Rejected) {
      Cancelled = true;
      break;
    }
    ++Completed;
    AlphaIterSum += Outcome.AlphaUsed * Invocation.Iterations;
    Quarantined += Outcome.GpuQuarantined ? 1 : 0;
    if (Outcome.Profiled) {
      LastClass = Outcome.Class;
      Classified = true;
    }
  }
  double Seconds = Proc.now() - Start;
  double Joules = Proc.meter().joulesSince(MsrBefore);
  SessionReport Report = finishReport("eas", Objective, Seconds, Joules,
                                      AlphaIterSum, traceIterations(Trace),
                                      Completed);
  Report.ClassifiedAs = LastClass;
  Report.WasClassified = Classified;
  Report.Cancelled = Cancelled;
  attachResilience(Report, Scheduler.health(), Proc, Quarantined);
  return Report;
}
