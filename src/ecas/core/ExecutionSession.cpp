//===-- ecas/core/ExecutionSession.cpp - Top-level public API -------------===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ecas/core/ExecutionSession.h"

#include "ecas/obs/MetricNames.h"
#include "ecas/support/Assert.h"
#include "ecas/support/Format.h"

#include <algorithm>

using namespace ecas;

const char *ecas::schemeKindName(SchemeKind Kind) {
  switch (Kind) {
  case SchemeKind::FixedAlpha:
    return "fixed";
  case SchemeKind::CpuOnly:
    return "cpu";
  case SchemeKind::GpuOnly:
    return "gpu";
  case SchemeKind::Oracle:
    return "oracle";
  case SchemeKind::Perf:
    return "perf";
  case SchemeKind::Eas:
    return "eas";
  }
  ECAS_UNREACHABLE("unknown SchemeKind");
}

ExecutionSession::ExecutionSession(const PlatformSpec &SpecIn)
    : Spec(SpecIn) {
  std::string Error;
  ECAS_CHECK(Spec.validate(Error), "ExecutionSession given an invalid spec");
}

SessionReport ExecutionSession::finishReport(SchemeKind Kind,
                                             const Metric &Objective,
                                             double Seconds, double Joules,
                                             double AlphaIterSum,
                                             double TotalIters,
                                             unsigned Invocations) const {
  SessionReport Report;
  Report.Kind = Kind;
  Report.Scheme = schemeKindName(Kind);
  Report.Seconds = Seconds;
  Report.Joules = Joules;
  Report.MetricValue =
      Seconds > 0.0 ? Objective.fromMeasurement(Joules, Seconds) : 0.0;
  Report.MeanAlpha = TotalIters > 0.0 ? AlphaIterSum / TotalIters : 0.0;
  Report.Invocations = Invocations;
  return Report;
}

/// Folds one GPU health monitor's tallies plus the injector's (if any)
/// into a finished report.
static void attachResilience(SessionReport &Report,
                             const GpuHealthMonitor &Health,
                             const SimProcessor &Proc,
                             unsigned QuarantinedInvocations) {
  const GpuHealthMonitor::Stats Stats = Health.stats();
  Report.Resilience.LaunchRetries = Stats.LaunchFailures;
  Report.Resilience.LaunchesAbandoned = Stats.LaunchesAbandoned;
  Report.Resilience.HangsDetected = Stats.HangsDetected;
  Report.Resilience.Quarantines = Stats.Quarantines;
  Report.Resilience.QuarantinedInvocations = QuarantinedInvocations;
  Report.Resilience.Recoveries = Stats.Recoveries;
  if (const FaultInjector *Faults = Proc.faults()) {
    Report.Injected = Faults->stats();
    Report.FaultsEnabled = true;
  }
}

SessionReport ExecutionSession::run(SchemeKind Kind,
                                    const RunOptions &Options) const {
  ECAS_CHECK(Options.Trace, "run() requires RunOptions::Trace");
  ECAS_CHECK(Kind != SchemeKind::Eas || Options.Curves || Options.CurveFamily,
             "SchemeKind::Eas requires RunOptions::Curves or CurveFamily");
  SessionReport Report;
  {
    obs::ScopedSpan Session(Options.Recorder, "session", "session", {},
                            formatString("scheme=%s", schemeKindName(Kind)));
    switch (Kind) {
    case SchemeKind::FixedAlpha:
    case SchemeKind::CpuOnly:
    case SchemeKind::GpuOnly:
      Report = runFixedAlphaScheme(Kind, Options);
      break;
    case SchemeKind::Oracle:
    case SchemeKind::Perf:
      Report = runSweepScheme(Kind, Options);
      break;
    case SchemeKind::Eas:
      Report = runEasScheme(Options);
      break;
    }
    if (Options.Recorder) {
      Session.setEndDetail(formatString(
          "scheme=%s seconds=%.6f joules=%.3f invocations=%u",
          schemeKindName(Kind), Report.Seconds, Report.Joules,
          Report.Invocations));
      Report.TraceEventCount = Options.Recorder->eventsRecorded();
    }
  }
  return Report;
}

SessionReport
ExecutionSession::runFixedAlphaScheme(SchemeKind Kind,
                                      const RunOptions &Options) const {
  const double Alpha = Kind == SchemeKind::CpuOnly   ? 0.0
                       : Kind == SchemeKind::GpuOnly ? 1.0
                                                     : Options.Alpha;
  const InvocationTrace &Trace = *Options.Trace;
  SimProcessor Proc(Spec);
  GpuHealthMonitor Health;
  uint32_t MsrBefore = Proc.meter().readMsr();
  double Start = Proc.now();
  double AlphaIterSum = 0.0;
  unsigned Quarantined = 0;
  for (const KernelInvocation &Invocation : Trace) {
    PartitionOutcome Outcome = runPartitionedResilient(
        Proc, Health, Invocation.Kernel, Invocation.Iterations, Alpha);
    AlphaIterSum += Outcome.AlphaEffective * Invocation.Iterations;
    Quarantined += Outcome.QuarantineSkipped ? 1 : 0;
  }
  double Seconds = Proc.now() - Start;
  double Joules = Proc.meter().joulesSince(MsrBefore);
  double TotalIters = traceIterations(Trace);
  SessionReport Report = finishReport(Kind, Options.Objective, Seconds, Joules,
                                      AlphaIterSum, TotalIters,
                                      static_cast<unsigned>(Trace.size()));
  attachResilience(Report, Health, Proc, Quarantined);
  return Report;
}

SessionReport ExecutionSession::runSweepScheme(SchemeKind Kind,
                                               const RunOptions &Options) const {
  ECAS_CHECK(Options.Step > 0.0 && Options.Step <= 1.0,
             "sweep step must lie in (0, 1]");
  const bool ByTime = Kind == SchemeKind::Perf;
  RunOptions Point = Options;
  SessionReport Best;
  bool HaveBest = false;
  for (double Alpha = 0.0; Alpha <= 1.0 + 1e-9; Alpha += Options.Step) {
    Point.Alpha = std::min(Alpha, 1.0);
    SessionReport Candidate =
        runFixedAlphaScheme(SchemeKind::FixedAlpha, Point);
    bool Better = ByTime ? Candidate.Seconds < Best.Seconds
                         : Candidate.MetricValue < Best.MetricValue;
    if (!HaveBest || Better) {
      Best = Candidate;
      HaveBest = true;
    }
  }
  Best.Kind = Kind;
  Best.Scheme = schemeKindName(Kind);
  return Best;
}

SessionReport ExecutionSession::runEasScheme(const RunOptions &Options) const {
  const InvocationTrace &Trace = *Options.Trace;
  const CancellationToken *Cancel = Options.Cancel;
  // The recorder rides into the scheduler through its config — unless
  // the caller already wired one there explicitly.
  EasConfig Config = Options.Eas;
  if (Options.Recorder && !Config.Trace)
    Config.Trace = Options.Recorder;
  if (Options.Metrics && !Config.Metrics)
    Config.Metrics = Options.Metrics;
  if (Options.Decisions && !Config.Decisions)
    Config.Decisions = Options.Decisions;
  SimProcessor Proc(Spec);
  if (Config.Metrics)
    Proc.meter().setReadCounter(&Config.Metrics->counter(
        obs::names::MsrReadsTotal, {},
        "Emulated MSR_PKG_ENERGY_STATUS reads (sampling cadence the "
        "wrap-at-most-once contract depends on)"));
  EasScheduler Scheduler(
      Options.CurveFamily ? *Options.CurveFamily
                          : PowerCurveFamily::fromSingle(*Options.Curves),
      Options.Objective, Config);
  uint32_t MsrBefore = Proc.meter().readMsr();
  double Start = Proc.now();
  double AlphaIterSum = 0.0;
  WorkloadClass LastClass;
  bool Classified = false;
  unsigned Quarantined = 0;
  unsigned Completed = 0;
  unsigned ProfileReps = 0;
  unsigned AlphaSearches = 0;
  unsigned CpuOnlyFastPaths = 0;
  double TimeErrSum = 0.0;
  double EnergyErrSum = 0.0;
  unsigned ModelSamples = 0;
  bool Cancelled = false;
  for (const KernelInvocation &Invocation : Trace) {
    // Deadlines are judged against the virtual clock the run advances.
    if (Cancel && Cancel->shouldStop(Proc.now())) {
      Cancelled = true;
      break;
    }
    EasScheduler::InvocationOutcome Outcome = Scheduler.execute(
        Proc, Invocation.Kernel, Invocation.Iterations, Options.Request,
        Cancel);
    // Tally the work counters before judging cancellation so they agree
    // with the trace counters (a cancelled invocation may still have
    // profiled before the token fired).
    ProfileReps += Outcome.ProfileRepetitions;
    AlphaSearches += Outcome.AlphaSearches;
    CpuOnlyFastPaths += Outcome.CpuOnlyFastPath ? 1 : 0;
    // Invocation-order sums, the same fold a histogram performs — a
    // single-class run's means then match the registry's bitwise.
    if (Outcome.hasModelSample()) {
      TimeErrSum += Outcome.timeRelError();
      EnergyErrSum += Outcome.energyRelError();
      ++ModelSamples;
    }
    if (Outcome.Cancelled || Outcome.Rejected) {
      Cancelled = true;
      break;
    }
    ++Completed;
    AlphaIterSum += Outcome.AlphaUsed * Invocation.Iterations;
    Quarantined += Outcome.GpuQuarantined ? 1 : 0;
    if (Outcome.Profiled) {
      LastClass = Outcome.Class;
      Classified = true;
    }
  }
  double Seconds = Proc.now() - Start;
  double Joules = Proc.meter().joulesSince(MsrBefore);
  SessionReport Report = finishReport(SchemeKind::Eas, Options.Objective,
                                      Seconds, Joules, AlphaIterSum,
                                      traceIterations(Trace), Completed);
  Report.ClassifiedAs = LastClass;
  Report.WasClassified = Classified;
  Report.Cancelled = Cancelled;
  Report.ProfileRepetitions = ProfileReps;
  Report.AlphaSearches = AlphaSearches;
  Report.CpuOnlyFastPaths = CpuOnlyFastPaths;
  if (ModelSamples) {
    Report.ModelTimeRelError = TimeErrSum / ModelSamples;
    Report.ModelEnergyRelError = EnergyErrSum / ModelSamples;
    Report.ModelSamples = ModelSamples;
  }
  attachResilience(Report, Scheduler.health(), Proc, Quarantined);
  return Report;
}

SessionReport
ExecutionSession::runFixedAlpha(const InvocationTrace &Trace, double Alpha,
                                const Metric &Objective) const {
  RunOptions Options;
  Options.Trace = &Trace;
  Options.Objective = Objective;
  Options.Alpha = Alpha;
  return run(SchemeKind::FixedAlpha, Options);
}

SessionReport ExecutionSession::runCpuOnly(const InvocationTrace &Trace,
                                           const Metric &Objective) const {
  RunOptions Options;
  Options.Trace = &Trace;
  Options.Objective = Objective;
  return run(SchemeKind::CpuOnly, Options);
}

SessionReport ExecutionSession::runGpuOnly(const InvocationTrace &Trace,
                                           const Metric &Objective) const {
  RunOptions Options;
  Options.Trace = &Trace;
  Options.Objective = Objective;
  return run(SchemeKind::GpuOnly, Options);
}

SessionReport ExecutionSession::runOracle(const InvocationTrace &Trace,
                                          const Metric &Objective,
                                          double Step) const {
  RunOptions Options;
  Options.Trace = &Trace;
  Options.Objective = Objective;
  Options.Step = Step;
  return run(SchemeKind::Oracle, Options);
}

SessionReport ExecutionSession::runPerf(const InvocationTrace &Trace,
                                        const Metric &Objective,
                                        double Step) const {
  RunOptions Options;
  Options.Trace = &Trace;
  Options.Objective = Objective;
  Options.Step = Step;
  return run(SchemeKind::Perf, Options);
}

SessionReport ExecutionSession::runEas(const InvocationTrace &Trace,
                                       const PowerCurveSet &Curves,
                                       const Metric &Objective,
                                       const EasConfig &Config,
                                       const CancellationToken *Cancel) const {
  RunOptions Options;
  Options.Trace = &Trace;
  Options.Curves = &Curves;
  Options.Objective = Objective;
  Options.Eas = Config;
  Options.Cancel = Cancel;
  return run(SchemeKind::Eas, Options);
}
