//===-- ecas/core/KernelHistory.h - The global table G ---------*- C++ -*-===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fig. 7's global runtime table G mapping a kernel's identity (the CPU
/// function pointer in Concord; a stable kernel id here) to its learned
/// GPU offload ratio, accumulated across invocations with the
/// sample-weighted technique of [12].
///
/// The table is sharded and safe for any number of concurrent readers
/// and writers. The steady-state hit — "kernel seen before, reuse its
/// alpha" — is lock-free: shards are insert-only atomic singly-linked
/// lists, and each entry publishes an immutable record version through
/// an atomic pointer, so lookup() never takes a lock. Mutation
/// (profiling merges) copies the current version, applies the change
/// under the shard lock, and republishes; replaced versions are retired
/// and reclaimed when the table is destroyed, so a concurrent reader can
/// keep dereferencing the version it loaded. The per-invocation counters
/// (Invocations, QuarantinedRuns) are plain atomics beside the published
/// pointer, keeping the whole hot path — lookup + count — lock-free.
///
//===----------------------------------------------------------------------===//

#ifndef ECAS_CORE_KERNELHISTORY_H
#define ECAS_CORE_KERNELHISTORY_H

#include "ecas/profile/OnlineProfiler.h"
#include "ecas/profile/WorkloadClass.h"
#include "ecas/support/HotPath.h"
#include "ecas/support/ThreadAnnotations.h"

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

namespace ecas {

/// What the runtime remembers about one kernel.
struct KernelRecord {
  SampleWeightedAlpha Alpha;
  WorkloadClass Class;
  /// Profiling measurements accumulated across every profiled invocation
  /// of this kernel; re-profiling refines rather than replaces.
  ProfileSample Sample;
  /// Set when the small-N fast path (Fig. 7 steps 6-10) pinned the
  /// kernel to CPU-alone execution.
  bool CpuOnly = false;
  /// True once profiling has observed enough iterations on *both*
  /// devices for the throughput estimates to be trustworthy. A kernel
  /// first profiled on an invocation barely above GPU_PROFILE_SIZE gives
  /// the CPU almost nothing to chew on; such an alpha is provisional and
  /// the next sufficiently large invocation re-profiles ([12]'s repeated
  /// profiling for kernels whose behaviour the runtime hasn't pinned
  /// down).
  bool Confident = false;
  unsigned Invocations = 0;
  /// Invocations of this kernel forced to CPU-alone because the GPU was
  /// quarantined at dispatch time. These do not touch Alpha — the
  /// learned ratio describes the healthy platform, and a recovered GPU
  /// resumes from it (refined by the post-recovery re-profile) rather
  /// than from quarantine-poisoned history.
  unsigned QuarantinedRuns = 0;
  /// P-state the joint (alpha, f) search chose for this kernel; 0 (full
  /// speed) for records learned before the DVFS axis existed, which is
  /// also what v-prior snapshots and journal records decode to.
  unsigned PState = 0;
};

/// The table G. Thread-safe; see the file comment for the sharding and
/// publication scheme.
class KernelHistory {
public:
  static constexpr unsigned NumShards = 16;

  KernelHistory() = default;
  ~KernelHistory();

  KernelHistory(const KernelHistory &) = delete;
  KernelHistory &operator=(const KernelHistory &) = delete;

  /// Lock-free fast path: copies the record for \p KernelId into \p Out.
  /// Returns false (leaving \p Out untouched) when never seen.
  ECAS_HOT bool lookup(uint64_t KernelId, KernelRecord &Out) const;

  /// Convenience form of lookup().
  std::optional<KernelRecord> find(uint64_t KernelId) const;

  /// Mutates the record (creating it on first use): \p Fn receives a
  /// private copy of the current record and the result is republished
  /// for lock-free readers. Runs under the shard lock, so concurrent
  /// updates of the same kernel serialize and additive merges
  /// (Sample.accumulate, Alpha.addSample) never lose a contribution.
  /// The counters in the copy (Invocations, QuarantinedRuns) are
  /// read-only context: changes \p Fn makes to them are discarded; use
  /// the bump*() calls, which are their only writers.
  void update(uint64_t KernelId,
              const std::function<void(KernelRecord &)> &Fn);

  /// Lock-free monotone counters, the per-invocation hot path. Both
  /// create the entry on first use (that slow path takes the shard lock
  /// once — the one mutex the hot-path analyzer whitelists, see
  /// tools/ecas_hotpath.py). \returns the post-increment value.
  ECAS_HOT unsigned bumpInvocations(uint64_t KernelId);
  ECAS_HOT unsigned bumpQuarantinedRuns(uint64_t KernelId);

  /// Consistent per-record copy of the whole table, sorted by kernel id
  /// (shards are visited under their locks; the table may keep moving
  /// between shards).
  std::vector<std::pair<uint64_t, KernelRecord>> entries() const;

  /// Replaces the table's contents with \p Entries (snapshot recovery).
  void restore(const std::vector<std::pair<uint64_t, KernelRecord>> &Entries);

  void clear();
  size_t size() const;

private:
  /// One published, immutable version of a record. Replaced versions
  /// stay on the Older chain until the table dies, so readers that
  /// loaded them keep a valid pointer (the table holds few kernels and
  /// republishes only on profiling merges, so the garbage is bounded by
  /// the profile count).
  struct Version {
    KernelRecord Rec;
    Version *Older = nullptr;
  };

  struct Entry {
    explicit Entry(uint64_t KeyIn) : Key(KeyIn) {}
    const uint64_t Key;
    std::atomic<Version *> Current{nullptr};
    std::atomic<uint32_t> Invocations{0};
    std::atomic<uint32_t> QuarantinedRuns{0};
    std::atomic<Entry *> Next{nullptr};
  };

  struct Shard {
    /// Insert-only list head; lock-free readers walk it under no lock,
    /// writers publish under Mutex (so Head is atomic, not guarded).
    std::atomic<Entry *> Head{nullptr};
    /// All 16 shard locks are one lock class in the acquired-before
    /// graph; no path may hold two shards at once (DESIGN.md §9).
    mutable AnnotatedMutex Mutex{"KernelHistory.Shard"};
  };

  static unsigned shardIndex(uint64_t KernelId);
  /// Lock-free find within a shard's list.
  static Entry *findEntry(const Shard &S, uint64_t KernelId);
  /// Finds or inserts; takes the shard lock only when inserting.
  Entry &obtainEntry(uint64_t KernelId);
  static void composeRecord(const Entry &E, const Version *V,
                            KernelRecord &Out);
  static void destroyChain(Entry *Head);

  Shard Shards[NumShards];
  std::atomic<size_t> Count{0};
  /// Entries unlinked by clear()/restore(), kept alive for concurrent
  /// readers and freed with the table. Leaf lock, never taken while a
  /// shard lock is held: clear() collects unlinked chains first and
  /// retires them after releasing the shard locks.
  AnnotatedMutex RetiredMutex{"KernelHistory.Retired"};
  std::vector<Entry *> RetiredChains ECAS_GUARDED_BY(RetiredMutex);
};

} // namespace ecas

#endif // ECAS_CORE_KERNELHISTORY_H
