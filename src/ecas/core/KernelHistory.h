//===-- ecas/core/KernelHistory.h - The global table G ---------*- C++ -*-===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fig. 7's global runtime table G mapping a kernel's identity (the CPU
/// function pointer in Concord; a stable kernel id here) to its learned
/// GPU offload ratio, accumulated across invocations with the
/// sample-weighted technique of [12].
///
//===----------------------------------------------------------------------===//

#ifndef ECAS_CORE_KERNELHISTORY_H
#define ECAS_CORE_KERNELHISTORY_H

#include "ecas/profile/OnlineProfiler.h"
#include "ecas/profile/WorkloadClass.h"

#include <cstdint>
#include <unordered_map>

namespace ecas {

/// What the runtime remembers about one kernel.
struct KernelRecord {
  SampleWeightedAlpha Alpha;
  WorkloadClass Class;
  /// Profiling measurements accumulated across every profiled invocation
  /// of this kernel; re-profiling refines rather than replaces.
  ProfileSample Sample;
  /// Set when the small-N fast path (Fig. 7 steps 6-10) pinned the
  /// kernel to CPU-alone execution.
  bool CpuOnly = false;
  /// True once profiling has observed enough iterations on *both*
  /// devices for the throughput estimates to be trustworthy. A kernel
  /// first profiled on an invocation barely above GPU_PROFILE_SIZE gives
  /// the CPU almost nothing to chew on; such an alpha is provisional and
  /// the next sufficiently large invocation re-profiles ([12]'s repeated
  /// profiling for kernels whose behaviour the runtime hasn't pinned
  /// down).
  bool Confident = false;
  unsigned Invocations = 0;
  /// Invocations of this kernel forced to CPU-alone because the GPU was
  /// quarantined at dispatch time. These do not touch Alpha — the
  /// learned ratio describes the healthy platform, and a recovered GPU
  /// resumes from it (refined by the post-recovery re-profile) rather
  /// than from quarantine-poisoned history.
  unsigned QuarantinedRuns = 0;
};

/// The table G. Not thread-safe; the GPU proxy thread owns it.
class KernelHistory {
public:
  /// Returns the record for \p KernelId, or nullptr when never seen.
  const KernelRecord *lookup(uint64_t KernelId) const;

  /// Returns (creating on first use) the mutable record.
  KernelRecord &obtain(uint64_t KernelId);

  void clear() { Records.clear(); }
  size_t size() const { return Records.size(); }

private:
  std::unordered_map<uint64_t, KernelRecord> Records;
};

} // namespace ecas

#endif // ECAS_CORE_KERNELHISTORY_H
