//===-- ecas/core/RequestContext.h - Multi-tenant request id ---*- C++ -*-===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Who is asking and how urgently. A RequestContext travels with every
/// scheduled invocation in a multi-tenant deployment: the tenant
/// identity namespaces the table-G kernel history (one tenant's
/// pathological kernels cannot poison another's learned alphas), the
/// SLA class selects the service queue lane and dequeue weight, and the
/// deadline budget bounds queue wait plus execution.
///
/// The SLA tiers follow the SLA0-2 convention of datacenter schedulers
/// (see SNIPPETS.md Snippet 1): SLA0 is latency-critical (web-style
/// requests), SLA1 is throughput-oriented (AI/crypto batches), SLA2 is
/// background/best-effort (HPC soak work). A default-constructed
/// context — anonymous tenant, SLA1, no deadline — schedules exactly
/// like the pre-service library, so single-tenant callers never notice
/// this type exists.
///
//===----------------------------------------------------------------------===//

#ifndef ECAS_CORE_REQUESTCONTEXT_H
#define ECAS_CORE_REQUESTCONTEXT_H

#include <cstdint>
#include <limits>

namespace ecas {

/// Service tiers, strictest first. The numeric values index per-class
/// arrays (queue lanes, dequeue weights, counters).
enum class SlaClass : unsigned {
  /// Latency-critical: must start quickly or not at all.
  Sla0 = 0,
  /// Throughput: wants to finish, tolerates queueing.
  Sla1 = 1,
  /// Background: runs whenever capacity is spare, must not starve.
  Sla2 = 2,
};

inline constexpr unsigned NumSlaClasses = 3;

/// Stable display name ("SLA0", "SLA1", "SLA2").
const char *slaClassName(SlaClass Sla);

/// Index form for per-class arrays; always < NumSlaClasses.
inline unsigned slaIndex(SlaClass Sla) { return static_cast<unsigned>(Sla); }

/// slaIndex's inverse; \p Index must be < NumSlaClasses.
SlaClass slaFromIndex(unsigned Index);

/// Identity and urgency of one scheduled request.
struct RequestContext {
  /// Tenant identity. 0 is the anonymous/default tenant, whose history
  /// keys are the raw kernel ids — bit-identical to single-tenant use.
  uint64_t TenantId = 0;
  SlaClass Sla = SlaClass::Sla1;
  /// Total budget in seconds for queue wait plus execution, measured
  /// from submission. Infinity (the default) means no deadline.
  double DeadlineSec = std::numeric_limits<double>::infinity();

  bool hasDeadline() const {
    return DeadlineSec < std::numeric_limits<double>::infinity();
  }
};

/// Folds \p TenantId into \p KernelId to form the table-G history key,
/// so each tenant learns against its own records. TenantId 0 returns
/// \p KernelId unchanged (legacy snapshots and single-tenant callers
/// keep their keys). The result is never 0 — table G rejects the null
/// kernel id.
uint64_t namespacedKernelKey(uint64_t TenantId, uint64_t KernelId);

} // namespace ecas

#endif // ECAS_CORE_REQUESTCONTEXT_H
