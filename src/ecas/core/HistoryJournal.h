//===-- ecas/core/HistoryJournal.h - Table-G write-ahead journal *- C++ -*-===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The crash-consistency layer for table G (DESIGN.md §13). Snapshots
/// alone lose everything since the last write; the journal closes that
/// window by appending one CRC-framed delta record per table-G merge,
/// group-committed off the hot path, so a kill -9 costs at most the
/// unflushed group-commit window.
///
/// File format (little-endian, see HistoryCodec.h):
///
///   header   magic "ECASJRNL" (8) + u32 version + u64 epoch +
///            u32 CRC-32 of bytes [8, 20)                       = 24 B
///   frame    u32 payload length + u32 CRC-32(payload) + payload
///   payload  u64 key; u32 invocations delta; u32 quarantined delta;
///            u8 flags (alpha-sample / cpu-only / became-confident /
///            class / pstate); u32 class index; f64 alpha value, f64
///            alpha weight; u32 pstate (v2+, absent in v1 payloads);
///            u16 sample count; then each ProfileSample delta as
///            9 f64 + 2 flag bytes
///
/// v2 widened the payload by the joint (alpha, f) decision's chosen
/// P-state. v1 journals still scan and replay (their deltas imply
/// P-state 0, full speed — exactly what a v1 build ran at), but the
/// append side refuses to extend a v1 file: recovery compacts it into
/// a snapshot and resets the journal to the current version first.
///
/// The epoch pairs a journal with its snapshot: snapshot(E) + replay of
/// journal(E) == the live table. Recovery compacts to snapshot(E+1) and
/// only then resets the journal to epoch E+1, so a crash between the
/// two leaves a *stale* journal (epoch < snapshot's) that the next
/// recovery skips — deltas are never applied twice.
///
/// Replay is order-exact: records whose effect does not commute (sample
/// accumulation, the confident transition that resets the alpha
/// accumulator, alpha samples, class) are enqueued inside the table-G
/// shard-locked merge closure, so journal order equals live merge order
/// per key; purely additive counter deltas may enqueue outside locks.
///
//===----------------------------------------------------------------------===//

#ifndef ECAS_CORE_HISTORYJOURNAL_H
#define ECAS_CORE_HISTORYJOURNAL_H

#include "ecas/core/KernelHistory.h"
#include "ecas/obs/Metrics.h"
#include "ecas/support/Error.h"
#include "ecas/support/ThreadAnnotations.h"

#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace ecas {

/// Current journal format version. v2 added the chosen P-state to the
/// delta payload; v1 files remain replayable (P-state 0).
inline constexpr uint32_t HistoryJournalVersion = 2;

/// Journal tunables, embedded in EasConfig::Journal and passed to
/// HistoryJournal::open().
struct JournalOptions {
  /// Journal file path. EasScheduler derives "<HistoryFile>.wal" when
  /// left empty.
  std::string Path;
  /// A batch is written (and fsynced) once it holds this many records…
  unsigned GroupCommitRecords = 32;
  /// …or this many bytes, whichever comes first. The unflushed window —
  /// the most a crash can lose — is bounded by both.
  size_t GroupCommitBytes = 64 * 1024;
  /// fsync each flushed batch. Off trades the durability statement down
  /// to "survives process death, not power loss".
  bool SyncOnFlush = true;
};

/// One table-G mutation, exactly as the merge path applied it. The
/// deltas are self-contained: replaying them in journal order onto the
/// snapshot they follow reproduces the live table bit-for-bit.
struct HistoryDeltaRecord {
  uint64_t Key = 0;
  /// bumpInvocations / bumpQuarantinedRuns deltas (commutative).
  uint32_t InvocationsDelta = 0;
  uint32_t QuarantinedDelta = 0;
  /// Profile-sample deltas, accumulated in order (order-sensitive).
  std::vector<ProfileSample> Samples;
  /// The merge crossed the confident threshold: set Confident and reset
  /// the alpha accumulator to empty *before* adding AlphaValue.
  bool BecameConfident = false;
  bool HasAlphaSample = false;
  double AlphaValue = 0.0;
  double AlphaWeight = 0.0;
  bool SetCpuOnly = false;
  bool HasClass = false;
  uint32_t ClassIndex = 0;
  /// The joint (alpha, f) search re-decided this kernel's P-state.
  bool HasPState = false;
  uint32_t PState = 0;

  bool empty() const {
    return InvocationsDelta == 0 && QuarantinedDelta == 0 &&
           Samples.empty() && !BecameConfident && !HasAlphaSample &&
           !SetCpuOnly && !HasClass && !HasPState;
  }
};

/// Applies one journaled delta to \p History through the same public
/// mutation API the live merge path uses.
void applyDeltaRecord(KernelHistory &History, const HistoryDeltaRecord &Rec);

/// Serializes a fresh journal header at \p Epoch (what a reset journal
/// file contains).
std::string encodeJournalHeader(uint64_t Epoch);

/// Appends one CRC-framed record to \p Out.
void encodeDeltaFrame(std::string &Out, const HistoryDeltaRecord &Rec);

/// What a full parse of a journal's bytes found. Parsing stops at the
/// first torn or corrupt frame — everything before it is trustworthy,
/// everything at and after it is discarded (TruncatedRecords counts the
/// frame at the tear; bytes beyond it cannot be framed reliably).
struct JournalScan {
  /// Header parsed successfully; Epoch and Records are meaningful.
  bool HeaderValid = false;
  uint64_t Epoch = 0;
  /// Format version from the header (the append side refuses to extend
  /// anything but the current version; the scanner reads them all).
  uint32_t Version = 0;
  std::vector<HistoryDeltaRecord> Records;
  /// Parsing stopped before the end of the bytes.
  bool Torn = false;
  size_t TruncatedRecords = 0;
  /// Bytes of valid prefix (header + intact frames); a repair truncates
  /// the file to this length.
  size_t ValidBytes = 0;
  /// Why parsing stopped (success at a clean end-of-file).
  Status Error = Status::success();
};

/// Pure parser (no IO), shared by recovery and the corruption-matrix
/// fuzz: any byte mutation must yield a truncated scan, never a crash.
JournalScan scanJournal(std::string_view Bytes);

/// How a recovery found the on-disk state.
enum class RecoveryOutcome {
  /// Snapshot loaded, journal empty or already compacted: nothing lost,
  /// nothing to replay.
  Clean,
  /// Journal records were replayed on top of the snapshot.
  Replayed,
  /// Data was lost: a torn/corrupt journal tail was truncated, or the
  /// snapshot itself was unreadable and the table rebuilt from less.
  Truncated,
  /// No prior state existed (first boot).
  Cold,
};

const char *recoveryOutcomeName(RecoveryOutcome Outcome);

/// Everything recoverKernelHistory() did, for logs and metrics.
struct RecoveryReport {
  RecoveryOutcome Outcome = RecoveryOutcome::Cold;
  size_t SnapshotRecords = 0;
  size_t ReplayedRecords = 0;
  size_t TruncatedRecords = 0;
  /// The journal's epoch predated the snapshot's (a crash landed between
  /// compaction's snapshot write and journal reset); its records were
  /// already in the snapshot and were skipped, not replayed.
  bool StaleJournalSkipped = false;
  /// Epoch the table is at after recovery (the compacted snapshot's).
  uint64_t Epoch = 0;
  /// Host seconds the whole recovery took.
  double Seconds = 0.0;
  Status SnapshotStatus = Status::success();
  Status JournalStatus = Status::success();
  Status CompactStatus = Status::success();
};

/// Recovers table G from \p SnapshotPath + \p JournalPath: load the
/// newest valid snapshot, replay the journal (skipping a stale one,
/// truncating at the first torn record), then — when \p Compact — write
/// a fresh snapshot at the next epoch and reset the journal to it.
/// Never fails hard: the worst corruption degrades to a cold table with
/// the statuses saying why.
RecoveryReport recoverKernelHistory(KernelHistory &History,
                                    const std::string &SnapshotPath,
                                    const std::string &JournalPath,
                                    bool Compact = true);

/// The append side: one open journal file, shared by every thread that
/// merges into table G. enqueue() is cheap (buffer append under a leaf
/// mutex, safe inside the shard-locked merge closure); the batch hits
/// the disk on maybeFlush()/flush(), serialized by a separate IO mutex
/// so group commit never blocks the enqueue path behind an fsync.
class HistoryJournal {
public:
  /// Opens \p Options.Path for appending at \p Epoch, creating a fresh
  /// header when the file is missing or empty. An existing journal must
  /// carry \p Epoch (recovery just reset it there) — any mismatch or
  /// corruption is an error; a torn-but-matching tail is truncated to
  /// its valid prefix before appending resumes.
  static ErrorOr<std::unique_ptr<HistoryJournal>>
  open(JournalOptions Options, uint64_t Epoch);

  /// Best-effort final flush (fsynced), then closes the file.
  ~HistoryJournal();

  HistoryJournal(const HistoryJournal &) = delete;
  HistoryJournal &operator=(const HistoryJournal &) = delete;

  /// Optional counters bumped as records are enqueued (lock-free adds;
  /// safe on the merge path).
  struct MetricHooks {
    obs::Counter *Appends = nullptr;
    obs::Counter *Bytes = nullptr;
  };
  void setMetrics(MetricHooks Hooks) { Metrics = Hooks; }

  uint64_t epoch() const { return Epoch.load(std::memory_order_acquire); }

  /// Buffers one delta record. Thread-safe; does no IO, so it is legal
  /// (and, for order-sensitive records, required) inside the table-G
  /// merge closure.
  void enqueue(const HistoryDeltaRecord &Rec);

  /// Flushes when a group-commit threshold is crossed; returns
  /// immediately otherwise. Call after enqueue(), outside shard locks.
  Status maybeFlush();

  /// Unconditionally writes and (per SyncOnFlush) fsyncs the pending
  /// batch.
  Status flush();

  /// Truncates the journal to a fresh header at \p NewEpoch (compaction
  /// committed everything up to here into the snapshot). Pending
  /// unflushed records are dropped — the caller flushes first.
  Status reset(uint64_t NewEpoch);

  struct Stats {
    uint64_t Appends = 0;
    uint64_t AppendedBytes = 0;
    uint64_t Flushes = 0;
  };
  Stats stats() const;

private:
  HistoryJournal(JournalOptions OptionsIn, uint64_t EpochIn)
      : Options(std::move(OptionsIn)), Epoch(EpochIn) {}

  Status flushLocked() ECAS_REQUIRES(IoMutex);

  JournalOptions Options;
  std::atomic<uint64_t> Epoch;
  MetricHooks Metrics;

  /// Enqueue side. Leaf lock: taken inside KernelHistory shard locks
  /// and inside IoMutex, never the other way around.
  mutable AnnotatedMutex BufferMutex{"HistoryJournal.Buffer"};
  std::string Pending ECAS_GUARDED_BY(BufferMutex);
  unsigned PendingRecords ECAS_GUARDED_BY(BufferMutex) = 0;

  /// IO side; acquired before BufferMutex (to swap the batch out).
  mutable AnnotatedMutex IoMutex{"HistoryJournal.Io"};
  int Fd ECAS_GUARDED_BY(IoMutex) = -1;

  std::atomic<uint64_t> AppendCount{0};
  std::atomic<uint64_t> AppendedBytes{0};
  std::atomic<uint64_t> FlushCount{0};
};

} // namespace ecas

#endif // ECAS_CORE_HISTORYJOURNAL_H
