//===-- ecas/core/RequestContext.cpp - Multi-tenant request id ------------===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ecas/core/RequestContext.h"

#include "ecas/support/Assert.h"
#include "ecas/support/Random.h"

using namespace ecas;

const char *ecas::slaClassName(SlaClass Sla) {
  switch (Sla) {
  case SlaClass::Sla0:
    return "SLA0";
  case SlaClass::Sla1:
    return "SLA1";
  case SlaClass::Sla2:
    return "SLA2";
  }
  ECAS_UNREACHABLE("unknown SLA class");
}

SlaClass ecas::slaFromIndex(unsigned Index) {
  ECAS_CHECK(Index < NumSlaClasses, "SLA index out of range");
  return static_cast<SlaClass>(Index);
}

uint64_t ecas::namespacedKernelKey(uint64_t TenantId, uint64_t KernelId) {
  if (TenantId == 0)
    return KernelId;
  // Mix the tenant id through SplitMix64 before XORing so that adjacent
  // tenant ids (1, 2, 3...) land in unrelated parts of the key space and
  // a tenant cannot trivially craft a kernel id that collides with
  // another tenant's records.
  SplitMix64 Mixer(TenantId);
  uint64_t Key = Mixer.next() ^ KernelId;
  // Table G reserves key 0 for "no kernel"; remix rather than hand it out.
  if (Key == 0)
    Key = Mixer.next() | 1;
  return Key;
}
