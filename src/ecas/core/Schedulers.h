//===-- ecas/core/Schedulers.h - Baseline scheduling strategies *- C++ -*-===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The invocation-trace abstraction shared by every strategy, and the
/// fixed-split execution primitive the baselines (CPU-alone, GPU-alone,
/// Oracle/PERF sweeps) are built from. A workload is a sequence of
/// kernel invocations — Table 1's "Num. invocations" column — each a
/// data-parallel iteration space to split between the devices.
///
//===----------------------------------------------------------------------===//

#ifndef ECAS_CORE_SCHEDULERS_H
#define ECAS_CORE_SCHEDULERS_H

#include "ecas/device/KernelDesc.h"
#include "ecas/fault/GpuHealth.h"
#include "ecas/sim/SimProcessor.h"

#include <vector>

namespace ecas {

/// One data-parallel kernel launch.
struct KernelInvocation {
  KernelDesc Kernel;
  double Iterations = 0.0;
};

/// A workload as the runtime sees it: an ordered sequence of launches.
using InvocationTrace = std::vector<KernelInvocation>;

/// Total iterations across a trace.
double traceIterations(const InvocationTrace &Trace);

/// Executes one invocation at fixed offload ratio \p Alpha (Fig. 7 steps
/// 23-25): Alpha*N iterations enqueued on the GPU, the rest on the CPU,
/// then wait for both. \returns elapsed virtual seconds.
double runPartitioned(SimProcessor &Proc, const KernelDesc &Kernel,
                      double Iterations, double Alpha);

/// What one fault-tolerant partitioned execution did and observed.
struct PartitionOutcome {
  double Seconds = 0.0;
  /// The split the caller asked for.
  double AlphaRequested = 0.0;
  /// The fraction of iterations the GPU actually completed: lower than
  /// requested when the launch was abandoned, the device was
  /// quarantined, or a hang stranded part of the GPU share back to the
  /// CPU.
  double AlphaEffective = 0.0;
  /// Failed enqueue attempts that were retried with backoff.
  unsigned LaunchRetries = 0;
  /// Retry budget exhausted; the GPU share ran on the CPU instead.
  bool LaunchAbandoned = false;
  /// The watchdog declared the dispatch hung and stranded the GPU's
  /// remaining iterations to the CPU.
  bool HangDetected = false;
  /// The GPU was skipped up front because \p Health had it quarantined.
  bool QuarantineSkipped = false;
};

/// Fault-tolerant variant of runPartitioned(), the execution primitive
/// behind every scheme's graceful degradation: consults \p Health before
/// touching the GPU, retries failed launches with exponential backoff up
/// to the configured budget, watches for hangs by polling for iteration
/// progress, and strands any unrecoverable GPU share back onto the CPU
/// so the invocation always completes. A clean GPU completion is
/// reported to \p Health (from the Probing state that is the recovery
/// that re-admits the device). With no fault injector on \p Proc and a
/// pristine monitor this is bit-identical to runPartitioned().
PartitionOutcome runPartitionedResilient(SimProcessor &Proc,
                                         GpuHealthMonitor &Health,
                                         const KernelDesc &Kernel,
                                         double Iterations, double Alpha);

} // namespace ecas

#endif // ECAS_CORE_SCHEDULERS_H
