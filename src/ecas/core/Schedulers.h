//===-- ecas/core/Schedulers.h - Baseline scheduling strategies *- C++ -*-===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The invocation-trace abstraction shared by every strategy, and the
/// fixed-split execution primitive the baselines (CPU-alone, GPU-alone,
/// Oracle/PERF sweeps) are built from. A workload is a sequence of
/// kernel invocations — Table 1's "Num. invocations" column — each a
/// data-parallel iteration space to split between the devices.
///
//===----------------------------------------------------------------------===//

#ifndef ECAS_CORE_SCHEDULERS_H
#define ECAS_CORE_SCHEDULERS_H

#include "ecas/device/KernelDesc.h"
#include "ecas/sim/SimProcessor.h"

#include <vector>

namespace ecas {

/// One data-parallel kernel launch.
struct KernelInvocation {
  KernelDesc Kernel;
  double Iterations = 0.0;
};

/// A workload as the runtime sees it: an ordered sequence of launches.
using InvocationTrace = std::vector<KernelInvocation>;

/// Total iterations across a trace.
double traceIterations(const InvocationTrace &Trace);

/// Executes one invocation at fixed offload ratio \p Alpha (Fig. 7 steps
/// 23-25): Alpha*N iterations enqueued on the GPU, the rest on the CPU,
/// then wait for both. \returns elapsed virtual seconds.
double runPartitioned(SimProcessor &Proc, const KernelDesc &Kernel,
                      double Iterations, double Alpha);

} // namespace ecas

#endif // ECAS_CORE_SCHEDULERS_H
