//===-- ecas/core/OperatingPoint.h - Joint (alpha, f) decisions *- C++ -*-===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The operating-point decision core: where the paper fixes the clock
/// and searches only the GPU offload ratio alpha, this API searches the
/// joint (alpha, P-state) grid — ROADMAP item 2's DVFS axis. An
/// OperatingPoint names one cell of that grid; chooseOperatingPoint
/// minimizes a policy-shaped objective over every alpha at every
/// supplied P-state view and returns the winning Decision.
///
/// Each PStateView is the black-box knowledge the scheduler has about
/// one P-state: the power characterization P(alpha) measured at that
/// state's clocks, plus the CPU/GPU frequency ratios relative to the
/// profiled (full-speed) state so the time model can be rescaled. The
/// caller builds the views into a fixed-size stack array — the search
/// itself allocates nothing and stays on the ECAS_HOT path.
///
/// chooseAlpha/AlphaChoice (core/AlphaSearch.h) remain as thin
/// delegating wrappers over the single-state call, the same no-flag-day
/// migration the PR-4 run(SchemeKind, RunOptions) redesign used.
///
//===----------------------------------------------------------------------===//

#ifndef ECAS_CORE_OPERATINGPOINT_H
#define ECAS_CORE_OPERATINGPOINT_H

#include "ecas/core/Metric.h"
#include "ecas/core/TimeModel.h"
#include "ecas/power/PowerCurve.h"
#include "ecas/support/HotPath.h"

#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace ecas {

/// Upper bound on P-states a decision considers; matches
/// PlatformSpec::MaxPStates so per-state working arrays can live on the
/// stack (EasScheduler.cpp static_asserts the two stay equal).
inline constexpr unsigned kMaxPStates = 8;

/// One cell of the joint decision grid: the GPU offload ratio and the
/// processor P-state index (0 = full speed) the work runs at.
struct OperatingPoint {
  double Alpha = 0.0;
  unsigned PState = 0;
};

/// How the search shapes its objective (PAPERS.md "Racing to Idle").
enum class SchedulingPolicy {
  /// Minimize the configured Metric directly (the paper's behaviour).
  MinimizeMetric,
  /// Race-to-idle: minimize the energy above the idle floor,
  /// (P - P_idle) * T. The floor is paid whether the kernel runs or
  /// not, so a state only wins by cutting the increment faster than it
  /// stretches the run; when above-floor power is flat across states
  /// this degenerates to minimizing time — racing at full speed.
  RaceToIdle,
  /// Pace-to-deadline: minimize energy among points meeting the
  /// deadline; when no point is feasible, pick the least-late one.
  PaceToDeadline,
};

/// Stable lowercase name, e.g. "race-to-idle".
const char *schedulingPolicyName(SchedulingPolicy Policy);

/// Inverse of schedulingPolicyName; nullopt for unknown names.
std::optional<SchedulingPolicy>
schedulingPolicyByName(const std::string &Name);

/// The scheduler's black-box view of one P-state: the power curve
/// characterized at that state's clocks and the frequency ratios that
/// rescale the profiled (state-0) throughputs.
struct PStateView {
  const PowerCurve *Curve = nullptr;
  /// f_cpu(state) / f_cpu(state 0); 1.0 means the profiled clock.
  double CpuFreqScale = 1.0;
  /// f_gpu(state) / f_gpu(state 0).
  double GpuFreqScale = 1.0;
};

/// Joint-search configuration; the alpha-axis fields mirror
/// AlphaSearchConfig so the delegating wrapper is a field-for-field
/// forward.
struct OperatingPointSearchConfig {
  /// Alpha grid increment over [0, 1].
  double Step = 0.1;
  /// Golden-section refinement around the best alpha cell (per state).
  bool Refine = false;
  double RefineTolerance = 1e-3;
  SchedulingPolicy Policy = SchedulingPolicy::MinimizeMetric;
  /// PaceToDeadline: the latest acceptable predicted completion, in
  /// seconds. Ignored (and the policy degenerates to energy) when 0.
  double DeadlineSeconds = 0.0;
  /// RaceToIdle: the package idle floor subtracted from P(alpha).
  double IdleWatts = 0.0;
  /// Fraction of execution that does not speed up with the clock
  /// (memory-bound share); feeds TimeModel::scaledTo.
  double MemBoundFraction = 0.0;
  /// When non-null, receives every (alpha, objective) point evaluated,
  /// in evaluation order across states. Observability only.
  std::vector<std::pair<double, double>> *GridOut = nullptr;
};

/// The chosen operating point and its predicted consequences.
struct Decision {
  OperatingPoint Point;
  /// Policy-shaped objective value at the chosen point.
  double PredictedMetric = 0.0;
  double PredictedSeconds = 0.0;
  double PredictedWatts = 0.0;
  /// Objective evaluations summed over all states searched.
  unsigned Evaluations = 0;
};

/// Minimizes the policy objective over alpha in [0, 1] at each of the
/// \p NumStates views in \p Views (index = P-state). Ties between
/// states keep the lowest index, so with identical views the full-speed
/// state wins deterministically. With one identity-scale view this is
/// arithmetically identical to the legacy chooseAlpha search. Runs
/// every profiling repetition — hot-path root, allocation-free.
ECAS_HOT Decision chooseOperatingPoint(
    const TimeModel &Model, const PStateView *Views, unsigned NumStates,
    const Metric &Objective, double Iterations,
    const OperatingPointSearchConfig &Config = {});

} // namespace ecas

#endif // ECAS_CORE_OPERATINGPOINT_H
