//===-- ecas/core/Metric.cpp - Energy-related objectives ------------------===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ecas/core/Metric.h"

#include "ecas/support/Assert.h"

using namespace ecas;

Metric::Metric(std::string NameIn, Fn BodyIn)
    : Name(std::move(NameIn)), Body(std::move(BodyIn)) {
  ECAS_CHECK(static_cast<bool>(Body), "metric requires a callable body");
}

Metric Metric::energy() {
  return Metric("energy", [](double Watts, double Seconds) {
    return Watts * Seconds;
  });
}

Metric Metric::edp() {
  return Metric("edp", [](double Watts, double Seconds) {
    return Watts * Seconds * Seconds;
  });
}

Metric Metric::ed2p() {
  return Metric("ed2p", [](double Watts, double Seconds) {
    return Watts * Seconds * Seconds * Seconds;
  });
}

Metric Metric::custom(std::string Name, Fn Body) {
  return Metric(std::move(Name), std::move(Body));
}

double Metric::evaluate(double Watts, double Seconds) const {
  // Invoking the stored std::function does not allocate; construction
  // cost was paid when the Metric was built (off the hot path).
  return Body(Watts, Seconds); // ecas-hotpath: allow(extern-call)
}

double Metric::fromMeasurement(double Joules, double Seconds) const {
  ECAS_CHECK(Seconds > 0.0, "measurement duration must be positive");
  return evaluate(Joules / Seconds, Seconds);
}
