//===-- ecas/core/Metric.cpp - Energy-related objectives ------------------===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ecas/core/Metric.h"

#include "ecas/support/Assert.h"

using namespace ecas;

Metric::Metric(std::string NameIn, Fn BodyIn)
    : Name(std::move(NameIn)), Kind(Builtin::Custom), Body(std::move(BodyIn)) {
  ECAS_CHECK(static_cast<bool>(Body), "metric requires a callable body");
}

Metric::Metric(std::string NameIn, Builtin KindIn)
    : Name(std::move(NameIn)), Kind(KindIn) {
  ECAS_CHECK(Kind != Builtin::Custom, "custom metrics require a body");
}

Metric Metric::energy() { return Metric("energy", Builtin::Energy); }

Metric Metric::edp() { return Metric("edp", Builtin::Edp); }

Metric Metric::ed2p() { return Metric("ed2p", Builtin::Ed2p); }

Metric Metric::custom(std::string Name, Fn Body) {
  return Metric(std::move(Name), std::move(Body));
}

double Metric::evaluate(double Watts, double Seconds) const {
  switch (Kind) {
  case Builtin::Energy:
    return Watts * Seconds;
  case Builtin::Edp:
    return Watts * Seconds * Seconds;
  case Builtin::Ed2p:
    return Watts * Seconds * Seconds * Seconds;
  case Builtin::Custom:
    break;
  }
  // Invoking the stored std::function does not allocate; construction
  // cost was paid when the Metric was built (off the hot path).
  return Body(Watts, Seconds); // ecas-hotpath: allow(extern-call)
}

double Metric::fromMeasurement(double Joules, double Seconds) const {
  ECAS_CHECK(Seconds > 0.0, "measurement duration must be positive");
  return evaluate(Joules / Seconds, Seconds);
}
