//===-- ecas/core/EasScheduler.cpp - The EAS algorithm (Fig. 7) -----------===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ecas/core/EasScheduler.h"

#include "ecas/core/HistorySnapshot.h"
#include "ecas/core/Schedulers.h"
#include "ecas/core/TimeModel.h"
#include "ecas/hw/PlatformSpec.h"
#include "ecas/obs/MetricNames.h"
#include "ecas/support/Assert.h"
#include "ecas/support/Format.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <vector>

using namespace ecas;

// The P-state ordinal flows from the platform table through the power
// family into the decision core; one table size bounds all three.
static_assert(kMaxPStates == PlatformSpec::MaxPStates,
              "decision-core and platform P-state tables disagree");
static_assert(kMaxPStates == PowerCurveFamily::MaxPStates,
              "decision-core and power-family P-state tables disagree");

Status EasConfig::validate() const {
  auto Invalid = [](std::string Message) {
    return Status::error(ErrCode::InvalidArgument, std::move(Message));
  };
  if (!(AlphaStep > 0.0 && AlphaStep <= 1.0))
    return Invalid(formatString("alpha step %g outside (0, 1]", AlphaStep));
  if (!(ProfileFraction > 0.0 && ProfileFraction <= 1.0))
    return Invalid(
        formatString("profile fraction %g outside (0, 1]", ProfileFraction));
  if (MinProfileIters < 0.0)
    return Invalid(formatString("negative minimum profile iterations %g",
                                MinProfileIters));
  if (GpuProfileSize < 0.0)
    return Invalid(
        formatString("negative GPU profile size %g", GpuProfileSize));
  if (Health.MaxLaunchRetries == 0)
    return Invalid("zero-capacity launch-retry budget");
  if (!(Health.WatchdogPollSec > 0.0))
    return Invalid(formatString("non-positive watchdog poll interval %g",
                                Health.WatchdogPollSec));
  if (!(Health.InitialQuarantineSec > 0.0))
    return Invalid(formatString("non-positive quarantine backoff %g",
                                Health.InitialQuarantineSec));
  if (Health.QuarantineBackoffMultiplier < 1.0)
    return Invalid(formatString("shrinking quarantine backoff multiplier %g",
                                Health.QuarantineBackoffMultiplier));
  if (Health.RetryBackoffMultiplier < 1.0)
    return Invalid(formatString("shrinking retry backoff multiplier %g",
                                Health.RetryBackoffMultiplier));
  if (Policy == SchedulingPolicy::PaceToDeadline &&
      (!std::isfinite(DeadlineSeconds) || DeadlineSeconds <= 0.0))
    return Invalid(formatString(
        "pace-to-deadline requires a positive finite deadline, got %g",
        DeadlineSeconds));
  if (!std::isfinite(IdleWatts) || IdleWatts < 0.0)
    return Invalid(formatString("negative or non-finite idle watts %g",
                                IdleWatts));
  if (Journal.Enabled) {
    if (HistoryFile.empty())
      return Invalid("journaling requires a history file (the journal is "
                     "the delta against a snapshot; alone it is neither)");
    if (Journal.GroupCommitRecords == 0)
      return Invalid("zero group-commit record threshold (1 means "
                     "per-record commit)");
    if (Journal.GroupCommitBytes == 0)
      return Invalid("zero group-commit byte threshold");
  }
  return Status::success();
}

double EasScheduler::InvocationOutcome::timeRelError() const {
  return std::abs(PredictedSeconds - MeasuredSeconds) / MeasuredSeconds;
}

double EasScheduler::InvocationOutcome::energyRelError() const {
  return std::abs(PredictedWatts * PredictedSeconds - MeasuredJoules) /
         MeasuredJoules;
}

EasScheduler::EasScheduler(const PowerCurveSet &CurvesIn, Metric ObjectiveIn,
                           EasConfig ConfigIn)
    : EasScheduler(PowerCurveFamily::fromSingle(CurvesIn),
                   std::move(ObjectiveIn), std::move(ConfigIn)) {}

EasScheduler::EasScheduler(PowerCurveFamily CurvesIn, Metric ObjectiveIn,
                           EasConfig ConfigIn)
    : Curves(std::move(CurvesIn)), Objective(std::move(ObjectiveIn)),
      Config(std::move(ConfigIn)), Monitor(Config.Health) {
  ECAS_CHECK(Curves.complete(),
             "EAS requires a complete 8-category power characterization "
             "for every P-state");
  // Misconfiguration is a usage error, not an environment failure:
  // callers with untrusted configs validate() first.
  if (Status Valid = Config.validate(); !Valid.ok())
    reportFatalError(Valid.toString().c_str(), __FILE__, __LINE__);
  Monitor.setTrace(Config.Trace);
  registerInstruments();
  initDurability();
}

void EasScheduler::initDurability() {
  if (!Config.Journal.Enabled) {
    if (Config.HistoryFile.empty())
      return;
    ErrorOr<size_t> Restored = loadKernelHistory(History, Config.HistoryFile);
    if (Restored)
      RestoredRecords = *Restored;
    else
      RestoreStatus = Restored.status();
    return;
  }

  // Journal-aware recovery: newest valid snapshot + replay, compacted
  // to a fresh epoch before the journal reopens for appending.
  obs::ScopedSpan RecoverySpan(Config.Trace, "eas", "recovery");
  Recovery =
      recoverKernelHistory(History, Config.HistoryFile, journalPath());
  RestoredRecords = Recovery.SnapshotRecords + Recovery.ReplayedRecords;
  if (!Recovery.SnapshotStatus.ok())
    RestoreStatus = Recovery.SnapshotStatus;
  if (Config.Trace)
    RecoverySpan.setEndDetail(formatString(
        "outcome=%s snapshot=%zu replayed=%zu truncated=%zu epoch=%llu",
        recoveryOutcomeName(Recovery.Outcome), Recovery.SnapshotRecords,
        Recovery.ReplayedRecords, Recovery.TruncatedRecords,
        static_cast<unsigned long long>(Recovery.Epoch)));
  if (Ins.ReplayedRecords && Recovery.ReplayedRecords)
    Ins.ReplayedRecords->add(Recovery.ReplayedRecords);
  if (Ins.TruncatedRecords && Recovery.TruncatedRecords)
    Ins.TruncatedRecords->add(Recovery.TruncatedRecords);
  if (Ins.RecoverySecondsGauge)
    Ins.RecoverySecondsGauge->set(Recovery.Seconds);
  if (obs::Counter *Outcome =
          Ins.RecoveryOutcomes[static_cast<unsigned>(Recovery.Outcome)])
    Outcome->add();

  JournalOptions Opts;
  Opts.Path = journalPath();
  Opts.GroupCommitRecords = Config.Journal.GroupCommitRecords;
  Opts.GroupCommitBytes = Config.Journal.GroupCommitBytes;
  Opts.SyncOnFlush = Config.Journal.SyncOnFlush;
  ErrorOr<std::unique_ptr<HistoryJournal>> Opened =
      HistoryJournal::open(std::move(Opts), Recovery.Epoch);
  if (!Opened) {
    // Snapshot-only mode: scheduling is unaffected, durability degrades
    // to what pre-journal builds offered, journalStatus() says why.
    noteJournalFailure(Opened.status());
    return;
  }
  Journal = std::move(*Opened);
  HistoryJournal::MetricHooks Hooks;
  Hooks.Appends = Ins.JournalAppends;
  Hooks.Bytes = Ins.JournalBytes;
  Journal->setMetrics(Hooks);
}

std::string EasScheduler::journalPath() const {
  if (!Config.Journal.Enabled)
    return {};
  if (!Config.Journal.File.empty())
    return Config.Journal.File;
  return Config.HistoryFile + ".wal";
}

Status EasScheduler::journalStatus() const {
  LockGuard Lock(JournalStatusMutex);
  return JournalFailure;
}

void EasScheduler::noteJournalFailure(const Status &S) {
  // Error-path bookkeeping behind a leaf status mutex; reached from the
  // hot path only when an (opt-in) journal commit fails.
  LockGuard Lock(JournalStatusMutex); // ecas-hotpath: allow(lock)
  if (JournalFailure.ok())
    JournalFailure = S;
}

void EasScheduler::journalRecord(const HistoryDeltaRecord &Rec) {
  if (Journal)
    Journal->enqueue(Rec);
}

void EasScheduler::journalCommit() {
  if (!Journal)
    return;
  if (Status S = Journal->maybeFlush(); !S.ok())
    noteJournalFailure(S);
}

Status EasScheduler::flushJournal() {
  if (!Journal)
    return Status::success();
  Status S = Journal->flush();
  if (!S.ok())
    noteJournalFailure(S);
  return S;
}

EasScheduler::~EasScheduler() { shutdown(); }

void EasScheduler::registerInstruments() {
  obs::MetricsRegistry *M = Config.Metrics;
  if (!M) {
    // The flight recorder does not need a registry: wire the health
    // monitor's transition instants into the ring even when metrics are
    // off, so a crash bundle still carries the hang/quarantine timeline.
    if (Config.Flight) {
      GpuHealthMonitor::MetricHooks Hooks;
      Hooks.Flight = Config.Flight;
      Monitor.setMetrics(Hooks);
    }
    return;
  }
  // Rel errors are ratios spanning "model is exact" (1e-4) to "model is
  // off by an order of magnitude"; log buckets keep both ends resolved.
  const std::vector<double> RelErrBuckets = obs::logBuckets(1e-4, 2.0, 18);
  // A single-state family keeps the legacy label sets (no pstate label),
  // so pre-DVFS dashboards and the MetricsTest goldens never change; a
  // real family fans each series out by the chosen P-state.
  unsigned K = std::min(Curves.numPStates(), kMaxPStates);
  for (unsigned I = 0; I != WorkloadClass::NumClasses; ++I) {
    for (unsigned S = 0; S != K; ++S) {
      obs::MetricLabels ByClass{{"class", WorkloadClass::fromIndex(I).name()}};
      if (K > 1)
        ByClass.emplace_back("pstate", formatString("%u", S));
      Ins.TimeRelError[I][S] = &M->histogram(
          obs::names::ModelTimeRelError, RelErrBuckets, ByClass,
          "Relative error of the analytical T(alpha) prediction against the "
          "measured dispatch time");
      Ins.EnergyRelError[I][S] = &M->histogram(
          obs::names::ModelEnergyRelError, RelErrBuckets, ByClass,
          "Relative error of the predicted dispatch energy P(alpha)*T(alpha) "
          "against the measured joules");
    }
  }
  for (unsigned S = 0; S != K; ++S) {
    obs::MetricLabels ByState;
    if (K > 1)
      ByState.emplace_back("pstate", formatString("%u", S));
    Ins.AlphaChosen[S] = &M->histogram(
        obs::names::AlphaChosen, obs::linearBuckets(0.0, 0.05, 20), ByState,
        "GPU offload ratio used by completed invocations");
    Ins.PStateResidency[S] = &M->gauge(
        obs::names::PStateResidencySeconds, ByState,
        "Cumulative virtual seconds of completed work in this P-state");
  }
  Ins.AlphaSearchEvals = &M->histogram(
      obs::names::AlphaSearchEvals, obs::linearBuckets(0.0, 8.0, 16), {},
      "Objective evaluations spent in one invocation's alpha searches");
  Ins.ProfileOverhead = &M->histogram(
      obs::names::ProfileOverheadFraction, obs::linearBuckets(0.0, 0.05, 20),
      {}, "Fraction of a profiled invocation spent profiling");
  Ins.InvocationSeconds =
      &M->histogram(obs::names::InvocationSeconds,
                    obs::logBuckets(1e-5, 4.0, 16), {},
                    "Virtual seconds per completed invocation");
  Ins.ProfileRepSeconds =
      &M->histogram(obs::names::ProfileRepSeconds,
                    obs::logBuckets(1e-6, 4.0, 16), {},
                    "Virtual seconds per online-profiling repetition");
  Ins.Invocations = &M->counter(obs::names::InvocationsTotal, {},
                                "Invocations admitted (including cancelled)");
  Ins.TableHits = &M->counter(obs::names::TableHitsTotal, {},
                              "Invocations served from a table-G hit");
  Ins.TableMisses = &M->counter(obs::names::TableMissesTotal, {},
                                "Invocations that had to profile");
  Ins.CpuOnly = &M->counter(obs::names::CpuOnlyTotal, {},
                            "Invocations on a CPU-only fast path");
  Ins.Cancelled = &M->counter(obs::names::CancelledTotal, {},
                              "Invocations cut short by a token");
  Ins.Rejected = &M->counter(obs::names::RejectedTotal, {},
                             "Invocations bounced by the admission gate");
  Ins.ProfileReps = &M->counter(obs::names::ProfileRepsTotal, {},
                                "Online-profiling repetitions performed");
  Ins.LaunchRetries = &M->counter(obs::names::LaunchRetriesTotal, {},
                                  "GPU enqueue attempts retried");
  Ins.Readmissions =
      &M->counter(obs::names::ReadmissionsTotal, {},
                  "Recovered-GPU re-admissions that forced a re-profile");
  Ins.QuarantinedRuns =
      &M->counter(obs::names::QuarantinedRunsTotal, {},
                  "Invocations pinned to the CPU by an active quarantine");
  Ins.DecisionsLogged = &M->counter(obs::names::DecisionsLoggedTotal, {},
                                    "Audit records appended");
  Ins.ShutdownDrain =
      &M->gauge(obs::names::ShutdownDrainSeconds, {},
                "Host seconds the last shutdown spent draining");
  Ins.JournalAppends =
      &M->counter(obs::names::HistoryJournalAppendsTotal, {},
                  "Table-G delta records appended to the write-ahead journal");
  Ins.JournalBytes =
      &M->counter(obs::names::HistoryJournalBytesTotal, {},
                  "Bytes of framed records appended to the journal");
  Ins.ReplayedRecords =
      &M->counter(obs::names::HistoryReplayedRecordsTotal, {},
                  "Journal records replayed onto the snapshot at recovery");
  Ins.TruncatedRecords =
      &M->counter(obs::names::HistoryTruncatedRecordsTotal, {},
                  "Torn or corrupt journal records truncated at recovery");
  Ins.RecoverySecondsGauge =
      &M->gauge(obs::names::RecoverySeconds, {},
                "Host seconds the constructor's table-G recovery took");
  for (unsigned I = 0; I != 4; ++I)
    Ins.RecoveryOutcomes[I] = &M->counter(
        obs::names::HistoryRecoveryOutcome,
        {{"outcome", recoveryOutcomeName(static_cast<RecoveryOutcome>(I))}},
        "Recoveries by how they found the on-disk state");
  GpuHealthMonitor::MetricHooks Hooks;
  Hooks.Hangs = &M->counter(obs::names::HangsTotal, {},
                            "Hangs declared by the watchdog");
  Hooks.Quarantines =
      &M->counter(obs::names::QuarantinesTotal, {}, "GPU quarantines entered");
  Hooks.Probes = &M->counter(obs::names::ProbesTotal, {},
                             "Post-quarantine re-probe dispatches granted");
  Hooks.Recoveries = &M->counter(obs::names::RecoveriesTotal, {},
                                 "Probes that re-admitted the GPU");
  Hooks.Flight = Config.Flight;
  Monitor.setMetrics(Hooks);
}

void EasScheduler::recordInvocation(const KernelDesc &Kernel,
                                    const InvocationOutcome &Outcome) {
  if (Config.Decisions || Config.Flight) {
    obs::DecisionRecord Rec;
    Rec.KernelId = Kernel.Id;
    Rec.ClassIndex = Outcome.TableHit || Outcome.Profiled
                         ? static_cast<int>(Outcome.Class.index())
                         : -1;
    Rec.Alpha = Outcome.AlphaUsed;
    Rec.PState = Outcome.PState;
    Rec.HasPrediction = Outcome.HasPrediction;
    Rec.PredictedSeconds = Outcome.PredictedSeconds;
    Rec.PredictedWatts = Outcome.PredictedWatts;
    Rec.PredictedMetric = Outcome.PredictedMetric;
    Rec.MeasuredSeconds = Outcome.MeasuredSeconds;
    Rec.MeasuredJoules = Outcome.MeasuredJoules;
    Rec.TableHit = Outcome.TableHit;
    Rec.Profiled = Outcome.Profiled;
    Rec.CpuOnlyFastPath = Outcome.CpuOnlyFastPath;
    Rec.GpuQuarantined = Outcome.GpuQuarantined;
    Rec.Cancelled = Outcome.Cancelled;
    if (Config.Decisions) {
      Config.Decisions->append(Rec);
      if (Ins.DecisionsLogged)
        Ins.DecisionsLogged->add();
    }
    if (Config.Flight) {
      // Fixed-capacity overwrite ring: appending stays allocation-free
      // once warm, so the recorder may be armed on the hot path. Every
      // invocation lands in the decision ring; the event ring gets only
      // transitions (a warm table hit's instant would duplicate the
      // DecisionRecord and double the armed hot path's lock count).
      Config.Flight->recordDecision(Rec);
      if (Outcome.Profiled)
        Config.Flight->instant("eas", "profile", Outcome.Seconds);
      if (Outcome.GpuQuarantined)
        Config.Flight->instant("eas", "quarantined-run");
      if (Outcome.GpuReadmitted)
        Config.Flight->instant("eas", "readmission");
    }
  }
  if (!Config.Metrics)
    return;
  Ins.Invocations->add();
  if (Outcome.TableHit)
    Ins.TableHits->add();
  if (Outcome.Profiled)
    Ins.TableMisses->add();
  if (Outcome.CpuOnlyFastPath)
    Ins.CpuOnly->add();
  if (Outcome.GpuQuarantined)
    Ins.QuarantinedRuns->add();
  if (Outcome.GpuReadmitted)
    Ins.Readmissions->add();
  if (Outcome.LaunchRetries)
    Ins.LaunchRetries->add(Outcome.LaunchRetries);
  if (Outcome.ProfileRepetitions)
    Ins.ProfileReps->add(Outcome.ProfileRepetitions);
  if (Outcome.Cancelled) {
    // Partial invocations keep their work counters (above) but stay out
    // of the completed-run distributions.
    Ins.Cancelled->add();
    return;
  }
  Ins.InvocationSeconds->record(Outcome.Seconds);
  unsigned PIdx =
      std::min(Outcome.PState, std::min(Curves.numPStates(), kMaxPStates) - 1);
  Ins.AlphaChosen[PIdx]->record(Outcome.AlphaUsed);
  Ins.PStateResidency[PIdx]->add(Outcome.Seconds);
  if (Outcome.AlphaSearches)
    Ins.AlphaSearchEvals->record(Outcome.AlphaEvaluations);
  if (Outcome.Profiled && Outcome.Seconds > 0.0)
    Ins.ProfileOverhead->record(Outcome.ProfileSeconds / Outcome.Seconds);
  if (Outcome.hasModelSample()) {
    unsigned Idx = Outcome.Class.index();
    Ins.TimeRelError[Idx][PIdx]->record(Outcome.timeRelError());
    Ins.EnergyRelError[Idx][PIdx]->record(Outcome.energyRelError());
  }
}

unsigned EasScheduler::buildPStateViews(const SimProcessor &Proc,
                                        WorkloadClass Class,
                                        PStateView *Views) const {
  unsigned K = 1;
  if (Config.PStates)
    K = std::min({Proc.spec().pstateCount(), Curves.numPStates(),
                  kMaxPStates});
  PStateSpec Full = Proc.spec().pstateAt(0);
  for (unsigned S = 0; S != K; ++S) {
    PStateSpec State = Proc.spec().pstateAt(S);
    Views[S].Curve = &Curves.stateCurves(S).curveFor(Class);
    // State 0 is the reference the profiler measured at; its scales are
    // exactly 1 so a single-state search reuses the caller's TimeModel
    // object (the wrapper bit-identity guarantee).
    Views[S].CpuFreqScale =
        S == 0 || Full.CpuFreqGHz <= 0.0 ? 1.0
                                         : State.CpuFreqGHz / Full.CpuFreqGHz;
    Views[S].GpuFreqScale =
        S == 0 || Full.GpuFreqGHz <= 0.0 ? 1.0
                                         : State.GpuFreqGHz / Full.GpuFreqGHz;
  }
  return K;
}

double EasScheduler::memBoundFraction(double MissPerLoadStore) const {
  double Threshold = Config.Thresholds.MemoryIntensity;
  if (!(Threshold > 0.0) || !(MissPerLoadStore > 0.0))
    return 0.0;
  return std::min(MissPerLoadStore / Threshold, 1.0);
}

bool EasScheduler::stopRequested(double NowSec,
                                 const CancellationToken *Cancel) const {
  return DrainToken.cancelled() || (Cancel && Cancel->shouldStop(NowSec));
}

void EasScheduler::endInvocation() {
  if (InFlight.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Take the lifecycle mutex so a shutdown() thread between its
    // predicate check and its wait cannot miss this notification.
    LockGuard Lock(LifecycleMutex);
    Drained.notify_all();
  }
}

Status EasScheduler::shutdown(double DrainGraceSec) {
  bool WasAdmitting = true;
  if (!Admitting.compare_exchange_strong(WasAdmitting, false,
                                         std::memory_order_acq_rel)) {
    // Someone else is (or finished) shutting down; wait for their
    // verdict so shutdown() is idempotent. (Explicit loop: the analysis
    // sees the guarded reads under the held capability.)
    UniqueLock Lock(LifecycleMutex);
    while (!ShutdownComplete)
      Drained.wait(Lock.native());
    return ShutdownResult;
  }

  // Phase 1: drain. New invocations already bounce off the admission
  // gate; give the in-flight ones the grace period to finish cleanly.
  std::chrono::steady_clock::time_point DrainStart =
      std::chrono::steady_clock::now();
  {
    obs::ScopedSpan DrainSpan(Config.Trace, "eas", "drain");
    UniqueLock Lock(LifecycleMutex);
    bool Clean = Drained.wait_for(
        Lock.native(),
        std::chrono::duration<double>(std::max(DrainGraceSec, 0.0)),
        [this] { return InFlight.load(std::memory_order_acquire) == 0; });
    if (!Clean) {
      // Phase 2: cancel. Stragglers observe the drain token at their
      // next cooperative point; every point is reached in bounded time,
      // so this wait terminates.
      DrainToken.cancel();
      Drained.wait(Lock.native(), [this] {
        return InFlight.load(std::memory_order_acquire) == 0;
      });
    }
  }
  if (Ins.ShutdownDrain)
    Ins.ShutdownDrain->set(std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - DrainStart)
                               .count());

  // Phase 3: persist table G. With a live journal this is a compaction:
  // flush the tail, snapshot at the next epoch, and only then reset the
  // journal to it — dying between the two leaves a stale journal the
  // next recovery skips, never a double-apply.
  Status S = Status::success();
  if (!Config.HistoryFile.empty()) {
    obs::ScopedSpan SnapshotSpan(Config.Trace, "eas", "snapshot");
    if (Journal) {
      if (Status FlushS = Journal->flush(); !FlushS.ok())
        noteJournalFailure(FlushS);
      uint64_t NewEpoch = Journal->epoch() + 1;
      S = saveKernelHistory(History, Config.HistoryFile, NewEpoch);
      if (S.ok())
        S = Journal->reset(NewEpoch);
    } else {
      S = saveKernelHistory(History, Config.HistoryFile);
    }
    if (Config.Trace)
      SnapshotSpan.setEndDetail(S.toString());
  }

  {
    LockGuard Lock(LifecycleMutex);
    ShutdownComplete = true;
    ShutdownResult = S;
  }
  Drained.notify_all();
  return S;
}

Status EasScheduler::snapshot(const std::string &Path) const {
  return saveKernelHistory(History, Path,
                           Journal ? Journal->epoch() : uint64_t{0});
}

EasScheduler::InvocationOutcome
EasScheduler::execute(SimProcessor &Proc, const KernelDesc &Kernel,
                      double Iterations) {
  return executeGated(Proc, Kernel, Iterations, Kernel.Id, nullptr);
}

EasScheduler::InvocationOutcome
EasScheduler::execute(SimProcessor &Proc, const KernelDesc &Kernel,
                      double Iterations, const CancellationToken &Cancel) {
  return executeGated(Proc, Kernel, Iterations, Kernel.Id, &Cancel);
}

EasScheduler::InvocationOutcome
EasScheduler::execute(SimProcessor &Proc, const KernelDesc &Kernel,
                      double Iterations, const RequestContext &Request,
                      const CancellationToken *Cancel) {
  return executeGated(Proc, Kernel, Iterations,
                      namespacedKernelKey(Request.TenantId, Kernel.Id),
                      Cancel);
}

EasScheduler::InvocationOutcome
EasScheduler::executeGated(SimProcessor &Proc, const KernelDesc &Kernel,
                           double Iterations, uint64_t HistoryKey,
                           const CancellationToken *Cancel) {
  InFlight.fetch_add(1, std::memory_order_acq_rel);
  if (!Admitting.load(std::memory_order_acquire)) {
    endInvocation();
    if (Config.Trace) {
      Config.Trace->instant("eas", "rejected", Proc.now());
      Config.Trace->count("eas.rejected");
    }
    if (Ins.Rejected)
      Ins.Rejected->add();
    InvocationOutcome Outcome;
    Outcome.Rejected = true;
    return Outcome;
  }
  InvocationOutcome Outcome =
      executeAdmitted(Proc, Kernel, Iterations, HistoryKey, Cancel);
  recordInvocation(Kernel, Outcome);
  endInvocation();
  return Outcome;
}

EasScheduler::InvocationOutcome
EasScheduler::executeAdmitted(SimProcessor &Proc, const KernelDesc &Kernel,
                              double Iterations, uint64_t HistoryKey,
                              const CancellationToken *Cancel) {
  ECAS_CHECK(Kernel.Id != 0, "kernel requires a stable nonzero id");
  ECAS_CHECK(HistoryKey != 0, "history key must be nonzero");
  InvocationOutcome Outcome;
  // Joint (alpha, f) mode: profiling and the CPU-only paths run at full
  // speed (the throughputs table G learns are the state-0 reference);
  // the winning P-state re-caps the clocks just before dispatch.
  if (Config.PStates)
    Proc.pcu().clearFrequencyCap();
  double Start = Proc.now();
  // Energy sample for the measured-window telemetry. A const read of the
  // emulated MSR: harmless without a registry, so it is not gated.
  uint32_t StartMsr = Proc.meter().readMsr();

  // The whole invocation is one span on the virtual-clock track. All
  // recording below is observation-only: with T == nullptr every helper
  // no-ops, and with a recorder attached the scheduling decisions are
  // bit-identical (ObsTest's null-sink regression).
  obs::TraceRecorder *T = Config.Trace;
  obs::ScopedSpan Invocation(
      T, "eas", "invocation",
      T ? std::function<double()>([&Proc] { return Proc.now(); })
        : std::function<double()>(),
      T ? formatString("kernel=%llu n=%.0f",
                       static_cast<unsigned long long>(Kernel.Id), Iterations)
        : std::string());
  if (T)
    T->count("eas.invocations");

  // Cancellation point 1: invocation entry.
  if (stopRequested(Proc.now(), Cancel)) {
    Outcome.Cancelled = true;
    if (T) {
      T->instant("eas", "cancelled", Proc.now(), "at-entry");
      T->count("eas.cancelled");
    }
    return Outcome;
  }

  // Section 5: when the GPU is busy with another client (performance
  // counter A26 on the paper's machines), run entirely on the CPU.
  if (externalGpuBusy()) {
    if (T)
      T->instant("eas", "external-gpu-busy", Proc.now());
    runPartitioned(Proc, Kernel, Iterations, /*Alpha=*/0.0);
    Outcome.CpuOnlyFastPath = true;
    Outcome.Seconds = Proc.now() - Start;
    Outcome.MeasuredSeconds = Outcome.Seconds;
    Outcome.MeasuredJoules = Proc.meter().joulesSince(StartMsr);
    if (T)
      T->count("eas.cpu_only");
    return Outcome;
  }

  // Graceful degradation: a quarantined GPU pins the invocation to
  // CPU-alone (alpha = 0) without consulting table G. gpuUsable() also
  // ends an expired quarantine — the dispatch below then doubles as the
  // re-probe that can re-admit the device.
  if (!Monitor.gpuUsable(Proc.now())) {
    obs::ScopedSpan Dispatch(
        T, "eas", "dispatch",
        T ? std::function<double()>([&Proc] { return Proc.now(); })
          : std::function<double()>(),
        "alpha=0.00 quarantined");
    runPartitionedResilient(Proc, Monitor, Kernel, Iterations,
                            /*Alpha=*/0.0);
    History.bumpQuarantinedRuns(HistoryKey);
    History.bumpInvocations(HistoryKey);
    if (Journal) {
      HistoryDeltaRecord Delta;
      Delta.Key = HistoryKey;
      Delta.QuarantinedDelta = 1;
      Delta.InvocationsDelta = 1;
      journalRecord(Delta);
      journalCommit();
    }
    Outcome.GpuQuarantined = true;
    Outcome.CpuOnlyFastPath = true;
    Outcome.Seconds = Proc.now() - Start;
    Outcome.MeasuredSeconds = Outcome.Seconds;
    Outcome.MeasuredJoules = Proc.meter().joulesSince(StartMsr);
    if (T) {
      T->count("eas.quarantined_runs");
      T->count("eas.cpu_only");
    }
    return Outcome;
  }

  // A recovery since the last invocation means the device coming back
  // may not be the device that left (thermal state, clocks); force a
  // re-profile so alpha is re-optimized against the recovered GPU. The
  // demand is sticky across small-N invocations that cannot profile.
  // The CAS makes exactly one client raise the demand per recovery.
  unsigned Recoveries = Monitor.recoveries();
  unsigned Seen = LastSeenRecoveries.load(std::memory_order_acquire);
  if (Recoveries != Seen &&
      LastSeenRecoveries.compare_exchange_strong(Seen, Recoveries,
                                                 std::memory_order_acq_rel))
    PendingReadmitReprofile.store(true, std::memory_order_release);

  double GpuProfileSize = Config.GpuProfileSize > 0.0
                              ? Config.GpuProfileSize
                              : Proc.spec().defaultGpuProfileSize();

  double MinProfileIters = Config.MinProfileIters > 0.0
                               ? Config.MinProfileIters
                               : GpuProfileSize / 4.0;

  double Alpha = 0.0;
  unsigned PState = 0;
  double Nrem = Iterations;
  bool ProfileHang = false;
  KernelRecord KnownRec;
  bool Known = History.lookup(HistoryKey, KnownRec);

  // Periodic re-profiling for kernels whose behaviour drifts over time
  // (Section 3.1: "we repeat profiling step since our online profiling
  // has low overhead").
  bool ReprofileDue =
      Config.ReprofileEveryInvocations > 0 && Known &&
      KnownRec.Invocations >= Config.ReprofileEveryInvocations &&
      KnownRec.Invocations % Config.ReprofileEveryInvocations == 0 &&
      Iterations >= GpuProfileSize;
  if (Iterations >= GpuProfileSize &&
      PendingReadmitReprofile.exchange(false, std::memory_order_acq_rel)) {
    Outcome.GpuReadmitted = true;
    ReprofileDue = true;
    if (T)
      T->instant("eas", "readmit-reprofile", Proc.now());
  }

  // Freshly measured samples to merge into table G at the end; the
  // accumulate operation is associative and commutative, so merging the
  // local deltas under the record lock preserves every concurrent
  // client's contribution (and reproduces the single-threaded result
  // exactly).
  std::vector<ProfileSample> Deltas;

  if (Known && KnownRec.Alpha.hasValue() && !ReprofileDue &&
      (KnownRec.Confident || Iterations < GpuProfileSize))
    // Steps 2-4: multiple invocations of f reuse the learned ratio.
    // This steady-state hit is the lock-free path: one lookup, the
    // partitioned run, one counter bump — extracted into the ECAS_HOT
    // root so the hot-path analyzer and AllocGuard regression pin it.
    return runTableHit(Proc, Kernel, Iterations, HistoryKey, KnownRec, Cancel,
                       Start, StartMsr, T, Invocation);

  if (Iterations < GpuProfileSize) {
    // Steps 6-10: not enough parallelism to fill the GPU — run this
    // invocation on the multicore CPU alone. The kernel is not pinned:
    // a later invocation large enough to fill the GPU still profiles
    // (graph kernels routinely open with a tiny frontier).
    if (T)
      T->instant("eas", "small-invocation", Proc.now(),
                 formatString("n=%.0f below profile size %.0f", Iterations,
                              GpuProfileSize));
    runPartitioned(Proc, Kernel, Iterations, /*Alpha=*/0.0);
    History.update(HistoryKey,
                   [](KernelRecord &Rec) { Rec.CpuOnly = true; });
    History.bumpInvocations(HistoryKey);
    if (Journal) {
      // Setting CpuOnly commutes (it only ever becomes true), so the
      // record may enqueue outside the shard lock.
      HistoryDeltaRecord Delta;
      Delta.Key = HistoryKey;
      Delta.SetCpuOnly = true;
      Delta.InvocationsDelta = 1;
      journalRecord(Delta);
      journalCommit();
    }
    Outcome.CpuOnlyFastPath = true;
    Outcome.Seconds = Proc.now() - Start;
    Outcome.MeasuredSeconds = Outcome.Seconds;
    Outcome.MeasuredJoules = Proc.meter().joulesSince(StartMsr);
    if (T)
      T->count("eas.cpu_only");
    return Outcome;
  } else {
    // Steps 11-22: repeat profiling for half of the iterations. The
    // measurements fold into the kernel's record, so a kernel whose
    // first large invocation starved one device (a growing BFS frontier
    // barely above GPU_PROFILE_SIZE) keeps refining across invocations
    // until both devices have been properly observed. Profiling works
    // on a private copy (base record + local deltas); the deltas merge
    // into the shared record once, at the end.
    Outcome.Profiled = true;
    double ProfileStart = Proc.now();
    obs::ScopedSpan Profile(
        T, "eas", "profile",
        T ? std::function<double()>([&Proc] { return Proc.now(); })
          : std::function<double()>());
    OnlineProfiler Profiler(Proc, GpuProfileSize);
    Profiler.setWatchdogPollSec(Config.Health.WatchdogPollSec);
    Profiler.setTrace(T);
    Profiler.setRepSeconds(Ins.ProfileRepSeconds);
    std::vector<std::pair<double, double>> Grid;
    KernelRecord Local = KnownRec;
    double ProfileFloor = Iterations * Config.ProfileFraction;
    while (Nrem > ProfileFloor) {
      // Cancellation point 2: between profiling repetitions.
      if (stopRequested(Proc.now(), Cancel)) {
        Outcome.Cancelled = true;
        if (T) {
          T->instant("eas", "cancelled", Proc.now(), "mid-profile");
          T->count("eas.cancelled");
        }
        break;
      }
      ProfileSample Sample = Profiler.profileOnce(Kernel, Nrem);
      ++Outcome.ProfileRepetitions;
      if (T)
        T->count("eas.profile_reps");
      if (Sample.GpuLaunchFailed) {
        // The driver refused the profiling enqueue. Stop measuring; the
        // remainder execution below retries with backoff and degrades
        // if the device stays unavailable.
        Monitor.noteLaunchFailure(Proc.now());
        ++Outcome.LaunchRetries;
        break;
      }
      if (Sample.GpuHung) {
        // Quarantine the device and discard the repetition: a hung
        // chunk's near-zero "throughput" is a property of the fault,
        // not the kernel, and must not poison table G. The remainder
        // runs CPU-alone.
        Monitor.noteHang(Proc.now());
        Outcome.HangDetected = true;
        ProfileHang = true;
        Alpha = 0.0;
        break;
      }
      if (Sample.GpuIterations > 0.0)
        Monitor.noteGpuSuccess(Proc.now());
      if (Sample.ElapsedSeconds <= 0.0)
        break;
      Local.Sample.accumulate(Sample);
      Deltas.push_back(Sample);
      if (Local.Sample.CpuThroughput <= 0.0 &&
          Local.Sample.GpuThroughput <= 0.0)
        break;

      // Steps 17-19: classify and pick the matching power curves.
      Outcome.Class =
          Profiler.classify(Local.Sample, Nrem, Config.Thresholds);
      if (T)
        T->instant("eas", "classify", Proc.now(), Outcome.Class.name());

      // Step 20, extended along the DVFS axis: minimize OBJ over the
      // (alpha, P-state) grid. Profiling may have consumed every
      // iteration (small invocations); the argmin of P(a)*T(a)^k is
      // independent of N, so clamping N away from zero keeps the
      // objective non-degenerate without changing the answer. With
      // P-states off this is exactly the paper's fixed-frequency alpha
      // grid (one view, unit scales).
      TimeModel Model(Local.Sample.CpuThroughput,
                      Local.Sample.GpuThroughput);
      PStateView Views[kMaxPStates];
      unsigned NumViews = buildPStateViews(Proc, Outcome.Class, Views);
      OperatingPointSearchConfig Search;
      Search.Step = Config.AlphaStep;
      Search.Refine = Config.RefineAlpha;
      Search.Policy = Config.Policy;
      Search.DeadlineSeconds = Config.DeadlineSeconds;
      Search.IdleWatts = Config.IdleWatts;
      Search.MemBoundFraction =
          memBoundFraction(Local.Sample.MissPerLoadStore);
      if (T)
        Search.GridOut = &Grid;
      Decision Choice = chooseOperatingPoint(Model, Views, NumViews,
                                             Objective, std::max(Nrem, 1.0),
                                             Search);
      Alpha = Choice.Point.Alpha;
      PState = Choice.Point.PState;
      ++Outcome.AlphaSearches;
      Outcome.AlphaEvaluations += Choice.Evaluations;
      // Profiling decrements Nrem before each search, so the last
      // search's prediction covers exactly the remainder dispatched
      // below — it is the fidelity sample this invocation yields.
      Outcome.HasPrediction = true;
      Outcome.PredictedSeconds = Choice.PredictedSeconds;
      Outcome.PredictedWatts = Choice.PredictedWatts;
      Outcome.PredictedMetric = Choice.PredictedMetric;
      if (T) {
        std::string Detail = formatString(
            "alpha=%.3f obj=%.6g evals=%u grid=", Choice.Point.Alpha,
            Choice.PredictedMetric, Choice.Evaluations);
        if (NumViews > 1)
          Detail = formatString("pstate=%u ", Choice.Point.PState) + Detail;
        for (size_t I = 0; I != Grid.size(); ++I)
          Detail += formatString(I ? ",%.2f:%.4g" : "%.2f:%.4g",
                                 Grid[I].first, Grid[I].second);
        T->instant("eas", "alpha-search", Proc.now(), std::move(Detail));
        T->count("eas.alpha_searches");
      }
    }
    Outcome.ProfileSeconds = Proc.now() - ProfileStart;
  }

  // Cancellation point 3: before the remainder execution. A cancelled
  // invocation keeps its completed measurements (merged below) but runs
  // nothing further.
  if (!Outcome.Cancelled && stopRequested(Proc.now(), Cancel)) {
    Outcome.Cancelled = true;
    if (T) {
      T->instant("eas", "cancelled", Proc.now(), "before-dispatch");
      T->count("eas.cancelled");
    }
  }

  // Steps 23-25: execute the remainder at the chosen split, optionally
  // telling the governor what is coming (future-work extension). The
  // resilient primitive handles launch retries, hang detection, and
  // quarantine-stranding; on a healthy platform it is exactly
  // runPartitioned.
  if (Nrem > 0.0 && !Outcome.Cancelled) {
    obs::ScopedSpan Dispatch(
        T, "eas", "dispatch",
        T ? std::function<double()>([&Proc] { return Proc.now(); })
          : std::function<double()>(),
        T ? formatString("alpha=%.3f n=%.0f", Alpha, Nrem) : std::string());
    if (Config.PStates) {
      // Actuate the frequency half of the operating point: cap the PCU
      // at the chosen state's clocks for the remainder dispatch.
      PStateSpec Cap = Proc.spec().pstateAt(PState);
      Proc.pcu().setFrequencyCap(Cap.CpuFreqGHz, Cap.GpuFreqGHz);
    }
    if (Config.PcuHints)
      Proc.pcu().hintUpcomingSplit(Alpha);
    double DispatchStart = Proc.now();
    uint32_t DispatchMsr = Proc.meter().readMsr();
    PartitionOutcome Partition =
        runPartitionedResilient(Proc, Monitor, Kernel, Nrem, Alpha);
    Outcome.MeasuredSeconds = Proc.now() - DispatchStart;
    Outcome.MeasuredJoules = Proc.meter().joulesSince(DispatchMsr);
    Outcome.LaunchRetries += Partition.LaunchRetries;
    Outcome.HangDetected = Outcome.HangDetected || Partition.HangDetected;
    Outcome.GpuQuarantined =
        Outcome.GpuQuarantined || Partition.QuarantineSkipped;
    if (T && (Partition.LaunchRetries || Partition.HangDetected ||
              Partition.QuarantineSkipped))
      Dispatch.setEndDetail(formatString(
          "retries=%u%s%s", Partition.LaunchRetries,
          Partition.HangDetected ? " hang" : "",
          Partition.QuarantineSkipped ? " quarantine-skipped" : ""));
  }

  // A prediction encodes the healthy-platform assumption; a hang or a
  // quarantine-stranded GPU share broke it mid-flight, so the measured
  // window no longer answers "how good is the model".
  if (Outcome.HangDetected || Outcome.GpuQuarantined)
    Outcome.HasPrediction = false;

  // Step 26: sample-weighted accumulation across invocations. Only
  // freshly computed alphas are samples; a table-G reuse feeds back the
  // accumulator's own value and must not inflate its weight. A
  // profiling round ended by a hang produced a fault artifact, not a
  // kernel property, and is kept out of table G — as is the alpha of a
  // cancelled invocation, whose partial profiling must not be weighted
  // like a finished one.
  if (Outcome.Profiled) {
    bool AddAlpha = !ProfileHang && !Outcome.Cancelled;
    double AlphaWeight = std::max(Nrem, 1.0);
    History.update(HistoryKey, [&](KernelRecord &Rec) {
      // The journal record mirrors this merge field for field and is
      // enqueued before the shard lock releases, so journal order
      // equals merge order per key and replay is order-exact (sample
      // accumulation and the confident transition do not commute).
      // enqueue() buffers without IO, so no fsync runs under the lock.
      HistoryDeltaRecord Delta;
      Delta.Key = HistoryKey;
      if (Journal)
        Delta.Samples = Deltas;
      for (const ProfileSample &S : Deltas)
        Rec.Sample.accumulate(S);
      if (!Rec.Confident && Rec.Sample.CpuIterations >= MinProfileIters &&
          Rec.Sample.GpuIterations >= MinProfileIters) {
        // First trustworthy measurement: discard the provisional alphas
        // accumulated while one device was starved of observations.
        Rec.Confident = true;
        Rec.Alpha = SampleWeightedAlpha();
        Delta.BecameConfident = true;
      }
      if (AddAlpha) {
        Rec.Alpha.addSample(Alpha, AlphaWeight);
        Delta.HasAlphaSample = true;
        Delta.AlphaValue = Alpha;
        Delta.AlphaWeight = AlphaWeight;
        // The P-state rides the same gate: a hang- or cancel-tainted
        // decision must not steer future invocations' clocks either.
        Rec.PState = PState;
        Delta.HasPState = true;
        Delta.PState = PState;
      }
      Rec.Class = Outcome.Class;
      Delta.HasClass = true;
      Delta.ClassIndex = Outcome.Class.index();
      journalRecord(Delta);
    });
  }
  // A cancelled invocation did not complete; counting it would make
  // periodic re-profiling cadence drift under cancellation storms.
  if (!Outcome.Cancelled) {
    History.bumpInvocations(HistoryKey);
    if (Journal) {
      HistoryDeltaRecord Delta;
      Delta.Key = HistoryKey;
      Delta.InvocationsDelta = 1;
      journalRecord(Delta);
    }
  }
  journalCommit();

  Outcome.AlphaUsed = Alpha;
  Outcome.PState = PState;
  Outcome.Seconds = Proc.now() - Start;
  if (T) {
    if (Outcome.LaunchRetries)
      T->count("eas.launch_retries", Outcome.LaunchRetries);
    if (Outcome.HangDetected)
      T->count("eas.hangs");
    if (Outcome.GpuReadmitted)
      T->count("eas.readmissions");
    Invocation.setEndDetail(formatString("alpha=%.3f seconds=%.6f%s", Alpha,
                                         Outcome.Seconds,
                                         Outcome.Cancelled ? " cancelled"
                                                           : ""));
  }
  return Outcome;
}

EasScheduler::InvocationOutcome EasScheduler::runTableHit(
    SimProcessor &Proc, const KernelDesc &Kernel, double Iterations,
    uint64_t HistoryKey, const KernelRecord &KnownRec,
    const CancellationToken *Cancel, double Start, uint32_t StartMsr,
    obs::TraceRecorder *T, obs::ScopedSpan &Invocation) {
  // Steps 2-4 steady state: replay the learned ratio. Every statement
  // below mirrors the shared tail of executeAdmitted in its original
  // order (with Nrem == Iterations and no profiling merge), so the
  // decision stream is bit-identical to the pre-extraction branch —
  // ObsTest and MetricsTest pin that equivalence.
  InvocationOutcome Outcome;
  double Alpha = KnownRec.Alpha.value();
  // Replay the frequency half of the learned operating point too,
  // clamped to what this platform and characterization actually cover
  // (a snapshot can migrate between machines). With P-states off the
  // record's state is ignored and the hit runs at full speed, exactly
  // like a pre-DVFS build.
  unsigned PState = 0;
  if (Config.PStates)
    PState = std::min({KnownRec.PState, Proc.spec().pstateCount() - 1,
                       Curves.numPStates() - 1, kMaxPStates - 1});
  Outcome.Class = KnownRec.Class;
  Outcome.TableHit = true;
  if ((Config.Metrics || Config.Decisions) &&
      (KnownRec.Sample.CpuThroughput > 0.0 ||
       KnownRec.Sample.GpuThroughput > 0.0)) {
    // Re-evaluate the analytical model from the stored record so hit
    // invocations contribute fidelity samples too. Observation only:
    // neither the prediction nor the telemetry touches Alpha. At a
    // reduced P-state the stored full-speed throughputs are rescaled
    // through the same Amdahl model the search used.
    TimeModel Model(KnownRec.Sample.CpuThroughput,
                    KnownRec.Sample.GpuThroughput);
    const PowerCurveSet &StateSet = Curves.stateCurves(
        std::min(PState, Curves.numPStates() - 1));
    if (PState > 0) {
      PStateSpec Full = Proc.spec().pstateAt(0);
      PStateSpec State = Proc.spec().pstateAt(PState);
      Model = Model.scaledTo(
          Full.CpuFreqGHz > 0.0 ? State.CpuFreqGHz / Full.CpuFreqGHz : 1.0,
          Full.GpuFreqGHz > 0.0 ? State.GpuFreqGHz / Full.GpuFreqGHz : 1.0,
          memBoundFraction(KnownRec.Sample.MissPerLoadStore));
    }
    Outcome.HasPrediction = true;
    Outcome.PredictedSeconds = Model.totalTime(Iterations, Alpha);
    Outcome.PredictedWatts = StateSet.curveFor(KnownRec.Class).powerAt(Alpha);
    Outcome.PredictedMetric =
        Objective.evaluate(Outcome.PredictedWatts, Outcome.PredictedSeconds);
  }
  if (T) {
    T->instant("eas", "table-hit", Proc.now(),
               formatString("alpha=%.3f", Alpha)); // ecas-hotpath: allow(alloc)
    T->count("eas.table_hits"); // ecas-hotpath: allow(extern-call)
  }

  // Cancellation point 3: before the remainder execution (points 1 and 2
  // precede the table lookup / only exist while profiling).
  if (stopRequested(Proc.now(), Cancel)) {
    Outcome.Cancelled = true;
    if (T) {
      T->instant("eas", "cancelled", Proc.now(),
                 "before-dispatch"); // ecas-hotpath: allow(alloc)
      T->count("eas.cancelled");    // ecas-hotpath: allow(extern-call)
    }
  }

  // Steps 23-25: execute the whole invocation at the learned split.
  if (Iterations > 0.0 && !Outcome.Cancelled) {
    obs::ScopedSpan Dispatch(
        T, "eas", "dispatch",
        T ? std::function<double()>([&Proc] { return Proc.now(); }) // ecas-hotpath: allow(alloc)
          : std::function<double()>(),
        T ? formatString("alpha=%.3f n=%.0f", Alpha, Iterations) // ecas-hotpath: allow(alloc)
          : std::string());
    if (Config.PStates) {
      // Warmed hits actuate the learned state with two PCU calls — no
      // search, no allocation (the AllocGuard regression covers this
      // path with a multi-state family).
      PStateSpec Cap = Proc.spec().pstateAt(PState);
      Proc.pcu().setFrequencyCap(Cap.CpuFreqGHz, Cap.GpuFreqGHz);
    }
    if (Config.PcuHints)
      Proc.pcu().hintUpcomingSplit(Alpha);
    double DispatchStart = Proc.now();
    uint32_t DispatchMsr = Proc.meter().readMsr();
    PartitionOutcome Partition =
        runPartitionedResilient(Proc, Monitor, Kernel, Iterations, Alpha);
    Outcome.MeasuredSeconds = Proc.now() - DispatchStart;
    Outcome.MeasuredJoules = Proc.meter().joulesSince(DispatchMsr);
    Outcome.LaunchRetries += Partition.LaunchRetries;
    Outcome.HangDetected = Outcome.HangDetected || Partition.HangDetected;
    Outcome.GpuQuarantined =
        Outcome.GpuQuarantined || Partition.QuarantineSkipped;
    if (T && (Partition.LaunchRetries || Partition.HangDetected ||
              Partition.QuarantineSkipped))
      Dispatch.setEndDetail(formatString( // ecas-hotpath: allow(alloc)
          "retries=%u%s%s", Partition.LaunchRetries,
          Partition.HangDetected ? " hang" : "",
          Partition.QuarantineSkipped ? " quarantine-skipped" : ""));
  }

  // A prediction encodes the healthy-platform assumption; a hang or a
  // quarantine-stranded GPU share broke it mid-flight.
  if (Outcome.HangDetected || Outcome.GpuQuarantined)
    Outcome.HasPrediction = false;

  // No profiling merge on a hit (a table-G reuse feeds back the
  // accumulator's own value and must not inflate its weight): just the
  // invocation count, which cancellation skips so the re-profiling
  // cadence cannot drift under cancellation storms.
  if (!Outcome.Cancelled) {
    History.bumpInvocations(HistoryKey);
    if (Journal) {
      HistoryDeltaRecord Delta;
      Delta.Key = HistoryKey;
      Delta.InvocationsDelta = 1;
      journalRecord(Delta); // ecas-hotpath: allow(alloc)
    }
  }
  journalCommit(); // ecas-hotpath: allow(io)

  Outcome.AlphaUsed = Alpha;
  Outcome.PState = PState;
  Outcome.Seconds = Proc.now() - Start;
  if (T) {
    if (Outcome.LaunchRetries)
      T->count("eas.launch_retries", Outcome.LaunchRetries); // ecas-hotpath: allow(extern-call)
    if (Outcome.HangDetected)
      T->count("eas.hangs"); // ecas-hotpath: allow(extern-call)
    Invocation.setEndDetail(formatString( // ecas-hotpath: allow(alloc)
        "alpha=%.3f seconds=%.6f%s", Alpha, Outcome.Seconds,
        Outcome.Cancelled ? " cancelled" : ""));
  }
  return Outcome;
}
