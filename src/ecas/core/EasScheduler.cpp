//===-- ecas/core/EasScheduler.cpp - The EAS algorithm (Fig. 7) -----------===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ecas/core/EasScheduler.h"

#include "ecas/core/Schedulers.h"
#include "ecas/core/TimeModel.h"
#include "ecas/support/Assert.h"

#include <algorithm>

using namespace ecas;

EasScheduler::EasScheduler(const PowerCurveSet &CurvesIn, Metric ObjectiveIn,
                           EasConfig ConfigIn)
    : Curves(CurvesIn), Objective(std::move(ObjectiveIn)), Config(ConfigIn),
      Monitor(Config.Health) {
  ECAS_CHECK(Curves.complete(),
             "EAS requires a complete 8-category power characterization");
  ECAS_CHECK(Config.AlphaStep > 0.0 && Config.AlphaStep <= 1.0,
             "alpha step must lie in (0, 1]");
  ECAS_CHECK(Config.ProfileFraction > 0.0 && Config.ProfileFraction <= 1.0,
             "profile fraction must lie in (0, 1]");
}

EasScheduler::InvocationOutcome
EasScheduler::execute(SimProcessor &Proc, const KernelDesc &Kernel,
                      double Iterations) {
  ECAS_CHECK(Kernel.Id != 0, "kernel requires a stable nonzero id");
  InvocationOutcome Outcome;
  double Start = Proc.now();

  // Section 5: when the GPU is busy with another client (performance
  // counter A26 on the paper's machines), run entirely on the CPU.
  if (ExternalGpuBusy) {
    runPartitioned(Proc, Kernel, Iterations, /*Alpha=*/0.0);
    Outcome.CpuOnlyFastPath = true;
    Outcome.Seconds = Proc.now() - Start;
    return Outcome;
  }

  // Graceful degradation: a quarantined GPU pins the invocation to
  // CPU-alone (alpha = 0) without consulting table G. gpuUsable() also
  // ends an expired quarantine — the dispatch below then doubles as the
  // re-probe that can re-admit the device.
  if (!Monitor.gpuUsable(Proc.now())) {
    runPartitionedResilient(Proc, Monitor, Kernel, Iterations,
                            /*Alpha=*/0.0);
    KernelRecord &Record = History.obtain(Kernel.Id);
    ++Record.QuarantinedRuns;
    ++Record.Invocations;
    Outcome.GpuQuarantined = true;
    Outcome.CpuOnlyFastPath = true;
    Outcome.Seconds = Proc.now() - Start;
    return Outcome;
  }

  // A recovery since the last invocation means the device coming back
  // may not be the device that left (thermal state, clocks); force a
  // re-profile so alpha is re-optimized against the recovered GPU. The
  // demand is sticky across small-N invocations that cannot profile.
  if (Monitor.recoveries() != LastSeenRecoveries) {
    LastSeenRecoveries = Monitor.recoveries();
    PendingReadmitReprofile = true;
  }

  double GpuProfileSize = Config.GpuProfileSize > 0.0
                              ? Config.GpuProfileSize
                              : Proc.spec().defaultGpuProfileSize();

  double MinProfileIters = Config.MinProfileIters > 0.0
                               ? Config.MinProfileIters
                               : GpuProfileSize / 4.0;

  double Alpha = 0.0;
  double Nrem = Iterations;
  bool ProfileHang = false;
  const KernelRecord *Known = History.lookup(Kernel.Id);

  // Periodic re-profiling for kernels whose behaviour drifts over time
  // (Section 3.1: "we repeat profiling step since our online profiling
  // has low overhead").
  bool ReprofileDue =
      Config.ReprofileEveryInvocations > 0 && Known &&
      Known->Invocations >= Config.ReprofileEveryInvocations &&
      Known->Invocations % Config.ReprofileEveryInvocations == 0 &&
      Iterations >= GpuProfileSize;
  if (PendingReadmitReprofile && Iterations >= GpuProfileSize) {
    Outcome.GpuReadmitted = true;
    ReprofileDue = true;
    PendingReadmitReprofile = false;
  }

  if (Known && Known->Alpha.hasValue() && !ReprofileDue &&
      (Known->Confident || Iterations < GpuProfileSize)) {
    // Steps 2-4: multiple invocations of f reuse the learned ratio.
    Alpha = Known->Alpha.value();
    Outcome.Class = Known->Class;
  } else if (Iterations < GpuProfileSize) {
    // Steps 6-10: not enough parallelism to fill the GPU — run this
    // invocation on the multicore CPU alone. The kernel is not pinned:
    // a later invocation large enough to fill the GPU still profiles
    // (graph kernels routinely open with a tiny frontier).
    runPartitioned(Proc, Kernel, Iterations, /*Alpha=*/0.0);
    KernelRecord &Record = History.obtain(Kernel.Id);
    Record.CpuOnly = true;
    ++Record.Invocations;
    Outcome.CpuOnlyFastPath = true;
    Outcome.Seconds = Proc.now() - Start;
    return Outcome;
  } else {
    // Steps 11-22: repeat profiling for half of the iterations. The
    // measurements fold into the kernel's record, so a kernel whose
    // first large invocation starved one device (a growing BFS frontier
    // barely above GPU_PROFILE_SIZE) keeps refining across invocations
    // until both devices have been properly observed.
    Outcome.Profiled = true;
    OnlineProfiler Profiler(Proc, GpuProfileSize);
    Profiler.setWatchdogPollSec(Config.Health.WatchdogPollSec);
    KernelRecord &Record = History.obtain(Kernel.Id);
    double ProfileFloor = Iterations * Config.ProfileFraction;
    while (Nrem > ProfileFloor) {
      ProfileSample Sample = Profiler.profileOnce(Kernel, Nrem);
      ++Outcome.ProfileRepetitions;
      if (Sample.GpuLaunchFailed) {
        // The driver refused the profiling enqueue. Stop measuring; the
        // remainder execution below retries with backoff and degrades
        // if the device stays unavailable.
        Monitor.noteLaunchFailure(Proc.now());
        ++Outcome.LaunchRetries;
        break;
      }
      if (Sample.GpuHung) {
        // Quarantine the device and discard the repetition: a hung
        // chunk's near-zero "throughput" is a property of the fault,
        // not the kernel, and must not poison table G. The remainder
        // runs CPU-alone.
        Monitor.noteHang(Proc.now());
        Outcome.HangDetected = true;
        ProfileHang = true;
        Alpha = 0.0;
        break;
      }
      if (Sample.GpuIterations > 0.0)
        Monitor.noteGpuSuccess(Proc.now());
      if (Sample.ElapsedSeconds <= 0.0)
        break;
      Record.Sample.accumulate(Sample);
      if (Record.Sample.CpuThroughput <= 0.0 &&
          Record.Sample.GpuThroughput <= 0.0)
        break;

      // Steps 17-19: classify and pick the matching power curve.
      Outcome.Class =
          Profiler.classify(Record.Sample, Nrem, Config.Thresholds);
      const PowerCurve &Curve = Curves.curveFor(Outcome.Class);

      // Step 20: minimize OBJ over the alpha grid. Profiling may have
      // consumed every iteration (small invocations); the argmin of
      // P(a)*T(a)^k is independent of N, so clamping N away from zero
      // keeps the objective non-degenerate without changing the answer.
      TimeModel Model(Record.Sample.CpuThroughput,
                      Record.Sample.GpuThroughput);
      AlphaSearchConfig Search;
      Search.Step = Config.AlphaStep;
      Search.Refine = Config.RefineAlpha;
      Alpha = chooseAlpha(Model, Curve, Objective, std::max(Nrem, 1.0),
                          Search)
                  .Alpha;
    }
    if (!Record.Confident &&
        Record.Sample.CpuIterations >= MinProfileIters &&
        Record.Sample.GpuIterations >= MinProfileIters) {
      // First trustworthy measurement: discard the provisional alphas
      // accumulated while one device was starved of observations.
      Record.Confident = true;
      Record.Alpha = SampleWeightedAlpha();
    }
  }

  // Steps 23-25: execute the remainder at the chosen split, optionally
  // telling the governor what is coming (future-work extension). The
  // resilient primitive handles launch retries, hang detection, and
  // quarantine-stranding; on a healthy platform it is exactly
  // runPartitioned.
  if (Nrem > 0.0) {
    if (Config.PcuHints)
      Proc.pcu().hintUpcomingSplit(Alpha);
    PartitionOutcome Partition =
        runPartitionedResilient(Proc, Monitor, Kernel, Nrem, Alpha);
    Outcome.LaunchRetries += Partition.LaunchRetries;
    Outcome.HangDetected = Outcome.HangDetected || Partition.HangDetected;
    Outcome.GpuQuarantined =
        Outcome.GpuQuarantined || Partition.QuarantineSkipped;
  }

  // Step 26: sample-weighted accumulation across invocations. Only
  // freshly computed alphas are samples; a table-G reuse feeds back the
  // accumulator's own value and must not inflate its weight. A
  // profiling round ended by a hang produced a fault artifact, not a
  // kernel property, and is kept out of table G.
  KernelRecord &Record = History.obtain(Kernel.Id);
  if (Outcome.Profiled && !ProfileHang)
    Record.Alpha.addSample(Alpha, std::max(Nrem, 1.0));
  Record.Class = Outcome.Class;
  ++Record.Invocations;

  Outcome.AlphaUsed = Alpha;
  Outcome.Seconds = Proc.now() - Start;
  return Outcome;
}
