//===-- ecas/core/HistoryCodec.h - Table-G wire primitives -----*- C++ -*-===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Little-endian primitive encoding shared by the two durable table-G
/// formats — snapshots (HistorySnapshot) and the write-ahead journal
/// (HistoryJournal) — so both sides of the durability contract agree on
/// byte order and float representation by construction.
///
//===----------------------------------------------------------------------===//

#ifndef ECAS_CORE_HISTORYCODEC_H
#define ECAS_CORE_HISTORYCODEC_H

#include <cstdint>
#include <cstring>
#include <string>

namespace ecas::history_codec {

inline void putU32(std::string &Out, uint32_t V) {
  for (int I = 0; I != 4; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xffu));
}

inline void putU64(std::string &Out, uint64_t V) {
  for (int I = 0; I != 8; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xffu));
}

inline void putF64(std::string &Out, double V) {
  uint64_t Bits;
  static_assert(sizeof(Bits) == sizeof(V));
  std::memcpy(&Bits, &V, sizeof(Bits));
  putU64(Out, Bits);
}

inline uint32_t getU32(const unsigned char *P) {
  uint32_t V = 0;
  for (int I = 0; I != 4; ++I)
    V |= static_cast<uint32_t>(P[I]) << (8 * I);
  return V;
}

inline uint64_t getU64(const unsigned char *P) {
  uint64_t V = 0;
  for (int I = 0; I != 8; ++I)
    V |= static_cast<uint64_t>(P[I]) << (8 * I);
  return V;
}

inline double getF64(const unsigned char *P) {
  uint64_t Bits = getU64(P);
  double V;
  std::memcpy(&V, &Bits, sizeof(V));
  return V;
}

} // namespace ecas::history_codec

#endif // ECAS_CORE_HISTORYCODEC_H
