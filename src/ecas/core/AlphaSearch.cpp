//===-- ecas/core/AlphaSearch.cpp - Offload-ratio optimization ------------===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// chooseAlpha is the legacy fixed-frequency entry point, kept as a thin
// delegating wrapper over chooseOperatingPoint (the PR-4 no-flag-day
// playbook). A single identity-scale view makes the joint search reuse
// the caller's TimeModel bit-for-bit and walk the same alpha grid in
// the same order, so existing callers see bit-identical results.
//
//===----------------------------------------------------------------------===//

#include "ecas/core/AlphaSearch.h"

#include "ecas/core/OperatingPoint.h"

using namespace ecas;

AlphaChoice ecas::chooseAlpha(const TimeModel &Model, const PowerCurve &Curve,
                              const Metric &Objective, double Iterations,
                              const AlphaSearchConfig &Config) {
  PStateView View;
  View.Curve = &Curve;
  View.CpuFreqScale = 1.0;
  View.GpuFreqScale = 1.0;

  OperatingPointSearchConfig Joint;
  Joint.Step = Config.Step;
  Joint.Refine = Config.Refine;
  Joint.RefineTolerance = Config.RefineTolerance;
  Joint.Policy = SchedulingPolicy::MinimizeMetric;
  Joint.GridOut = Config.GridOut;

  Decision Chosen =
      chooseOperatingPoint(Model, &View, 1, Objective, Iterations, Joint);

  AlphaChoice Choice;
  Choice.Alpha = Chosen.Point.Alpha;
  Choice.PredictedMetric = Chosen.PredictedMetric;
  Choice.PredictedSeconds = Chosen.PredictedSeconds;
  Choice.PredictedWatts = Chosen.PredictedWatts;
  Choice.Evaluations = Chosen.Evaluations;
  return Choice;
}
