//===-- ecas/core/AlphaSearch.cpp - Offload-ratio optimization ------------===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ecas/core/AlphaSearch.h"

#include "ecas/math/Minimize.h"
#include "ecas/support/Assert.h"

#include <cmath>

using namespace ecas;

AlphaChoice ecas::chooseAlpha(const TimeModel &Model, const PowerCurve &Curve,
                              const Metric &Objective, double Iterations,
                              const AlphaSearchConfig &Config) {
  ECAS_CHECK(Iterations >= 0.0, "iteration count cannot be negative");
  ECAS_CHECK(Config.Step > 0.0 && Config.Step <= 1.0,
             "alpha step must lie in (0, 1]");

  if (Config.GridOut)
    Config.GridOut->clear();
  auto ObjectiveAt = [&](double Alpha) {
    double Seconds = Model.totalTime(Iterations, Alpha);
    double Watts = Curve.powerAt(Alpha);
    double Value = Objective.evaluate(Watts, Seconds);
    // A degenerate model point (dead device, overflowed product) must
    // lose to every well-defined grid cell, and a NaN would poison the
    // min-comparison chain below; map both to a huge finite penalty.
    Value = std::isfinite(Value) ? Value : 1e300;
    if (Config.GridOut) // observability only: null on the decision path
      Config.GridOut->emplace_back(Alpha, Value); // ecas-hotpath: allow(alloc)
    return Value;
  };

  MinResult Min =
      Config.Refine
          ? minimizeGridThenRefine(ObjectiveAt, 0.0, 1.0, Config.Step,
                                   Config.RefineTolerance)
          : minimizeOnGrid(ObjectiveAt, 0.0, 1.0, Config.Step);

  AlphaChoice Choice;
  Choice.Alpha = Min.ArgMin;
  Choice.PredictedMetric = Min.Value;
  Choice.PredictedSeconds = Model.totalTime(Iterations, Min.ArgMin);
  Choice.PredictedWatts = Curve.powerAt(Min.ArgMin);
  Choice.Evaluations = Min.Evaluations;
  return Choice;
}
