//===-- ecas/core/HistoryJournal.cpp - Table-G write-ahead journal --------===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ecas/core/HistoryJournal.h"

#include "ecas/core/HistoryCodec.h"
#include "ecas/core/HistorySnapshot.h"
#include "ecas/fault/StorageFaults.h"
#include "ecas/support/AtomicFile.h"
#include "ecas/support/Crc32.h"
#include "ecas/support/CrashPoint.h"

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>

#ifndef _WIN32
#include <fcntl.h>
#include <unistd.h>
#endif

using namespace ecas;
using namespace ecas::history_codec;

namespace {

constexpr char Magic[8] = {'E', 'C', 'A', 'S', 'J', 'R', 'N', 'L'};
constexpr size_t HeaderBytes = 24;
constexpr size_t FrameHeaderBytes = 8;
/// Fixed part of a record payload (everything but the samples). v2
/// inserted a u32 P-state between the alpha weight and the sample
/// count; v1 frames lack it.
constexpr size_t RecordFixedBytesV1 = 8 + 4 + 4 + 1 + 4 + 8 + 8 + 2;
constexpr size_t RecordFixedBytes = RecordFixedBytesV1 + 4;
constexpr size_t SampleBytes = 9 * 8 + 2;
/// Structural sanity bound: a frame longer than this cannot have been
/// written by us, so a length field above it marks the tear.
constexpr size_t MaxFrameBytes = 1u << 20;
/// Replay-loop bound for the counter deltas; live merges write 0 or 1.
constexpr uint32_t MaxCounterDelta = 1u << 20;

constexpr uint8_t FlagHasAlphaSample = 1u << 0;
constexpr uint8_t FlagSetCpuOnly = 1u << 1;
constexpr uint8_t FlagBecameConfident = 1u << 2;
constexpr uint8_t FlagHasClass = 1u << 3;
constexpr uint8_t FlagHasPState = 1u << 4; // v2+
constexpr uint8_t FlagsKnownV1 = FlagHasAlphaSample | FlagSetCpuOnly |
                                 FlagBecameConfident | FlagHasClass;
constexpr uint8_t FlagsKnown = FlagsKnownV1 | FlagHasPState;
/// Semantic bound for a replayed P-state (mirrors core/OperatingPoint.h
/// kMaxPStates without pulling the decision core into the codec).
constexpr uint32_t MaxPStateIndex = 8;

void encodeSample(std::string &Out, const ProfileSample &S) {
  putF64(Out, S.CpuThroughput);
  putF64(Out, S.GpuThroughput);
  putF64(Out, S.CpuIterations);
  putF64(Out, S.GpuIterations);
  putF64(Out, S.ElapsedSeconds);
  putF64(Out, S.CpuBusySeconds);
  putF64(Out, S.GpuBusySeconds);
  putF64(Out, S.MissPerLoadStore);
  putF64(Out, S.InstructionsRetired);
  Out.push_back(static_cast<char>(S.GpuLaunchFailed ? 1 : 0));
  Out.push_back(static_cast<char>(S.GpuHung ? 1 : 0));
}

ProfileSample decodeSample(const unsigned char *P) {
  ProfileSample S;
  S.CpuThroughput = getF64(P);
  S.GpuThroughput = getF64(P + 8);
  S.CpuIterations = getF64(P + 16);
  S.GpuIterations = getF64(P + 24);
  S.ElapsedSeconds = getF64(P + 32);
  S.CpuBusySeconds = getF64(P + 40);
  S.GpuBusySeconds = getF64(P + 48);
  S.MissPerLoadStore = getF64(P + 56);
  S.InstructionsRetired = getF64(P + 64);
  S.GpuLaunchFailed = P[72] != 0;
  S.GpuHung = P[73] != 0;
  return S;
}

std::string encodeDeltaPayload(const HistoryDeltaRecord &Rec) {
  std::string Out;
  Out.reserve(RecordFixedBytes + Rec.Samples.size() * SampleBytes);
  putU64(Out, Rec.Key);
  putU32(Out, Rec.InvocationsDelta);
  putU32(Out, Rec.QuarantinedDelta);
  uint8_t Flags = 0;
  if (Rec.HasAlphaSample)
    Flags |= FlagHasAlphaSample;
  if (Rec.SetCpuOnly)
    Flags |= FlagSetCpuOnly;
  if (Rec.BecameConfident)
    Flags |= FlagBecameConfident;
  if (Rec.HasClass)
    Flags |= FlagHasClass;
  if (Rec.HasPState)
    Flags |= FlagHasPState;
  Out.push_back(static_cast<char>(Flags));
  putU32(Out, Rec.ClassIndex);
  putF64(Out, Rec.AlphaValue);
  putF64(Out, Rec.AlphaWeight);
  putU32(Out, Rec.PState);
  uint16_t Count = static_cast<uint16_t>(Rec.Samples.size());
  Out.push_back(static_cast<char>(Count & 0xffu));
  Out.push_back(static_cast<char>((Count >> 8) & 0xffu));
  for (const ProfileSample &S : Rec.Samples)
    encodeSample(Out, S);
  return Out;
}

/// Structural + semantic validation, so a CRC-colliding corruption (or
/// a handcrafted file) degrades to a truncated scan instead of tripping
/// the assertions inside SampleWeightedAlpha::addSample during replay.
bool decodeDeltaPayload(std::string_view Payload, HistoryDeltaRecord &Rec,
                        uint32_t Version) {
  size_t FixedBytes = Version >= 2 ? RecordFixedBytes : RecordFixedBytesV1;
  if (Payload.size() < FixedBytes)
    return false;
  const auto *P = reinterpret_cast<const unsigned char *>(Payload.data());
  Rec.Key = getU64(P);
  if (Rec.Key == 0)
    return false;
  Rec.InvocationsDelta = getU32(P + 8);
  Rec.QuarantinedDelta = getU32(P + 12);
  if (Rec.InvocationsDelta > MaxCounterDelta ||
      Rec.QuarantinedDelta > MaxCounterDelta)
    return false;
  uint8_t Flags = P[16];
  if (Flags & ~(Version >= 2 ? FlagsKnown : FlagsKnownV1))
    return false;
  Rec.HasAlphaSample = (Flags & FlagHasAlphaSample) != 0;
  Rec.SetCpuOnly = (Flags & FlagSetCpuOnly) != 0;
  Rec.BecameConfident = (Flags & FlagBecameConfident) != 0;
  Rec.HasClass = (Flags & FlagHasClass) != 0;
  Rec.HasPState = (Flags & FlagHasPState) != 0;
  Rec.ClassIndex = getU32(P + 17);
  if (Rec.HasClass && Rec.ClassIndex >= WorkloadClass::NumClasses)
    return false;
  Rec.AlphaValue = getF64(P + 21);
  Rec.AlphaWeight = getF64(P + 29);
  if (Rec.HasAlphaSample &&
      (!std::isfinite(Rec.AlphaValue) || Rec.AlphaValue < 0.0 ||
       Rec.AlphaValue > 1.0 || !std::isfinite(Rec.AlphaWeight) ||
       Rec.AlphaWeight < 0.0))
    return false;
  Rec.PState = Version >= 2 ? getU32(P + 37) : 0;
  if (Rec.HasPState && Rec.PState >= MaxPStateIndex)
    return false;
  size_t CountOff = FixedBytes - 2;
  uint16_t Count = static_cast<uint16_t>(P[CountOff]) |
                   static_cast<uint16_t>(P[CountOff + 1]) << 8;
  if (Payload.size() != FixedBytes + size_t{Count} * SampleBytes)
    return false;
  Rec.Samples.clear();
  Rec.Samples.reserve(Count);
  for (uint16_t I = 0; I != Count; ++I)
    Rec.Samples.push_back(
        decodeSample(P + FixedBytes + size_t{I} * SampleBytes));
  return true;
}

} // namespace

void ecas::applyDeltaRecord(KernelHistory &History,
                            const HistoryDeltaRecord &Rec) {
  // Mirror of the live merge closure in EasScheduler::executeAdmitted —
  // same operations, same order — so replay onto the same starting
  // state reproduces the same record bit-for-bit.
  if (!Rec.Samples.empty() || Rec.BecameConfident || Rec.HasAlphaSample ||
      Rec.SetCpuOnly || Rec.HasClass || Rec.HasPState)
    History.update(Rec.Key, [&](KernelRecord &R) {
      for (const ProfileSample &S : Rec.Samples)
        R.Sample.accumulate(S);
      if (Rec.BecameConfident) {
        R.Confident = true;
        R.Alpha = SampleWeightedAlpha();
      }
      if (Rec.HasAlphaSample)
        R.Alpha.addSample(Rec.AlphaValue, Rec.AlphaWeight);
      if (Rec.HasClass)
        R.Class = WorkloadClass::fromIndex(Rec.ClassIndex);
      if (Rec.SetCpuOnly)
        R.CpuOnly = true;
      if (Rec.HasPState)
        R.PState = Rec.PState;
    });
  for (uint32_t I = 0; I != Rec.InvocationsDelta; ++I)
    History.bumpInvocations(Rec.Key);
  for (uint32_t I = 0; I != Rec.QuarantinedDelta; ++I)
    History.bumpQuarantinedRuns(Rec.Key);
}

std::string ecas::encodeJournalHeader(uint64_t Epoch) {
  std::string Out;
  Out.reserve(HeaderBytes);
  Out.append(Magic, sizeof(Magic));
  putU32(Out, HistoryJournalVersion);
  putU64(Out, Epoch);
  putU32(Out, crc32(Out.data() + 8, 12));
  return Out;
}

void ecas::encodeDeltaFrame(std::string &Out, const HistoryDeltaRecord &Rec) {
  std::string Payload = encodeDeltaPayload(Rec);
  putU32(Out, static_cast<uint32_t>(Payload.size()));
  putU32(Out, crc32(Payload.data(), Payload.size()));
  Out += Payload;
}

JournalScan ecas::scanJournal(std::string_view Bytes) {
  JournalScan Scan;
  if (Bytes.size() < HeaderBytes) {
    Scan.Torn = !Bytes.empty();
    Scan.Error = Status::error(ErrCode::Truncated,
                               "journal smaller than its 24-byte header (" +
                                   std::to_string(Bytes.size()) + " bytes)");
    return Scan;
  }
  const auto *P = reinterpret_cast<const unsigned char *>(Bytes.data());
  if (std::memcmp(P, Magic, sizeof(Magic)) != 0) {
    Scan.Torn = true;
    Scan.Error = Status::error(ErrCode::CorruptData,
                               "journal magic mismatch (not a table-G WAL)");
    return Scan;
  }
  uint32_t Version = getU32(P + 8);
  if (Version < 1 || Version > HistoryJournalVersion) {
    Scan.Torn = true;
    Scan.Error = Status::error(ErrCode::VersionMismatch,
                               "journal format v" + std::to_string(Version) +
                                   ", this build reads v1-v" +
                                   std::to_string(HistoryJournalVersion));
    return Scan;
  }
  if (crc32(P + 8, 12) != getU32(P + 20)) {
    Scan.Torn = true;
    Scan.Error =
        Status::error(ErrCode::CorruptData, "journal header CRC mismatch");
    return Scan;
  }
  Scan.HeaderValid = true;
  Scan.Version = Version;
  Scan.Epoch = getU64(P + 12);
  Scan.ValidBytes = HeaderBytes;

  size_t Off = HeaderBytes;
  while (Off < Bytes.size()) {
    if (Bytes.size() - Off < FrameHeaderBytes) {
      Scan.Torn = true;
      Scan.TruncatedRecords = 1;
      Scan.Error = Status::error(
          ErrCode::Truncated, "torn frame header at offset " +
                                  std::to_string(Off) + " (" +
                                  std::to_string(Bytes.size() - Off) +
                                  " trailing bytes)");
      break;
    }
    uint32_t Len = getU32(P + Off);
    uint32_t ExpectedCrc = getU32(P + Off + 4);
    if (Len == 0 || Len > MaxFrameBytes ||
        Bytes.size() - Off - FrameHeaderBytes < Len) {
      Scan.Torn = true;
      Scan.TruncatedRecords = 1;
      Scan.Error = Status::error(
          ErrCode::Truncated, "torn frame at offset " + std::to_string(Off) +
                                  " (declares " + std::to_string(Len) +
                                  " payload bytes)");
      break;
    }
    std::string_view Payload = Bytes.substr(Off + FrameHeaderBytes, Len);
    if (crc32(Payload.data(), Payload.size()) != ExpectedCrc) {
      Scan.Torn = true;
      Scan.TruncatedRecords = 1;
      Scan.Error = Status::error(ErrCode::CorruptData,
                                 "frame CRC mismatch at offset " +
                                     std::to_string(Off));
      break;
    }
    HistoryDeltaRecord Rec;
    if (!decodeDeltaPayload(Payload, Rec, Version)) {
      Scan.Torn = true;
      Scan.TruncatedRecords = 1;
      Scan.Error = Status::error(ErrCode::CorruptData,
                                 "malformed record at offset " +
                                     std::to_string(Off));
      break;
    }
    Scan.Records.push_back(std::move(Rec));
    Off += FrameHeaderBytes + Len;
    Scan.ValidBytes = Off;
  }
  return Scan;
}

const char *ecas::recoveryOutcomeName(RecoveryOutcome Outcome) {
  switch (Outcome) {
  case RecoveryOutcome::Clean:
    return "clean";
  case RecoveryOutcome::Replayed:
    return "replayed";
  case RecoveryOutcome::Truncated:
    return "truncated";
  case RecoveryOutcome::Cold:
    return "cold";
  }
  return "unknown";
}

RecoveryReport ecas::recoverKernelHistory(KernelHistory &History,
                                          const std::string &SnapshotPath,
                                          const std::string &JournalPath,
                                          bool Compact) {
  RecoveryReport Report;
  std::chrono::steady_clock::time_point Start =
      std::chrono::steady_clock::now();

  // Phase 1: the newest valid snapshot (a missing file is a cold start,
  // a corrupt one degrades to cold with the status preserved).
  uint64_t SnapshotEpoch = 0;
  bool SnapshotOk = true;
  bool SnapshotExisted = false;
  {
    std::string Bytes;
    Status Read = readFileBytes(SnapshotPath, Bytes, SnapshotExisted);
    if (!Read) {
      History.clear();
      SnapshotOk = false;
      Report.SnapshotStatus = Read;
    } else if (SnapshotExisted) {
      ErrorOr<size_t> Loaded =
          deserializeKernelHistory(History, Bytes, &SnapshotEpoch);
      if (Loaded) {
        Report.SnapshotRecords = *Loaded;
      } else {
        SnapshotOk = false;
        SnapshotEpoch = 0;
        Report.SnapshotStatus = Status::error(
            Loaded.status().code(),
            SnapshotPath + ": " + Loaded.status().message());
      }
    } else {
      History.clear();
    }
  }

  // Phase 2: replay the journal — unless its epoch says the snapshot
  // already contains it (a crash between compaction's snapshot write
  // and journal reset leaves exactly that state; replaying would apply
  // every delta twice).
  uint64_t JournalEpoch = SnapshotEpoch;
  bool JournalTorn = false;
  bool JournalExisted = false;
  if (!JournalPath.empty()) {
    std::string Bytes;
    Status Read = readFileBytes(JournalPath, Bytes, JournalExisted);
    if (!Read) {
      Report.JournalStatus = Read;
      JournalTorn = true;
    } else if (JournalExisted && !Bytes.empty()) {
      JournalScan Scan = scanJournal(Bytes);
      if (Scan.HeaderValid && Scan.Epoch < SnapshotEpoch) {
        Report.StaleJournalSkipped = true;
      } else {
        if (Scan.HeaderValid)
          JournalEpoch = std::max(JournalEpoch, Scan.Epoch);
        for (const HistoryDeltaRecord &Rec : Scan.Records)
          applyDeltaRecord(History, Rec);
        Report.ReplayedRecords = Scan.Records.size();
        Report.TruncatedRecords = Scan.TruncatedRecords;
        JournalTorn = Scan.Torn;
        if (!Scan.Error.ok())
          Report.JournalStatus = Status::error(
              Scan.Error.code(), JournalPath + ": " + Scan.Error.message());
      }
    }
  }
  ECAS_CRASHPOINT("recovery.after-replay");

  // Classify before compaction: compaction failures are reported via
  // CompactStatus, not by downgrading what recovery found.
  bool LostData = JournalTorn || (SnapshotExisted && !SnapshotOk);
  if (LostData)
    Report.Outcome = RecoveryOutcome::Truncated;
  else if (Report.ReplayedRecords > 0)
    Report.Outcome = RecoveryOutcome::Replayed;
  else if (SnapshotExisted)
    Report.Outcome = RecoveryOutcome::Clean;
  else
    Report.Outcome = RecoveryOutcome::Cold;

  // Phase 3: compact — fresh snapshot at the next epoch, then (and only
  // then) reset the journal to match. The ordering is the crash-safety
  // argument: die between the two writes and the journal is stale, not
  // double-applied.
  Report.Epoch = std::max(SnapshotEpoch, JournalEpoch);
  if (Compact) {
    Report.Epoch += 1;
    Report.CompactStatus =
        saveKernelHistory(History, SnapshotPath, Report.Epoch);
    ECAS_CRASHPOINT("recovery.after-snapshot");
    if (Report.CompactStatus.ok() && !JournalPath.empty())
      Report.CompactStatus =
          writeFileAtomic(JournalPath, encodeJournalHeader(Report.Epoch));
    ECAS_CRASHPOINT("recovery.after-reset");
  }

  Report.Seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - Start)
                       .count();
  return Report;
}

//===----------------------------------------------------------------------===//
// HistoryJournal — the append side
//===----------------------------------------------------------------------===//

ErrorOr<std::unique_ptr<HistoryJournal>>
HistoryJournal::open(JournalOptions Options, uint64_t Epoch) {
  if (Options.Path.empty())
    return Status::error(ErrCode::InvalidArgument, "empty journal path");
  if (Options.GroupCommitRecords == 0)
    return Status::error(ErrCode::InvalidArgument,
                         "zero group-commit record threshold (1 means "
                         "per-record commit)");
#ifdef _WIN32
  return Status::error(ErrCode::DeviceUnavailable,
                       "journaling needs POSIX file IO");
#else
  std::string Existing;
  bool Existed = false;
  if (Status S = readFileBytes(Options.Path, Existing, Existed); !S)
    return S;
  size_t KeepBytes = 0;
  if (Existed && !Existing.empty()) {
    JournalScan Scan = scanJournal(Existing);
    if (!Scan.HeaderValid)
      return Status::error(ErrCode::CorruptData,
                           Options.Path + ": " + Scan.Error.message() +
                               " (recover before opening)");
    if (Scan.Version != HistoryJournalVersion)
      return Status::error(
          ErrCode::VersionMismatch,
          Options.Path + ": journal format v" + std::to_string(Scan.Version) +
              " cannot be appended to by a v" +
              std::to_string(HistoryJournalVersion) +
              " writer (recover before opening)");
    if (Scan.Epoch != Epoch)
      return Status::error(
          ErrCode::VersionMismatch,
          Options.Path + ": journal epoch " + std::to_string(Scan.Epoch) +
              " does not match recovery epoch " + std::to_string(Epoch) +
              " (recover before opening)");
    // A torn tail from the previous crash must not bury new appends
    // behind unparseable bytes: drop it, keep the valid prefix.
    KeepBytes = Scan.ValidBytes;
  }

  std::unique_ptr<HistoryJournal> Journal(
      new HistoryJournal(std::move(Options), Epoch));
  const std::string &Path = Journal->Options.Path;
  LockGuard Io(Journal->IoMutex);
  if (!Existed || Existing.empty()) {
    Journal->Fd = ::open(Path.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
    if (Journal->Fd < 0)
      return Status::error(ErrCode::IoError, "cannot create " + Path + ": " +
                                                 std::strerror(errno));
    std::string Header = encodeJournalHeader(Epoch);
    if (::write(Journal->Fd, Header.data(), Header.size()) !=
        static_cast<ssize_t>(Header.size()))
      return Status::error(ErrCode::IoError, "short header write to " + Path);
    if (::fsync(Journal->Fd) != 0)
      return Status::error(ErrCode::IoError, "fsync " + Path + ": " +
                                                 std::strerror(errno));
    // The file *name* must survive a crash too, or recovery finds a
    // snapshot with no journal and cannot tell loss from first-boot.
    if (Status S = syncParentDir(Path); !S)
      return S;
  } else {
    Journal->Fd = ::open(Path.c_str(), O_WRONLY, 0644);
    if (Journal->Fd < 0)
      return Status::error(ErrCode::IoError, "cannot open " + Path + ": " +
                                                 std::strerror(errno));
    if (::ftruncate(Journal->Fd, static_cast<off_t>(KeepBytes)) != 0)
      return Status::error(ErrCode::IoError, "truncate " + Path + ": " +
                                                 std::strerror(errno));
    if (::lseek(Journal->Fd, 0, SEEK_END) < 0)
      return Status::error(ErrCode::IoError, "seek " + Path + ": " +
                                                 std::strerror(errno));
  }
  return Journal;
#endif
}

HistoryJournal::~HistoryJournal() {
  (void)flush();
#ifndef _WIN32
  LockGuard Io(IoMutex);
  if (Fd >= 0)
    ::close(Fd);
  Fd = -1;
#endif
}

// Hot-path exception (DESIGN.md §14): journaling is opt-in durability.
// enqueue() buffers the encoded frame under the leaf buffer lock and
// never touches the file; allocation is amortized into the pending
// batch. Invocations without a journal never get here (journalRecord
// gates on the Journal pointer).
// ecas-hotpath: allow(alloc, lock)
void HistoryJournal::enqueue(const HistoryDeltaRecord &Rec) {
  if (Rec.empty())
    return;
  std::string Frame;
  encodeDeltaFrame(Frame, Rec);
  {
    LockGuard Lock(BufferMutex);
    Pending += Frame;
    ++PendingRecords;
  }
  AppendCount.fetch_add(1, std::memory_order_relaxed);
  AppendedBytes.fetch_add(Frame.size(), std::memory_order_relaxed);
  if (Metrics.Appends)
    Metrics.Appends->add();
  if (Metrics.Bytes)
    Metrics.Bytes->add(Frame.size());
}

// Hot-path exception (DESIGN.md §14): the group-commit flush is the
// documented blocking cost of opt-in durability — it takes the IO
// mutex and calls write/fsync when the pending batch crosses the
// group-commit threshold. Journal-less schedulers never reach it.
// ecas-hotpath: allow(io, alloc, lock, extern-call)
Status HistoryJournal::maybeFlush() {
  {
    LockGuard Lock(BufferMutex);
    if (PendingRecords < Options.GroupCommitRecords &&
        Pending.size() < Options.GroupCommitBytes)
      return Status::success();
  }
  return flush();
}

Status HistoryJournal::flush() {
  LockGuard Io(IoMutex);
  return flushLocked();
}

Status HistoryJournal::flushLocked() {
#ifdef _WIN32
  return Status::success();
#else
  std::string Batch;
  {
    LockGuard Lock(BufferMutex);
    Batch.swap(Pending);
    PendingRecords = 0;
  }
  if (Batch.empty())
    return Status::success();
  if (Fd < 0)
    return Status::error(ErrCode::IoError, "journal file is closed");
  ECAS_CRASHPOINT("journal.flush.before-write");
  // An injected fault here is *silent*: a short write models the pages
  // a power cut never committed (the torn tail recovery truncates at),
  // a bit flip models media corruption (the frame CRC catches it).
  if (StorageFaultInjector *Injector = storageFaultInjector())
    Injector->mangle(Batch);
  size_t Written = 0;
  while (Written < Batch.size()) {
    ssize_t N = ::write(Fd, Batch.data() + Written, Batch.size() - Written);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return Status::error(ErrCode::IoError,
                           "journal write to " + Options.Path + ": " +
                               std::strerror(errno));
    }
    Written += static_cast<size_t>(N);
  }
  ECAS_CRASHPOINT("journal.flush.after-write");
  if (Options.SyncOnFlush && ::fsync(Fd) != 0)
    return Status::error(ErrCode::IoError, "fsync " + Options.Path + ": " +
                                               std::strerror(errno));
  ECAS_CRASHPOINT("journal.flush.after-sync");
  FlushCount.fetch_add(1, std::memory_order_relaxed);
  return Status::success();
#endif
}

Status HistoryJournal::reset(uint64_t NewEpoch) {
#ifdef _WIN32
  return Status::success();
#else
  LockGuard Io(IoMutex);
  {
    // Compaction committed everything enqueued before it read the
    // table; anything still pending was enqueued concurrently and is in
    // the table the new snapshot serialized, so dropping it is correct
    // (replaying it would double-apply).
    LockGuard Lock(BufferMutex);
    Pending.clear();
    PendingRecords = 0;
  }
  if (Fd >= 0)
    ::close(Fd);
  Fd = -1;
  if (Status S = writeFileAtomic(Options.Path, encodeJournalHeader(NewEpoch));
      !S)
    return S;
  Fd = ::open(Options.Path.c_str(), O_WRONLY | O_APPEND, 0644);
  if (Fd < 0)
    return Status::error(ErrCode::IoError, "cannot reopen " + Options.Path +
                                               ": " + std::strerror(errno));
  Epoch.store(NewEpoch, std::memory_order_release);
  return Status::success();
#endif
}

HistoryJournal::Stats HistoryJournal::stats() const {
  Stats S;
  S.Appends = AppendCount.load(std::memory_order_relaxed);
  S.AppendedBytes = AppendedBytes.load(std::memory_order_relaxed);
  S.Flushes = FlushCount.load(std::memory_order_relaxed);
  return S;
}
