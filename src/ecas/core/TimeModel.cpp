//===-- ecas/core/TimeModel.cpp - Analytical T(alpha) model ---------------===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ecas/core/TimeModel.h"

#include "ecas/support/Assert.h"

#include <algorithm>
#include <cmath>

using namespace ecas;

TimeModel::TimeModel(double CpuRate, double GpuRate)
    : Rc(CpuRate), Rg(GpuRate) {
  // Throughputs come from measurement, and measurements on a degraded
  // platform can be zero, negative garbage, or NaN (a profiling window
  // with no completed iterations, glitched counters). The model must
  // stay total over such inputs — every query below answers with a
  // clamped-but-finite or 1e30 sentinel instead of aborting — so a
  // fault during profiling degrades the schedule rather than the
  // process. Note the NaN ordering trap: ECAS_CHECK(Rc >= 0.0) would
  // *pass* sanitized garbage through, because NaN fails every
  // comparison; explicit isfinite tests are required.
  if (!std::isfinite(Rc) || Rc < 0.0)
    Rc = 0.0;
  if (!std::isfinite(Rg) || Rg < 0.0)
    Rg = 0.0;
}

double TimeModel::alphaPerf() const {
  // Both devices dead: no finishing-together ratio exists; 0 (all-CPU)
  // is the conservative answer.
  if (Rc + Rg <= 0.0)
    return 0.0;
  return Rg / (Rc + Rg);
}

double TimeModel::combinedTime(double N, double Alpha) const {
  ECAS_CHECK(Alpha >= 0.0 && Alpha <= 1.0, "alpha must be in [0,1]");
  ECAS_CHECK(N >= 0.0, "iteration count cannot be negative");
  double CpuSide = Rc > 0.0 ? (1.0 - Alpha) * N / Rc : 1e30;
  double GpuSide = Rg > 0.0 ? Alpha * N / Rg : 1e30;
  // With one side empty the combined phase is empty as well.
  if (Alpha == 0.0 || Alpha == 1.0)
    return 0.0;
  return std::min(CpuSide, GpuSide);
}

double TimeModel::remainingIters(double N, double Alpha) const {
  double Tcg = combinedTime(N, Alpha);
  return std::max(0.0, N - Tcg * (Rc + Rg));
}

static double scaleRate(double Rate, double Scale, double Beta) {
  // Degenerate scales (non-positive, NaN) come from malformed P-state
  // tables; leave the rate unscaled rather than fabricating throughput.
  if (!std::isfinite(Scale) || Scale <= 0.0)
    return Rate;
  double Denom = (1.0 - Beta) + Beta * Scale;
  if (Denom <= 0.0)
    return Rate;
  return Rate * Scale / Denom;
}

TimeModel TimeModel::scaledTo(double CpuScale, double GpuScale,
                              double MemBoundFraction) const {
  double Beta = MemBoundFraction;
  if (!std::isfinite(Beta))
    Beta = 0.0;
  Beta = std::min(1.0, std::max(0.0, Beta));
  return TimeModel(scaleRate(Rc, CpuScale, Beta),
                   scaleRate(Rg, GpuScale, Beta));
}

double TimeModel::totalTime(double N, double Alpha) const {
  double Tcg = combinedTime(N, Alpha);
  double Nrem = remainingIters(N, Alpha);
  if (Nrem <= 0.0)
    return Tcg;
  // Eq. 4: the tail runs on the device whose share takes longer. Using
  // the side completion times (rather than comparing alpha against
  // alpha_PERF) also handles the degenerate endpoints where one device
  // has no work or no throughput.
  double CpuSide = Alpha < 1.0 ? ((1.0 - Alpha) * N) / std::max(Rc, 1e-300)
                               : 0.0;
  double GpuSide = Alpha > 0.0 ? (Alpha * N) / std::max(Rg, 1e-300) : 0.0;
  double TailRate = GpuSide >= CpuSide ? Rg : Rc;
  if (TailRate <= 0.0)
    return 1e30;
  return Tcg + Nrem / TailRate;
}
