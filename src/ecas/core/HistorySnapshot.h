//===-- ecas/core/HistorySnapshot.h - Durable table-G snapshots *- C++ -*-===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Versioned binary persistence for the table G, making the paper's
/// one-time-characterization + accumulated-history design (Fig. 7) hold
/// across process restarts: learned sample-weighted alphas survive a
/// crash and a restarted scheduler resumes from the last good snapshot.
///
/// File format (all integers and doubles little-endian):
///
///   offset  size  field
///   0       8     magic "ECASTBLG"
///   8       4     u32 format version (currently 3)
///   12      8     u64 record count
///   20      4     u32 CRC-32 of the payload
///   24      ...   payload: u64 journal epoch, then count x 116-byte
///                 records (v1 payloads have no epoch field and imply
///                 epoch 0; v1/v2 records are 112 bytes, lacking the
///                 trailing P-state; this build still reads both)
///
/// Each record: u64 kernel id; f64 alpha weighted-sum, f64 alpha total
/// weight; u32 class index, u8 cpu-only, u8 confident, u8 launch-failed,
/// u8 hung; u32 invocations, u32 quarantined runs; then the accumulated
/// ProfileSample as 9 f64 (cpu/gpu throughput, cpu/gpu iterations,
/// elapsed, cpu/gpu busy seconds, miss ratio, instructions); v3 appends
/// the chosen P-state as a trailing u32 (v1/v2 records decode to
/// P-state 0, full speed — exactly what those builds ran at).
///
/// The epoch ties a snapshot to its write-ahead journal (DESIGN.md
/// §13): a snapshot at epoch E plus a journal at epoch E reproduce the
/// live table; a journal whose epoch is below the snapshot's has
/// already been compacted in and must not be replayed twice.
///
/// Writes go through support/AtomicFile (temp + fsync + rename +
/// parent-dir fsync), so a crash mid-write leaves either the previous
/// snapshot or the new one — never a torn destination, and never a
/// rename the filesystem forgets. Loads verify magic, version, declared
/// size, and CRC; any mismatch returns a recoverable Status and the
/// caller degrades to a cold table instead of aborting.
///
//===----------------------------------------------------------------------===//

#ifndef ECAS_CORE_HISTORYSNAPSHOT_H
#define ECAS_CORE_HISTORYSNAPSHOT_H

#include "ecas/core/KernelHistory.h"
#include "ecas/support/Error.h"

#include <string>
#include <string_view>

namespace ecas {

/// Current snapshot format version. v2 added the journal epoch as the
/// first payload field; v3 widened each record by a trailing u32
/// P-state for the joint (alpha, f) decision core. v1 and v2 files
/// remain readable (epoch 0 for v1, P-state 0 for both).
inline constexpr uint32_t HistorySnapshotVersion = 3;

/// Serializes a consistent copy of \p History into the snapshot byte
/// format (header + CRC-checked payload), stamped with \p Epoch.
std::string serializeKernelHistory(const KernelHistory &History,
                                   uint64_t Epoch = 0);

/// Parses \p Bytes into \p History, replacing its contents. On any
/// error (bad magic, truncation, version mismatch, CRC failure) the
/// table is left cleared — a cold start — and the Status says why.
/// \p EpochOut, when non-null, receives the stored journal epoch
/// (0 for v1 files). \returns the number of records restored.
ErrorOr<size_t> deserializeKernelHistory(KernelHistory &History,
                                         std::string_view Bytes,
                                         uint64_t *EpochOut = nullptr);

/// Atomically writes \p History to \p Path at \p Epoch (temp file +
/// fsync + rename + parent-dir fsync via support/AtomicFile).
Status saveKernelHistory(const KernelHistory &History,
                         const std::string &Path, uint64_t Epoch = 0);

/// Loads \p Path into \p History. A missing file is a cold start, not an
/// error: returns 0 records loaded. Corruption, truncation, and version
/// mismatches return the error Status with the table left cold.
/// \p EpochOut, when non-null, receives the stored epoch (0 when the
/// file is missing or bad). \returns the number of records restored.
ErrorOr<size_t> loadKernelHistory(KernelHistory &History,
                                  const std::string &Path,
                                  uint64_t *EpochOut = nullptr);

} // namespace ecas

#endif // ECAS_CORE_HISTORYSNAPSHOT_H
