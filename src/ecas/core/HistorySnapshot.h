//===-- ecas/core/HistorySnapshot.h - Durable table-G snapshots *- C++ -*-===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Versioned binary persistence for the table G, making the paper's
/// one-time-characterization + accumulated-history design (Fig. 7) hold
/// across process restarts: learned sample-weighted alphas survive a
/// crash and a restarted scheduler resumes from the last good snapshot.
///
/// File format (all integers and doubles little-endian):
///
///   offset  size  field
///   0       8     magic "ECASTBLG"
///   8       4     u32 format version (currently 1)
///   12      8     u64 record count
///   20      4     u32 CRC-32 of the payload
///   24      ...   payload: count x 112-byte records
///
/// Each record: u64 kernel id; f64 alpha weighted-sum, f64 alpha total
/// weight; u32 class index, u8 cpu-only, u8 confident, u8 launch-failed,
/// u8 hung; u32 invocations, u32 quarantined runs; then the accumulated
/// ProfileSample as 9 f64 (cpu/gpu throughput, cpu/gpu iterations,
/// elapsed, cpu/gpu busy seconds, miss ratio, instructions).
///
/// Writes are atomic: the snapshot is serialized to "<path>.tmp", fsynced,
/// and renamed over the destination, so a crash mid-write leaves either
/// the previous snapshot or a stray temp file — never a torn
/// destination. Loads verify magic, version, declared size, and CRC;
/// any mismatch returns a recoverable Status and the caller degrades to
/// a cold table instead of aborting.
///
//===----------------------------------------------------------------------===//

#ifndef ECAS_CORE_HISTORYSNAPSHOT_H
#define ECAS_CORE_HISTORYSNAPSHOT_H

#include "ecas/core/KernelHistory.h"
#include "ecas/support/Error.h"

#include <string>
#include <string_view>

namespace ecas {

/// Current snapshot format version.
inline constexpr uint32_t HistorySnapshotVersion = 1;

/// Serializes a consistent copy of \p History into the snapshot byte
/// format (header + CRC-checked payload).
std::string serializeKernelHistory(const KernelHistory &History);

/// Parses \p Bytes into \p History, replacing its contents. On any
/// error (bad magic, truncation, version mismatch, CRC failure) the
/// table is left cleared — a cold start — and the Status says why.
/// \returns the number of records restored.
ErrorOr<size_t> deserializeKernelHistory(KernelHistory &History,
                                         std::string_view Bytes);

/// Atomically writes \p History to \p Path (temp file + fsync + rename).
Status saveKernelHistory(const KernelHistory &History,
                         const std::string &Path);

/// Loads \p Path into \p History. A missing file is a cold start, not an
/// error: returns 0 records loaded. Corruption, truncation, and version
/// mismatches return the error Status with the table left cold.
/// \returns the number of records restored.
ErrorOr<size_t> loadKernelHistory(KernelHistory &History,
                                  const std::string &Path);

} // namespace ecas

#endif // ECAS_CORE_HISTORYSNAPSHOT_H
