//===-- ecas/core/EasScheduler.h - The EAS algorithm (Fig. 7) --*- C++ -*-===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's primary contribution: the energy-aware scheduling
/// algorithm of Fig. 7. For a first-seen kernel it repeats online
/// profiling for half of the iterations (size-based strategy of [12]),
/// classifies the workload into one of the eight power-characterization
/// categories, and grid-searches the offload ratio minimizing the target
/// metric under the analytical time model; subsequent invocations reuse
/// the table-G entry, refined by sample-weighted accumulation.
///
/// The scheduler is a concurrent service: any number of client threads
/// (each with its own SimProcessor) may call execute() against one
/// shared table G. The steady-state hit — lookup alpha, run, count the
/// invocation — is lock-free. Invocations accept an optional
/// deadline/cancellation token, honoured at cooperative points between
/// profiling repetitions and before the remainder execution; shutdown()
/// closes admission, drains in-flight work against a grace period, and
/// snapshots table G to the configured history file.
///
//===----------------------------------------------------------------------===//

#ifndef ECAS_CORE_EASSCHEDULER_H
#define ECAS_CORE_EASSCHEDULER_H

#include "ecas/core/AlphaSearch.h"
#include "ecas/core/HistoryJournal.h"
#include "ecas/core/OperatingPoint.h"
#include "ecas/core/KernelHistory.h"
#include "ecas/core/Metric.h"
#include "ecas/core/RequestContext.h"
#include "ecas/fault/GpuHealth.h"
#include "ecas/obs/DecisionLog.h"
#include "ecas/obs/FlightRecorder.h"
#include "ecas/obs/Metrics.h"
#include "ecas/obs/Trace.h"
#include "ecas/power/PowerCurve.h"
#include "ecas/profile/OnlineProfiler.h"
#include "ecas/sim/SimProcessor.h"
#include "ecas/support/Cancellation.h"
#include "ecas/support/Error.h"
#include "ecas/support/HotPath.h"
#include "ecas/support/ThreadAnnotations.h"

#include <atomic>
#include <condition_variable>
#include <string>

namespace ecas {

/// Tunables of the EAS algorithm.
struct EasConfig {
  /// GPU profiling chunk (Fig. 7 step 31). 0 selects the platform
  /// default, PlatformSpec::defaultGpuProfileSize().
  double GpuProfileSize = 0.0;
  /// Offload-ratio grid increment for step 20.
  double AlphaStep = 0.1;
  /// Optional golden-section refinement of the grid answer (extension).
  bool RefineAlpha = false;
  /// Profiling repeats until fewer than this fraction of the invocation's
  /// iterations remain (step 13: "while N_rem > N/2").
  double ProfileFraction = 0.5;
  /// Minimum iterations each device must have executed during profiling
  /// before the learned alpha is trusted and reused; below this the next
  /// large-enough invocation profiles again. 0 selects
  /// GPU_PROFILE_SIZE / 4.
  double MinProfileIters = 0.0;
  /// Announce the chosen split to the PCU before executing it (the
  /// paper's future-work extension): the governor jumps to the matching
  /// steady state instead of re-discovering it through wake resets and
  /// ramps. Benchmarked by bench/abl_pcu_hints.
  bool PcuHints = false;
  /// Re-profile a confident kernel every this many invocations, for
  /// kernels "where the same kernel behaves differently over time"
  /// (Section 3.1's repeated profiling). 0 disables periodic
  /// re-profiling; the sample-weighted accumulator then blends the new
  /// measurement with history.
  unsigned ReprofileEveryInvocations = 0;
  /// Joint (alpha, frequency) optimization: when true and both the
  /// platform and the characterization describe more than one P-state,
  /// the decision core searches the full OperatingPoint grid and
  /// actuates the winning state through the PCU's frequency cap before
  /// dispatch. Off (the default) keeps the paper's fixed-frequency
  /// chooseAlpha behaviour bit-identically.
  bool PStates = false;
  /// What the search minimizes (core/OperatingPoint.h): the metric
  /// itself, race-to-idle, or pace-to-deadline.
  SchedulingPolicy Policy = SchedulingPolicy::MinimizeMetric;
  /// Deadline for PaceToDeadline, in predicted virtual seconds per
  /// invocation. Must be positive and finite under that policy.
  double DeadlineSeconds = 0.0;
  /// Platform idle draw subtracted by RaceToIdle (0 reduces it to plain
  /// energy).
  double IdleWatts = 0.0;
  /// Classification thresholds (0.33 miss ratio, 100 ms).
  ClassifierThresholds Thresholds;
  /// Degradation policy: launch-retry budget, quarantine backoff, and
  /// the hang watchdog's poll interval. Only consulted when something
  /// goes wrong; with a healthy platform the scheduler never deviates
  /// from Fig. 7.
  GpuHealthConfig Health;
  /// Durable table-G snapshot path. When non-empty the constructor
  /// restores the table from it (corruption degrades to a cold table,
  /// reported by restoreStatus()) and shutdown()/the destructor write it
  /// back atomically, so learned alphas survive restarts.
  std::string HistoryFile;
  /// Write-ahead journaling of table-G merges (DESIGN.md §13). Off by
  /// default: snapshot-only durability is what every pre-§13 caller
  /// gets. The serve front end turns it on whenever --history-file is
  /// set.
  struct JournalConfig {
    /// Journal every table-G mutation and recover snapshot + journal at
    /// construction. Requires HistoryFile (or an explicit File).
    bool Enabled = false;
    /// Journal path; empty derives "<HistoryFile>.wal".
    std::string File;
    /// Group-commit thresholds and fsync policy (JournalOptions).
    unsigned GroupCommitRecords = 32;
    size_t GroupCommitBytes = 64 * 1024;
    bool SyncOnFlush = true;
  };
  JournalConfig Journal;
  /// Optional trace recorder (not owned; must outlive the scheduler).
  /// When set, every invocation emits spans and counters through it —
  /// admission, profiling repetitions, classification, the alpha
  /// search (with the evaluated grid), the remainder dispatch, health
  /// transitions, and the shutdown drain/snapshot phases. When null,
  /// nothing is recorded and scheduling is bit-identical to a build
  /// without the observability layer (ObsTest's regression).
  obs::TraceRecorder *Trace = nullptr;
  /// Optional metrics registry (not owned; must outlive the scheduler).
  /// When set, the constructor pre-registers every instrument of the
  /// eas_* taxonomy (DESIGN.md §11) and each invocation folds its
  /// telemetry in — model rel-error histograms per workload class, the
  /// chosen-alpha distribution, profile overhead, lifecycle counters,
  /// and the health monitor's transition counters. Same contract as
  /// Trace: null means nothing is recorded and scheduling is
  /// bit-identical (MetricsTest's regression).
  obs::MetricsRegistry *Metrics = nullptr;
  /// Optional per-decision audit ring (not owned). When set, every
  /// admitted invocation appends one DecisionRecord after it finishes.
  /// Null no-ops, preserving bit-identity like Trace and Metrics.
  obs::DecisionLog *Decisions = nullptr;
  /// Optional always-on flight recorder (not owned, DESIGN.md §16).
  /// When set, every invocation appends its DecisionRecord to the
  /// recorder's overwrite-oldest ring plus a handful of instant events
  /// (invocation, hang, quarantine, readmission) — all fixed-capacity
  /// and allocation-free once warm, so arming it keeps the hot path's
  /// zero-allocation contract (HotPathTest's regression). Null no-ops,
  /// bit-identical like the other three sinks.
  obs::FlightRecorder *Flight = nullptr;

  /// Checks every tunable for sanity: AlphaStep outside (0, 1],
  /// non-positive ProfileFraction (or above 1), negative
  /// MinProfileIters/GpuProfileSize, and zero-capacity Health budgets
  /// (no launch retries, non-positive quarantine or watchdog intervals,
  /// shrinking backoff multipliers) are all InvalidArgument. The
  /// EasScheduler constructor calls this and treats a failure as a
  /// fatal usage error; callers assembling configs from external input
  /// should validate first and surface the Status instead.
  Status validate() const;
};

/// The energy-aware scheduler. One instance owns a table G and serves
/// every kernel invocation of an application run — from any number of
/// threads.
class EasScheduler {
public:
  /// \p Curves must be complete (all eight categories) for the platform
  /// that \p Metric-optimized runs will execute on. The legacy overload
  /// wraps the single-state characterization as P-state 0 of a family —
  /// every pre-DVFS caller schedules bit-identically through it.
  EasScheduler(const PowerCurveSet &Curves, Metric Objective,
               EasConfig Config = {});

  /// Joint (alpha, f) form: one characterization per P-state, indexed
  /// like the platform's P-state table. Every state present must be
  /// complete. The family is copied in; the scheduler owns its curves.
  EasScheduler(PowerCurveFamily Curves, Metric Objective,
               EasConfig Config = {});

  /// Drains and snapshots via shutdown() if the caller has not already.
  ~EasScheduler();

  /// What one invocation did.
  struct InvocationOutcome {
    double AlphaUsed = 0.0;
    /// P-state half of the operating point the dispatch ran at; 0 (full
    /// speed) whenever Config.PStates is off or the path never reached
    /// a joint decision (CPU-only, quarantine, rejection).
    unsigned PState = 0;
    double Seconds = 0.0;
    bool Profiled = false;
    bool CpuOnlyFastPath = false;
    WorkloadClass Class;
    /// Profiling repetitions performed (0 when table G was hit).
    unsigned ProfileRepetitions = 0;
    /// Alpha-grid optimizations performed (once per profiling
    /// repetition that produced a usable sample).
    unsigned AlphaSearches = 0;
    /// The GPU was quarantined, so this invocation degraded to
    /// CPU-alone without attempting a dispatch.
    bool GpuQuarantined = false;
    /// A hang was detected (during profiling or execution) and the GPU
    /// share stranded back onto the CPU.
    bool HangDetected = false;
    /// Failed GPU enqueue attempts retried during this invocation.
    unsigned LaunchRetries = 0;
    /// First invocation after a recovery: the GPU was re-admitted and
    /// the kernel re-profiled so alpha reflects the recovered device.
    bool GpuReadmitted = false;
    /// The scheduler is shutting down; nothing ran and nothing was
    /// learned.
    bool Rejected = false;
    /// The deadline/cancellation token fired mid-invocation. Completed
    /// profiling measurements were still merged into table G, but no
    /// alpha sample was added and the invocation was not counted, so a
    /// partial run cannot poison the learned ratio.
    bool Cancelled = false;
    /// The ratio came straight from a table-G hit (steps 2-4).
    bool TableHit = false;

    //===------------------------------------------------------------===//
    // Model-validation telemetry. Filled from pure observation — const
    // reads of the virtual clock, the energy meter, and table G — and
    // never fed back into scheduling, so an un-metered run computes none
    // of it yet schedules identically.
    //===------------------------------------------------------------===//
    /// A T(alpha)/P(alpha) prediction backed the dispatch: either the
    /// alpha search's winning point (profiled path) or the analytical
    /// model re-evaluated from the table-G record (hit path). Cleared
    /// when a fault (hang, quarantine-stranding) invalidated the
    /// healthy-platform assumption the prediction encodes.
    bool HasPrediction = false;
    double PredictedSeconds = 0.0;
    double PredictedWatts = 0.0;
    /// Objective value the prediction implied.
    double PredictedMetric = 0.0;
    /// Measured window the prediction covers: the remainder dispatch on
    /// the profiled/hit paths, the whole invocation on CPU-only paths.
    double MeasuredSeconds = 0.0;
    double MeasuredJoules = 0.0;
    /// Virtual seconds spent inside profiling repetitions.
    double ProfileSeconds = 0.0;
    /// Total objective evaluations across this invocation's alpha
    /// searches.
    unsigned AlphaEvaluations = 0;

    /// True when this invocation yields one model-fidelity sample: a
    /// prediction existed and the measured window completed with
    /// nonzero time and energy.
    bool hasModelSample() const {
      return HasPrediction && !Cancelled && MeasuredSeconds > 0.0 &&
             MeasuredJoules > 0.0;
    }
    /// |T_pred - T_meas| / T_meas; call only when hasModelSample().
    double timeRelError() const;
    /// |P_pred*T_pred - E_meas| / E_meas; call only when
    /// hasModelSample().
    double energyRelError() const;
  };

  /// Fig. 7's EAS(): schedules and executes one invocation of \p Kernel
  /// with \p Iterations parallel iterations on \p Proc. Thread-safe;
  /// concurrent callers must each bring their own \p Proc.
  InvocationOutcome execute(SimProcessor &Proc, const KernelDesc &Kernel,
                            double Iterations);

  /// As above, bounded by \p Cancel (deadlines are measured against
  /// \p Proc's clock). Checked at invocation entry, between profiling
  /// repetitions, and before the remainder execution.
  InvocationOutcome execute(SimProcessor &Proc, const KernelDesc &Kernel,
                            double Iterations,
                            const CancellationToken &Cancel);

  /// Multi-tenant entry point: as above, but table-G lookups and updates
  /// use the tenant-namespaced key namespacedKernelKey(Request.TenantId,
  /// Kernel.Id), so one tenant's pathological kernels cannot poison
  /// another's learned alphas. Tenant 0 behaves exactly like the
  /// single-tenant overloads.
  InvocationOutcome execute(SimProcessor &Proc, const KernelDesc &Kernel,
                            double Iterations, const RequestContext &Request,
                            const CancellationToken *Cancel = nullptr);

  /// Marks the GPU as claimed by another client (the paper tests GPU
  /// performance counter A26: "in that case, we execute the application
  /// entirely on the CPU"). While set, every invocation runs CPU-alone
  /// and nothing is learned into table G.
  void setExternalGpuBusy(bool Busy) {
    ExternalGpuBusy.store(Busy, std::memory_order_release);
  }
  bool externalGpuBusy() const {
    return ExternalGpuBusy.load(std::memory_order_acquire);
  }

  const KernelHistory &history() const { return History; }
  const Metric &objective() const { return Objective; }

  /// The GPU health monitor backing this scheduler's degradation policy.
  const GpuHealthMonitor &health() const { return Monitor; }

  /// Graceful shutdown: stop admitting invocations (new calls return
  /// Rejected), wait up to \p DrainGraceSec (host wall-clock) for
  /// in-flight invocations to finish, then fire the internal drain
  /// token so stragglers stop at their next cancellation point, and
  /// finally snapshot table G to EasConfig::HistoryFile (when set).
  /// Idempotent — later calls wait for and return the first call's
  /// result. \returns the snapshot status (success when no history file
  /// is configured).
  Status shutdown(double DrainGraceSec = 5.0);

  /// False once shutdown() has begun; new invocations are rejected.
  bool acceptingWork() const {
    return Admitting.load(std::memory_order_acquire);
  }

  /// Outcome of the constructor's snapshot restore: success with a cold
  /// table when no file existed, an error (table left cold) when the
  /// snapshot was corrupt, truncated, or version-mismatched.
  const Status &restoreStatus() const { return RestoreStatus; }
  /// Records recovered by the constructor's restore.
  size_t restoredRecords() const { return RestoredRecords; }

  /// What the constructor's journal-aware recovery did (meaningful only
  /// with Config.Journal.Enabled; a snapshot-only restore reports Cold
  /// or Clean with zero replayed records).
  const RecoveryReport &recoveryReport() const { return Recovery; }
  /// Non-success when journaling was requested but the journal could
  /// not be opened (or a flush failed); the scheduler keeps running
  /// with snapshot-only durability.
  Status journalStatus() const;
  /// True while the write-ahead journal is live.
  bool journaling() const { return Journal != nullptr; }
  /// Append-side counters (zeros without a live journal).
  HistoryJournal::Stats journalStats() const {
    return Journal ? Journal->stats() : HistoryJournal::Stats{};
  }
  /// Durably commits every journaled record enqueued so far (the
  /// service's idle-flush hook). No-op without a live journal.
  Status flushJournal();
  /// Resolved journal path ("" when journaling is off).
  std::string journalPath() const;

  /// Writes a snapshot of table G to \p Path now (atomic tmp+rename),
  /// stamped with the live journal epoch so a copy taken mid-run pairs
  /// with the journal it rode alongside.
  Status snapshot(const std::string &Path) const;

  /// Forgets all table-G state (a fresh application run). Health state
  /// persists — a quarantine outlives application restarts the way a
  /// broken device does.
  void reset() { History.clear(); }

private:
  /// Common admission prolog shared by every execute() overload: count
  /// the invocation in flight, bounce it when the shutdown gate is
  /// closed, and otherwise run it under \p HistoryKey and record the
  /// outcome.
  InvocationOutcome executeGated(SimProcessor &Proc, const KernelDesc &Kernel,
                                 double Iterations, uint64_t HistoryKey,
                                 const CancellationToken *Cancel);
  InvocationOutcome executeAdmitted(SimProcessor &Proc,
                                    const KernelDesc &Kernel,
                                    double Iterations, uint64_t HistoryKey,
                                    const CancellationToken *Cancel);
  /// The steady-state table-hit path (Fig. 7 steps 2-4 through the
  /// remainder dispatch): reuse the learned alpha, optionally re-evaluate
  /// the analytical model for fidelity telemetry, dispatch, count the
  /// invocation, and journal the bump. This is the sub-microsecond
  /// decision path of ROADMAP item 3 — ECAS_HOT marks it as a root for
  /// tools/ecas_hotpath.py, and with observability and journaling off it
  /// must stay allocation-free end to end (the AllocGuard regression).
  /// Behaviour is bit-identical to the pre-extraction inline branch.
  ECAS_HOT InvocationOutcome
  runTableHit(SimProcessor &Proc, const KernelDesc &Kernel, double Iterations,
              uint64_t HistoryKey, const KernelRecord &KnownRec,
              const CancellationToken *Cancel, double Start, uint32_t StartMsr,
              obs::TraceRecorder *T, obs::ScopedSpan &Invocation);
  /// Fills \p Views with one PStateView per searchable state — curve
  /// for \p Class plus the state's frequency scales relative to state 0
  /// — and returns the count. 1 (full speed only) unless Config.PStates
  /// is on and both the platform table and the characterization family
  /// cover more. \p Views must hold kMaxPStates entries.
  ECAS_HOT unsigned buildPStateViews(const SimProcessor &Proc,
                                     WorkloadClass Class,
                                     PStateView *Views) const;
  /// Amdahl memory-bound fraction for TimeModel::scaledTo, estimated
  /// from the profiled miss ratio against the classifier's
  /// memory-intensity threshold.
  ECAS_HOT double memBoundFraction(double MissPerLoadStore) const;
  /// True when the caller's token or the shutdown drain token fired.
  bool stopRequested(double NowSec, const CancellationToken *Cancel) const;
  void endInvocation();
  /// Pre-registers every instrument when Config.Metrics is set, so the
  /// execute() fast path never touches the registry mutex.
  void registerInstruments();
  /// Folds one finished invocation into the registry and the decision
  /// log (both optional; no-ops when neither is configured).
  void recordInvocation(const KernelDesc &Kernel,
                        const InvocationOutcome &Outcome);

  /// P(alpha, f): one curve set per P-state (a single-state family for
  /// legacy callers). Owned by value — the family is immutable after
  /// construction, so the decision paths read it without locks.
  PowerCurveFamily Curves;
  Metric Objective;
  EasConfig Config;
  KernelHistory History;
  GpuHealthMonitor Monitor;

  /// Instruments cached at construction (all null without a registry).
  /// Per-class histograms are indexed by WorkloadClass::index(); the
  /// second axis is the chosen P-state. A single-state family fills
  /// only column 0, registered under the legacy label sets (no pstate
  /// label), so pre-DVFS scrapes are byte-identical.
  struct MetricInstruments {
    obs::Histogram *TimeRelError[WorkloadClass::NumClasses][kMaxPStates] = {};
    obs::Histogram *EnergyRelError[WorkloadClass::NumClasses][kMaxPStates] =
        {};
    obs::Histogram *AlphaChosen[kMaxPStates] = {};
    obs::Histogram *AlphaSearchEvals = nullptr;
    obs::Histogram *ProfileOverhead = nullptr;
    obs::Histogram *InvocationSeconds = nullptr;
    obs::Histogram *ProfileRepSeconds = nullptr;
    obs::Counter *Invocations = nullptr;
    obs::Counter *TableHits = nullptr;
    obs::Counter *TableMisses = nullptr;
    obs::Counter *CpuOnly = nullptr;
    obs::Counter *Cancelled = nullptr;
    obs::Counter *Rejected = nullptr;
    obs::Counter *ProfileReps = nullptr;
    obs::Counter *LaunchRetries = nullptr;
    obs::Counter *Readmissions = nullptr;
    obs::Counter *QuarantinedRuns = nullptr;
    obs::Counter *DecisionsLogged = nullptr;
    obs::Gauge *ShutdownDrain = nullptr;
    obs::Counter *JournalAppends = nullptr;
    obs::Counter *JournalBytes = nullptr;
    obs::Counter *ReplayedRecords = nullptr;
    obs::Counter *TruncatedRecords = nullptr;
    obs::Gauge *RecoverySecondsGauge = nullptr;
    /// One counter per RecoveryOutcome, labelled outcome=<name>.
    obs::Counter *RecoveryOutcomes[4] = {};
    /// Cumulative wall seconds spent executing in each P-state,
    /// labelled pstate=<n> (no label for single-state families).
    obs::Gauge *PStateResidency[kMaxPStates] = {};
  };
  MetricInstruments Ins;
  Status RestoreStatus = Status::success();
  size_t RestoredRecords = 0;

  //===--------------------------------------------------------------===//
  // Durability (DESIGN.md §13). The journal pointer is set once in the
  // constructor and cleared only by the destructor, so the execute()
  // paths read it without synchronization. Flush failures are sticky:
  // the first one is kept for journalStatus() and the journal keeps
  // accepting appends (best-effort durability, never a scheduling
  // failure).
  //===--------------------------------------------------------------===//
  /// Runs the constructor's recovery + journal open; never throws —
  /// failures degrade to snapshot-only mode with JournalOpenStatus set.
  void initDurability();
  /// Buffers one delta record into the journal (no IO; legal inside the
  /// table-G shard-locked merge closure). No-op without a live journal.
  void journalRecord(const HistoryDeltaRecord &Rec);
  /// Group-commits when a threshold is crossed. Called outside shard
  /// locks, once per journaled invocation path.
  void journalCommit();
  void noteJournalFailure(const Status &S);

  std::unique_ptr<HistoryJournal> Journal;
  RecoveryReport Recovery;
  mutable AnnotatedMutex JournalStatusMutex{"EasScheduler.JournalStatus"};
  Status JournalFailure ECAS_GUARDED_BY(JournalStatusMutex) =
      Status::success();

  /// Recovery count at the last execute(); a difference means the GPU
  /// was re-admitted and the next large invocation must re-profile.
  std::atomic<unsigned> LastSeenRecoveries{0};
  /// Sticky re-profile demand raised by a recovery, so the forced
  /// re-optimization survives intervening small-N invocations. Consumed
  /// by exactly one large invocation (atomic exchange).
  std::atomic<bool> PendingReadmitReprofile{false};
  std::atomic<bool> ExternalGpuBusy{false};

  //===--------------------------------------------------------------===//
  // Lifecycle (admission gate + drain). Lock order: LifecycleMutex is a
  // leaf — nothing else is acquired while holding it.
  //===--------------------------------------------------------------===//
  std::atomic<bool> Admitting{true};
  std::atomic<unsigned> InFlight{0};
  /// Fired by shutdown() when the drain grace expires; every in-flight
  /// invocation observes it at its next cancellation point.
  CancellationToken DrainToken;
  AnnotatedMutex LifecycleMutex{"EasScheduler.Lifecycle"};
  std::condition_variable Drained;
  bool ShutdownComplete ECAS_GUARDED_BY(LifecycleMutex) = false;
  Status ShutdownResult ECAS_GUARDED_BY(LifecycleMutex) = Status::success();
};

} // namespace ecas

#endif // ECAS_CORE_EASSCHEDULER_H
