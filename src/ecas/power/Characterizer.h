//===-- ecas/power/Characterizer.h - One-time power probing ----*- C++ -*-===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one-time-per-processor characterization step of Section 2: for
/// each of the eight categories, sweep the GPU offload ratio, measure
/// average package power through the (emulated) RAPL MSR, and fit a
/// sixth-order polynomial. Produces the PowerCurveSet the energy-aware
/// scheduler consumes at runtime.
///
//===----------------------------------------------------------------------===//

#ifndef ECAS_POWER_CHARACTERIZER_H
#define ECAS_POWER_CHARACTERIZER_H

#include "ecas/power/MicroBenchmarks.h"
#include "ecas/power/PowerCurve.h"

#include <vector>

namespace ecas {

/// Knobs of the characterization procedure.
struct CharacterizerConfig {
  /// Offload-ratio sweep granularity (the paper samples at 0.1).
  double AlphaStep = 0.1;
  /// Fitted polynomial order (the paper found sixth-order a good fit).
  unsigned PolyDegree = 6;
  /// Micro-benchmark sizing targets.
  double ShortTargetSec = 0.05;
  double LongTargetSec = 0.6;
  /// P-state to pin the processor to while measuring. 0 (the default)
  /// is full speed and matches the pre-DVFS characterization exactly;
  /// higher indices cap the clocks at the spec's ladder entry before
  /// every sweep point, yielding the P(alpha) curve at that frequency.
  unsigned PStateIndex = 0;
};

/// One measured sweep point.
struct PowerSamplePoint {
  double Alpha = 0.0;
  double AvgPackageWatts = 0.0;
  double BusySeconds = 0.0;
  double Joules = 0.0;
};

/// Runs characterization sweeps against simulated processors of one
/// platform spec.
class Characterizer {
public:
  explicit Characterizer(const PlatformSpec &Spec,
                         CharacterizerConfig Config = {});

  /// Measures average package power for \p Micro at offload ratio
  /// \p Alpha on a fresh processor: repetitions with idle gaps, energy
  /// read via the MSR sampling protocol, averaged over busy time only.
  PowerSamplePoint measureAt(const MicroBenchmark &Micro, double Alpha) const;

  /// Sweeps alpha over [0,1] for one category's micro-benchmark.
  std::vector<PowerSamplePoint> sweep(WorkloadClass Class) const;

  /// Sweeps and fits a single category.
  PowerCurve characterizeCategory(
      WorkloadClass Class,
      std::vector<PowerSamplePoint> *SamplesOut = nullptr) const;

  /// Full eight-category characterization.
  PowerCurveSet characterize() const;

  const CharacterizerConfig &config() const { return Config; }
  const PlatformSpec &spec() const { return Spec; }

private:
  PlatformSpec Spec;
  CharacterizerConfig Config;
};

/// Characterizes every P-state the spec advertises: one full
/// eight-category sweep per ladder entry, clocks capped to that entry.
/// A spec with no P-state table yields a single-state family identical
/// to Characterizer::characterize(). \p Config.PStateIndex is ignored
/// (each state supplies its own).
PowerCurveFamily characterizeFamily(const PlatformSpec &Spec,
                                    CharacterizerConfig Config = {});

} // namespace ecas

#endif // ECAS_POWER_CHARACTERIZER_H
