//===-- ecas/power/MicroBenchmarks.cpp - Probe micro-benchmarks -----------===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ecas/power/MicroBenchmarks.h"

#include "ecas/sim/SimProcessor.h"
#include "ecas/support/Assert.h"

#include <algorithm>
#include <cmath>

using namespace ecas;

KernelDesc ecas::computeBoundMicroKernel() {
  KernelDesc Kernel;
  Kernel.Name = "micro.compute";
  Kernel.CpuCyclesPerIter = 200.0;
  Kernel.GpuCyclesPerIter = 200.0;
  Kernel.BytesPerIter = 0.0;
  Kernel.LoadStoresPerIter = 4.0;
  Kernel.LlcMissRatio = 0.0;
  Kernel.InstrsPerIter = 220.0;
  Kernel.GpuEfficiency = 1.0;
  Kernel.CpuVectorizable = 0.9;
  return Kernel.withAutoId();
}

KernelDesc ecas::memoryBoundMicroKernel() {
  KernelDesc Kernel;
  Kernel.Name = "micro.memory";
  Kernel.CpuCyclesPerIter = 10.0;
  Kernel.GpuCyclesPerIter = 10.0;
  Kernel.BytesPerIter = 64.0; // One cache line per random update.
  Kernel.LoadStoresPerIter = 1.0;
  Kernel.LlcMissRatio = 1.0;
  Kernel.InstrsPerIter = 20.0;
  Kernel.GpuEfficiency = 1.0;
  Kernel.CpuVectorizable = 0.0;
  return Kernel.withAutoId();
}

DeviceRates ecas::probeDeviceRates(const PlatformSpec &Spec,
                                   const KernelDesc &Kernel,
                                   double ProbeSeconds) {
  ECAS_CHECK(ProbeSeconds > 0.0, "probe duration must be positive");
  DeviceRates Rates;
  // Enough work that neither device drains within the probe window.
  const double Plenty = 1e13;
  {
    SimProcessor Proc(Spec);
    Proc.cpu().enqueue(Kernel, Plenty);
    Proc.runFor(ProbeSeconds);
    Rates.CpuItersPerSec =
        Proc.cpu().counters().IterationsDone / ProbeSeconds;
  }
  {
    SimProcessor Proc(Spec);
    Proc.gpu().enqueue(Kernel, Plenty);
    Proc.runFor(ProbeSeconds);
    Rates.GpuItersPerSec =
        Proc.gpu().counters().IterationsDone / ProbeSeconds;
  }
  return Rates;
}

/// Applies CPU- or GPU-biased shaping to the base micro kernel so that a
/// single iteration count can satisfy both duration targets.
static KernelDesc shapeAffinity(KernelDesc Kernel, DurationClass CpuDuration,
                                DurationClass GpuDuration) {
  bool CpuBiased = CpuDuration == DurationClass::Short &&
                   GpuDuration == DurationClass::Long;
  bool GpuBiased = CpuDuration == DurationClass::Long &&
                   GpuDuration == DurationClass::Short;
  if (CpuBiased) {
    // Irregular, divergent work the GPU executes poorly.
    Kernel.Name += ".cpu_biased";
    Kernel.GpuEfficiency = Kernel.BytesPerIter > 0.0 ? 0.005 : 0.12;
    Kernel.GpuCyclesPerIter *= 2.0;
  } else if (GpuBiased) {
    // Scalar-heavy work the CPU cannot vectorize.
    Kernel.Name += ".gpu_biased";
    Kernel.CpuCyclesPerIter *= Kernel.BytesPerIter > 0.0 ? 20.0 : 3.0;
    Kernel.CpuVectorizable = std::min(Kernel.CpuVectorizable, 0.3);
  }
  Kernel.Id = 0;
  return Kernel.withAutoId();
}

MicroBenchmark ecas::makeMicroBenchmark(const PlatformSpec &Spec,
                                        WorkloadClass Class,
                                        double ShortTargetSec,
                                        double LongTargetSec) {
  ECAS_CHECK(ShortTargetSec > 0.0 && LongTargetSec > ShortTargetSec,
             "micro-benchmark duration targets out of order");
  MicroBenchmark Micro;
  KernelDesc Base = Class.Bound == Boundedness::Memory
                        ? memoryBoundMicroKernel()
                        : computeBoundMicroKernel();
  Micro.Kernel = shapeAffinity(Base, Class.CpuDuration, Class.GpuDuration);

  // Feasible iteration-count window: "short" devices cap N from above,
  // "long" devices bound it from below. The classification threshold is
  // 100 ms; 0.07/0.15 leave margin on either side. The fixed affinity
  // shaping may not suffice on exotic SKUs (a 48-EU part outruns any
  // CPU-biased micro), so the bias escalates until the window opens.
  double Lo = 1.0, Hi = 1e30;
  for (unsigned Attempt = 0;; ++Attempt) {
    DeviceRates Rates = probeDeviceRates(Spec, Micro.Kernel);
    ECAS_CHECK(Rates.CpuItersPerSec > 0.0 && Rates.GpuItersPerSec > 0.0,
               "device rate probe produced zero throughput");
    Lo = 1.0;
    Hi = 1e30;
    auto Constrain = [&Lo, &Hi](DurationClass Duration, double Rate) {
      if (Duration == DurationClass::Short)
        Hi = std::min(Hi, 0.07 * Rate);
      else
        Lo = std::max(Lo, 0.15 * Rate);
    };
    Constrain(Class.CpuDuration, Rates.CpuItersPerSec);
    Constrain(Class.GpuDuration, Rates.GpuItersPerSec);
    if (Lo <= Hi)
      break;
    ECAS_CHECK(Attempt < 8, "duration targets infeasible; affinity "
                            "shaping insufficient for this platform");
    // Slow down whichever device must be the long one.
    if (Class.CpuDuration == DurationClass::Long &&
        Class.GpuDuration == DurationClass::Short)
      Micro.Kernel.CpuCyclesPerIter *= 3.0;
    else
      Micro.Kernel.GpuCyclesPerIter *= 3.0;
  }

  if (Hi >= 1e29)
    Micro.Iterations = 1.5 * Lo;
  else if (Lo <= 1.0)
    Micro.Iterations = 0.7 * Hi;
  else
    Micro.Iterations = std::sqrt(Lo * Hi);
  Micro.Iterations = std::max(1.0, std::floor(Micro.Iterations));

  // Short probes repeat with idle gaps so the PCU's transient reaction to
  // bursts (Fig. 4) is captured in the averaged power.
  bool AnyShort = Class.CpuDuration == DurationClass::Short ||
                  Class.GpuDuration == DurationClass::Short;
  Micro.Repetitions = AnyShort ? 6 : 1;
  Micro.GapSeconds = AnyShort ? 0.08 : 0.0;
  return Micro;
}
