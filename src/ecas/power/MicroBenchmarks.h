//===-- ecas/power/MicroBenchmarks.h - Probe micro-benchmarks --*- C++ -*-===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The eight characterization micro-benchmarks of Section 2: a
/// compute-bound FMA loop and a memory-bound random-update loop, shaped
/// into CPU-biased / GPU-biased / balanced variants and sized so their
/// single-device execution times land in the short (<100 ms) or long
/// category they probe. Sizing is done by measuring device rates on the
/// target processor — the black-box way.
///
//===----------------------------------------------------------------------===//

#ifndef ECAS_POWER_MICROBENCHMARKS_H
#define ECAS_POWER_MICROBENCHMARKS_H

#include "ecas/device/KernelDesc.h"
#include "ecas/hw/PlatformSpec.h"
#include "ecas/profile/WorkloadClass.h"

namespace ecas {

/// One sized micro-benchmark: the kernel, the iteration count, and how
/// many back-to-back invocations the measurement performs (short probes
/// repeat with idle gaps so PCU transients are represented, like the
/// 10-repetition run of Fig. 4).
struct MicroBenchmark {
  KernelDesc Kernel;
  double Iterations = 0.0;
  unsigned Repetitions = 1;
  double GapSeconds = 0.0;
};

/// Base kernel of the compute-bound micro: repeated floating-point
/// multiply-add on register-resident data.
KernelDesc computeBoundMicroKernel();

/// Base kernel of the memory-bound micro: random updates of an array via
/// precomputed indices — every access misses the LLC.
KernelDesc memoryBoundMicroKernel();

/// Device-rate probe results used to size the micro-benchmarks.
struct DeviceRates {
  double CpuItersPerSec = 0.0;
  double GpuItersPerSec = 0.0;
};

/// Measures single-device rates for \p Kernel on a fresh simulated
/// processor of \p Spec by running each device alone for \p ProbeSeconds.
DeviceRates probeDeviceRates(const PlatformSpec &Spec,
                             const KernelDesc &Kernel,
                             double ProbeSeconds = 0.25);

/// Builds the micro-benchmark probing category \p Class on \p Spec.
///
/// Affinity shaping: (CPU short, GPU long) uses a CPU-biased variant and
/// (CPU long, GPU short) a GPU-biased one, so both duration targets can
/// hold for a single iteration count (Section 2's description of the
/// category semantics).
MicroBenchmark makeMicroBenchmark(const PlatformSpec &Spec,
                                  WorkloadClass Class,
                                  double ShortTargetSec = 0.05,
                                  double LongTargetSec = 0.6);

} // namespace ecas

#endif // ECAS_POWER_MICROBENCHMARKS_H
