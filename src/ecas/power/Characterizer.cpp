//===-- ecas/power/Characterizer.cpp - One-time power probing -------------===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ecas/power/Characterizer.h"

#include "ecas/math/PolyFit.h"
#include "ecas/sim/SimProcessor.h"
#include "ecas/support/Assert.h"

#include <cmath>

using namespace ecas;

Characterizer::Characterizer(const PlatformSpec &SpecIn,
                             CharacterizerConfig ConfigIn)
    : Spec(SpecIn), Config(ConfigIn) {
  std::string Error;
  ECAS_CHECK(Spec.validate(Error), "Characterizer given an invalid spec");
  ECAS_CHECK(Config.AlphaStep > 0.0 && Config.AlphaStep <= 1.0,
             "alpha step must lie in (0, 1]");
  ECAS_CHECK(Config.PolyDegree >= 1, "polynomial degree must be >= 1");
  ECAS_CHECK(Config.PStateIndex < Spec.pstateCount(),
             "characterizer P-state index out of range for spec");
}

PowerSamplePoint Characterizer::measureAt(const MicroBenchmark &Micro,
                                          double Alpha) const {
  ECAS_CHECK(Alpha >= 0.0 && Alpha <= 1.0, "alpha must be in [0,1]");
  SimProcessor Proc(Spec);
  if (Config.PStateIndex > 0) {
    PStateSpec State = Spec.pstateAt(Config.PStateIndex);
    Proc.pcu().setFrequencyCap(State.CpuFreqGHz, State.GpuFreqGHz);
  }

  PowerSamplePoint Point;
  Point.Alpha = Alpha;
  double GpuIters = std::floor(Alpha * Micro.Iterations + 0.5);
  double CpuIters = Micro.Iterations - GpuIters;

  for (unsigned Rep = 0; Rep != Micro.Repetitions; ++Rep) {
    // RAPL protocol: sample the MSR, run, sample again, diff.
    uint32_t MsrBefore = Proc.meter().readMsr();
    double Start = Proc.now();
    if (GpuIters > 0.0)
      Proc.gpu().enqueue(Micro.Kernel, GpuIters);
    if (CpuIters > 0.0)
      Proc.cpu().enqueue(Micro.Kernel, CpuIters);
    Proc.runUntilIdle();
    Point.Joules += Proc.meter().joulesSince(MsrBefore);
    Point.BusySeconds += Proc.now() - Start;
    // Idle gap between repetitions: energy intentionally not counted —
    // the paper's power charts average over kernel execution.
    if (Micro.GapSeconds > 0.0 && Rep + 1 != Micro.Repetitions)
      Proc.runFor(Micro.GapSeconds);
  }
  ECAS_CHECK(Point.BusySeconds > 0.0, "micro-benchmark consumed no time");
  Point.AvgPackageWatts = Point.Joules / Point.BusySeconds;
  return Point;
}

std::vector<PowerSamplePoint>
Characterizer::sweep(WorkloadClass Class) const {
  MicroBenchmark Micro = makeMicroBenchmark(
      Spec, Class, Config.ShortTargetSec, Config.LongTargetSec);
  std::vector<PowerSamplePoint> Points;
  for (double Alpha = 0.0; Alpha <= 1.0 + 1e-9; Alpha += Config.AlphaStep)
    Points.push_back(measureAt(Micro, std::min(Alpha, 1.0)));
  return Points;
}

PowerCurve Characterizer::characterizeCategory(
    WorkloadClass Class, std::vector<PowerSamplePoint> *SamplesOut) const {
  std::vector<PowerSamplePoint> Points = sweep(Class);
  std::vector<double> Alphas, Watts;
  Alphas.reserve(Points.size());
  Watts.reserve(Points.size());
  for (const PowerSamplePoint &Point : Points) {
    Alphas.push_back(Point.Alpha);
    Watts.push_back(Point.AvgPackageWatts);
  }
  // A 0.1-step sweep yields 11 samples for 7 coefficients; a coarser
  // sweep may need a lower order to stay determined.
  unsigned Degree = Config.PolyDegree;
  while (Degree + 1 > Alphas.size() && Degree > 1)
    --Degree;
  std::optional<FitResult> Fit = fitPolynomial(Alphas, Watts, Degree);
  ECAS_CHECK(Fit.has_value(), "power curve fit failed");

  PowerCurve Curve;
  Curve.Class = Class;
  Curve.Poly = std::move(Fit->Poly);
  Curve.RSquared = Fit->RSquared;
  if (SamplesOut)
    *SamplesOut = std::move(Points);
  return Curve;
}

PowerCurveSet Characterizer::characterize() const {
  PowerCurveSet Set;
  Set.setPlatformName(Spec.Name);
  for (unsigned Index = 0; Index != WorkloadClass::NumClasses; ++Index)
    Set.setCurve(characterizeCategory(WorkloadClass::fromIndex(Index)));
  return Set;
}

PowerCurveFamily ecas::characterizeFamily(const PlatformSpec &Spec,
                                          CharacterizerConfig Config) {
  PowerCurveFamily Family;
  unsigned NumStates =
      std::min(Spec.pstateCount(), PowerCurveFamily::MaxPStates);
  for (unsigned State = 0; State != NumStates; ++State) {
    Config.PStateIndex = State;
    Family.setStateCurves(State, Characterizer(Spec, Config).characterize());
  }
  return Family;
}
