//===-- ecas/power/PowerCurve.h - Characterization functions ---*- C++ -*-===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The power characterization functions of Section 2: one sixth-order
/// polynomial P(alpha) per workload category mapping GPU offload ratio to
/// average package watts, plus the 8-slot set computed once per platform
/// and its text (de)serialization so characterization can be cached.
///
//===----------------------------------------------------------------------===//

#ifndef ECAS_POWER_POWERCURVE_H
#define ECAS_POWER_POWERCURVE_H

#include "ecas/math/Polynomial.h"
#include "ecas/profile/WorkloadClass.h"
#include "ecas/support/Error.h"
#include "ecas/support/HotPath.h"

#include <array>
#include <optional>
#include <string>

namespace ecas {

/// One category's fitted power characterization function.
struct PowerCurve {
  WorkloadClass Class;
  Polynomial Poly;
  double RSquared = 0.0;

  /// Average package watts predicted at offload ratio \p Alpha, clamped
  /// to a small positive floor (a fitted polynomial can dip negative
  /// outside its sample range; power cannot).
  ECAS_HOT double powerAt(double Alpha) const;
};

/// The per-platform set of eight characterization functions.
class PowerCurveSet {
public:
  const std::string &platformName() const { return Platform; }
  void setPlatformName(std::string Name) { Platform = std::move(Name); }

  void setCurve(PowerCurve Curve);
  bool hasCurve(WorkloadClass Class) const;
  /// Requires hasCurve(Class).
  const PowerCurve &curveFor(WorkloadClass Class) const;

  /// True when all eight categories are present.
  bool complete() const;

  /// Text round-trip: "platform = ...\ncurve <idx> = c0 c1 ... r2=..".
  std::string serialize() const;

  /// Parses a serialized set, returning a recoverable error naming the
  /// offending line for malformed input: truncated curve lines, unknown
  /// class indices, non-finite coefficients, implausible coefficient
  /// counts. With \p RequireComplete, a set missing any of the eight
  /// categories fails with ErrCode::Incomplete — the signal
  /// characterization callers use to fall back to re-characterizing.
  static ErrorOr<PowerCurveSet> load(const std::string &Text,
                                     bool RequireComplete = false);

  /// Legacy wrapper over load() for callers that only care about
  /// success/failure.
  static std::optional<PowerCurveSet> deserialize(const std::string &Text);

private:
  std::string Platform;
  std::array<PowerCurve, WorkloadClass::NumClasses> Curves;
  std::array<bool, WorkloadClass::NumClasses> Present = {};
};

/// P(alpha, f): one PowerCurveSet per P-state, extending the paper's
/// fixed-frequency P(alpha) along the DVFS axis (ROADMAP item 2). State
/// 0 is the full-speed characterization; the family is indexed by the
/// same P-state ordinal as PlatformSpec's table. A single-state family
/// is exactly the legacy behaviour, which is how pre-DVFS callers and
/// cached characterizations keep working unchanged.
class PowerCurveFamily {
public:
  static constexpr unsigned MaxPStates = 8;

  /// Wraps a legacy single-state characterization as state 0.
  static PowerCurveFamily fromSingle(PowerCurveSet Set);

  const std::string &platformName() const;

  unsigned numPStates() const { return Count; }

  /// Installs the characterization for P-state \p State; the family
  /// grows to cover it. States must be dense: installing state I
  /// requires I <= numPStates().
  void setStateCurves(unsigned State, PowerCurveSet Set);

  /// Requires State < numPStates().
  const PowerCurveSet &stateCurves(unsigned State) const;

  /// True when every state's set has all eight categories (and at least
  /// one state exists).
  bool complete() const;

  /// Text round-trip: "pstate = <idx>" delimiter lines, each followed by
  /// that state's PowerCurveSet chunk. A file with no pstate delimiter
  /// is a legacy single-state set, so cached characterizations from
  /// before the family load as state 0.
  std::string serialize() const;
  static ErrorOr<PowerCurveFamily> load(const std::string &Text,
                                        bool RequireComplete = false);

private:
  std::array<PowerCurveSet, MaxPStates> States;
  unsigned Count = 0;
};

} // namespace ecas

#endif // ECAS_POWER_POWERCURVE_H
