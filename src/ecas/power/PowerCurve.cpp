//===-- ecas/power/PowerCurve.cpp - Characterization functions ------------===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ecas/power/PowerCurve.h"

#include "ecas/support/Assert.h"
#include "ecas/support/Format.h"

#include <algorithm>
#include <cmath>

using namespace ecas;

double PowerCurve::powerAt(double Alpha) const {
  double Watts = Poly.evaluate(Alpha);
  // std::max(NaN, floor) returns NaN, so a curve fitted through glitched
  // measurements needs an explicit finiteness gate before the clamp.
  if (!std::isfinite(Watts))
    return 1e-3;
  return std::max(Watts, 1e-3);
}

void PowerCurveSet::setCurve(PowerCurve Curve) {
  unsigned Index = Curve.Class.index();
  Curves[Index] = std::move(Curve);
  Present[Index] = true;
}

bool PowerCurveSet::hasCurve(WorkloadClass Class) const {
  return Present[Class.index()];
}

const PowerCurve &PowerCurveSet::curveFor(WorkloadClass Class) const {
  ECAS_CHECK(hasCurve(Class), "no power curve for requested class");
  return Curves[Class.index()];
}

bool PowerCurveSet::complete() const {
  return std::all_of(Present.begin(), Present.end(),
                     [](bool Filled) { return Filled; });
}

std::string PowerCurveSet::serialize() const {
  std::string Out = formatString("platform = %s\n", Platform.c_str());
  for (unsigned Index = 0; Index != WorkloadClass::NumClasses; ++Index) {
    if (!Present[Index])
      continue;
    const PowerCurve &Curve = Curves[Index];
    Out += formatString("curve %u =", Index);
    for (double Coefficient : Curve.Poly.coefficients())
      Out += formatString(" %.17g", Coefficient);
    Out += formatString(" r2 %.17g\n", Curve.RSquared);
  }
  return Out;
}

ErrorOr<PowerCurveSet> PowerCurveSet::load(const std::string &Text,
                                           bool RequireComplete) {
  PowerCurveSet Set;
  unsigned LineNo = 0;
  for (const std::string &Line : splitString(Text, '\n')) {
    ++LineNo;
    if (Line.empty() || Line[0] == '#')
      continue;
    auto Fail = [LineNo](ErrCode Code, const std::string &Msg) {
      return Status::error(Code,
                           formatString("line %u: %s", LineNo, Msg.c_str()));
    };
    size_t Eq = Line.find('=');
    if (Eq == std::string::npos)
      return Fail(ErrCode::ParseError, "expected 'key = value'");
    std::string Key = trimString(Line.substr(0, Eq));
    std::string Value = trimString(Line.substr(Eq + 1));
    if (Key == "platform") {
      Set.Platform = Value;
      continue;
    }
    if (Key.rfind("curve ", 0) != 0)
      return Fail(ErrCode::ParseError, "unknown key '" + Key + "'");
    long long Index;
    if (!parseInt64(Key.substr(6), Index) || Index < 0 ||
        Index >= static_cast<long long>(WorkloadClass::NumClasses))
      return Fail(ErrCode::OutOfRange,
                  "unknown workload-class tag '" + Key.substr(6) + "'");
    std::vector<std::string> Tokens;
    for (const std::string &Tok : splitString(Value, ' '))
      if (!Tok.empty())
        Tokens.push_back(Tok);
    // Expect coefficients followed by "r2 <value>".
    if (Tokens.size() < 3 || Tokens[Tokens.size() - 2] != "r2")
      return Fail(ErrCode::Truncated,
                  "curve line is truncated (need coefficients and an r2 "
                  "tail)");
    PowerCurve Curve;
    Curve.Class = WorkloadClass::fromIndex(static_cast<unsigned>(Index));
    std::vector<double> Coeffs;
    for (size_t I = 0; I + 2 < Tokens.size(); ++I) {
      double C;
      if (!parseDouble(Tokens[I], C))
        return Fail(ErrCode::ParseError,
                    "unparsable coefficient '" + Tokens[I] + "'");
      if (!std::isfinite(C))
        return Fail(ErrCode::OutOfRange,
                    formatString("coefficient %zu is not finite", I));
      Coeffs.push_back(C);
    }
    // A characterization polynomial is degree 6 (7 coefficients); leave
    // headroom but reject counts no fit could have produced.
    if (Coeffs.empty() || Coeffs.size() > 16)
      return Fail(ErrCode::OutOfRange,
                  formatString("implausible coefficient count %zu",
                               Coeffs.size()));
    if (!parseDouble(Tokens.back(), Curve.RSquared) ||
        !std::isfinite(Curve.RSquared))
      return Fail(ErrCode::ParseError,
                  "unparsable or non-finite r2 value '" + Tokens.back() +
                      "'");
    Curve.Poly = Polynomial(std::move(Coeffs));
    Set.setCurve(std::move(Curve));
  }
  if (RequireComplete && !Set.complete()) {
    unsigned Have = 0;
    for (unsigned Index = 0; Index != WorkloadClass::NumClasses; ++Index)
      Have += Set.Present[Index] ? 1 : 0;
    return Status::error(
        ErrCode::Incomplete,
        formatString("characterization has %u of %u categories", Have,
                     static_cast<unsigned>(WorkloadClass::NumClasses)));
  }
  return Set;
}

std::optional<PowerCurveSet>
PowerCurveSet::deserialize(const std::string &Text) {
  ErrorOr<PowerCurveSet> Loaded = load(Text);
  if (!Loaded.ok())
    return std::nullopt;
  return *Loaded;
}

PowerCurveFamily PowerCurveFamily::fromSingle(PowerCurveSet Set) {
  PowerCurveFamily Family;
  Family.States[0] = std::move(Set);
  Family.Count = 1;
  return Family;
}

const std::string &PowerCurveFamily::platformName() const {
  static const std::string Empty;
  return Count == 0 ? Empty : States[0].platformName();
}

void PowerCurveFamily::setStateCurves(unsigned State, PowerCurveSet Set) {
  ECAS_CHECK(State < MaxPStates, "P-state index out of range");
  ECAS_CHECK(State <= Count, "P-states must be installed densely");
  States[State] = std::move(Set);
  if (State == Count)
    ++Count;
}

const PowerCurveSet &PowerCurveFamily::stateCurves(unsigned State) const {
  ECAS_CHECK(State < Count, "no characterization for requested P-state");
  return States[State];
}

bool PowerCurveFamily::complete() const {
  if (Count == 0)
    return false;
  for (unsigned I = 0; I != Count; ++I)
    if (!States[I].complete())
      return false;
  return true;
}

std::string PowerCurveFamily::serialize() const {
  std::string Out;
  for (unsigned I = 0; I != Count; ++I) {
    Out += formatString("pstate = %u\n", I);
    Out += States[I].serialize();
  }
  return Out;
}

ErrorOr<PowerCurveFamily> PowerCurveFamily::load(const std::string &Text,
                                                 bool RequireComplete) {
  // Split on "pstate = <idx>" delimiters and delegate each chunk to the
  // per-set parser so every existing diagnostic (truncated curve lines,
  // bad class tags) keeps working for family files.
  PowerCurveFamily Family;
  std::string Chunk;
  long long PendingState = -1;
  bool SawDelimiter = false;
  unsigned LineNo = 0, ChunkStartLine = 1;

  auto FlushChunk = [&]() -> Status {
    if (!SawDelimiter && trimString(Chunk).empty())
      return Status::success();
    ErrorOr<PowerCurveSet> Set = PowerCurveSet::load(Chunk, RequireComplete);
    if (!Set.ok())
      return Status::error(Set.status().code(),
                           formatString("pstate %lld (chunk at line %u): %s",
                                        PendingState < 0 ? 0 : PendingState,
                                        ChunkStartLine,
                                        Set.status().message().c_str()));
    unsigned State = PendingState < 0 ? 0 : static_cast<unsigned>(PendingState);
    if (State != Family.Count)
      return Status::error(ErrCode::ParseError,
                           formatString("pstate %u out of order (expected %u)",
                                        State, Family.Count));
    Family.setStateCurves(State, std::move(*Set));
    return Status::success();
  };

  for (const std::string &Line : splitString(Text, '\n')) {
    ++LineNo;
    std::string Trimmed = trimString(Line);
    if (Trimmed.rfind("pstate", 0) == 0) {
      size_t Eq = Trimmed.find('=');
      std::string Tag = Eq == std::string::npos
                            ? std::string()
                            : trimString(Trimmed.substr(0, Eq));
      if (Tag == "pstate") {
        long long Index;
        if (!parseInt64(trimString(Trimmed.substr(Eq + 1)), Index) ||
            Index < 0 || Index >= static_cast<long long>(MaxPStates))
          return Status::error(
              ErrCode::OutOfRange,
              formatString("line %u: bad pstate index", LineNo));
        if (SawDelimiter || !trimString(Chunk).empty()) {
          Status Flushed = FlushChunk();
          if (!Flushed.ok())
            return Flushed;
        }
        Chunk.clear();
        PendingState = Index;
        SawDelimiter = true;
        ChunkStartLine = LineNo + 1;
        continue;
      }
    }
    Chunk += Line;
    Chunk += '\n';
  }
  Status Flushed = FlushChunk();
  if (!Flushed.ok())
    return Flushed;
  if (Family.Count == 0)
    return Status::error(ErrCode::Incomplete,
                         "characterization has no P-states");
  return Family;
}
