//===-- ecas/power/PowerCurve.cpp - Characterization functions ------------===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ecas/power/PowerCurve.h"

#include "ecas/support/Assert.h"
#include "ecas/support/Format.h"

#include <algorithm>

using namespace ecas;

double PowerCurve::powerAt(double Alpha) const {
  return std::max(Poly.evaluate(Alpha), 1e-3);
}

void PowerCurveSet::setCurve(PowerCurve Curve) {
  unsigned Index = Curve.Class.index();
  Curves[Index] = std::move(Curve);
  Present[Index] = true;
}

bool PowerCurveSet::hasCurve(WorkloadClass Class) const {
  return Present[Class.index()];
}

const PowerCurve &PowerCurveSet::curveFor(WorkloadClass Class) const {
  ECAS_CHECK(hasCurve(Class), "no power curve for requested class");
  return Curves[Class.index()];
}

bool PowerCurveSet::complete() const {
  return std::all_of(Present.begin(), Present.end(),
                     [](bool Filled) { return Filled; });
}

std::string PowerCurveSet::serialize() const {
  std::string Out = formatString("platform = %s\n", Platform.c_str());
  for (unsigned Index = 0; Index != WorkloadClass::NumClasses; ++Index) {
    if (!Present[Index])
      continue;
    const PowerCurve &Curve = Curves[Index];
    Out += formatString("curve %u =", Index);
    for (double Coefficient : Curve.Poly.coefficients())
      Out += formatString(" %.17g", Coefficient);
    Out += formatString(" r2 %.17g\n", Curve.RSquared);
  }
  return Out;
}

std::optional<PowerCurveSet>
PowerCurveSet::deserialize(const std::string &Text) {
  PowerCurveSet Set;
  for (const std::string &Line : splitString(Text, '\n')) {
    if (Line.empty() || Line[0] == '#')
      continue;
    size_t Eq = Line.find('=');
    if (Eq == std::string::npos)
      return std::nullopt;
    std::string Key = trimString(Line.substr(0, Eq));
    std::string Value = trimString(Line.substr(Eq + 1));
    if (Key == "platform") {
      Set.Platform = Value;
      continue;
    }
    if (Key.rfind("curve ", 0) != 0)
      return std::nullopt;
    long long Index;
    if (!parseInt64(Key.substr(6), Index) || Index < 0 ||
        Index >= static_cast<long long>(WorkloadClass::NumClasses))
      return std::nullopt;
    std::vector<std::string> Tokens;
    for (const std::string &Tok : splitString(Value, ' '))
      if (!Tok.empty())
        Tokens.push_back(Tok);
    // Expect coefficients followed by "r2 <value>".
    if (Tokens.size() < 3 || Tokens[Tokens.size() - 2] != "r2")
      return std::nullopt;
    PowerCurve Curve;
    Curve.Class = WorkloadClass::fromIndex(static_cast<unsigned>(Index));
    std::vector<double> Coeffs;
    for (size_t I = 0; I + 2 < Tokens.size(); ++I) {
      double C;
      if (!parseDouble(Tokens[I], C))
        return std::nullopt;
      Coeffs.push_back(C);
    }
    if (!parseDouble(Tokens.back(), Curve.RSquared))
      return std::nullopt;
    Curve.Poly = Polynomial(std::move(Coeffs));
    Set.setCurve(std::move(Curve));
  }
  return Set;
}
