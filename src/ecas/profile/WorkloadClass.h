//===-- ecas/profile/WorkloadClass.h - 8-way classification ----*- C++ -*-===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's eight workload categories (Section 2): the cross product
/// of {compute, memory}-bound x {short, long} CPU execution x {short,
/// long} GPU execution. Online profiling classifies a workload into one
/// category, which selects the matching power characterization function.
///
//===----------------------------------------------------------------------===//

#ifndef ECAS_PROFILE_WORKLOADCLASS_H
#define ECAS_PROFILE_WORKLOADCLASS_H

#include <string>

namespace ecas {

/// Memory- vs compute-bound, by the LLC-miss to load-store ratio.
enum class Boundedness { Compute, Memory };

/// Short vs long estimated single-device execution time.
enum class DurationClass { Short, Long };

/// One of the eight power-characterization categories.
struct WorkloadClass {
  Boundedness Bound = Boundedness::Compute;
  DurationClass CpuDuration = DurationClass::Long;
  DurationClass GpuDuration = DurationClass::Long;

  /// Dense index in [0, 8): bit2 = memory, bit1 = CPU short, bit0 = GPU
  /// short.
  unsigned index() const;
  static WorkloadClass fromIndex(unsigned Index);
  static constexpr unsigned NumClasses = 8;

  /// e.g. "memory/cpu-short/gpu-long".
  std::string name() const;

  /// Compact Table 1 style form, e.g. "M S L".
  std::string shortName() const;

  bool operator==(const WorkloadClass &Rhs) const {
    return index() == Rhs.index();
  }
};

/// The thresholds of Section 5: memory-bound when misses/load-store
/// exceeds 0.33; short when the estimated remaining execution is under
/// 100 ms.
struct ClassifierThresholds {
  double MemoryIntensity = 0.33;
  double ShortSeconds = 0.1;
};

/// Classifies from profiling observables: the counter ratio and the
/// estimated remaining single-device execution times.
WorkloadClass classifyWorkload(double MissPerLoadStore,
                               double EstimatedCpuSeconds,
                               double EstimatedGpuSeconds,
                               const ClassifierThresholds &Thresholds = {});

} // namespace ecas

#endif // ECAS_PROFILE_WORKLOADCLASS_H
