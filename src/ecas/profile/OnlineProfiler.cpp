//===-- ecas/profile/OnlineProfiler.cpp - Adaptive online profiling -------===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ecas/profile/OnlineProfiler.h"

#include "ecas/support/Assert.h"
#include "ecas/support/Format.h"

#include <algorithm>

using namespace ecas;

void ProfileSample::accumulate(const ProfileSample &Other) {
  double SelfTime = ElapsedSeconds;
  double OtherTime = Other.ElapsedSeconds;
  double Total = SelfTime + OtherTime;
  if (Total <= 0.0) {
    *this = Other;
    return;
  }
  GpuLaunchFailed = GpuLaunchFailed || Other.GpuLaunchFailed;
  GpuHung = GpuHung || Other.GpuHung;
  CpuIterations += Other.CpuIterations;
  GpuIterations += Other.GpuIterations;
  CpuBusySeconds += Other.CpuBusySeconds;
  GpuBusySeconds += Other.GpuBusySeconds;
  InstructionsRetired += Other.InstructionsRetired;
  // Time-weighted blend of the ratio statistics.
  MissPerLoadStore = (MissPerLoadStore * SelfTime +
                      Other.MissPerLoadStore * OtherTime) /
                     Total;
  ElapsedSeconds = Total;
  CpuThroughput =
      CpuBusySeconds > 0.0 ? CpuIterations / CpuBusySeconds : 0.0;
  GpuThroughput =
      GpuBusySeconds > 0.0 ? GpuIterations / GpuBusySeconds : 0.0;
}

void SampleWeightedAlpha::addSample(double Alpha, double Weight) {
  ECAS_CHECK(Alpha >= 0.0 && Alpha <= 1.0, "alpha must be in [0,1]");
  ECAS_CHECK(Weight >= 0.0, "sample weight cannot be negative");
  WeightedSum += Alpha * Weight;
  TotalWeight += Weight;
}

double SampleWeightedAlpha::value() const {
  ECAS_CHECK(TotalWeight > 0.0, "no alpha samples accumulated");
  return WeightedSum / TotalWeight;
}

SampleWeightedAlpha SampleWeightedAlpha::fromParts(double WeightedSum,
                                                   double TotalWeight) {
  ECAS_CHECK(TotalWeight >= 0.0, "total weight cannot be negative");
  SampleWeightedAlpha Alpha;
  Alpha.WeightedSum = WeightedSum;
  Alpha.TotalWeight = TotalWeight;
  return Alpha;
}

OnlineProfiler::OnlineProfiler(SimProcessor &Proc, double GpuProfileSize)
    : Proc(Proc), GpuProfileSize(GpuProfileSize) {
  ECAS_CHECK(GpuProfileSize > 0.0, "GPU profile size must be positive");
}

void OnlineProfiler::setWatchdogPollSec(double Seconds) {
  ECAS_CHECK(Seconds > 0.0, "watchdog poll interval must be positive");
  WatchdogPollSec = Seconds;
}

ProfileSample OnlineProfiler::profileOnce(const KernelDesc &Kernel,
                                          double &RemainingIters) {
  ProfileSample Sample;
  if (RemainingIters <= 0.0)
    return Sample;

  FaultInjector *Faults = Proc.faults();

  // A refused profiling enqueue measures nothing; report the failure and
  // let the scheduler's policy decide between retrying and degrading.
  if (Faults && Faults->gpuLaunchFails(Proc.now())) {
    Sample.GpuLaunchFailed = true;
    if (Trace)
      Trace->instant("profile", "profile-launch-failed", Proc.now());
    return Sample;
  }

  double GpuChunk = std::min(GpuProfileSize, RemainingIters);
  double CpuShare = RemainingIters - GpuChunk;

  PerfCounters CpuBefore = Proc.cpu().counters();
  PerfCounters GpuBefore = Proc.gpu().counters();
  double Start = Proc.now();
  double HostStart = Trace ? obs::TraceRecorder::hostSeconds() : 0.0;

  Proc.gpu().enqueue(Kernel, GpuChunk);
  if (CpuShare > 0.0)
    Proc.cpu().enqueue(Kernel, CpuShare);

  // Fig. 7 step 32: the proxy waits for the GPU chunk. With an injector
  // active the wait is guarded by a progress watchdog: a GPU that stays
  // busy without retiring an iteration across a whole poll interval is
  // declared hung and its unprocessed chunk cancelled. Without an
  // injector the wait is the exact unbounded legacy wait.
  if (Faults) {
    while (Proc.gpu().busy()) {
      double PendingBefore = Proc.gpu().pendingIterations();
      Proc.runUntilGpuIdle(WatchdogPollSec);
      if (Proc.gpu().busy() &&
          Proc.gpu().pendingIterations() >= PendingBefore - 1e-9) {
        Sample.GpuHung = true;
        Proc.gpu().cancelRemaining();
        break;
      }
    }
  } else {
    Proc.runUntilGpuIdle();
  }
  // ...then (step 33) terminates the CPU workers, returning their
  // unprocessed share to the pool.
  double Unprocessed = Proc.cpu().cancelRemaining();

  double Elapsed = Proc.now() - Start;
  PerfCounters CpuDelta = Proc.cpu().counters() - CpuBefore;
  PerfCounters GpuDelta = Proc.gpu().counters() - GpuBefore;

  // On the clean path the GPU processed its whole chunk by construction;
  // under faults, trust only what the counters saw retire.
  Sample.GpuIterations = Sample.GpuHung ? GpuDelta.IterationsDone : GpuChunk;
  Sample.CpuIterations = CpuShare - Unprocessed;
  Sample.ElapsedSeconds = Elapsed;
  // Throughputs come from per-device execution time: the CPU's busy
  // seconds (it may run out of pool before the GPU finishes) and the
  // GPU's kernel-event window (launch overhead excluded — what OpenCL
  // profiling events report). One bulk launch for the post-profiling
  // remainder amortizes its own dispatch cost, so folding per-chunk
  // launch overhead into R_G would bias alpha against the GPU.
  Sample.CpuBusySeconds = CpuDelta.BusySeconds;
  Sample.GpuBusySeconds = GpuDelta.BusySeconds;
  if (CpuDelta.BusySeconds > 0.0)
    Sample.CpuThroughput = Sample.CpuIterations / CpuDelta.BusySeconds;
  if (GpuDelta.BusySeconds > 0.0)
    Sample.GpuThroughput = Sample.GpuIterations / GpuDelta.BusySeconds;
  Sample.MissPerLoadStore = CpuDelta.missPerLoadStore();
  Sample.InstructionsRetired = CpuDelta.InstructionsRetired;
  if (Faults) {
    // Counter-noise faults perturb what PCM-style reads report, not what
    // the hardware did: independent draws per counter, as each MSR read
    // glitches on its own.
    Sample.MissPerLoadStore *= Faults->counterNoiseScale(Proc.now());
    Sample.InstructionsRetired *= Faults->counterNoiseScale(Proc.now());
  }

  RemainingIters -= Sample.GpuIterations + Sample.CpuIterations;
  RemainingIters = std::max(RemainingIters, 0.0);
  if (RepSeconds && Sample.ElapsedSeconds > 0.0)
    RepSeconds->record(Sample.ElapsedSeconds);
  if (Trace)
    Trace->completeSpan(
        "profile", "profile-rep", HostStart,
        obs::TraceRecorder::hostSeconds() - HostStart, Start,
        formatString("cpu=%.0f gpu=%.0f elapsed=%.6fs%s",
                     Sample.CpuIterations, Sample.GpuIterations,
                     Sample.ElapsedSeconds, Sample.GpuHung ? " hung" : ""));
  return Sample;
}

WorkloadClass
OnlineProfiler::classify(const ProfileSample &Sample, double RemainingIters,
                         const ClassifierThresholds &Thresholds) const {
  // Single-device estimates for the remaining work use the combined-mode
  // throughputs: the best black-box estimate available without running
  // more experiments (Section 5's Short/Long criterion).
  double CpuSeconds = Sample.CpuThroughput > 0.0
                          ? RemainingIters / Sample.CpuThroughput
                          : 1e30;
  double GpuSeconds = Sample.GpuThroughput > 0.0
                          ? RemainingIters / Sample.GpuThroughput
                          : 1e30;
  return classifyWorkload(Sample.MissPerLoadStore, CpuSeconds, GpuSeconds,
                          Thresholds);
}
