//===-- ecas/profile/OnlineProfiler.cpp - Adaptive online profiling -------===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ecas/profile/OnlineProfiler.h"

#include "ecas/support/Assert.h"

#include <algorithm>

using namespace ecas;

void ProfileSample::accumulate(const ProfileSample &Other) {
  double SelfTime = ElapsedSeconds;
  double OtherTime = Other.ElapsedSeconds;
  double Total = SelfTime + OtherTime;
  if (Total <= 0.0) {
    *this = Other;
    return;
  }
  CpuIterations += Other.CpuIterations;
  GpuIterations += Other.GpuIterations;
  CpuBusySeconds += Other.CpuBusySeconds;
  GpuBusySeconds += Other.GpuBusySeconds;
  InstructionsRetired += Other.InstructionsRetired;
  // Time-weighted blend of the ratio statistics.
  MissPerLoadStore = (MissPerLoadStore * SelfTime +
                      Other.MissPerLoadStore * OtherTime) /
                     Total;
  ElapsedSeconds = Total;
  CpuThroughput =
      CpuBusySeconds > 0.0 ? CpuIterations / CpuBusySeconds : 0.0;
  GpuThroughput =
      GpuBusySeconds > 0.0 ? GpuIterations / GpuBusySeconds : 0.0;
}

void SampleWeightedAlpha::addSample(double Alpha, double Weight) {
  ECAS_CHECK(Alpha >= 0.0 && Alpha <= 1.0, "alpha must be in [0,1]");
  ECAS_CHECK(Weight >= 0.0, "sample weight cannot be negative");
  WeightedSum += Alpha * Weight;
  TotalWeight += Weight;
}

double SampleWeightedAlpha::value() const {
  ECAS_CHECK(TotalWeight > 0.0, "no alpha samples accumulated");
  return WeightedSum / TotalWeight;
}

OnlineProfiler::OnlineProfiler(SimProcessor &Proc, double GpuProfileSize)
    : Proc(Proc), GpuProfileSize(GpuProfileSize) {
  ECAS_CHECK(GpuProfileSize > 0.0, "GPU profile size must be positive");
}

ProfileSample OnlineProfiler::profileOnce(const KernelDesc &Kernel,
                                          double &RemainingIters) {
  ProfileSample Sample;
  if (RemainingIters <= 0.0)
    return Sample;

  double GpuChunk = std::min(GpuProfileSize, RemainingIters);
  double CpuShare = RemainingIters - GpuChunk;

  PerfCounters CpuBefore = Proc.cpu().counters();
  PerfCounters GpuBefore = Proc.gpu().counters();
  double Start = Proc.now();

  Proc.gpu().enqueue(Kernel, GpuChunk);
  if (CpuShare > 0.0)
    Proc.cpu().enqueue(Kernel, CpuShare);

  // Fig. 7 step 32: the proxy waits for the GPU chunk...
  Proc.runUntilGpuIdle();
  // ...then (step 33) terminates the CPU workers, returning their
  // unprocessed share to the pool.
  double Unprocessed = Proc.cpu().cancelRemaining();

  double Elapsed = Proc.now() - Start;
  PerfCounters CpuDelta = Proc.cpu().counters() - CpuBefore;
  PerfCounters GpuDelta = Proc.gpu().counters() - GpuBefore;

  Sample.GpuIterations = GpuChunk;
  Sample.CpuIterations = CpuShare - Unprocessed;
  Sample.ElapsedSeconds = Elapsed;
  // Throughputs come from per-device execution time: the CPU's busy
  // seconds (it may run out of pool before the GPU finishes) and the
  // GPU's kernel-event window (launch overhead excluded — what OpenCL
  // profiling events report). One bulk launch for the post-profiling
  // remainder amortizes its own dispatch cost, so folding per-chunk
  // launch overhead into R_G would bias alpha against the GPU.
  Sample.CpuBusySeconds = CpuDelta.BusySeconds;
  Sample.GpuBusySeconds = GpuDelta.BusySeconds;
  if (CpuDelta.BusySeconds > 0.0)
    Sample.CpuThroughput = Sample.CpuIterations / CpuDelta.BusySeconds;
  if (GpuDelta.BusySeconds > 0.0)
    Sample.GpuThroughput = Sample.GpuIterations / GpuDelta.BusySeconds;
  Sample.MissPerLoadStore = CpuDelta.missPerLoadStore();
  Sample.InstructionsRetired = CpuDelta.InstructionsRetired;

  RemainingIters -= Sample.GpuIterations + Sample.CpuIterations;
  RemainingIters = std::max(RemainingIters, 0.0);
  return Sample;
}

WorkloadClass
OnlineProfiler::classify(const ProfileSample &Sample, double RemainingIters,
                         const ClassifierThresholds &Thresholds) const {
  // Single-device estimates for the remaining work use the combined-mode
  // throughputs: the best black-box estimate available without running
  // more experiments (Section 5's Short/Long criterion).
  double CpuSeconds = Sample.CpuThroughput > 0.0
                          ? RemainingIters / Sample.CpuThroughput
                          : 1e30;
  double GpuSeconds = Sample.GpuThroughput > 0.0
                          ? RemainingIters / Sample.GpuThroughput
                          : 1e30;
  return classifyWorkload(Sample.MissPerLoadStore, CpuSeconds, GpuSeconds,
                          Thresholds);
}
