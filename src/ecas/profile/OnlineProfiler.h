//===-- ecas/profile/OnlineProfiler.h - Adaptive online profiling *- C++ -*==//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The lightweight online profiling of Section 3.1 (after Kaleem et al.,
/// PACT'14): the GPU proxy offloads GPU_PROFILE_SIZE iterations while CPU
/// workers drain the shared pool; when the GPU chunk completes, the CPU
/// side is halted and per-device throughputs plus hardware-counter
/// readings are extracted. Profiling runs against the simulated
/// processor, so everything the scheduler learns comes through the same
/// black-box channels it would use on real silicon.
///
//===----------------------------------------------------------------------===//

#ifndef ECAS_PROFILE_ONLINEPROFILER_H
#define ECAS_PROFILE_ONLINEPROFILER_H

#include "ecas/device/KernelDesc.h"
#include "ecas/obs/Metrics.h"
#include "ecas/obs/Trace.h"
#include "ecas/profile/WorkloadClass.h"
#include "ecas/sim/SimProcessor.h"

namespace ecas {

/// One profiling repetition's measurements.
struct ProfileSample {
  /// Combined-mode device throughputs in iterations/second (R_C, R_G).
  double CpuThroughput = 0.0;
  double GpuThroughput = 0.0;
  double CpuIterations = 0.0;
  double GpuIterations = 0.0;
  double ElapsedSeconds = 0.0;
  /// Per-device execution time underlying the throughput estimates.
  double CpuBusySeconds = 0.0;
  double GpuBusySeconds = 0.0;
  /// LLC misses per load-store over the profiled CPU execution.
  double MissPerLoadStore = 0.0;
  double InstructionsRetired = 0.0;
  /// The GPU refused the profiling enqueue; the repetition measured
  /// nothing and the scheduler should fall back to resilient execution.
  bool GpuLaunchFailed = false;
  /// The watchdog saw the GPU chunk stop retiring; its unprocessed share
  /// was returned to the pool and the throughputs cover only what ran.
  bool GpuHung = false;

  /// True when this repetition observed any GPU fault.
  bool faulted() const { return GpuLaunchFailed || GpuHung; }

  /// Merges another repetition (iteration-weighted) into this sample.
  void accumulate(const ProfileSample &Other);
};

/// Sample-weighted accumulator for the GPU offload ratio across kernel
/// invocations ([12]'s technique, Fig. 7 step 26): each alpha estimate is
/// weighted by the number of iterations that produced it.
class SampleWeightedAlpha {
public:
  void addSample(double Alpha, double Weight);
  bool hasValue() const { return TotalWeight > 0.0; }
  double value() const;

  /// Accumulator internals, exposed for exact round-trips through the
  /// durable table-G snapshots (value() alone cannot reconstruct the
  /// weight future merges blend against).
  double weightedSum() const { return WeightedSum; }
  double totalWeight() const { return TotalWeight; }
  static SampleWeightedAlpha fromParts(double WeightedSum,
                                       double TotalWeight);

private:
  double WeightedSum = 0.0;
  double TotalWeight = 0.0;
};

/// Runs profiling repetitions on a simulated processor.
class OnlineProfiler {
public:
  /// \p GpuProfileSize is the per-repetition GPU chunk (Fig. 7 step 31);
  /// pick it from PlatformSpec::defaultGpuProfileSize().
  OnlineProfiler(SimProcessor &Proc, double GpuProfileSize);

  /// Hang-watchdog poll interval used while a fault injector is active
  /// on the processor (no effect otherwise); schedulers propagate their
  /// GpuHealthConfig::WatchdogPollSec here.
  void setWatchdogPollSec(double Seconds);

  /// Attaches a trace recorder (nullptr detaches): each repetition then
  /// emits a "profile-rep" span covering its virtual-time window, with
  /// the measured split in the detail. Purely observational — the
  /// profiler's measurements and RemainingIters arithmetic are
  /// bit-identical with or without a recorder.
  void setTrace(obs::TraceRecorder *Recorder) { Trace = Recorder; }

  /// Attaches a histogram (nullptr detaches) that receives each
  /// repetition's elapsed virtual seconds (eas_profile_rep_seconds) —
  /// the per-repetition cost underlying the paper's "low overhead"
  /// claim. Purely observational, like setTrace().
  void setRepSeconds(obs::Histogram *H) { RepSeconds = H; }

  /// One repetition: offloads min(GpuProfileSize, remaining) iterations
  /// of \p Kernel to the GPU while the CPU drains the rest of the shared
  /// pool; on GPU completion the CPU share is cancelled back into the
  /// pool. \p RemainingIters is decremented by everything processed.
  ProfileSample profileOnce(const KernelDesc &Kernel, double &RemainingIters);

  /// Classifies from a (possibly accumulated) sample: single-device
  /// completion estimates for the remaining iterations are derived from
  /// the measured combined-mode throughputs.
  WorkloadClass classify(const ProfileSample &Sample, double RemainingIters,
                         const ClassifierThresholds &Thresholds = {}) const;

private:
  SimProcessor &Proc;
  double GpuProfileSize;
  double WatchdogPollSec = 0.02;
  obs::TraceRecorder *Trace = nullptr;
  obs::Histogram *RepSeconds = nullptr;
};

} // namespace ecas

#endif // ECAS_PROFILE_ONLINEPROFILER_H
