//===-- ecas/profile/WorkloadClass.cpp - 8-way classification -------------===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ecas/profile/WorkloadClass.h"

#include "ecas/support/Assert.h"
#include "ecas/support/Format.h"

using namespace ecas;

unsigned WorkloadClass::index() const {
  unsigned Index = 0;
  if (Bound == Boundedness::Memory)
    Index |= 4;
  if (CpuDuration == DurationClass::Short)
    Index |= 2;
  if (GpuDuration == DurationClass::Short)
    Index |= 1;
  return Index;
}

WorkloadClass WorkloadClass::fromIndex(unsigned Index) {
  ECAS_CHECK(Index < NumClasses, "workload class index out of range");
  WorkloadClass Class;
  Class.Bound = (Index & 4) ? Boundedness::Memory : Boundedness::Compute;
  Class.CpuDuration = (Index & 2) ? DurationClass::Short
                                  : DurationClass::Long;
  Class.GpuDuration = (Index & 1) ? DurationClass::Short
                                  : DurationClass::Long;
  return Class;
}

std::string WorkloadClass::name() const {
  return formatString(
      "%s/cpu-%s/gpu-%s",
      Bound == Boundedness::Memory ? "memory" : "compute",
      CpuDuration == DurationClass::Short ? "short" : "long",
      GpuDuration == DurationClass::Short ? "short" : "long");
}

std::string WorkloadClass::shortName() const {
  return formatString("%c %c %c",
                      Bound == Boundedness::Memory ? 'M' : 'C',
                      CpuDuration == DurationClass::Short ? 'S' : 'L',
                      GpuDuration == DurationClass::Short ? 'S' : 'L');
}

WorkloadClass ecas::classifyWorkload(double MissPerLoadStore,
                                     double EstimatedCpuSeconds,
                                     double EstimatedGpuSeconds,
                                     const ClassifierThresholds &Thresholds) {
  WorkloadClass Class;
  Class.Bound = MissPerLoadStore > Thresholds.MemoryIntensity
                    ? Boundedness::Memory
                    : Boundedness::Compute;
  Class.CpuDuration = EstimatedCpuSeconds < Thresholds.ShortSeconds
                          ? DurationClass::Short
                          : DurationClass::Long;
  Class.GpuDuration = EstimatedGpuSeconds < Thresholds.ShortSeconds
                          ? DurationClass::Short
                          : DurationClass::Long;
  return Class;
}
