//===-- ecas/sim/PowerTrace.cpp - Power-over-time recording ---------------===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ecas/sim/PowerTrace.h"

#include "ecas/support/Assert.h"
#include "ecas/support/Format.h"

#include <algorithm>
#include <cmath>

using namespace ecas;

PowerTrace::PowerTrace(double SampleIntervalSec)
    : IntervalSec(SampleIntervalSec) {
  ECAS_CHECK(SampleIntervalSec > 0.0, "sample interval must be positive");
}

void PowerTrace::emitCell() {
  if (CellFilled <= 0.0)
    return;
  TraceSample Sample;
  Sample.TimeSec = CellStart;
  double Inv = 1.0 / CellFilled;
  Sample.PackageWatts = CellSum.PackageWatts * Inv;
  Sample.CpuWatts = CellSum.CpuWatts * Inv;
  Sample.GpuWatts = CellSum.GpuWatts * Inv;
  Sample.UncoreWatts = CellSum.UncoreWatts * Inv;
  Sample.CpuFreqGHz = CellSum.CpuFreqGHz * Inv;
  Sample.GpuFreqGHz = CellSum.GpuFreqGHz * Inv;
  Samples.push_back(Sample);
  CellStart += IntervalSec;
  CellFilled = 0.0;
  CellSum = TraceSample();
}

void PowerTrace::addSegment(double StartSec, double DurationSec,
                            const PowerBreakdown &Power, double CpuFreqGHz,
                            double GpuFreqGHz) {
  ECAS_CHECK(DurationSec >= 0.0, "segment duration cannot be negative");
  double Cursor = StartSec;
  double End = StartSec + DurationSec;
  while (Cursor < End) {
    double CellEnd = CellStart + IntervalSec;
    // Idle gaps between segments advance the grid with zero fill.
    if (Cursor >= CellEnd) {
      emitCell();
      if (CellFilled == 0.0 && Cursor >= CellStart + IntervalSec) {
        // Jump the grid across a long gap instead of emitting empties.
        double Cells = std::floor((Cursor - CellStart) / IntervalSec);
        CellStart += Cells * IntervalSec;
      }
      continue;
    }
    double Step = std::min(End, CellEnd) - Cursor;
    CellSum.PackageWatts += Power.packageWatts() * Step;
    CellSum.CpuWatts += Power.CpuWatts * Step;
    CellSum.GpuWatts += Power.GpuWatts * Step;
    CellSum.UncoreWatts += Power.UncoreWatts * Step;
    CellSum.CpuFreqGHz += CpuFreqGHz * Step;
    CellSum.GpuFreqGHz += GpuFreqGHz * Step;
    CellFilled += Step;
    Cursor += Step;
    if (Cursor >= CellEnd - 1e-15)
      emitCell();
  }
}

void PowerTrace::finish() { emitCell(); }

std::string PowerTrace::toCsv() const {
  std::string Out = "time_s,package_w,cpu_w,gpu_w,uncore_w,cpu_ghz,gpu_ghz\n";
  for (const TraceSample &Sample : Samples)
    Out += formatString("%.6f,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f\n",
                        Sample.TimeSec, Sample.PackageWatts, Sample.CpuWatts,
                        Sample.GpuWatts, Sample.UncoreWatts,
                        Sample.CpuFreqGHz, Sample.GpuFreqGHz);
  return Out;
}
