//===-- ecas/sim/PowerModel.h - Package power evaluation -------*- C++ -*-===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The single source of truth for instantaneous package power. Both the
/// simulator's energy integration and the PCU's budget enforcement call
/// these functions, so the governor's view can never drift from the
/// "physical" power the meter integrates.
///
/// Package power = uncore base + traffic-proportional uncore power
///               + per-device (leakage + K * f^3 * activity).
///
//===----------------------------------------------------------------------===//

#ifndef ECAS_SIM_POWERMODEL_H
#define ECAS_SIM_POWERMODEL_H

#include "ecas/hw/PlatformSpec.h"

namespace ecas {

/// Per-component instantaneous power in watts.
struct PowerBreakdown {
  double CpuWatts = 0.0;
  double GpuWatts = 0.0;
  double UncoreWatts = 0.0;

  double packageWatts() const { return CpuWatts + GpuWatts + UncoreWatts; }
};

/// Dynamic-plus-leakage power of one device at frequency \p FreqGHz and
/// activity factor \p Activity (in [0, 1]).
double devicePower(const DevicePowerSpec &Power, double FreqGHz,
                   double Activity);

/// Full package power for the given operating point. \p TrafficGBs is the
/// combined DRAM traffic of both devices.
PowerBreakdown packagePower(const PlatformSpec &Spec, double CpuFreqGHz,
                            double CpuActivity, double GpuFreqGHz,
                            double GpuActivity, double TrafficGBs);

} // namespace ecas

#endif // ECAS_SIM_POWERMODEL_H
