//===-- ecas/sim/SimProcessor.h - Integrated-processor simulator *- C++ -*===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Couples the two simulated devices, the PCU governor, the RAPL-style
/// energy meter, and the optional power trace into one steppable
/// processor. Virtual time advances in slices bounded by governor epochs
/// and device-drain events, so kernel completion times are exact under
/// the throughput model while power management still happens on the
/// governor's discrete schedule.
///
//===----------------------------------------------------------------------===//

#ifndef ECAS_SIM_SIMPROCESSOR_H
#define ECAS_SIM_SIMPROCESSOR_H

#include "ecas/device/SimCpuDevice.h"
#include "ecas/device/SimGpuDevice.h"
#include "ecas/fault/FaultInjector.h"
#include "ecas/hw/PlatformSpec.h"
#include "ecas/sim/EnergyMeter.h"
#include "ecas/sim/Pcu.h"
#include "ecas/sim/PowerTrace.h"

#include <memory>

namespace ecas {

/// One simulated integrated CPU-GPU processor with virtual time.
class SimProcessor {
public:
  explicit SimProcessor(const PlatformSpec &Spec);

  const PlatformSpec &spec() const { return Spec; }
  SimCpuDevice &cpu() { return Cpu; }
  SimGpuDevice &gpu() { return Gpu; }
  const SimCpuDevice &cpu() const { return Cpu; }
  const SimGpuDevice &gpu() const { return Gpu; }
  EnergyMeter &meter() { return Meter; }
  const EnergyMeter &meter() const { return Meter; }
  /// Per-domain RAPL counters, as real silicon exposes them:
  /// MSR_PP0_ENERGY_STATUS (CPU cores) and MSR_PP1_ENERGY_STATUS
  /// (graphics). Package = PP0 + PP1 + uncore.
  EnergyMeter &pp0Meter() { return Pp0Meter; }
  const EnergyMeter &pp0Meter() const { return Pp0Meter; }
  EnergyMeter &pp1Meter() { return Pp1Meter; }
  const EnergyMeter &pp1Meter() const { return Pp1Meter; }
  const Pcu &pcu() const { return Governor; }
  Pcu &pcu() { return Governor; }

  /// Virtual time in seconds since construction.
  double now() const { return Now; }

  /// Attaches a power trace sampling every \p SampleIntervalSec; replaces
  /// any prior trace.
  void enableTrace(double SampleIntervalSec);
  PowerTrace *trace() { return Trace.get(); }

  /// The fault injector realizing spec().Faults, or nullptr when the plan
  /// is empty (the default). With no injector every code path below is
  /// the exact pre-fault-subsystem behaviour.
  FaultInjector *faults() { return Faults.get(); }
  const FaultInjector *faults() const { return Faults.get(); }

  /// Runs until both devices are idle or \p DeadlineSec of virtual time
  /// elapses. \returns the virtual seconds consumed by this call.
  double runUntilIdle(double DeadlineSec = 1e30);

  /// Runs until the GPU queue drains (CPU may keep work); used by the
  /// profiling phase's GPU proxy. \returns virtual seconds consumed.
  double runUntilGpuIdle(double DeadlineSec = 1e30);

  /// Advances exactly \p Seconds of virtual time, accruing idle power if
  /// there is no work.
  void runFor(double Seconds);

  /// Upper bound on a single integration slice (default 1 ms). Tighter
  /// slices refine power integration between governor epochs.
  void setMaxSliceSec(double Seconds);

private:
  /// Advances one slice of at most \p MaxDt seconds. Returns the slice
  /// length (always positive).
  double step(double MaxDt);

  PlatformSpec Spec;
  SimCpuDevice Cpu;
  SimGpuDevice Gpu;
  Pcu Governor;
  EnergyMeter Meter;
  EnergyMeter Pp0Meter;
  EnergyMeter Pp1Meter;
  std::unique_ptr<FaultInjector> Faults;
  std::unique_ptr<PowerTrace> Trace;
  double Now = 0.0;
  double NextEpoch = 0.0;
  double MaxSlice = 1e-3;
  double LastTrafficGBs = 0.0;
  bool LastCpuBusy = false;
  bool LastGpuBusy = false;
  double LastGovernorTime = 0.0;
};

} // namespace ecas

#endif // ECAS_SIM_SIMPROCESSOR_H
