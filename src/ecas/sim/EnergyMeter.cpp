//===-- ecas/sim/EnergyMeter.cpp - RAPL MSR emulation ---------------------===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ecas/sim/EnergyMeter.h"

#include "ecas/support/Assert.h"

#include <cmath>

using namespace ecas;

EnergyMeter::EnergyMeter(double EnergyUnitJoules)
    : UnitJoules(EnergyUnitJoules) {
  ECAS_CHECK(EnergyUnitJoules > 0.0, "energy unit must be positive");
}

void EnergyMeter::deposit(double Joules) {
  ECAS_CHECK(Joules >= 0.0, "energy deposits cannot be negative");
  Total += Joules;
  Fraction += Joules / UnitJoules;
  double Whole = std::floor(Fraction);
  Fraction -= Whole;
  // Wraparound is the defined MSR behaviour; uint32_t addition provides it.
  Counter += static_cast<uint32_t>(
      static_cast<uint64_t>(Whole) & 0xffffffffULL);
}

double EnergyMeter::counterPeriodJoules() const {
  return 4294967296.0 * UnitJoules;
}

double EnergyMeter::joulesSince(uint32_t EarlierSample) const {
  uint32_t Delta = Counter - EarlierSample; // Modulo-2^32 by construction.
  return static_cast<double>(Delta) * UnitJoules;
}

void EnergyMeter::injectCounterJump(uint64_t Units) {
  Counter += static_cast<uint32_t>(Units & 0xffffffffULL);
}
