//===-- ecas/sim/Pcu.h - Package power-control-unit model ------*- C++ -*-===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Model of the package control unit the paper treats as a black box:
/// a governor that re-samples device activity on a fixed epoch, picks
/// frequency targets (single-device turbo vs. reduced co-run frequency),
/// ramps upward slowly but drops instantly, clamps the CPU to an
/// efficiency frequency when the GPU wakes up (the Fig. 4 dips), and
/// enforces the package power budget — either by throttling the CPU
/// (GpuPriority, the Haswell-like policy) or by scaling both devices
/// (the Bay Trail-like policy).
///
//===----------------------------------------------------------------------===//

#ifndef ECAS_SIM_PCU_H
#define ECAS_SIM_PCU_H

#include "ecas/hw/PlatformSpec.h"

namespace ecas {

/// Per-epoch snapshot of device state the governor reacts to.
struct PcuObservation {
  bool CpuActive = false;
  bool GpuActive = false;
  /// Power-model activity factors observed over the last epoch.
  double CpuActivity = 0.0;
  double GpuActivity = 0.0;
  /// Combined DRAM traffic over the last epoch, GB/s.
  double TrafficGBs = 0.0;
};

/// The governor. Deterministic: identical observation sequences yield
/// identical frequency sequences.
///
/// Thread-safety contract: externally synchronized (DESIGN.md §9). A
/// Pcu is owned by exactly one SimProcessor, and a SimProcessor serves
/// one client thread; nothing here may be touched concurrently, so the
/// class carries no capability. Concurrent EAS clients each bring their
/// own SimProcessor (and therefore their own Pcu).
class Pcu {
public:
  explicit Pcu(const PlatformSpec &Spec);

  /// Advances the governor given the observed device state.
  /// \p ElapsedSec is the wall time since the previous call; upward
  /// frequency ramping is budgeted against it (a full
  /// SamplingIntervalSec buys one RampUpGHzPerEpoch step), so
  /// event-triggered invocations cannot ramp faster than time allows.
  void stepEpoch(const PcuObservation &Obs,
                 double ElapsedSec = -1.0);

  /// Lightweight reaction to a device busy-state flip between epochs:
  /// hardware clock gating switches the waking device's clock
  /// immediately, but policy (co-run caps, the efficiency reset, budget
  /// enforcement) waits for the next periodic epoch — bursts shorter
  /// than the sampling interval are invisible to the governor proper,
  /// which is why the paper's graph workloads co-run at full speed while
  /// Fig. 4's long bursts get throttled.
  void noteActivityTransition(bool CpuActive, bool GpuActive);

  /// Extension (the paper's stated future work: "incorporate feedback
  /// from our user-level runtime in power management techniques"). The
  /// runtime announces the split it is about to execute; the governor
  /// jumps straight to the matching steady-state operating point instead
  /// of discovering it through wake resets and ramping. \p Alpha is the
  /// GPU offload ratio of the upcoming phase.
  void hintUpcomingSplit(double Alpha);

  /// Pins externally requested frequency ceilings (the DVFS actuation
  /// behind OperatingPoint::PState — the sysfs max-freq analogue). The
  /// governor keeps full authority *below* the cap: ramping, co-run
  /// policy, and budget enforcement run unchanged and the cap is
  /// re-applied after every governor move. Caps survive reset() and
  /// stay until clearFrequencyCap(). Values below a device's floor
  /// clamp to the floor.
  void setFrequencyCap(double CpuGHz, double GpuGHz);

  /// Removes the pinned ceilings; the envelope is the spec's again.
  void clearFrequencyCap();

  double cpuFreqGHz() const { return CpuFreq; }
  double gpuFreqGHz() const { return GpuFreq; }
  double cpuFreqCapGHz() const { return CpuCapGHz; }
  double gpuFreqCapGHz() const { return GpuCapGHz; }

  /// Restores power-on frequencies and forgets activity history.
  void reset();

private:
  void enforceBudget(const PcuObservation &Obs);
  void applyCaps();

  const PlatformSpec &Spec;
  double CpuFreq;
  double GpuFreq;
  /// 1e30 = uncapped; keeps every legacy frequency sequence
  /// bit-identical when no cap has been requested.
  double CpuCapGHz = 1e30;
  double GpuCapGHz = 1e30;
  bool GpuWasActive = false;
};

} // namespace ecas

#endif // ECAS_SIM_PCU_H
