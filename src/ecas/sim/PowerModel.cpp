//===-- ecas/sim/PowerModel.cpp - Package power evaluation ----------------===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ecas/sim/PowerModel.h"

using namespace ecas;

double ecas::devicePower(const DevicePowerSpec &Power, double FreqGHz,
                         double Activity) {
  double Cubic = FreqGHz * FreqGHz * FreqGHz;
  return Power.LeakageWatts + Power.CubicWattsPerGHz3 * Cubic * Activity;
}

PowerBreakdown ecas::packagePower(const PlatformSpec &Spec, double CpuFreqGHz,
                                  double CpuActivity, double GpuFreqGHz,
                                  double GpuActivity, double TrafficGBs) {
  PowerBreakdown Out;
  Out.CpuWatts = devicePower(Spec.CpuPower, CpuFreqGHz, CpuActivity);
  Out.GpuWatts = devicePower(Spec.GpuPower, GpuFreqGHz, GpuActivity);
  Out.UncoreWatts =
      Spec.Uncore.BaseWatts + Spec.Uncore.WattsPerGBs * TrafficGBs;
  return Out;
}
