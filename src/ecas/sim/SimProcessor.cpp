//===-- ecas/sim/SimProcessor.cpp - Integrated-processor simulator --------===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ecas/sim/SimProcessor.h"

#include "ecas/sim/PowerModel.h"
#include "ecas/support/Assert.h"

#include <algorithm>

using namespace ecas;

SimProcessor::SimProcessor(const PlatformSpec &SpecIn)
    : Spec(SpecIn), Cpu(Spec), Gpu(Spec), Governor(Spec),
      Meter(Spec.Pcu.EnergyUnitJoules), Pp0Meter(Spec.Pcu.EnergyUnitJoules),
      Pp1Meter(Spec.Pcu.EnergyUnitJoules) {
  std::string Error;
  ECAS_CHECK(Spec.validate(Error), "SimProcessor given an invalid spec");
  NextEpoch = Spec.Pcu.SamplingIntervalSec;
  if (Spec.Faults.enabled())
    Faults = std::make_unique<FaultInjector>(Spec.Faults);
}

void SimProcessor::enableTrace(double SampleIntervalSec) {
  Trace = std::make_unique<PowerTrace>(SampleIntervalSec);
}

void SimProcessor::setMaxSliceSec(double Seconds) {
  ECAS_CHECK(Seconds > 0.0, "slice length must be positive");
  MaxSlice = Seconds;
}

double SimProcessor::step(double MaxDt) {
  ECAS_CHECK(MaxDt > 0.0, "step requires positive time budget");

  // Fault injection: the GPU's throughput derate is re-sampled each
  // slice (0 while a hang is active, throttle scale otherwise), so the
  // scheduler only ever observes its *effects* — work that stops
  // retiring — never the injector itself.
  if (Faults)
    Gpu.setThroughputDerate(Faults->gpuThroughputScale(Now));

  // Full governor policy runs on the periodic sampling epoch; busy-state
  // flips between epochs only gate device clocks (bursts shorter than
  // the sampling interval are invisible to the governor proper).
  bool CpuBusyNow = Cpu.busy();
  bool GpuBusyNow = Gpu.busy();
  if (Now >= NextEpoch - 1e-12) {
    PcuObservation Obs;
    Obs.CpuActive = CpuBusyNow;
    Obs.GpuActive = GpuBusyNow;
    Obs.CpuActivity = Cpu.lastActivity();
    Obs.GpuActivity = Gpu.lastActivity();
    Obs.TrafficGBs = LastTrafficGBs;
    Governor.stepEpoch(Obs, Now - LastGovernorTime);
    LastGovernorTime = Now;
    NextEpoch = Now + Spec.Pcu.SamplingIntervalSec;
    LastCpuBusy = CpuBusyNow;
    LastGpuBusy = GpuBusyNow;
  } else if (CpuBusyNow != LastCpuBusy || GpuBusyNow != LastGpuBusy) {
    Governor.noteActivityTransition(CpuBusyNow, GpuBusyNow);
    LastCpuBusy = CpuBusyNow;
    LastGpuBusy = GpuBusyNow;
  }

  double CpuFreq = Governor.cpuFreqGHz();
  double GpuFreq = Governor.gpuFreqGHz();

  // Device-level frequency hints clamp the governor's pick for the
  // slice (hints below the hardware floor clamp to the floor; 0 = no
  // hint). The governor itself is not consulted — hints are the
  // runtime's black-box feedback channel, not a policy input.
  if (Cpu.frequencyHintGHz() > 0.0)
    CpuFreq = std::min(
        CpuFreq, std::max(Cpu.frequencyHintGHz(), Spec.Cpu.MinFreqGHz));
  if (Gpu.frequencyHintGHz() > 0.0)
    GpuFreq = std::min(
        GpuFreq, std::max(Gpu.frequencyHintGHz(), Spec.Gpu.MinFreqGHz));

  // DRAM bandwidth arbitration: max-min fairness, like a round-robin
  // memory controller — each device is guaranteed half the bandwidth,
  // and capacity a device doesn't demand flows to the other.
  RatePoint CpuRate = Cpu.currentRate(CpuFreq);
  RatePoint GpuRate = Gpu.currentRate(GpuFreq);
  double CpuShare = CpuRate.BandwidthDemandGBs;
  double GpuShare = GpuRate.BandwidthDemandGBs;
  double Capacity = Spec.Memory.BandwidthGBs;
  if (CpuShare + GpuShare > Capacity) {
    double Half = Capacity * 0.5;
    if (CpuShare <= Half)
      GpuShare = Capacity - CpuShare;
    else if (GpuShare <= Half)
      CpuShare = Capacity - GpuShare;
    else
      CpuShare = GpuShare = Half;
  }

  // The slice ends at the earliest of: caller budget, next epoch, either
  // device draining its head work item.
  double Dt = std::min(MaxDt, MaxSlice);
  Dt = std::min(Dt, NextEpoch - Now);
  if (Cpu.busy())
    Dt = std::min(Dt, Cpu.timeToHeadDrain(CpuFreq, CpuShare));
  if (Gpu.busy())
    Dt = std::min(Dt, Gpu.timeToHeadDrain(GpuFreq, GpuShare));
  Dt = std::max(Dt, 1e-9); // Guarantee progress against rounding.

  double CpuBusySec = Cpu.advance(Dt, CpuFreq, CpuShare);
  double GpuBusySec = Gpu.advance(Dt, GpuFreq, GpuShare);

  // Time-weighted activity: a device that drained mid-slice idles for the
  // remainder.
  auto BlendActivity = [Dt](double BusySec, double BusyActivity,
                            double IdleActivity) {
    return (BusyActivity * BusySec + IdleActivity * (Dt - BusySec)) / Dt;
  };
  double CpuActivity = BlendActivity(CpuBusySec, Cpu.lastActivity(),
                                     Spec.CpuPower.IdleActivity);
  double GpuActivity = BlendActivity(GpuBusySec, Gpu.lastActivity(),
                                     Spec.GpuPower.IdleActivity);
  double TrafficGBs = (Cpu.lastTrafficGBs() * CpuBusySec +
                       Gpu.lastTrafficGBs() * GpuBusySec) /
                      Dt;

  PowerBreakdown Power = packagePower(Spec, CpuFreq, CpuActivity, GpuFreq,
                                      GpuActivity, TrafficGBs);
  // RAPL faults hit only the package meter the characterization reads;
  // PP0/PP1 stay truthful so tests can still see the ground truth. A
  // dropped sample is energy that flowed but was never counted; a
  // counter jump is the reverse.
  bool DropSample = Faults && Faults->dropRaplSample(Now);
  if (!DropSample)
    Meter.deposit(Power.packageWatts() * Dt);
  if (Faults) {
    if (uint64_t Jump = Faults->pendingRaplJumpUnits(Now))
      Meter.injectCounterJump(Jump);
  }
  Pp0Meter.deposit(Power.CpuWatts * Dt);
  Pp1Meter.deposit(Power.GpuWatts * Dt);
  if (Trace) { // power-trace capture is opt-in (enableTrace)
    // ecas-hotpath: allow(alloc)
    Trace->addSegment(Now, Dt, Power, CpuFreq, GpuFreq);
  }

  LastTrafficGBs = TrafficGBs;
  Now += Dt;
  return Dt;
}

double SimProcessor::runUntilIdle(double DeadlineSec) {
  double Start = Now;
  while ((Cpu.busy() || Gpu.busy()) && Now - Start < DeadlineSec)
    step(DeadlineSec - (Now - Start));
  return Now - Start;
}

double SimProcessor::runUntilGpuIdle(double DeadlineSec) {
  double Start = Now;
  while (Gpu.busy() && Now - Start < DeadlineSec)
    step(DeadlineSec - (Now - Start));
  return Now - Start;
}

void SimProcessor::runFor(double Seconds) {
  ECAS_CHECK(Seconds >= 0.0, "runFor requires non-negative duration");
  double End = Now + Seconds;
  while (Now < End - 1e-12)
    step(End - Now);
}
