//===-- ecas/sim/EnergyMeter.h - RAPL MSR emulation -------------*- C++ -*-===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Emulates MSR_PKG_ENERGY_STATUS: a 32-bit counter that accumulates
/// package energy in hardware "energy units" and wraps around. The
/// characterization code reads energy exactly the way the paper does —
/// sample the MSR, diff modulo 2^32, multiply by the unit — so it would
/// run unchanged against real RAPL.
///
//===----------------------------------------------------------------------===//

#ifndef ECAS_SIM_ENERGYMETER_H
#define ECAS_SIM_ENERGYMETER_H

#include <cstdint>

namespace ecas {

/// Accumulates energy deposits and exposes them as a wrapping 32-bit MSR.
class EnergyMeter {
public:
  explicit EnergyMeter(double EnergyUnitJoules);

  /// Adds \p Joules of package energy (called by the simulator each step).
  void deposit(double Joules);

  /// Reads the emulated MSR_PKG_ENERGY_STATUS value.
  uint32_t readMsr() const { return Counter; }

  /// Joules represented by one counter increment.
  double energyUnitJoules() const { return UnitJoules; }

  /// Energy elapsed since an earlier MSR sample, handling one wraparound.
  double joulesSince(uint32_t EarlierSample) const;

  /// Exact accumulated energy — ground truth for tests; real hardware has
  /// no equivalent, so library code other than tests must not use it.
  double totalJoules() const { return Total; }

private:
  double UnitJoules;
  double Total = 0.0;
  /// Sub-unit remainder awaiting the next counter increment.
  double Fraction = 0.0;
  uint32_t Counter = 0;
};

} // namespace ecas

#endif // ECAS_SIM_ENERGYMETER_H
