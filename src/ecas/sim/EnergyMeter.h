//===-- ecas/sim/EnergyMeter.h - RAPL MSR emulation -------------*- C++ -*-===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Emulates MSR_PKG_ENERGY_STATUS: a 32-bit counter that accumulates
/// package energy in hardware "energy units" and wraps around. The
/// characterization code reads energy exactly the way the paper does —
/// sample the MSR, diff modulo 2^32, multiply by the unit — so it would
/// run unchanged against real RAPL.
///
//===----------------------------------------------------------------------===//

#ifndef ECAS_SIM_ENERGYMETER_H
#define ECAS_SIM_ENERGYMETER_H

#include "ecas/obs/Metrics.h"

#include <cstdint>

namespace ecas {

/// Accumulates energy deposits and exposes them as a wrapping 32-bit MSR.
///
/// Sampling-interval contract: joulesSince() recovers the true interval
/// energy if and only if the counter wrapped AT MOST ONCE between the two
/// samples, because a 32-bit difference is inherently modulo 2^32. With
/// the desktop unit (61 uJ) one full wrap is ~262 kJ — minutes at TDP —
/// so readers must sample at least that often. An interval spanning k >= 2
/// wraps aliases: the reader sees the true energy minus floor(k) *
/// counterPeriodJoules() and cannot detect the loss. This mirrors real
/// RAPL, where the kernel's polling thread exists precisely to bound the
/// sample interval; the fault injector's RaplWrapJump event exercises the
/// aliasing case deliberately.
class EnergyMeter {
public:
  explicit EnergyMeter(double EnergyUnitJoules);

  /// Adds \p Joules of package energy (called by the simulator each step).
  void deposit(double Joules);

  /// Reads the emulated MSR_PKG_ENERGY_STATUS value.
  uint32_t readMsr() const {
    if (ReadCounter)
      ReadCounter->add();
    return Counter;
  }

  /// Observability hook (eas_msr_reads_total): when attached, every
  /// readMsr() bumps the counter, exposing the sampling cadence the
  /// wrap contract below depends on. Attach before concurrent use
  /// (ExecutionSession does, at run entry); purely observational — the
  /// MSR value returned is untouched.
  void setReadCounter(obs::Counter *C) { ReadCounter = C; }

  /// Joules represented by one counter increment.
  double energyUnitJoules() const { return UnitJoules; }

  /// Joules represented by one full trip around the 32-bit counter:
  /// 2^32 * energyUnitJoules(). Energy amounts congruent modulo this
  /// period are indistinguishable to joulesSince().
  double counterPeriodJoules() const;

  /// Energy elapsed since an earlier MSR sample. Correct for intervals
  /// containing at most one wraparound (see the class contract above);
  /// intervals spanning k >= 2 wraps under-report by floor(k) periods.
  double joulesSince(uint32_t EarlierSample) const;

  /// Fault-injection hook: advances the raw counter by \p Units without
  /// touching the ground-truth total, emulating a glitched MSR read or an
  /// interval that silently spanned extra wraparounds.
  void injectCounterJump(uint64_t Units);

  /// Exact accumulated energy — ground truth for tests; real hardware has
  /// no equivalent, so library code other than tests must not use it.
  double totalJoules() const { return Total; }

private:
  double UnitJoules;
  double Total = 0.0;
  /// Sub-unit remainder awaiting the next counter increment.
  double Fraction = 0.0;
  uint32_t Counter = 0;
  obs::Counter *ReadCounter = nullptr;
};

} // namespace ecas

#endif // ECAS_SIM_ENERGYMETER_H
