//===-- ecas/sim/Pcu.cpp - Package power-control-unit model ---------------===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ecas/sim/Pcu.h"

#include "ecas/sim/PowerModel.h"

#include <algorithm>
#include <cmath>

using namespace ecas;

Pcu::Pcu(const PlatformSpec &Spec) : Spec(Spec) { reset(); }

void Pcu::reset() {
  CpuFreq = Spec.Cpu.BaseFreqGHz;
  GpuFreq = Spec.Gpu.MinFreqGHz;
  GpuWasActive = false;
  // Caps deliberately survive: they model an externally pinned ceiling
  // (sysfs max-freq), not governor state.
  applyCaps();
}

void Pcu::setFrequencyCap(double CpuGHz, double GpuGHz) {
  CpuCapGHz = CpuGHz;
  GpuCapGHz = GpuGHz;
  applyCaps();
}

void Pcu::clearFrequencyCap() {
  CpuCapGHz = 1e30;
  GpuCapGHz = 1e30;
}

void Pcu::applyCaps() {
  // min(freq, max(cap, floor)): an uncapped 1e30 ceiling leaves the
  // legacy frequency sequence bit-identical, and a cap below the floor
  // clamps to the floor rather than stalling the device.
  CpuFreq = std::min(CpuFreq, std::max(CpuCapGHz, Spec.Cpu.MinFreqGHz));
  GpuFreq = std::min(GpuFreq, std::max(GpuCapGHz, Spec.Gpu.MinFreqGHz));
}

void Pcu::stepEpoch(const PcuObservation &Obs, double ElapsedSec) {
  if (ElapsedSec < 0.0)
    ElapsedSec = Spec.Pcu.SamplingIntervalSec;
  // Frequency targets for the observed activity pattern. Co-running
  // clamps CPU turbo: integrated parts share the thermal envelope.
  double CpuTarget = Spec.Cpu.MinFreqGHz;
  if (Obs.CpuActive)
    CpuTarget = Obs.GpuActive ? Spec.Cpu.CoRunMaxFreqGHz
                              : Spec.Cpu.MaxTurboGHz;
  double GpuTarget = Obs.GpuActive ? Spec.Gpu.MaxFreqGHz
                                   : Spec.Gpu.MinFreqGHz;

  // GPU wake-up transition: the governor conservatively reallocates the
  // budget by dropping the CPU to its efficiency point, then ramps back.
  // Short GPU bursts therefore depress package power well below the
  // steady co-run level — the behaviour of the paper's Fig. 4.
  if (Obs.GpuActive && !GpuWasActive && Obs.CpuActive)
    CpuFreq = std::min(CpuFreq, Spec.Cpu.EfficiencyFreqGHz);

  // Ramp: upward movement is rate-limited per unit time, downward
  // immediate.
  double RampBudget = Spec.Pcu.RampUpGHzPerEpoch *
                      std::min(1.0, ElapsedSec /
                                        Spec.Pcu.SamplingIntervalSec);
  if (CpuTarget >= CpuFreq)
    CpuFreq = std::min(CpuTarget, CpuFreq + RampBudget);
  else
    CpuFreq = CpuTarget;
  // The GPU's dispatch latency is modeled at the device; its clock
  // switches within an epoch.
  GpuFreq = GpuTarget;

  enforceBudget(Obs);
  applyCaps();
  GpuWasActive = Obs.GpuActive;
}

void Pcu::noteActivityTransition(bool CpuActive, bool GpuActive) {
  // Waking devices clock up immediately (to the non-turbo base); going
  // idle drops to the floor. Turbo and cross-device policy stay with the
  // periodic epoch.
  if (GpuActive)
    GpuFreq = Spec.Gpu.MaxFreqGHz;
  else
    GpuFreq = Spec.Gpu.MinFreqGHz;
  if (CpuActive)
    CpuFreq = std::max(CpuFreq, Spec.Cpu.BaseFreqGHz);
  else
    CpuFreq = Spec.Cpu.MinFreqGHz;
  applyCaps();
}

void Pcu::hintUpcomingSplit(double Alpha) {
  bool CpuActive = Alpha < 1.0;
  bool GpuActive = Alpha > 0.0;
  CpuFreq = !CpuActive ? Spec.Cpu.MinFreqGHz
            : GpuActive ? Spec.Cpu.CoRunMaxFreqGHz
                        : Spec.Cpu.MaxTurboGHz;
  GpuFreq = GpuActive ? Spec.Gpu.MaxFreqGHz : Spec.Gpu.MinFreqGHz;
  // The governor now expects the GPU activity, so the next epoch does
  // not fire the conservative wake reset.
  GpuWasActive = GpuActive;
  PcuObservation Expected;
  Expected.CpuActive = CpuActive;
  Expected.GpuActive = GpuActive;
  Expected.CpuActivity = CpuActive ? Spec.CpuPower.ComputeActivity
                                   : Spec.CpuPower.IdleActivity;
  Expected.GpuActivity = GpuActive ? Spec.GpuPower.ComputeActivity
                                   : Spec.GpuPower.IdleActivity;
  enforceBudget(Expected);
  applyCaps();
}

void Pcu::enforceBudget(const PcuObservation &Obs) {
  double CpuAct = Obs.CpuActive ? Obs.CpuActivity : Spec.CpuPower.IdleActivity;
  double GpuAct = Obs.GpuActive ? Obs.GpuActivity : Spec.GpuPower.IdleActivity;
  PowerBreakdown Estimate = packagePower(Spec, CpuFreq, CpuAct, GpuFreq,
                                         GpuAct, Obs.TrafficGBs);
  double Budget = Spec.Pcu.TdpWatts;
  if (Estimate.packageWatts() <= Budget)
    return;

  auto CubeRoot = [](double X) { return std::cbrt(std::max(X, 0.0)); };

  if (Spec.Pcu.GpuPriority) {
    // Haswell-like: the GPU keeps its clock; the CPU absorbs the deficit.
    double Others = Estimate.packageWatts() - Estimate.CpuWatts +
                    Spec.CpuPower.LeakageWatts;
    double AllowedDynamic = Budget - Others;
    double Coefficient = Spec.CpuPower.CubicWattsPerGHz3 * std::max(CpuAct,
                                                                    1e-6);
    double Fitting = CubeRoot(AllowedDynamic / Coefficient);
    CpuFreq = std::clamp(Fitting, Spec.Cpu.MinFreqGHz, CpuFreq);
    return;
  }

  // Proportional policy: both devices' dynamic power scales by s^3.
  double StaticWatts = Spec.CpuPower.LeakageWatts +
                       Spec.GpuPower.LeakageWatts + Estimate.UncoreWatts;
  double DynamicWatts = Estimate.packageWatts() - StaticWatts;
  if (DynamicWatts <= 0.0)
    return;
  double Scale = CubeRoot((Budget - StaticWatts) / DynamicWatts);
  Scale = std::clamp(Scale, 0.0, 1.0);
  CpuFreq = std::max(Spec.Cpu.MinFreqGHz, CpuFreq * Scale);
  GpuFreq = std::max(Spec.Gpu.MinFreqGHz, GpuFreq * Scale);
}
