//===-- ecas/sim/PowerTrace.h - Power-over-time recording ------*- C++ -*-===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Time-series recorder for the simulator's power breakdown, used to
/// regenerate the paper's power-over-time charts (Figs. 2, 3, 4). The
/// simulator reports variable-length segments; the trace resamples them
/// onto a fixed grid like a real power logger would.
///
//===----------------------------------------------------------------------===//

#ifndef ECAS_SIM_POWERTRACE_H
#define ECAS_SIM_POWERTRACE_H

#include "ecas/sim/PowerModel.h"

#include <string>
#include <vector>

namespace ecas {

/// One resampled trace point.
struct TraceSample {
  double TimeSec = 0.0;
  double PackageWatts = 0.0;
  double CpuWatts = 0.0;
  double GpuWatts = 0.0;
  double UncoreWatts = 0.0;
  double CpuFreqGHz = 0.0;
  double GpuFreqGHz = 0.0;
};

/// Fixed-interval power logger fed by variable-length simulator segments.
class PowerTrace {
public:
  explicit PowerTrace(double SampleIntervalSec);

  /// Records that the breakdown \p Power and frequencies held over
  /// [\p StartSec, \p StartSec + \p DurationSec). Segments must be fed in
  /// non-decreasing time order; grid samples are emitted with
  /// time-weighted averaging of everything overlapping each cell.
  void addSegment(double StartSec, double DurationSec,
                  const PowerBreakdown &Power, double CpuFreqGHz,
                  double GpuFreqGHz);

  /// Flushes the partially filled tail cell, if any.
  void finish();

  const std::vector<TraceSample> &samples() const { return Samples; }
  double sampleIntervalSec() const { return IntervalSec; }

  /// Renders "time_s,package_w,cpu_w,gpu_w,uncore_w,cpu_ghz,gpu_ghz" CSV.
  std::string toCsv() const;

private:
  void emitCell();

  double IntervalSec;
  std::vector<TraceSample> Samples;
  // Accumulator for the in-progress grid cell.
  double CellStart = 0.0;
  double CellFilled = 0.0;
  TraceSample CellSum;
};

} // namespace ecas

#endif // ECAS_SIM_POWERTRACE_H
