//===-- ecas/hw/PlatformSpec.cpp - Integrated CPU-GPU SKU specs -----------===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ecas/hw/PlatformSpec.h"

#include "ecas/support/Format.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <vector>

using namespace ecas;

const char *ecas::deviceKindName(DeviceKind Kind) {
  return Kind == DeviceKind::Cpu ? "cpu" : "gpu";
}

unsigned PlatformSpec::gpuHardwareParallelism() const {
  return Gpu.ExecutionUnits * Gpu.ThreadsPerEU * Gpu.SimdWidth;
}

unsigned PlatformSpec::defaultGpuProfileSize() const {
  unsigned Parallelism = gpuHardwareParallelism();
  unsigned Pow2 = 1;
  while (Pow2 * 2 <= Parallelism)
    Pow2 *= 2;
  return Pow2;
}

unsigned PlatformSpec::pstateCount() const {
  return PStateCount == 0 ? 1 : PStateCount;
}

PStateSpec PlatformSpec::pstateAt(unsigned Index) const {
  if (PStateCount == 0 || Index >= PStateCount) {
    PStateSpec Full;
    Full.CpuFreqGHz = Cpu.MaxTurboGHz;
    Full.GpuFreqGHz = Gpu.MaxFreqGHz;
    return Full;
  }
  return PStates[Index];
}

void PlatformSpec::synthesizePStates(unsigned Count) {
  Count = std::min(std::max(Count, 1u), MaxPStates);
  PStateCount = Count;
  for (unsigned I = 0; I != MaxPStates; ++I)
    PStates[I] = PStateSpec{};
  for (unsigned I = 0; I != Count; ++I) {
    // Geometric ladder from each device's ceiling down to its floor:
    // equal frequency *ratios* between adjacent states, the shape real
    // DVFS tables use.
    double T = Count > 1 ? static_cast<double>(I) / (Count - 1) : 0.0;
    PStates[I].CpuFreqGHz =
        Cpu.MaxTurboGHz * std::pow(Cpu.MinFreqGHz / Cpu.MaxTurboGHz, T);
    PStates[I].GpuFreqGHz =
        Gpu.MaxFreqGHz * std::pow(Gpu.MinFreqGHz / Gpu.MaxFreqGHz, T);
  }
}

namespace {

/// One serializable scalar field: name plus load/store accessors.
struct FieldBinding {
  const char *Key;
  std::function<double(const PlatformSpec &)> Load;
  std::function<void(PlatformSpec &, double)> Store;
};

} // namespace

static std::vector<FieldBinding> fieldBindings();

bool PlatformSpec::validate(std::string &Error) const {
  auto Fail = [&Error](std::string Msg) {
    Error = std::move(Msg);
    return false;
  };
  if (Cpu.Cores == 0)
    return Fail("cpu.cores must be nonzero");
  if (Gpu.ExecutionUnits == 0 || Gpu.ThreadsPerEU == 0 || Gpu.SimdWidth == 0)
    return Fail("gpu geometry fields must be nonzero");
  if (!(Cpu.MinFreqGHz > 0.0) || Cpu.MinFreqGHz > Cpu.BaseFreqGHz ||
      Cpu.BaseFreqGHz > Cpu.MaxTurboGHz)
    return Fail("cpu frequency range must satisfy 0 < min <= base <= turbo");
  if (Cpu.CoRunMaxFreqGHz < Cpu.MinFreqGHz ||
      Cpu.CoRunMaxFreqGHz > Cpu.MaxTurboGHz)
    return Fail("cpu.corun_max_freq must lie within [min, turbo]");
  if (Cpu.EfficiencyFreqGHz < Cpu.MinFreqGHz ||
      Cpu.EfficiencyFreqGHz > Cpu.MaxTurboGHz)
    return Fail("cpu.efficiency_freq must lie within [min, turbo]");
  if (!(Gpu.MinFreqGHz > 0.0) || Gpu.MinFreqGHz > Gpu.MaxFreqGHz)
    return Fail("gpu frequency range must satisfy 0 < min <= max");
  if (!(Memory.BandwidthGBs > 0.0))
    return Fail("memory.bandwidth must be positive");
  if (!(Pcu.TdpWatts > 0.0))
    return Fail("pcu.tdp must be positive");
  if (!(Pcu.SamplingIntervalSec > 0.0))
    return Fail("pcu.sampling_interval must be positive");
  if (!(Pcu.EnergyUnitJoules > 0.0))
    return Fail("pcu.energy_unit must be positive");
  if (!(Pcu.RampUpGHzPerEpoch > 0.0))
    return Fail("pcu.ramp_up must be positive");
  for (const DevicePowerSpec *Power : {&CpuPower, &GpuPower}) {
    if (Power->LeakageWatts < 0.0 || Power->CubicWattsPerGHz3 < 0.0)
      return Fail("device power coefficients must be non-negative");
    if (Power->ComputeActivity <= 0.0 || Power->MemoryActivity <= 0.0)
      return Fail("device activity factors must be positive");
  }
  if (PStateCount > MaxPStates)
    return Fail("pstate.count exceeds the table size");
  for (unsigned I = 0; I != PStateCount; ++I) {
    if (PStates[I].CpuFreqGHz < Cpu.MinFreqGHz ||
        PStates[I].CpuFreqGHz > Cpu.MaxTurboGHz)
      return Fail(formatString(
          "pstate%u.cpu_freq_ghz must lie within [min, turbo]", I));
    if (PStates[I].GpuFreqGHz < Gpu.MinFreqGHz ||
        PStates[I].GpuFreqGHz > Gpu.MaxFreqGHz)
      return Fail(formatString(
          "pstate%u.gpu_freq_ghz must lie within [min, max]", I));
    // Fastest-first ordering backs the decision core's tie-break (lowest
    // index wins ties, which must mean "no slower than necessary").
    if (I > 0 && (PStates[I].CpuFreqGHz > PStates[I - 1].CpuFreqGHz ||
                  PStates[I].GpuFreqGHz > PStates[I - 1].GpuFreqGHz))
      return Fail(formatString(
          "pstate%u must not raise a clock above pstate%u", I, I - 1));
  }
  // Range checks above compare against NaN (always false), so a NaN can
  // slip through every one of them; sweep all scalar fields explicitly.
  for (const FieldBinding &Field : fieldBindings())
    if (!std::isfinite(Field.Load(*this)))
      return Fail(std::string(Field.Key) + " is not finite");
  return true;
}

static std::vector<FieldBinding> fieldBindings() {
  std::vector<FieldBinding> Fields;
  auto Add = [&Fields](const char *Key, auto Member) {
    Fields.push_back(
        {Key,
         [Member](const PlatformSpec &Spec) {
           return static_cast<double>(Spec.*Member);
         },
         [Member](PlatformSpec &Spec, double Value) {
           using MemberType = std::decay_t<decltype(Spec.*Member)>;
           Spec.*Member = static_cast<MemberType>(Value);
         }});
  };
  // Nested members need explicit lambdas; a small macro keeps the table
  // readable without inventing a reflection layer.
#define ECAS_FIELD(KEY, EXPR)                                                  \
  Fields.push_back({KEY,                                                       \
                    [](const PlatformSpec &Spec) {                             \
                      return static_cast<double>(Spec.EXPR);                   \
                    },                                                         \
                    [](PlatformSpec &Spec, double Value) {                     \
                      Spec.EXPR =                                              \
                          static_cast<std::decay_t<decltype(Spec.EXPR)>>(      \
                              Value);                                          \
                    }})
  ECAS_FIELD("cpu.cores", Cpu.Cores);
  ECAS_FIELD("cpu.threads_per_core", Cpu.ThreadsPerCore);
  ECAS_FIELD("cpu.min_freq_ghz", Cpu.MinFreqGHz);
  ECAS_FIELD("cpu.base_freq_ghz", Cpu.BaseFreqGHz);
  ECAS_FIELD("cpu.max_turbo_ghz", Cpu.MaxTurboGHz);
  ECAS_FIELD("cpu.corun_max_freq_ghz", Cpu.CoRunMaxFreqGHz);
  ECAS_FIELD("cpu.efficiency_freq_ghz", Cpu.EfficiencyFreqGHz);
  ECAS_FIELD("cpu.simd_width", Cpu.SimdWidth);
  ECAS_FIELD("cpu.cycles_scale", Cpu.CyclesScale);
  ECAS_FIELD("cpu.miss_penalty_cycles", Cpu.MissPenaltyCycles);
  ECAS_FIELD("cpu.mem_parallelism", Cpu.MemParallelism);
  ECAS_FIELD("gpu.execution_units", Gpu.ExecutionUnits);
  ECAS_FIELD("gpu.threads_per_eu", Gpu.ThreadsPerEU);
  ECAS_FIELD("gpu.simd_width", Gpu.SimdWidth);
  ECAS_FIELD("gpu.min_freq_ghz", Gpu.MinFreqGHz);
  ECAS_FIELD("gpu.max_freq_ghz", Gpu.MaxFreqGHz);
  ECAS_FIELD("gpu.launch_latency_sec", Gpu.LaunchLatencySec);
  ECAS_FIELD("memory.bandwidth_gbs", Memory.BandwidthGBs);
  ECAS_FIELD("memory.llc_mbytes", Memory.LlcMBytes);
  ECAS_FIELD("cpu_power.leakage_watts", CpuPower.LeakageWatts);
  ECAS_FIELD("cpu_power.cubic_watts_per_ghz3", CpuPower.CubicWattsPerGHz3);
  ECAS_FIELD("cpu_power.compute_activity", CpuPower.ComputeActivity);
  ECAS_FIELD("cpu_power.memory_activity", CpuPower.MemoryActivity);
  ECAS_FIELD("cpu_power.idle_activity", CpuPower.IdleActivity);
  ECAS_FIELD("gpu_power.leakage_watts", GpuPower.LeakageWatts);
  ECAS_FIELD("gpu_power.cubic_watts_per_ghz3", GpuPower.CubicWattsPerGHz3);
  ECAS_FIELD("gpu_power.compute_activity", GpuPower.ComputeActivity);
  ECAS_FIELD("gpu_power.memory_activity", GpuPower.MemoryActivity);
  ECAS_FIELD("gpu_power.idle_activity", GpuPower.IdleActivity);
  ECAS_FIELD("uncore.base_watts", Uncore.BaseWatts);
  ECAS_FIELD("uncore.watts_per_gbs", Uncore.WattsPerGBs);
  ECAS_FIELD("pcu.tdp_watts", Pcu.TdpWatts);
  ECAS_FIELD("pcu.sampling_interval_sec", Pcu.SamplingIntervalSec);
  ECAS_FIELD("pcu.ramp_up_ghz_per_epoch", Pcu.RampUpGHzPerEpoch);
  ECAS_FIELD("pcu.gpu_priority", Pcu.GpuPriority);
  ECAS_FIELD("pcu.energy_unit_joules", Pcu.EnergyUnitJoules);
  ECAS_FIELD("pstate.count", PStateCount);
  ECAS_FIELD("pstate0.cpu_freq_ghz", PStates[0].CpuFreqGHz);
  ECAS_FIELD("pstate0.gpu_freq_ghz", PStates[0].GpuFreqGHz);
  ECAS_FIELD("pstate1.cpu_freq_ghz", PStates[1].CpuFreqGHz);
  ECAS_FIELD("pstate1.gpu_freq_ghz", PStates[1].GpuFreqGHz);
  ECAS_FIELD("pstate2.cpu_freq_ghz", PStates[2].CpuFreqGHz);
  ECAS_FIELD("pstate2.gpu_freq_ghz", PStates[2].GpuFreqGHz);
  ECAS_FIELD("pstate3.cpu_freq_ghz", PStates[3].CpuFreqGHz);
  ECAS_FIELD("pstate3.gpu_freq_ghz", PStates[3].GpuFreqGHz);
  ECAS_FIELD("pstate4.cpu_freq_ghz", PStates[4].CpuFreqGHz);
  ECAS_FIELD("pstate4.gpu_freq_ghz", PStates[4].GpuFreqGHz);
  ECAS_FIELD("pstate5.cpu_freq_ghz", PStates[5].CpuFreqGHz);
  ECAS_FIELD("pstate5.gpu_freq_ghz", PStates[5].GpuFreqGHz);
  ECAS_FIELD("pstate6.cpu_freq_ghz", PStates[6].CpuFreqGHz);
  ECAS_FIELD("pstate6.gpu_freq_ghz", PStates[6].GpuFreqGHz);
  ECAS_FIELD("pstate7.cpu_freq_ghz", PStates[7].CpuFreqGHz);
  ECAS_FIELD("pstate7.gpu_freq_ghz", PStates[7].GpuFreqGHz);
#undef ECAS_FIELD
  (void)Add;
  return Fields;
}

std::string PlatformSpec::serialize() const {
  std::string Out = formatString("name = %s\n", Name.c_str());
  for (const FieldBinding &Field : fieldBindings())
    Out += formatString("%s = %.17g\n", Field.Key, Field.Load(*this));
  return Out;
}

ErrorOr<PlatformSpec> PlatformSpec::load(const std::string &Text) {
  PlatformSpec Spec;
  std::vector<FieldBinding> Fields = fieldBindings();
  unsigned LineNo = 0;
  for (const std::string &Line : splitString(Text, '\n')) {
    ++LineNo;
    if (Line.empty() || Line[0] == '#')
      continue;
    size_t Eq = Line.find('=');
    if (Eq == std::string::npos)
      return Status::error(
          ErrCode::ParseError,
          formatString("line %u: expected 'key = value'", LineNo));
    std::string Key = trimString(Line.substr(0, Eq));
    std::string Value = trimString(Line.substr(Eq + 1));
    if (Key == "name") {
      Spec.Name = Value;
      continue;
    }
    bool Known = false;
    for (const FieldBinding &Field : Fields) {
      if (Key != Field.Key)
        continue;
      double Parsed;
      if (!parseDouble(Value, Parsed))
        return Status::error(ErrCode::ParseError,
                             formatString("line %u: unparsable value '%s' for "
                                          "key '%s'",
                                          LineNo, Value.c_str(), Key.c_str()));
      if (!std::isfinite(Parsed))
        return Status::error(ErrCode::OutOfRange,
                             formatString("line %u: non-finite value for key "
                                          "'%s'",
                                          LineNo, Key.c_str()));
      Field.Store(Spec, Parsed);
      Known = true;
      break;
    }
    if (!Known)
      return Status::error(
          ErrCode::ParseError,
          formatString("line %u: unknown key '%s'", LineNo, Key.c_str()));
  }
  std::string Error;
  if (!Spec.validate(Error))
    return Status::error(ErrCode::InvalidArgument, Error);
  return Spec;
}

std::optional<PlatformSpec>
PlatformSpec::deserialize(const std::string &Text) {
  ErrorOr<PlatformSpec> Loaded = load(Text);
  if (!Loaded.ok())
    return std::nullopt;
  return *Loaded;
}
