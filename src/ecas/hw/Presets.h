//===-- ecas/hw/Presets.h - The paper's two platforms -----------*- C++ -*-===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Factory functions for the two evaluation platforms of Section 5:
/// the Intel Haswell i7-4770 desktop (HD Graphics 4600) and the Intel
/// Bay Trail Atom Z3740 tablet. Coefficients are calibrated against the
/// package-power figures the paper reports (see Presets.cpp).
///
//===----------------------------------------------------------------------===//

#ifndef ECAS_HW_PRESETS_H
#define ECAS_HW_PRESETS_H

#include "ecas/hw/PlatformSpec.h"

#include <vector>

namespace ecas {

/// 3.4 GHz i7-4770, 4 cores / 8 threads, HD 4600 (20 EUs, 0.35-1.2 GHz).
PlatformSpec haswellDesktop();

/// 1.33 GHz Atom Z3740, 4 cores, 4-EU GPU at 0.331-0.667 GHz.
PlatformSpec bayTrailTablet();

/// Both presets, desktop first — handy for "run on every platform" loops.
std::vector<PlatformSpec> allPresets();

} // namespace ecas

#endif // ECAS_HW_PRESETS_H
