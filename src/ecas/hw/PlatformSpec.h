//===-- ecas/hw/PlatformSpec.h - Integrated CPU-GPU SKU specs --*- C++ -*-===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parameter sets describing an integrated CPU-GPU processor: device
/// micro-architecture (cores/EUs, frequency ranges), shared memory system,
/// per-component power coefficients, and the PCU governor policy. The
/// scheduler itself never reads these — it is black-box — but the
/// simulator substrate is built from them, and two presets reproduce the
/// paper's platforms (see Presets.cpp).
///
//===----------------------------------------------------------------------===//

#ifndef ECAS_HW_PLATFORMSPEC_H
#define ECAS_HW_PLATFORMSPEC_H

#include "ecas/fault/FaultPlan.h"
#include "ecas/support/Error.h"

#include <array>
#include <optional>
#include <string>

namespace ecas {

/// Which side of the integrated processor a device sits on.
enum class DeviceKind { Cpu, Gpu };

/// Returns "cpu" or "gpu".
const char *deviceKindName(DeviceKind Kind);

/// CPU complex: cores, frequency envelope, and memory-latency behaviour.
struct CpuSpec {
  unsigned Cores = 4;
  unsigned ThreadsPerCore = 2;
  double MinFreqGHz = 0.8;
  double BaseFreqGHz = 3.4;
  /// All-core turbo ceiling when the CPU runs alone.
  double MaxTurboGHz = 3.6;
  /// Governor cap while the GPU is simultaneously active (integrated parts
  /// share the package thermal budget, so co-run turbo is lower).
  double CoRunMaxFreqGHz = 3.1;
  /// Frequency the governor resets to on an activity transition before
  /// ramping back up; the source of the paper's Fig. 4 power dips.
  double EfficiencyFreqGHz = 1.8;
  /// Vector lanes usable by data-parallel kernels (AVX2 = 8 floats).
  double SimdWidth = 8.0;
  /// Multiplier on per-iteration compute cycles: 1.0 for a wide
  /// out-of-order core; >1 for narrow in-order cores (Atom) that spend
  /// more cycles on the same work.
  double CyclesScale = 1.0;
  /// Average stall cycles charged per LLC miss...
  double MissPenaltyCycles = 180.0;
  /// ...divided by the achievable memory-level parallelism.
  double MemParallelism = 6.0;
};

/// GPU slice: execution units and frequency envelope.
struct GpuSpec {
  unsigned ExecutionUnits = 20;
  unsigned ThreadsPerEU = 7;
  unsigned SimdWidth = 16;
  double MinFreqGHz = 0.35;
  double MaxFreqGHz = 1.2;
  /// Fixed driver/dispatch cost charged per kernel enqueue, in seconds.
  double LaunchLatencySec = 20e-6;
};

/// Shared memory system.
struct MemorySpec {
  double BandwidthGBs = 25.6;
  double LlcMBytes = 8.0;
};

/// Dynamic + leakage power model for one device. Dynamic power follows
/// K * f^3 * activity — the cubic absorbs the voltage/frequency curve —
/// with the activity factor selected by what the device is doing.
struct DevicePowerSpec {
  double LeakageWatts = 2.0;
  double CubicWattsPerGHz3 = 0.8;
  double ComputeActivity = 1.0;
  /// Activity while memory-bound: cores stall, clock gating kicks in.
  double MemoryActivity = 0.75;
  double IdleActivity = 0.03;
};

/// Ring/LLC/memory-controller power: a floor plus a per-bandwidth term.
/// The per-bandwidth term is what makes memory-bound workloads *hotter*
/// than compute-bound ones on the desktop (Fig. 3) while the tablet's tiny
/// uncore inverts that relation (Fig. 6).
struct UncorePowerSpec {
  double BaseWatts = 4.0;
  double WattsPerGBs = 0.96;
};

/// Package power-control-unit policy. The scheduler treats all of this as
/// an opaque black box; only the simulator reads it.
struct PcuSpec {
  /// Sustained package budget the governor enforces by scaling frequency.
  double TdpWatts = 84.0;
  /// Governor decision epoch. Activity is re-sampled and frequency
  /// targets recomputed only on these boundaries.
  double SamplingIntervalSec = 0.02;
  /// Maximum upward frequency movement per epoch (downward moves are
  /// immediate). Short kernels therefore run below steady-state frequency.
  double RampUpGHzPerEpoch = 0.3;
  /// Under budget pressure, does the GPU keep its frequency (true, the
  /// desktop policy) or do both devices scale proportionally (false)?
  bool GpuPriority = true;
  /// RAPL MSR_PKG_ENERGY_STATUS least-significant-bit weight in joules.
  double EnergyUnitJoules = 61e-6;
};

/// One advertised P-state: the frequency ceilings the platform exposes
/// for DVFS-aware scheduling. Each state caps both device clocks; the
/// governor still moves freely below the cap (ramping, budget
/// enforcement, wake resets all apply unchanged).
struct PStateSpec {
  double CpuFreqGHz = 0.0;
  double GpuFreqGHz = 0.0;
};

/// A complete integrated-processor description.
struct PlatformSpec {
  /// Size of the fixed P-state table (kept equal to core kMaxPStates;
  /// EasScheduler.cpp static_asserts the pairing).
  static constexpr unsigned MaxPStates = 8;

  std::string Name;
  CpuSpec Cpu;
  GpuSpec Gpu;
  MemorySpec Memory;
  DevicePowerSpec CpuPower;
  DevicePowerSpec GpuPower;
  UncorePowerSpec Uncore;
  PcuSpec Pcu;
  /// Advertised P-state table, ordered fastest first (state 0 = full
  /// speed). PStateCount == 0 means the platform advertises no DVFS
  /// ladder — a single implicit full-speed state, the pre-P-state
  /// behaviour — so legacy spec files load bit-identically.
  std::array<PStateSpec, MaxPStates> PStates{};
  unsigned PStateCount = 0;
  /// Fault-injection plan driving the simulator built from this spec.
  /// Empty (the default) means no injection and bit-identical behaviour
  /// to a fault-free build. Deliberately not serialized: a spec file
  /// describes a platform, not a failure scenario.
  FaultPlan Faults;

  /// EUs x threads/EU x SIMD width: the work-item count needed to fill
  /// the GPU (2240 on the desktop preset, matching Section 3.2).
  unsigned gpuHardwareParallelism() const;

  /// Largest power of two not exceeding gpuHardwareParallelism(); the
  /// paper picks 2048 on the desktop this way (GPU_PROFILE_SIZE).
  unsigned defaultGpuProfileSize() const;

  /// Effective P-state count: at least 1 (the implicit full-speed state
  /// when the table is empty).
  unsigned pstateCount() const;

  /// The \p Index-th effective P-state. With an empty table, state 0 is
  /// the full-speed envelope {Cpu.MaxTurboGHz, Gpu.MaxFreqGHz}.
  PStateSpec pstateAt(unsigned Index) const;

  /// Synthesizes an N-entry ladder spanning each device's frequency
  /// envelope: state 0 at the top (MaxTurbo / GPU max), state N-1 at the
  /// floor, geometrically spaced in between. Used by ecas-cli --pstates
  /// for platforms whose spec files predate the table.
  void synthesizePStates(unsigned Count);

  /// Checks internal consistency (positive frequencies, ordered ranges,
  /// nonzero budgets, all scalars finite). On failure returns false and
  /// fills \p Error.
  bool validate(std::string &Error) const;

  /// Text round-trip (key = value lines) so characterization results can
  /// name the platform they were measured on.
  std::string serialize() const;

  /// Parses a serialized spec, returning a recoverable error naming the
  /// offending line for malformed input (unknown key, unparsable or
  /// non-finite value, failed validation).
  static ErrorOr<PlatformSpec> load(const std::string &Text);

  /// Legacy wrapper over load() for callers that only care about
  /// success/failure.
  static std::optional<PlatformSpec> deserialize(const std::string &Text);
};

} // namespace ecas

#endif // ECAS_HW_PLATFORMSPEC_H
