//===-- ecas/hw/Presets.cpp - The paper's two platforms -------------------===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// Calibration. The paper reports these package-power observations, which
// pin down the coefficients below (base = uncore.base + both leakages):
//
// Haswell desktop (Figs. 3-5): compute-bound CPU-alone ~45 W at full
// turbo, GPU-alone ~30 W at 1.2 GHz, co-run ~55 W; memory-bound CPU-alone
// ~60 W, co-run ~63 W; Fig. 4 short-burst dips below ~40 W.
//   base = 4 + 2 + 1 = 7 W
//   cpu cubic: 45 = 7 + Kc*3.6^3          -> Kc = 38/46.66  = 0.8144
//   gpu cubic: 30 = 7 + Kg*1.2^3          -> Kg = 23/1.728  = 13.31
//   co-run compute: 55 = 7 + Kc*f^3 + 23  -> f  = 3.13 GHz  (CoRunMaxFreq)
//   memory CPU-alone: 60 = 7 + 0.75*38 + w*25.6 GB/s -> w = 0.957
//   memory co-run: 63 = 7 + 0.75*Kc*3.13^3 + Ag*23 + w*25.6 -> Ag = 0.50
//
// Bay Trail tablet (Fig. 6): compute-bound CPU-alone ~1.5 W at 1.86 GHz
// burst, GPU-alone ~2.0 W at 0.667 GHz; memory-bound CPU-alone ~0.7 W,
// GPU-alone ~1.3 W (memory-bound *below* compute-bound — tiny uncore).
//   base = 0.15 + 0.1 + 0.1 = 0.35 W
//   cpu cubic: 1.5 = 0.35 + Kc*1.86^3      -> Kc = 1.15/6.43  = 0.1788
//   gpu cubic: 2.0 = 0.35 + Kg*0.667^3     -> Kg = 1.65/0.2968 = 5.560
//   memory CPU-alone: 0.7 = 0.35 + Ac*1.15 + 0.01*10 GB/s -> Ac = 0.217
//   memory GPU-alone: 1.3 = 0.35 + Ag*1.65 + 0.1          -> Ag = 0.515
//   The 2.5 W SoC budget binds during co-runs; with GpuPriority=false
//   both devices scale, shaping the concave curves of Fig. 6.
//
//===----------------------------------------------------------------------===//

#include "ecas/hw/Presets.h"

#include "ecas/support/Assert.h"

using namespace ecas;

PlatformSpec ecas::haswellDesktop() {
  PlatformSpec Spec;
  Spec.Name = "haswell-desktop";

  Spec.Cpu.Cores = 4;
  Spec.Cpu.ThreadsPerCore = 2;
  Spec.Cpu.MinFreqGHz = 0.8;
  Spec.Cpu.BaseFreqGHz = 3.4;
  Spec.Cpu.MaxTurboGHz = 3.6;
  Spec.Cpu.CoRunMaxFreqGHz = 3.13;
  Spec.Cpu.EfficiencyFreqGHz = 1.0;
  Spec.Cpu.SimdWidth = 8.0;
  Spec.Cpu.MissPenaltyCycles = 180.0;
  Spec.Cpu.MemParallelism = 6.0;

  Spec.Gpu.ExecutionUnits = 20;
  Spec.Gpu.ThreadsPerEU = 7;
  Spec.Gpu.SimdWidth = 16;
  Spec.Gpu.MinFreqGHz = 0.35;
  Spec.Gpu.MaxFreqGHz = 1.2;
  Spec.Gpu.LaunchLatencySec = 5e-6;

  Spec.Memory.BandwidthGBs = 25.6;
  Spec.Memory.LlcMBytes = 8.0;

  Spec.CpuPower.LeakageWatts = 2.0;
  Spec.CpuPower.CubicWattsPerGHz3 = 0.8144;
  Spec.CpuPower.ComputeActivity = 1.0;
  Spec.CpuPower.MemoryActivity = 0.75;
  Spec.CpuPower.IdleActivity = 0.03;

  Spec.GpuPower.LeakageWatts = 1.0;
  Spec.GpuPower.CubicWattsPerGHz3 = 13.31;
  Spec.GpuPower.ComputeActivity = 1.0;
  Spec.GpuPower.MemoryActivity = 0.50;
  Spec.GpuPower.IdleActivity = 0.02;

  Spec.Uncore.BaseWatts = 4.0;
  Spec.Uncore.WattsPerGBs = 0.957;

  Spec.Pcu.TdpWatts = 84.0;
  Spec.Pcu.SamplingIntervalSec = 0.02;
  Spec.Pcu.RampUpGHzPerEpoch = 0.35;
  Spec.Pcu.GpuPriority = true;
  // Haswell RAPL energy unit: 2^-14 J.
  Spec.Pcu.EnergyUnitJoules = 6.103515625e-5;

  std::string Error;
  ECAS_CHECK(Spec.validate(Error), "haswellDesktop preset invalid");
  return Spec;
}

PlatformSpec ecas::bayTrailTablet() {
  PlatformSpec Spec;
  Spec.Name = "baytrail-tablet";

  Spec.Cpu.Cores = 4;
  Spec.Cpu.ThreadsPerCore = 1;
  Spec.Cpu.MinFreqGHz = 0.5;
  Spec.Cpu.BaseFreqGHz = 1.33;
  Spec.Cpu.MaxTurboGHz = 1.86;
  Spec.Cpu.CoRunMaxFreqGHz = 1.6;
  Spec.Cpu.EfficiencyFreqGHz = 0.8;
  // Atom Silvermont: SSE4 only, weaker vector units, and a narrow
  // in-order pipeline that spends ~1.7x the cycles per iteration.
  Spec.Cpu.SimdWidth = 4.0;
  Spec.Cpu.CyclesScale = 1.7;
  Spec.Cpu.MissPenaltyCycles = 150.0;
  Spec.Cpu.MemParallelism = 4.0;

  Spec.Gpu.ExecutionUnits = 4;
  Spec.Gpu.ThreadsPerEU = 7;
  Spec.Gpu.SimdWidth = 16;
  Spec.Gpu.MinFreqGHz = 0.331;
  Spec.Gpu.MaxFreqGHz = 0.667;
  Spec.Gpu.LaunchLatencySec = 15e-6;

  Spec.Memory.BandwidthGBs = 10.6;
  Spec.Memory.LlcMBytes = 2.0;

  Spec.CpuPower.LeakageWatts = 0.10;
  Spec.CpuPower.CubicWattsPerGHz3 = 0.1788;
  Spec.CpuPower.ComputeActivity = 1.0;
  Spec.CpuPower.MemoryActivity = 0.217;
  Spec.CpuPower.IdleActivity = 0.05;

  Spec.GpuPower.LeakageWatts = 0.10;
  Spec.GpuPower.CubicWattsPerGHz3 = 5.560;
  Spec.GpuPower.ComputeActivity = 1.0;
  Spec.GpuPower.MemoryActivity = 0.515;
  Spec.GpuPower.IdleActivity = 0.04;

  Spec.Uncore.BaseWatts = 0.15;
  Spec.Uncore.WattsPerGBs = 0.010;

  Spec.Pcu.TdpWatts = 2.5;
  Spec.Pcu.SamplingIntervalSec = 0.03;
  Spec.Pcu.RampUpGHzPerEpoch = 0.25;
  Spec.Pcu.GpuPriority = false;
  // Valleyview RAPL-equivalent granularity is finer on low-power parts.
  Spec.Pcu.EnergyUnitJoules = 1.52587890625e-5;

  std::string Error;
  ECAS_CHECK(Spec.validate(Error), "bayTrailTablet preset invalid");
  return Spec;
}

std::vector<PlatformSpec> ecas::allPresets() {
  return {haswellDesktop(), bayTrailTablet()};
}
