//===-- ecas/support/AtomicFile.h - Durable atomic file writes -*- C++ -*-===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one blessed implementation of the write-a-file-atomically idiom
/// (DESIGN.md §13). Every durable artifact — table-G snapshots, metrics
/// exports, journal resets — goes through writeFileAtomic(), which
/// performs the full crash-safe sequence:
///
///   1. write "<path>.tmp" and fsync it (the *contents* are durable),
///   2. rename the temp file over the destination (the *name* flips
///      atomically),
///   3. fsync the destination's parent directory (the *rename* is
///      durable — without this step a power cut after rename can
///      resurrect the old file, or no file at all, on journaling
///      filesystems that haven't committed the directory update).
///
/// Step 3 is the durability hole the pre-§13 helpers had; ecas-lint's
/// atomic-write rule now forbids raw std::rename/fsync outside this
/// file and the journal, so the fix cannot regress silently.
///
/// The write path consults the process-global storage-fault injector
/// (fault/StorageFaults.h): an injected short write is detected and
/// reported as IoError (the destination is untouched, like ENOSPC),
/// while an injected bit flip is silent (media corruption — the
/// reader's CRC is the defense).
///
//===----------------------------------------------------------------------===//

#ifndef ECAS_SUPPORT_ATOMICFILE_H
#define ECAS_SUPPORT_ATOMICFILE_H

#include "ecas/support/Error.h"

#include <string>
#include <string_view>

namespace ecas {

/// Atomically replaces \p Path with \p Bytes: temp write + fsync +
/// rename + parent-directory fsync. On failure the destination is
/// either the old content or the new content, never a mixture; a stray
/// "<path>.tmp" may remain and is overwritten by the next attempt.
Status writeFileAtomic(const std::string &Path, std::string_view Bytes);

/// Reads all of \p Path into \p Out. A missing file is not an error:
/// \p Existed is set false and \p Out cleared. Read failures on an
/// existing file return IoError.
Status readFileBytes(const std::string &Path, std::string &Out,
                     bool &Existed);

/// Flushes the directory containing \p Path (best-effort no-op on
/// platforms without directory fsync). Exposed for the journal, whose
/// append-mode writes need the same rename-durability step after
/// creating the file.
Status syncParentDir(const std::string &Path);

} // namespace ecas

#endif // ECAS_SUPPORT_ATOMICFILE_H
