//===-- ecas/support/SignalSafety.h - Handler-context marker ---*- C++ -*-===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ECAS_SIGNAL_SAFE marks a function that runs in fatal-signal or
/// terminate-handler context, where only async-signal-safe calls
/// (write(2), open(2), raw atomics...) are legal — no malloc, no locks,
/// no stdio, no iostreams, no std::string. The macro expands to
/// nothing; like ECAS_HOT it exists as a greppable token for a static
/// checker: ecas-lint's signal-unsafe-in-handler rule flags any
/// heap/lock/stdio use inside a marked function's body (DESIGN.md §16).
///
//===----------------------------------------------------------------------===//

#ifndef ECAS_SUPPORT_SIGNALSAFETY_H
#define ECAS_SUPPORT_SIGNALSAFETY_H

#define ECAS_SIGNAL_SAFE

#endif // ECAS_SUPPORT_SIGNALSAFETY_H
