//===-- ecas/support/Cancellation.h - Cooperative cancellation -*- C++ -*-===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A shared cancellation token with an optional deadline, threaded
/// through the runtime's blocking surfaces (ThreadPool, ParallelFor,
/// MiniCl, EasScheduler) so a caller can bound any invocation.
///
/// The token is clock-agnostic: setDeadline() records a value on
/// whatever clock the polling site reads — host steady seconds in the
/// ThreadPool and MiniCl, virtual SimProcessor seconds in the scheduler
/// — and shouldStop(Now) compares against it. Cancellation is
/// cooperative and sticky: once cancel() is called or a deadline is
/// observed expired, every copy of the token reports cancelled forever.
///
//===----------------------------------------------------------------------===//

#ifndef ECAS_SUPPORT_CANCELLATION_H
#define ECAS_SUPPORT_CANCELLATION_H

#include <atomic>
#include <limits>
#include <memory>

namespace ecas {

/// Copyable handle to shared cancellation state; all copies observe the
/// same flag and deadline. Thread-safe without locks: the shared state
/// is two atomics with release/acquire publication, so there is no
/// capability to annotate (DESIGN.md §9) and polling a token can never
/// participate in a lock cycle — tokens are safe to touch from any
/// cancellation point, whatever locks the caller holds.
class CancellationToken {
public:
  CancellationToken() : Shared(std::make_shared<State>()) {}

  /// Token pre-armed with a deadline (same clock the poll sites use).
  static CancellationToken withDeadline(double DeadlineSec) {
    CancellationToken Token;
    Token.setDeadline(DeadlineSec);
    return Token;
  }

  /// Requests cancellation; observed by every copy of this token.
  void cancel() { Shared->Cancelled.store(true, std::memory_order_release); }

  bool cancelled() const {
    return Shared->Cancelled.load(std::memory_order_acquire);
  }

  /// Arms (or moves) the deadline. \p DeadlineSec is an absolute value
  /// on the clock the polling sites pass to shouldStop().
  void setDeadline(double DeadlineSec) {
    Shared->Deadline.store(DeadlineSec, std::memory_order_release);
  }

  bool hasDeadline() const {
    return Shared->Deadline.load(std::memory_order_acquire) <
           std::numeric_limits<double>::infinity();
  }
  double deadline() const {
    return Shared->Deadline.load(std::memory_order_acquire);
  }

  /// True once cancel() was called or \p NowSec reached the deadline.
  /// A deadline hit latches the cancelled flag so later polls (and polls
  /// on other clocks) stay stopped.
  bool shouldStop(double NowSec) const {
    if (Shared->Cancelled.load(std::memory_order_acquire))
      return true;
    if (NowSec >= Shared->Deadline.load(std::memory_order_acquire)) {
      Shared->Cancelled.store(true, std::memory_order_release);
      return true;
    }
    return false;
  }

private:
  struct State {
    std::atomic<bool> Cancelled{false};
    std::atomic<double> Deadline{std::numeric_limits<double>::infinity()};
  };
  std::shared_ptr<State> Shared;
};

} // namespace ecas

#endif // ECAS_SUPPORT_CANCELLATION_H
