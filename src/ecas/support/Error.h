//===-- ecas/support/Error.h - Recoverable error propagation ---*- C++ -*-===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Status and ErrorOr<T>: recoverable-error plumbing for the fallible
/// surfaces of the library — anything whose failure is caused by the
/// *environment* (malformed input files, an unavailable device, a
/// timed-out dispatch) rather than by a programming mistake. The split
/// mirrors support/Assert.h's contract: ECAS_CHECK still aborts on
/// invariant violations that only a bug can produce; everything a user
/// input or a flaky platform can trigger returns a Status instead.
///
//===----------------------------------------------------------------------===//

#ifndef ECAS_SUPPORT_ERROR_H
#define ECAS_SUPPORT_ERROR_H

#include "ecas/support/Assert.h"

#include <optional>
#include <string>
#include <utility>

namespace ecas {

/// Coarse classification of recoverable failures.
enum class ErrCode {
  InvalidArgument,
  ParseError,
  Truncated,
  OutOfRange,
  Incomplete,
  DeviceUnavailable,
  Timeout,
  IoError,
  Cancelled,
  VersionMismatch,
  CorruptData,
  /// The service cannot queue more work right now; retry after backoff.
  Overloaded,
  /// Queue wait plus expected service time already exceed the request's
  /// deadline — queueing it would only produce doomed work.
  DeadlineInfeasible,
};

/// Returns a stable lowercase name for \p Code ("parse error", ...).
const char *errCodeName(ErrCode Code);

/// Success or a (code, message) describing a recoverable failure.
class Status {
public:
  /// Default-constructed Status is success.
  Status() = default;

  static Status success() { return Status(); }
  static Status error(ErrCode Code, std::string Message) {
    Status S;
    S.Failed = true;
    S.Code = Code;
    S.Message = std::move(Message);
    return S;
  }

  bool ok() const { return !Failed; }
  explicit operator bool() const { return ok(); }

  /// Requires !ok().
  ErrCode code() const {
    ECAS_CHECK(Failed, "code() queried on a success Status");
    return Code;
  }
  const std::string &message() const { return Message; }

  /// "parse error: curve 3 has a non-finite coefficient" (empty for ok).
  std::string toString() const {
    if (!Failed)
      return "ok";
    return std::string(errCodeName(Code)) + ": " + Message;
  }

private:
  bool Failed = false;
  ErrCode Code = ErrCode::InvalidArgument;
  std::string Message;
};

/// Either a value of type T or the Status explaining why there is none.
template <typename T> class ErrorOr {
public:
  ErrorOr(T Value) : Value(std::move(Value)) {}
  ErrorOr(Status Error) : Err(std::move(Error)) {
    ECAS_CHECK(!Err.ok(), "ErrorOr constructed from a success Status");
  }

  bool ok() const { return Value.has_value(); }
  explicit operator bool() const { return ok(); }

  /// The failure description; success Status when a value is present.
  const Status &status() const { return Err; }

  /// Requires ok().
  T &value() {
    ECAS_CHECK(ok(), "value() on an errored ErrorOr");
    return *Value;
  }
  const T &value() const {
    ECAS_CHECK(ok(), "value() on an errored ErrorOr");
    return *Value;
  }
  T &operator*() { return value(); }
  const T &operator*() const { return value(); }
  T *operator->() { return &value(); }
  const T *operator->() const { return &value(); }

  /// Value on success, \p Fallback otherwise.
  T valueOr(T Fallback) const { return ok() ? *Value : std::move(Fallback); }

private:
  Status Err;
  std::optional<T> Value;
};

} // namespace ecas

#endif // ECAS_SUPPORT_ERROR_H
