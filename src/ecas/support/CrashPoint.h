//===-- ecas/support/CrashPoint.h - Crash-point injection ------*- C++ -*-===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Named crash points inside the durability-critical write/rename/replay
/// sequence (DESIGN.md §13). A crash point is a place where a real
/// power cut or kill -9 could land; the fork-based crash harness arms
/// one point at a time and verifies that recovery holds its invariants
/// no matter which point the process died at.
///
/// Unarmed, a crash point is one relaxed atomic load — cheap enough to
/// leave compiled into release builds, so the tested binary is the
/// shipped binary. Armed (programmatically after fork, or via the
/// ECAS_CRASHPOINT / ECAS_CRASHPOINT_HIT environment variables before
/// the first hit), the matching point _exit()s the process with
/// CrashPointExitCode on its Nth execution: no atexit handlers, no
/// flushes — the closest a test can get to yanking the power cord.
///
//===----------------------------------------------------------------------===//

#ifndef ECAS_SUPPORT_CRASHPOINT_H
#define ECAS_SUPPORT_CRASHPOINT_H

#include <cstddef>

namespace ecas {

/// _exit() status of a fired crash point, distinct from every normal
/// CLI exit code so the harness can tell "died at the armed point" from
/// "died some other way".
inline constexpr int CrashPointExitCode = 42;

/// Executes the crash point \p Name: when armed for \p Name and the hit
/// count is reached, _exit(CrashPointExitCode); otherwise returns.
void crashPointHit(const char *Name);

/// Arms \p Name to fire on its \p Hit-th execution (1 = first). Replaces
/// any previous arming. \p Name must outlive the arming (string
/// literals do).
void armCrashPoint(const char *Name, unsigned Hit = 1);

/// Disarms everything (used by the harness parent after fork returns).
void disarmCrashPoints();

/// All declared crash-point names, for "the harness kills at every
/// declared point" sweeps. Terminated by nullptr.
const char *const *declaredCrashPoints(size_t &Count);

} // namespace ecas

/// Marks a crash point in durability-critical code. A macro so grep for
/// ECAS_CRASHPOINT finds every declared point, mirroring the list in
/// CrashPoint.cpp.
#define ECAS_CRASHPOINT(NAME) ::ecas::crashPointHit(NAME)

#endif // ECAS_SUPPORT_CRASHPOINT_H
