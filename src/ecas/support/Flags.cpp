//===-- ecas/support/Flags.cpp - Tiny command-line flag parser ------------===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// ecas-lint: allow-file(no-raw-output) -- malformed-flag warnings go to
// stderr by design: the parser runs before any reporting machinery and
// must not abort a CLI over a typo.

#include "ecas/support/Flags.h"

#include "ecas/support/Format.h"

#include <cstdio>

using namespace ecas;

Flags::Flags(int Argc, const char *const *Argv) {
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg.rfind("--", 0) != 0) {
      Positional.push_back(Arg);
      continue;
    }
    std::string Body = Arg.substr(2);
    size_t Eq = Body.find('=');
    if (Eq != std::string::npos) {
      Values[Body.substr(0, Eq)] = Body.substr(Eq + 1);
      continue;
    }
    // Bare "--name" is a boolean. The "--name value" form is not
    // supported: it is ambiguous against positional arguments.
    Values[Body] = "true";
  }
  for (const auto &[Name, Unused] : Values)
    Queried[Name] = false;
}

bool Flags::has(const std::string &Name) const {
  auto It = Values.find(Name);
  if (It == Values.end())
    return false;
  Queried[Name] = true;
  return true;
}

std::string Flags::getString(const std::string &Name,
                             const std::string &Default) const {
  auto It = Values.find(Name);
  if (It == Values.end())
    return Default;
  Queried[Name] = true;
  return It->second;
}

double Flags::getDouble(const std::string &Name, double Default) const {
  auto It = Values.find(Name);
  if (It == Values.end())
    return Default;
  Queried[Name] = true;
  double Value;
  if (!parseDouble(It->second, Value)) {
    std::fprintf(stderr, "warning: flag --%s: '%s' is not a number\n",
                 Name.c_str(), It->second.c_str());
    return Default;
  }
  return Value;
}

long long Flags::getInt(const std::string &Name, long long Default) const {
  auto It = Values.find(Name);
  if (It == Values.end())
    return Default;
  Queried[Name] = true;
  long long Value;
  if (!parseInt64(It->second, Value)) {
    std::fprintf(stderr, "warning: flag --%s: '%s' is not an integer\n",
                 Name.c_str(), It->second.c_str());
    return Default;
  }
  return Value;
}

bool Flags::getBool(const std::string &Name, bool Default) const {
  auto It = Values.find(Name);
  if (It == Values.end())
    return Default;
  Queried[Name] = true;
  const std::string &Text = It->second;
  return Text == "true" || Text == "1" || Text == "yes" || Text == "on";
}

unsigned Flags::reportUnknown() const {
  unsigned Count = 0;
  for (const auto &[Name, WasQueried] : Queried) {
    if (WasQueried)
      continue;
    std::fprintf(stderr, "warning: unknown flag --%s ignored\n", Name.c_str());
    ++Count;
  }
  return Count;
}
