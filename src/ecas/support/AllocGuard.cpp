//===-- ecas/support/AllocGuard.cpp - Counting operator new ---------------===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// Replaceable global allocation functions ([new.delete.single] makes the
// program-wide replacement well-defined) that count per thread and
// forward to std::malloc/std::free. Linked only into binaries that opt
// in; never into libecas.
//
//===----------------------------------------------------------------------===//

#include "ecas/support/AllocGuard.h"

#include <cstdlib>
#include <new>

namespace {

thread_local uint64_t NewCalls = 0;
thread_local uint64_t DeleteCalls = 0;

void *countedAlloc(std::size_t Size) {
  ++NewCalls;
  // Replaced operator new must return a unique pointer for size 0.
  return std::malloc(Size ? Size : 1);
}

void *countedAllocAligned(std::size_t Size, std::size_t Align) {
  ++NewCalls;
  if (Size == 0)
    Size = 1;
  // aligned_alloc requires the size to be a multiple of the alignment.
  std::size_t Rounded = (Size + Align - 1) / Align * Align;
  return std::aligned_alloc(Align, Rounded);
}

void countedFree(void *Ptr) {
  ++DeleteCalls;
  std::free(Ptr);
}

} // namespace

uint64_t ecas::alloc_guard::newCount() { return NewCalls; }
uint64_t ecas::alloc_guard::deleteCount() { return DeleteCalls; }
bool ecas::alloc_guard::active() { return true; }

void *operator new(std::size_t Size) {
  void *Ptr = countedAlloc(Size);
  if (!Ptr)
    throw std::bad_alloc();
  return Ptr;
}

void *operator new[](std::size_t Size) {
  void *Ptr = countedAlloc(Size);
  if (!Ptr)
    throw std::bad_alloc();
  return Ptr;
}

void *operator new(std::size_t Size, const std::nothrow_t &) noexcept {
  return countedAlloc(Size);
}

void *operator new[](std::size_t Size, const std::nothrow_t &) noexcept {
  return countedAlloc(Size);
}

void *operator new(std::size_t Size, std::align_val_t Align) {
  void *Ptr = countedAllocAligned(Size, static_cast<std::size_t>(Align));
  if (!Ptr)
    throw std::bad_alloc();
  return Ptr;
}

void *operator new[](std::size_t Size, std::align_val_t Align) {
  void *Ptr = countedAllocAligned(Size, static_cast<std::size_t>(Align));
  if (!Ptr)
    throw std::bad_alloc();
  return Ptr;
}

void *operator new(std::size_t Size, std::align_val_t Align,
                   const std::nothrow_t &) noexcept {
  return countedAllocAligned(Size, static_cast<std::size_t>(Align));
}

void *operator new[](std::size_t Size, std::align_val_t Align,
                     const std::nothrow_t &) noexcept {
  return countedAllocAligned(Size, static_cast<std::size_t>(Align));
}

void operator delete(void *Ptr) noexcept { countedFree(Ptr); }
void operator delete[](void *Ptr) noexcept { countedFree(Ptr); }
void operator delete(void *Ptr, std::size_t) noexcept { countedFree(Ptr); }
void operator delete[](void *Ptr, std::size_t) noexcept { countedFree(Ptr); }
void operator delete(void *Ptr, const std::nothrow_t &) noexcept {
  countedFree(Ptr);
}
void operator delete[](void *Ptr, const std::nothrow_t &) noexcept {
  countedFree(Ptr);
}
void operator delete(void *Ptr, std::align_val_t) noexcept { countedFree(Ptr); }
void operator delete[](void *Ptr, std::align_val_t) noexcept {
  countedFree(Ptr);
}
void operator delete(void *Ptr, std::size_t, std::align_val_t) noexcept {
  countedFree(Ptr);
}
void operator delete[](void *Ptr, std::size_t, std::align_val_t) noexcept {
  countedFree(Ptr);
}
