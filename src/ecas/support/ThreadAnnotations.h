//===-- ecas/support/ThreadAnnotations.h - Thread-safety macros *- C++ -*-===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Clang Thread Safety Analysis attribute macros plus the project's
/// capability-annotated mutex wrappers. Every piece of shared mutable
/// state in the runtime declares its lock with ECAS_GUARDED_BY, every
/// lock-requiring helper with ECAS_REQUIRES, and builds under Clang run
/// with -Wthread-safety -Wthread-safety-beta -Werror so a read of
/// guarded state without its lock is a compile error, not a TSan roll of
/// the dice. Under compilers without the attributes (GCC) the macros
/// expand to nothing and the wrappers reduce to std::mutex +
/// std::lock_guard.
///
/// The wrappers also carry the debug-mode lock-order validator hooks
/// (support/LockOrder.h): when the build defines ECAS_LOCK_ORDER, each
/// AnnotatedMutex acquisition/release is reported to the global
/// lockdep-style acquired-before graph. When the option is off the hook
/// calls are empty inline functions and the wrappers cost exactly a
/// std::mutex.
///
/// Conventions (DESIGN.md §9):
///   - No naked std::mutex outside src/ecas/support/ — shared state uses
///     AnnotatedMutex so both static analysis and the lock-order
///     validator see it (enforced by tools/ecas_lint.py).
///   - Scopes that never block use LockGuard; scopes that wait on a
///     condition variable use UniqueLock and pass native() to wait().
///   - Each AnnotatedMutex names its lock class ("KernelHistory.Shard");
///     instances sharing a name share a node in the acquired-before
///     graph, exactly like lockdep lock classes.
///
//===----------------------------------------------------------------------===//

#ifndef ECAS_SUPPORT_THREADANNOTATIONS_H
#define ECAS_SUPPORT_THREADANNOTATIONS_H

#include "ecas/support/LockOrder.h"

#include <condition_variable>
#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define ECAS_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef ECAS_THREAD_ANNOTATION
#define ECAS_THREAD_ANNOTATION(x)
#endif

/// Type is a synchronization capability (a lock).
#define ECAS_CAPABILITY(x) ECAS_THREAD_ANNOTATION(capability(x))
/// RAII type that acquires a capability in its constructor and releases
/// it in its destructor.
#define ECAS_SCOPED_CAPABILITY ECAS_THREAD_ANNOTATION(scoped_lockable)
/// Field may only be accessed while holding the given capability.
#define ECAS_GUARDED_BY(x) ECAS_THREAD_ANNOTATION(guarded_by(x))
/// Pointed-to data may only be accessed while holding the capability.
#define ECAS_PT_GUARDED_BY(x) ECAS_THREAD_ANNOTATION(pt_guarded_by(x))
/// Function requires the capability(ies) held on entry (and exit).
#define ECAS_REQUIRES(...)                                                    \
  ECAS_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
/// Function must NOT be called with the capability held (it acquires it).
#define ECAS_EXCLUDES(...) ECAS_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/// Function acquires the capability and holds it past return.
#define ECAS_ACQUIRE(...)                                                     \
  ECAS_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
/// Function releases the capability.
#define ECAS_RELEASE(...)                                                     \
  ECAS_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
/// Function tries to acquire; holds it iff the return equals the first arg.
#define ECAS_TRY_ACQUIRE(...)                                                 \
  ECAS_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
/// Function returns a reference to the given capability.
#define ECAS_RETURN_CAPABILITY(x) ECAS_THREAD_ANNOTATION(lock_returned(x))
/// Escape hatch; every use needs a comment explaining why it is sound.
#define ECAS_NO_THREAD_SAFETY_ANALYSIS                                        \
  ECAS_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace ecas {

/// A std::mutex that (a) is a Clang thread-safety capability and (b)
/// feeds the debug lock-order validator. The lock-class name groups
/// instances (all 16 KernelHistory shards are one class) in the
/// acquired-before graph.
class ECAS_CAPABILITY("mutex") AnnotatedMutex {
public:
  explicit AnnotatedMutex(const char *LockClass) : LockClass_(LockClass) {}

  AnnotatedMutex(const AnnotatedMutex &) = delete;
  AnnotatedMutex &operator=(const AnnotatedMutex &) = delete;

  void lock() ECAS_ACQUIRE() {
    M.lock();
    lockOrderAcquired(this, LockClass_);
  }

  void unlock() ECAS_RELEASE() {
    lockOrderReleased(this, LockClass_);
    M.unlock();
  }

  bool try_lock() ECAS_TRY_ACQUIRE(true) {
    if (!M.try_lock())
      return false;
    lockOrderAcquired(this, LockClass_);
    return true;
  }

  /// The underlying mutex, for std::condition_variable interop only.
  /// Waiting releases and reacquires the raw mutex without touching the
  /// validator hooks; that is sound because the waiting thread holds no
  /// other interleaved acquisition while blocked and the capability is
  /// held again before the wait returns.
  std::mutex &native() ECAS_RETURN_CAPABILITY(this) { return M; }

  const char *lockClass() const { return LockClass_; }

private:
  std::mutex M;
  const char *LockClass_;
};

/// Non-blocking critical section: std::lock_guard over AnnotatedMutex.
/// Code inside a LockGuard scope must never wait, sleep, or join
/// (enforced by ecas-lint's wait-under-lock-guard rule); scopes that
/// block on a condition variable use UniqueLock below.
class ECAS_SCOPED_CAPABILITY LockGuard {
public:
  explicit LockGuard(AnnotatedMutex &M) ECAS_ACQUIRE(M) : M_(M) { M_.lock(); }
  ~LockGuard() ECAS_RELEASE() { M_.unlock(); }

  LockGuard(const LockGuard &) = delete;
  LockGuard &operator=(const LockGuard &) = delete;

private:
  AnnotatedMutex &M_;
};

/// Waitable critical section: owns the lock for its scope and exposes
/// the native std::unique_lock for condition_variable::wait. The
/// acquisition goes through AnnotatedMutex::lock() so the lock-order
/// validator sees it; the std::unique_lock adopts the held mutex.
class ECAS_SCOPED_CAPABILITY UniqueLock {
public:
  explicit UniqueLock(AnnotatedMutex &M) ECAS_ACQUIRE(M)
      : M_(M), Inner(acquire(M), std::adopt_lock) {}

  ~UniqueLock() ECAS_RELEASE() {
    if (Inner.owns_lock())
      lockOrderReleased(&M_, M_.lockClass());
    // Inner's destructor performs the raw unlock.
  }

  UniqueLock(const UniqueLock &) = delete;
  UniqueLock &operator=(const UniqueLock &) = delete;

  /// For condition_variable::wait only; see AnnotatedMutex::native().
  std::unique_lock<std::mutex> &native() { return Inner; }

private:
  static std::mutex &acquire(AnnotatedMutex &M) {
    M.lock();
    return M.native();
  }

  AnnotatedMutex &M_;
  std::unique_lock<std::mutex> Inner;
};

} // namespace ecas

#endif // ECAS_SUPPORT_THREADANNOTATIONS_H
