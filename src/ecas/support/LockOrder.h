//===-- ecas/support/LockOrder.h - Lockdep-style order validator *- C++ -*===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A lockdep-style lock-order validator: every AnnotatedMutex
/// acquisition records an acquired-before edge from each lock class the
/// thread already holds to the class being acquired, into one global
/// directed graph. An edge that closes a cycle is a potential deadlock
/// — two threads can interleave the two orderings and block forever —
/// and is reported deterministically on the first occurrence, with both
/// orderings: the held-lock stack of the acquisition that recorded the
/// inverse edge and the held-lock stack of the acquisition that closed
/// the cycle. Each offending class pair is reported exactly once, so a
/// hot path cannot flood the log.
///
/// Like lockdep, the graph is keyed by lock *class* (the name passed to
/// AnnotatedMutex), not by instance: taking shard 3 then shard 9 of the
/// same sharded table is one self-edge on the class, flagged as a
/// recursive acquisition — the pattern deadlocks as soon as two threads
/// pick opposite shard orders.
///
/// Cost model: the validator itself always compiles (tests drive
/// instances directly), but the hooks inside AnnotatedMutex are empty
/// inline functions unless the build defines ECAS_LOCK_ORDER (CMake
/// option of the same name), so production builds pay nothing. With the
/// option on, an acquisition costs a thread-local vector push plus, for
/// first-time edges only, a graph insertion under the validator's own
/// (plain, unhooked) mutex.
///
//===----------------------------------------------------------------------===//

#ifndef ECAS_SUPPORT_LOCKORDER_H
#define ECAS_SUPPORT_LOCKORDER_H

#include <cstddef>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace ecas {

/// The acquired-before graph plus per-thread held stacks. Thread-safe.
/// Tests instantiate their own validator; the AnnotatedMutex hooks feed
/// the global() instance.
class LockOrderValidator {
public:
  LockOrderValidator() = default;
  ~LockOrderValidator();

  LockOrderValidator(const LockOrderValidator &) = delete;
  LockOrderValidator &operator=(const LockOrderValidator &) = delete;

  /// Process-wide instance behind the AnnotatedMutex hooks.
  static LockOrderValidator &global();

  /// Records that the calling thread acquired \p Lock of class
  /// \p LockClass. Adds held-class -> LockClass edges and reports any
  /// cycle they close.
  void onAcquire(const void *Lock, const char *LockClass);

  /// Records that the calling thread released \p Lock.
  void onRelease(const void *Lock, const char *LockClass);

  /// One potential-deadlock report. Formatted text plus the structured
  /// pieces the tests assert on.
  struct Violation {
    /// The edge that closed the cycle (acquired-before: First -> Second).
    std::string First;
    std::string Second;
    /// Held-lock stack (outermost first, including the acquired class)
    /// of the acquisition that recorded the inverse ordering earlier.
    std::vector<std::string> PriorStack;
    /// Held-lock stack of the acquisition that closed the cycle now.
    std::vector<std::string> CurrentStack;
    /// Human-readable rendering of all of the above.
    std::string Message;
  };

  /// Violations reported so far, in detection order.
  std::vector<Violation> violations() const;
  size_t violationCount() const;

  /// Drops the graph, reports, and dedupe state (held stacks of live
  /// threads are per-thread and survive; callers reset between tests
  /// while no instrumented lock is held).
  void reset();

private:
  struct EdgeOrigin {
    /// Held stack at the moment the edge was first recorded.
    std::vector<std::string> Stack;
  };

  /// Requires GraphMutex. True when \p From reaches \p To along
  /// recorded edges.
  bool reachable(const std::string &From, const std::string &To) const;
  /// Requires GraphMutex. Builds and stores the violation for the edge
  /// (From -> To) whose inverse path already exists.
  void report(const std::string &From, const std::string &To,
              const std::vector<std::string> &CurrentStack);

  /// The validator's own lock is a plain std::mutex on purpose: it must
  /// not feed itself. It is a leaf — no callback runs under it.
  mutable std::mutex GraphMutex;
  std::map<std::string, std::set<std::string>> Edges;
  std::map<std::pair<std::string, std::string>, EdgeOrigin> Origins;
  std::set<std::pair<std::string, std::string>> Reported;
  std::vector<Violation> Violations;
};

#if defined(ECAS_LOCK_ORDER)
inline void lockOrderAcquired(const void *Lock, const char *LockClass) {
  LockOrderValidator::global().onAcquire(Lock, LockClass);
}
inline void lockOrderReleased(const void *Lock, const char *LockClass) {
  LockOrderValidator::global().onRelease(Lock, LockClass);
}
#else
inline void lockOrderAcquired(const void *, const char *) {}
inline void lockOrderReleased(const void *, const char *) {}
#endif

} // namespace ecas

#endif // ECAS_SUPPORT_LOCKORDER_H
