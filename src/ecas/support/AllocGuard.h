//===-- ecas/support/AllocGuard.h - Counting operator new ------*- C++ -*-===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Test-only allocation counter: linking AllocGuard.cpp into a binary
/// replaces the global operator new/delete with counting forwarders to
/// std::malloc/std::free, and AllocTally reads the per-thread counter
/// delta across a region. The hot-path regression (HotPathTest) wraps a
/// warmed table-hit dispatch in a tally and asserts zero allocations —
/// the runtime ground truth behind tools/ecas_hotpath.py's static claim.
///
/// AllocGuard.cpp is deliberately NOT part of libecas: only binaries
/// that opt in (hot-path tests, the decision microbench) interpose the
/// allocator. Including this header without linking AllocGuard.cpp is a
/// link error, which is the point — a tally must never silently read a
/// counter nothing increments.
///
//===----------------------------------------------------------------------===//

#ifndef ECAS_SUPPORT_ALLOCGUARD_H
#define ECAS_SUPPORT_ALLOCGUARD_H

#include <cstdint>

namespace ecas {
namespace alloc_guard {

/// Calls to any replaced operator new on this thread since it started.
uint64_t newCount();

/// Calls to any replaced operator delete on this thread since it started.
uint64_t deleteCount();

/// True when the counting interposer is linked in (always true when this
/// returns at all; exists so a binary can assert the guard is active).
bool active();

} // namespace alloc_guard

/// RAII window over the thread's allocation counters.
class AllocTally {
public:
  AllocTally()
      : StartNew(alloc_guard::newCount()),
        StartDelete(alloc_guard::deleteCount()) {}

  /// operator new calls on this thread since construction.
  uint64_t allocations() const {
    return alloc_guard::newCount() - StartNew;
  }

  /// operator delete calls on this thread since construction.
  uint64_t deallocations() const {
    return alloc_guard::deleteCount() - StartDelete;
  }

private:
  uint64_t StartNew;
  uint64_t StartDelete;
};

} // namespace ecas

#endif // ECAS_SUPPORT_ALLOCGUARD_H
