//===-- ecas/support/Assert.cpp - Fatal errors and unreachable -----------===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// ecas-lint: allow-file(no-raw-output) -- fatal errors abort the process;
// stderr is the only channel left when Status cannot propagate.

#include "ecas/support/Assert.h"

#include <cstdio>
#include <cstdlib>

using namespace ecas;

void ecas::reportFatalError(const char *Msg, const char *File, int Line) {
  std::fprintf(stderr, "ecas fatal error: %s at %s:%d\n", Msg, File, Line);
  std::fflush(stderr);
  std::abort();
}
