//===-- ecas/support/AtomicFile.cpp - Durable atomic file writes ----------===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ecas/support/AtomicFile.h"

#include "ecas/fault/StorageFaults.h"
#include "ecas/support/CrashPoint.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#ifndef _WIN32
#include <fcntl.h>
#include <unistd.h>
#endif

using namespace ecas;

namespace {

/// fsyncs \p Path's data. Best-effort no-op where fsync does not exist.
Status syncFile(const std::string &Path) {
#ifndef _WIN32
  int Fd = ::open(Path.c_str(), O_RDONLY);
  if (Fd < 0)
    return Status::error(ErrCode::IoError, "cannot reopen " + Path +
                                               " for fsync: " +
                                               std::strerror(errno));
  int Rc = ::fsync(Fd);
  ::close(Fd);
  if (Rc != 0)
    return Status::error(ErrCode::IoError,
                         "fsync " + Path + ": " + std::strerror(errno));
#endif
  return Status::success();
}

} // namespace

Status ecas::syncParentDir(const std::string &Path) {
#ifndef _WIN32
  size_t Slash = Path.find_last_of('/');
  std::string Dir = Slash == std::string::npos ? "." : Path.substr(0, Slash);
  if (Dir.empty())
    Dir = "/";
  int Fd = ::open(Dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (Fd < 0)
    return Status::error(ErrCode::IoError, "cannot open directory " + Dir +
                                               " for fsync: " +
                                               std::strerror(errno));
  int Rc = ::fsync(Fd);
  ::close(Fd);
  // Some filesystems refuse directory fsync (EINVAL); the rename is
  // then as durable as the platform allows, which is not an error the
  // caller can act on.
  if (Rc != 0 && errno != EINVAL)
    return Status::error(ErrCode::IoError,
                         "fsync directory " + Dir + ": " +
                             std::strerror(errno));
#endif
  return Status::success();
}

Status ecas::writeFileAtomic(const std::string &Path,
                             std::string_view Bytes) {
  std::string TempPath = Path + ".tmp";
  // The injector mangles the staged copy, never the caller's bytes: an
  // injected short write is detected below (a real failed write(2)
  // would be too), an injected bit flip is silent media corruption.
  std::string Staged(Bytes);
  StorageFaultInjector::Effect Fault;
  if (StorageFaultInjector *Injector = storageFaultInjector())
    Fault = Injector->mangle(Staged);
  {
    std::ofstream File(TempPath, std::ios::binary | std::ios::trunc);
    if (!File)
      return Status::error(ErrCode::IoError, "cannot write " + TempPath);
    File.write(Staged.data(), static_cast<std::streamsize>(Staged.size()));
    File.flush();
    if (!File)
      return Status::error(ErrCode::IoError, "short write to " + TempPath);
  }
  if (Fault.ShortWrite)
    return Status::error(ErrCode::IoError,
                         "short write to " + TempPath + " (injected: " +
                             std::to_string(Staged.size()) + " of " +
                             std::to_string(Bytes.size()) + " bytes)");
  if (Status S = syncFile(TempPath); !S)
    return S;
  ECAS_CRASHPOINT("atomicfile.after-temp-write");
  if (std::rename(TempPath.c_str(), Path.c_str()) != 0)
    return Status::error(ErrCode::IoError, "rename " + TempPath + " -> " +
                                               Path + ": " +
                                               std::strerror(errno));
  ECAS_CRASHPOINT("atomicfile.after-rename");
  return syncParentDir(Path);
}

Status ecas::readFileBytes(const std::string &Path, std::string &Out,
                           bool &Existed) {
  Out.clear();
  std::ifstream File(Path, std::ios::binary);
  if (!File) {
    Existed = false;
    return Status::success();
  }
  Existed = true;
  std::ostringstream Buffer;
  Buffer << File.rdbuf();
  if (File.bad())
    return Status::error(ErrCode::IoError, "read error on " + Path);
  Out = Buffer.str();
  return Status::success();
}
