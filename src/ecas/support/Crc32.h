//===-- ecas/support/Crc32.h - CRC-32 checksum -----------------*- C++ -*-===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Table-driven CRC-32 (IEEE 802.3 polynomial, the zlib/PNG variant)
/// used to integrity-check durable snapshot files before trusting them.
///
//===----------------------------------------------------------------------===//

#ifndef ECAS_SUPPORT_CRC32_H
#define ECAS_SUPPORT_CRC32_H

#include <cstddef>
#include <cstdint>

namespace ecas {

/// CRC-32 of \p Len bytes at \p Data. Pass a previous result as \p Seed
/// to checksum data incrementally; the default seed starts a fresh sum.
uint32_t crc32(const void *Data, size_t Len, uint32_t Seed = 0);

} // namespace ecas

#endif // ECAS_SUPPORT_CRC32_H
