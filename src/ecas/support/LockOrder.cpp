//===-- ecas/support/LockOrder.cpp - Lockdep-style order validator --------===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ecas/support/LockOrder.h"

#include <algorithm>
#include <deque>

using namespace ecas;

namespace {

/// One instrumented lock currently held by this thread. The stack is
/// shared by every validator (thread_local storage cannot be a member),
/// so entries carry their owner and queries filter by it.
struct HeldEntry {
  const LockOrderValidator *Owner;
  const void *Lock;
  const char *LockClass;
};

thread_local std::vector<HeldEntry> HeldStack;

std::string renderStack(const std::vector<std::string> &Stack) {
  std::string Out;
  for (const std::string &Name : Stack) {
    if (!Out.empty())
      Out += " -> ";
    Out += Name;
  }
  return Out;
}

} // namespace

LockOrderValidator &LockOrderValidator::global() {
  // Leaked on purpose: instrumented locks may be released during static
  // destruction, after a function-local static would have died.
  static LockOrderValidator *V = new LockOrderValidator();
  return *V;
}

LockOrderValidator::~LockOrderValidator() {
  // Drop any record of this validator from the destroying thread's held
  // stack so a later validator at the same address cannot inherit it.
  HeldStack.erase(std::remove_if(HeldStack.begin(), HeldStack.end(),
                                 [this](const HeldEntry &E) {
                                   return E.Owner == this;
                                 }),
                  HeldStack.end());
}

bool LockOrderValidator::reachable(const std::string &From,
                                   const std::string &To) const {
  std::deque<const std::string *> Frontier{&From};
  std::set<std::string> Seen{From};
  while (!Frontier.empty()) {
    const std::string &Node = *Frontier.front();
    Frontier.pop_front();
    if (Node == To)
      return true;
    auto It = Edges.find(Node);
    if (It == Edges.end())
      continue;
    for (const std::string &Next : It->second)
      if (Seen.insert(Next).second)
        Frontier.push_back(&Next);
  }
  return false;
}

void LockOrderValidator::report(const std::string &From, const std::string &To,
                                const std::vector<std::string> &CurrentStack) {
  // Walk the pre-existing To ~> From path to recover the acquisition
  // that recorded the inverse ordering; its first edge's origin stack is
  // "the other side" of the deadlock.
  std::map<std::string, std::string> Parent;
  std::deque<std::string> Frontier{To};
  Parent[To] = To;
  while (!Frontier.empty() && !Parent.count(From)) {
    std::string Node = Frontier.front();
    Frontier.pop_front();
    auto It = Edges.find(Node);
    if (It == Edges.end())
      continue;
    for (const std::string &Next : It->second)
      if (Parent.emplace(Next, Node).second)
        Frontier.push_back(Next);
  }
  // First hop of the path To -> ... -> From.
  std::string Hop = From;
  while (Parent.count(Hop) && Parent[Hop] != To)
    Hop = Parent[Hop];

  Violation V;
  V.First = From;
  V.Second = To;
  auto OriginIt = Origins.find(std::make_pair(To, Hop));
  if (OriginIt != Origins.end())
    V.PriorStack = OriginIt->second.Stack;
  V.CurrentStack = CurrentStack;
  V.Message = "potential deadlock: acquiring '" + To + "' while holding '" +
              From + "', but '" + To + "' was previously held when '" + Hop +
              "' was acquired\n  prior ordering:   " +
              renderStack(V.PriorStack) +
              "\n  current ordering: " + renderStack(V.CurrentStack);
  Violations.push_back(std::move(V));
}

void LockOrderValidator::onAcquire(const void *Lock, const char *LockClass) {
  // Snapshot the classes this thread already holds from this validator,
  // outermost first, before pushing the new acquisition.
  std::vector<std::string> Held;
  for (const HeldEntry &E : HeldStack)
    if (E.Owner == this)
      Held.emplace_back(E.LockClass);
  HeldStack.push_back({this, Lock, LockClass});
  if (Held.empty())
    return;

  std::vector<std::string> Current = Held;
  Current.emplace_back(LockClass);
  const std::string To = LockClass;

  std::lock_guard<std::mutex> G(GraphMutex);
  for (const std::string &From : Held) {
    if (From == To) {
      // Same class twice on one stack: two threads picking opposite
      // instance orders deadlock, exactly like an inversion.
      if (Reported.insert(std::make_pair(From, To)).second) {
        Violation V;
        V.First = From;
        V.Second = To;
        V.CurrentStack = Current;
        V.Message = "potential deadlock: recursive acquisition of lock "
                    "class '" +
                    From +
                    "'\n  current ordering: " + renderStack(Current);
        Violations.push_back(std::move(V));
      }
      continue;
    }
    if (!Edges[From].insert(To).second)
      continue; // Known edge: already validated (and reported, if bad).
    Origins.emplace(std::make_pair(From, To), EdgeOrigin{Current});
    if (reachable(To, From)) {
      auto Key = From < To ? std::make_pair(From, To)
                           : std::make_pair(To, From);
      if (Reported.insert(Key).second)
        report(From, To, Current);
    }
  }
}

void LockOrderValidator::onRelease(const void *Lock, const char *LockClass) {
  (void)LockClass;
  // Releases are LIFO for guard scopes but may interleave for manual
  // unlock(); remove the most recent matching entry.
  for (auto It = HeldStack.rbegin(); It != HeldStack.rend(); ++It) {
    if (It->Owner == this && It->Lock == Lock) {
      HeldStack.erase(std::next(It).base());
      return;
    }
  }
}

std::vector<LockOrderValidator::Violation>
LockOrderValidator::violations() const {
  std::lock_guard<std::mutex> G(GraphMutex);
  return Violations;
}

size_t LockOrderValidator::violationCount() const {
  std::lock_guard<std::mutex> G(GraphMutex);
  return Violations.size();
}

void LockOrderValidator::reset() {
  std::lock_guard<std::mutex> G(GraphMutex);
  Edges.clear();
  Origins.clear();
  Reported.clear();
  Violations.clear();
}
