//===-- ecas/support/Flags.h - Tiny command-line flag parser ---*- C++ -*-===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small --key=value / --key value flag parser shared by the benchmark
/// harnesses and examples. Every bench binary must also run with zero
/// arguments, so all flags carry defaults.
///
//===----------------------------------------------------------------------===//

#ifndef ECAS_SUPPORT_FLAGS_H
#define ECAS_SUPPORT_FLAGS_H

#include <map>
#include <string>
#include <vector>

namespace ecas {

/// Parses argv into a key->value map plus positional arguments.
///
/// Accepted forms: "--name=value" and bare "--name" (recorded with value
/// "true"). Anything not starting with "--" is a positional argument.
/// Unknown flags are kept; callers query what they need and may call
/// reportUnknown() to diagnose typos.
class Flags {
public:
  Flags(int Argc, const char *const *Argv);

  bool has(const std::string &Name) const;

  std::string getString(const std::string &Name,
                        const std::string &Default) const;
  double getDouble(const std::string &Name, double Default) const;
  long long getInt(const std::string &Name, long long Default) const;
  bool getBool(const std::string &Name, bool Default) const;

  const std::vector<std::string> &positional() const { return Positional; }

  /// Prints "unknown flag" warnings to stderr for any flag never queried.
  /// \returns the number of unqueried flags.
  unsigned reportUnknown() const;

private:
  std::map<std::string, std::string> Values;
  mutable std::map<std::string, bool> Queried;
  std::vector<std::string> Positional;
};

} // namespace ecas

#endif // ECAS_SUPPORT_FLAGS_H
