//===-- ecas/support/Assert.h - Fatal errors and unreachable ---*- C++ -*-===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Programmatic-error helpers: fatal error reporting and an
/// llvm_unreachable-style marker. Library code never throws; invariant
/// violations abort with a diagnostic naming the failing location.
///
//===----------------------------------------------------------------------===//

#ifndef ECAS_SUPPORT_ASSERT_H
#define ECAS_SUPPORT_ASSERT_H

#include <cassert>

namespace ecas {

/// Prints "ecas fatal error: <Msg> at <File>:<Line>" to stderr and aborts.
/// Used for invariant violations that must be caught even in release builds
/// (e.g. a caller handing the simulator a malformed platform spec).
[[noreturn]] void reportFatalError(const char *Msg, const char *File,
                                   int Line);

} // namespace ecas

/// Marks a point in control flow that must never execute. Aborts with a
/// diagnostic when reached; also serves as an optimizer hint.
#define ECAS_UNREACHABLE(MSG)                                                  \
  ::ecas::reportFatalError("unreachable executed: " MSG, __FILE__, __LINE__)

/// Release-mode-checked invariant. Unlike assert(), this fires in all build
/// types; use it for cheap checks guarding state that user inputs can break.
#define ECAS_CHECK(COND, MSG)                                                  \
  do {                                                                         \
    if (!(COND))                                                               \
      ::ecas::reportFatalError("check failed (" #COND "): " MSG, __FILE__,     \
                               __LINE__);                                      \
  } while (false)

#endif // ECAS_SUPPORT_ASSERT_H
