//===-- ecas/support/CrashPoint.cpp - Crash-point injection ---------------===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ecas/support/CrashPoint.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#ifndef _WIN32
#include <unistd.h>
#endif

using namespace ecas;

namespace {

/// Every crash point compiled into the tree. Kept in one place so the
/// harness's "kill at every declared point" sweep and DESIGN.md §13's
/// list cannot drift from the code; a new ECAS_CRASHPOINT() must be
/// added here (CrashRecoveryTest's sweep executes each name, so a
/// declared-but-unreachable point fails the suite).
constexpr const char *DeclaredPoints[] = {
    "journal.flush.before-write",  // batch swapped out, nothing on disk
    "journal.flush.after-write",   // bytes written, not yet fsynced
    "journal.flush.after-sync",    // batch durable, before ack
    "atomicfile.after-temp-write", // temp durable, destination untouched
    "atomicfile.after-rename",     // renamed, parent dir not yet fsynced
    "recovery.after-replay",       // table rebuilt, compaction not begun
    "recovery.after-snapshot",     // new snapshot durable, journal stale
    "recovery.after-reset",        // journal reset, before reporting
};

struct Arming {
  const char *Name = nullptr;
  std::atomic<unsigned> Remaining{0};
};

Arming Armed;
/// Fast-path gate: crash points are free until something arms one.
std::atomic<bool> AnyArmed{false};
std::atomic<bool> EnvChecked{false};

/// One-time environment arming, so a CLI run (or the CI kill loop) can
/// inject a crash without recompiling: ECAS_CRASHPOINT=<name> and
/// optionally ECAS_CRASHPOINT_HIT=<n>.
void armFromEnvOnce() {
  if (EnvChecked.exchange(true, std::memory_order_acq_rel))
    return;
  const char *Name = std::getenv("ECAS_CRASHPOINT");
  if (!Name || !*Name)
    return;
  unsigned Hit = 1;
  if (const char *HitText = std::getenv("ECAS_CRASHPOINT_HIT"))
    if (long Parsed = std::atol(HitText); Parsed > 0)
      Hit = static_cast<unsigned>(Parsed);
  for (const char *Declared : DeclaredPoints)
    if (std::strcmp(Declared, Name) == 0) {
      armCrashPoint(Declared, Hit);
      return;
    }
  // An undeclared name arms nothing: a typo degrades to "never fires",
  // which the harness notices as a clean exit instead of a wedge.
}

} // namespace

void ecas::crashPointHit(const char *Name) {
  armFromEnvOnce();
  if (!AnyArmed.load(std::memory_order_acquire))
    return;
  const char *Target = Armed.Name;
  if (!Target || std::strcmp(Target, Name) != 0)
    return;
  if (Armed.Remaining.fetch_sub(1, std::memory_order_acq_rel) != 1)
    return;
#ifndef _WIN32
  // _exit, not exit: no atexit handlers, no stream flushes, no
  // destructors — the simulated power cut leaves whatever the kernel
  // already has and nothing else.
  _exit(CrashPointExitCode);
#else
  std::_Exit(CrashPointExitCode);
#endif
}

void ecas::armCrashPoint(const char *Name, unsigned Hit) {
  Armed.Name = Name;
  Armed.Remaining.store(Hit == 0 ? 1 : Hit, std::memory_order_release);
  AnyArmed.store(true, std::memory_order_release);
}

void ecas::disarmCrashPoints() {
  AnyArmed.store(false, std::memory_order_release);
  Armed.Name = nullptr;
  Armed.Remaining.store(0, std::memory_order_release);
}

const char *const *ecas::declaredCrashPoints(size_t &Count) {
  Count = sizeof(DeclaredPoints) / sizeof(DeclaredPoints[0]);
  return DeclaredPoints;
}
