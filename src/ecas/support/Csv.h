//===-- ecas/support/Csv.h - CSV table writer ------------------*- C++ -*-===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal CSV emitter used by the benchmark harnesses so that every
/// figure's data series can be re-plotted from a machine-readable dump in
/// addition to the human-readable table printed on stdout.
///
//===----------------------------------------------------------------------===//

#ifndef ECAS_SUPPORT_CSV_H
#define ECAS_SUPPORT_CSV_H

#include <string>
#include <vector>

namespace ecas {

/// Accumulates rows and renders RFC-4180-ish CSV (quotes fields containing
/// separators, quotes, or newlines).
class CsvTable {
public:
  /// Sets the header row. Clears any previously set header.
  void setHeader(std::vector<std::string> Names);

  /// Appends a row of preformatted cells.
  void addRow(std::vector<std::string> Cells);

  /// Convenience: appends a row of doubles formatted with %.6g.
  void addNumericRow(const std::vector<double> &Values);

  size_t numRows() const { return Rows.size(); }

  /// Renders the full table, header first if present.
  std::string render() const;

  /// Writes render() to \p Path. Returns false if the file can't be opened.
  bool writeFile(const std::string &Path) const;

private:
  std::vector<std::string> Header;
  std::vector<std::vector<std::string>> Rows;
};

} // namespace ecas

#endif // ECAS_SUPPORT_CSV_H
