//===-- ecas/support/Csv.cpp - CSV table writer ---------------------------===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ecas/support/Csv.h"

#include "ecas/support/Format.h"

#include <cstdio>

using namespace ecas;

static bool needsQuoting(const std::string &Cell) {
  for (char C : Cell)
    if (C == ',' || C == '"' || C == '\n' || C == '\r')
      return true;
  return false;
}

static std::string quoteCell(const std::string &Cell) {
  if (!needsQuoting(Cell))
    return Cell;
  std::string Quoted = "\"";
  for (char C : Cell) {
    if (C == '"')
      Quoted += '"';
    Quoted += C;
  }
  Quoted += '"';
  return Quoted;
}

static void renderRow(std::string &Out, const std::vector<std::string> &Row) {
  for (size_t I = 0; I != Row.size(); ++I) {
    if (I)
      Out += ',';
    Out += quoteCell(Row[I]);
  }
  Out += '\n';
}

void CsvTable::setHeader(std::vector<std::string> Names) {
  Header = std::move(Names);
}

void CsvTable::addRow(std::vector<std::string> Cells) {
  Rows.push_back(std::move(Cells));
}

void CsvTable::addNumericRow(const std::vector<double> &Values) {
  std::vector<std::string> Cells;
  Cells.reserve(Values.size());
  for (double V : Values)
    Cells.push_back(formatString("%.6g", V));
  Rows.push_back(std::move(Cells));
}

std::string CsvTable::render() const {
  std::string Out;
  if (!Header.empty())
    renderRow(Out, Header);
  for (const auto &Row : Rows)
    renderRow(Out, Row);
  return Out;
}

bool CsvTable::writeFile(const std::string &Path) const {
  std::FILE *File = std::fopen(Path.c_str(), "w");
  if (!File)
    return false;
  std::string Text = render();
  bool Ok = std::fwrite(Text.data(), 1, Text.size(), File) == Text.size();
  std::fclose(File);
  return Ok;
}
