//===-- ecas/support/Format.cpp - printf-style string helpers ------------===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ecas/support/Format.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

using namespace ecas;

std::string ecas::formatStringV(const char *Fmt, va_list Args) {
  va_list Copy;
  va_copy(Copy, Args);
  int Needed = std::vsnprintf(nullptr, 0, Fmt, Copy);
  va_end(Copy);
  if (Needed <= 0)
    return std::string();
  std::string Result(static_cast<size_t>(Needed), '\0');
  std::vsnprintf(Result.data(), Result.size() + 1, Fmt, Args);
  return Result;
}

std::string ecas::formatString(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  std::string Result = formatStringV(Fmt, Args);
  va_end(Args);
  return Result;
}

std::string ecas::formatDuration(double Seconds) {
  double Abs = std::fabs(Seconds);
  if (Abs < 1e-6)
    return formatString("%.1f ns", Seconds * 1e9);
  if (Abs < 1e-3)
    return formatString("%.2f us", Seconds * 1e6);
  if (Abs < 1.0)
    return formatString("%.2f ms", Seconds * 1e3);
  return formatString("%.3f s", Seconds);
}

std::string ecas::formatEnergy(double Joules) {
  double Abs = std::fabs(Joules);
  if (Abs < 1e-3)
    return formatString("%.2f uJ", Joules * 1e6);
  if (Abs < 1.0)
    return formatString("%.2f mJ", Joules * 1e3);
  if (Abs < 1e3)
    return formatString("%.3f J", Joules);
  return formatString("%.3f kJ", Joules * 1e-3);
}

std::string ecas::trimString(const std::string &Text) {
  size_t Begin = 0, End = Text.size();
  while (Begin < End && std::isspace(static_cast<unsigned char>(Text[Begin])))
    ++Begin;
  while (End > Begin && std::isspace(static_cast<unsigned char>(Text[End - 1])))
    --End;
  return Text.substr(Begin, End - Begin);
}

std::vector<std::string> ecas::splitString(const std::string &Text, char Sep) {
  std::vector<std::string> Pieces;
  size_t Start = 0;
  while (true) {
    size_t Pos = Text.find(Sep, Start);
    if (Pos == std::string::npos) {
      Pieces.push_back(trimString(Text.substr(Start)));
      return Pieces;
    }
    Pieces.push_back(trimString(Text.substr(Start, Pos - Start)));
    Start = Pos + 1;
  }
}

bool ecas::parseDouble(const std::string &Text, double &Out) {
  const std::string Trimmed = trimString(Text);
  if (Trimmed.empty())
    return false;
  errno = 0;
  char *End = nullptr;
  double Value = std::strtod(Trimmed.c_str(), &End);
  if (errno != 0 || End != Trimmed.c_str() + Trimmed.size())
    return false;
  Out = Value;
  return true;
}

bool ecas::parseInt64(const std::string &Text, long long &Out) {
  const std::string Trimmed = trimString(Text);
  if (Trimmed.empty())
    return false;
  errno = 0;
  char *End = nullptr;
  long long Value = std::strtoll(Trimmed.c_str(), &End, 10);
  if (errno != 0 || End != Trimmed.c_str() + Trimmed.size())
    return false;
  Out = Value;
  return true;
}

std::string ecas::padLeft(const std::string &Text, unsigned Width) {
  if (Text.size() >= Width)
    return Text;
  return std::string(Width - Text.size(), ' ') + Text;
}

std::string ecas::padRight(const std::string &Text, unsigned Width) {
  if (Text.size() >= Width)
    return Text;
  return Text + std::string(Width - Text.size(), ' ');
}
