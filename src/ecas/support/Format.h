//===-- ecas/support/Format.h - printf-style string helpers ----*- C++ -*-===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small string-formatting utilities used by the library, the benchmark
/// harnesses, and the examples. Library code never includes <iostream>;
/// everything funnels through std::snprintf-backed helpers.
///
//===----------------------------------------------------------------------===//

#ifndef ECAS_SUPPORT_FORMAT_H
#define ECAS_SUPPORT_FORMAT_H

#include <cstdarg>
#include <string>
#include <vector>

namespace ecas {

/// Returns a std::string produced by printf-style formatting.
std::string formatString(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// va_list variant of formatString.
std::string formatStringV(const char *Fmt, va_list Args);

/// Formats \p Seconds with an auto-selected unit (ns/us/ms/s).
std::string formatDuration(double Seconds);

/// Formats \p Joules with an auto-selected unit (uJ/mJ/J/kJ).
std::string formatEnergy(double Joules);

/// Splits \p Text on \p Sep, trimming surrounding whitespace from each
/// piece. Empty pieces are preserved (so "a,,b" yields three fields).
std::vector<std::string> splitString(const std::string &Text, char Sep);

/// Removes leading and trailing whitespace.
std::string trimString(const std::string &Text);

/// Parses a double, returning true on success. Rejects trailing garbage.
bool parseDouble(const std::string &Text, double &Out);

/// Parses a signed 64-bit integer, returning true on success.
bool parseInt64(const std::string &Text, long long &Out);

/// Renders a left-padded, fixed-width table cell for plain-text reports.
std::string padLeft(const std::string &Text, unsigned Width);

/// Renders a right-padded, fixed-width table cell for plain-text reports.
std::string padRight(const std::string &Text, unsigned Width);

} // namespace ecas

#endif // ECAS_SUPPORT_FORMAT_H
