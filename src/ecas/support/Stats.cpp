//===-- ecas/support/Stats.cpp - Descriptive statistics ------------------===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ecas/support/Stats.h"

#include "ecas/support/Assert.h"

#include <algorithm>
#include <cmath>
#include <limits>

using namespace ecas;

void RunningStats::add(double Value) {
  if (N == 0) {
    Lo = Hi = Value;
  } else {
    Lo = std::min(Lo, Value);
    Hi = std::max(Hi, Value);
  }
  ++N;
  double Delta = Value - Mean;
  Mean += Delta / static_cast<double>(N);
  M2 += Delta * (Value - Mean);
}

void RunningStats::merge(const RunningStats &Other) {
  if (Other.N == 0)
    return;
  if (N == 0) {
    *this = Other;
    return;
  }
  double Delta = Other.Mean - Mean;
  size_t Total = N + Other.N;
  double NewMean = Mean + Delta * static_cast<double>(Other.N) /
                              static_cast<double>(Total);
  M2 += Other.M2 + Delta * Delta * static_cast<double>(N) *
                       static_cast<double>(Other.N) /
                       static_cast<double>(Total);
  Mean = NewMean;
  N = Total;
  Lo = std::min(Lo, Other.Lo);
  Hi = std::max(Hi, Other.Hi);
}

double RunningStats::variance() const {
  if (N < 2)
    return 0.0;
  return M2 / static_cast<double>(N);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double ecas::arithmeticMean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0.0;
  double Sum = 0.0;
  for (double V : Values)
    Sum += V;
  return Sum / static_cast<double>(Values.size());
}

double ecas::geometricMean(const std::vector<double> &Values) {
  ECAS_CHECK(!Values.empty(), "geometric mean of empty sample");
  double LogSum = 0.0;
  for (double V : Values) {
    ECAS_CHECK(V > 0.0, "geometric mean requires positive values");
    LogSum += std::log(V);
  }
  return std::exp(LogSum / static_cast<double>(Values.size()));
}

double ecas::quantile(std::vector<double> Values, double Q) {
  Values.erase(std::remove_if(Values.begin(), Values.end(),
                              [](double V) { return std::isnan(V); }),
               Values.end());
  std::sort(Values.begin(), Values.end());
  return quantileSorted(Values, Q);
}

double ecas::quantileSorted(const std::vector<double> &Sorted, double Q) {
  if (Sorted.empty())
    return std::numeric_limits<double>::quiet_NaN();
  Q = std::clamp(Q, 0.0, 1.0);
  double Pos = Q * static_cast<double>(Sorted.size() - 1);
  size_t Below = static_cast<size_t>(Pos);
  if (Below + 1 >= Sorted.size())
    return Sorted.back();
  double Frac = Pos - static_cast<double>(Below);
  return Sorted[Below] * (1.0 - Frac) + Sorted[Below + 1] * Frac;
}

double ecas::quantileFromBuckets(const std::vector<double> &UpperBounds,
                                 const std::vector<uint64_t> &Counts,
                                 double Q) {
  ECAS_CHECK(Counts.size() == UpperBounds.size() + 1,
             "bucket counts must cover every bound plus overflow");
  uint64_t Total = 0;
  for (uint64_t C : Counts)
    Total += C;
  if (Total == 0)
    return std::numeric_limits<double>::quiet_NaN();
  Q = std::clamp(Q, 0.0, 1.0);
  double Rank = Q * static_cast<double>(Total);
  uint64_t Cumulative = 0;
  for (size_t I = 0; I != UpperBounds.size(); ++I) {
    uint64_t Before = Cumulative;
    Cumulative += Counts[I];
    if (static_cast<double>(Cumulative) < Rank)
      continue;
    double Lower = I == 0 ? 0.0 : UpperBounds[I - 1];
    double Upper = UpperBounds[I];
    if (Counts[I] == 0)
      return Upper;
    double Within = (Rank - static_cast<double>(Before)) /
                    static_cast<double>(Counts[I]);
    return Lower + (Upper - Lower) * std::clamp(Within, 0.0, 1.0);
  }
  // The quantile lands in the overflow bucket: the bounds cannot say
  // where, so report the highest finite edge (Prometheus' convention).
  return UpperBounds.empty() ? std::numeric_limits<double>::quiet_NaN()
                             : UpperBounds.back();
}

double ecas::rSquared(const std::vector<double> &Ref,
                      const std::vector<double> &Fit) {
  ECAS_CHECK(Ref.size() == Fit.size() && !Ref.empty(),
             "rSquared requires equal-sized non-empty vectors");
  double Mean = arithmeticMean(Ref);
  double SsRes = 0.0, SsTot = 0.0;
  for (size_t I = 0; I != Ref.size(); ++I) {
    double Residual = Ref[I] - Fit[I];
    double Centered = Ref[I] - Mean;
    SsRes += Residual * Residual;
    SsTot += Centered * Centered;
  }
  if (SsTot == 0.0)
    return SsRes == 0.0 ? 1.0 : 0.0;
  return 1.0 - SsRes / SsTot;
}

double ecas::rmsError(const std::vector<double> &Ref,
                      const std::vector<double> &Fit) {
  ECAS_CHECK(Ref.size() == Fit.size() && !Ref.empty(),
             "rmsError requires equal-sized non-empty vectors");
  double Sum = 0.0;
  for (size_t I = 0; I != Ref.size(); ++I) {
    double Residual = Ref[I] - Fit[I];
    Sum += Residual * Residual;
  }
  return std::sqrt(Sum / static_cast<double>(Ref.size()));
}
