//===-- ecas/support/Stats.cpp - Descriptive statistics ------------------===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ecas/support/Stats.h"

#include "ecas/support/Assert.h"

#include <algorithm>
#include <cmath>

using namespace ecas;

void RunningStats::add(double Value) {
  if (N == 0) {
    Lo = Hi = Value;
  } else {
    Lo = std::min(Lo, Value);
    Hi = std::max(Hi, Value);
  }
  ++N;
  double Delta = Value - Mean;
  Mean += Delta / static_cast<double>(N);
  M2 += Delta * (Value - Mean);
}

void RunningStats::merge(const RunningStats &Other) {
  if (Other.N == 0)
    return;
  if (N == 0) {
    *this = Other;
    return;
  }
  double Delta = Other.Mean - Mean;
  size_t Total = N + Other.N;
  double NewMean = Mean + Delta * static_cast<double>(Other.N) /
                              static_cast<double>(Total);
  M2 += Other.M2 + Delta * Delta * static_cast<double>(N) *
                       static_cast<double>(Other.N) /
                       static_cast<double>(Total);
  Mean = NewMean;
  N = Total;
  Lo = std::min(Lo, Other.Lo);
  Hi = std::max(Hi, Other.Hi);
}

double RunningStats::variance() const {
  if (N < 2)
    return 0.0;
  return M2 / static_cast<double>(N);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double ecas::arithmeticMean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0.0;
  double Sum = 0.0;
  for (double V : Values)
    Sum += V;
  return Sum / static_cast<double>(Values.size());
}

double ecas::geometricMean(const std::vector<double> &Values) {
  ECAS_CHECK(!Values.empty(), "geometric mean of empty sample");
  double LogSum = 0.0;
  for (double V : Values) {
    ECAS_CHECK(V > 0.0, "geometric mean requires positive values");
    LogSum += std::log(V);
  }
  return std::exp(LogSum / static_cast<double>(Values.size()));
}

double ecas::quantile(std::vector<double> Values, double Q) {
  ECAS_CHECK(!Values.empty(), "quantile of empty sample");
  ECAS_CHECK(Q >= 0.0 && Q <= 1.0, "quantile must be in [0,1]");
  std::sort(Values.begin(), Values.end());
  double Pos = Q * static_cast<double>(Values.size() - 1);
  size_t Below = static_cast<size_t>(Pos);
  if (Below + 1 >= Values.size())
    return Values.back();
  double Frac = Pos - static_cast<double>(Below);
  return Values[Below] * (1.0 - Frac) + Values[Below + 1] * Frac;
}

double ecas::rSquared(const std::vector<double> &Ref,
                      const std::vector<double> &Fit) {
  ECAS_CHECK(Ref.size() == Fit.size() && !Ref.empty(),
             "rSquared requires equal-sized non-empty vectors");
  double Mean = arithmeticMean(Ref);
  double SsRes = 0.0, SsTot = 0.0;
  for (size_t I = 0; I != Ref.size(); ++I) {
    double Residual = Ref[I] - Fit[I];
    double Centered = Ref[I] - Mean;
    SsRes += Residual * Residual;
    SsTot += Centered * Centered;
  }
  if (SsTot == 0.0)
    return SsRes == 0.0 ? 1.0 : 0.0;
  return 1.0 - SsRes / SsTot;
}

double ecas::rmsError(const std::vector<double> &Ref,
                      const std::vector<double> &Fit) {
  ECAS_CHECK(Ref.size() == Fit.size() && !Ref.empty(),
             "rmsError requires equal-sized non-empty vectors");
  double Sum = 0.0;
  for (size_t I = 0; I != Ref.size(); ++I) {
    double Residual = Ref[I] - Fit[I];
    Sum += Residual * Residual;
  }
  return std::sqrt(Sum / static_cast<double>(Ref.size()));
}
