//===-- ecas/support/Error.cpp - Recoverable error propagation ------------===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ecas/support/Error.h"

using namespace ecas;

const char *ecas::errCodeName(ErrCode Code) {
  switch (Code) {
  case ErrCode::InvalidArgument:
    return "invalid argument";
  case ErrCode::ParseError:
    return "parse error";
  case ErrCode::Truncated:
    return "truncated input";
  case ErrCode::OutOfRange:
    return "out of range";
  case ErrCode::Incomplete:
    return "incomplete input";
  case ErrCode::DeviceUnavailable:
    return "device unavailable";
  case ErrCode::Timeout:
    return "timeout";
  case ErrCode::IoError:
    return "i/o error";
  case ErrCode::Cancelled:
    return "cancelled";
  case ErrCode::VersionMismatch:
    return "version mismatch";
  case ErrCode::CorruptData:
    return "corrupt data";
  case ErrCode::Overloaded:
    return "overloaded";
  case ErrCode::DeadlineInfeasible:
    return "deadline infeasible";
  }
  ECAS_UNREACHABLE("unknown error code");
}
