//===-- ecas/support/Crc32.cpp - CRC-32 checksum --------------------------===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ecas/support/Crc32.h"

#include <array>

using namespace ecas;

namespace {

/// Reflected-polynomial lookup table, built once at first use.
std::array<uint32_t, 256> buildTable() {
  std::array<uint32_t, 256> Table{};
  for (uint32_t I = 0; I != 256; ++I) {
    uint32_t C = I;
    for (int Bit = 0; Bit != 8; ++Bit)
      C = (C & 1) ? 0xedb88320u ^ (C >> 1) : C >> 1;
    Table[I] = C;
  }
  return Table;
}

} // namespace

uint32_t ecas::crc32(const void *Data, size_t Len, uint32_t Seed) {
  static const std::array<uint32_t, 256> Table = buildTable();
  const auto *Bytes = static_cast<const unsigned char *>(Data);
  uint32_t C = Seed ^ 0xffffffffu;
  for (size_t I = 0; I != Len; ++I)
    C = Table[(C ^ Bytes[I]) & 0xffu] ^ (C >> 8);
  return C ^ 0xffffffffu;
}
