//===-- ecas/support/Random.h - Deterministic PRNGs ------------*- C++ -*-===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SplitMix64 and xoshiro256** pseudo-random generators. Workload
/// generators and the memory-bound micro-benchmark need fast, seedable,
/// platform-independent randomness; std::mt19937 output ordering is
/// standardized but slower and heavier than needed here.
///
//===----------------------------------------------------------------------===//

#ifndef ECAS_SUPPORT_RANDOM_H
#define ECAS_SUPPORT_RANDOM_H

#include <cstdint>

namespace ecas {

/// SplitMix64: tiny, statistically solid, used to seed Xoshiro256 and for
/// one-off hashing of kernel identifiers.
class SplitMix64 {
public:
  explicit SplitMix64(uint64_t Seed) : State(Seed) {}

  uint64_t next() {
    State += 0x9e3779b97f4a7c15ULL;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

private:
  uint64_t State;
};

/// xoshiro256**: the repository's general-purpose PRNG.
class Xoshiro256 {
public:
  explicit Xoshiro256(uint64_t Seed) {
    SplitMix64 Mix(Seed);
    for (uint64_t &Word : State)
      Word = Mix.next();
  }

  uint64_t next() {
    const uint64_t Result = rotl(State[1] * 5, 7) * 9;
    const uint64_t T = State[1] << 17;
    State[2] ^= State[0];
    State[3] ^= State[1];
    State[1] ^= State[2];
    State[0] ^= State[3];
    State[2] ^= T;
    State[3] = rotl(State[3], 45);
    return Result;
  }

  /// Uniform double in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [Lo, Hi).
  double nextDouble(double Lo, double Hi) {
    return Lo + (Hi - Lo) * nextDouble();
  }

  /// Uniform integer in [0, Bound). Bound must be nonzero. Uses rejection
  /// sampling to avoid modulo bias.
  uint64_t nextBounded(uint64_t Bound) {
    const uint64_t Threshold = -Bound % Bound;
    while (true) {
      uint64_t Value = next();
      if (Value >= Threshold)
        return Value % Bound;
    }
  }

private:
  static uint64_t rotl(uint64_t X, int K) {
    return (X << K) | (X >> (64 - K));
  }

  uint64_t State[4];
};

} // namespace ecas

#endif // ECAS_SUPPORT_RANDOM_H
