//===-- ecas/support/Stats.h - Descriptive statistics ----------*- C++ -*-===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Running and batch descriptive statistics. Characterization averages
/// power samples; the evaluation harness aggregates per-benchmark
/// efficiencies with arithmetic and geometric means, matching the paper's
/// "on average X% of Oracle" reporting.
///
//===----------------------------------------------------------------------===//

#ifndef ECAS_SUPPORT_STATS_H
#define ECAS_SUPPORT_STATS_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ecas {

/// Single-pass running mean/variance accumulator (Welford's algorithm).
class RunningStats {
public:
  void add(double Value);

  /// Merges another accumulator into this one (parallel reduction).
  void merge(const RunningStats &Other);

  size_t count() const { return N; }
  double mean() const { return N ? Mean : 0.0; }
  /// Population variance; zero with fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return N ? Lo : 0.0; }
  double max() const { return N ? Hi : 0.0; }
  double sum() const { return Mean * static_cast<double>(N); }

private:
  size_t N = 0;
  double Mean = 0.0;
  double M2 = 0.0;
  double Lo = 0.0;
  double Hi = 0.0;
};

/// Arithmetic mean of \p Values; zero for an empty vector.
double arithmeticMean(const std::vector<double> &Values);

/// Geometric mean of \p Values; all entries must be positive.
double geometricMean(const std::vector<double> &Values);

/// Returns the \p Q quantile (0..1) using linear interpolation between
/// order statistics. \p Values need not be sorted; NaN entries are
/// dropped first, and an empty (or all-NaN) sample yields NaN rather
/// than a value pulled from thin air.
double quantile(std::vector<double> Values, double Q);

/// The single quantile implementation every other helper delegates to
/// (quantile(), the metrics histograms, the bench JSON summaries).
/// \p Sorted must be ascending and NaN-free; returns NaN for an empty
/// vector, the sole element for a one-sample vector, and clamps \p Q
/// into [0, 1].
double quantileSorted(const std::vector<double> &Sorted, double Q);

/// Quantile estimated from log- or linear-bucketed counts, the way
/// Prometheus' histogram_quantile does it: \p UpperBounds are the
/// ascending finite bucket upper edges and \p Counts holds one entry
/// per bound plus a trailing overflow bucket (so Counts.size() ==
/// UpperBounds.size() + 1). The result interpolates linearly inside the
/// target bucket (the first bucket's lower edge is 0); a quantile
/// landing in the overflow bucket reports the highest finite bound.
/// Returns NaN when no samples were recorded.
double quantileFromBuckets(const std::vector<double> &UpperBounds,
                           const std::vector<uint64_t> &Counts, double Q);

/// Coefficient of determination of predictions \p Fit against observations
/// \p Ref; 1.0 means a perfect fit. Vectors must be equal-sized and
/// non-empty.
double rSquared(const std::vector<double> &Ref, const std::vector<double> &Fit);

/// Root-mean-square error between two equal-sized vectors.
double rmsError(const std::vector<double> &Ref, const std::vector<double> &Fit);

} // namespace ecas

#endif // ECAS_SUPPORT_STATS_H
