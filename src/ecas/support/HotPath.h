//===-- ecas/support/HotPath.h - Hot-path discipline macros ----*- C++ -*-===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The ECAS_HOT function attribute marking the steady-state decision
/// path (DESIGN.md §14): the table-G lock-free lookup, the analytical
/// model evaluation, the alpha search, and the EasScheduler table-hit
/// branch through dispatch. Functions carrying it are the roots
/// tools/ecas_hotpath.py walks; everything reachable from a root must be
/// allocation-free, exception-free, lock-disciplined (only the
/// KernelHistory shard leaf lock), and must not block on IO. Violations
/// are findings unless the offending call carries an
/// `// ecas-hotpath: allow(rule)` suppression with a justification.
///
/// Under Clang the macro also attaches annotate("ecas_hot") so the
/// libclang engine reads roots straight off the AST; GCC would warn on
/// the unknown annotate attribute (and -Werror is on), so it only gets
/// the optimizer hint there. The textual engine keys on the ECAS_HOT
/// token itself, which both compilers see.
///
//===----------------------------------------------------------------------===//

#ifndef ECAS_SUPPORT_HOTPATH_H
#define ECAS_SUPPORT_HOTPATH_H

#if defined(__clang__)
#define ECAS_HOT __attribute__((hot, annotate("ecas_hot")))
#elif defined(__GNUC__)
#define ECAS_HOT __attribute__((hot))
#else
#define ECAS_HOT
#endif

#endif // ECAS_SUPPORT_HOTPATH_H
