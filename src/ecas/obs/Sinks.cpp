//===-- ecas/obs/Sinks.cpp - CSV and summary trace sinks ------------------===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ecas/obs/Sinks.h"

#include "ecas/support/Format.h"

#include <map>

using namespace ecas;
using namespace ecas::obs;

Status NullSink::consume(const TraceLog &Log) {
  Consumed += Log.Events.size();
  return Status::success();
}

CsvTraceSink::CsvTraceSink(std::string PathIn) : Path(std::move(PathIn)) {}

Status CsvTraceSink::consume(const TraceLog &Log) {
  Table = CsvTable();
  Table.setHeader({"kind", "category", "name", "host_sec", "virtual_sec",
                   "value", "thread", "detail"});
  for (const TraceEvent &E : Log.Events)
    Table.addRow({eventKindName(E.Kind), E.Category, E.Name,
                  formatString("%.9f", E.HostSeconds - Log.EpochHostSeconds),
                  E.hasVirtualTime() ? formatString("%.9f", E.VirtualSeconds)
                                     : std::string(),
                  formatString("%.6g", E.Value),
                  formatString("%u", E.ThreadId), E.Detail});
  for (const CounterTotal &C : Log.Counters)
    Table.addRow({"counter-total", "counter", C.Name, "", "",
                  formatString("%.6g", C.Total),
                  formatString("%llu",
                               static_cast<unsigned long long>(C.Samples)),
                  ""});
  if (Path.empty())
    return Status::success();
  if (!Table.writeFile(Path))
    return Status::error(ErrCode::IoError, "cannot write trace CSV " + Path);
  return Status::success();
}

Status SummarySink::consume(const TraceLog &Log) {
  // Pair begin/end per (thread, name) by nesting order to charge each
  // span its host-clock duration; SpanComplete events carry theirs.
  struct SpanStats {
    uint64_t Count = 0;
    double TotalSeconds = 0.0;
  };
  std::map<std::string, SpanStats> Spans;
  std::map<std::string, uint64_t> Instants;
  std::map<std::pair<uint32_t, std::string>, std::vector<double>> Open;
  for (const TraceEvent &E : Log.Events) {
    switch (E.Kind) {
    case EventKind::SpanBegin:
      Open[{E.ThreadId, E.Name}].push_back(E.HostSeconds);
      break;
    case EventKind::SpanEnd: {
      auto &Stack = Open[{E.ThreadId, E.Name}];
      SpanStats &S = Spans[E.Name];
      ++S.Count;
      if (!Stack.empty()) {
        S.TotalSeconds += E.HostSeconds - Stack.back();
        Stack.pop_back();
      }
      break;
    }
    case EventKind::SpanComplete: {
      SpanStats &S = Spans[E.Name];
      ++S.Count;
      S.TotalSeconds += E.Value;
      break;
    }
    case EventKind::Instant:
      ++Instants[E.Name];
      break;
    case EventKind::Counter:
      break;
    }
  }

  std::string Out;
  Out += formatString("trace summary: %zu events\n", Log.Events.size());
  if (!Spans.empty()) {
    Out += "  spans:\n";
    for (const auto &[Name, S] : Spans)
      Out += formatString("    %-24s x%-8llu %s\n", Name.c_str(),
                          static_cast<unsigned long long>(S.Count),
                          formatDuration(S.TotalSeconds).c_str());
  }
  if (!Instants.empty()) {
    Out += "  instants:\n";
    for (const auto &[Name, N] : Instants)
      Out += formatString("    %-24s x%llu\n", Name.c_str(),
                          static_cast<unsigned long long>(N));
  }
  if (!Log.Counters.empty()) {
    Out += "  counters:\n";
    for (const CounterTotal &C : Log.Counters)
      Out += formatString("    %-24s %.6g (%llu samples)\n", C.Name.c_str(),
                          C.Total,
                          static_cast<unsigned long long>(C.Samples));
  }
  Text = std::move(Out);
  return Status::success();
}
