//===-- ecas/obs/Incident.cpp - Anomaly-triggered forensic bundles --------===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ecas/obs/Incident.h"

#include "ecas/obs/ChromeTrace.h"
#include "ecas/obs/MetricsExport.h"
#include "ecas/support/AtomicFile.h"
#include "ecas/support/Format.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <ctime>
#include <utility>

#include <dirent.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

using namespace ecas;
using namespace ecas::obs;

namespace {

constexpr char kBundlePrefix[] = "incident-";
constexpr char kManifestName[] = "MANIFEST.txt";
constexpr char kIncidentHeader[] = "ecas-incident v1";
constexpr char kLastGaspHeader[] = "ecas-lastgasp v1";

Status ioError(const char *What, const std::string &Path) {
  return Status::error(ErrCode::IoError,
                       formatString("%s %s: %s", What, Path.c_str(),
                                    std::strerror(errno)));
}

Status ensureDir(const std::string &Path) {
  if (::mkdir(Path.c_str(), 0755) == 0 || errno == EEXIST)
    return Status::success();
  return ioError("mkdir", Path);
}

/// Deletes every regular file in \p Dir, then the directory itself.
/// Bundles are flat, so one level is all eviction ever needs.
Status removeBundleDir(const std::string &Dir) {
  DIR *Handle = ::opendir(Dir.c_str());
  if (!Handle)
    return ioError("opendir", Dir);
  while (dirent *Entry = ::readdir(Handle)) {
    std::string Name = Entry->d_name;
    if (Name == "." || Name == "..")
      continue;
    (void)::unlink((Dir + "/" + Name).c_str());
  }
  ::closedir(Handle);
  if (::rmdir(Dir.c_str()) != 0)
    return ioError("rmdir", Dir);
  return Status::success();
}

/// Sequence parsed from "incident-<digits>", or -1 for anything else.
long long bundleSequence(const std::string &Name) {
  const size_t PrefixLen = sizeof(kBundlePrefix) - 1;
  if (Name.compare(0, PrefixLen, kBundlePrefix) != 0)
    return -1;
  long long Seq = 0;
  if (!parseInt64(Name.substr(PrefixLen), Seq) || Seq < 0)
    return -1;
  return Seq;
}

} // namespace

std::vector<std::string> ecas::obs::listBundles(const std::string &Root) {
  std::vector<std::string> Names;
  DIR *Handle = ::opendir(Root.c_str());
  if (!Handle)
    return Names;
  while (dirent *Entry = ::readdir(Handle)) {
    std::string Name = Entry->d_name;
    if (bundleSequence(Name) < 0)
      continue;
    struct stat Info;
    std::string Path = Root + "/" + Name;
    if (::stat(Path.c_str(), &Info) == 0 && S_ISDIR(Info.st_mode))
      Names.push_back(std::move(Path));
  }
  ::closedir(Handle);
  // Zero-padded sequences make lexicographic order chronological.
  std::sort(Names.begin(), Names.end());
  return Names;
}

IncidentWriter::IncidentWriter(IncidentConfig ConfigIn)
    : Config(std::move(ConfigIn)) {
  LockGuard Lock(Mutex);
  // Resume numbering past whatever a previous process left behind, so
  // eviction order stays chronological across restarts.
  for (const std::string &Path : listBundles(Config.Dir)) {
    size_t Slash = Path.find_last_of('/');
    long long Seq = bundleSequence(
        Slash == std::string::npos ? Path : Path.substr(Slash + 1));
    if (Seq >= 0 && static_cast<uint64_t>(Seq) >= NextSeq)
      NextSeq = static_cast<uint64_t>(Seq) + 1;
  }
}

uint64_t IncidentWriter::bundlesWritten() const {
  LockGuard Lock(Mutex);
  return Written;
}

ErrorOr<std::string>
IncidentWriter::write(const IncidentInputs &Inputs,
                      const std::vector<AnomalyTrigger> &Triggers,
                      double NowSec, bool Force) {
  LockGuard Lock(Mutex);
  return writeLocked(Inputs, Triggers, NowSec, Force);
}

ErrorOr<std::string>
IncidentWriter::writeLocked(const IncidentInputs &Inputs,
                            const std::vector<AnomalyTrigger> &Triggers,
                            double NowSec, bool Force) {
  if (!Force && Armed && NowSec - LastWriteSec < Config.MinIntervalSec)
    return Status::error(
        ErrCode::Overloaded,
        formatString("incident rate limit: %.3fs since last bundle "
                     "(minimum %.3fs)",
                     NowSec - LastWriteSec, Config.MinIntervalSec));
  if (Status S = ensureDir(Config.Dir); !S.ok())
    return S;

  uint64_t Seq = NextSeq++;
  std::string BundleDir =
      Config.Dir + formatString("/%s%08llu", kBundlePrefix,
                                static_cast<unsigned long long>(Seq));
  if (::mkdir(BundleDir.c_str(), 0755) != 0)
    return ioError("mkdir", BundleDir);

  std::vector<std::pair<std::string, std::string>> Files;
  if (Inputs.Flight) {
    FlightSnapshot Snap = Inputs.Flight->drain();
    Files.emplace_back("trace.json", renderChromeTrace(Snap.Trace));
    Files.emplace_back("decisions.jsonl",
                       DecisionLogSink::renderJsonLines(Snap.Decisions));
  }
  if (Inputs.Metrics) {
    MetricsSnapshot Snap = Inputs.Metrics->snapshot();
    Files.emplace_back("metrics.prom", renderPrometheus(Snap));
    Files.emplace_back("metrics.json", renderMetricsJson(Snap));
  }
  if (!Inputs.TableDigest.empty())
    Files.emplace_back("tableg.txt", Inputs.TableDigest);
  if (!Inputs.ServiceStatus.empty())
    Files.emplace_back("status.txt", Inputs.ServiceStatus);

  for (const auto &File : Files)
    if (Status S = writeFileAtomic(BundleDir + "/" + File.first,
                                   File.second);
        !S.ok())
      return S;

  // The manifest goes last: its presence (with matching sizes) is the
  // commit record that distinguishes a complete bundle from one a crash
  // tore mid-capture.
  std::string Manifest;
  Manifest += kIncidentHeader;
  Manifest += '\n';
  Manifest += formatString("created_unix %lld\n",
                           static_cast<long long>(std::time(nullptr)));
  Manifest += formatString("sequence %llu\n",
                           static_cast<unsigned long long>(Seq));
  Manifest += formatString("reason %s\n",
                           Triggers.empty() ? "manual" : "anomaly");
  for (const AnomalyTrigger &Trigger : Triggers)
    Manifest += formatString(
        "trigger %s metric=%s threshold=%.17g observed=%.17g note=%s\n",
        Trigger.Rule.c_str(), Trigger.Metric.c_str(), Trigger.Threshold,
        Trigger.Observed, Trigger.Note.c_str());
  for (const auto &File : Files)
    Manifest += formatString("file %s bytes=%llu\n", File.first.c_str(),
                             static_cast<unsigned long long>(
                                 File.second.size()));
  Manifest += "end\n";
  if (Status S = writeFileAtomic(BundleDir + "/" + kManifestName, Manifest);
      !S.ok())
    return S;

  LastWriteSec = NowSec;
  Armed = true;
  ++Written;
  evictOldBundles();
  return BundleDir;
}

void IncidentWriter::evictOldBundles() {
  std::vector<std::string> Bundles = listBundles(Config.Dir);
  size_t Keep = std::max<unsigned>(Config.MaxBundles, 1);
  // Best-effort: a bundle that will not delete (permissions, races)
  // must not wedge capture of the next one.
  while (Bundles.size() > Keep) {
    (void)removeBundleDir(Bundles.front());
    Bundles.erase(Bundles.begin());
  }
}

Status ecas::obs::validateBundle(const std::string &Dir) {
  std::string Manifest;
  bool Existed = false;
  std::string ManifestPath = Dir + "/" + kManifestName;
  if (Status S = readFileBytes(ManifestPath, Manifest, Existed); !S.ok())
    return S;
  if (!Existed)
    return Status::error(ErrCode::CorruptData,
                         formatString("no manifest in %s", Dir.c_str()));

  std::vector<std::string> Lines = splitString(Manifest, '\n');
  while (!Lines.empty() && Lines.back().empty())
    Lines.pop_back();
  if (Lines.empty() || Lines.front() != kIncidentHeader)
    return Status::error(ErrCode::VersionMismatch,
                         "manifest header is not ecas-incident v1");
  if (Lines.back() != "end")
    return Status::error(ErrCode::Truncated,
                         "manifest is missing its end marker");

  bool SawSequence = false;
  bool SawCreated = false;
  for (size_t I = 1; I < Lines.size(); ++I) {
    const std::string &Line = Lines[I];
    std::vector<std::string> Tokens = splitString(Line, ' ');
    if (Tokens.empty())
      continue;
    if (Tokens[0] == "sequence")
      SawSequence = true;
    if (Tokens[0] == "created_unix")
      SawCreated = true;
    if (Tokens[0] != "file")
      continue;
    if (Tokens.size() < 3 || Tokens[2].compare(0, 6, "bytes=") != 0)
      return Status::error(ErrCode::ParseError,
                           formatString("bad manifest file line: %s",
                                        Line.c_str()));
    long long Expected = 0;
    if (!parseInt64(Tokens[2].substr(6), Expected) || Expected < 0)
      return Status::error(ErrCode::ParseError,
                           formatString("bad byte count: %s", Line.c_str()));
    std::string Content;
    bool FileExisted = false;
    std::string Path = Dir + "/" + Tokens[1];
    if (Status S = readFileBytes(Path, Content, FileExisted); !S.ok())
      return S;
    if (!FileExisted)
      return Status::error(ErrCode::CorruptData,
                           formatString("manifest lists missing file %s",
                                        Tokens[1].c_str()));
    if (Content.size() != static_cast<size_t>(Expected))
      return Status::error(
          ErrCode::Truncated,
          formatString("%s is %llu bytes, manifest says %lld",
                       Tokens[1].c_str(),
                       static_cast<unsigned long long>(Content.size()),
                       Expected));
    // Size alone cannot catch a file rewritten with garbage of the same
    // length; the structured payloads get parsed outright.
    if (Tokens[1] == "trace.json") {
      if (ErrorOr<ChromeTraceData> Trace = parseChromeTrace(Content);
          !Trace.ok())
        return Trace.status();
    } else if (Tokens[1] == "metrics.prom") {
      if (ErrorOr<MetricsSnapshot> Snap = parsePrometheusText(Content);
          !Snap.ok())
        return Snap.status();
    }
  }
  if (!SawSequence || !SawCreated)
    return Status::error(ErrCode::ParseError,
                         "manifest is missing sequence/created_unix");
  return Status::success();
}

std::string ecas::obs::renderLastGasp(const LastGaspContext &Ctx) {
  std::string Doc;
  Doc += kLastGaspHeader;
  Doc += '\n';
  Doc += formatString("created_unix %lld\n",
                      static_cast<long long>(std::time(nullptr)));
  Doc += formatString("uptime_sec %.3f\n", Ctx.UptimeSec);
  if (Ctx.Flight) {
    FlightSnapshot Snap = Ctx.Flight->drain();
    Doc += formatString(
        "events recorded=%llu dropped=%llu resident=%llu\n",
        static_cast<unsigned long long>(Snap.EventsRecorded),
        static_cast<unsigned long long>(Snap.EventsDropped),
        static_cast<unsigned long long>(Snap.Trace.Events.size()));
    size_t Tail = std::min(Snap.Decisions.size(), Ctx.MaxDecisionLines);
    Doc += formatString(
        "decisions recorded=%llu dropped=%llu tail=%llu\n",
        static_cast<unsigned long long>(Snap.DecisionsRecorded),
        static_cast<unsigned long long>(Snap.DecisionsDropped),
        static_cast<unsigned long long>(Tail));
    std::vector<DecisionRecord> TailRecords(
        Snap.Decisions.end() - static_cast<ptrdiff_t>(Tail),
        Snap.Decisions.end());
    for (const std::string &Line :
         splitString(DecisionLogSink::renderJsonLines(TailRecords), '\n'))
      if (!Line.empty())
        Doc += "decision " + Line + "\n";
  }
  for (const std::string &Line : splitString(Ctx.ServiceStatus, '\n'))
    if (!Line.empty())
      Doc += "status " + Line + "\n";
  Doc += "end\n";
  return Doc;
}

Status ecas::obs::validateLastGasp(const std::string &Text) {
  std::vector<std::string> Lines = splitString(Text, '\n');
  while (!Lines.empty() && Lines.back().empty())
    Lines.pop_back();
  if (Lines.empty() || Lines.front() != kLastGaspHeader)
    return Status::error(ErrCode::VersionMismatch,
                         "last-gasp header is not ecas-lastgasp v1");
  if (Lines.back() != "end")
    return Status::error(ErrCode::Truncated,
                         "last-gasp document is missing its end marker");
  bool SawUptime = false;
  for (const std::string &Line : Lines)
    if (Line.compare(0, 11, "uptime_sec ") == 0)
      SawUptime = true;
  if (!SawUptime)
    return Status::error(ErrCode::ParseError,
                         "last-gasp document has no uptime_sec");
  return Status::success();
}
