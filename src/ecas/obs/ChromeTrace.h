//===-- ecas/obs/ChromeTrace.h - Chrome trace-event exporter ---*- C++ -*-===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Chrome trace-event JSON export (the format Perfetto and
/// chrome://tracing load) plus the minimal parser the round-trip tests
/// and CI artifact check use to prove an exported file is well-formed.
///
/// The export lays the log out on two clock tracks:
///   - pid 1 "host clock": every event, at its host steady-clock
///     timestamp (microseconds from the recorder's epoch).
///   - pid 2 "virtual clock": the subset of events that carry a
///     SimProcessor timestamp, re-plotted at virtual microseconds — the
///     track operators read to see *where simulated time went*, aligned
///     with the scheduler's own decisions.
/// Counters render as cumulative "C" events on the host track, so each
/// counter becomes a ramp whose final height equals its TraceLog total.
///
//===----------------------------------------------------------------------===//

#ifndef ECAS_OBS_CHROMETRACE_H
#define ECAS_OBS_CHROMETRACE_H

#include "ecas/obs/Trace.h"

namespace ecas::obs {

/// Renders \p Log as a Chrome trace-event JSON document.
std::string renderChromeTrace(const TraceLog &Log);

/// TraceSink writing renderChromeTrace() to \p Path (or only keeping it
/// in memory when \p Path is empty).
class ChromeTraceSink : public TraceSink {
public:
  explicit ChromeTraceSink(std::string Path = {});

  Status consume(const TraceLog &Log) override;

  /// The rendered JSON ("" before consume()).
  const std::string &json() const { return Json; }

private:
  std::string Path;
  std::string Json;
};

/// One parsed trace-event record (the fields the project emits).
struct ChromeTraceEvent {
  std::string Name;
  std::string Category;
  /// Phase: "B", "E", "X", "i", "C", or "M".
  std::string Phase;
  double TimestampUs = 0.0;
  double DurationUs = 0.0;
  long long Pid = 0;
  long long Tid = 0;
};

/// Parsed form of a Chrome trace document.
struct ChromeTraceData {
  std::vector<ChromeTraceEvent> Events;

  /// Events with \p Phase ("B", "X", ...).
  size_t countPhase(const std::string &Phase) const;
  /// True when any event (metadata aside) has \p Name.
  bool hasEventNamed(const std::string &Name) const;
};

/// Parses a Chrome trace-event JSON document produced by
/// renderChromeTrace (accepts both the object form with "traceEvents"
/// and a bare array). Strict enough to catch truncation and escaping
/// bugs: any malformed JSON is a ParseError.
ErrorOr<ChromeTraceData> parseChromeTrace(const std::string &Json);

} // namespace ecas::obs

#endif // ECAS_OBS_CHROMETRACE_H
