//===-- ecas/obs/LastGasp.cpp - Crash-time forensic write -----------------===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ecas/obs/LastGasp.h"

#include "ecas/support/SignalSafety.h"
#include "ecas/support/ThreadAnnotations.h"

#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstring>
#include <exception>

#include <fcntl.h>
#include <unistd.h>

using namespace ecas;
using namespace ecas::obs;

namespace {

// Everything the handlers touch is static storage published with
// acquire/release atomics: no allocation at crash time, no lock shared
// with a thread the signal may have interrupted mid-critical-section.
constexpr size_t kBufferBytes = 256 * 1024;
constexpr size_t kPathBytes = 512;

char Buffers[2][kBufferBytes];
std::atomic<size_t> BufferLens[2] = {{0}, {0}};
/// Index of the buffer holding the current complete document, -1 before
/// the first refresh. The release store here is what publishes the
/// buffer contents to the (acquire-loading) handler.
std::atomic<int> ActiveIndex{-1};

char GaspPath[kPathBytes];
std::atomic<bool> Armed{false};
std::atomic_flag WroteOnce = ATOMIC_FLAG_INIT;

/// Serializes refresh/arm against each other (never taken by handlers).
AnnotatedMutex StateMutex{"Obs.LastGasp"};

std::terminate_handler PreviousTerminate = nullptr;

/// The crash write itself: open(2) + write(2) of the pre-serialized
/// active buffer. Every call below is on the async-signal-safe list;
/// the ECAS_SIGNAL_SAFE marker puts the body under ecas-lint's
/// signal-unsafe-in-handler rule so it stays that way.
ECAS_SIGNAL_SAFE void writeSnapshotToFile() {
  if (!Armed.load(std::memory_order_acquire))
    return;
  int Index = ActiveIndex.load(std::memory_order_acquire);
  if (Index < 0)
    return;
  size_t Len = BufferLens[Index].load(std::memory_order_relaxed);
  int Fd = ::open(GaspPath, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (Fd < 0)
    return;
  size_t Off = 0;
  while (Off < Len) {
    ssize_t N = ::write(Fd, Buffers[Index] + Off, Len - Off);
    if (N <= 0)
      break;
    Off += static_cast<size_t>(N);
  }
  ::close(Fd);
}

ECAS_SIGNAL_SAFE void fatalSignalHandler(int Sig) {
  if (!WroteOnce.test_and_set())
    writeSnapshotToFile();
  // SA_RESETHAND restored the default disposition on entry; the
  // re-raise is delivered when this handler returns, so the process
  // still dies with the original signal's exit status.
  ::raise(Sig);
}

ECAS_SIGNAL_SAFE void terminateOnCrash() {
  if (!WroteOnce.test_and_set())
    writeSnapshotToFile();
  ::raise(SIGABRT);
  ::_exit(134);
}

constexpr int kFatalSignals[] = {SIGSEGV, SIGBUS, SIGILL, SIGFPE, SIGABRT};

} // namespace

LastGasp &LastGasp::instance() {
  static LastGasp Singleton;
  return Singleton;
}

size_t LastGasp::bufferBytes() { return kBufferBytes; }

Status LastGasp::arm(const std::string &Path) {
  if (Path.empty() || Path.size() + 1 > kPathBytes)
    return Status::error(
        ErrCode::InvalidArgument,
        "last-gasp path must be non-empty and under 512 bytes");
  LockGuard Lock(StateMutex);
  std::memcpy(GaspPath, Path.c_str(), Path.size() + 1);
  if (!Armed.exchange(true, std::memory_order_acq_rel)) {
    struct sigaction Action;
    std::memset(&Action, 0, sizeof(Action));
    Action.sa_handler = fatalSignalHandler;
    Action.sa_flags = SA_RESETHAND;
    sigemptyset(&Action.sa_mask);
    for (int Sig : kFatalSignals)
      (void)::sigaction(Sig, &Action, nullptr);
    PreviousTerminate = std::set_terminate(terminateOnCrash);
  }
  return Status::success();
}

void LastGasp::disarm() {
  LockGuard Lock(StateMutex);
  if (!Armed.exchange(false, std::memory_order_acq_rel))
    return;
  struct sigaction Action;
  std::memset(&Action, 0, sizeof(Action));
  Action.sa_handler = SIG_DFL;
  sigemptyset(&Action.sa_mask);
  for (int Sig : kFatalSignals)
    (void)::sigaction(Sig, &Action, nullptr);
  std::set_terminate(PreviousTerminate);
  GaspPath[0] = '\0';
}

void LastGasp::refresh(const std::string &Snapshot) {
  LockGuard Lock(StateMutex);
  int Current = ActiveIndex.load(std::memory_order_relaxed);
  int Standby = Current == 0 ? 1 : 0;
  size_t Len = std::min(Snapshot.size(), kBufferBytes);
  std::memcpy(Buffers[Standby], Snapshot.data(), Len);
  BufferLens[Standby].store(Len, std::memory_order_relaxed);
  ActiveIndex.store(Standby, std::memory_order_release);
}

bool LastGasp::armed() const {
  return Armed.load(std::memory_order_acquire);
}

std::string LastGasp::path() const {
  LockGuard Lock(StateMutex);
  return Armed.load(std::memory_order_acquire) ? std::string(GaspPath)
                                               : std::string();
}
