//===-- ecas/obs/Trace.cpp - Spans, counters, per-thread buffers ----------===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ecas/obs/Trace.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <map>

using namespace ecas;
using namespace ecas::obs;

const char *ecas::obs::eventKindName(EventKind Kind) {
  switch (Kind) {
  case EventKind::SpanBegin:
    return "span-begin";
  case EventKind::SpanEnd:
    return "span-end";
  case EventKind::SpanComplete:
    return "span-complete";
  case EventKind::Instant:
    return "instant";
  case EventKind::Counter:
    return "counter";
  }
  ECAS_UNREACHABLE("unknown event kind");
}

double TraceLog::counterTotal(const std::string &Name) const {
  for (const CounterTotal &C : Counters)
    if (C.Name == Name)
      return C.Total;
  return 0.0;
}

size_t TraceLog::countNamed(const std::string &Name) const {
  size_t N = 0;
  for (const TraceEvent &E : Events)
    N += Name == E.Name ? 1 : 0;
  return N;
}

//===----------------------------------------------------------------------===//
// ThreadBuffer: single-writer chunked event list. The owning thread
// appends without locks; a concurrent drain observes the prefix the
// writer published (Count release-store / acquire-load per chunk, chunk
// links via release pointers), so the snapshot is always consistent.
//===----------------------------------------------------------------------===//

struct TraceRecorder::ThreadBuffer {
  static constexpr size_t ChunkEvents = 512;

  struct Chunk {
    TraceEvent Events[ChunkEvents];
    /// Slots [0, Count) are fully written; the writer stores with
    /// release after filling the slot, readers load with acquire.
    std::atomic<size_t> Count{0};
    std::atomic<Chunk *> Next{nullptr};
  };

  explicit ThreadBuffer(uint32_t ThreadIdIn)
      : ThreadId(ThreadIdIn), Head(new Chunk), Tail(Head) {}

  ~ThreadBuffer() {
    for (Chunk *C = Head; C != nullptr;) {
      Chunk *Next = C->Next.load(std::memory_order_relaxed);
      delete C;
      C = Next;
    }
  }

  /// Owner thread only.
  void push(TraceEvent Event) {
    Event.ThreadId = ThreadId;
    size_t Used = Tail->Count.load(std::memory_order_relaxed);
    if (Used == ChunkEvents) {
      Chunk *Fresh = new Chunk;
      Tail->Next.store(Fresh, std::memory_order_release);
      Tail = Fresh;
      Used = 0;
    }
    Tail->Events[Used] = std::move(Event);
    Tail->Count.store(Used + 1, std::memory_order_release);
  }

  /// Any thread: copies the published prefix into \p Out.
  void snapshot(std::vector<TraceEvent> &Out) const {
    for (const Chunk *C = Head; C != nullptr;
         C = C->Next.load(std::memory_order_acquire)) {
      size_t N = C->Count.load(std::memory_order_acquire);
      for (size_t I = 0; I != N; ++I)
        Out.push_back(C->Events[I]);
    }
  }

  uint64_t published() const {
    uint64_t N = 0;
    for (const Chunk *C = Head; C != nullptr;
         C = C->Next.load(std::memory_order_acquire))
      N += C->Count.load(std::memory_order_acquire);
    return N;
  }

  const uint32_t ThreadId;
  Chunk *const Head;
  /// Owner thread only.
  Chunk *Tail;
};

//===----------------------------------------------------------------------===//
// TraceRecorder
//===----------------------------------------------------------------------===//

double TraceRecorder::hostSeconds() {
  using Clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(Clock::now().time_since_epoch())
      .count();
}

static uint64_t nextRecorderId() {
  static std::atomic<uint64_t> Next{1};
  return Next.fetch_add(1, std::memory_order_relaxed);
}

TraceRecorder::TraceRecorder()
    : RecorderId(nextRecorderId()), Epoch(hostSeconds()) {}

TraceRecorder::~TraceRecorder() = default;

TraceRecorder::ThreadBuffer &TraceRecorder::localBuffer() {
  /// (recorder id -> buffer) for this thread; ids are never reused, so
  /// an entry can only ever resolve to the recorder that created it.
  struct CacheEntry {
    uint64_t RecorderId;
    ThreadBuffer *Buffer;
  };
  thread_local std::vector<CacheEntry> Cache;
  for (const CacheEntry &E : Cache)
    if (E.RecorderId == RecorderId)
      return *E.Buffer;

  ThreadBuffer *Fresh = nullptr;
  {
    LockGuard Lock(RegistryMutex);
    Fresh = Buffers
                .emplace_back(std::make_unique<ThreadBuffer>(
                    static_cast<uint32_t>(Buffers.size())))
                .get();
  }
  Cache.push_back({RecorderId, Fresh});
  return *Fresh;
}

void TraceRecorder::record(TraceEvent Event) {
  Event.Seq = NextSeq.fetch_add(1, std::memory_order_relaxed);
  localBuffer().push(std::move(Event));
}

void TraceRecorder::beginSpan(const char *Category, const char *Name,
                              double VirtualSec, std::string Detail) {
  TraceEvent E;
  E.Kind = EventKind::SpanBegin;
  E.Category = Category;
  E.Name = Name;
  E.HostSeconds = hostSeconds();
  E.VirtualSeconds = VirtualSec;
  E.Detail = std::move(Detail);
  record(std::move(E));
}

void TraceRecorder::endSpan(const char *Category, const char *Name,
                            double VirtualSec, std::string Detail) {
  TraceEvent E;
  E.Kind = EventKind::SpanEnd;
  E.Category = Category;
  E.Name = Name;
  E.HostSeconds = hostSeconds();
  E.VirtualSeconds = VirtualSec;
  E.Detail = std::move(Detail);
  record(std::move(E));
}

void TraceRecorder::completeSpan(const char *Category, const char *Name,
                                 double StartHostSec, double DurationSec,
                                 double VirtualSec, std::string Detail) {
  TraceEvent E;
  E.Kind = EventKind::SpanComplete;
  E.Category = Category;
  E.Name = Name;
  E.HostSeconds = StartHostSec;
  E.VirtualSeconds = VirtualSec;
  E.Value = DurationSec;
  E.Detail = std::move(Detail);
  record(std::move(E));
}

void TraceRecorder::instant(const char *Category, const char *Name,
                            double VirtualSec, std::string Detail) {
  TraceEvent E;
  E.Kind = EventKind::Instant;
  E.Category = Category;
  E.Name = Name;
  E.HostSeconds = hostSeconds();
  E.VirtualSeconds = VirtualSec;
  E.Detail = std::move(Detail);
  record(std::move(E));
}

void TraceRecorder::count(const char *Name, double Delta) {
  TraceEvent E;
  E.Kind = EventKind::Counter;
  E.Category = "counter";
  E.Name = Name;
  E.HostSeconds = hostSeconds();
  E.Value = Delta;
  record(std::move(E));
}

uint64_t TraceRecorder::eventsRecorded() const {
  LockGuard Lock(RegistryMutex);
  uint64_t N = 0;
  for (const auto &Buffer : Buffers)
    N += Buffer->published();
  return N;
}

TraceLog TraceRecorder::drain() const {
  TraceLog Log;
  Log.EpochHostSeconds = Epoch;
  {
    LockGuard Lock(RegistryMutex);
    for (const auto &Buffer : Buffers)
      Buffer->snapshot(Log.Events);
  }
  std::sort(Log.Events.begin(), Log.Events.end(),
            [](const TraceEvent &A, const TraceEvent &B) {
              if (A.HostSeconds != B.HostSeconds)
                return A.HostSeconds < B.HostSeconds;
              return A.Seq < B.Seq;
            });

  std::map<std::string, CounterTotal> Totals;
  for (const TraceEvent &E : Log.Events) {
    if (E.Kind != EventKind::Counter)
      continue;
    CounterTotal &C = Totals[E.Name];
    C.Name = E.Name;
    C.Total += E.Value;
    ++C.Samples;
  }
  Log.Counters.reserve(Totals.size());
  for (auto &[Name, Total] : Totals)
    Log.Counters.push_back(std::move(Total));
  return Log;
}

Status TraceRecorder::drainTo(TraceSink &Sink) const {
  return Sink.consume(drain());
}

//===----------------------------------------------------------------------===//
// ScopedSpan
//===----------------------------------------------------------------------===//

ScopedSpan::ScopedSpan(TraceRecorder *RecorderIn, const char *CategoryIn,
                       const char *NameIn, std::function<double()> VirtualNowIn,
                       std::string BeginDetail)
    : Recorder(RecorderIn), Category(CategoryIn), Name(NameIn),
      VirtualNow(std::move(VirtualNowIn)) {
  if (!Recorder)
    return;
  Recorder->beginSpan(Category, Name,
                      VirtualNow
                          ? VirtualNow()
                          : std::numeric_limits<double>::quiet_NaN(),
                      std::move(BeginDetail));
}

ScopedSpan::~ScopedSpan() {
  if (!Recorder)
    return;
  Recorder->endSpan(Category, Name,
                    VirtualNow ? VirtualNow()
                               : std::numeric_limits<double>::quiet_NaN(),
                    std::move(EndDetail));
}
