//===-- ecas/obs/Anomaly.cpp - Metrics-driven anomaly detectors -----------===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ecas/obs/Anomaly.h"

#include "ecas/obs/MetricNames.h"
#include "ecas/support/Format.h"

#include <algorithm>

using namespace ecas;
using namespace ecas::obs;

namespace {

/// Sum of counter values across every sample of \p Name carrying the
/// label \p Key=\p Value (0 when absent) — the burn-rate rule reads the
/// sla0 slice of a per-SLA family this way.
double labelledTotal(const MetricsSnapshot &Snap, const char *Name,
                     const char *Key, const char *Value) {
  double Total = 0.0;
  for (const MetricSample &Sample : Snap.Samples) {
    if (Sample.Name != Name)
      continue;
    for (const auto &Label : Sample.Labels)
      if (Label.first == Key && Label.second == Value) {
        Total += Sample.Value;
        break;
      }
  }
  return Total;
}

/// Aggregated count/sum across every histogram sample of \p Name (the
/// rel-error families fan out by class and P-state; drift judges the
/// whole family).
void histogramTotals(const MetricsSnapshot &Snap, const char *Name,
                     uint64_t &Count, double &Sum) {
  Count = 0;
  Sum = 0.0;
  for (const MetricSample &Sample : Snap.Samples) {
    if (Sample.Name != Name || Sample.Kind != MetricKind::Histogram)
      continue;
    Count += Sample.Hist.Count;
    Sum += Sample.Hist.Sum;
  }
}

} // namespace

AnomalyDetector::AnomalyDetector(AnomalyConfig ConfigIn)
    : Config(ConfigIn) {}

bool AnomalyDetector::driftBaselineFrozen(const std::string &Which) const {
  if (Which == "time")
    return TimeDrift.Frozen;
  if (Which == "energy")
    return EnergyDrift.Frozen;
  return false;
}

std::vector<AnomalyTrigger>
AnomalyDetector::evaluate(const MetricsSnapshot &Snap, double NowSec) {
  (void)NowSec; // Rules are delta-based; rate limiting is the incident
                // writer's job, so the clock is currently unused.
  std::vector<AnomalyTrigger> Out;
  evaluateBurnRate(Snap, Out);
  evaluateDrift(Snap, names::ModelTimeRelError, "time", TimeDrift, Out);
  evaluateDrift(Snap, names::ModelEnergyRelError, "energy", EnergyDrift,
                Out);
  evaluateQuarantine(Snap, Out);
  evaluateLatency(Snap, Out);
  return Out;
}

void AnomalyDetector::evaluateBurnRate(const MetricsSnapshot &Snap,
                                       std::vector<AnomalyTrigger> &Out) {
  double Cur = labelledTotal(Snap, names::ServiceDeadlineMissTotal, "sla",
                             "SLA0");
  if (!Sla0Seen || Cur < PrevSla0Misses) {
    // First sighting (misses predating the detector are old news) or a
    // counter that moved backwards (fresh registry after recovery):
    // re-base without firing.
    Sla0Seen = true;
    PrevSla0Misses = Cur;
    return;
  }
  double Delta = Cur - PrevSla0Misses;
  PrevSla0Misses = Cur;
  if (Delta >= Config.BurnRateMisses) {
    AnomalyTrigger Trigger;
    Trigger.Rule = "sla0-burn-rate";
    Trigger.Metric = names::ServiceDeadlineMissTotal;
    Trigger.Threshold = Config.BurnRateMisses;
    Trigger.Observed = Delta;
    Trigger.Note = formatString("total=%.0f", Cur);
    Out.push_back(std::move(Trigger));
  }
}

void AnomalyDetector::evaluateDrift(const MetricsSnapshot &Snap,
                                    const char *MetricName, const char *Which,
                                    DriftState &State,
                                    std::vector<AnomalyTrigger> &Out) {
  uint64_t Count = 0;
  double Sum = 0.0;
  histogramTotals(Snap, MetricName, Count, Sum);
  if (Count < State.PrevCount) {
    // Histogram restarted under us: forget everything and go cold —
    // a frozen baseline from a previous life is not comparable.
    State = DriftState{};
  }
  if (!State.Frozen) {
    if (Count >= Config.DriftBaselineMinSamples && Count > 0) {
      State.Frozen = true;
      State.Baseline = Sum / static_cast<double>(Count);
      State.PrevCount = Count;
      State.PrevSum = Sum;
    } else {
      State.PrevCount = Count;
      State.PrevSum = Sum;
    }
    return; // Cold (or just-frozen) baseline never fires.
  }
  uint64_t NewSamples = Count - State.PrevCount;
  if (NewSamples == 0)
    return;
  double WindowMean =
      (Sum - State.PrevSum) / static_cast<double>(NewSamples);
  State.PrevCount = Count;
  State.PrevSum = Sum;
  if (!State.EwmaSeeded) {
    State.Ewma = WindowMean;
    State.EwmaSeeded = true;
  } else {
    State.Ewma = Config.DriftEwmaAlpha * WindowMean +
                 (1.0 - Config.DriftEwmaAlpha) * State.Ewma;
  }
  double Threshold = std::max(Config.DriftFactor * State.Baseline,
                              State.Baseline + Config.DriftMinError);
  if (State.Ewma > Threshold) {
    AnomalyTrigger Trigger;
    Trigger.Rule = formatString("model-drift-%s", Which);
    Trigger.Metric = MetricName;
    Trigger.Threshold = Threshold;
    Trigger.Observed = State.Ewma;
    Trigger.Note = formatString("baseline=%.6g window_mean=%.6g",
                                State.Baseline, WindowMean);
    Out.push_back(std::move(Trigger));
  }
}

void AnomalyDetector::evaluateQuarantine(const MetricsSnapshot &Snap,
                                         std::vector<AnomalyTrigger> &Out) {
  double Cur = Snap.total(names::QuarantinesTotal);
  if (!QuarantinesSeen || Cur < PrevQuarantines) {
    QuarantinesSeen = true;
    PrevQuarantines = Cur;
    return;
  }
  double Delta = Cur - PrevQuarantines;
  PrevQuarantines = Cur;
  if (Delta > 0.0) {
    AnomalyTrigger Trigger;
    Trigger.Rule = "quarantine-entry";
    Trigger.Metric = names::QuarantinesTotal;
    Trigger.Threshold = 1.0;
    Trigger.Observed = Delta;
    Trigger.Note = formatString("total=%.0f", Cur);
    Out.push_back(std::move(Trigger));
  }
}

void AnomalyDetector::evaluateLatency(const MetricsSnapshot &Snap,
                                      std::vector<AnomalyTrigger> &Out) {
  const MetricSample *Sample = Snap.find(names::InvocationSeconds);
  if (!Sample || Sample->Kind != MetricKind::Histogram)
    return;
  uint64_t Count = Sample->Hist.Count;
  if (Count < Latency.PrevCount)
    Latency = LatencyState{};
  Latency.PrevCount = Count;
  if (!Latency.Frozen) {
    if (Count >= Config.LatencyBaselineMinSamples && Count > 0) {
      double P99 = Sample->Hist.quantile(0.99);
      if (P99 > 0.0) { // NaN/empty never freezes a zero baseline.
        Latency.Frozen = true;
        Latency.BaselineP99 = P99;
      }
    }
    return;
  }
  double P99 = Sample->Hist.quantile(0.99);
  double Threshold = Config.LatencyP99Factor * Latency.BaselineP99;
  if (P99 > Threshold) {
    AnomalyTrigger Trigger;
    Trigger.Rule = "latency-p99-regression";
    Trigger.Metric = names::InvocationSeconds;
    Trigger.Threshold = Threshold;
    Trigger.Observed = P99;
    Trigger.Note = formatString("baseline_p99=%.6g", Latency.BaselineP99);
    Out.push_back(std::move(Trigger));
  }
}
