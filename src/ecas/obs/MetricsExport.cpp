//===-- ecas/obs/MetricsExport.cpp - Snapshot exposition -----------------===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ecas/obs/MetricsExport.h"

#include "ecas/support/AtomicFile.h"
#include "ecas/support/Format.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <map>
#include <sstream>

using namespace ecas;
using namespace ecas::obs;

namespace {

/// Shortest decimal that parses back to exactly \p V — keeps golden
/// outputs readable ("0.25", not "0.25000000000000000").
std::string formatDouble(double V) {
  if (std::isnan(V))
    return "NaN";
  if (std::isinf(V))
    return V > 0 ? "+Inf" : "-Inf";
  for (int Prec = 1; Prec <= 17; ++Prec) {
    std::string S = formatString("%.*g", Prec, V);
    double Back;
    if (parseDouble(S, Back) && Back == V)
      return S;
  }
  return formatString("%.17g", V);
}

/// Prometheus label-value escaping: backslash, double quote, newline.
std::string escapeLabelValue(const std::string &V) {
  std::string Out;
  Out.reserve(V.size());
  for (char C : V) {
    switch (C) {
    case '\\':
      Out += "\\\\";
      break;
    case '"':
      Out += "\\\"";
      break;
    case '\n':
      Out += "\\n";
      break;
    default:
      Out += C;
    }
  }
  return Out;
}

/// HELP text escaping (no quotes involved): backslash and newline only.
std::string escapeHelp(const std::string &V) {
  std::string Out;
  Out.reserve(V.size());
  for (char C : V) {
    if (C == '\\')
      Out += "\\\\";
    else if (C == '\n')
      Out += "\\n";
    else
      Out += C;
  }
  return Out;
}

/// Renders `{k1="v1",k2="v2"}`; \p Extra appends one more pair (the
/// histogram `le` label). Empty label sets with no extra render as "".
std::string renderLabels(const MetricLabels &Labels,
                         const std::pair<std::string, std::string> *Extra) {
  if (Labels.empty() && !Extra)
    return "";
  std::string Out = "{";
  bool First = true;
  for (const auto &[K, V] : Labels) {
    if (!First)
      Out += ",";
    First = false;
    Out += K + "=\"" + escapeLabelValue(V) + "\"";
  }
  if (Extra) {
    if (!First)
      Out += ",";
    Out += Extra->first + "=\"" + escapeLabelValue(Extra->second) + "\"";
  }
  return Out + "}";
}

/// JSON string escaping (control characters, quote, backslash).
std::string escapeJson(const std::string &V) {
  std::string Out;
  Out.reserve(V.size());
  for (char C : V) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20)
        Out += formatString("\\u%04x", C);
      else
        Out += C;
    }
  }
  return Out;
}

/// NaN/Inf have no JSON literal; snapshots encode them as null.
std::string jsonNumber(double V) {
  if (std::isnan(V) || std::isinf(V))
    return "null";
  return formatDouble(V);
}

} // namespace

std::string ecas::obs::renderPrometheus(const MetricsSnapshot &Snap) {
  std::string Out;
  std::string LastFamily;
  for (const MetricSample &S : Snap.Samples) {
    if (S.Name != LastFamily) {
      LastFamily = S.Name;
      if (!S.Help.empty())
        Out += "# HELP " + S.Name + " " + escapeHelp(S.Help) + "\n";
      Out += "# TYPE " + S.Name + " ";
      Out += metricKindName(S.Kind);
      Out += "\n";
    }
    if (S.Kind != MetricKind::Histogram) {
      Out += S.Name + renderLabels(S.Labels, nullptr) + " " +
             formatDouble(S.Value) + "\n";
      continue;
    }
    uint64_t Cumulative = 0;
    for (size_t I = 0; I != S.Hist.Counts.size(); ++I) {
      Cumulative += S.Hist.Counts[I];
      std::pair<std::string, std::string> Le{
          "le", I < S.Hist.UpperBounds.size()
                    ? formatDouble(S.Hist.UpperBounds[I])
                    : std::string("+Inf")};
      Out += S.Name + "_bucket" + renderLabels(S.Labels, &Le) + " " +
             std::to_string(Cumulative) + "\n";
    }
    Out += S.Name + "_sum" + renderLabels(S.Labels, nullptr) + " " +
           formatDouble(S.Hist.Sum) + "\n";
    Out += S.Name + "_count" + renderLabels(S.Labels, nullptr) + " " +
           std::to_string(S.Hist.Count) + "\n";
  }
  return Out;
}

std::string ecas::obs::renderMetricsJson(const MetricsSnapshot &Snap) {
  std::string Out = "{\n  \"metrics\": [";
  bool FirstSample = true;
  for (const MetricSample &S : Snap.Samples) {
    Out += FirstSample ? "\n" : ",\n";
    FirstSample = false;
    Out += "    {\"name\": \"" + escapeJson(S.Name) + "\", \"kind\": \"";
    Out += metricKindName(S.Kind);
    Out += "\", \"labels\": {";
    bool FirstLabel = true;
    for (const auto &[K, V] : S.Labels) {
      if (!FirstLabel)
        Out += ", ";
      FirstLabel = false;
      Out += "\"";
      Out += escapeJson(K);
      Out += "\": \"";
      Out += escapeJson(V);
      Out += "\"";
    }
    Out += "}";
    if (S.Kind != MetricKind::Histogram) {
      Out += ", \"value\": " + jsonNumber(S.Value) + "}";
      continue;
    }
    Out += ", \"bounds\": [";
    for (size_t I = 0; I != S.Hist.UpperBounds.size(); ++I) {
      if (I)
        Out += ", ";
      Out += jsonNumber(S.Hist.UpperBounds[I]);
    }
    Out += "], \"counts\": [";
    for (size_t I = 0; I != S.Hist.Counts.size(); ++I) {
      if (I)
        Out += ", ";
      Out += std::to_string(S.Hist.Counts[I]);
    }
    Out += "], \"count\": " + std::to_string(S.Hist.Count);
    Out += ", \"sum\": " + jsonNumber(S.Hist.Sum);
    Out += ", \"min\": " + jsonNumber(S.Hist.Min);
    Out += ", \"max\": " + jsonNumber(S.Hist.Max) + "}";
  }
  Out += "\n  ]\n}\n";
  return Out;
}

std::string ecas::obs::renderMetricsReport(const MetricsSnapshot &Snap) {
  std::string Out;
  size_t Width = 0;
  for (const MetricSample &S : Snap.Samples)
    Width = std::max(Width,
                     S.Name.size() + renderLabels(S.Labels, nullptr).size());
  for (const MetricSample &S : Snap.Samples) {
    std::string Key = S.Name + renderLabels(S.Labels, nullptr);
    Out += padRight(Key, Width + 2);
    if (S.Kind != MetricKind::Histogram) {
      Out += formatDouble(S.Value) + "\n";
      continue;
    }
    if (S.Hist.Count == 0) {
      Out += "count=0\n";
      continue;
    }
    Out += formatString(
        "count=%llu mean=%s p50=%s p90=%s p99=%s max=%s\n",
        static_cast<unsigned long long>(S.Hist.Count),
        formatDouble(S.Hist.mean()).c_str(),
        formatDouble(S.Hist.quantile(0.5)).c_str(),
        formatDouble(S.Hist.quantile(0.9)).c_str(),
        formatDouble(S.Hist.quantile(0.99)).c_str(),
        formatDouble(S.Hist.Max).c_str());
  }
  return Out;
}

namespace {

/// One parsed exposition sample line before histogram reassembly.
struct RawSample {
  std::string Name;
  MetricLabels Labels;
  double Value = 0.0;
};

/// Parses `{k="v",...}` starting at \p Pos (which must point at '{').
/// Advances \p Pos past the closing brace.
Status parseLabelBlock(const std::string &Line, size_t &Pos,
                       MetricLabels &Labels) {
  ++Pos; // past '{'
  while (Pos < Line.size() && Line[Pos] != '}') {
    size_t Eq = Line.find('=', Pos);
    if (Eq == std::string::npos || Eq + 1 >= Line.size() ||
        Line[Eq + 1] != '"')
      return Status::error(ErrCode::ParseError,
                           "malformed label in: " + Line);
    std::string Key = trimString(Line.substr(Pos, Eq - Pos));
    std::string Value;
    size_t P = Eq + 2;
    bool Closed = false;
    for (; P < Line.size(); ++P) {
      char C = Line[P];
      if (C == '\\' && P + 1 < Line.size()) {
        char N = Line[++P];
        if (N == 'n')
          Value += '\n';
        else
          Value += N; // \" and \\ (and anything else, verbatim)
      } else if (C == '"') {
        Closed = true;
        break;
      } else {
        Value += C;
      }
    }
    if (!Closed)
      return Status::error(ErrCode::ParseError,
                           "unterminated label value in: " + Line);
    Labels.emplace_back(std::move(Key), std::move(Value));
    Pos = P + 1;
    if (Pos < Line.size() && Line[Pos] == ',')
      ++Pos;
  }
  if (Pos >= Line.size() || Line[Pos] != '}')
    return Status::error(ErrCode::ParseError,
                         "unterminated label block in: " + Line);
  ++Pos;
  return Status::success();
}

ErrorOr<RawSample> parseSampleLine(const std::string &Line) {
  RawSample S;
  size_t Pos = Line.find_first_of("{ \t");
  if (Pos == std::string::npos)
    return Status::error(ErrCode::ParseError, "sample missing value: " + Line);
  S.Name = Line.substr(0, Pos);
  if (Line[Pos] == '{')
    if (Status St = parseLabelBlock(Line, Pos, S.Labels); !St)
      return St;
  std::string ValueText = trimString(Line.substr(Pos));
  if (ValueText == "+Inf")
    S.Value = std::numeric_limits<double>::infinity();
  else if (ValueText == "-Inf")
    S.Value = -std::numeric_limits<double>::infinity();
  else if (ValueText == "NaN")
    S.Value = std::numeric_limits<double>::quiet_NaN();
  else if (!parseDouble(ValueText, S.Value))
    return Status::error(ErrCode::ParseError,
                         "unparsable sample value '" + ValueText +
                             "' in: " + Line);
  return S;
}

/// Strips a known suffix; returns true when \p Name ended with it.
bool stripSuffix(std::string &Name, const char *Suffix) {
  size_t N = std::strlen(Suffix);
  if (Name.size() <= N || Name.compare(Name.size() - N, N, Suffix) != 0)
    return false;
  Name.resize(Name.size() - N);
  return true;
}

/// Histogram family being reassembled from _bucket/_sum/_count rows.
struct HistogramAccum {
  MetricLabels Labels;
  std::vector<std::pair<double, uint64_t>> CumulativeByEdge; // le -> count
  double Sum = 0.0;
  uint64_t Count = 0;
  bool SawCount = false;
};

} // namespace

ErrorOr<MetricsSnapshot> ecas::obs::parsePrometheusText(
    const std::string &Text) {
  MetricsSnapshot Snap;
  std::map<std::string, std::string> HelpFor;
  std::map<std::string, MetricKind> TypeFor;
  // Keyed by family name + rendered non-le labels so per-class variants
  // stay separate.
  std::map<std::string, HistogramAccum> Hists;

  for (const std::string &RawLine : splitString(Text, '\n')) {
    std::string Line = trimString(RawLine);
    if (Line.empty())
      continue;
    if (Line[0] == '#') {
      std::vector<std::string> Parts = splitString(Line, ' ');
      if (Parts.size() >= 3 && Parts[1] == "TYPE") {
        if (Parts.size() < 4)
          return Status::error(ErrCode::ParseError,
                               "malformed TYPE line: " + Line);
        MetricKind Kind;
        if (Parts[3] == "counter")
          Kind = MetricKind::Counter;
        else if (Parts[3] == "gauge")
          Kind = MetricKind::Gauge;
        else if (Parts[3] == "histogram")
          Kind = MetricKind::Histogram;
        else
          return Status::error(ErrCode::ParseError,
                               "unknown metric type '" + Parts[3] +
                                   "' in: " + Line);
        TypeFor[Parts[2]] = Kind;
      } else if (Parts.size() >= 3 && Parts[1] == "HELP") {
        size_t TextPos = Line.find(Parts[2]) + Parts[2].size();
        std::string Help = trimString(Line.substr(TextPos));
        std::string Unescaped;
        for (size_t I = 0; I != Help.size(); ++I) {
          if (Help[I] == '\\' && I + 1 < Help.size()) {
            ++I;
            Unescaped += Help[I] == 'n' ? '\n' : Help[I];
          } else {
            Unescaped += Help[I];
          }
        }
        HelpFor[Parts[2]] = Unescaped;
      }
      continue; // other comments ignored
    }

    ErrorOr<RawSample> Parsed = parseSampleLine(Line);
    if (!Parsed.ok())
      return Parsed.status();
    RawSample S = std::move(Parsed.value());

    // Histogram component rows fold into their family's accumulator.
    std::string Family = S.Name;
    if (stripSuffix(Family, "_bucket") &&
        TypeFor.count(Family) &&
        TypeFor[Family] == MetricKind::Histogram) {
      MetricLabels Others;
      double Edge = 0.0;
      bool SawLe = false;
      for (auto &[K, V] : S.Labels) {
        if (K == "le") {
          SawLe = true;
          if (V == "+Inf")
            Edge = std::numeric_limits<double>::infinity();
          else if (!parseDouble(V, Edge))
            return Status::error(ErrCode::ParseError,
                                 "unparsable le bound in: " + Line);
        } else {
          Others.emplace_back(K, V);
        }
      }
      if (!SawLe)
        return Status::error(ErrCode::ParseError,
                             "histogram bucket without le label: " + Line);
      HistogramAccum &A = Hists[Family + renderLabels(Others, nullptr)];
      A.Labels = Others;
      A.CumulativeByEdge.emplace_back(
          Edge, static_cast<uint64_t>(std::llround(S.Value)));
      continue;
    }
    Family = S.Name;
    if (stripSuffix(Family, "_sum") && TypeFor.count(Family) &&
        TypeFor[Family] == MetricKind::Histogram) {
      HistogramAccum &A = Hists[Family + renderLabels(S.Labels, nullptr)];
      A.Labels = S.Labels;
      A.Sum = S.Value;
      continue;
    }
    Family = S.Name;
    if (stripSuffix(Family, "_count") && TypeFor.count(Family) &&
        TypeFor[Family] == MetricKind::Histogram) {
      HistogramAccum &A = Hists[Family + renderLabels(S.Labels, nullptr)];
      A.Labels = S.Labels;
      A.Count = static_cast<uint64_t>(std::llround(S.Value));
      A.SawCount = true;
      continue;
    }

    MetricSample Sample;
    Sample.Name = S.Name;
    Sample.Labels = std::move(S.Labels);
    Sample.Value = S.Value;
    Sample.Kind =
        TypeFor.count(S.Name) ? TypeFor[S.Name] : MetricKind::Gauge;
    if (HelpFor.count(S.Name))
      Sample.Help = HelpFor[S.Name];
    Snap.Samples.push_back(std::move(Sample));
  }

  for (auto &[Key, A] : Hists) {
    std::sort(A.CumulativeByEdge.begin(), A.CumulativeByEdge.end(),
              [](const auto &L, const auto &R) { return L.first < R.first; });
    if (A.CumulativeByEdge.empty() ||
        !std::isinf(A.CumulativeByEdge.back().first))
      return Status::error(ErrCode::Incomplete,
                           "histogram family " + Key +
                               " lacks a le=\"+Inf\" bucket");
    MetricSample Sample;
    size_t FamilyEnd = Key.find('{');
    Sample.Name = Key.substr(0, FamilyEnd);
    Sample.Labels = A.Labels;
    Sample.Kind = MetricKind::Histogram;
    if (HelpFor.count(Sample.Name))
      Sample.Help = HelpFor[Sample.Name];
    uint64_t Prev = 0;
    for (const auto &[Edge, Cumulative] : A.CumulativeByEdge) {
      if (Cumulative < Prev)
        return Status::error(ErrCode::CorruptData,
                             "non-monotonic cumulative bucket counts in " +
                                 Key);
      if (!std::isinf(Edge))
        Sample.Hist.UpperBounds.push_back(Edge);
      Sample.Hist.Counts.push_back(Cumulative - Prev);
      Prev = Cumulative;
    }
    Sample.Hist.Count = A.SawCount ? A.Count : Prev;
    Sample.Hist.Sum = A.Sum;
    // The text format carries no exact min/max; approximate both from
    // the bucket edges so reports on parsed files stay sensible.
    Sample.Hist.Min = Sample.Hist.Count ? Sample.Hist.quantile(0.0) : 0.0;
    Sample.Hist.Max = Sample.Hist.Count ? Sample.Hist.quantile(1.0) : 0.0;
    Snap.Samples.push_back(std::move(Sample));
  }

  std::sort(Snap.Samples.begin(), Snap.Samples.end(),
            [](const MetricSample &A, const MetricSample &B) {
              if (A.Name != B.Name)
                return A.Name < B.Name;
              return A.Labels < B.Labels;
            });
  return Snap;
}

Status ecas::obs::writeFileAtomic(const std::string &Path,
                                  const std::string &Text) {
  // Delegates to the one blessed implementation (DESIGN.md §13), which
  // closes the durability hole this helper used to have: without the
  // parent-directory fsync after rename, a power cut could forget the
  // rename and resurrect the old file — or none at all.
  return ecas::writeFileAtomic(Path, Text);
}
