//===-- ecas/obs/MetricNames.h - Canonical metric names --------*- C++ -*-===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Every metric name the runtime registers, in one place. Names are
/// lowercase snake_case with the `eas_` prefix; ecas-lint's metric-name
/// rule checks both the literals here and that no other file under
/// src/ecas registers an instrument with an inline string — new metrics
/// get a constant here first, so the taxonomy in DESIGN.md §11 stays
/// the complete list.
///
/// Units follow Prometheus conventions: a `_seconds`/`_joules` suffix
/// for physical quantities, `_total` for monotonic event counts, bare
/// names for distributions of dimensionless ratios (rel-errors, alpha).
///
//===----------------------------------------------------------------------===//

#ifndef ECAS_OBS_METRICNAMES_H
#define ECAS_OBS_METRICNAMES_H

namespace ecas::obs::names {

// Model fidelity — the paper's headline question (how well T(alpha) and
// P(alpha) track reality), as |predicted - measured| / measured.
inline constexpr char ModelTimeRelError[] = "eas_model_time_rel_error";
inline constexpr char ModelEnergyRelError[] = "eas_model_energy_rel_error";

// Decision shape.
inline constexpr char AlphaChosen[] = "eas_alpha_chosen";
inline constexpr char AlphaSearchEvals[] = "eas_alpha_search_evaluations";
inline constexpr char ProfileOverheadFraction[] =
    "eas_profile_overhead_fraction";

// Invocation lifecycle.
inline constexpr char InvocationSeconds[] = "eas_invocation_seconds";
inline constexpr char InvocationsTotal[] = "eas_invocations_total";
inline constexpr char TableHitsTotal[] = "eas_table_hits_total";
inline constexpr char TableMissesTotal[] = "eas_table_misses_total";
inline constexpr char CpuOnlyTotal[] = "eas_cpu_only_total";
inline constexpr char CancelledTotal[] = "eas_cancelled_total";
inline constexpr char RejectedTotal[] = "eas_rejected_total";
inline constexpr char ProfileRepsTotal[] = "eas_profile_reps_total";
inline constexpr char ProfileRepSeconds[] = "eas_profile_rep_seconds";
inline constexpr char DecisionsLoggedTotal[] = "eas_decisions_logged_total";

// GPU health (fault layer).
inline constexpr char LaunchRetriesTotal[] = "eas_launch_retries_total";
inline constexpr char HangsTotal[] = "eas_health_hangs_total";
inline constexpr char QuarantinesTotal[] = "eas_health_quarantines_total";
inline constexpr char RecoveriesTotal[] = "eas_health_recoveries_total";
inline constexpr char ProbesTotal[] = "eas_health_probes_total";
inline constexpr char ReadmissionsTotal[] = "eas_health_readmissions_total";
inline constexpr char QuarantinedRunsTotal[] = "eas_quarantined_runs_total";

// Service lifecycle.
inline constexpr char ShutdownDrainSeconds[] = "eas_shutdown_drain_seconds";

// Table-G durability (DESIGN.md §13): the write-ahead journal's append
// side, what recovery replayed or had to truncate, how long it took,
// and how it classified the on-disk state (labelled "outcome":
// clean / replayed / truncated / cold).
inline constexpr char HistoryJournalAppendsTotal[] =
    "eas_history_journal_appends_total";
inline constexpr char HistoryJournalBytesTotal[] =
    "eas_history_journal_bytes_total";
inline constexpr char HistoryReplayedRecordsTotal[] =
    "eas_history_replayed_records_total";
inline constexpr char HistoryTruncatedRecordsTotal[] =
    "eas_history_truncated_records_total";
inline constexpr char RecoverySeconds[] = "eas_recovery_seconds";
inline constexpr char HistoryRecoveryOutcome[] =
    "eas_history_recovery_outcome";

// Multi-tenant service front end (service layer). Labelled by SLA class
// ("sla"), rejection reason ("reason"), and — for the shed counter the
// soak harness audits — the tenant ("tenant").
inline constexpr char ServiceSubmittedTotal[] = "eas_service_submitted_total";
inline constexpr char ServiceAdmittedTotal[] = "eas_service_admitted_total";
inline constexpr char ServiceRejectedTotal[] = "eas_service_rejected_total";
inline constexpr char ServiceShedTotal[] = "eas_service_shed_total";
inline constexpr char ServiceCompletedTotal[] = "eas_service_completed_total";
inline constexpr char ServiceCancelledTotal[] = "eas_service_cancelled_total";
inline constexpr char ServiceQueueDepth[] = "eas_service_queue_depth";
inline constexpr char ServiceQueueWaitSeconds[] =
    "eas_service_queue_wait_seconds";
inline constexpr char ServiceRetryAfterSeconds[] =
    "eas_service_retry_after_seconds";
inline constexpr char ServiceDeadlineMissTotal[] =
    "eas_service_deadline_miss_total";

// Forensics (obs layer, DESIGN.md §16): cumulative wall seconds spent in
// each P-state (labelled "pstate"), and incident bundles captured.
inline constexpr char PStateResidencySeconds[] =
    "eas_pstate_residency_seconds";
inline constexpr char IncidentsTotal[] = "eas_incidents_total";

// Simulated RAPL plumbing (sim layer).
inline constexpr char MsrReadsTotal[] = "eas_msr_reads_total";

} // namespace ecas::obs::names

#endif // ECAS_OBS_METRICNAMES_H
