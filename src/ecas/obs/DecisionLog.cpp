//===-- ecas/obs/DecisionLog.cpp - Per-decision audit records ------------===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ecas/obs/DecisionLog.h"

#include "ecas/obs/MetricsExport.h"
#include "ecas/support/Format.h"

using namespace ecas;
using namespace ecas::obs;

DecisionLog::DecisionLog(size_t Capacity) : Cap(Capacity ? Capacity : 1) {
  // Reserved lazily in append(); an unused log costs nothing.
}

void DecisionLog::append(DecisionRecord Record) {
  LockGuard Lock(Mutex);
  Record.Sequence = Next;
  if (Ring.size() < Cap)
    Ring.push_back(Record);
  else
    Ring[static_cast<size_t>(Next % Cap)] = Record;
  ++Next;
}

std::vector<DecisionRecord> DecisionLog::snapshot() const {
  LockGuard Lock(Mutex);
  std::vector<DecisionRecord> Out;
  Out.reserve(Ring.size());
  if (Ring.size() < Cap) {
    Out = Ring;
    return Out;
  }
  // Full ring: the slot Next maps to holds the oldest record.
  for (size_t I = 0; I != Cap; ++I)
    Out.push_back(Ring[static_cast<size_t>((Next + I) % Cap)]);
  return Out;
}

uint64_t DecisionLog::appended() const {
  LockGuard Lock(Mutex);
  return Next;
}

namespace {

const char *boolName(bool B) { return B ? "true" : "false"; }

} // namespace

std::string
DecisionLogSink::renderCsv(const std::vector<DecisionRecord> &Records) {
  std::string Out = "sequence,kernel_id,class_index,alpha,pstate,"
                    "has_prediction,"
                    "predicted_seconds,predicted_watts,predicted_metric,"
                    "measured_seconds,measured_joules,table_hit,profiled,"
                    "cpu_only,quarantined,cancelled\n";
  for (const DecisionRecord &R : Records)
    Out += formatString(
        "%llu,%llu,%d,%.9g,%u,%d,%.9g,%.9g,%.9g,%.9g,%.9g,%d,%d,%d,%d,%d\n",
        static_cast<unsigned long long>(R.Sequence),
        static_cast<unsigned long long>(R.KernelId), R.ClassIndex, R.Alpha,
        R.PState, R.HasPrediction ? 1 : 0, R.PredictedSeconds,
        R.PredictedWatts, R.PredictedMetric, R.MeasuredSeconds,
        R.MeasuredJoules, R.TableHit ? 1 : 0, R.Profiled ? 1 : 0,
        R.CpuOnlyFastPath ? 1 : 0, R.GpuQuarantined ? 1 : 0,
        R.Cancelled ? 1 : 0);
  return Out;
}

std::string
DecisionLogSink::renderJsonLines(const std::vector<DecisionRecord> &Records) {
  std::string Out;
  for (const DecisionRecord &R : Records)
    Out += formatString(
        "{\"sequence\": %llu, \"kernel_id\": %llu, \"class_index\": %d, "
        "\"alpha\": %.9g, \"pstate\": %u, \"has_prediction\": %s, "
        "\"predicted_seconds\": %.9g, \"predicted_watts\": %.9g, "
        "\"predicted_metric\": %.9g, \"measured_seconds\": %.9g, "
        "\"measured_joules\": %.9g, \"table_hit\": %s, \"profiled\": %s, "
        "\"cpu_only\": %s, \"quarantined\": %s, \"cancelled\": %s}\n",
        static_cast<unsigned long long>(R.Sequence),
        static_cast<unsigned long long>(R.KernelId), R.ClassIndex, R.Alpha,
        R.PState, boolName(R.HasPrediction), R.PredictedSeconds,
        R.PredictedWatts,
        R.PredictedMetric, R.MeasuredSeconds, R.MeasuredJoules,
        boolName(R.TableHit), boolName(R.Profiled),
        boolName(R.CpuOnlyFastPath), boolName(R.GpuQuarantined),
        boolName(R.Cancelled));
  return Out;
}

Status DecisionLogSink::write(const DecisionLog &Log,
                              const std::string &Path) {
  std::vector<DecisionRecord> Records = Log.snapshot();
  bool Csv = Path.size() >= 4 && Path.compare(Path.size() - 4, 4, ".csv") == 0;
  return writeFileAtomic(Path,
                         Csv ? renderCsv(Records) : renderJsonLines(Records));
}
